(* Experiment "counts": Section 6.2's execution-count analysis.

   The kappa'' evaluation count must lie between (ln 2 / 2) n 2^n (costs
   widely spaced; nested ifs reject early) and 3^n (costs closely
   spaced).  At mean cardinality 1 every plan costs roughly the same and
   the count approaches 3^n; at large cardinalities it approaches the
   lower bound.  Cliques sit higher than chains (Section 6.3). *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Counters = Blitz_core.Counters

let run () =
  let n = Bench_config.n in
  Bench_config.header (Printf.sprintf "Section 6.2: kappa'' execution counts at n = %d" n);
  let lower = Counters.predicted_dprime_lower n in
  let upper = Counters.predicted_dprime_upper n in
  Printf.printf "predicted range: lower (ln2/2)n2^n = %.0f, upper 3^n = %.0f\n" lower upper;
  let header =
    [| "model"; "topology"; "mean card"; "kappa'' evals"; "improvements"; "position in range" |]
  in
  let rows = ref [] in
  List.iter
    (fun model ->
      List.iter
        (fun topology ->
          List.iter
            (fun mu ->
              let spec =
                Workload.spec ~n ~topology ~model ~mean_card:mu ~variability:0.0
              in
              let catalog, graph = Workload.problem spec in
              let counters = Counters.create () in
              ignore (Bench_opt.run ~counters model catalog (Some graph));
              (* For kappa_0 (kappa'' = 0) the operand-sum count plays the
                 same diagnostic role. *)
              let evals =
                if model.Cost_model.dprime_is_zero then counters.Counters.operand_sums
                else counters.Counters.dprime_evals
              in
              let position = (float_of_int evals -. lower) /. (upper -. lower) in
              rows :=
                [|
                  model.Cost_model.name;
                  Topology.name topology;
                  Printf.sprintf "%.4g" mu;
                  string_of_int evals;
                  string_of_int counters.Counters.improvements;
                  Printf.sprintf "%.3f" position;
                |]
                :: !rows)
            [ 1.0; 100.0; 10000.0 ])
        [ Topology.Chain; Topology.Clique ])
    Cost_model.all_paper;
  Blitz_util.Ascii_table.print ~header (Array.of_list (List.rev !rows));
  Printf.printf
    "\nposition 0 = lower bound, 1 = 3^n upper bound; expect high at mu=1, low at mu=10^4,\n\
     clique above chain at equal mu (Section 6.3)\n"

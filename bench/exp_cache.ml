(* Experiment "cache": the plan-cache acceptance gate.

   Three claims from the cache design, held to numbers:

   1. Bit-identity (the exp_obs protocol): a cache hit — including a
      hit on a renamed/permuted resubmission, answered by rebasing the
      canonical plan — returns exactly the plan and cost a cold
      optimization of the same problem computes.  Checked before any
      timing; a mismatch fails the experiment loudly.

   2. Repeated-workload throughput: a mixed batch in which every
      distinct query recurs [repeats] times must run >= 5x faster
      through a cache-carrying session than through a plain one at
      n = 10..12 (the gate).  Interleaved best-of-rounds timing, so
      CPU-frequency drift penalizes both configurations alike.

   3. Warm-started thresholded runs: on an exact miss whose join-graph
      shape is known (cardinalities jittered up to 5%, selectivities
      unchanged), seeding the Section 6.4 threshold from the shape
      tier's best-known cost must cut the aggregate split-loop
      iterations against cold greedy-seeded runs of the same queries.

   `bench cache --json BENCH_cache.json` refreshes the committed
   acceptance artifact. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module Plan_cache = Blitz_cache.Plan_cache
module Plan = Blitz_plan.Plan
module Counters = Blitz_core.Counters
module Rng = Blitz_util.Rng
module Json = Blitz_util.Json

let wall () = Unix.gettimeofday ()

let time_wall ~min_total ~min_runs f =
  let t0 = wall () in
  f ();
  let once = wall () -. t0 in
  let runs = ref 1 and total = ref once in
  while !runs < min_runs || !total < min_total do
    let t0 = wall () in
    f ();
    total := !total +. (wall () -. t0);
    incr runs
  done;
  !total /. float_of_int !runs

let interleaved ~rounds ~min_total ~min_runs off on =
  let best = ref (time_wall ~min_total ~min_runs off, time_wall ~min_total ~min_runs on) in
  for _ = 2 to rounds do
    let o = time_wall ~min_total ~min_runs off in
    let e = time_wall ~min_total ~min_runs on in
    let bo, be = !best in
    best := (Float.min bo o, Float.min be e)
  done;
  !best

(* Twelve distinct queries: every (topology, mean-card, variability)
   combination below is unique, so within one batch no query is a
   disguised duplicate of another and a cache can only win through the
   deliberate [repeats] factor.  Variability stays positive: the
   appendix cardinality ladder is then strictly increasing, which keeps
   plan costs tie-free (the bit-identity checks compare exact trees). *)
let distinct_batch ~n =
  let topologies = [| Topology.Chain; Topology.Star; Topology.Clique; Topology.Cycle_plus 1 |] in
  let mean_cards = [| 100.0; 1000.0; 10000.0 |] in
  let variabilities = [| 0.3; 0.6 |] in
  List.init 12 (fun i ->
      let spec =
        Workload.spec ~n
          ~topology:topologies.(i mod 4)
          ~model:Cost_model.kdnl
          ~mean_card:mean_cards.(i mod 3)
          ~variability:variabilities.(i mod 2)
      in
      let catalog, graph = Workload.problem spec in
      Registry.problem ~graph catalog)

(* Apply a relation permutation: relation [i] of the base problem
   becomes relation [perm.(i)] of the renamed one.  This is exactly the
   transformation the fingerprint must be invariant under. *)
let permute_problem perm (p : Registry.problem) =
  let n = Catalog.n p.Registry.catalog in
  let cards = Array.make n 0.0 in
  for i = 0 to n - 1 do
    cards.(perm.(i)) <- Catalog.card p.Registry.catalog i
  done;
  let graph =
    match p.Registry.graph with
    | None -> None
    | Some g ->
      let edges =
        List.map
          (fun (i, j, s) ->
            let i' = perm.(i) and j' = perm.(j) in
            ((min i' j'), (max i' j'), s))
          (Join_graph.edges g)
      in
      Some (Join_graph.of_edges ~n edges)
  in
  match graph with
  | Some g -> Registry.problem ~graph:g (Catalog.of_cards cards)
  | None -> Registry.problem (Catalog.of_cards cards)

let random_perm rng n =
  let perm = Array.init n (fun i -> i) in
  Rng.shuffle rng perm;
  perm

let same_cost a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Distance in representable doubles: 0 = bit-identical.  Plan costs are
   accumulated in relation-index order, so re-running the DP in a
   permuted index space legitimately drifts by a few ulps; the rebased
   hit, by contrast, carries the cached cost of the logical query
   verbatim and owes exact bit-identity to ITS cold run. *)
let ulp_diff a b = Int64.abs (Int64.sub (Int64.bits_of_float a) (Int64.bits_of_float b))

let plan_of (o : Registry.outcome) =
  match o.Registry.plan with Some p -> p | None -> failwith "optimizer returned no plan"

(* ---- part 1: bit-identity, direct and under renaming ---- *)

let check_bit_identity ~ns ~model =
  let rng = Rng.create ~seed:42 in
  let checked = ref 0 and rebased_hits = ref 0 in
  List.iter
    (fun n ->
      let problems = distinct_batch ~n in
      let cache = Plan_cache.create () in
      Engine.with_session ~model (fun cold_s ->
          Engine.with_session ~model ~cache (fun cached_s ->
              List.iteri
                (fun qi p ->
                  let fail fmt =
                    Printf.ksprintf
                      (fun msg -> failwith (Printf.sprintf "n=%d query %d: %s" n qi msg))
                      fmt
                  in
                  let cold = Engine.optimize cold_s p in
                  ignore (Engine.optimize cached_s p);
                  let hit = Engine.optimize cached_s p in
                  if not (same_cost cold.Registry.cost hit.Registry.cost) then
                    fail "hit cost %.17g <> cold cost %.17g" hit.Registry.cost cold.Registry.cost;
                  if not (Plan.equal (plan_of cold) (plan_of hit)) then
                    fail "hit plan differs from cold plan";
                  (* Renamed resubmission: same query, permuted indexes.
                     The rebased hit must be bit-identical — cost and
                     tree (through the known renaming) — to the cold run
                     of the logical query it was cached from; a cold DP
                     of the permuted instance itself must agree on the
                     join order, with its cost allowed the few-ulp drift
                     of index-order accumulation. *)
                  let perm = random_perm rng n in
                  let pp = permute_problem perm p in
                  let before = Plan_cache.stats cache in
                  let cold_p = Engine.optimize cold_s pp in
                  let hit_p = Engine.optimize cached_s pp in
                  let after = Plan_cache.stats cache in
                  if after.Plan_cache.rebases > before.Plan_cache.rebases then
                    incr rebased_hits;
                  if not (same_cost cold.Registry.cost hit_p.Registry.cost) then
                    fail "renamed: cached cost %.17g <> logical query's cold cost %.17g"
                      hit_p.Registry.cost cold.Registry.cost;
                  if
                    not
                      (Plan.equal
                         (Plan.normalize (Plan.map_leaves (fun i -> perm.(i)) (plan_of cold)))
                         (Plan.normalize (plan_of hit_p)))
                  then fail "renamed: rebased plan is not the cold plan under the renaming";
                  if
                    not
                      (Plan.equal
                         (Plan.normalize (plan_of cold_p))
                         (Plan.normalize (plan_of hit_p)))
                  then fail "renamed: cached plan differs from the permuted instance's cold plan";
                  if ulp_diff cold_p.Registry.cost hit_p.Registry.cost > 8L then
                    fail "renamed: permuted cold cost %.17g drifts > 8 ulps from cached %.17g"
                      cold_p.Registry.cost hit_p.Registry.cost;
                  checked := !checked + 2)
                problems)))
    ns;
  (!checked, !rebased_hits)

(* ---- part 2: repeated-workload throughput ---- *)

let throughput_row ~model ~repeats ~min_total ~min_runs ~rounds n =
  let problems = distinct_batch ~n in
  let batch = List.concat (List.init repeats (fun _ -> problems)) in
  let size = List.length batch in
  let run_batch session = List.iter (fun p -> ignore (Engine.optimize session p)) batch in
  let no_cache () = Engine.with_session ~model run_batch in
  let with_cache () =
    let cache = Plan_cache.create () in
    Engine.with_session ~model ~cache run_batch
  in
  let plain_s, cached_s = interleaved ~rounds ~min_total ~min_runs no_cache with_cache in
  let qps s = float_of_int size /. s in
  (qps plain_s, qps cached_s, cached_s /. plain_s, plain_s /. cached_s)

(* ---- part 3: warm-started thresholded runs ---- *)

(* Jitter every cardinality up by at most 5%: the exact fingerprint
   misses (different cards) but the shape key — selectivities and
   topology only — still matches the base query's, so the cache can
   seed the threshold driver.  Selectivities are untouched. *)
let jitter_problem rng (p : Registry.problem) =
  let cards = Catalog.cards p.Registry.catalog in
  let cards = Array.map (fun c -> c *. (1.0 +. (0.05 *. Rng.float rng 1.0))) cards in
  match p.Registry.graph with
  | Some g -> Registry.problem ~graph:g (Catalog.of_cards cards)
  | None -> Registry.problem (Catalog.of_cards cards)

let sum_counters outcomes =
  List.fold_left
    (fun (iters, skips, passes) (o : Registry.outcome) ->
      match o.Registry.counters with
      | Some c ->
        (iters + c.Counters.loop_iters, skips + c.Counters.threshold_skips,
         passes + c.Counters.passes)
      | None -> (iters, skips, passes))
    (0, 0, 0) outcomes

let warm_start ~n ~model =
  let rng = Rng.create ~seed:271828 in
  (* Topologies where the greedy bound — the cold threshold seed — sits
     well above the optimum, so a shape-derived seed has room to win;
     measured ratios at n=12 range from ~1.5x (cycle) to ~400x (clique). *)
  let bases =
    List.concat_map
      (fun topology ->
        List.map
          (fun mean_card ->
            let spec =
              Workload.spec ~n ~topology ~model:Cost_model.kdnl ~mean_card ~variability:0.5
            in
            let catalog, graph = Workload.problem spec in
            Registry.problem ~graph catalog)
          [ 100.0; 1000.0; 10000.0 ])
      [ Topology.Clique; Topology.Cycle_plus 1 ]
  in
  let variants = List.concat_map (fun b -> List.init 4 (fun _ -> jitter_problem rng b)) bases in
  let cache = Plan_cache.create () in
  let warm_outcomes =
    Engine.with_session ~model ~cache (fun s ->
        (* Prime the shape tier: one cold thresholded run per base. *)
        List.iter (fun b -> ignore (Engine.optimize ~optimizer:"thresholded" s b)) bases;
        List.map
          (fun v ->
            let o = Engine.optimize ~optimizer:"thresholded" s v in
            { o with Registry.counters = Option.map Counters.copy o.Registry.counters })
          variants)
  in
  (* The banded ensemble answers a jittered lookup before the plain
     cost table does, so warm seeds land in either counter. *)
  let stats = Plan_cache.stats cache in
  let shape_hits = stats.Plan_cache.shape_hits + stats.Plan_cache.band_hits in
  let cold_outcomes =
    Engine.with_session ~model (fun s ->
        List.map
          (fun v ->
            let o = Engine.optimize ~optimizer:"thresholded" s v in
            { o with Registry.counters = Option.map Counters.copy o.Registry.counters })
          variants)
  in
  (* Warm-started or not, the threshold driver's escalation-plus-rescue
     contract promises the true optimum: hold it to bit-identity. *)
  List.iteri
    (fun i (warm, cold) ->
      if not (same_cost warm.Registry.cost cold.Registry.cost) then
        failwith
          (Printf.sprintf "warm-start variant %d: cost %.17g <> cold %.17g" i
             warm.Registry.cost cold.Registry.cost);
      if not (Plan.equal (plan_of warm) (plan_of cold)) then
        failwith (Printf.sprintf "warm-start variant %d: plan differs from cold run" i))
    (List.combine warm_outcomes cold_outcomes);
  let warm = sum_counters warm_outcomes and cold = sum_counters cold_outcomes in
  (List.length variants, shape_hits, warm, cold)

(* ---- driver ---- *)

let speedup_gate = 5.0

let run () =
  Bench_config.header "Plan cache: bit-identity, repeated-workload speedup, warm-starts";
  let model = Cost_model.kdnl in
  let fast = Bench_config.fast in
  let ns_ident = if fast then [ 8; 10 ] else [ 8; 10; 12 ] in
  let ns_tput = if fast then [ 10 ] else [ 10; 11; 12 ] in
  let n_warm = if fast then 10 else 12 in
  let repeats = 8 in
  let min_total = if fast then 0.05 else 0.4 in
  let rounds = if fast then 3 else 7 in

  let checked, rebased = check_bit_identity ~ns:ns_ident ~model in
  Printf.printf
    "bit-identity: %d hit-vs-cold comparisons pass (%d via rebased renamed hits)\n" checked
    rebased;
  if rebased = 0 then failwith "no renamed resubmission was answered from the cache";
  Bench_json.emit ~experiment:"cache"
    [
      ("check", Json.String "bit_identity");
      ("comparisons", Json.Int checked);
      ("rebased_hits", Json.Int rebased);
      ("pass", Json.Bool true);
    ];

  Printf.printf
    "\nrepeated workload: 12 distinct queries x %d submissions each, one session\n" repeats;
  Printf.printf "gate: cached session >= %.0fx the plain session's throughput\n\n" speedup_gate;
  let all_pass = ref true in
  let rows =
    List.map
      (fun n ->
        let plain_qps, cached_qps, _, speedup =
          throughput_row ~model ~repeats ~min_total ~min_runs:2 ~rounds n
        in
        let pass = speedup >= speedup_gate in
        if not pass then all_pass := false;
        Bench_json.emit ~experiment:"cache"
          [
            ("check", Json.String "throughput");
            ("n", Json.Int n);
            ("repeats", Json.Int repeats);
            ("plain_qps", Json.Float plain_qps);
            ("cached_qps", Json.Float cached_qps);
            ("speedup", Json.Float speedup);
            ("gate", Json.Float speedup_gate);
            ("pass", Json.Bool pass);
          ];
        [|
          string_of_int n;
          Printf.sprintf "%.0f" plain_qps;
          Printf.sprintf "%.0f" cached_qps;
          Printf.sprintf "%.1fx" speedup;
          (if pass then "pass" else "FAIL");
        |])
      ns_tput
  in
  Blitz_util.Ascii_table.print
    ~header:[| "n"; "plain (q/s)"; "cached (q/s)"; "speedup"; "gate >=5x" |]
    (Array.of_list rows);

  let variants, shape_hits, (warm_iters, warm_skips, warm_passes), (cold_iters, cold_skips, cold_passes)
      =
    warm_start ~n:n_warm ~model
  in
  let reduction = 100.0 *. (1.0 -. (float_of_int warm_iters /. float_of_int cold_iters)) in
  Printf.printf
    "\nwarm-started thresholded runs at n=%d: %d jittered variants, %d shape-tier seeds (banded or cost-only)\n"
    n_warm variants shape_hits;
  Printf.printf "  cold (greedy-seeded): %d split-loop iters, %d threshold skips, %d passes\n"
    cold_iters cold_skips cold_passes;
  Printf.printf "  warm (shape-seeded):  %d split-loop iters, %d threshold skips, %d passes\n"
    warm_iters warm_skips warm_passes;
  Printf.printf "  split-loop reduction: %.1f%%\n" reduction;
  let warm_pass = warm_iters < cold_iters && shape_hits > 0 in
  if not warm_pass then all_pass := false;
  Bench_json.emit ~experiment:"cache"
    [
      ("check", Json.String "warm_start");
      ("n", Json.Int n_warm);
      ("variants", Json.Int variants);
      ("shape_hits", Json.Int shape_hits);
      ("cold_loop_iters", Json.Int cold_iters);
      ("warm_loop_iters", Json.Int warm_iters);
      ("cold_threshold_skips", Json.Int cold_skips);
      ("warm_threshold_skips", Json.Int warm_skips);
      ("reduction_pct", Json.Float reduction);
      ("pass", Json.Bool warm_pass);
    ];

  Printf.printf "\nplans verified bit-identical to cold runs before all timing (would fail loudly)\n";
  if !all_pass then Printf.printf "gate: PASS (bit-identity, >=5x speedup, warm-start reduction)\n"
  else begin
    Printf.printf "gate: FAIL\n";
    exit 1
  end

(* Experiment "robust": regret under cardinality-estimate error.

   The harness perturbs the catalog each optimizer sees (log-normal
   multiplicative error, [level] decades of standard deviation), then
   judges the chosen plan under the true statistics: regret =
   true cost of chosen plan / true optimal cost.

   Two acceptance gates ride along:

   1. Exact methods at level 0 have regret exactly 1 (the perturbation
      at level 0 is the identity, so the DP's plan *is* the optimum) —
      within 1e-9 for re-costing round-off, which the repo's costing
      invariants keep at zero.

   2. The estimate-free simpli-squared tier is noise-invariant: its
      regret samples are bit-identical across every error level of a
      topology, because it never reads the numbers being perturbed.

   `bench robust --json BENCH_robust.json` refreshes the committed
   artifact. *)

module Cost_model = Blitz_cost.Cost_model
module Regret = Blitz_robust.Regret
module Noise = Blitz_robust.Noise
module Json = Blitz_util.Json

let levels = if Bench_config.fast then [ 0.0; 1.0 ] else [ 0.0; 0.5; 1.0; 2.0 ]
let seeds = if Bench_config.fast then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ]
(* cycle+3 needs n >= 9 *)
let n = if Bench_config.fast then 9 else 11

let gate_exact_at_zero (r : Regret.report) =
  List.iter
    (fun (c : Regret.cell) ->
      if c.Regret.optimizer = "exact" && c.Regret.level = 0.0 then
        Array.iter
          (fun regret ->
            if Float.abs (regret -. 1.0) > 1e-9 then
              failwith
                (Printf.sprintf "robust gate: exact regret %.17g <> 1 at level 0 (%s)" regret
                   c.Regret.topology))
          c.Regret.regrets)
    r.Regret.cells

let gate_simpli_invariant (r : Regret.report) =
  List.iter
    (fun topology ->
      let rows =
        List.filter
          (fun (c : Regret.cell) ->
            c.Regret.optimizer = "simpli-squared" && c.Regret.topology = topology)
          r.Regret.cells
      in
      match rows with
      | [] -> failwith "robust gate: no simpli-squared cells"
      | first :: rest ->
        List.iter
          (fun (c : Regret.cell) ->
            if c.Regret.regrets <> first.Regret.regrets then
              failwith
                (Printf.sprintf "robust gate: simpli-squared regret varies with noise (%s)"
                   topology))
          rest)
    r.Regret.topologies

let run () =
  Bench_config.header "Experiment robust: plan-cost regret under estimate error";
  let t0 = Unix.gettimeofday () in
  let report = Regret.run ~mode:Noise.Lognormal ~levels ~seeds ~n Cost_model.kdnl in
  let elapsed = Unix.gettimeofday () -. t0 in
  gate_exact_at_zero report;
  gate_simpli_invariant report;
  Format.printf "%a@." Regret.pp report;
  Printf.printf "gates: exact regret = 1 at level 0; simpli-squared noise-invariant — OK\n";
  Printf.printf "swept %d cells in %s s\n" (List.length report.Regret.cells)
    (Bench_config.seconds elapsed);
  List.iter
    (fun (c : Regret.cell) ->
      Bench_json.emit ~experiment:"robust"
        [
          ("optimizer", Json.String c.Regret.optimizer);
          ("topology", Json.String c.Regret.topology);
          ("level", Json.Float c.Regret.level);
          ("samples", Json.Int c.Regret.summary.Regret.samples);
          ("min", Json.Float c.Regret.summary.Regret.min);
          ("mean", Json.Float c.Regret.summary.Regret.mean);
          ("p50", Json.Float c.Regret.summary.Regret.p50);
          ("p90", Json.Float c.Regret.summary.Regret.p90);
          ("max", Json.Float c.Regret.summary.Regret.max);
        ])
    report.Regret.cells;
  Bench_json.emit ~experiment:"robust-config"
    [
      ("n", Json.Int report.Regret.n);
      ("model", Json.String report.Regret.model_name);
      ("mode", Json.String (Noise.mode_name report.Regret.mode));
      ("levels", Json.List (List.map (fun l -> Json.Float l) report.Regret.levels));
      ("seeds", Json.List (List.map (fun s -> Json.Int s) report.Regret.seeds));
      ( "optima",
        Json.Obj (List.map (fun (t, c) -> (t, Json.Float c)) report.Regret.optima) );
    ]

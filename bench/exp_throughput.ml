(* Experiment "throughput": the engine-session claim.

   The paper's pitch is that blitzsplit's constants are tiny; the
   engine's pitch is that a fresh O(2^n) table allocation per query
   (plus a counters record) taxes exactly the small, fast queries those
   constants win on.  This experiment measures repeated-query
   throughput (queries/second) two ways over the same batch:

     fresh    a new Registry ctx — and therefore a new DP table —
              per query (the pre-engine serving shape);
     session  one engine session: ctx built once ([Engine.ctx]), each
              query dispatched through the registry against the
              session's arena-pooled table and counters — the loop
              [Engine.optimize_many] runs, minus materializing the
              detached outcome list a measurement loop discards.

   Every query's cost is verified identical between the fresh path and
   [Engine.optimize_many] before timing (the bit-identical session
   claim; fails loudly).
   Timing is wall-clock with adaptive repetition.  Records go to the
   shared --json collector: `bench throughput --json BENCH_engine.json`
   refreshes the repository's recorded numbers.  Single-core
   (num_domains = 1) — honest allocator-vs-arena numbers, no
   parallelism in either path. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module Json = Blitz_util.Json

let wall () = Unix.gettimeofday ()

(* Mean wall-clock seconds per call of [f]: at least [min_runs] calls
   and [min_total] accumulated seconds (footnote-4 protocol). *)
let time_wall ~min_total ~min_runs f =
  let t0 = wall () in
  f ();
  let once = wall () -. t0 in
  let runs = ref 1 and total = ref once in
  while !runs < min_runs || !total < min_total do
    let t0 = wall () in
    f ();
    total := !total +. (wall () -. t0);
    incr runs
  done;
  !total /. float_of_int !runs

(* The two paths differ by fractions of a microsecond per query, well
   inside this host's CPU-frequency drift over a single measurement.
   Interleave the paths over [rounds] and keep each path's best round,
   so slow-host moments penalize both paths alike. *)
let interleaved ~rounds ~min_total ~min_runs fresh session =
  let best = ref (time_wall ~min_total ~min_runs fresh, time_wall ~min_total ~min_runs session) in
  for _ = 2 to rounds do
    let f = time_wall ~min_total ~min_runs fresh in
    let s = time_wall ~min_total ~min_runs session in
    let bf, bs = !best in
    best := (Float.min bf f, Float.min bs s)
  done;
  !best

(* A batch that looks like repeated-query traffic: topologies, mean
   cardinalities and variabilities rotate query to query, plus a pure
   Cartesian-product query (no graph) every sixth slot. *)
let batch ~n ~size =
  let topologies = [| Topology.Chain; Topology.Star; Topology.Clique; Topology.Cycle_plus 1 |] in
  let mean_cards = [| 100.0; 1000.0; 10000.0 |] in
  let variabilities = [| 0.0; 0.5 |] in
  List.init size (fun i ->
      if i mod 6 = 5 then
        Registry.problem (Blitz_catalog.Catalog.uniform ~n ~card:100.0)
      else
        let spec =
          Workload.spec ~n
            ~topology:topologies.(i mod 4)
            ~model:Cost_model.kdnl
            ~mean_card:mean_cards.(i mod 3)
            ~variability:variabilities.(i mod 2)
        in
        let catalog, graph = Workload.problem spec in
        Registry.problem ~graph catalog)

let run () =
  Bench_config.header "Engine throughput: arena-pooled session vs fresh allocation per query";
  let ns = if Bench_config.fast then [ 6; 8; 10 ] else [ 6; 8; 10; 12 ] in
  let size = 24 in
  let min_total = if Bench_config.fast then 0.05 else 0.5 in
  let min_runs = 2 in
  let model = Cost_model.kdnl in
  let cores = Blitz_parallel.Parallel_blitzsplit.recommended_domains () in
  Printf.printf "batch of %d queries per n (mixed topology/cardinality, every 6th a pure product)\n"
    size;
  Printf.printf "single-core in both paths; host has %d core(s) available\n" cores;
  let rows =
    List.map
      (fun n ->
        let problems = batch ~n ~size in
        let fresh_costs =
          List.map (fun p -> (Registry.optimize (Registry.ctx model) p).Registry.cost) problems
        in
        Engine.with_session ~model (fun session ->
            (* Bit-identical check before timing: the session path must
               reproduce the fresh path's cost on every query. *)
            let session_outcomes = Engine.optimize_many session (List.to_seq problems) in
            List.iteri
              (fun i (fresh, o) ->
                if fresh <> o.Registry.cost then
                  failwith
                    (Printf.sprintf
                       "session cost diverged at n=%d query %d: %.17g vs %.17g" n i
                       o.Registry.cost fresh))
              (List.combine fresh_costs session_outcomes);
            let entry = Registry.find_exn "exact" in
            let ctr = Engine.counters session in
            let sctx = Engine.ctx ~counters:ctr session in
            let fresh_s, session_s =
              interleaved ~rounds:7 ~min_total ~min_runs
                (fun () ->
                  List.iter
                    (fun p -> ignore (Registry.optimize (Registry.ctx model) p))
                    problems)
                (fun () ->
                  List.iter
                    (fun p ->
                      Blitz_core.Counters.reset ctr;
                      ignore (entry.Registry.optimize sctx p))
                    problems)
            in
            let qps s = float_of_int size /. s in
            Bench_json.emit ~experiment:"throughput"
              [
                ("n", Json.Int n);
                ("batch", Json.Int size);
                ("model", Json.String "kdnl");
                ("cores_used", Json.Int 1);
                ("cores_available", Json.Int cores);
                ("fresh_qps", Json.Float (qps fresh_s));
                ("session_qps", Json.Float (qps session_s));
                ("speedup", Json.Float (fresh_s /. session_s));
              ];
            [|
              string_of_int n;
              Printf.sprintf "%.0f" (qps fresh_s);
              Printf.sprintf "%.0f" (qps session_s);
              Printf.sprintf "%.2fx" (fresh_s /. session_s);
            |]))
      ns
  in
  Blitz_util.Ascii_table.print
    ~header:[| "n"; "fresh (q/s)"; "session (q/s)"; "session speedup" |]
    (Array.of_list rows);
  Printf.printf "\nsession costs verified bit-identical to fresh on every query (would fail loudly)\n"

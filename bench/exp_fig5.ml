(* Experiment "fig5": close-ups of two Figure 4 cells with the extended
   mean-cardinality axis (to 10^6) — (a) kappa_0 x chain and
   (b) kappa_dnl x cycle+3.

   Expected shape: (a) settles around the Cartesian-product-optimizer
   time once cardinality leaves 1; (b) is slower overall and more
   sensitive at low cardinalities. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model

let cells =
  [
    ("(a)", Cost_model.naive, Topology.Chain);
    ("(b)", Cost_model.kdnl, Topology.Cycle_plus 3);
  ]

let run () =
  let n = Bench_config.n in
  Bench_config.header (Printf.sprintf "Figure 5: close-ups at n = %d" n);
  List.iter
    (fun (label, model, topology) ->
      Printf.printf "\n-- %s model %s, topology %s (seconds) --\n" label
        model.Cost_model.name (Topology.name topology);
      let header =
        Array.append [| "mean card \\ v" |]
          (Array.map (fun v -> Printf.sprintf "v=%.2f" v) Bench_config.variabilities)
      in
      let rows =
        Array.map
          (fun mu ->
            Array.append
              [| Printf.sprintf "%.4g" mu |]
              (Array.map
                 (fun v ->
                   let spec = Workload.spec ~n ~topology ~model ~mean_card:mu ~variability:v in
                   let catalog, graph = Workload.problem spec in
                   Bench_config.seconds
                     (Bench_config.time (fun () ->
                          ignore (Bench_opt.run model catalog (Some graph)))))
                 Bench_config.variabilities))
          Bench_config.mean_cards_fig5
      in
      Blitz_util.Ascii_table.print ~header rows)
    cells

(* Experiment "split": nanoseconds per split-loop iteration of the
   monomorphized kernels vs the retained Reference kernel, plus the two
   hard microkernel gates:

   - zero-allocation: a warm find_best_split sweep over the whole
     lattice must not move Gc.minor_words for any of the three paper
     models (the specialized kernels carry their loop state in tail-call
     arguments — a regression to boxed floats or closures shows up here
     deterministically, no timing involved);
   - speedup: the specialized kernel must beat Reference by the gate
     ratio on the densest cell (clique, kappa_0, the largest common n),
     best-of-R interleaved minima on both sides.

   Every cell also asserts bit-identity: costs (compared as IEEE bit
   patterns), best_lhs links, extracted plans and all split-loop
   counters must match Reference exactly.  A DP sweep in increasing
   subset order is idempotent — every proper subset of s is numerically
   smaller than s, so each sweep sees exactly the table state the
   previous one wrote — which is what lets us re-run the kernel over a
   converged table as a timing loop.

   `bench split --json BENCH_split.json` commits the measured
   trajectory; the "gates" record carries the pass/fail verdicts. *)

module Catalog = Blitz_catalog.Catalog
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Workload = Blitz_workload.Workload
module Dp_table = Blitz_core.Dp_table
module Split_loop = Blitz_core.Split_loop
module Counters = Blitz_core.Counters
module Json = Blitz_util.Json

let wall () = Unix.gettimeofday ()

(* Gates (full mode).  Fast mode keeps both gates armed — CI runs it —
   but relaxes the speedup ratio: at n <= 12 the whole table fits in L2
   and the reference kernel's extra column walks are cheap, so the
   interleaving win is structurally smaller there. *)
let speedup_gate = 1.25
let speedup_gate_fast = 1.05

let fill_properties tbl model graph =
  for s = 3 to Dp_table.size tbl - 1 do
    if s land (s - 1) <> 0 then Split_loop.compute_properties_join tbl model graph s
  done

(* One full kernel sweep over the non-singleton subsets in increasing
   order.  [kernel] is either find_best_split or Reference's. *)
let sweep kernel tbl model ctr =
  let last = Dp_table.size tbl - 1 in
  for s = 3 to last do
    if s land (s - 1) <> 0 then kernel tbl model ctr ~threshold:Float.infinity s
  done

(* Minor-heap words allocated across [f], net of the sampling overhead
   (Gc.minor_words itself returns a boxed float, so even a noop measures
   one box; subtract that baseline). *)
let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let noop_baseline = minor_delta (fun () -> ())

type cell = {
  topology : Topology.t;
  model : Cost_model.t;
  n : int;
  subsets : int;
  iters : int;
  ref_ns : float;
  new_ns : float;
  minor_words_per_call : float;
  rounds : int;
}

let prepared_table spec =
  let catalog, graph = Workload.problem spec in
  let tbl = Dp_table.create ~with_pi_fan:true spec.Workload.n in
  Split_loop.init_singletons tbl spec.Workload.model catalog;
  fill_properties tbl spec.Workload.model graph;
  tbl

let check_bit_identity ~label tblR tblN ctrR ctrN =
  let fail fmt = Printf.ksprintf failwith ("split: " ^^ fmt) in
  for s = 1 to Dp_table.size tblR - 1 do
    if
      Int64.bits_of_float tblR.Dp_table.cost.(s) <> Int64.bits_of_float tblN.Dp_table.cost.(s)
    then
      fail "%s: cost diverged at subset %d: %.17g vs %.17g" label s tblR.Dp_table.cost.(s)
        tblN.Dp_table.cost.(s);
    if Int64.bits_of_float tblR.Dp_table.pair.(2 * s) <> Int64.bits_of_float tblR.Dp_table.cost.(s)
    then fail "%s: pair column out of sync with cost at subset %d" label s;
    if tblR.Dp_table.best_lhs.(s) <> tblN.Dp_table.best_lhs.(s) then
      fail "%s: best_lhs diverged at subset %d: %d vs %d" label s tblR.Dp_table.best_lhs.(s)
        tblN.Dp_table.best_lhs.(s)
  done;
  let full = Dp_table.size tblR - 1 in
  if Dp_table.extract_plan tblR full <> Dp_table.extract_plan tblN full then
    fail "%s: extracted plans diverged" label;
  let check name a b = if a <> b then fail "%s: counter %s diverged: %d vs %d" label name a b in
  check "subsets" ctrR.Counters.subsets ctrN.Counters.subsets;
  check "loop_iters" ctrR.Counters.loop_iters ctrN.Counters.loop_iters;
  check "operand_sums" ctrR.Counters.operand_sums ctrN.Counters.operand_sums;
  check "dprime_evals" ctrR.Counters.dprime_evals ctrN.Counters.dprime_evals;
  check "improvements" ctrR.Counters.improvements ctrN.Counters.improvements;
  check "threshold_skips" ctrR.Counters.threshold_skips ctrN.Counters.threshold_skips;
  check "infeasible" ctrR.Counters.infeasible ctrN.Counters.infeasible

let measure_cell ~rounds spec =
  let model = spec.Workload.model and n = spec.Workload.n in
  let label = Workload.describe spec in
  (* Two independently converged tables: Reference's and the
     specialized kernel's, bit-compared afterwards. *)
  let tblR = prepared_table spec and tblN = prepared_table spec in
  let ctrR = Counters.create () and ctrN = Counters.create () in
  sweep Split_loop.Reference.find_best_split tblR model ctrR;
  sweep Split_loop.find_best_split tblN model ctrN;
  check_bit_identity ~label tblR tblN ctrR ctrN;
  let subsets = ctrN.Counters.subsets and iters = ctrN.Counters.loop_iters in
  (* Allocation gate input: a warm sweep of the specialized kernel (the
     two sweeps above warmed both tables and the code paths). *)
  let scratch = Counters.create () in
  let minor_words =
    minor_delta (fun () -> sweep Split_loop.find_best_split tblN model scratch)
    -. noop_baseline
  in
  (* Interleaved best-of-R: alternate reference and specialized sweeps
     so drift (frequency scaling, competing load) hits both kernels
     symmetrically; keep each side's minimum. *)
  let ref_best = ref Float.infinity and new_best = ref Float.infinity in
  for _ = 1 to rounds do
    let t0 = wall () in
    sweep Split_loop.Reference.find_best_split tblR model scratch;
    ref_best := Float.min !ref_best (wall () -. t0);
    let t0 = wall () in
    sweep Split_loop.find_best_split tblN model scratch;
    new_best := Float.min !new_best (wall () -. t0)
  done;
  let per_iter s = s *. 1e9 /. float_of_int iters in
  {
    topology = spec.Workload.topology;
    model;
    n;
    subsets;
    iters;
    ref_ns = per_iter !ref_best;
    new_ns = per_iter !new_best;
    minor_words_per_call = minor_words /. float_of_int subsets;
    rounds;
  }

let run () =
  Bench_config.header "Split: ns per split-loop iteration, specialized kernels vs Reference";
  let fast = Bench_config.fast in
  let ns = if fast then [ 10; 12 ] else [ 12; 14; 15; 16; 18 ] in
  let topologies = [ Topology.Chain; Topology.Star; Topology.Clique ] in
  let models = [ Cost_model.naive; Cost_model.sort_merge; Cost_model.kdnl ] in
  let gate_n = List.fold_left max 0 (List.filter (fun n -> n <= 15) ns) in
  let gate = if fast then speedup_gate_fast else speedup_gate in
  Printf.printf
    "grid: {chain,star,clique} x {k0,ksm,kdnl} x n=%s; best-of-R interleaved minima\n"
    (String.concat "," (List.map string_of_int ns));
  let cells = ref [] in
  List.iter
    (fun n ->
      let rounds = if fast then 5 else if n <= 16 then 7 else 3 in
      if (not fast) && n > 16 then
        Printf.printf "note: n=%d uses best-of-%d (each sweep is ~3^%d iterations)\n" n rounds n;
      List.iter
        (fun topology ->
          List.iter
            (fun model ->
              let spec =
                Workload.spec ~n ~topology ~model ~mean_card:100.0 ~variability:(1.0 /. 3.0)
              in
              let cell = measure_cell ~rounds spec in
              cells := cell :: !cells;
              Bench_json.emit ~experiment:"split"
                [
                  ("topology", Json.String (Topology.name topology));
                  ("model", Json.String model.Cost_model.name);
                  ("kernel", Json.String (Split_loop.variant model));
                  ("n", Json.Int n);
                  ("subsets", Json.Int cell.subsets);
                  ("iters_per_sweep", Json.Int cell.iters);
                  ("rounds", Json.Int cell.rounds);
                  ("reference_ns_per_iter", Json.Float cell.ref_ns);
                  ("specialized_ns_per_iter", Json.Float cell.new_ns);
                  ("speedup", Json.Float (cell.ref_ns /. cell.new_ns));
                  ("minor_words_per_call", Json.Float cell.minor_words_per_call);
                  ("bit_identical", Json.Bool true);
                ])
            models)
        topologies)
    ns;
  let cells = List.rev !cells in
  let header =
    [| "topology"; "model"; "kernel"; "n"; "ref ns/it"; "spec ns/it"; "speedup"; "mw/call" |]
  in
  let rows =
    List.map
      (fun c ->
        [|
          Topology.name c.topology;
          c.model.Cost_model.name;
          Split_loop.variant c.model;
          string_of_int c.n;
          Printf.sprintf "%.2f" c.ref_ns;
          Printf.sprintf "%.2f" c.new_ns;
          Printf.sprintf "%.2fx" (c.ref_ns /. c.new_ns);
          Printf.sprintf "%.3f" c.minor_words_per_call;
        |])
      cells
  in
  Blitz_util.Ascii_table.print ~header (Array.of_list rows);
  Printf.printf "\nbit-identity: every cell matched Reference (costs, best_lhs, plans, counters)\n";
  (* Zero-allocation gate: every paper-model cell, not just the gated
     one — the three kernels have different loop bodies and each must
     stay allocation-free. *)
  let leaks =
    List.filter (fun c -> c.minor_words_per_call <> 0.0) cells
  in
  if leaks <> [] then begin
    List.iter
      (fun c ->
        Printf.printf "ALLOCATION: %s %s n=%d: %.3f minor words/call\n" (Topology.name c.topology)
          c.model.Cost_model.name c.n c.minor_words_per_call)
      leaks;
    failwith "split: zero-allocation gate failed"
  end;
  Printf.printf "zero-allocation gate: PASS (Gc.minor_words delta = 0 across warm sweeps)\n";
  (* Speedup gate on the densest common cell: clique, kappa_0 at the
     largest n <= 15 in the grid (n=15 full, n=12 fast). *)
  let gated =
    List.find
      (fun c -> c.topology = Topology.Clique && c.model.Cost_model.name = "k0" && c.n = gate_n)
      cells
  in
  let speedup = gated.ref_ns /. gated.new_ns in
  Bench_json.emit ~experiment:"split"
    [
      ("record", Json.String "gates");
      ("zero_allocation", Json.String "pass");
      ("speedup_gate_cell", Json.String (Printf.sprintf "clique/k0/n=%d" gate_n));
      ("speedup_gate_threshold", Json.Float gate);
      ("speedup_measured", Json.Float speedup);
      ("fast", Json.Bool fast);
    ];
  if speedup < gate then
    failwith
      (Printf.sprintf "split: speedup gate failed on clique/k0/n=%d: %.2fx < %.2fx" gate_n
         speedup gate)
  else Printf.printf "speedup gate: PASS (%.2fx >= %.2fx on clique/k0/n=%d)\n" speedup gate gate_n;
  Printf.printf "all split gates passed\n"

(* Experiment "obs": the observability overhead gate.

   The instrumentation contract (lib/obs) is that a disabled probe is
   one [Atomic.get] branch and an enabled metrics probe is a handful of
   atomic adds — nothing a query optimizer notices.  This experiment
   holds that contract to numbers: it runs the same mixed batch through
   one engine session with metrics off and with metrics on, interleaved
   best-of-rounds (the exp_throughput protocol, so CPU-frequency drift
   penalizes both configurations alike), and reports the relative
   slowdown of the enabled path.

   The gate: at every n, enabled-metrics overhead must stay under 2%
   relative OR under 500 ns per query absolute.  The absolute arm
   exists because the instrumentation cost is fixed while the split
   kernels keep getting faster: at n = 6 a whole query is ~3.5 us, so
   2% is ~70 ns — less than the four histogram observations on the
   per-query path cost even in principle (each is a bucket search plus
   three fenced atomic RMWs).  A relative-only gate there measures the
   optimizer's speed, not the instrumentation's weight; the absolute
   ceiling still trips on anything a query would notice (a mutex, a
   per-subset probe, tracing on the metrics path).  `bench obs --json
   BENCH_obs.json` refreshes the repository's recorded numbers; the
   committed BENCH_obs.json is the acceptance artifact.  Plans are additionally checked bit-identical between the
   two configurations before timing (instrumentation must never steer
   the search).  Tracing stays off in both paths — spans read the clock
   and allocate, and the hot seams only carry per-pass/per-rank spans
   precisely so traced runs stay cheap; the metrics gate is the one the
   per-subset seams must pass. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module Metrics = Blitz_obs.Metrics
module Json = Blitz_util.Json

let wall () = Unix.gettimeofday ()

let time_wall ~min_total ~min_runs f =
  let t0 = wall () in
  f ();
  let once = wall () -. t0 in
  let runs = ref 1 and total = ref once in
  while !runs < min_runs || !total < min_total do
    let t0 = wall () in
    f ();
    total := !total +. (wall () -. t0);
    incr runs
  done;
  !total /. float_of_int !runs

let interleaved ~rounds ~min_total ~min_runs off on =
  let best = ref (time_wall ~min_total ~min_runs off, time_wall ~min_total ~min_runs on) in
  for _ = 2 to rounds do
    let o = time_wall ~min_total ~min_runs off in
    let e = time_wall ~min_total ~min_runs on in
    let bo, be = !best in
    best := (Float.min bo o, Float.min be e)
  done;
  !best

(* Same traffic shape as exp_throughput: rotating topologies and
   cardinalities, every sixth query a pure Cartesian product. *)
let batch ~n ~size =
  let topologies = [| Topology.Chain; Topology.Star; Topology.Clique; Topology.Cycle_plus 1 |] in
  let mean_cards = [| 100.0; 1000.0; 10000.0 |] in
  let variabilities = [| 0.0; 0.5 |] in
  List.init size (fun i ->
      if i mod 6 = 5 then
        Registry.problem (Blitz_catalog.Catalog.uniform ~n ~card:100.0)
      else
        let spec =
          Workload.spec ~n
            ~topology:topologies.(i mod 4)
            ~model:Cost_model.kdnl
            ~mean_card:mean_cards.(i mod 3)
            ~variability:variabilities.(i mod 2)
        in
        let catalog, graph = Workload.problem spec in
        Registry.problem ~graph catalog)

let gate_pct = 2.0
let gate_abs_ns = 500.0

let run () =
  Bench_config.header "Observability overhead: metrics enabled vs disabled, same session";
  let ns = if Bench_config.fast then [ 6; 8; 10 ] else [ 6; 7; 8; 9; 10; 11; 12 ] in
  let size = 24 in
  let min_total = if Bench_config.fast then 0.05 else 0.4 in
  let min_runs = 2 in
  let model = Cost_model.kdnl in
  Printf.printf
    "batch of %d queries per n (mixed topology/cardinality, every 6th a pure product)\n" size;
  Printf.printf
    "gate: metrics-on overhead < %.0f%% (or < %.0f ns/query absolute) at every n; tracing off in both paths\n\n"
    gate_pct gate_abs_ns;
  let was_enabled = Metrics.enabled () in
  let all_pass = ref true in
  let rows =
    List.map
      (fun n ->
        let problems = batch ~n ~size in
        Engine.with_session ~model (fun session ->
            let entry = Registry.find_exn "exact" in
            let ctr = Engine.counters session in
            let sctx = Engine.ctx ~counters:ctr session in
            let run_batch () =
              List.iter
                (fun p ->
                  Blitz_core.Counters.reset ctr;
                  ignore (entry.Registry.optimize sctx p))
                problems
            in
            let costs_with enabled =
              Metrics.set_enabled enabled;
              List.map
                (fun p ->
                  Blitz_core.Counters.reset ctr;
                  (entry.Registry.optimize sctx p).Registry.cost)
                problems
            in
            (* Bit-identity before timing: metrics must not steer the search. *)
            List.iteri
              (fun i (off, on) ->
                if off <> on then
                  failwith
                    (Printf.sprintf "metrics changed plan cost at n=%d query %d: %.17g vs %.17g"
                       n i off on))
              (List.combine (costs_with false) (costs_with true));
            let off_s, on_s =
              interleaved ~rounds:7 ~min_total ~min_runs
                (fun () ->
                  Metrics.set_enabled false;
                  run_batch ())
                (fun () ->
                  Metrics.set_enabled true;
                  run_batch ())
            in
            Metrics.set_enabled false;
            let qps s = float_of_int size /. s in
            let overhead_pct = 100.0 *. ((on_s /. off_s) -. 1.0) in
            let overhead_ns = (on_s -. off_s) *. 1e9 /. float_of_int size in
            let pass = overhead_pct < gate_pct || overhead_ns < gate_abs_ns in
            if not pass then all_pass := false;
            Bench_json.emit ~experiment:"obs"
              [
                ("n", Json.Int n);
                ("batch", Json.Int size);
                ("model", Json.String "kdnl");
                ("optimizer", Json.String "exact");
                ("off_qps", Json.Float (qps off_s));
                ("on_qps", Json.Float (qps on_s));
                ("overhead_pct", Json.Float overhead_pct);
                ("overhead_ns_per_query", Json.Float overhead_ns);
                ("gate_pct", Json.Float gate_pct);
                ("gate_abs_ns", Json.Float gate_abs_ns);
                ("pass", Json.Bool pass);
              ];
            [|
              string_of_int n;
              Printf.sprintf "%.0f" (qps off_s);
              Printf.sprintf "%.0f" (qps on_s);
              Printf.sprintf "%+.2f%%" overhead_pct;
              Printf.sprintf "%+.0f" overhead_ns;
              (if pass then "pass" else "FAIL");
            |]))
      ns
  in
  Metrics.set_enabled was_enabled;
  Blitz_util.Ascii_table.print
    ~header:[| "n"; "metrics off (q/s)"; "metrics on (q/s)"; "overhead"; "ns/query"; "gate" |]
    (Array.of_list rows);
  Printf.printf "\nplan costs verified bit-identical with metrics on vs off (would fail loudly)\n";
  if !all_pass then Printf.printf "gate: PASS at every n\n"
  else begin
    Printf.printf "gate: FAIL — metrics overhead exceeded %.0f%% and %.0f ns/query\n" gate_pct
      gate_abs_ns;
    exit 1
  end

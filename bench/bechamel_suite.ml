(* Statistically robust micro-benchmarks: one Bechamel test per paper
   table/figure, each timing the kernel that experiment sweeps (at a
   single representative grid point so a bechamel run stays quick; the
   full sweeps live in the exp_* harnesses). *)

open Bechamel
open Toolkit
module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Catalog = Blitz_catalog.Catalog
module B = Blitz_baselines

let bench_n = if Bench_config.fast then 10 else 12

let problem ~model ~topology ~mu ~v =
  let spec = Workload.spec ~n:bench_n ~topology ~model ~mean_card:mu ~variability:v in
  Workload.problem spec

let table1_test =
  let catalog = Catalog.of_list [ ("A", 10.0); ("B", 20.0); ("C", 30.0); ("D", 40.0) ] in
  Test.make ~name:"table1: 4-way product DP"
    (Staged.stage (fun () -> ignore (Bench_opt.run Cost_model.naive catalog None)))

let fig2_test =
  let catalog = Catalog.uniform ~n:bench_n ~card:100.0 in
  Test.make
    ~name:(Printf.sprintf "fig2: %d-way product DP" bench_n)
    (Staged.stage (fun () -> ignore (Bench_opt.run Cost_model.naive catalog None)))

let fig4_test =
  let catalog, graph = problem ~model:Cost_model.kdnl ~topology:Topology.Clique ~mu:100.0 ~v:0.5 in
  Test.make
    ~name:(Printf.sprintf "fig4: n=%d clique kdnl mu=100" bench_n)
    (Staged.stage (fun () -> ignore (Bench_opt.run Cost_model.kdnl catalog (Some graph))))

let fig5a_test =
  let catalog, graph = problem ~model:Cost_model.naive ~topology:Topology.Chain ~mu:100.0 ~v:0.0 in
  Test.make
    ~name:(Printf.sprintf "fig5a: n=%d chain k0 mu=100" bench_n)
    (Staged.stage (fun () -> ignore (Bench_opt.run Cost_model.naive catalog (Some graph))))

let fig5b_test =
  let catalog, graph =
    problem ~model:Cost_model.kdnl ~topology:(Topology.Cycle_plus 3) ~mu:100.0 ~v:0.0
  in
  Test.make
    ~name:(Printf.sprintf "fig5b: n=%d cycle+3 kdnl mu=100" bench_n)
    (Staged.stage (fun () -> ignore (Bench_opt.run Cost_model.kdnl catalog (Some graph))))

let fig6_test =
  let catalog, graph = problem ~model:Cost_model.naive ~topology:Topology.Chain ~mu:1e4 ~v:0.0 in
  Test.make
    ~name:(Printf.sprintf "fig6: n=%d chain k0 mu=1e4, threshold 1e9" bench_n)
    (Staged.stage (fun () ->
         ignore
           (Bench_opt.run ~optimizer:"thresholded" ~threshold:1e9 Cost_model.naive catalog
              (Some graph))))

let counts_test =
  let catalog, graph = problem ~model:Cost_model.sort_merge ~topology:Topology.Clique ~mu:1.0 ~v:0.0 in
  Test.make
    ~name:(Printf.sprintf "counts: n=%d clique ksm mu=1 (worst case)" bench_n)
    (Staged.stage (fun () -> ignore (Bench_opt.run Cost_model.sort_merge catalog (Some graph))))

let compare_test =
  let catalog, graph = problem ~model:Cost_model.kdnl ~topology:Topology.Star ~mu:100.0 ~v:0.5 in
  Test.make
    ~name:(Printf.sprintf "compare: n=%d star dpsize enumerator" bench_n)
    (Staged.stage (fun () -> ignore (B.Dpsize.optimize Cost_model.kdnl catalog graph)))

let suite =
  Test.make_grouped ~name:"blitz" ~fmt:"%s %s"
    [
      table1_test;
      fig2_test;
      fig4_test;
      fig5a_test;
      fig5b_test;
      fig6_test;
      counts_test;
      compare_test;
    ]

let run () =
  Bench_config.header "Bechamel micro-benchmarks (one per table/figure)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ minor_allocated; major_allocated; monotonic_clock ] in
  let quota = if Bench_config.fast then 0.25 else 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances suite in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results
  in
  Notty_unix.output_image (Notty_unix.eol img)

(* Registry dispatch for the bench experiments.

   Every optimizer invocation in bench/ goes through
   [Blitz_engine.Registry] so the harness measures exactly the code
   path the engine serves (and so adding an optimizer to the registry
   is enough for the comparison sweeps to pick it up). *)

module Registry = Blitz_engine.Registry

let run ?(optimizer = "exact") ?arena ?pool ?num_domains ?counters ?threshold ?seed ?multiway
    model catalog graph =
  Registry.optimize ~optimizer
    (Registry.ctx ?arena ?pool ?num_domains ?counters ?threshold ?seed ?multiway model)
    { Registry.catalog; graph }

let cost ?optimizer ?arena ?pool ?num_domains ?counters ?threshold ?seed model catalog graph =
  (run ?optimizer ?arena ?pool ?num_domains ?counters ?threshold ?seed model catalog graph)
    .Registry.cost

let plan_exn ?optimizer ?seed model catalog graph =
  Option.get (run ?optimizer ?seed model catalog graph).Registry.plan

(* Experiment "fig6": plan-cost thresholds (Section 6.4) on the two
   Figure 5 cells —
     (a) kappa_0 x chain with threshold 10^9;
     (b) kappa_dnl x cycle+3 with thresholds 10^5 and 10^14.

   Expected shape: thresholded optimization drops well below the
   unthresholded time as mean cardinality rises (to ~0.1s at n=15 in the
   paper for (a)); where a threshold is exceeded, multiple passes cause
   "ripples" — visible here as pass counts > 1 and time bumps. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Registry = Blitz_engine.Registry

let run_cell ~n ~label model topology thresholds =
  Printf.printf "\n-- %s model %s, topology %s, variability 0 --\n" label
    model.Cost_model.name (Topology.name topology);
  let header =
    Array.concat
      ([ [| "mean card"; "no threshold (s)" |] ]
      @ List.map
          (fun t -> [| Printf.sprintf "T=%.0e (s)" t; Printf.sprintf "passes@%.0e" t |])
          thresholds)
  in
  let rows =
    Array.map
      (fun mu ->
        let spec = Workload.spec ~n ~topology ~model ~mean_card:mu ~variability:0.0 in
        let catalog, graph = Workload.problem spec in
        let base =
          Bench_config.time (fun () -> ignore (Bench_opt.run model catalog (Some graph)))
        in
        let with_threshold t =
          let passes = ref 0 in
          let seconds =
            Bench_config.time (fun () ->
                let outcome =
                  Bench_opt.run ~optimizer:"thresholded" ~threshold:t model catalog (Some graph)
                in
                passes := outcome.Registry.passes)
          in
          (seconds, !passes)
        in
        let threshold_cols =
          List.concat_map
            (fun t ->
              let s, p = with_threshold t in
              [ Bench_config.seconds s; string_of_int p ])
            thresholds
        in
        Array.of_list ((Printf.sprintf "%.4g" mu :: Bench_config.seconds base :: threshold_cols)))
      Bench_config.mean_cards_fig5
  in
  Blitz_util.Ascii_table.print ~header rows

let run () =
  let n = Bench_config.n in
  Bench_config.header
    (Printf.sprintf "Figure 6: optimization with plan-cost thresholds at n = %d" n);
  run_cell ~n ~label:"(a)" Cost_model.naive Topology.Chain [ 1e9 ];
  run_cell ~n ~label:"(b)" Cost_model.kdnl (Topology.Cycle_plus 3) [ 1e5; 1e14 ]

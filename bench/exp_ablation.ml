(* Experiment "ablation": design-choice ablations called out in
   DESIGN.md.

   (1) Bushy-vs-left-deep kappa'' execution counts (Section 6.2): "in
       the worst case bushy search does far more work; but ordinarily,
       the kappa'' execution count is larger for bushy than for
       left-deep search by only a factor of (ln 2 / 2) n / ln n (about 2
       when n = 15)".  We instrument both DPs identically and report the
       ratio, plus the paper's predicted ranges.

   (2) Nested-if pruning itself: kappa'' evaluations with the pruning
       tiers versus the 3^n a pruning-free loop would pay.

   (3) Enumerator economy: split-loop iterations of blitzsplit (3^n-ish,
       topology-blind) versus dpsize pair inspections (4^n-ish) versus
       DPccp's exact connected-pair count per topology. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Counters = Blitz_core.Counters
module B = Blitz_baselines

let run () =
  let n = Bench_config.n in
  Bench_config.header (Printf.sprintf "Ablations at n = %d" n);

  (* (1) + (2): kappa'' counts, bushy vs left-deep. *)
  Printf.printf "\n-- kappa'' execution counts (model kdnl, mu = 100, v = 0) --\n";
  let nf = float_of_int n in
  let bushy_lower = Counters.predicted_dprime_lower n in
  let bushy_upper = Counters.predicted_dprime_upper n in
  let ld_lower = log nf *. (2.0 ** nf) in
  let ld_upper = nf /. 2.0 *. (2.0 ** nf) in
  Printf.printf "predicted: bushy in [%.0f, %.0f]; left-deep in [%.0f, %.0f]; ratio ~ %.2f\n"
    bushy_lower bushy_upper ld_lower ld_upper
    (0.5 *. log 2.0 *. nf /. log nf);
  let rows = ref [] in
  List.iter
    (fun topology ->
      List.iter
        (fun mu ->
          let spec =
            Workload.spec ~n ~topology ~model:Cost_model.kdnl ~mean_card:mu ~variability:0.0
          in
          let catalog, graph = Workload.problem spec in
          let bushy = Counters.create () in
          ignore (Bench_opt.run ~counters:bushy Cost_model.kdnl catalog (Some graph));
          let ld = Counters.create () in
          ignore (B.Leftdeep.optimize ~counters:ld Cost_model.kdnl catalog graph);
          rows :=
            [|
              Topology.name topology;
              Printf.sprintf "%.4g" mu;
              string_of_int bushy.Counters.dprime_evals;
              string_of_int ld.Counters.dprime_evals;
              Printf.sprintf "%.2f"
                (float_of_int bushy.Counters.dprime_evals
                /. float_of_int (max 1 ld.Counters.dprime_evals));
              Printf.sprintf "%.0f" bushy_upper;
            |]
            :: !rows)
        [ 1.0; 100.0; 10000.0 ])
    [ Topology.Chain; Topology.Star; Topology.Clique ];
  Blitz_util.Ascii_table.print
    ~header:[| "topology"; "mean card"; "bushy k''"; "left-deep k''"; "ratio"; "3^n (no pruning)" |]
    (Array.of_list (List.rev !rows));

  (* (3): enumeration economy across strategies. *)
  Printf.printf "\n-- enumerator work per topology (counts, not seconds) --\n";
  let rows = ref [] in
  List.iter
    (fun topology ->
      let spec =
        Workload.spec ~n ~topology ~model:Cost_model.naive ~mean_card:100.0 ~variability:0.0
      in
      let catalog, graph = Workload.problem spec in
      let dpsize = B.Dpsize.optimize Cost_model.naive catalog graph in
      let dpccp = B.Dpccp.optimize Cost_model.naive catalog graph in
      rows :=
        [|
          Topology.name topology;
          string_of_int (Counters.exact_loop_iters n);
          string_of_int dpsize.B.Dpsize.pairs_considered;
          string_of_int dpccp.B.Dpccp.ccp_pairs;
        |]
        :: !rows)
    Topology.all_paper;
  Blitz_util.Ascii_table.print
    ~header:
      [| "topology"; "blitzsplit splits (3^n-ish)"; "dpsize pairs (4^n-ish)"; "DPccp ccp pairs" |]
    (Array.of_list (List.rev !rows));
  Printf.printf
    "\nblitzsplit iterates the same 3^n-ish splits on every topology and relies on\n\
     nested-if pruning; DPccp touches only connected pairs but cannot produce plans\n\
     with Cartesian products.\n";

  (* (3b): the polynomial special case (Section 2 / IK84): on tree
     queries under C_out, IKKBZ computes the optimal product-free
     left-deep order in O(n^2 log n); the exponential DPs agree. *)
  Printf.printf "\n-- IKKBZ (polynomial, trees, C_out) vs the exponential DPs --\n";
  let rows = ref [] in
  List.iter
    (fun topology ->
      let spec =
        Workload.spec ~n ~topology ~model:Cost_model.naive ~mean_card:1000.0 ~variability:0.5
      in
      let catalog, graph = Workload.problem spec in
      let kbz, kbz_s = Blitz_util.Timer.time (fun () -> B.Ikkbz.optimize catalog graph) in
      let ld, ld_s =
        Blitz_util.Timer.time (fun () ->
            B.Leftdeep.optimize ~policy:B.Leftdeep.Forbidden Cost_model.naive catalog graph)
      in
      let bushy, bushy_s =
        Blitz_util.Timer.time (fun () ->
            Bench_opt.cost Cost_model.naive catalog (Some graph))
      in
      rows :=
        [|
          Topology.name topology;
          Printf.sprintf "%.6g (%.4fs)" kbz.B.Ikkbz.cost kbz_s;
          Printf.sprintf "%.6g (%.4fs)" ld.B.Leftdeep.cost ld_s;
          Printf.sprintf "%.6g (%.4fs)" bushy bushy_s;
        |]
        :: !rows)
    [ Topology.Chain; Topology.Star ];
  Blitz_util.Ascii_table.print
    ~header:[| "topology"; "IKKBZ"; "left-deep DP (no products)"; "bushy optimum" |]
    (Array.of_list (List.rev !rows));

  (* (4): interesting sort orders (Section 6.5 extension): plan quality
     of the (subset, order) DP against the order-blind min(ksm, kdnl)
     baseline it generalizes. *)
  Printf.printf "\n-- interesting orders vs order-blind min(ksm, kdnl) (mu = 1e5, v = 0.8) --\n";
  let n_orders = min n 13 in
  let rows = ref [] in
  List.iter
    (fun topology ->
      let spec =
        Workload.spec ~n:n_orders ~topology ~model:Cost_model.kdnl ~mean_card:100000.0
          ~variability:0.8
      in
      let catalog, graph = Workload.problem spec in
      let module O = Blitz_core.Blitzsplit_orders in
      let reference = O.sm_dnl_reference_cost catalog graph in
      let (result : O.result), seconds =
        Blitz_util.Timer.time (fun () -> O.optimize catalog graph)
      in
      rows :=
        [|
          Topology.name topology;
          Printf.sprintf "%.6g" reference;
          Printf.sprintf "%.6g" result.O.cost;
          Printf.sprintf "%.3f" (result.O.cost /. reference);
          Printf.sprintf "%.3f" seconds;
          string_of_int result.O.states;
        |]
        :: !rows)
    [ Topology.Chain; Topology.Cycle_plus 3; Topology.Star ];
  Blitz_util.Ascii_table.print
    ~header:
      [| "topology"; "order-blind cost"; "with order reuse"; "ratio"; "time (s)"; "states" |]
    (Array.of_list (List.rev !rows))

(* Experiment "fig4": the 4-dimensional performance-sensitivity grid of
   Figure 4 — optimization time over

     {kappa_0, kappa_sm, kappa_dnl} x {chain, cycle+3, star, clique}
       x mean cardinality (log axis) x variability,

   at n = 15 (configurable).  The paper renders 12 surface plots; we
   print the 12 corresponding tables (rows: mean cardinality, columns:
   variability).

   Expected shape ("chaise longue", Section 6.2): times are highest at
   mean cardinality 1, drop and flatten as cardinality grows; cliques
   and stars cost more than chains; kappa_dnl more than kappa_0; the
   differences shrink as cardinality (and, for cliques, variability)
   rises. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model

let time_cell spec =
  let catalog, graph = Workload.problem spec in
  Bench_config.time (fun () ->
      ignore (Bench_opt.run spec.Workload.model catalog (Some graph)))

let print_cell_table ~n model topology mean_cards variabilities =
  Printf.printf "\n-- model %s, topology %s (n = %d; seconds) --\n"
    model.Cost_model.name (Topology.name topology) n;
  let header =
    Array.append [| "mean card \\ v" |]
      (Array.map (fun v -> Printf.sprintf "v=%.2f" v) variabilities)
  in
  let rows =
    Array.map
      (fun mu ->
        Array.append
          [| Printf.sprintf "%.4g" mu |]
          (Array.map
             (fun v ->
               let spec =
                 Workload.spec ~n ~topology ~model ~mean_card:mu ~variability:v
               in
               Bench_config.seconds (time_cell spec))
             variabilities))
      mean_cards
  in
  Blitz_util.Ascii_table.print ~header rows

let run () =
  let n = Bench_config.n in
  Bench_config.header
    (Printf.sprintf "Figure 4: 4-D sensitivity grid at n = %d (3 models x 4 topologies)" n);
  List.iter
    (fun model ->
      List.iter
        (fun topology ->
          print_cell_table ~n model topology Bench_config.mean_cards_fig4
            Bench_config.variabilities)
        Topology.all_paper)
    Cost_model.all_paper

(* Experiment "hyper": the hybrid bushy+multiway optimizer.

   Two claims, each a CI-visible gate:

   1. ACYCLIC SAFETY — on chains, stars and random trees the --multiway
      run is bit-identical to the seed blitzsplit: same cost to the last
      bit, same plan, zero multiway winners.  The structural gate (only
      2-edge-connected induced subgraphs get an n-ary candidate) makes
      this a property of the code path, not of float luck.

   2. CYCLIC WINS — over a sweep of cyclic topologies (cliques, grids,
      cycles) at n >= 8, the hybrid's estimated cost is strictly below
      the best pure-binary plan on a majority of cells.  Every cell is
      emitted with provenance (both costs, the number of subsets the
      n-ary candidate won, the node count in the winning plan).  The
      losing cells are the honest story: on sparse cycles the n-ary
      build term (sum of all input cardinalities) already exceeds the
      whole binary plan, so the AGM candidate never fires — the
      technique pays off on dense cyclic cores, and the sweep says so
      per cell rather than averaging it away.

   `bench hyper --json BENCH_hyper.json` records the sweep. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Blitzsplit = Blitz_core.Blitzsplit
module Counters = Blitz_core.Counters
module Rng = Blitz_util.Rng
module Workload = Blitz_workload.Workload
module Json = Blitz_util.Json

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let workload n topo v =
  Workload.problem
    (Workload.spec ~n ~topology:topo ~model:Cost_model.kdnl ~mean_card:100.0 ~variability:v)

let random_tree ~seed ~n =
  let rng = Rng.create ~seed in
  let catalog = Catalog.of_cards (Array.init n (fun _ -> Rng.log_uniform rng ~lo:1.0 ~hi:1e4)) in
  let edges = ref [] in
  for i = 1 to n - 1 do
    let p = Rng.int rng i in
    edges := (p, i, Rng.log_uniform rng ~lo:1e-4 ~hi:1.0) :: !edges
  done;
  (catalog, Join_graph.of_edges ~n !edges)

let run () =
  Bench_config.header "Hyper: hybrid bushy+multiway vs pure-binary (kappa_dnl)";
  let model = Cost_model.kdnl in
  let gate_failures = ref [] in
  let gate name ok detail =
    if not ok then gate_failures := Printf.sprintf "%s: %s" name detail :: !gate_failures
  in

  (* {2 Gate 1: acyclic topologies are bit-identical to the seed} *)
  let acyclic_cells = ref 0 in
  let check_acyclic label catalog graph =
    incr acyclic_cells;
    let ctr = Counters.create () in
    let seed_run = Blitzsplit.optimize_join model catalog graph in
    let mw_run = Blitzsplit.optimize_join ~counters:ctr ~multiway:true model catalog graph in
    let seed_cost = Blitzsplit.best_cost seed_run in
    let mw_cost = Blitzsplit.best_cost mw_run in
    let nodes =
      match Blitzsplit.best_plan mw_run with Some p -> Plan.multiway_count p | None -> 0
    in
    gate
      (Printf.sprintf "acyclic bit-identity %s" label)
      (same_float seed_cost mw_cost && nodes = 0 && ctr.Counters.multiway_wins = 0)
      (Printf.sprintf "seed %.17g vs multiway %.17g, %d n-ary node(s), %d win(s)" seed_cost
         mw_cost nodes ctr.Counters.multiway_wins);
    Bench_json.emit ~experiment:"hyper"
      [
        ("kind", Json.String "acyclic");
        ("cell", Json.String label);
        ("cost", Json.Float seed_cost);
        ("bit_identical", Json.Bool (same_float seed_cost mw_cost));
        ("multiway_wins", Json.Int ctr.Counters.multiway_wins);
      ]
  in
  let acyclic_ns = if Bench_config.fast then [ 8; 10 ] else [ 6; 8; 10; 12; 14 ] in
  List.iter
    (fun n ->
      List.iter
        (fun v ->
          let catalog, graph = workload n Topology.Chain v in
          check_acyclic (Printf.sprintf "chain n=%d v=%.1f" n v) catalog graph;
          let catalog, graph = workload n Topology.Star v in
          check_acyclic (Printf.sprintf "star n=%d v=%.1f" n v) catalog graph)
        [ 0.0; 0.5; 1.0 ])
    acyclic_ns;
  List.iter
    (fun seed ->
      let n = 6 + (seed mod 7) in
      let catalog, graph = random_tree ~seed ~n in
      check_acyclic (Printf.sprintf "tree seed=%d n=%d" seed n) catalog graph)
    (List.init (if Bench_config.fast then 5 else 20) (fun i -> i + 1));
  Printf.printf "  acyclic: %d cells, all bit-identical to the seed optimizer\n" !acyclic_cells;

  (* {2 Gate 2: cyclic sweep — hybrid strictly below binary on a
     majority of cells, per-cell provenance} *)
  let cells = ref [] in
  let sweep label catalog graph =
    let ctr = Counters.create () in
    let binary = Blitzsplit.best_cost (Blitzsplit.optimize_join model catalog graph) in
    let hybrid_run = Blitzsplit.optimize_join ~counters:ctr ~multiway:true model catalog graph in
    let hybrid = Blitzsplit.best_cost hybrid_run in
    let nodes =
      match Blitzsplit.best_plan hybrid_run with Some p -> Plan.multiway_count p | None -> 0
    in
    let improved = hybrid < binary in
    gate
      (Printf.sprintf "hybrid never worse (%s)" label)
      (hybrid <= binary)
      (Printf.sprintf "hybrid %.17g above binary %.17g" hybrid binary);
    cells := (label, improved) :: !cells;
    Printf.printf "  %-22s binary %12.6g   hybrid %12.6g   %s (%d n-ary win(s), %d in plan)\n"
      label binary hybrid
      (if improved then "WIN " else "tie ")
      ctr.Counters.multiway_wins nodes;
    Bench_json.emit ~experiment:"hyper"
      [
        ("kind", Json.String "cyclic");
        ("cell", Json.String label);
        ("binary_cost", Json.Float binary);
        ("hybrid_cost", Json.Float hybrid);
        ("improved", Json.Bool improved);
        ("multiway_wins", Json.Int ctr.Counters.multiway_wins);
        ("multiway_nodes_in_plan", Json.Int nodes);
      ]
  in
  let clique_ns = if Bench_config.fast then [ 8; 9 ] else [ 8; 9; 10; 11; 12 ] in
  List.iter
    (fun n ->
      List.iter
        (fun v ->
          let catalog, graph = workload n Topology.Clique v in
          sweep (Printf.sprintf "clique n=%d v=%.1f" n v) catalog graph)
        [ 0.0; 0.5 ])
    clique_ns;
  List.iter
    (fun (r, c) ->
      let n = r * c in
      let catalog, graph = workload n (Topology.Grid (r, c)) 0.0 in
      sweep (Printf.sprintf "grid %dx%d v=0.0" r c) catalog graph)
    (if Bench_config.fast then [ (3, 3) ] else [ (3, 3); (3, 4) ]);
  List.iter
    (fun n ->
      let catalog, graph = workload n (Topology.Cycle_plus 0) 0.5 in
      sweep (Printf.sprintf "cycle n=%d v=0.5" n) catalog graph)
    (if Bench_config.fast then [ 8 ] else [ 8; 12 ]);
  let total = List.length !cells in
  let wins = List.length (List.filter snd !cells) in
  Printf.printf "  cyclic: hybrid strictly cheaper on %d/%d cells\n" wins total;
  gate "cyclic majority"
    (2 * wins > total)
    (Printf.sprintf "only %d of %d cells improved" wins total);
  Bench_json.emit ~experiment:"hyper"
    [
      ("kind", Json.String "summary");
      ("cyclic_cells", Json.Int total);
      ("cyclic_wins", Json.Int wins);
      ("acyclic_cells", Json.Int !acyclic_cells);
      ("fast", Json.Bool Bench_config.fast);
    ];
  match !gate_failures with
  | [] -> Printf.printf "\nall hyper gates passed\n"
  | fails ->
    List.iter (fun m -> Printf.printf "GATE FAILED: %s\n" m) fails;
    failwith (Printf.sprintf "hyper: %d gate(s) failed" (List.length fails))

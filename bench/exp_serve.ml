(* Experiment "serve": the serving layer under load, with gates.

   A closed-loop/open-loop generator (the classic distinction: closed
   loop waits for each response before sending the next request, so
   latency feedback throttles the arrival rate; open loop writes the
   whole burst up front and lets the queue absorb it) drives in-process
   `Blitz_serve.Server` instances over real loopback sockets — the
   full path: NDJSON framing, protocol decode, quota admission, worker
   dispatch, Guard cascade, response encode.

   Four cells, two of them gated:

   1. closed-cold — distinct generated queries, closed loop.  Baseline
      per-request latency (p50/p99) and throughput.

   2. zipfian — repeated queries drawn rank-skewed (P(i) ~ 1/(i+1)^s,
      s = 1.1) from a fixed pool, closed loop, against a cache-warm
      server and against a cache-disabled one — both alive at once,
      the same draw sequence replayed against each in alternation for
      7 interleaved rounds (3 in fast mode) so CPU-frequency drift
      penalizes both alike; the gate compares best-of-rounds
      throughput, while latency percentiles pool every sample (a
      "best-of" p99 would not be a p99).  GATE: warm throughput >= 2x
      cold.  This is the serving claim of the plan cache: a skewed
      tenant workload is mostly answered without optimizing.

   3. open-zipfian — the same skewed draw pipelined open-loop, so
      latency includes queueing delay behind a single worker.

   4. overload — a pipelined burst of large clique queries into one
      worker with an aggressive shed threshold.  GATE: every request
      is answered (none dropped, none hung — a 60 s socket timeout
      converts a hang into a loud failure), every response is ok:true
      carrying a valid Degrade tier, and at least one was shed through
      the deadline clamp rather than refused.

   `bench serve --json BENCH_serve.json` refreshes the committed
   acceptance artifact. *)

module Server = Blitz_serve.Server
module Tenant = Blitz_serve.Tenant
module Plan_cache = Blitz_cache.Plan_cache
module Json = Blitz_util.Json
module Rng = Blitz_util.Rng

let wall () = Unix.gettimeofday ()

(* ---------------------------------------------------------------- *)
(* Socket client                                                     *)

let connect port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let ic, oc = Unix.open_connection addr in
  (* A hung server must fail the gate, not wedge the bench. *)
  Unix.setsockopt_float (Unix.descr_of_in_channel ic) Unix.SO_RCVTIMEO 60.0;
  (ic, oc)

let disconnect (ic, _oc) = close_in_noerr ic

let send (_ic, oc) line =
  output_string oc line;
  output_char oc '\n'

let recv (ic, _oc) =
  flush _oc;
  match input_line ic with
  | line -> line
  | exception (End_of_file | Sys_error _) ->
    failwith "serve bench: server closed the connection (dropped request?)"

(* ---------------------------------------------------------------- *)
(* Requests and responses                                            *)

type spec = { n : int; topology : string; mean_card : float }

let request ~id spec =
  Printf.sprintf
    {|{"blitz":1,"id":%d,"method":"optimize","params":{"n":%d,"topology":"%s","mean_card":%.1f}}|}
    id spec.n spec.topology spec.mean_card

type reply = { ok : bool; tier : string option; shed : bool; from_cache : bool }

let parse_reply line =
  let v =
    match Json.of_string line with
    | Ok v -> v
    | Error msg -> failwith (Printf.sprintf "serve bench: bad response %S: %s" line msg)
  in
  let result = Json.member "result" v in
  let str field =
    match Option.bind result (Json.member field) with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let flag field =
    match Option.bind result (Json.member field) with
    | Some (Json.Bool b) -> b
    | _ -> false
  in
  {
    ok = (match Json.member "ok" v with Some (Json.Bool b) -> b | _ -> false);
    tier = str "tier";
    shed = flag "shed";
    from_cache = flag "from_cache";
  }

let valid_tiers =
  [ "exact"; "thresholded"; "dpccp"; "hybrid"; "ikkbz"; "greedy"; "simpli-squared" ]

(* ---------------------------------------------------------------- *)
(* Workload mixes                                                    *)

let n_gen = if Bench_config.fast then 9 else 10

(* Rank-skewed draw over a pool of generated-query specs.  The pool
   mixes topologies so hits exercise different plan shapes; mean_card
   varies so every pool entry is a distinct cache key. *)
let pool_size = if Bench_config.fast then 16 else 32

let pool =
  let topologies = [| "chain"; "star"; "cycle+2"; "clique" |] in
  Array.init pool_size (fun i ->
      {
        n = n_gen;
        topology = topologies.(i mod Array.length topologies);
        mean_card = 10.0 *. float_of_int (i + 1);
      })

let zipf_s = 1.1

let zipf_cdf =
  let w = Array.init pool_size (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) zipf_s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_draw rng =
  let u = Rng.float rng 1.0 in
  let rec find i = if i >= pool_size - 1 || u < zipf_cdf.(i) then i else find (i + 1) in
  pool.(find 0)

(* ---------------------------------------------------------------- *)
(* Measurement                                                       *)

let percentile sorted p =
  let len = Array.length sorted in
  if len = 0 then 0.0
  else sorted.(min (len - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int len)) - 1))

(* Closed loop: one request in flight; per-request latency is exact. *)
let closed_loop conn specs =
  let latencies =
    Array.mapi
      (fun i spec ->
        let t0 = wall () in
        send conn (request ~id:i spec);
        let reply = parse_reply (recv conn) in
        let dt = wall () -. t0 in
        (dt, reply))
      specs
  in
  Array.map fst latencies, Array.map snd latencies

(* Open loop: the whole burst is written before any response is read;
   latency for request i runs from its write to its response arrival,
   so it includes time spent queued behind earlier work.  A single
   worker answers optimize requests in arrival order, so pairing the
   i-th response with the i-th request is sound here. *)
let open_loop conn specs =
  let sent = Array.map (fun _ -> 0.0) specs in
  Array.iteri
    (fun i spec ->
      sent.(i) <- wall ();
      send conn (request ~id:i spec))
    specs;
  Array.mapi
    (fun i _ ->
      let reply = parse_reply (recv conn) in
      (wall () -. sent.(i), reply))
    specs
  |> fun pairs -> (Array.map fst pairs, Array.map snd pairs)

let summarize latencies =
  let ms = Array.map (fun s -> s *. 1000.0) latencies in
  Array.sort compare ms;
  (percentile ms 50.0, percentile ms 99.0)

let run_cell ~cell ~mode ~cache conn specs =
  let t0 = wall () in
  let latencies, replies =
    match mode with `Closed -> closed_loop conn specs | `Open -> open_loop conn specs
  in
  let elapsed = wall () -. t0 in
  let qps = float_of_int (Array.length specs) /. elapsed in
  let p50, p99 = summarize latencies in
  let hits = Array.fold_left (fun a r -> if r.from_cache then a + 1 else a) 0 replies in
  let sheds = Array.fold_left (fun a r -> if r.shed then a + 1 else a) 0 replies in
  Array.iter
    (fun r -> if not r.ok then failwith (Printf.sprintf "serve bench: %s: error response" cell))
    replies;
  Bench_json.emit ~experiment:"serve"
    [
      ("cell", Json.String cell);
      ("mode", Json.String (match mode with `Closed -> "closed" | `Open -> "open"));
      ("cache", Json.String cache);
      ("requests", Json.Int (Array.length specs));
      ("qps", Json.Float qps);
      ("p50_ms", Json.Float p50);
      ("p99_ms", Json.Float p99);
      ("cache_hits", Json.Int hits);
      ("sheds", Json.Int sheds);
    ];
  (qps, p50, p99, hits, sheds, replies)

let with_server cfg f =
  let server = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () ->
      let conn = connect (Server.port server) in
      Fun.protect ~finally:(fun () -> disconnect conn) (fun () -> f conn))

(* ---------------------------------------------------------------- *)

let qps_gate = 2.0

let run () =
  Bench_config.header "experiment serve: serving latency and overload behavior";
  let rows = ref [] in
  let row cell mode cache (qps, p50, p99, hits, sheds) note =
    rows :=
      [|
        cell; mode; cache;
        Printf.sprintf "%.0f" qps;
        Printf.sprintf "%.3f" p50;
        Printf.sprintf "%.3f" p99;
        string_of_int hits;
        string_of_int sheds;
        note;
      |]
      :: !rows
  in

  (* 1. Closed-loop, every query distinct: nothing can hit the cache. *)
  let k_cold = if Bench_config.fast then 30 else 100 in
  let cold_specs =
    Array.init k_cold (fun i ->
        { n = n_gen; topology = "chain"; mean_card = 1000.0 +. float_of_int i })
  in
  let q, a, b, h, s, _ =
    with_server (Server.config ~workers:1 ()) (fun conn ->
        run_cell ~cell:"closed-cold" ~mode:`Closed ~cache:"on(all-miss)" conn cold_specs)
  in
  row "closed-cold" "closed" "all-miss" (q, a, b, h, s) "";

  (* 2. Zipfian repeats, warm vs cache-disabled: the >=2x gate.  Both
     servers stay up for the whole comparison and the same draw
     sequence is replayed against each in alternation (interleaved
     best-of-rounds, the exp_cache protocol), so frequency drift hits
     both configurations alike.  The gate uses best-of-rounds qps;
     the percentiles pool every round's samples — a best-of p99 would
     not be a p99. *)
  let rounds = if Bench_config.fast then 3 else 7 in
  let draws = if Bench_config.fast then 120 else 400 in
  let rng = Rng.create ~seed:42 in
  let zipf_specs = Array.init draws (fun _ -> zipf_draw rng) in
  let timed_pass conn =
    let t0 = wall () in
    let latencies, replies = closed_loop conn zipf_specs in
    let qps = float_of_int draws /. (wall () -. t0) in
    Array.iter
      (fun r -> if not r.ok then failwith "serve bench: zipfian request failed")
      replies;
    let hits = Array.fold_left (fun a r -> if r.from_cache then a + 1 else a) 0 replies in
    (qps, latencies, hits)
  in
  let base = Server.config ~workers:1 () in
  let warm_server = Server.start base in
  let cold_server = Server.start { base with Server.cache = None } in
  let (warm_qps, wp50, wp99, whits), (cold_qps, cp50, cp99, chits) =
    Fun.protect
      ~finally:(fun () ->
        Server.stop warm_server;
        Server.stop cold_server)
      (fun () ->
        let warm_conn = connect (Server.port warm_server) in
        let cold_conn = connect (Server.port cold_server) in
        Fun.protect
          ~finally:(fun () ->
            disconnect warm_conn;
            disconnect cold_conn)
          (fun () ->
            (* Warm the cache: one untimed pass over the pool. *)
            let _, warmup = closed_loop warm_conn pool in
            Array.iter
              (fun r -> if not r.ok then failwith "serve bench: warmup request failed")
              warmup;
            let best_warm = ref 0.0 and best_cold = ref 0.0 in
            let warm_lats = ref [] and cold_lats = ref [] in
            let warm_hits = ref 0 and cold_hits = ref 0 in
            for _round = 1 to rounds do
              let q, l, h = timed_pass warm_conn in
              best_warm := Float.max !best_warm q;
              warm_lats := l :: !warm_lats;
              warm_hits := !warm_hits + h;
              let q, l, h = timed_pass cold_conn in
              best_cold := Float.max !best_cold q;
              cold_lats := l :: !cold_lats;
              cold_hits := !cold_hits + h
            done;
            let p lats = summarize (Array.concat lats) in
            let wp50, wp99 = p !warm_lats and cp50, cp99 = p !cold_lats in
            ( (!best_warm, wp50, wp99, !warm_hits),
              (!best_cold, cp50, cp99, !cold_hits) )))
  in
  let speedup = warm_qps /. cold_qps in
  let zipf_pass = speedup >= qps_gate in
  let emit_zipf cell cache qps p50 p99 hits =
    Bench_json.emit ~experiment:"serve"
      [
        ("cell", Json.String cell);
        ("mode", Json.String "closed");
        ("cache", Json.String cache);
        ("requests", Json.Int draws);
        ("rounds", Json.Int rounds);
        ("qps", Json.Float qps);
        ("p50_ms", Json.Float p50);
        ("p99_ms", Json.Float p99);
        ("cache_hits", Json.Int hits);
        ("sheds", Json.Int 0);
      ]
  in
  emit_zipf "zipfian-warm" "warm" warm_qps wp50 wp99 whits;
  emit_zipf "zipfian-cold" "off" cold_qps cp50 cp99 chits;
  row "zipfian-warm" "closed" "warm" (warm_qps, wp50, wp99, whits, 0)
    (Printf.sprintf "%.1fx %s" speedup (if zipf_pass then "pass" else "FAIL"));
  row "zipfian-cold" "closed" "off" (cold_qps, cp50, cp99, chits, 0) "";
  Bench_json.emit ~experiment:"serve"
    [
      ("cell", Json.String "zipfian-gate");
      ("rounds", Json.Int rounds);
      ("warm_qps", Json.Float warm_qps);
      ("cold_qps", Json.Float cold_qps);
      ("speedup", Json.Float speedup);
      ("gate", Json.Float qps_gate);
      ("pass", Json.Bool zipf_pass);
    ];

  (* 3. The same skew, pipelined open-loop: latency now includes the
     queue behind one worker. *)
  let k_open = if Bench_config.fast then 24 else 64 in
  let open_specs = Array.init k_open (fun _ -> zipf_draw rng) in
  let q, a, b, h, s, _ =
    with_server (Server.config ~workers:1 ()) (fun conn ->
        let _, warmup = closed_loop conn pool in
        Array.iter
          (fun r -> if not r.ok then failwith "serve bench: warmup request failed")
          warmup;
        run_cell ~cell:"open-zipfian" ~mode:`Open ~cache:"warm" conn open_specs)
  in
  row "open-zipfian" "open" "warm" (q, a, b, h, s) "";

  (* 4. Overload: a burst of large cliques into one worker, cache off,
     shedding after a queue depth of 1.  Every response must carry a
     valid tier; the burst forces most through the deadline clamp. *)
  let k_over = if Bench_config.fast then 8 else 16 in
  let over_specs =
    Array.init k_over (fun i ->
        { n = 11; topology = "clique"; mean_card = 100.0 *. float_of_int (i + 1) })
  in
  let over_cfg =
    Server.config ~workers:1 ~shed_queue:1 ~shed_deadline_ms:2.0 ()
  in
  let oq, oa, ob, oh, osheds, replies =
    with_server { over_cfg with Server.cache = None } (fun conn ->
        run_cell ~cell:"overload" ~mode:`Open ~cache:"off" conn over_specs)
  in
  let answered = Array.length replies in
  let all_ok = Array.for_all (fun r -> r.ok) replies in
  let bad_tier =
    Array.exists
      (fun r -> match r.tier with Some t -> not (List.mem t valid_tiers) | None -> true)
      replies
  in
  let over_pass = answered = k_over && all_ok && (not bad_tier) && osheds >= 1 in
  row "overload" "open" "off" (oq, oa, ob, oh, osheds)
    (if over_pass then "pass" else "FAIL");
  Bench_json.emit ~experiment:"serve"
    [
      ("cell", Json.String "overload-gate");
      ("requests", Json.Int k_over);
      ("answered", Json.Int answered);
      ("sheds", Json.Int osheds);
      ("all_ok", Json.Bool all_ok);
      ("all_tiers_valid", Json.Bool (not bad_tier));
      ("pass", Json.Bool over_pass);
    ];

  Printf.printf "generated queries: n=%d, zipf pool=%d (s=%.1f)\n\n" n_gen pool_size zipf_s;
  Blitz_util.Ascii_table.print
    ~header:[| "cell"; "loop"; "cache"; "qps"; "p50 ms"; "p99 ms"; "hits"; "sheds"; "gate" |]
    (Array.of_list (List.rev !rows));
  Printf.printf "\ngate: zipfian warm >= %.0fx cache-off throughput: %.1fx %s\n" qps_gate
    speedup
    (if zipf_pass then "pass" else "FAIL");
  Printf.printf
    "gate: overload burst of %d answered=%d sheds=%d all-ok=%b tiers-valid=%b: %s\n" k_over
    answered osheds all_ok (not bad_tier)
    (if over_pass then "pass" else "FAIL");
  if zipf_pass && over_pass then Printf.printf "gate: PASS\n"
  else begin
    Printf.printf "gate: FAIL\n";
    exit 1
  end

(* Experiment "table1": reproduce the paper's Table 1 — the dynamic
   programming table for A x B x C x D with cardinalities 10/20/30/40
   under the naive cost model.  Expected: optimum (A x D) x (B x C) at
   cost 241000. *)

module Catalog = Blitz_catalog.Catalog
module Cost_model = Blitz_cost.Cost_model
module Dp_table = Blitz_core.Dp_table
module Plan = Blitz_plan.Plan
module Registry = Blitz_engine.Registry

let catalog = Catalog.of_list [ ("A", 10.0); ("B", 20.0); ("C", 30.0); ("D", 40.0) ]

let run () =
  Bench_config.header "Table 1: dynamic programming table for A x B x C x D (kappa_0)";
  let outcome = Bench_opt.run Cost_model.naive catalog None in
  print_string
    (Dp_table.dump ~names:(Catalog.names catalog) (Option.get outcome.Registry.table));
  let plan = Plan.normalize (Option.get outcome.Registry.plan) in
  Printf.printf "\noptimal expression: %s   (paper: (A x D) x (B x C))\n"
    (Plan.to_compact_string ~names:(Catalog.names catalog) plan);
  Printf.printf "optimal cost:       %g   (paper: 241000)\n" outcome.Registry.cost

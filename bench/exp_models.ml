(* Experiment "models": cost-model validation against executed work.

   The paper takes its cost models from Steinbrunn et al. and treats
   them as ground truth.  With the execution-engine substrate we can
   close that loop: run many plans for one query on real (generated)
   data, measure the operators' actual work, and check that each model
   {e ranks} plans the way the measurements do — rank fidelity is what
   an optimizer needs from a model (it only ever compares plans).

   Reported: Spearman rank correlation between model estimates and
   measured work, per model/operator pairing, over the optimal plan plus
   a sample of random plans. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Datagen = Blitz_exec.Datagen
module Executor = Blitz_exec.Executor
module Operators = Blitz_exec.Operators
module B = Blitz_baselines
module Rng = Blitz_util.Rng
module Stats = Blitz_util.Stats

let sample_plans ~rng ~count catalog graph =
  let n = Blitz_catalog.Catalog.n catalog in
  let optimal = Bench_opt.plan_exn Cost_model.kdnl catalog (Some graph) in
  optimal :: List.init count (fun _ -> B.Transform.random_bushy rng (Relset.full n))

let run () =
  Bench_config.header "Cost-model validation: model estimates vs. executed operator work";
  let n = 6 in
  let rng = Rng.create ~seed:2026 in
  let rows = ref [] in
  List.iter
    (fun topology ->
      let spec =
        Workload.spec ~n ~topology ~model:Cost_model.kdnl ~mean_card:60.0 ~variability:0.4
      in
      let catalog, graph = Workload.problem spec in
      let data = Datagen.generate ~rng catalog graph in
      let real_catalog = Datagen.realized_catalog data in
      let real_graph = Datagen.realized_graph data in
      let plans = sample_plans ~rng ~count:(if Bench_config.fast then 10 else 30) real_catalog real_graph in
      let usable =
        List.filter_map
          (fun plan ->
            (* A tight intermediate-size guard keeps the pathological
               random plans (huge cross products) from dominating the
               experiment's runtime; they are reported as skipped. *)
            match
              ( Executor.run_with_work ~max_intermediate_rows:200_000
                  ~algorithm:Executor.Nested_loop data plan,
                Executor.run_with_work ~max_intermediate_rows:200_000
                  ~algorithm:Executor.Sort_merge data plan )
            with
            | (_, nl_work), (_, sm_work) ->
              Some
                ( Plan.cost Cost_model.kdnl real_catalog real_graph plan,
                  Plan.cost Cost_model.sort_merge real_catalog real_graph plan,
                  float_of_int nl_work.Operators.tuple_visits,
                  float_of_int sm_work.Operators.comparisons )
            | exception Failure _ -> None (* intermediate-size guard tripped *))
          plans
      in
      if List.length usable >= 5 then begin
        let col f = Array.of_list (List.map f usable) in
        let kdnl_est = col (fun (a, _, _, _) -> a) in
        let ksm_est = col (fun (_, b, _, _) -> b) in
        let nl_meas = col (fun (_, _, c, _) -> c) in
        let sm_meas = col (fun (_, _, _, d) -> d) in
        rows :=
          [|
            Topology.name topology;
            string_of_int (List.length usable);
            Printf.sprintf "%.3f" (Stats.spearman kdnl_est nl_meas);
            Printf.sprintf "%.3f" (Stats.spearman ksm_est sm_meas);
            Printf.sprintf "%.3f" (Stats.spearman kdnl_est sm_meas);
          |]
          :: !rows
      end)
    [ Topology.Chain; Topology.Cycle_plus 1; Topology.Star; Topology.Clique ];
  Blitz_util.Ascii_table.print
    ~header:
      [|
        "topology";
        "plans";
        "kdnl vs NL visits";
        "ksm vs SM comparisons";
        "kdnl vs SM (cross)";
      |]
    (Array.of_list (List.rev !rows));
  Printf.printf
    "\nhigh rank correlation in the matched columns means each model orders plans the\n\
     way its operator's measured work does — the property optimization relies on.\n"

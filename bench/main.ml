(* Benchmark harness entry point.

   Usage:  dune exec bench/main.exe [--] [--json FILE] [experiment ...]
   Experiments: table1 fig2 fig4 fig5 fig6 counts compare ablation
   models parallel split dpconv hyper throughput obs cache robust serve
   bechamel all (default: all).  [--json FILE] arms the
   shared Bench_json collector: experiments that emit records get them
   written to FILE as one blitz-bench/1 document at exit.  Environment:
   BLITZ_BENCH_N, BLITZ_BENCH_FAST (see bench_config.ml).
   EXPERIMENTS.md records paper-vs-measured for each experiment. *)

let experiments =
  [
    ("table1", Exp_table1.run);
    ("fig2", Exp_fig2.run);
    ("fig4", Exp_fig4.run);
    ("fig5", Exp_fig5.run);
    ("fig6", Exp_fig6.run);
    ("counts", Exp_counts.run);
    ("compare", Exp_compare.run);
    ("ablation", Exp_ablation.run);
    ("models", Exp_models.run);
    ("parallel", Exp_parallel.run);
    ("split", Exp_split.run);
    ("dpconv", Exp_dpconv.run);
    ("hyper", Exp_hyper.run);
    ("throughput", Exp_throughput.run);
    ("obs", Exp_obs.run);
    ("cache", Exp_cache.run);
    ("robust", Exp_robust.run);
    ("serve", Exp_serve.run);
    ("bechamel", Bechamel_suite.run);
  ]

let usage () =
  Printf.eprintf "usage: bench [--json FILE] [experiment ...]\navailable: %s all\n"
    (String.concat " " (List.map fst experiments));
  exit 2

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--")
  in
  let rec parse_flags = function
    | "--json" :: path :: rest ->
      Bench_json.set_output path;
      parse_flags rest
    | [ "--json" ] -> usage ()
    | arg :: rest -> arg :: parse_flags rest
    | [] -> []
  in
  let args = parse_flags args in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | names ->
      List.iter (fun name -> if not (List.mem_assoc name experiments) then usage ()) names;
      names
  in
  Printf.printf "blitz bench: n = %d%s\n" Bench_config.n
    (if Bench_config.fast then " (fast mode)" else "");
  List.iter (fun name -> (List.assoc name experiments) ()) selected;
  Bench_json.write ()

(* Benchmark harness entry point.

   Usage:  dune exec bench/main.exe [--] [experiment ...]
   Experiments: table1 fig2 fig4 fig5 fig6 counts compare bechamel all
   (default: all).  Environment: BLITZ_BENCH_N, BLITZ_BENCH_FAST (see
   bench_config.ml).  EXPERIMENTS.md records paper-vs-measured for each
   experiment. *)

let experiments =
  [
    ("table1", Exp_table1.run);
    ("fig2", Exp_fig2.run);
    ("fig4", Exp_fig4.run);
    ("fig5", Exp_fig5.run);
    ("fig6", Exp_fig6.run);
    ("counts", Exp_counts.run);
    ("compare", Exp_compare.run);
    ("ablation", Exp_ablation.run);
    ("models", Exp_models.run);
    ("bechamel", Bechamel_suite.run);
  ]

let usage () =
  Printf.eprintf "usage: bench [experiment ...]\navailable: %s all\n"
    (String.concat " " (List.map fst experiments));
  exit 2

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--")
  in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | names ->
      List.iter (fun name -> if not (List.mem_assoc name experiments) then usage ()) names;
      names
  in
  Printf.printf "blitz bench: n = %d%s\n" Bench_config.n
    (if Bench_config.fast then " (fast mode)" else "");
  List.iter (fun name -> (List.assoc name experiments) ()) selected

(* Experiment "compare": cross-method comparison backing the paper's
   qualitative claims (Sections 1, 2, 7):

   - blitzsplit searches the complete bushy space with Cartesian
     products at times competitive with restricted searches;
   - excluding Cartesian products or confining search to left-deep vines
     can hurt plan quality (cost ratio > 1);
   - the size-driven enumerator (Starburst-style) inspects ~4^n pairs
     where blitzsplit iterates ~3^n times;
   - stochastic methods approach but do not reliably reach the optimum
     in comparable time.

   Costs are reported as ratios to the blitzsplit optimum (1.000 =
   optimal). *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module B = Blitz_baselines
module Hybrid = Blitz_hybrid.Hybrid
module Rng = Blitz_util.Rng

type method_result = { name : string; seconds : float; cost : float; note : string }

let evaluate ~n model catalog graph =
  let optimum = ref Float.infinity in
  let timed name ?(note = "") f =
    let cost = ref Float.infinity in
    let seconds = Bench_config.time (fun () -> cost := f ()) in
    { name; seconds; cost = !cost; note }
  in
  let blitz =
    timed "blitzsplit (bushy+products)" (fun () ->
        Blitzsplit.best_cost (Blitzsplit.optimize_join model catalog graph))
  in
  optimum := blitz.cost;
  let dpsize_pairs = ref 0 in
  let results =
    [
      blitz;
      timed "dpsize (bushy+products)"
        (fun () ->
          let r = B.Dpsize.optimize ~cartesian:true model catalog graph in
          dpsize_pairs := r.B.Dpsize.pairs_considered;
          r.B.Dpsize.cost)
        ~note:"Starburst-style enumerator";
      timed "dpsize (no products)" (fun () ->
          (B.Dpsize.optimize ~cartesian:false model catalog graph).B.Dpsize.cost);
      timed "left-deep DP (products)" (fun () ->
          (B.Leftdeep.optimize ~policy:B.Leftdeep.Allowed model catalog graph).B.Leftdeep.cost);
      timed "left-deep DP (deferred)" (fun () ->
          (B.Leftdeep.optimize ~policy:B.Leftdeep.Deferred model catalog graph).B.Leftdeep.cost);
      timed "greedy (min card)" (fun () -> snd (B.Greedy.optimize model catalog graph));
      timed "iterative improvement" (fun () ->
          let rng = Rng.create ~seed:1234 in
          snd (fst (B.Iterative_improvement.optimize ~rng ~restarts:5 model catalog graph)));
      timed "simulated annealing" (fun () ->
          let rng = Rng.create ~seed:1234 in
          snd (fst (B.Simulated_annealing.optimize ~rng model catalog graph)));
      timed "random probing" (fun () ->
          let rng = Rng.create ~seed:1234 in
          snd (B.Random_probe.optimize ~rng ~samples:(200 * n) model catalog graph));
      timed "volcano (rule-based memo)" (fun () ->
          fst (B.Volcano.optimize model catalog graph) |> snd)
        ~note:"commute+associate to closure";
      timed "hybrid (DP windows + kicks)" (fun () ->
          let rng = Rng.create ~seed:1234 in
          snd (fst (Hybrid.optimize ~rng ~window:(min 8 n) ~kicks:n model catalog graph)));
    ]
  in
  (results, !optimum, !dpsize_pairs)

let run () =
  Bench_config.header "Method comparison (Sections 1/2/7 qualitative claims)";
  let ns = if Bench_config.fast then [ 8 ] else [ 8; 12 ] in
  List.iter
    (fun n ->
      List.iter
        (fun topology ->
          let model = Cost_model.kdnl in
          let spec =
            Workload.spec ~n ~topology ~model ~mean_card:100.0 ~variability:0.5
          in
          let catalog, graph = Workload.problem spec in
          Printf.printf "\n-- n = %d, topology %s, model %s, mu = 100, v = 0.5 --\n" n
            (Topology.name topology) model.Cost_model.name;
          let results, optimum, pairs = evaluate ~n model catalog graph in
          let rows =
            List.map
              (fun r ->
                [|
                  r.name;
                  Bench_config.seconds r.seconds;
                  (if Float.is_finite r.cost then Printf.sprintf "%.4f" (r.cost /. optimum)
                   else "no plan");
                  r.note;
                |])
              results
          in
          Blitz_util.Ascii_table.print
            ~header:[| "method"; "time (s)"; "cost / optimal"; "note" |]
            (Array.of_list rows);
          Printf.printf "dpsize pairs considered: %d vs blitzsplit split-loop iterations: %d\n"
            pairs
            (Blitz_core.Counters.exact_loop_iters n))
        [ Topology.Chain; Topology.Star; Topology.Clique ])
    ns

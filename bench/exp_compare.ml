(* Experiment "compare": cross-method comparison backing the paper's
   qualitative claims (Sections 1, 2, 7):

   - blitzsplit searches the complete bushy space with Cartesian
     products at times competitive with restricted searches;
   - excluding Cartesian products or confining search to left-deep vines
     can hurt plan quality (cost ratio > 1);
   - the size-driven enumerator (Starburst-style) inspects ~4^n pairs
     where blitzsplit iterates ~3^n times;
   - stochastic methods approach but do not reliably reach the optimum
     in comparable time.

   The sweep enumerates the optimizer registry through one engine
   session per grid point (so every DP-backed method shares the
   arena-pooled table buffer), skipping only the exhaustive bruteforce
   oracle and methods whose caps rule the problem out.  Costs are
   reported as ratios to the blitzsplit optimum (1.000 = optimal). *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module B = Blitz_baselines

let evaluate ~n model catalog graph =
  let is_tree = B.Ikkbz.is_tree graph in
  let connected = Blitz_graph.Join_graph.is_connected graph in
  let prob = Registry.problem ~graph catalog in
  Engine.with_session ~model ~seed:1234 (fun session ->
      let optimum = ref Float.nan in
      let dpsize_pairs = ref 0 in
      let rows =
        Registry.all ()
        |> List.filter_map (fun (e : Registry.entry) ->
               if e.Registry.name = "bruteforce" then None
               else
                 match Registry.eligible e ~connected ~n ~is_tree with
                 | Error reason -> Some [| e.Registry.name; "-"; "-"; reason |]
                 | Ok () ->
                   let outcome = ref None in
                   let seconds =
                     Bench_config.time (fun () ->
                         outcome :=
                           Some (Engine.optimize ~optimizer:e.Registry.name session prob))
                   in
                   let o = Option.get !outcome in
                   if e.Registry.name = "exact" then optimum := o.Registry.cost;
                   (match (e.Registry.name, o.Registry.note) with
                   | "dpsize", Some note -> (
                     try Scanf.sscanf note "%d pairs" (fun p -> dpsize_pairs := p)
                     with Scanf.Scan_failure _ | Failure _ -> ())
                   | _ -> ());
                   Some
                     [|
                       e.Registry.name;
                       Bench_config.seconds seconds;
                       (if Float.is_finite o.Registry.cost then
                          Printf.sprintf "%.4f" (o.Registry.cost /. !optimum)
                        else "no plan");
                       Option.value ~default:"" o.Registry.note;
                     |])
      in
      (rows, !dpsize_pairs))

let run () =
  Bench_config.header "Method comparison (Sections 1/2/7 qualitative claims)";
  let ns = if Bench_config.fast then [ 8 ] else [ 8; 12 ] in
  List.iter
    (fun n ->
      List.iter
        (fun topology ->
          let model = Cost_model.kdnl in
          let spec = Workload.spec ~n ~topology ~model ~mean_card:100.0 ~variability:0.5 in
          let catalog, graph = Workload.problem spec in
          Printf.printf "\n-- n = %d, topology %s, model %s, mu = 100, v = 0.5 --\n" n
            (Topology.name topology) model.Cost_model.name;
          let rows, pairs = evaluate ~n model catalog graph in
          Blitz_util.Ascii_table.print
            ~header:[| "method"; "time (s)"; "cost / optimal"; "note" |]
            (Array.of_list rows);
          Printf.printf "dpsize pairs considered: %d vs blitzsplit split-loop iterations: %d\n"
            pairs
            (Blitz_core.Counters.exact_loop_iters n))
        [ Topology.Chain; Topology.Star; Topology.Clique ])
    ns

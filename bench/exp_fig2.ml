(* Experiment "fig2": Cartesian-product optimization time as a function
   of n, with Formula (3) fitted to the measurements:

     time(n) = 3^n T_loop + (ln 2 / 2) n 2^n T_cond + 2^n T_subset

   The paper reports T_loop ~ 180ns (SPARCstation 2) / ~50ns (HP 9000);
   we re-fit on this host — absolute values differ, the shape (the fit
   tracking the measurements until cache effects at high n) is the
   reproduced claim. *)

module Catalog = Blitz_catalog.Catalog
module Cost_model = Blitz_cost.Cost_model
module Linfit = Blitz_util.Linfit
module Json = Blitz_util.Json

let run () =
  Bench_config.header "Figure 2: Cartesian product optimization times (kappa_0, equal cardinalities)";
  let lo, hi = if Bench_config.fast then (4, 13) else (4, 16) in
  let ns = Array.init (hi - lo + 1) (fun i -> lo + i) in
  let times =
    Array.map
      (fun n ->
        let catalog = Catalog.uniform ~n ~card:100.0 in
        Bench_config.time (fun () -> ignore (Bench_opt.run Cost_model.naive catalog None)))
      ns
  in
  let t_loop, t_cond, t_subset = Linfit.fit_formula3 ~ns ~times in
  let rows =
    Array.mapi
      (fun i n ->
        let fitted = Linfit.eval_formula3 ~t_loop ~t_cond ~t_subset n in
        [|
          string_of_int n;
          Bench_config.seconds times.(i);
          Bench_config.seconds fitted;
          Printf.sprintf "%+.1f%%" (100.0 *. ((fitted -. times.(i)) /. times.(i)));
        |])
      ns
  in
  Blitz_util.Ascii_table.print
    ~header:[| "n"; "measured (s)"; "formula (3) fit (s)"; "fit error" |]
    rows;
  Array.iteri
    (fun i n ->
      Bench_json.emit ~experiment:"fig2"
        [
          ("n", Json.Int n);
          ("measured_s", Json.Float times.(i));
          ("fitted_s", Json.Float (Linfit.eval_formula3 ~t_loop ~t_cond ~t_subset n));
        ])
    ns;
  let predicted = Array.map (fun n -> Linfit.eval_formula3 ~t_loop ~t_cond ~t_subset n) ns in
  Printf.printf
    "\nfitted constants: T_loop = %.1f ns, T_cond = %.1f ns, T_subset = %.1f ns (R^2 = %.5f)\n"
    (t_loop *. 1e9) (t_cond *. 1e9) (t_subset *. 1e9)
    (Linfit.r_squared ~predicted ~observed:times);
  Printf.printf "paper: T_loop ~ 180 ns (SPARC 2), ~50 ns (HP 9000/755); shape, not value, is the claim\n"

(* Experiment "parallel": rank-parallel blitzsplit speedup curve.

   Measures the sequential optimizer and Parallel_blitzsplit at 1/2/4/8
   domains over n = 12..20 (Cartesian products, kappa_0, equal
   cardinalities — the same pure-3^n kernel as fig2), verifying on every
   point that the parallel cost is bit-identical to the sequential one.
   Timing is WALL clock (Unix.gettimeofday): Timer.now is CPU time,
   which sums over domains and would hide any speedup.

   Results go to the shared --json collector; `bench parallel --json
   BENCH_parallel.json` seeds the repository's recorded perf trajectory.
   The sweep stops early once a sequential point exceeds the per-point
   budget (logged — no silent truncation), so hosts of any speed get a
   complete, honest file. *)

module Catalog = Blitz_catalog.Catalog
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Parallel_blitzsplit = Blitz_parallel.Parallel_blitzsplit
module Pool = Blitz_parallel.Pool
module Registry = Blitz_engine.Registry
module Json = Blitz_util.Json

let domain_axis = [ 1; 2; 4; 8 ]

let wall () = Unix.gettimeofday ()

(* One wall-clock measurement, repeated adaptively for fast points: at
   least [min_runs] runs and [min_total] accumulated seconds, mean
   reported — the paper's footnote-4 protocol on the wall clock. *)
let time_wall ?(min_total = 0.2) ?(min_runs = 2) f =
  let t0 = wall () in
  f ();
  let once = wall () -. t0 in
  let runs = ref 1 and total = ref once in
  while !runs < min_runs || !total < min_total do
    let t0 = wall () in
    f ();
    total := !total +. (wall () -. t0);
    incr runs
  done;
  !total /. float_of_int !runs

let run () =
  Bench_config.header "Parallel: rank-parallel blitzsplit speedup (kappa_0, equal cardinalities)";
  let lo, hi = if Bench_config.fast then (10, 13) else (12, 20) in
  let budget_per_point = if Bench_config.fast then 1.0 else 30.0 in
  let min_total = if Bench_config.fast then 0.02 else 0.2 in
  let cores = Parallel_blitzsplit.recommended_domains () in
  (* On a single-core host every multi-domain point measures scheduling
     overhead, not parallelism: the numbers are still recorded, stamped
     advisory, and the speedup gate is skipped. *)
  let advisory = cores < 2 in
  Printf.printf "host: %d core(s) recommended by the runtime; domain axis %s\n" cores
    (String.concat "/" (List.map string_of_int domain_axis));
  if advisory then
    Printf.printf "note: single-core host — results are ADVISORY, speedup gate skipped\n"
  else if cores < List.fold_left max 1 domain_axis then
    Printf.printf
      "note: axis exceeds available cores; oversubscribed points measure scheduling overhead, \
       not speedup\n";
  let rows = ref [] in
  let stop = ref false in
  let n = ref lo in
  while (not !stop) && !n <= hi do
    let catalog = Catalog.uniform ~n:!n ~card:100.0 in
    let model = Cost_model.naive in
    let seq_result = ref None in
    let seq_s =
      time_wall ~min_total (fun () -> seq_result := Some (Bench_opt.run model catalog None))
    in
    let seq_cost = (Option.get !seq_result).Registry.cost in
    let per_domain =
      List.map
        (fun d ->
          if d = 1 then (d, seq_s)  (* num_domains = 1 is the sequential path by construction *)
          else
            Pool.with_pool ~num_domains:d (fun pool ->
                (* [min_parallel_n:2] forces the parallel path: the point
                   of this sweep is to MEASURE the crossover, so the
                   production auto-fallback (below
                   [default_crossover_n]) must not mask it. *)
                let par_result = ref None in
                let s =
                  time_wall ~min_total (fun () ->
                      par_result :=
                        Some
                          (Parallel_blitzsplit.optimize_product ~pool ~num_domains:d
                             ~min_parallel_n:2 model catalog))
                in
                let par_cost = Blitzsplit.best_cost (Option.get !par_result) in
                if par_cost <> seq_cost then
                  failwith
                    (Printf.sprintf
                       "parallel cost diverged at n=%d domains=%d: %.17g vs %.17g" !n d par_cost
                       seq_cost);
                (d, s)))
        domain_axis
    in
    rows := (!n, seq_s, per_domain) :: !rows;
    Bench_json.emit ~experiment:"parallel"
      ([
         ("n", Json.Int !n);
         ("workload", Json.String "product-uniform-100");
         ("model", Json.String "k0");
         ("cores_available", Json.Int cores);
         ("advisory", Json.Bool advisory);
         ("auto_fallback_below_n", Json.Int Parallel_blitzsplit.default_crossover_n);
         ("sequential_s", Json.Float seq_s);
       ]
      @ List.map
          (fun (d, s) -> (Printf.sprintf "domains_%d_s" d, Json.Float s))
          per_domain
      @ List.map
          (fun (d, s) -> (Printf.sprintf "speedup_%d" d, Json.Float (seq_s /. s)))
          per_domain);
    if seq_s > budget_per_point then begin
      Printf.printf "stopping after n=%d: sequential point took %.1fs > %.1fs budget\n" !n seq_s
        budget_per_point;
      stop := true
    end;
    incr n
  done;
  let header =
    Array.of_list
      ([ "n"; "sequential (s)" ]
      @ List.concat_map
          (fun d -> [ Printf.sprintf "%dd (s)" d; Printf.sprintf "%dd speedup" d ])
          domain_axis)
  in
  let table_rows =
    List.rev_map
      (fun (n, seq_s, per_domain) ->
        Array.of_list
          ([ string_of_int n; Bench_config.seconds seq_s ]
          @ List.concat_map
              (fun (_, s) -> [ Bench_config.seconds s; Printf.sprintf "%.2fx" (seq_s /. s) ])
              per_domain))
      !rows
  in
  Blitz_util.Ascii_table.print ~header (Array.of_list table_rows);
  Printf.printf
    "\nparallel cost verified bit-identical to sequential at every point (would fail loudly)\n";
  (* Speedup gate: on a real multi-core host the largest completed point
     must show an actual win somewhere on the domain axis.  Skipped when
     advisory (cores < 2) or in fast mode (points too small to beat the
     rank barriers — that regime is exactly why the auto-fallback
     exists). *)
  if advisory then Printf.printf "speedup gate: SKIPPED (advisory single-core run)\n"
  else if Bench_config.fast then Printf.printf "speedup gate: skipped (fast mode)\n"
  else
    match !rows with
    | [] -> ()
    | (n, seq_s, per_domain) :: _ ->
      let best = List.fold_left (fun acc (_, s) -> Float.max acc (seq_s /. s)) 0.0 per_domain in
      if best < 1.1 then
        failwith
          (Printf.sprintf "parallel: no speedup at n=%d on a %d-core host (best %.2fx)" n cores
             best)
      else Printf.printf "speedup gate: best %.2fx at n=%d\n" best n

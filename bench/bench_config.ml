(* Shared configuration for the benchmark harness.

   Defaults reproduce the paper's parameters (n = 15, the full axes).
   Environment overrides:
     BLITZ_BENCH_N     relation count for the figure sweeps (default 15)
     BLITZ_BENCH_FAST  any value: shrink axes and timing budgets for a
                       quick smoke run (used by CI-style checks)

   The paper timed each point until 30 wall-clock seconds had accumulated
   (footnote 4); we use the same repeat-until-budget protocol with a
   smaller budget so the full grid stays in minutes, not hours — a
   documented substitution (DESIGN.md). *)

let fast = Sys.getenv_opt "BLITZ_BENCH_FAST" <> None

let n =
  match Sys.getenv_opt "BLITZ_BENCH_N" with
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 4 && n <= 18 -> n
    | Some _ | None -> failwith "BLITZ_BENCH_N must be an integer in [4, 18]")
  | None -> if fast then 11 else 15

let time_budget = if fast then 0.02 else 0.1
let min_runs = 2

let time f = Blitz_util.Timer.time_adaptive ~min_total:time_budget ~min_runs f

let mean_cards_fig4 =
  (* 1 .. 10^4 in the overview grid. *)
  Array.sub (Blitz_workload.Workload.mean_card_axis ~count:10 ()) 0 (if fast then 5 else 7)

let mean_cards_fig5 =
  (* The close-ups extend to 10^6. *)
  Blitz_workload.Workload.mean_card_axis ~count:(if fast then 7 else 10) ()

let variabilities = Blitz_workload.Workload.variability_axis ~count:4 ()

let seconds s = Printf.sprintf "%.4f" s

let header title =
  let rule = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title rule

(* Experiment "dpconv": the exact-optimization frontier, per topology.

   For each benchmark topology (appendix wiring + selectivities, uniform
   cardinality 100, kappa_0) the sweep walks n upward and times ONE
   optimization per point for blitzsplit ("exact"), the
   connectivity-pruned dpccp and the C_max dpconv, stopping an optimizer
   once a point exceeds the per-point budget (logged — no silent
   truncation).  An optimizer's FRONTIER is the largest n it finished
   within budget: the headline of the dpccp PR is that on chains/cycles
   the product-free DP pushes the frontier from blitzsplit's ~17-18 to
   the sweep cap, because its csg-cmp pair count is polynomial where the
   split loop is 3^n.

   Gates (failwith — CI-visible):
   - bit-identity: wherever exact and dpccp both finished and the exact
     optimum is product-free, the dpccp cost must match to <= 8 ulps
     (bitwise on the dense backend); where the spaces diverge, dpccp
     must cost >= exact.
   - frontiers (full mode): dpccp >= 22 on chain, >= 20 on cycle, while
     exact tops out <= 19 under the same budget; fast mode only checks
     dpccp >= exact on the chain.
   - dpconv's minimized bottleneck never exceeds the exact plan's
     largest intermediate (that plan is one of dpconv's candidates).

   `bench dpconv --json BENCH_dpconv.json` records the sweep. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Dp_table = Blitz_core.Dp_table
module Counters = Blitz_core.Counters
module Dpccp = Blitz_dpccp.Dpccp
module Dpconv = Blitz_dpccp.Dpconv
module Registry = Blitz_engine.Registry
module Float_more = Blitz_util.Float_more
module Json = Blitz_util.Json

let topologies =
  [
    ("chain", Topology.Chain);
    ("cycle", Topology.Cycle_plus 0);
    ("star", Topology.Star);
    ("clique", Topology.Clique);
  ]

let wall () = Unix.gettimeofday ()

let problem n topo =
  let catalog = Catalog.uniform ~n ~card:100.0 in
  (catalog, Topology.make topo catalog)

(* Largest intermediate a plan materializes: the quantity dpconv
   minimizes, recomputed from the reference cardinalities. *)
let rec plan_bottleneck catalog graph = function
  | Plan.Leaf _ -> 0.0
  | Plan.Join (l, r) as p ->
    Float.max
      (Plan.cardinality catalog graph p)
      (Float.max (plan_bottleneck catalog graph l) (plan_bottleneck catalog graph r))
  | Plan.Multiway { inputs; _ } as p ->
    List.fold_left
      (fun acc input -> Float.max acc (plan_bottleneck catalog graph input))
      (Plan.cardinality catalog graph p)
      inputs

type point = { n : int; seconds : float; cost : float; work : int; product_free : bool }

let run () =
  Bench_config.header "DPconv: exact-frontier sweep (blitzsplit vs dpccp vs dpconv, kappa_0)";
  let budget = if Bench_config.fast then 0.25 else 2.0 in
  let lo = 6 in
  let cap = if Bench_config.fast then 16 else 26 in
  let model = Cost_model.naive in
  Printf.printf "per-point budget %.2fs, n = %d..%d%s\n" budget lo cap
    (if Bench_config.fast then " (fast mode)" else "");
  let frontiers = Hashtbl.create 16 in
  let gate_failures = ref [] in
  let gate name ok detail =
    if not ok then gate_failures := Printf.sprintf "%s: %s" name detail :: !gate_failures
  in
  List.iter
    (fun (topo_name, topo) ->
      (* One sweep per optimizer; exact's points are kept for the
         bit-identity comparison against dpccp at the same n. *)
      let exact_points = Hashtbl.create 32 in
      let sweep optimizer max_n =
        let points = ref [] in
        let n = ref lo in
        let stop = ref false in
        while (not !stop) && !n <= min cap max_n do
          let catalog, graph = problem !n topo in
          let ctr = Counters.create () in
          let t0 = wall () in
          let o = Bench_opt.run ~optimizer ~counters:ctr model catalog (Some graph) in
          let seconds = wall () -. t0 in
          let plan = Option.get o.Registry.plan in
          let work =
            if optimizer = "dpccp" then ctr.Counters.ccp_pairs else ctr.Counters.loop_iters
          in
          let product_free = Plan.cartesian_join_count graph plan = 0 in
          let pt = { n = !n; seconds; cost = o.Registry.cost; work; product_free } in
          points := pt :: !points;
          if optimizer = "exact" then Hashtbl.replace exact_points !n pt;
          Bench_json.emit ~experiment:"dpconv"
            [
              ("kind", Json.String "point");
              ("topology", Json.String topo_name);
              ("optimizer", Json.String optimizer);
              ("n", Json.Int !n);
              ("seconds", Json.Float seconds);
              ("cost", Json.Float o.Registry.cost);
              ( (if optimizer = "dpccp" then "ccp_pairs" else "split_loop_iters"),
                Json.Int work );
              ("product_free", Json.Bool product_free);
            ];
          if seconds > budget then begin
            Printf.printf "  %-7s %-7s stopped after n=%d (%.2fs > %.2fs budget)\n" topo_name
              optimizer !n seconds budget;
            stop := true
          end;
          incr n
        done;
        let frontier =
          match List.rev !points with
          | [] -> lo - 1
          | pts -> List.fold_left (fun acc p -> if p.seconds <= budget then p.n else acc) (lo - 1) pts
        in
        Hashtbl.replace frontiers (topo_name, optimizer) frontier;
        List.rev !points
      in
      let exact_pts = sweep "exact" Dp_table.max_relations in
      let dpccp_pts = sweep "dpccp" Dpccp.max_relations in
      let dpconv_pts = sweep "dpconv" Dpconv.max_relations in
      (* Bit-identity / dominance gate at every n both DPs finished. *)
      List.iter
        (fun (c : point) ->
          match Hashtbl.find_opt exact_points c.n with
          | None -> ()
          | Some e ->
            if e.product_free then
              gate
                (Printf.sprintf "bit-identity %s n=%d" topo_name c.n)
                (Float_more.within_ulps ~ulps:8 c.cost e.cost)
                (Printf.sprintf "product-free optimum but dpccp %.17g vs exact %.17g" c.cost
                   e.cost)
            else
              gate
                (Printf.sprintf "dominance %s n=%d" topo_name c.n)
                (c.cost >= e.cost *. (1.0 -. 1e-12))
                (Printf.sprintf "dpccp %.17g beat exact %.17g" c.cost e.cost))
        dpccp_pts;
      (* dpconv bottleneck optimality spot-check against the exact
         plan's largest intermediate wherever both ran. *)
      List.iter
        (fun (c : point) ->
          match Hashtbl.find_opt exact_points c.n with
          | None -> ()
          | Some _ ->
            let catalog, graph = problem c.n topo in
            let r = Dpconv.optimize catalog graph in
            let exact_plan =
              Option.get (Bench_opt.run ~counters:(Counters.create ()) model catalog (Some graph))
                .Registry.plan
            in
            let ub = plan_bottleneck catalog graph exact_plan in
            gate
              (Printf.sprintf "bottleneck %s n=%d" topo_name c.n)
              (r.Dpconv.bottleneck <= ub *. (1.0 +. 1e-9))
              (Printf.sprintf "dpconv bottleneck %.17g exceeds exact plan's %.17g"
                 r.Dpconv.bottleneck ub))
        (List.filter (fun (p : point) -> p.n <= 12) dpconv_pts);
      let f opt = Hashtbl.find frontiers (topo_name, opt) in
      Bench_json.emit ~experiment:"dpconv"
        [
          ("kind", Json.String "frontier");
          ("topology", Json.String topo_name);
          ("budget_s", Json.Float budget);
          ("cap_n", Json.Int cap);
          ("fast", Json.Bool Bench_config.fast);
          ("exact_frontier_n", Json.Int (f "exact"));
          ("dpccp_frontier_n", Json.Int (f "dpccp"));
          ("dpconv_frontier_n", Json.Int (f "dpconv"));
        ];
      let last_work pts = match List.rev pts with [] -> 0 | p :: _ -> p.work in
      Printf.printf
        "  %-7s frontiers within %.2fs: exact n=%d (%d split iters at frontier), dpccp n=%d \
         (%d ccp pairs), dpconv n=%d\n"
        topo_name budget (f "exact") (last_work exact_pts) (f "dpccp") (last_work dpccp_pts)
        (f "dpconv");
      ignore dpconv_pts)
    topologies;
  (* Frontier gates: the PR's headline numbers. *)
  let f topo opt = Hashtbl.find frontiers (topo, opt) in
  if Bench_config.fast then
    gate "frontier chain (fast)"
      (f "chain" "dpccp" >= f "chain" "exact")
      (Printf.sprintf "dpccp n=%d < exact n=%d" (f "chain" "dpccp") (f "chain" "exact"))
  else begin
    gate "frontier chain dpccp >= 22" (f "chain" "dpccp" >= 22)
      (Printf.sprintf "got n=%d" (f "chain" "dpccp"));
    gate "frontier cycle dpccp >= 20" (f "cycle" "dpccp" >= 20)
      (Printf.sprintf "got n=%d" (f "cycle" "dpccp"));
    gate "frontier chain exact <= 19" (f "chain" "exact" <= 19)
      (Printf.sprintf "got n=%d (budget too generous for this host?)" (f "chain" "exact"))
  end;
  match !gate_failures with
  | [] -> Printf.printf "\nall dpconv gates passed\n"
  | fails ->
    List.iter (fun m -> Printf.printf "GATE FAILED: %s\n" m) fails;
    failwith (Printf.sprintf "dpconv: %d gate(s) failed" (List.length fails))

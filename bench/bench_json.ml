(* Machine-readable benchmark output, shared by every experiment.

   `bench --json FILE` arms this collector; experiments then call [emit]
   with flat field lists alongside their human-readable tables, and the
   harness writes one pretty-printed JSON document at exit:

     { "schema": "blitz-bench/1",
       "config": { "n": ..., "fast": ... },
       "records": [ { "experiment": "...", ... }, ... ] }

   Records preserve emission order, so a BENCH_*.json file diffs stably
   run-to-run (timing fields aside) and future PRs can accrete their
   perf trajectory here instead of in ad-hoc text files. *)

module Json = Blitz_util.Json

let output : string option ref = ref None
let records : Json.t list ref = ref []

let set_output path = output := Some path

let enabled () = !output <> None

let emit ~experiment fields =
  if enabled () then
    records := Json.Obj (("experiment", Json.String experiment) :: fields) :: !records

let write () =
  match !output with
  | None -> ()
  | Some path ->
    let doc =
      Json.Obj
        [
          ("schema", Json.String "blitz-bench/1");
          ( "config",
            Json.Obj
              [ ("n", Json.Int Bench_config.n); ("fast", Json.Bool Bench_config.fast) ] );
          ("records", Json.List (List.rev !records));
        ]
    in
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Json.to_string ~indent:true doc);
        Out_channel.output_char oc '\n');
    Printf.printf "\nwrote %d record(s) to %s\n" (List.length !records) path

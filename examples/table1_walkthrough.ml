(* The paper's running example, end to end (Sections 3.1 and 5).

   Run with:  dune exec examples/table1_walkthrough.exe

   Part 1 rebuilds Table 1: Cartesian-product optimization of
   A x B x C x D with |A|..|D| = 10, 20, 30, 40 under the naive cost
   model kappa_0.  Part 2 adds the Figure 3 join graph (edges AB, AC,
   BC, AD) and shows how predicate selectivities change both the
   cardinality column and the chosen plan. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Dp_table = Blitz_core.Dp_table
module Plan = Blitz_plan.Plan

let catalog = Catalog.of_list [ ("A", 10.0); ("B", 20.0); ("C", 30.0); ("D", 40.0) ]
let names = Catalog.names catalog

let show title result =
  Printf.printf "%s\n%s\n" title (String.make (String.length title) '-');
  print_string (Dp_table.dump ~names result.Blitzsplit.table);
  let plan = Plan.normalize (Blitzsplit.best_plan_exn result) in
  Printf.printf "\noptimal expression: %s, cost %g\n\n"
    (Plan.to_compact_string ~names plan)
    (Blitzsplit.best_cost result)

let () =
  (* Part 1: Table 1 exactly. *)
  show "Table 1: pure Cartesian product, kappa_0"
    (Blitzsplit.optimize_product Cost_model.naive catalog);

  (* Part 2: the Figure 3 join graph.  Selectivities chosen so the
     predicates matter but Cartesian products remain competitive. *)
  let graph =
    Join_graph.of_edges ~n:4
      [ (0, 1, 0.05) (* AB *); (0, 2, 0.02) (* AC *); (1, 2, 0.1) (* BC *); (0, 3, 0.01) (* AD *) ]
  in
  show "Same relations with the Figure 3 predicates"
    (Blitzsplit.optimize_join Cost_model.naive catalog graph);

  (* The fan recurrence at work: card({A,B,C}) folds in sel(AB)*sel(AC)
     *sel(BC). *)
  let s_abc = Blitz_bitset.Relset.of_list [ 0; 1; 2 ] in
  Printf.printf "check: card({A,B,C}) = 10*20*30 * 0.05*0.02*0.1 = %g (induced subgraph, Section 5.1)\n"
    (Join_graph.join_cardinality catalog graph s_abc)

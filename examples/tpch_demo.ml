(* TPC-H query skeletons through the optimizer.

   Run with:  dune exec examples/tpch_demo.exe

   Optimizes the join shapes of seven TPC-H queries at scale factor 1 and
   reports, per query: the optimal bushy plan (with any Cartesian
   products it contains), and how much worse the product-free and
   left-deep restrictions are — the paper's thesis measured on the most
   familiar decision-support schema.  Nation (25 rows) and region
   (5 rows) are exactly the tiny dimension tables whose products are
   often optimal. *)

module Tpch = Blitz_workload.Tpch
module Catalog = Blitz_catalog.Catalog
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Plan = Blitz_plan.Plan
module B = Blitz_baselines

let () =
  let model = Cost_model.kdnl in
  Printf.printf "%-4s %-8s %-14s %-12s %-12s %s\n" "qry" "rels" "optimal cost" "no-products"
    "left-deep" "optimal bushy plan";
  List.iter
    (fun q ->
      let catalog, graph = Tpch.problem q in
      let names = Catalog.names catalog in
      let bushy = Blitzsplit.optimize_join model catalog graph in
      let plan = Blitzsplit.best_plan_exn bushy in
      let optimum = Blitzsplit.best_cost bushy in
      let ratio cost = if Float.is_finite cost then Printf.sprintf "%.3fx" (cost /. optimum) else "-" in
      let no_products = (B.Dpsize.optimize ~cartesian:false model catalog graph).B.Dpsize.cost in
      let leftdeep = (B.Leftdeep.optimize model catalog graph).B.Leftdeep.cost in
      Printf.printf "%-4s %-8d %-14.4g %-12s %-12s %s\n" (Tpch.name q) (Catalog.n catalog)
        optimum (ratio no_products) (ratio leftdeep)
        (Plan.to_compact_string ~names plan))
    Tpch.all;
  print_newline ();
  (* Zoom in on Q8, the 8-way snowflake. *)
  let q = Tpch.Q8 in
  let catalog, graph = Tpch.problem q in
  let names = Catalog.names catalog in
  Printf.printf "Q8 (%s):\n" (Tpch.description q);
  let result = Blitzsplit.optimize_join model catalog graph in
  let annotated =
    Plan.annotate
      ~algorithms:[ ("sort-merge", Cost_model.sort_merge); ("nested-loops", Cost_model.kdnl) ]
      catalog graph
      (Blitzsplit.best_plan_exn result)
  in
  Format.printf "%a@." (Plan.pp_annotated ~names ()) annotated

(* Interesting sort orders: the Section 6.5 extension.

   Run with:  dune exec examples/interesting_orders.exe

   The paper stops at "the issue of physical properties (e.g.,
   'interesting' sort orders) is trickier... we have yet to develop a
   strategy for the general case".  Blitzsplit_orders develops it: the DP
   runs over (subset, delivered-order) states, merge joins consume and
   produce orders, nested loops preserve the outer's order, and explicit
   sort enforcers bridge the gaps.  This walkthrough shows a query where
   order reuse more than halves the plan cost. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module O = Blitz_core.Blitzsplit_orders
module Plan = Blitz_plan.Plan

let rec render = function
  | O.Scan i -> Printf.sprintf "R%d" i
  | O.Sort (p, e) -> Printf.sprintf "sort[e%d](%s)" e (render p)
  | O.Nested_loop (l, r) -> Printf.sprintf "NL(%s, %s)" (render l) (render r)
  | O.Merge_join (l, r, e) -> Printf.sprintf "MERGE[e%d](%s, %s)" e (render l) (render r)

let () =
  (* A small sorted relation crossed with a medium one produces a large
     intermediate that is *already sorted* when the small relation drives
     the nested loop — so the final merge join needs no 7-million-row
     sort. *)
  let catalog = Catalog.of_cards [| 19278.0; 383.0; 16615.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (1, 2, 0.0183) ] in

  let blind = O.sm_dnl_reference_cost catalog graph in
  Printf.printf "order-blind min(ksm, kdnl) optimum:  %.4g\n" blind;

  let r = O.optimize catalog graph in
  Printf.printf "with order propagation:              %.4g  (%.1fx cheaper)\n" r.O.cost
    (blind /. r.O.cost);
  Printf.printf "physical plan: %s\n" (render r.O.plan);
  Printf.printf "delivered order: %s\n\n"
    (match O.order_of r.O.plan with Some e -> Printf.sprintf "edge %d" e | None -> "none");

  (* Demanding the final result sorted (ORDER BY the join key): the DP
     weighs a top-level sort against plans that deliver the order
     natively. *)
  let sorted_result = O.optimize ~required_order:0 catalog graph in
  Printf.printf "with ORDER BY the edge-0 attribute:  %.4g\n" sorted_result.O.cost;
  Printf.printf "physical plan: %s\n" (render sorted_result.O.plan);
  assert (O.order_of sorted_result.O.plan = Some 0);

  (* Independent recosting confirms the reported optima. *)
  assert (
    Blitz_util.Float_more.approx_equal ~rel:1e-9 r.O.cost (O.phys_cost catalog graph r.O.plan));
  print_endline "\nrecosting the returned physical plans confirms the reported costs"

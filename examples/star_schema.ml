(* Star schema: when a Cartesian product is the right answer.

   Run with:  dune exec examples/star_schema.exe

   The paper's motivating claim (Sections 1 and 7): optimizers that
   exclude Cartesian products a priori can miss the optimal plan.  The
   classic case is a data-warehouse star query with small dimension
   tables: crossing two tiny dimensions first costs almost nothing and
   lets the big fact table be scanned once against their product.

   We build such a query, optimize it three ways — full bushy search
   with products (blitzsplit), bushy without products, left-deep — and
   compare the plans and costs. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Plan = Blitz_plan.Plan
module B = Blitz_baselines

let () =
  (* Fact table with four small dimensions; each dimension key is
     roughly unique in its dimension, so sel = 1/|dim|. *)
  let catalog =
    Catalog.of_list
      [
        ("day_of_week", 7.0);
        ("region", 12.0);
        ("channel", 4.0);
        ("product_line", 25.0);
        ("sales_fact", 2_000_000.0);
      ]
  in
  let fact = 4 in
  let graph =
    Join_graph.of_edges ~n:5
      (List.init 4 (fun d -> (d, fact, 1.0 /. Catalog.card catalog d)))
  in
  let names = Catalog.names catalog in
  let model = Cost_model.naive in

  let bushy = Blitzsplit.optimize_join model catalog graph in
  let bushy_plan = Blitzsplit.best_plan_exn bushy in
  Printf.printf "blitzsplit (products allowed):\n  %s\n  cost %.4g, cartesian joins: %d\n\n"
    (Plan.to_compact_string ~names bushy_plan)
    (Blitzsplit.best_cost bushy)
    (Plan.cartesian_join_count graph bushy_plan);

  let no_products = B.Dpsize.optimize ~cartesian:false model catalog graph in
  (match no_products.B.Dpsize.plan with
  | Some plan ->
    Printf.printf "bushy DP, products excluded:\n  %s\n  cost %.4g  (%.2fx optimal)\n\n"
      (Plan.to_compact_string ~names plan)
      no_products.B.Dpsize.cost
      (no_products.B.Dpsize.cost /. Blitzsplit.best_cost bushy)
  | None -> print_endline "bushy DP, products excluded: no plan");

  let leftdeep = B.Leftdeep.optimize ~policy:B.Leftdeep.Deferred model catalog graph in
  (match leftdeep.B.Leftdeep.plan with
  | Some plan ->
    Printf.printf "left-deep DP (System R style):\n  %s\n  cost %.4g  (%.2fx optimal)\n\n"
      (Plan.to_compact_string ~names plan)
      leftdeep.B.Leftdeep.cost
      (leftdeep.B.Leftdeep.cost /. Blitzsplit.best_cost bushy)
  | None -> print_endline "left-deep DP: no plan");

  Printf.printf
    "the optimal plan crosses dimensions before touching the fact table;\n\
     excluding Cartesian products forces every dimension through a separate\n\
     pass over (a descendant of) the fact table.\n"

(* Plan-cost thresholds and re-optimization (Section 6.4).

   Run with:  dune exec examples/threshold_demo.exe

   A threshold simulates cost overflow far below real float overflow:
   any subset whose plans all cost at least the threshold is abandoned,
   which can skip most of the split-loop work.  If the threshold was too
   ambitious, optimization fails and reruns with a larger one — cheap
   queries optimize faster, expensive queries pay an extra pass. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Threshold = Blitz_core.Threshold
module Counters = Blitz_core.Counters

let () =
  let n = 14 in
  let spec =
    Workload.spec ~n ~topology:Topology.Chain ~model:Cost_model.naive ~mean_card:10_000.0
      ~variability:0.0
  in
  let catalog, graph = Workload.problem spec in

  (* Unthresholded baseline. *)
  let base_counters = Counters.create () in
  let base = Blitzsplit.optimize_join ~counters:base_counters Cost_model.naive catalog graph in
  Printf.printf "no threshold:    cost %.6g, split-loop iterations %d\n" (Blitzsplit.best_cost base)
    base_counters.Counters.loop_iters;

  (* A comfortable threshold: one pass, far less work. *)
  let t1_counters = Counters.create () in
  let t1 =
    Threshold.optimize_join ~counters:t1_counters ~threshold:1e9 Cost_model.naive catalog graph
  in
  Printf.printf "threshold 1e9:   cost %.6g, split-loop iterations %d, passes %d (%.1fx less work)\n"
    (Blitzsplit.best_cost t1.Threshold.result)
    t1_counters.Counters.loop_iters t1.Threshold.passes
    (float_of_int base_counters.Counters.loop_iters /. float_of_int (max 1 t1_counters.Counters.loop_iters));

  (* An over-ambitious threshold: fails, retries, still exact. *)
  let t2_counters = Counters.create () in
  let t2 =
    Threshold.optimize_join ~counters:t2_counters ~growth:100.0 ~threshold:10.0 Cost_model.naive
      catalog graph
  in
  Printf.printf "threshold 10:    cost %.6g, passes %d, final threshold %g\n"
    (Blitzsplit.best_cost t2.Threshold.result)
    t2.Threshold.passes t2.Threshold.final_threshold;

  assert (Blitzsplit.best_cost base = Blitzsplit.best_cost t1.Threshold.result);
  assert (Blitzsplit.best_cost base = Blitzsplit.best_cost t2.Threshold.result);
  print_endline "all three agree on the optimal cost (threshold search is exact)"

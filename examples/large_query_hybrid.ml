(* Beyond the exponential wall: the hybrid optimizer at n = 30.

   Run with:  dune exec examples/large_query_hybrid.exe

   Exhaustive search is bounded by its 2^n table (Section 7: "like any
   optimizer that performs exhaustive search, ours is limited in the
   number of relations it can handle").  The paper's announced answer is
   a hybrid of dynamic programming and randomized search; this example
   runs our implementation of that idea on a 30-relation chain query,
   where a full DP table would need 2^30 entries, and compares it with
   the greedy heuristic and iterative improvement. *)

module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module B = Blitz_baselines
module Hybrid = Blitz_hybrid.Hybrid
module Rng = Blitz_util.Rng

let () =
  let n = 30 in
  let spec =
    Workload.spec ~n ~topology:Topology.Chain ~model:Cost_model.kdnl ~mean_card:1000.0
      ~variability:0.5
  in
  let catalog, graph = Workload.problem spec in
  let model = Cost_model.kdnl in
  Printf.printf "chain query over %d relations (2^%d DP table would not fit)\n\n" n n;

  let time label f =
    let t0 = Sys.time () in
    let cost = f () in
    Printf.printf "%-28s cost %.6g   (%.2fs)\n" label cost (Sys.time () -. t0);
    cost
  in

  let rng = Rng.create ~seed:7 in
  let random_plan = B.Transform.random_bushy rng (Relset.full n) in
  let _ = time "random bushy plan" (fun () -> Plan.cost model catalog graph random_plan) in

  let _ =
    time "greedy (min card)" (fun () ->
        let plan, _ = B.Greedy.optimize model catalog graph in
        Plan.cost model catalog graph plan)
  in

  let ii_cost =
    time "iterative improvement" (fun () ->
        let rng = Rng.create ~seed:8 in
        let start = B.Transform.random_bushy rng (Relset.full n) in
        let current = ref start and current_cost = ref (Plan.cost model catalog graph start) in
        (* A bounded random descent (the library II uses the 2^n
           evaluator, deliberately capped; this inline loop shows the
           same idea at large n). *)
        for _ = 1 to 4000 do
          let candidate = B.Transform.random_neighbor rng !current in
          let c = Plan.cost model catalog graph candidate in
          if c < !current_cost then begin
            current := candidate;
            current_cost := c
          end
        done;
        !current_cost)
  in

  let hybrid_cost =
    time "hybrid (DP windows)" (fun () ->
        let rng = Rng.create ~seed:9 in
        let (_, cost), stats =
          Hybrid.optimize ~rng ~window:10 ~kicks:20 model catalog graph
        in
        Printf.printf "  windows re-optimized: %d (improved %d), kicks: %d\n"
          stats.Hybrid.windows_reoptimized stats.Hybrid.windows_improved stats.Hybrid.kicks;
        cost)
  in
  Printf.printf "\nhybrid improves on plain local search by %.2fx on this query\n"
    (ii_cost /. hybrid_cost)

(* Quickstart: optimize a five-way join in a dozen lines.

   Run with:  dune exec examples/quickstart.exe

   The API surface in play:
   - Catalog.of_list        : base-relation cardinalities
   - Join_graph.of_edges    : predicates with selectivities
   - Blitzsplit.optimize_join : the paper's DP optimizer
   - Plan.annotate          : attach the cheapest join algorithm per node *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Plan = Blitz_plan.Plan

let () =
  (* A small order-processing query: customers, orders, lineitems,
     parts, suppliers. *)
  let catalog =
    Catalog.of_list
      [
        ("customer", 15_000.0);
        ("orders", 150_000.0);
        ("lineitem", 600_000.0);
        ("part", 20_000.0);
        ("supplier", 1_000.0);
      ]
  in
  let graph =
    Join_graph.of_edges ~n:5
      [
        (0, 1, 1.0 /. 15_000.0) (* customer.ckey = orders.ckey *);
        (1, 2, 1.0 /. 150_000.0) (* orders.okey = lineitem.okey *);
        (2, 3, 1.0 /. 20_000.0) (* lineitem.pkey = part.pkey *);
        (2, 4, 1.0 /. 1_000.0) (* lineitem.skey = supplier.skey *);
      ]
  in
  let names = Catalog.names catalog in

  (* Optimize under the disk-nested-loops cost model. *)
  let result = Blitzsplit.optimize_join Cost_model.kdnl catalog graph in
  let plan = Blitzsplit.best_plan_exn result in

  Printf.printf "optimal bushy plan: %s\n" (Plan.to_compact_string ~names plan);
  Printf.printf "estimated cost:     %g\n" (Blitzsplit.best_cost result);
  Printf.printf "left-deep?          %b\n" (Plan.is_left_deep plan);
  Printf.printf "cartesian products: %d\n\n" (Plan.cartesian_join_count graph plan);

  (* Section 6.5: pick a physical join algorithm per node after the
     fact, by costing each node under every available model. *)
  let annotated =
    Plan.annotate
      ~algorithms:[ ("sort-merge", Cost_model.sort_merge); ("nested-loops", Cost_model.kdnl) ]
      catalog graph plan
  in
  Format.printf "%a@." (Plan.pp_annotated ~names ()) annotated

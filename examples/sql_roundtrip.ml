(* SQL round-trip: parse -> bind -> optimize -> execute -> validate.

   Run with:  dune exec examples/sql_roundtrip.exe

   Exercises the full pipeline: a SQL script is parsed and bound to a
   catalog + join graph; blitzsplit picks a plan; synthetic data
   realizing the declared statistics is generated; the plan is executed
   with the mini engine; and the optimizer's intermediate-result
   estimates are compared against what the operators actually
   produced. *)

module Binder = Blitz_sql.Binder
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Plan = Blitz_plan.Plan
module Catalog = Blitz_catalog.Catalog
module Datagen = Blitz_exec.Datagen
module Executor = Blitz_exec.Executor
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

let script =
  "CREATE TABLE customer (CARDINALITY 2000);\n\
   CREATE TABLE orders   (CARDINALITY 8000);\n\
   CREATE TABLE lineitem (CARDINALITY 30000);\n\
   CREATE TABLE part     (CARDINALITY 500);\n\
   \n\
   SELECT * FROM customer c, orders o, lineitem l, part p\n\
   WHERE c.ckey = o.ckey\n\
   \  AND o.okey = l.okey\n\
   \  AND l.pkey = p.pkey;\n"

let () =
  print_endline "input script:";
  print_endline script;
  let query =
    match Binder.parse_and_bind script with
    | Ok [ q ] -> q
    | Ok _ -> failwith "expected exactly one query"
    | Error msg -> failwith msg
  in
  let catalog = query.Binder.catalog and graph = query.Binder.graph in
  let names = Catalog.names catalog in

  (* Generate data realizing the declared statistics, then re-bind the
     optimizer to the *realized* statistics (integral domains). *)
  let rng = Rng.create ~seed:2024 in
  let data = Datagen.generate ~rng catalog graph in
  let real_catalog = Datagen.realized_catalog data in
  let real_graph = Datagen.realized_graph data in

  let result = Blitzsplit.optimize_join Cost_model.kdnl real_catalog real_graph in
  let plan = Blitzsplit.best_plan_exn result in
  Printf.printf "optimal plan: %s (cost %.4g)\n\n"
    (Plan.to_compact_string ~names plan)
    (Blitzsplit.best_cost result);

  let comparisons = Executor.estimate_vs_actual data plan in
  Printf.printf "%-28s %14s %14s %8s\n" "intermediate result" "estimated" "actual" "ratio";
  List.iter
    (fun { Executor.at; estimated; actual } ->
      Printf.printf "%-28s %14.1f %14.0f %8.3f\n"
        (Relset.to_string ~names at)
        estimated actual
        (if estimated > 0.0 then actual /. estimated else Float.nan))
    comparisons;
  print_endline "\nratios near 1.0: the fan-recurrence estimates track the execution engine"

(** A reusable fork-join pool of OCaml 5 domains.

    [Domain.spawn] costs on the order of a DP pass for small queries, so
    the pool spawns its domains once and parks them on a condition
    variable between jobs; a multi-pass driver (threshold escalation,
    benchmarks) reuses one pool across every pass.  Built entirely from
    the stdlib ([Domain], [Mutex], [Condition], [Atomic]) — no new
    dependencies.

    Concurrency contract: the pool executes one job at a time, submitted
    from a single coordinating domain.  [run] is not reentrant and must
    not be called concurrently from two domains. *)

type t

val create : num_domains:int -> t
(** [create ~num_domains] spawns [num_domains - 1] worker domains (the
    caller of {!run} is worker 0).  Raises [Invalid_argument] outside
    [\[1, 128\]].  A 1-domain pool spawns nothing and runs jobs inline. *)

val num_domains : t -> int

val run : t -> chunks:int -> (worker:int -> int -> unit) -> unit
(** [run t ~chunks job] executes [job ~worker c] for every chunk index
    [c] in [\[0, chunks)], dynamically load-balanced over all domains
    via an atomic claim counter, and returns once every domain has
    finished (a full barrier: all effects of the job happen-before the
    return).  [worker] is the dense index in [\[0, num_domains)] of the
    executing domain — index per-domain scratch (counters, buffers) with
    it to keep workers off each other's cache lines.  If the job raises
    anywhere, remaining chunks are abandoned, the barrier still
    completes, and the first exception is re-raised from [run]. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  The pool must
    be quiescent (no {!run} in flight). *)

val with_pool : num_domains:int -> (t -> 'a) -> 'a
(** [with_pool ~num_domains f] runs [f] on a fresh pool and shuts it
    down afterwards, whether [f] returns or raises. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Dp_table = Blitz_core.Dp_table
module Split_loop = Blitz_core.Split_loop
module Counters = Blitz_core.Counters
module Threshold = Blitz_core.Threshold
module Arena = Blitz_core.Arena
module Obs = Blitz_obs.Obs

let m_ranks =
  Obs.Metrics.counter ~help:"Lattice ranks processed by the rank-parallel optimizer"
    "blitz_parallel_ranks_total"

let recommended_domains () = Domain.recommended_domain_count ()

(* Oversubscription: chunks per rank per domain.  More chunks give the
   dynamic balancer and the stop flag finer granularity; fewer chunks
   mean fewer atomic claims and fewer false-sharing boundaries on the
   table columns.  4 keeps both costs invisible. *)
let chunk_factor = 4

(* Same cancellation-probe cadence as the sequential optimizer: every 64
   subsets processed by each domain (see [Blitzsplit.probe_mask]). *)
let probe_mask = 63

(* Gosper's hack: the next larger integer with the same popcount. *)
let gosper_next s =
  let c = s land (-s) in
  let r = s + c in
  r lor (((s lxor r) lsr 2) / c)

(* binom.(c).(j) = C(c, j); rows 0..n, columns 0..n. *)
let binomial_table n =
  let t = Array.make_matrix (n + 1) (n + 1) 0 in
  for c = 0 to n do
    t.(c).(0) <- 1;
    for j = 1 to c do
      t.(c).(j) <- t.(c - 1).(j - 1) + t.(c - 1).(j)
    done
  done;
  t

(* The m-th (0-based) k-subset in increasing bitset-integer order, which
   for fixed popcount is colexicographic order — exactly the order
   Gosper's hack enumerates.  Standard combinadic unranking: the top
   element is the largest c with C(c, k) <= m, and so on down. *)
let unrank_subset binom ~k m =
  let s = ref 0 in
  let m = ref m in
  for j = k downto 1 do
    let c = ref (j - 1) in
    while binom.(!c + 1).(j) <= !m do
      incr c
    done;
    s := !s lor (1 lsl !c);
    m := !m - binom.(!c).(j)
  done;
  !s

(* Rank-parallel DP.  Every subset of cardinality k depends only on
   strictly smaller subsets: compute_properties reads the fan and
   cardinality of proper subsets (ranks 2 and k-1), and the split loop
   reads cost/card/aux of proper subsets (ranks < k).  So processing the
   lattice rank by rank, with a full barrier between ranks, computes
   byte-for-byte the values the sequential increasing-integer order
   computes — each entry is a pure function of lower-rank entries, and
   the per-subset split scan itself is deterministic.  Within a rank,
   chunks are contiguous colex ranges: writes from different domains
   land in disjoint, mostly contiguous index intervals of the shared
   columns, so cross-domain cache-line traffic is confined to the
   O(chunks) boundary lines.  Counters are per-domain records allocated
   *inside* each domain (first touch) and merged at the end — no shared
   hot words at all. *)
let parallel_run pool ~graph_opt ~arena ~ctr ~threshold ~interrupt model catalog graph =
  let n = Catalog.n catalog in
  let with_pi_fan = Option.is_some graph_opt in
  let tbl =
    (* The coordinator resets/acquires before workers run and reads after
       the final barrier — [Pool.run]'s fork/join ordering makes the
       buffer safely visible to every domain. *)
    match arena with
    | Some a -> Arena.acquire a ~with_pi_fan n
    | None -> Dp_table.create ~with_pi_fan n
  in
  Split_loop.init_singletons tbl model catalog;
  let workers = Pool.num_domains pool in
  let per_domain = Array.make workers None in
  let domain_counters worker =
    match per_domain.(worker) with
    | Some c -> c
    | None ->
      let c = Counters.create () in
      per_domain.(worker) <- Some c;
      c
  in
  let stop_flag = Atomic.make false in
  let poll, probe =
    match interrupt with None -> (false, fun () -> false) | Some f -> (true, f)
  in
  let compute =
    match graph_opt with
    | Some _ -> fun s -> Split_loop.compute_properties_join tbl model graph s
    | None -> fun s -> Split_loop.compute_properties_product tbl model s
  in
  let binom = binomial_table n in
  let merge_counters () =
    Array.iter
      (function Some c -> Counters.merge_into ~from:c ~into:ctr | None -> ())
      per_domain
  in
  (try
     for k = 2 to n do
       let count = binom.(n).(k) in
       let chunks = min count (workers * chunk_factor) in
       let base = count / chunks and rem = count mod chunks in
       Obs.Metrics.incr m_ranks;
       Obs.span "parallel.rank" ~attrs:[ ("k", string_of_int k) ] @@ fun () ->
       Pool.run pool ~chunks (fun ~worker c ->
           if not (Atomic.get stop_flag) then begin
             let start = (c * base) + min c rem in
             let len = base + if c < rem then 1 else 0 in
             let dctr = domain_counters worker in
             let s = ref (unrank_subset binom ~k start) in
             let i = ref 0 in
             let live = ref true in
             while !live && !i < len do
               if poll && !i land probe_mask = probe_mask then
                 if Atomic.get stop_flag then live := false
                 else if probe () then begin
                   Atomic.set stop_flag true;
                   live := false
                 end;
               if !live then begin
                 compute !s;
                 Split_loop.find_best_split tbl model dctr ~threshold !s;
                 s := gosper_next !s;
                 incr i
               end
             done
           end);
       (* Rank barrier: workers are parked, the table holds every rank
          <= k.  The coordinator polls the deadline here too, so even a
          probe-free chunk schedule cannot overshoot by more than one
          rank's chunks. *)
       if poll && not (Atomic.get stop_flag) && probe () then Atomic.set stop_flag true;
       if Atomic.get stop_flag then raise Blitzsplit.Interrupted
     done
   with exn ->
     merge_counters ();
     raise exn);
  merge_counters ();
  tbl

(* Below this size the rank barriers and chunk scheduling cost more than
   the split loops they spread out: BENCH_parallel.json on the reference
   host shows speedups of 0.4-1.0x through n = 13 and the sequential pass
   finishing in well under a millisecond there, while the parallel win
   only materializes once per-rank work amortizes the synchronization.
   n = 14 keeps the CI parallel smoke (n = 15) on the parallel path. *)
let default_crossover_n = 14

let run ?pool ~num_domains ?(min_parallel_n = default_crossover_n) ~graph_opt ?arena ?counters
    ?(threshold = Float.infinity) ?interrupt model catalog =
  if threshold <= 0.0 then invalid_arg "Parallel_blitzsplit: threshold must be positive";
  let n = Catalog.n catalog in
  (* Auto-fallback: tiny queries run the sequential kernel even when a
     pool or domain budget was supplied — bit-identical result, no
     barrier overhead.  The measured-crossover override ([min_parallel_n])
     lets benchmarks and tests still drive the parallel path at small n. *)
  let num_domains = if n < min_parallel_n then 1 else num_domains in
  let pool = if n < min_parallel_n then None else pool in
  let graph =
    match graph_opt with
    | Some g ->
      if Join_graph.n g <> n then
        invalid_arg
          (Printf.sprintf "Parallel_blitzsplit: graph over %d relations, catalog has %d"
             (Join_graph.n g) n);
      g
    | None -> Join_graph.no_predicates ~n
  in
  match (pool, num_domains) with
  | None, d when d <= 1 -> (
    (* No pool to amortize and a single domain: the sequential optimizer
       is the same computation without the pool plumbing. *)
    match graph_opt with
    | Some _ ->
      Blitzsplit.optimize_join ?arena ?counters ~threshold ?interrupt model catalog graph
    | None -> Blitzsplit.optimize_product ?arena ?counters ~threshold ?interrupt model catalog)
  | _ ->
    let ctr = match counters with Some c -> c | None -> Counters.create () in
    ctr.Counters.passes <- ctr.Counters.passes + 1;
    let dp_pass () =
      match pool with
      | Some pool ->
        parallel_run pool ~graph_opt ~arena ~ctr ~threshold ~interrupt model catalog graph
      | None ->
        Pool.with_pool ~num_domains (fun pool ->
            parallel_run pool ~graph_opt ~arena ~ctr ~threshold ~interrupt model catalog graph)
    in
    let table =
      (* Feed the same rate instruments as the sequential driver (the
         per-domain counters are merged into [ctr] before parallel_run
         returns, including on the interrupt path).  Rates here are
         aggregate wall time over aggregate events — i.e. they improve
         with parallelism, deliberately: the instrument answers "how
         fast does a pass chew through the lattice", not "how fast is
         one core". *)
      if not (Blitz_obs.Metrics.enabled ()) then dp_pass ()
      else begin
        let subs0 = ctr.Counters.subsets and iters0 = ctr.Counters.loop_iters in
        let t0 = Blitz_obs.Perf.now_s () in
        let table = dp_pass () in
        let elapsed_s = Blitz_obs.Perf.now_s () -. t0 in
        Blitz_obs.Perf.observe_rate Blitz_obs.Perf.split_loop_ns_per_subset ~elapsed_s
          ~events:(ctr.Counters.subsets - subs0);
        Blitz_obs.Perf.observe_rate Blitz_obs.Perf.split_loop_ns_per_iter ~elapsed_s
          ~events:(ctr.Counters.loop_iters - iters0);
        table
      end
    in
    (* The rank-parallel driver never plans multiway nodes (the engine
       falls back to the sequential optimizer when both are requested). *)
    { Blitzsplit.table; counters = ctr; catalog; graph; model; threshold; multiway = None }

let optimize_join ?pool ?num_domains ?min_parallel_n ?arena ?counters ?threshold ?interrupt
    model catalog graph =
  let num_domains =
    match num_domains with Some d -> d | None -> recommended_domains ()
  in
  run ?pool ~num_domains ?min_parallel_n ~graph_opt:(Some graph) ?arena ?counters ?threshold
    ?interrupt model catalog

let optimize_product ?pool ?num_domains ?min_parallel_n ?arena ?counters ?threshold ?interrupt
    model catalog =
  let num_domains =
    match num_domains with Some d -> d | None -> recommended_domains ()
  in
  run ?pool ~num_domains ?min_parallel_n ~graph_opt:None ?arena ?counters ?threshold ?interrupt
    model catalog

(* Threshold escalation over the parallel passes: one pool outlives all
   passes, so re-optimization pays the Domain.spawn cost once. *)

let private_arena = function Some a -> a | None -> Arena.create ()

let threshold_optimize_join ?pool ?min_parallel_n ?arena ?counters ?growth ?max_passes
    ?interrupt ~num_domains ~threshold model catalog graph =
  let arena = private_arena arena in
  let drive pool =
    Threshold.drive ?counters ?growth ?max_passes ~threshold (fun ~counters ~threshold ->
        run ~pool ~num_domains ?min_parallel_n ~graph_opt:(Some graph) ~arena ~counters
          ~threshold ?interrupt model catalog)
  in
  match pool with Some pool -> drive pool | None -> Pool.with_pool ~num_domains drive

let threshold_optimize_product ?pool ?min_parallel_n ?arena ?counters ?growth ?max_passes
    ?interrupt ~num_domains ~threshold model catalog =
  let arena = private_arena arena in
  let drive pool =
    Threshold.drive ?counters ?growth ?max_passes ~threshold (fun ~counters ~threshold ->
        run ~pool ~num_domains ?min_parallel_n ~graph_opt:None ~arena ~counters ~threshold
          ?interrupt model catalog)
  in
  match pool with Some pool -> drive pool | None -> Pool.with_pool ~num_domains drive

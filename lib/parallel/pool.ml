(* A reusable pool of OCaml 5 domains executing chunked fork-join jobs.

   Domains are spawned once at [create] and parked on a condition
   variable between jobs; [run] publishes a job under the mutex, bumps a
   generation counter, and participates in the work itself (the caller
   is worker 0).  Chunks are claimed with a single atomic
   fetch-and-add, so the only mutex traffic per job is the wake-up
   broadcast and the completion barrier — the claim path stays off the
   lock even with deep oversubscription.

   Exception discipline: a job body that raises does not wedge the
   barrier.  The first exception (from any worker, including the
   caller) is recorded, remaining chunks are abandoned, every worker
   still reaches the barrier, and [run] re-raises it on the caller's
   domain once the pool is quiescent. *)

module Obs = Blitz_obs.Obs

let m_jobs =
  Obs.Metrics.counter ~help:"Fork-join jobs executed by the domain pool" "blitz_pool_jobs_total"

let m_chunks =
  Obs.Metrics.counter ~help:"Work chunks claimed across all pool workers"
    "blitz_pool_chunks_claimed_total"

let m_barrier_wait =
  Obs.Metrics.histogram
    ~help:"Seconds the caller waited at the completion barrier after finishing its own chunks"
    "blitz_pool_barrier_wait_seconds"

type t = {
  num_domains : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : worker:int -> int -> unit;
  mutable chunk_count : int;
  next_chunk : int Atomic.t;
  mutable idle : int;  (* spawned workers done with the current generation *)
  mutable poisoned : exn option;  (* first exception raised by any worker *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
}

let num_domains t = t.num_domains

(* Claim and run chunks until none remain or a worker has poisoned the
   job.  The poison check costs one mutex-free read per chunk: workers
   racing past it finish at most one extra chunk each. *)
let drain t job count =
  let rec go () =
    if t.poisoned = None then begin
      let c = Atomic.fetch_and_add t.next_chunk 1 in
      if c < count then begin
        Obs.Metrics.incr m_chunks;
        (match job c with
        | () -> ()
        | exception exn ->
          Mutex.lock t.mutex;
          if t.poisoned = None then t.poisoned <- Some exn;
          Mutex.unlock t.mutex);
        go ()
      end
    end
  in
  go ()

let worker_body t index =
  let my_generation = ref 0 in
  let rec park () =
    Mutex.lock t.mutex;
    while t.generation = !my_generation && not t.shutdown do
      Condition.wait t.work_ready t.mutex
    done;
    if t.shutdown then Mutex.unlock t.mutex
    else begin
      my_generation := t.generation;
      let job = t.job and count = t.chunk_count in
      Mutex.unlock t.mutex;
      drain t (job ~worker:index) count;
      Mutex.lock t.mutex;
      t.idle <- t.idle + 1;
      if t.idle = t.num_domains - 1 then Condition.signal t.work_done;
      Mutex.unlock t.mutex;
      park ()
    end
  in
  park ()

let create ~num_domains =
  if num_domains < 1 || num_domains > 128 then
    invalid_arg (Printf.sprintf "Pool.create: num_domains = %d outside [1, 128]" num_domains);
  let t =
    {
      num_domains;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = (fun ~worker:_ _ -> ());
      chunk_count = 0;
      next_chunk = Atomic.make 0;
      idle = 0;
      poisoned = None;
      shutdown = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (num_domains - 1) (fun i -> Domain.spawn (fun () -> worker_body t (i + 1)));
  t

let run t ~chunks job =
  if chunks < 0 then invalid_arg "Pool.run: negative chunk count";
  if t.shutdown then invalid_arg "Pool.run: pool is shut down";
  Obs.Metrics.incr m_jobs;
  Mutex.lock t.mutex;
  t.job <- job;
  t.chunk_count <- chunks;
  t.poisoned <- None;
  t.idle <- 0;
  Atomic.set t.next_chunk 0;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  drain t (job ~worker:0) chunks;
  (* The caller's wait here is the job's load-imbalance signal: a long
     wait means the spawned workers still held unclaimed or oversized
     chunks after worker 0 ran dry. *)
  Obs.Metrics.time m_barrier_wait (fun () ->
      Mutex.lock t.mutex;
      while t.idle < t.num_domains - 1 do
        Condition.wait t.work_done t.mutex
      done);
  let failure = t.poisoned in
  t.poisoned <- None;
  Mutex.unlock t.mutex;
  match failure with None -> () | Some exn -> raise exn

let shutdown t =
  if not t.shutdown then begin
    Mutex.lock t.mutex;
    t.shutdown <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~num_domains f =
  let pool = create ~num_domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

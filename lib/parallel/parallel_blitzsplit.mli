(** Rank-parallel Algorithm blitzsplit on OCaml 5 domains.

    The subset lattice decomposes by cardinality ("rank"): every subset
    of rank [k] depends only on strictly smaller subsets — the fan
    recurrence of Section 5.4 reads ranks 2 and [k-1], and the
    [O(3^n)] split loop reads the cost/cardinality columns of proper
    subsets, all of rank [< k].  Processing ranks in order with a full
    barrier between them, and splitting each rank's Gosper-enumerated
    subsets into contiguous chunks balanced dynamically over a domain
    pool, is therefore an exact reimplementation of the sequential DP:

    {b Determinism guarantee.}  Each table entry is a pure function of
    lower-rank entries, and the per-subset split scan visits candidate
    splits in the same fixed successor order as the sequential code
    (ties broken by first-strict-improvement, identically).  The
    resulting cost {e and} extracted plan are bit-identical to
    {!Blitzsplit.run}'s for every [num_domains] — scheduling affects
    only which domain writes an entry, never its value.  Counters are
    per-domain and merged at the end; being sums of per-subset events,
    the totals are also exactly the sequential counts.

    Interruption: the deadline/cancellation probe is polled by every
    domain each 64 subsets it processes (the sequential cadence) and
    once by the coordinator at each rank barrier; a [true] return trips
    a shared [Atomic.t] stop flag, remaining chunks bail at their next
    check, and {!Blitzsplit.Interrupted} is raised after the barrier.
    The probe closure must therefore tolerate calls from any domain
    ([Budget.interrupt] in [blitz_guard] does). *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Blitzsplit = Blitz_core.Blitzsplit
module Counters = Blitz_core.Counters
module Threshold = Blitz_core.Threshold
module Arena = Blitz_core.Arena

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the default worker count. *)

val default_crossover_n : int
(** Below this relation count (14) the drivers fall back to the
    sequential kernel even when a pool or domain budget is supplied:
    the committed parallel benchmark shows rank barriers and chunk
    scheduling erase the win there (speedups of 0.4–1.0x through
    n = 13), and the results are bit-identical either way.  Override
    with [min_parallel_n] to force the parallel path (benchmarks,
    tests). *)

val run :
  ?pool:Pool.t ->
  num_domains:int ->
  ?min_parallel_n:int ->
  graph_opt:Join_graph.t option ->
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?threshold:float ->
  ?interrupt:(unit -> bool) ->
  Cost_model.t ->
  Catalog.t ->
  Blitzsplit.t
(** Same signature and result type as the sequential [Blitzsplit.run]:
    optimize the join ([graph_opt = Some g]) or Cartesian product
    ([None]) of all catalog relations, returning the filled table
    wrapped in a {!Blitzsplit.t}.  With [?pool], the supplied pool is
    used (and [num_domains] ignored); otherwise a fresh pool of
    [num_domains] domains lives for the duration of the call.  With no
    pool and [num_domains <= 1] this is exactly the sequential
    optimizer; the same fallback fires regardless of pool/domains when
    [n < min_parallel_n] (default {!default_crossover_n}).  [?arena] draws the DP table from a session workspace
    ({!Blitz_core.Arena}) instead of a fresh allocation — the
    coordinator acquires it before workers start and the results stay
    bit-identical.  Raises {!Blitzsplit.Interrupted} when the probe
    fires, [Invalid_argument] on a non-positive threshold or a
    graph/catalog size mismatch. *)

val optimize_join :
  ?pool:Pool.t ->
  ?num_domains:int ->
  ?min_parallel_n:int ->
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?threshold:float ->
  ?interrupt:(unit -> bool) ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  Blitzsplit.t
(** {!run} with a join graph; [num_domains] defaults to
    {!recommended_domains}. *)

val optimize_product :
  ?pool:Pool.t ->
  ?num_domains:int ->
  ?min_parallel_n:int ->
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?threshold:float ->
  ?interrupt:(unit -> bool) ->
  Cost_model.t ->
  Catalog.t ->
  Blitzsplit.t
(** {!run} without predicates (Section 3); the table's fan column stays
    unallocated. *)

(** {1 Thresholded drivers}

    {!Threshold.drive} over parallel passes: the multi-pass
    re-optimization of Section 6.4 with one domain pool amortized
    across every pass (and the rescue pass).  [?pool] reuses a caller's
    already-spawned pool; [?arena] additionally reuses one DP table
    across the passes (a private arena is made otherwise, so retries
    never reallocate). *)

val threshold_optimize_join :
  ?pool:Pool.t ->
  ?min_parallel_n:int ->
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  ?interrupt:(unit -> bool) ->
  num_domains:int ->
  threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  Threshold.outcome

val threshold_optimize_product :
  ?pool:Pool.t ->
  ?min_parallel_n:int ->
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  ?interrupt:(unit -> bool) ->
  num_domains:int ->
  threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  Threshold.outcome

(** {1 Internals exposed for tests} *)

val gosper_next : int -> int
(** Next larger integer with the same popcount (Gosper's hack). *)

val unrank_subset : int array array -> k:int -> int -> int
(** [unrank_subset binom ~k m] is the [m]-th (0-based) [k]-subset in
    increasing bitset-integer (colex) order, via combinadic unranking
    against a {!binomial_table}. *)

val binomial_table : int -> int array array
(** [binomial_table n].(c).(j) = C(c, j) for [0 <= c, j <= n]. *)

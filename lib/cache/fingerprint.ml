module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

(* FNV-ish avalanche step.  Everything below hashes through this one
   function so the exact/shape keys stay consistent with each other. *)
let mix h x =
  let h = h lxor x in
  let h = h * 0x100000001b3 in
  h lxor (h lsr 29)

let float_bits (x : float) = Int64.to_int (Int64.bits_of_float x)

type scratch = {
  mutable n : int;
  (* WL keys, caller index space; [_next] is the double buffer. *)
  mutable keys : int array;
  mutable keys_next : int array;
  mutable skeys : int array;  (* cardinality-free (shape) keys *)
  mutable skeys_next : int array;
  mutable perm : int array;  (* canonical position -> caller index *)
  mutable inv : int array;  (* caller index -> canonical position *)
  mutable sperm : int array;  (* shape-canonical position -> caller index *)
  mutable sinv : int array;  (* caller index -> shape-canonical position *)
  mutable deg : int array;
  mutable cards : float array;  (* canonical order *)
  (* canonical edges, (i < j) lexicographic in canonical positions *)
  mutable edges_i : int array;
  mutable edges_j : int array;
  mutable edges_sel : float array;
  mutable edge_count : int;
  mutable hash : int;
  mutable shape_hash : int;
  mutable md : int;  (* model digest folded into the last [compute] *)
  mutable residual_ties : bool;
}

let create_scratch () =
  {
    n = 0;
    keys = [||];
    keys_next = [||];
    skeys = [||];
    skeys_next = [||];
    perm = [||];
    inv = [||];
    sperm = [||];
    sinv = [||];
    deg = [||];
    cards = [||];
    edges_i = [||];
    edges_j = [||];
    edges_sel = [||];
    edge_count = 0;
    hash = 0;
    shape_hash = 0;
    md = 0;
    residual_ties = false;
  }

let grow_int a len = if Array.length a >= len then a else Array.make len 0
let grow_float a len = if Array.length a >= len then a else Array.make len 0.0

let ensure_capacity s n =
  let ne = n * (n - 1) / 2 in
  s.keys <- grow_int s.keys n;
  s.keys_next <- grow_int s.keys_next n;
  s.skeys <- grow_int s.skeys n;
  s.skeys_next <- grow_int s.skeys_next n;
  s.perm <- grow_int s.perm n;
  s.inv <- grow_int s.inv n;
  s.sperm <- grow_int s.sperm n;
  s.sinv <- grow_int s.sinv n;
  s.deg <- grow_int s.deg n;
  s.cards <- grow_float s.cards n;
  s.edges_i <- grow_int s.edges_i ne;
  s.edges_j <- grow_int s.edges_j ne;
  s.edges_sel <- grow_float s.edges_sel ne

let string_hash str = String.fold_left (fun h c -> mix h (Char.code c)) 0x811c9dc5 str

(* The name alone under-identifies a model: [disk_nested_loops] reports
   "kdnl" for every blocking factor / memory budget, and [min_of]
   compositions reuse component behavior.  Probing [kappa] at fixed
   points separates any two models that could ever cost a join
   differently at those scales. *)
let probe_points =
  [|
    (1.0, 1.0, 1.0);
    (10.0, 10.0, 10.0);
    (1e3, 1e2, 10.0);
    (5e4, 2e3, 3e3);
    (1e6, 1e4, 1e5);
    (1e9, 1e7, 1e6);
    (0.5, 0.25, 2.0);
  |]

let model_digest (m : Cost_model.t) =
  let h = ref (string_hash m.Cost_model.name) in
  Array.iter
    (fun (out, lcard, rcard) ->
      h := mix !h (float_bits (Cost_model.kappa m ~out ~lcard ~rcard)))
    probe_points;
  !h

(* In-place insertion sort of [order.(0..n-1)]; allocation-free and
   plenty fast at bitset-bounded n. *)
let sort_order order n cmp =
  for i = 1 to n - 1 do
    let x = order.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && cmp order.(!j) x > 0 do
      order.(!j + 1) <- order.(!j);
      decr j
    done;
    order.(!j + 1) <- x
  done

let seed_full = 0x1e3779b97f4a7c15 (* 63-bit truncations of the usual constants *)
let seed_shape = 0x517cc1b727220a95
let seed_edge = 0x2545f4914f6cdd1d

let compute s ~model_digest:md catalog graph =
  let n = Catalog.n catalog in
  (match graph with
  | Some g when Join_graph.n g <> n ->
      invalid_arg "Fingerprint.compute: graph size differs from catalog"
  | _ -> ());
  ensure_capacity s n;
  s.n <- n;
  let has i j = match graph with None -> false | Some g -> Join_graph.has_edge g i j in
  let sel i j = match graph with None -> 1.0 | Some g -> Join_graph.selectivity g i j in
  for i = 0 to n - 1 do
    s.deg.(i) <- (match graph with None -> 0 | Some g -> Join_graph.degree g i)
  done;
  (* Seed keys with the vertex-local signature... *)
  for i = 0 to n - 1 do
    s.keys.(i) <- mix (mix seed_full (float_bits (Catalog.card catalog i))) s.deg.(i);
    s.skeys.(i) <- mix seed_shape s.deg.(i)
  done;
  (* ...then refine: each round folds the commutative sum of every
     neighbor's (selectivity, key) into the vertex key, so after n
     rounds a key reflects its whole connected component.  The sum (not
     an ordered fold) is what makes the rounds labeling-invariant. *)
  for _round = 1 to n do
    for i = 0 to n - 1 do
      let acc = ref 0 and sacc = ref 0 in
      for j = 0 to n - 1 do
        if j <> i && has i j then begin
          let sb = float_bits (sel i j) in
          acc := !acc + mix (mix seed_edge sb) s.keys.(j);
          sacc := !sacc + mix (mix seed_edge sb) s.skeys.(j)
        end
      done;
      s.keys_next.(i) <- mix s.keys.(i) !acc;
      s.skeys_next.(i) <- mix s.skeys.(i) !sacc
    done;
    for i = 0 to n - 1 do
      s.keys.(i) <- s.keys_next.(i);
      s.skeys.(i) <- s.skeys_next.(i)
    done
  done;
  (* Canonical order: cardinality, then degree, then refined key;
     original index as the last resort (recorded as a residual tie). *)
  let card i = Catalog.card catalog i in
  let cmp_full a b =
    let c = Float.compare (card a) (card b) in
    if c <> 0 then c
    else
      let c = compare s.deg.(a) s.deg.(b) in
      if c <> 0 then c
      else
        let c = compare s.keys.(a) s.keys.(b) in
        if c <> 0 then c else compare a b
  in
  let cmp_shape a b =
    let c = compare s.deg.(a) s.deg.(b) in
    if c <> 0 then c
    else
      let c = compare s.skeys.(a) s.skeys.(b) in
      if c <> 0 then c else compare a b
  in
  for i = 0 to n - 1 do
    s.perm.(i) <- i;
    s.sperm.(i) <- i
  done;
  sort_order s.perm n cmp_full;
  sort_order s.sperm n cmp_shape;
  s.residual_ties <- false;
  for c = 0 to n - 2 do
    let a = s.perm.(c) and b = s.perm.(c + 1) in
    if Float.equal (card a) (card b) && s.deg.(a) = s.deg.(b) && s.keys.(a) = s.keys.(b)
    then s.residual_ties <- true
  done;
  for c = 0 to n - 1 do
    s.inv.(s.perm.(c)) <- c;
    s.sinv.(s.sperm.(c)) <- c;
    s.cards.(c) <- card s.perm.(c)
  done;
  (* Canonical edge list: enumerate canonical-position pairs in (i, j)
     lexicographic order, so the list is sorted by construction. *)
  let ec = ref 0 in
  for ci = 0 to n - 1 do
    for cj = ci + 1 to n - 1 do
      let a = s.perm.(ci) and b = s.perm.(cj) in
      if has a b then begin
        s.edges_i.(!ec) <- ci;
        s.edges_j.(!ec) <- cj;
        s.edges_sel.(!ec) <- sel a b;
        incr ec
      end
    done
  done;
  s.edge_count <- !ec;
  let h = ref (mix (mix seed_full md) n) in
  for c = 0 to n - 1 do
    h := mix !h (float_bits s.cards.(c))
  done;
  for e = 0 to !ec - 1 do
    h := mix (mix (mix !h s.edges_i.(e)) s.edges_j.(e)) (float_bits s.edges_sel.(e))
  done;
  s.hash <- !h;
  s.md <- md;
  (* Shape hash: same construction minus the cardinalities, over the
     shape-canonical labeling. *)
  let sh = ref (mix (mix seed_shape md) n) in
  for ci = 0 to n - 1 do
    for cj = ci + 1 to n - 1 do
      let a = s.sperm.(ci) and b = s.sperm.(cj) in
      if has a b then sh := mix (mix (mix !sh ci) cj) (float_bits (sel a b))
    done
  done;
  s.shape_hash <- !sh

let hash s = s.hash
let shape_hash s = s.shape_hash
let residual_ties s = s.residual_ties
let n s = s.n

(* One decade of total predicate selectivity per band.  The sum runs
   over the full-canonical edge list, so a renamed resubmission of the
   same problem sums bit-identical floats in bit-identical order — the
   band is rename-invariant.  Shape-equal problems with different
   cardinalities may order the sum differently, which can flip the
   quantized band only at a decade boundary; a band mismatch is merely
   an ensemble miss, never a wrong plan. *)
let selectivity_band s =
  let sum = ref 0.0 in
  for e = 0 to s.edge_count - 1 do
    sum := !sum +. Float.log10 s.edges_sel.(e)
  done;
  int_of_float (Float.floor !sum)

type frozen = {
  f_n : int;
  f_hash : int;
  f_md : int;
  f_cards : float array;
  f_edges_i : int array;
  f_edges_j : int array;
  f_edges_sel : float array;
  f_perm : int array;  (* the storing caller's labeling *)
}

let freeze s =
  {
    f_n = s.n;
    f_hash = s.hash;
    f_md = s.md;
    f_cards = Array.sub s.cards 0 s.n;
    f_edges_i = Array.sub s.edges_i 0 s.edge_count;
    f_edges_j = Array.sub s.edges_j 0 s.edge_count;
    f_edges_sel = Array.sub s.edges_sel 0 s.edge_count;
    f_perm = Array.sub s.perm 0 s.n;
  }

let frozen_hash f = f.f_hash

let frozen_bytes f =
  let word = Sys.word_size / 8 in
  (* record + 6 array headers + payloads *)
  (8 * word) + (6 * word) + (word * ((2 * f.f_n) + (3 * Array.length f.f_edges_i)))

let matches s f =
  s.n = f.f_n && s.hash = f.f_hash && s.md = f.f_md
  && s.edge_count = Array.length f.f_edges_i
  && (let ok = ref true in
      for c = 0 to s.n - 1 do
        if not (Float.equal s.cards.(c) f.f_cards.(c)) then ok := false
      done;
      for e = 0 to s.edge_count - 1 do
        if
          s.edges_i.(e) <> f.f_edges_i.(e)
          || s.edges_j.(e) <> f.f_edges_j.(e)
          || not (Float.equal s.edges_sel.(e) f.f_edges_sel.(e))
        then ok := false
      done;
      !ok)

let same_labeling s f =
  s.n = f.f_n
  &&
  let ok = ref true in
  for c = 0 to s.n - 1 do
    if s.perm.(c) <> f.f_perm.(c) then ok := false
  done;
  !ok

let canonize_plan s plan = Plan.map_leaves (fun i -> s.inv.(i)) plan
let rebase_plan s plan = Plan.map_leaves (fun c -> s.perm.(c)) plan
let shape_canonize_plan s plan = Plan.map_leaves (fun i -> s.sinv.(i)) plan
let shape_rebase_plan s plan = Plan.map_leaves (fun c -> s.sperm.(c)) plan

(** A domain-safe, sharded LRU cache of optimal join plans.

    Entries are keyed by the {!Fingerprint} canonical form of the
    problem (plus the optimizer name, since different registry entries
    make different promises), so structurally identical queries hit
    regardless of how the caller numbered its relations.  Plans are
    stored in canonical index space and rebased to the caller's
    numbering on the way out; a hit is declared only after full
    canonical-form equality, never on hash agreement alone, so a
    collision can cost a miss but never serve a wrong plan.

    Sharding: entries are distributed over [shards] independent
    mutex-protected LRU lists by fingerprint hash, so concurrent
    sessions on different domains contend only when their queries land
    on the same shard.  Each shard owns [max_bytes / shards] of the
    byte budget and evicts from its own LRU tail; {!resident_bytes} is
    what a [Budget] should charge against its table ceiling.

    The shape tier is keyed by the cardinality-free shape hash and has
    two faces.  {!shape_threshold} serves the best known cost for the
    shape as an upper-bound seed for the Section 6.4 thresholded driver
    when the exact lookup misses but a same-shaped problem was solved
    before.  {!shape_seed} serves a {e banded plan ensemble}: per shape,
    up to {!max_bands_per_shape} plans keyed by selectivity band
    ({!Fingerprint.selectivity_band}), because one cached join order
    does not fit all selectivity regimes of a shape.  Both faces are
    heuristic by construction — a colliding or badly-scaled seed merely
    forces the driver's usual threshold escalation, which guarantees
    the true optimum regardless.

    Statistics are kept per shard under the shard lock (exact, and
    available even when [Blitz_obs.Metrics] is disabled) and mirrored
    to the process-wide metrics [blitz_cache_hits_total],
    [blitz_cache_misses_total], [blitz_cache_insertions_total],
    [blitz_cache_evictions_total], [blitz_cache_rebases_total],
    [blitz_cache_shape_hits_total] and [blitz_cache_band_hits_total]. *)

module Plan = Blitz_plan.Plan

type t

val create : ?shards:int -> ?max_bytes:int -> ?warm_slack:float -> unit -> t
(** [shards] (default 8) is rounded up to a power of two; [max_bytes]
    (default 64 MiB) is the whole-cache budget, split evenly across
    shards; [warm_slack] (default 2.0) scales a shape-tier cost into a
    threshold seed.  Raises [Invalid_argument] on non-positive values
    or [warm_slack < 1]. *)

val shards : t -> int
(** The shard count actually in use (the power of two {!create} rounded
    up to). *)

val max_bytes : t -> int
(** The configured whole-cache byte budget (compare {!resident_bytes}
    for current occupancy). *)

val warm_slack : t -> float
(** The configured shape-tier threshold multiplier (see
    {!shape_threshold}). *)

type hit = {
  plan : Plan.t;  (** Rebased to the caller's relation numbering. *)
  cost : float;
  passes : int;
  final_threshold : float;
  rebased : bool;
      (** The stored labeling differed from the caller's — the plan was
          renumbered on the way out. *)
}

val find : t -> Fingerprint.scratch -> optimizer:string -> hit option
(** Look up the problem last {!Fingerprint.compute}d into the scratch.
    A hit refreshes the entry's LRU position. *)

val store :
  t ->
  Fingerprint.scratch ->
  optimizer:string ->
  plan:Plan.t ->
  cost:float ->
  passes:int ->
  final_threshold:float ->
  unit
(** Insert the outcome of a cold optimization ([plan] in the caller's
    numbering; it is canonized for storage).  If an equal entry is
    already resident, its LRU position is refreshed and nothing is
    inserted.  Also folds [cost] into the shape tier and the plan (in
    shape-canonical space) into the shape's banded ensemble.  Callers
    must not store non-finite costs or non-optimal plans. *)

val shape_threshold : t -> Fingerprint.scratch -> float option
(** [Some (best_known_cost * warm_slack)] when a same-shaped problem
    has been stored before: a threshold seed for the Section 6.4
    driver.  Counts a shape hit. *)

val max_bands_per_shape : int
(** Ensemble width: distinct selectivity bands retained per shape. *)

val shape_seed : t -> Fingerprint.scratch -> (Plan.t * float) option
(** The ensemble member stored for this problem's shape {e and}
    selectivity band, rebased to the caller's numbering, with the cost
    it had under the {e storing} catalog.  The plan is a structurally
    valid join order over the caller's relation count, but the cost is
    another problem's: consumers must re-cost under their own catalog
    (the engine derives a first-pass threshold from that re-costing —
    a genuine upper bound, so the pass cannot fail for numeric
    reasons; a shape-hash collision at worst forces the driver's
    escalation/rescue machinery).  Counts a band hit. *)

val resident_bytes : t -> int
(** Current estimated footprint of all shards' entries — the number a
    [Budget] memory ceiling should charge. *)

val entry_count : t -> int
(** Resident exact-entry count across all shards (shape records not
    included). *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  rebases : int;  (** Hits served under a different labeling. *)
  shape_hits : int;
  band_hits : int;  (** Banded-ensemble plan seeds served. *)
  entries : int;
  bytes : int;
}

val stats : t -> stats
(** Exact totals across shards (reads take each shard lock briefly). *)

val clear : t -> unit
(** Drop every entry and shape record; statistics keep accumulating. *)

(** Rename-invariant canonical fingerprints of optimization problems.

    A plan cache is only useful if structurally identical queries land
    on the same key even when the client numbers (or names) its
    relations differently run to run — ORMs and query rewriters permute
    join lists freely.  This module canonicalizes a problem — catalog
    cardinalities, join-graph selectivities and the cost-model
    configuration — into a labeling that is invariant under relation
    renaming/permutation, so the cache can store plans once in
    {e canonical index space} and rebase them to whatever numbering the
    next caller uses.

    Canonical labeling: relations are sorted by a refined key seeded
    with (cardinality, degree) and sharpened by Weisfeiler–Leman-style
    rounds that fold each relation's (selectivity, neighbor-key)
    multiset back into its own key.  Ties that survive refinement are
    broken by original index; such residual ties arise only in
    symmetric problems where either the tied relations are
    interchangeable (the canonical form is unchanged — uniform stars,
    cliques, products) or a renamed resubmission conservatively misses.
    Equality of canonical forms always certifies isomorphism, so a hit
    can never pair a query with another query's plan.

    A second, coarser key — the {e shape} — drops the cardinalities and
    canonicalizes the selectivity structure alone (Simpli-Squared's
    observation that join-graph shape carries most of the ordering
    signal).  Shape near-hits seed the Section 6.4 plan-cost threshold
    on an exact miss.

    All computation runs inside a caller-owned {!scratch} (one per
    engine session), so fingerprinting a query in a hot
    [optimize_many] batch allocates nothing; {!freeze} copies the
    canonical form out only when the cache actually stores an entry. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type scratch
(** Preallocated workspace: key/permutation/edge buffers grown to the
    session's high-water-mark [n] and reused across queries. *)

val create_scratch : unit -> scratch
(** A fresh empty workspace; one per session is the intended
    cardinality. *)

val model_digest : Cost_model.t -> int
(** A digest of the cost model's {e behavior}, not just its name: the
    name plus [kappa] probed at fixed sample points, so two
    [disk_nested_loops] instances with different blocking factors — both
    named ["kdnl"] — fingerprint differently.  Compute once per session
    (the model is fixed there), not per query. *)

val compute : scratch -> model_digest:int -> Catalog.t -> Join_graph.t option -> unit
(** Canonicalize the problem into the scratch, replacing whatever the
    scratch held.  A [None] graph is fingerprinted exactly like a
    predicate-free graph (the two produce bit-identical plans).  Raises
    [Invalid_argument] if the graph size differs from the catalog's. *)

(** {1 Reading the scratch (valid until the next {!compute})} *)

val hash : scratch -> int
(** Hash of the canonical form (cards, edges, model digest).  Collisions
    are resolved by {!matches}' full structural equality, never by
    trusting the hash. *)

val shape_hash : scratch -> int
(** Hash of the cardinality-free canonical form (edges + model digest
    only): the warm-start tier's key. *)

val n : scratch -> int
(** Relation count of the problem last computed into the scratch. *)

val selectivity_band : scratch -> int
(** Which selectivity regime the problem sits in: the floor of the sum
    of [log10] selectivities over the canonical edge list — one decade
    of total predicate selectivity per band ("One Join Order Does Not
    Fit All": a single plan per shape is fragile across regimes, so
    the cache's shape tier keeps an ensemble keyed by this).
    Rename-invariant: a renamed resubmission sums bit-identical floats
    in the same canonical order.  [0] for a predicate-free problem. *)

val residual_ties : scratch -> bool
(** Whether refinement left indistinguishable relations (tie-break fell
    back to original index): renamed resubmissions of such problems may
    miss; identical resubmissions always hit. *)

type frozen
(** A heap copy of a scratch's canonical form, safe to store. *)

val freeze : scratch -> frozen
(** Copy the scratch's canonical form to the heap (the scratch remains
    reusable). *)

val frozen_hash : frozen -> int
(** The {!hash} captured at freeze time. *)

val frozen_bytes : frozen -> int
(** Heap footprint estimate of the frozen form, for cache accounting. *)

val matches : scratch -> frozen -> bool
(** Exact structural equality of canonical forms (cards bit-for-bit,
    edge lists and selectivities bit-for-bit, model digests).  [true]
    certifies the scratch's problem and the frozen one are isomorphic
    via their canonical labelings. *)

val same_labeling : scratch -> frozen -> bool
(** Whether the scratch's caller-to-canonical permutation equals the one
    the frozen form was stored under — i.e. the hit needed no
    renumbering.  Only meaningful when {!matches} holds. *)

val canonize_plan : scratch -> Plan.t -> Plan.t
(** Re-index a plan from the caller's relation numbering into canonical
    space (for storing). *)

val rebase_plan : scratch -> Plan.t -> Plan.t
(** Re-index a canonical-space plan into the caller's numbering (for
    serving a hit).  [rebase_plan s (canonize_plan s p) = p]. *)

val shape_canonize_plan : scratch -> Plan.t -> Plan.t
(** Re-index a plan into {e shape}-canonical space (cardinality-free
    labeling) — the coordinate system of the banded shape-tier
    ensemble, stable across shape-equal problems whose cardinalities
    differ. *)

val shape_rebase_plan : scratch -> Plan.t -> Plan.t
(** Inverse of {!shape_canonize_plan} for the current scratch:
    [shape_rebase_plan s (shape_canonize_plan s p) = p]. *)

module Plan = Blitz_plan.Plan
module Obs = Blitz_obs.Obs

let m_hits = Obs.Metrics.counter ~help:"Plan-cache exact hits" "blitz_cache_hits_total"
let m_misses = Obs.Metrics.counter ~help:"Plan-cache exact misses" "blitz_cache_misses_total"

let m_insertions =
  Obs.Metrics.counter ~help:"Plan-cache entries inserted" "blitz_cache_insertions_total"

let m_evictions =
  Obs.Metrics.counter ~help:"Plan-cache LRU evictions" "blitz_cache_evictions_total"

let m_rebases =
  Obs.Metrics.counter ~help:"Plan-cache hits renumbered to the caller's labeling"
    "blitz_cache_rebases_total"

let m_shape_hits =
  Obs.Metrics.counter ~help:"Shape-tier threshold seeds served" "blitz_cache_shape_hits_total"

let m_band_hits =
  Obs.Metrics.counter ~help:"Banded-ensemble plan seeds served by selectivity band"
    "blitz_cache_band_hits_total"

type node = {
  key : int;
  fp : Fingerprint.frozen;
  optimizer : string;
  plan : Plan.t;  (* canonical index space *)
  cost : float;
  passes : int;
  final_threshold : float;
  bytes : int;
  mutable prev : node;
  mutable next : node;
}

let dummy_frozen = Fingerprint.freeze (Fingerprint.create_scratch ())

let make_sentinel () =
  let rec s =
    {
      key = 0;
      fp = dummy_frozen;
      optimizer = "";
      plan = Plan.Leaf 0;
      cost = nan;
      passes = 0;
      final_threshold = nan;
      bytes = 0;
      prev = s;
      next = s;
    }
  in
  s

let unlink nd =
  nd.prev.next <- nd.next;
  nd.next.prev <- nd.prev

let push_front sent nd =
  nd.next <- sent.next;
  nd.prev <- sent;
  sent.next.prev <- nd;
  sent.next <- nd

(* One ensemble member: a plan in shape-canonical index space, with
   the cost and relation count of the problem that stored it.  The
   cost is under the {e storing} catalog — a seed consumer must re-cost
   under its own statistics before trusting it. *)
type band_entry = { b_plan : Plan.t; b_cost : float; b_n : int }

type shard = {
  lock : Mutex.t;
  tbl : (int, node list) Hashtbl.t;
  sent : node;  (* MRU = [sent.next], LRU tail = [sent.prev] *)
  shapes : (int, float) Hashtbl.t;  (* shape hash -> best known cost *)
  bands : (int, (int * band_entry) list) Hashtbl.t;
      (* shape hash -> per-selectivity-band plan ensemble *)
  budget : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable rebases : int;
  mutable shape_hits : int;
  mutable band_hits : int;
}

type t = { shards_arr : shard array; mask : int; max_bytes : int; warm_slack : float }

let shards t = Array.length t.shards_arr
let max_bytes t = t.max_bytes
let warm_slack t = t.warm_slack

(* Bound on the heuristic shape table so an adversarial stream of
   distinct shapes cannot grow it without limit; dropping it loses only
   warm-start seeds, never correctness. *)
let max_shapes_per_shard = 4096

(* Ensemble width: distinct selectivity bands retained per shape.  "One
   Join Order Does Not Fit All" finds a handful of regimes per query
   shape; eight decades of total selectivity is generous. *)
let max_bands_per_shape = 8

let next_pow2 x =
  let r = ref 1 in
  while !r < x do
    r := !r lsl 1
  done;
  !r

let create ?(shards = 8) ?(max_bytes = 64 * 1024 * 1024) ?(warm_slack = 2.0) () =
  if shards <= 0 then invalid_arg "Plan_cache.create: shards must be positive";
  if max_bytes <= 0 then invalid_arg "Plan_cache.create: max_bytes must be positive";
  if not (warm_slack >= 1.0) then invalid_arg "Plan_cache.create: warm_slack must be >= 1";
  let count = next_pow2 shards in
  let budget = max 1 (max_bytes / count) in
  let mk _ =
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
      sent = make_sentinel ();
      shapes = Hashtbl.create 64;
      bands = Hashtbl.create 64;
      budget;
      bytes = 0;
      hits = 0;
      misses = 0;
      insertions = 0;
      evictions = 0;
      rebases = 0;
      shape_hits = 0;
      band_hits = 0;
    }
  in
  { shards_arr = Array.init count mk; mask = count - 1; max_bytes; warm_slack }

let string_hash str = String.fold_left (fun h c -> (h * 31) + Char.code c) 5381 str

let entry_key scratch ~optimizer =
  (* Mix the optimizer name in so e.g. "exact" and "thresholded" results
     for the same problem live in distinct entries. *)
  let h = Fingerprint.hash scratch lxor (string_hash optimizer * 0x100000001b3) in
  h lxor (h lsr 31)

let shard_of t key = t.shards_arr.((key lsr 1) land t.mask)

let with_lock sh f =
  Mutex.lock sh.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

type hit = {
  plan : Plan.t;
  cost : float;
  passes : int;
  final_threshold : float;
  rebased : bool;
}

let find t scratch ~optimizer =
  let key = entry_key scratch ~optimizer in
  let sh = shard_of t key in
  let found =
    with_lock sh (fun () ->
        let nodes = Option.value ~default:[] (Hashtbl.find_opt sh.tbl key) in
        match
          List.find_opt
            (fun nd -> String.equal nd.optimizer optimizer && Fingerprint.matches scratch nd.fp)
            nodes
        with
        | None ->
            sh.misses <- sh.misses + 1;
            None
        | Some nd ->
            unlink nd;
            push_front sh.sent nd;
            sh.hits <- sh.hits + 1;
            let rebased = not (Fingerprint.same_labeling scratch nd.fp) in
            if rebased then sh.rebases <- sh.rebases + 1;
            Some (nd, rebased))
  in
  match found with
  | None ->
      Obs.Metrics.incr m_misses;
      None
  | Some (nd, rebased) ->
      Obs.Metrics.incr m_hits;
      if rebased then Obs.Metrics.incr m_rebases;
      (* Rebase outside the lock: the stored plan is immutable and the
         scratch is caller-owned, so eviction races are harmless. *)
      Some
        {
          plan = Fingerprint.rebase_plan scratch nd.plan;
          cost = nd.cost;
          passes = nd.passes;
          final_threshold = nd.final_threshold;
          rebased;
        }

let plan_bytes plan =
  let word = Sys.word_size / 8 in
  let rec sz = function
    | Plan.Leaf _ -> 2 * word
    | Plan.Join (l, r) -> (3 * word) + sz l + sz r
    | Plan.Multiway { inputs; cover; agm = _ } ->
      (* Node + per-input list cells + cover entries (members list cells
         plus the boxed weight). *)
      List.fold_left (fun acc p -> acc + (3 * word) + sz p) (4 * word) inputs
      + List.fold_left
          (fun acc (members, _) -> acc + ((3 + (3 * List.length members)) * word))
          0 cover
  in
  sz plan

let node_bytes ~fp ~plan ~optimizer =
  let word = Sys.word_size / 8 in
  (12 * word) + Fingerprint.frozen_bytes fp + plan_bytes plan + String.length optimizer + word

let evict_over_budget sh =
  let evicted = ref 0 in
  while sh.bytes > sh.budget && sh.sent.prev != sh.sent do
    let victim = sh.sent.prev in
    unlink victim;
    (match Hashtbl.find_opt sh.tbl victim.key with
    | None -> ()
    | Some nodes -> (
        match List.filter (fun nd -> nd != victim) nodes with
        | [] -> Hashtbl.remove sh.tbl victim.key
        | rest -> Hashtbl.replace sh.tbl victim.key rest));
    sh.bytes <- sh.bytes - victim.bytes;
    sh.evictions <- sh.evictions + 1;
    incr evicted
  done;
  !evicted

let record_shape sh shape_key cost =
  match Hashtbl.find_opt sh.shapes shape_key with
  | Some best -> if cost < best then Hashtbl.replace sh.shapes shape_key cost
  | None ->
      if Hashtbl.length sh.shapes < max_shapes_per_shard then
        Hashtbl.replace sh.shapes shape_key cost

let record_band sh shape_key ~band entry =
  match Hashtbl.find_opt sh.bands shape_key with
  | None ->
      if Hashtbl.length sh.bands < max_shapes_per_shard then
        Hashtbl.replace sh.bands shape_key [ (band, entry) ]
  | Some members -> (
      match List.assoc_opt band members with
      | Some old ->
          if entry.b_cost < old.b_cost then
            Hashtbl.replace sh.bands shape_key
              ((band, entry) :: List.remove_assoc band members)
      | None ->
          if List.length members < max_bands_per_shape then
            Hashtbl.replace sh.bands shape_key ((band, entry) :: members))

let shape_shard t shape_key = t.shards_arr.((shape_key lsr 1) land t.mask)

let store t scratch ~optimizer ~plan ~cost ~passes ~final_threshold =
  let key = entry_key scratch ~optimizer in
  let sh = shard_of t key in
  (* The shape record routes by shape key (that is how lookups find it),
     which may be a different shard; never hold both locks at once. *)
  let shape_key = Fingerprint.shape_hash scratch in
  let ssh = shape_shard t shape_key in
  let band = Fingerprint.selectivity_band scratch in
  let banded_plan = Fingerprint.shape_canonize_plan scratch plan in
  let b_entry = { b_plan = banded_plan; b_cost = cost; b_n = Fingerprint.n scratch } in
  with_lock ssh (fun () ->
      record_shape ssh shape_key cost;
      record_band ssh shape_key ~band b_entry);
  (* Canonize and freeze outside the lock; both only read caller state. *)
  let canonical = Fingerprint.canonize_plan scratch plan in
  let fp = Fingerprint.freeze scratch in
  let inserted, evicted =
    with_lock sh (fun () ->
        let nodes = Option.value ~default:[] (Hashtbl.find_opt sh.tbl key) in
        match
          List.find_opt
            (fun nd -> String.equal nd.optimizer optimizer && Fingerprint.matches scratch nd.fp)
            nodes
        with
        | Some nd ->
            (* Duplicate store (two sessions raced the same miss): keep
               the resident entry, just refresh its recency. *)
            unlink nd;
            push_front sh.sent nd;
            (false, 0)
        | None ->
            let nd =
              {
                key;
                fp;
                optimizer;
                plan = canonical;
                cost;
                passes;
                final_threshold;
                bytes = node_bytes ~fp ~plan:canonical ~optimizer;
                prev = sh.sent;
                next = sh.sent;
              }
            in
            Hashtbl.replace sh.tbl key (nd :: nodes);
            push_front sh.sent nd;
            sh.bytes <- sh.bytes + nd.bytes;
            sh.insertions <- sh.insertions + 1;
            (true, evict_over_budget sh))
  in
  if inserted then Obs.Metrics.incr m_insertions;
  if evicted > 0 then Obs.Metrics.add m_evictions evicted

let shape_threshold t scratch =
  let shape_key = Fingerprint.shape_hash scratch in
  let sh = shape_shard t shape_key in
  let best =
    with_lock sh (fun () ->
        match Hashtbl.find_opt sh.shapes shape_key with
        | None -> None
        | Some c ->
            sh.shape_hits <- sh.shape_hits + 1;
            Some c)
  in
  match best with
  | None -> None
  | Some c ->
      Obs.Metrics.incr m_shape_hits;
      Some (c *. t.warm_slack)

let shape_seed t scratch =
  let shape_key = Fingerprint.shape_hash scratch in
  let band = Fingerprint.selectivity_band scratch in
  let n = Fingerprint.n scratch in
  let sh = shape_shard t shape_key in
  let found =
    with_lock sh (fun () ->
        match Hashtbl.find_opt sh.bands shape_key with
        | None -> None
        | Some members -> (
            match List.assoc_opt band members with
            | Some e when e.b_n = n ->
                sh.band_hits <- sh.band_hits + 1;
                Some e
            | Some _ | None -> None))
  in
  match found with
  | None -> None
  | Some e ->
      Obs.Metrics.incr m_band_hits;
      (* [b_n = n] makes the rebase total (every shape-canonical leaf is
         below [n]); a shape-hash collision can still hand back a plan
         for a different problem, which the consumer's re-costing and
         the threshold driver's rescue pass absorb. *)
      Some (Fingerprint.shape_rebase_plan scratch e.b_plan, e.b_cost)

let resident_bytes t =
  Array.fold_left
    (fun acc sh -> acc + with_lock sh (fun () -> sh.bytes))
    0 t.shards_arr

let entry_count t =
  Array.fold_left
    (fun acc sh ->
      acc
      + with_lock sh (fun () ->
            Hashtbl.fold (fun _ nodes n -> n + List.length nodes) sh.tbl 0))
    0 t.shards_arr

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  rebases : int;
  shape_hits : int;
  band_hits : int;
  entries : int;
  bytes : int;
}

let stats t =
  Array.fold_left
    (fun acc sh ->
      with_lock sh (fun () ->
          {
            hits = acc.hits + sh.hits;
            misses = acc.misses + sh.misses;
            insertions = acc.insertions + sh.insertions;
            evictions = acc.evictions + sh.evictions;
            rebases = acc.rebases + sh.rebases;
            shape_hits = acc.shape_hits + sh.shape_hits;
            band_hits = acc.band_hits + sh.band_hits;
            entries =
              acc.entries + Hashtbl.fold (fun _ nodes n -> n + List.length nodes) sh.tbl 0;
            bytes = acc.bytes + sh.bytes;
          }))
    {
      hits = 0;
      misses = 0;
      insertions = 0;
      evictions = 0;
      rebases = 0;
      shape_hits = 0;
      band_hits = 0;
      entries = 0;
      bytes = 0;
    }
    t.shards_arr

let clear t =
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          Hashtbl.reset sh.tbl;
          Hashtbl.reset sh.shapes;
          Hashtbl.reset sh.bands;
          sh.bytes <- 0;
          let s = sh.sent in
          s.prev <- s;
          s.next <- s))
    t.shards_arr

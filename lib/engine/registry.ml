module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Rng = Blitz_util.Rng
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table
module Blitzsplit = Blitz_core.Blitzsplit
module Threshold = Blitz_core.Threshold
module Pool = Blitz_parallel.Pool
module Parallel_blitzsplit = Blitz_parallel.Parallel_blitzsplit
module Hybrid = Blitz_hybrid.Hybrid
module Dpccp = Blitz_dpccp.Dpccp
module Dpconv = Blitz_dpccp.Dpconv
module B = Blitz_baselines
module Obs = Blitz_obs.Obs

type problem = { catalog : Catalog.t; graph : Join_graph.t option }

let problem ?graph catalog = { catalog; graph }

type ctx = {
  model : Cost_model.t;
  arena : Arena.t option;
  pool : Pool.t option;
  num_domains : int;
  interrupt : (unit -> bool) option;
  threshold : float option;
  growth : float option;
  max_passes : int option;
  seed : int;
  counters : Counters.t option;
  multiway : bool;
}

let ctx ?arena ?pool ?(num_domains = 1) ?interrupt ?threshold ?growth ?max_passes ?(seed = 1)
    ?counters ?(multiway = false) model =
  if num_domains < 1 then invalid_arg "Registry.ctx: num_domains must be positive";
  {
    model;
    arena;
    pool;
    num_domains;
    interrupt;
    threshold;
    growth;
    max_passes;
    seed;
    counters;
    multiway;
  }

type outcome = {
  plan : Plan.t option;
  cost : float;
  passes : int;
  final_threshold : float;
  table : Dp_table.t option;
  counters : Counters.t option;
  note : string option;
}

type caps = {
  max_n : int option;
  tree_only : bool;
  table_bytes : (n:int -> int) option;
  parallelizable : bool;
  exact : bool;
  deadline_exempt : bool;
  stats_free : bool;
  connected_only : bool;
  cacheable : bool;
  multiway : bool;
}

type entry = {
  name : string;
  summary : string;
  caps : caps;
  optimize : ctx -> problem -> outcome;
}

(* ---- shared helpers ---- *)

let graph_of { catalog; graph } =
  match graph with
  | Some g -> g
  | None -> Join_graph.no_predicates ~n:(Catalog.n catalog)

let counters_of (c : ctx) = match c.counters with Some c -> c | None -> Counters.create ()

let basic ?note ?counters ~plan ~cost () =
  { plan; cost; passes = 1; final_threshold = Float.infinity; table = None; counters; note }

let of_blitzsplit ?(passes = 1) ?(final_threshold = Float.infinity) ctr (r : Blitzsplit.t) =
  {
    plan = Blitzsplit.best_plan r;
    cost = Blitzsplit.best_cost r;
    passes;
    final_threshold;
    table = Some r.Blitzsplit.table;
    counters = Some ctr;
    note = None;
  }

let dp_caps =
  {
    max_n = Some Dp_table.max_relations;
    tree_only = false;
    table_bytes = Some (fun ~n -> Dp_table.estimate_bytes ~n ());
    parallelizable = true;
    exact = true;
    deadline_exempt = false;
    stats_free = false;
    connected_only = false;
    cacheable = true;
    multiway = false;
  }

let tablefree_caps =
  {
    max_n = None;
    tree_only = false;
    table_bytes = None;
    parallelizable = false;
    exact = false;
    deadline_exempt = false;
    stats_free = false;
    connected_only = false;
    cacheable = false;
    multiway = false;
  }

(* ---- the exact tier: blitzsplit, sequential or rank-parallel ---- *)

(* [Parallel_blitzsplit.run] already folds down to the sequential
   optimizer when it has neither a pool nor more than one domain, so
   one call covers every (pool, num_domains) combination; the result is
   bit-identical across all of them. *)
let run_exact ctx p =
  let ctr = counters_of ctx in
  let r =
    match p.graph with
    | Some g when ctx.multiway ->
      (* The rank-parallel driver has no multiway path: an n-ary planning
         request always runs the sequential optimizer, pool or not. *)
      Blitzsplit.optimize_join ?arena:ctx.arena ~counters:ctr ?interrupt:ctx.interrupt
        ~multiway:true ctx.model p.catalog g
    | _ ->
      Parallel_blitzsplit.run ?pool:ctx.pool ~num_domains:ctx.num_domains ~graph_opt:p.graph
        ?arena:ctx.arena ~counters:ctr ?interrupt:ctx.interrupt ctx.model p.catalog
  in
  of_blitzsplit ctr r

(* ---- the thresholded tier (Section 6.4 driver) ---- *)

(* With no explicit threshold the first pass is seeded from the greedy
   bound: greedy's cost upper-bounds the optimum, so the pass prunes
   aggressively yet cannot fail for numeric reasons alone (the policy
   the degradation cascade has always used). *)
let seed_threshold ctx p =
  let _, greedy_cost = B.Greedy.optimize ctx.model p.catalog (graph_of p) in
  if Float.is_finite greedy_cost && greedy_cost > 0.0 then greedy_cost *. (1.0 +. 1e-9) else 1e6

let run_thresholded ctx p =
  let ctr = counters_of ctx in
  let threshold =
    match ctx.threshold with Some t -> t | None -> seed_threshold ctx p
  in
  let outcome =
    (* Same fallback as [run_exact]: multiway planning is sequential. *)
    if (ctx.pool <> None || ctx.num_domains > 1) && not (ctx.multiway && p.graph <> None) then
      match p.graph with
      | Some g ->
        Parallel_blitzsplit.threshold_optimize_join ?pool:ctx.pool ?arena:ctx.arena
          ~counters:ctr ?growth:ctx.growth ?max_passes:ctx.max_passes ?interrupt:ctx.interrupt
          ~num_domains:ctx.num_domains ~threshold ctx.model p.catalog g
      | None ->
        Parallel_blitzsplit.threshold_optimize_product ?pool:ctx.pool ?arena:ctx.arena
          ~counters:ctr ?growth:ctx.growth ?max_passes:ctx.max_passes ?interrupt:ctx.interrupt
          ~num_domains:ctx.num_domains ~threshold ctx.model p.catalog
    else
      match p.graph with
      | Some g ->
        Threshold.optimize_join ?arena:ctx.arena ~counters:ctr ?growth:ctx.growth
          ?max_passes:ctx.max_passes ?interrupt:ctx.interrupt ~multiway:ctx.multiway ~threshold
          ctx.model p.catalog g
      | None ->
        Threshold.optimize_product ?arena:ctx.arena ~counters:ctr ?growth:ctx.growth
          ?max_passes:ctx.max_passes ?interrupt:ctx.interrupt ~threshold ctx.model p.catalog
  in
  of_blitzsplit ~passes:outcome.Threshold.passes
    ~final_threshold:outcome.Threshold.final_threshold ctr outcome.Threshold.result

(* ---- hybrid (Section 7): DP windows inside randomized search ---- *)

let run_hybrid ctx p =
  let rng = Rng.create ~seed:ctx.seed in
  let interrupt = match ctx.interrupt with Some f -> f | None -> fun () -> false in
  let (plan, cost), stats =
    Hybrid.optimize ~rng ?arena:ctx.arena ~interrupt ctx.model p.catalog (graph_of p)
  in
  basic
    ~note:
      (Printf.sprintf "%d windows re-optimized, %d improved, %d kicks"
         stats.Hybrid.windows_reoptimized stats.Hybrid.windows_improved stats.Hybrid.kicks)
    ~plan:(Some plan) ~cost ()

(* ---- baselines ---- *)

let run_greedy ctx p =
  let plan, cost = B.Greedy.optimize ctx.model p.catalog (graph_of p) in
  basic ~plan:(Some plan) ~cost ()

let run_ikkbz ctx p =
  let g = graph_of p in
  let r = B.Ikkbz.optimize p.catalog g in
  (* IKKBZ optimizes C_out; report the plan's cost under the session
     model for an honest cross-method comparison. *)
  basic
    ~note:"C_out ordering re-costed under the session model"
    ~plan:(Some r.B.Ikkbz.plan)
    ~cost:(Plan.cost ctx.model p.catalog g r.B.Ikkbz.plan)
    ()

let run_dpsize ~cartesian ctx p =
  let r = B.Dpsize.optimize ~cartesian ctx.model p.catalog (graph_of p) in
  basic ~plan:r.B.Dpsize.plan ~cost:r.B.Dpsize.cost
    ~note:(Printf.sprintf "%d pairs considered" r.B.Dpsize.pairs_considered)
    ()

let run_leftdeep ~policy ctx p =
  let ctr = counters_of ctx in
  let r = B.Leftdeep.optimize ~policy ~counters:ctr ctx.model p.catalog (graph_of p) in
  basic ~counters:ctr ~plan:r.B.Leftdeep.plan ~cost:r.B.Leftdeep.cost ()

let run_iterative_improvement ctx p =
  let rng = Rng.create ~seed:ctx.seed in
  let (plan, cost), stats =
    B.Iterative_improvement.optimize ~rng ctx.model p.catalog (graph_of p)
  in
  basic
    ~note:
      (Printf.sprintf "%d plans evaluated, %d restarts"
         stats.B.Iterative_improvement.plans_evaluated
         stats.B.Iterative_improvement.restarts_done)
    ~plan:(Some plan) ~cost ()

let run_simulated_annealing ctx p =
  let rng = Rng.create ~seed:ctx.seed in
  let (plan, cost), stats =
    B.Simulated_annealing.optimize ~rng ctx.model p.catalog (graph_of p)
  in
  basic
    ~note:
      (Printf.sprintf "%d plans evaluated, %d uphill accepted"
         stats.B.Simulated_annealing.plans_evaluated stats.B.Simulated_annealing.uphill_accepted)
    ~plan:(Some plan) ~cost ()

let run_random_probe ctx p =
  let rng = Rng.create ~seed:ctx.seed in
  let samples = 200 * Catalog.n p.catalog in
  let plan, cost = B.Random_probe.optimize ~rng ~samples ctx.model p.catalog (graph_of p) in
  basic ~note:(Printf.sprintf "%d samples" samples) ~plan:(Some plan) ~cost ()

let run_volcano ctx p =
  let (plan, cost), stats = B.Volcano.optimize ctx.model p.catalog (graph_of p) in
  basic
    ~note:
      (Printf.sprintf "%d groups, %d expressions" stats.B.Volcano.groups
         stats.B.Volcano.expressions)
    ~plan:(Some plan) ~cost ()

let run_simpli ctx p =
  let g = graph_of p in
  let plan = B.Simpli.optimize g in
  (* The order is chosen from graph structure alone; the reported cost
     is a re-costing under the session model and whatever catalog the
     caller supplied — possibly fabricated, which is exactly when this
     tier earns its keep. *)
  basic
    ~note:"estimate-free structural order re-costed under the session model"
    ~plan:(Some plan)
    ~cost:(Plan.cost ctx.model p.catalog g plan)
    ()

let run_dpccp ctx p =
  let ctr = counters_of ctx in
  let r =
    Dpccp.optimize ?arena:ctx.arena ~counters:ctr ?interrupt:ctx.interrupt
      ~multiway:ctx.multiway ctx.model p.catalog (graph_of p)
  in
  {
    plan = r.Dpccp.plan;
    cost = r.Dpccp.cost;
    passes = 1;
    final_threshold = Float.infinity;
    table = r.Dpccp.table;
    counters = Some ctr;
    note =
      Some
        (Printf.sprintf "%d csg-cmp pairs over %d connected sets (%s backend)"
           r.Dpccp.ccp_pairs r.Dpccp.connected_sets
           (match r.Dpccp.backend with Dpccp.Dense -> "dense" | Dpccp.Sparse -> "sparse"));
  }

let run_dpconv ctx p =
  let g = graph_of p in
  let r = Dpconv.optimize ?interrupt:ctx.interrupt p.catalog g in
  (* DPconv minimizes the C_max bottleneck; report the plan's cost under
     the session model for an honest cross-method comparison. *)
  basic
    ~note:
      (Printf.sprintf
         "C_max bottleneck %.6g in %d feasibility checks; re-costed under the session model"
         r.Dpconv.bottleneck r.Dpconv.checks)
    ~plan:(Some r.Dpconv.plan)
    ~cost:(Plan.cost ctx.model p.catalog g r.Dpconv.plan)
    ()

let run_bruteforce ctx p =
  let plan, cost = B.Bruteforce.optimize ctx.model p.catalog (graph_of p) in
  basic ~plan:(Some plan) ~cost ()

(* ---- the registry itself ---- *)

(* Builtins are registered here rather than by side effect elsewhere so
   linking the library is enough to see them. *)
let entries : entry list ref = ref []

(* Every dispatch — by name through [optimize], or directly through a
   held [entry] (the cascade, [Engine.optimize_many]) — is metered,
   because the meter is baked into the entry at registration.  The
   wrapper changes no computation: same ctx, same problem, same result
   or exception. *)
let instrument e =
  let calls =
    Obs.Metrics.counter ~help:"Optimizer dispatches through the registry"
      ~labels:[ ("optimizer", e.name) ]
      "blitz_registry_calls_total"
  in
  let errors =
    Obs.Metrics.counter ~help:"Registry dispatches that raised"
      ~labels:[ ("optimizer", e.name) ]
      "blitz_registry_errors_total"
  in
  let optimize ctx p =
    Obs.Metrics.incr calls;
    Obs.span "registry.optimize" ~attrs:[ ("optimizer", e.name) ] (fun () ->
        try e.optimize ctx p
        with exn ->
          Obs.Metrics.incr errors;
          raise exn)
  in
  { e with optimize }

let register e =
  if List.exists (fun e' -> e'.name = e.name) !entries then
    invalid_arg (Printf.sprintf "Registry.register: duplicate optimizer %S" e.name);
  entries := !entries @ [ instrument e ]

let () =
  List.iter register
    [
      {
        name = "exact";
        summary = "blitzsplit: exhaustive bushy DP with Cartesian products";
        caps = { dp_caps with multiway = true };
        optimize = run_exact;
      };
      {
        name = "thresholded";
        summary = "blitzsplit under a plan-cost threshold with re-optimization passes";
        caps = { dp_caps with multiway = true };
        optimize = run_thresholded;
      };
      {
        name = "hybrid";
        summary = "DP windows inside chained randomized search (any n)";
        caps = tablefree_caps;
        optimize = run_hybrid;
      };
      {
        name = "ikkbz";
        summary = "IKKBZ: optimal product-free left-deep order for tree queries";
        caps = { tablefree_caps with tree_only = true };
        optimize = run_ikkbz;
      };
      {
        name = "greedy";
        summary = "greedy min-cardinality pairing (the terminal fallback)";
        caps = { tablefree_caps with deadline_exempt = true };
        optimize = run_greedy;
      };
      {
        name = "simpli-squared";
        summary = "estimate-free structural left-deep order (reads no statistics)";
        caps = { tablefree_caps with deadline_exempt = true; stats_free = true };
        optimize = run_simpli;
      };
      {
        name = "dpsize";
        summary = "size-driven DP enumerator, Cartesian products allowed";
        caps = { dp_caps with parallelizable = false };
        optimize = run_dpsize ~cartesian:true;
      };
      {
        name = "dpsize-no-products";
        summary = "size-driven DP enumerator, connected joins only";
        caps =
          {
            dp_caps with
            parallelizable = false;
            exact = false;
            cacheable = false;
            connected_only = true;
          };
        optimize = run_dpsize ~cartesian:false;
      };
      {
        name = "leftdeep";
        summary = "System-R-style left-deep DP, products allowed";
        caps = { dp_caps with parallelizable = false; exact = false; cacheable = false };
        optimize = run_leftdeep ~policy:B.Leftdeep.Allowed;
      };
      {
        name = "leftdeep-deferred";
        summary = "left-deep DP with Cartesian products deferred to the end";
        caps = { dp_caps with parallelizable = false; exact = false; cacheable = false };
        optimize = run_leftdeep ~policy:B.Leftdeep.Deferred;
      };
      {
        name = "iterative-improvement";
        summary = "random restarts + downhill transformation moves";
        caps = tablefree_caps;
        optimize = run_iterative_improvement;
      };
      {
        name = "simulated-annealing";
        summary = "annealed transformation search over bushy plans";
        caps = tablefree_caps;
        optimize = run_simulated_annealing;
      };
      {
        name = "random-probe";
        summary = "best of 200n independent random bushy plans";
        caps = tablefree_caps;
        optimize = run_random_probe;
      };
      {
        name = "volcano";
        summary = "rule-based memo explored to closure";
        caps = { dp_caps with parallelizable = false };
        optimize = run_volcano;
      };
      {
        name = "dpccp";
        summary = "connectivity-pruned DP over csg-cmp pairs (no Cartesian products)";
        caps =
          {
            dp_caps with
            max_n = Some Dpccp.max_relations;
            table_bytes = Some (fun ~n -> Dpccp.estimate_bytes ~n);
            parallelizable = false;
            exact = false;
            cacheable = false;
            connected_only = true;
            multiway = true;
          };
        optimize = run_dpccp;
      };
      {
        name = "dpconv";
        summary = "subset-sum convolution minimizing the C_max bottleneck";
        caps =
          {
            dp_caps with
            max_n = Some Dpconv.max_relations;
            table_bytes = Some (fun ~n -> Dpconv.estimate_bytes ~n);
            parallelizable = false;
            exact = false;
            cacheable = false;
          };
        optimize = run_dpconv;
      };
      {
        name = "bruteforce";
        summary = "every bushy plan enumerated: the correctness oracle";
        caps = { dp_caps with max_n = Some B.Bruteforce.max_relations; parallelizable = false };
        optimize = run_bruteforce;
      };
    ]

let all () = !entries

let find name = List.find_opt (fun e -> e.name = name) !entries

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Registry: unknown optimizer %S (known: %s)" name
         (String.concat ", " (List.map (fun e -> e.name) !entries)))

let names () = List.map (fun e -> e.name) !entries

let optimize ?(optimizer = "exact") ctx p = (find_exn optimizer).optimize ctx p

(* ---- metadata-driven eligibility ---- *)

let eligible ?(connected = true) entry ~n ~is_tree =
  if (match entry.caps.max_n with Some limit -> n > limit | None -> false) then
    Error
      (Printf.sprintf "%d relations exceed the %d-relation cap" n
         (Option.get entry.caps.max_n))
  else if entry.caps.tree_only && not is_tree then Error "join graph is not a tree"
  else if entry.caps.connected_only && not connected then
    Error "join graph is disconnected (method excludes Cartesian products)"
  else Ok ()

(** One optimizer interface over every join-order algorithm in the
    repository.

    Each algorithm — the exact blitzsplit DP (sequential or
    rank-parallel), the Section 6.4 thresholded driver, the Section 7
    hybrid, and the [lib/baselines] family — registers under one
    [optimize : ctx -> problem -> outcome] signature together with
    capability metadata.  Callers (the degradation cascade, the CLI,
    the bench harness, {!Engine}) dispatch by name and read eligibility
    off the metadata instead of hand-wiring per-algorithm match arms
    and duplicating [Dp_table.max_relations] / table-size logic.

    Registration instruments each entry: every dispatch — by name or
    through a held {!entry} — bumps [blitz_registry_calls_total] (and
    [blitz_registry_errors_total] on raise) labelled with the optimizer
    name, and runs inside a [registry.optimize] trace span, so the
    cascade's and the engine's direct calls are metered too. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table
module Pool = Blitz_parallel.Pool
module Dpccp = Blitz_dpccp.Dpccp
module Dpconv = Blitz_dpccp.Dpconv

type problem = { catalog : Catalog.t; graph : Join_graph.t option }
(** A query: its relations and, optionally, its join predicates.  A
    [None] graph means pure Cartesian-product optimization (Section 3);
    optimizers that require predicates treat it as a predicate-free
    graph over the catalog. *)

val problem : ?graph:Join_graph.t -> Catalog.t -> problem
(** Smart constructor pairing a catalog with its (optional) join
    graph. *)

type ctx = {
  model : Cost_model.t;
  arena : Arena.t option;  (** Session workspace for DP-table reuse. *)
  pool : Pool.t option;  (** Already-spawned domain pool to run on. *)
  num_domains : int;  (** Rank-parallel width; 1 = sequential. *)
  interrupt : (unit -> bool) option;  (** Deadline/cancellation probe. *)
  threshold : float option;
      (** Initial plan-cost threshold for ["thresholded"]; [None] seeds
          it from the greedy bound (the cascade's policy). *)
  growth : float option;  (** Threshold growth factor between passes. *)
  max_passes : int option;
  seed : int;  (** Drives every stochastic optimizer. *)
  counters : Counters.t option;  (** Accumulates split-loop counts. *)
  multiway : bool;
      (** Request hybrid binary+n-ary planning: optimizers whose caps
          advertise [multiway] additionally consider AGM-costed
          [Plan.Multiway] candidates on cyclic cores; the rest ignore
          the flag.  Multiway planning is sequential — entries fall back
          from the pool to the sequential path when both are asked. *)
}
(** Everything an optimizer may draw on, problem-independent: one [ctx]
    can serve many problems (that is what {!Engine} does). *)

val ctx :
  ?arena:Arena.t ->
  ?pool:Pool.t ->
  ?num_domains:int ->
  ?interrupt:(unit -> bool) ->
  ?threshold:float ->
  ?growth:float ->
  ?max_passes:int ->
  ?seed:int ->
  ?counters:Counters.t ->
  ?multiway:bool ->
  Cost_model.t ->
  ctx
(** Smart constructor; [num_domains] defaults to 1, [seed] to 1.
    Raises [Invalid_argument] on a non-positive [num_domains]. *)

type outcome = {
  plan : Plan.t option;  (** [None] when the method found no plan. *)
  cost : float;  (** Under [ctx.model]; [infinity]/[nan] possible. *)
  passes : int;  (** Optimization passes run (thresholded driver). *)
  final_threshold : float;  (** [infinity] when unthresholded. *)
  table : Dp_table.t option;
      (** The filled DP table, for optimizers that build one.  When the
          ctx carried an arena this is a view of the arena's buffer —
          valid until the next acquire. *)
  counters : Counters.t option;  (** The counters the run accumulated into. *)
  note : string option;  (** Method-specific diagnostics, one line. *)
}

type caps = {
  max_n : int option;  (** Largest relation count the method accepts. *)
  tree_only : bool;  (** Requires an acyclic (tree) join graph. *)
  table_bytes : (n:int -> int) option;
      (** Estimated table footprint before allocation, for memory
          ceilings; [None] for table-free methods. *)
  parallelizable : bool;  (** Honors [ctx.pool]/[ctx.num_domains]. *)
  exact : bool;  (** Guaranteed optimal when it returns a plan. *)
  deadline_exempt : bool;
      (** Cheap enough to run even on an expired budget (greedy — the
          cascade's terminal guarantee). *)
  stats_free : bool;
      (** Reads no cardinalities or selectivities: the plan depends on
          the join graph's shape alone, so the method survives a
          corrupted or fabricated catalog ([simpli-squared] — the
          cascade's estimate-free bottom tier). *)
  connected_only : bool;
      (** Searches the product-free plan space only: on a disconnected
          join graph the method cannot produce a complete plan at all
          ([dpccp], [dpsize-no-products]), so dispatch is refused
          upfront by {!eligible}. *)
  cacheable : bool;
      (** Results may enter the cross-query plan cache.  Stricter than
          [exact]: a cached plan is replayed under the same fingerprint
          regardless of which optimizer later serves the query, so only
          methods whose plan is optimal over the {e full} plan space
          qualify — product-free or left-deep optima silently degrade
          later exact lookups. *)
  multiway : bool;
      (** Honors [ctx.multiway]: the method can emit [Plan.Multiway]
          nodes ([exact], [thresholded], [dpccp]).  Callers that cannot
          execute n-ary joins must not set [ctx.multiway] when
          dispatching to such an entry. *)
}

type entry = {
  name : string;
  summary : string;
  caps : caps;
  optimize : ctx -> problem -> outcome;
}
(** [optimize] may raise [Blitzsplit.Interrupted] (when [ctx.interrupt]
    fires) or [Invalid_argument] (caps violated); anything else is a
    bug. *)

val register : entry -> unit
(** Add an optimizer.  Raises [Invalid_argument] on a duplicate name.
    The built-in entries are registered at module initialization:
    [exact], [thresholded], [hybrid], [ikkbz], [greedy],
    [simpli-squared], [dpsize], [dpsize-no-products], [leftdeep],
    [leftdeep-deferred], [iterative-improvement], [simulated-annealing],
    [random-probe], [volcano], [dpccp], [dpconv], [bruteforce]. *)

val all : unit -> entry list
(** In registration order. *)

val names : unit -> string list
(** Registered optimizer names, in registration order — the list
    [find] accepts and the CLI's [blitz optimizers] dump prints. *)

val find : string -> entry option
(** Look an entry up by name; [None] for unregistered names. *)

val find_exn : string -> entry
(** Raises [Invalid_argument] with the list of known names. *)

val optimize : ?optimizer:string -> ctx -> problem -> outcome
(** [optimize ~optimizer ctx p] = [(find_exn optimizer).optimize ctx p];
    [optimizer] defaults to ["exact"]. *)

val eligible : ?connected:bool -> entry -> n:int -> is_tree:bool -> (unit, string) result
(** Quick metadata check: [Error reason] when the entry's caps rule the
    problem out ([max_n], [tree_only], and — when the caller knows the
    graph's connectivity — [connected_only]; [connected] defaults to
    [true], i.e. benefit of the doubt).  Memory ceilings are the
    budget-holder's side (see [Degrade.eligibility]). *)

(** A session-scoped optimizer front end.

    The paper's pitch is that blitzsplit's constants are tiny — but a
    fresh [O(2^n)] table allocation per query (plus counters, plus
    domain spawns) taxes exactly the small, fast queries the constants
    win on.  A session owns an {!Blitz_core.Arena} (high-water-mark
    DP-table buffer + reusable counters) and, for multi-domain
    sessions, one lazily spawned {!Blitz_parallel.Pool}, and runs any
    registered optimizer through them.  Results are bit-identical to
    fresh-allocation runs for every optimizer and domain count (tested
    property).

    A session may also carry a {!Blitz_cache.Plan_cache}: any optimizer
    whose registry entry promises exactness then consults it before
    running (skipping the whole DP on a hit, with the cached plan
    rebased to the caller's relation numbering), stores completed
    optima, and — for the ["thresholded"] driver — seeds its first pass
    from the cache's shape tier on an exact miss.  The cache is shared
    by whatever sessions were created with it (it is domain-safe);
    omitting it at {!create} is the per-session opt-out.  Each session
    owns one preallocated fingerprint workspace, so cache participation
    adds no per-query allocation on the hit path.  Caching is bypassed
    whenever the caller passes an explicit [threshold] (such outcomes
    are caller-dependent) and for inexact optimizers.

    When [Blitz_obs.Metrics] is enabled, sessions publish per-query
    latency and plan-cost histograms ([blitz_engine_optimize_seconds],
    [blitz_engine_plan_cost]), a query counter, gauges tracking the
    arena's resident bytes / acquires / grows, and a
    [blitz_cache_lookup_seconds] histogram over fingerprint+lookup;
    disabled, the instrumentation is a single atomic branch per query.

    Sessions are single-threaded: one optimize call at a time. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Pool = Blitz_parallel.Pool
module Plan_cache = Blitz_cache.Plan_cache

type t

val create :
  ?model:Cost_model.t -> ?num_domains:int -> ?seed:int -> ?cache:Plan_cache.t -> unit -> t
(** [model] defaults to [kdnl], [num_domains] to 1 (sequential), [seed]
    to 1.  Nothing is allocated up front: the first query sizes the
    arena, and the domain pool spawns on the first parallel run.
    [cache] plugs a (possibly shared) plan cache into the session; no
    cache means no lookups and no stores.  Raises [Invalid_argument]
    when [num_domains] is outside [1, 128]. *)

val close : t -> unit
(** Shut the pool down (if spawned) and drop the arena's buffers.
    Subsequent {!optimize} calls raise [Invalid_argument]. *)

val with_session :
  ?model:Cost_model.t -> ?num_domains:int -> ?seed:int -> ?cache:Plan_cache.t -> (t -> 'a) -> 'a
(** Bracketed {!create}/{!close}.  A supplied [cache] is left intact at
    close (it may be shared with other sessions). *)

val optimize :
  ?optimizer:string ->
  ?interrupt:(unit -> bool) ->
  ?threshold:float ->
  ?multiway:bool ->
  ?cache_tag:string ->
  t ->
  Registry.problem ->
  Registry.outcome
(** Run one query through the session.  [optimizer] names a registry
    entry (default ["exact"]); [threshold] seeds the thresholded
    driver.  [multiway] requests hybrid binary+n-ary planning from
    entries whose caps advertise it; in the plan cache such runs live
    under the decorated key [<optimizer>"+mw"], so the two plan spaces
    never serve each other's optima (and a hit carrying a
    [Plan.Multiway] node is additionally refused for multiway=false
    callers).  [cache_tag] partitions the plan cache the same way:
    lookups and stores run under [<optimizer>"@"<tag>] (plus ["+mw"]
    when both apply), so callers serving mutually-untrusting tenants
    from one shared cache can guarantee one tenant's plans are never
    replayed to another ([Blitz_serve] keys by tenant id).  The
    session's counters are reset first, so the outcome's counters are
    per-query; the outcome's [table] aliases the arena buffer and is
    only valid until the next call.  May raise
    [Blitzsplit.Interrupted] (via [interrupt]) and whatever the entry
    itself raises on caps violations. *)

val optimize_many :
  ?optimizer:string ->
  ?interrupt:(unit -> bool) ->
  ?multiway:bool ->
  ?cache_tag:string ->
  t ->
  Registry.problem Seq.t ->
  Registry.outcome list
(** Stream a batch of problems through the session under one interrupt
    — the serving shape for repeated-query traffic: one table buffer,
    one counter block, one pool for the whole batch.  Outcomes are
    detached (no live table views; counters copied) and returned in
    input order.  When [interrupt] fires mid-batch the completed prefix
    is returned rather than an exception — callers that need to know
    can compare lengths. *)

(** {1 Session internals (for drivers building their own ctx)} *)

val model : t -> Cost_model.t
val num_domains : t -> int
val arena : t -> Arena.t

val pool : t -> Pool.t option
(** Spawns the pool on first call for multi-domain sessions; [None]
    for single-domain ones. *)

val counters : t -> Counters.t
(** The arena's counter block (reset at each {!optimize}). *)

val cache : t -> Plan_cache.t option

val cache_find :
  ?model:Cost_model.t ->
  ?cache_tag:string ->
  t ->
  optimizer:string ->
  Registry.problem ->
  Plan_cache.hit option
(** Consult the session's cache directly (no optimizer run): fingerprint
    the problem into the session scratch and look it up under the given
    optimizer name.  [None] when the session has no cache or on a miss.
    [model] defaults to the session model; pass it when dispatching
    under a different cost model (the Guard driver's case).
    [cache_tag] decorates the key as in {!optimize}.  Exposed for
    budget-holding drivers that sequence registry entries themselves. *)

val cache_store :
  ?model:Cost_model.t ->
  ?cache_tag:string ->
  t ->
  optimizer:string ->
  Registry.problem ->
  Registry.outcome ->
  unit
(** Record a completed outcome for the problem (recomputing the
    fingerprint, so it need not be the last one looked up).  No-ops
    without a cache, on plan-less outcomes, and on non-finite costs.
    Callers must only store outcomes that are true optima for the named
    optimizer. *)

val ctx :
  ?interrupt:(unit -> bool) ->
  ?threshold:float ->
  ?growth:float ->
  ?max_passes:int ->
  ?counters:Counters.t ->
  ?multiway:bool ->
  t ->
  Registry.ctx
(** The registry ctx {!optimize} uses, exposed so budget-holding
    drivers (Guard/Degrade) can dispatch registry entries through the
    session themselves. *)

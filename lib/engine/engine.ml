module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Blitzsplit = Blitz_core.Blitzsplit
module Pool = Blitz_parallel.Pool
module Obs = Blitz_obs.Obs

let m_latency =
  Obs.Metrics.histogram ~help:"Engine.optimize wall-clock seconds per query"
    "blitz_engine_optimize_seconds"

let m_plan_cost =
  Obs.Metrics.histogram ~help:"Cost of the chosen plan under the session model"
    "blitz_engine_plan_cost"

let m_queries =
  Obs.Metrics.counter ~help:"Queries optimized through engine sessions"
    "blitz_engine_queries_total"

let g_arena_resident =
  Obs.Metrics.gauge ~help:"Resident DP-table bytes of the most recently used session arena"
    "blitz_arena_resident_bytes"

let g_arena_acquires =
  Obs.Metrics.gauge ~help:"Table acquisitions by the most recently used session arena"
    "blitz_arena_acquires"

let g_arena_grows =
  Obs.Metrics.gauge ~help:"Buffer growths (vs pooled reuses) of the most recently used arena"
    "blitz_arena_grows"

type t = {
  model : Cost_model.t;
  num_domains : int;
  seed : int;
  arena : Arena.t;
  mutable pool : Pool.t option;
  mutable closed : bool;
}

let create ?(model = Blitz_cost.Cost_model.kdnl) ?(num_domains = 1) ?(seed = 1) () =
  if num_domains < 1 || num_domains > 128 then
    invalid_arg (Printf.sprintf "Engine.create: num_domains %d outside [1, 128]" num_domains);
  { model; num_domains; seed; arena = Arena.create (); pool = None; closed = false }

let model t = t.model
let num_domains t = t.num_domains
let arena t = t.arena

(* The pool is spawned on first use, not at [create]: single-domain
   sessions (and multi-domain sessions that only ever run table-free
   optimizers) never pay the Domain.spawn cost. *)
let pool t =
  if t.num_domains <= 1 then None
  else
    match t.pool with
    | Some _ as p -> p
    | None ->
      let p = Pool.create ~num_domains:t.num_domains in
      t.pool <- Some p;
      Some p

let close t =
  (match t.pool with Some p -> Pool.shutdown p | None -> ());
  t.pool <- None;
  Arena.clear t.arena;
  t.closed <- true

let with_session ?model ?num_domains ?seed f =
  let t = create ?model ?num_domains ?seed () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let ctx ?interrupt ?threshold ?growth ?max_passes ?counters t =
  Registry.ctx ~arena:t.arena ?pool:(pool t) ~num_domains:t.num_domains ~seed:t.seed ?interrupt
    ?threshold ?growth ?max_passes ?counters t.model

let counters t = Arena.counters t.arena

(* Post-query bookkeeping; [Metrics.enabled] gates the gauge reads so a
   disabled process pays one branch, not four [Arena] calls. *)
let record_outcome t (o : Registry.outcome) =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_queries;
    if Float.is_finite o.Registry.cost then Obs.Metrics.observe m_plan_cost o.Registry.cost;
    Obs.Metrics.set g_arena_resident (float_of_int (Arena.resident_bytes t.arena));
    Obs.Metrics.set g_arena_acquires (float_of_int (Arena.acquires t.arena));
    Obs.Metrics.set g_arena_grows (float_of_int (Arena.grows t.arena))
  end

let optimize ?(optimizer = "exact") ?interrupt ?threshold t problem =
  if t.closed then invalid_arg "Engine.optimize: session is closed";
  let ctr = Arena.counters t.arena in
  Counters.reset ctr;
  let o =
    Obs.span "engine.optimize" ~attrs:[ ("optimizer", optimizer) ] (fun () ->
        Obs.Metrics.time m_latency (fun () ->
            Registry.optimize ~optimizer (ctx ?interrupt ?threshold ~counters:ctr t) problem))
  in
  record_outcome t o;
  o

let optimize_many ?(optimizer = "exact") ?interrupt t problems =
  if t.closed then invalid_arg "Engine.optimize_many: session is closed";
  (* One registry lookup and one ctx for the whole batch — per-query
     work is just a counter reset and the optimizer itself. *)
  let entry = Registry.find_exn optimizer in
  let ctr = Arena.counters t.arena in
  let c = ctx ?interrupt ~counters:ctr t in
  let completed = ref [] in
  Obs.span "engine.optimize_many" ~attrs:[ ("optimizer", optimizer) ] (fun () ->
      try
        Seq.iter
          (fun p ->
            Counters.reset ctr;
            let o = Obs.Metrics.time m_latency (fun () -> entry.Registry.optimize c p) in
            record_outcome t o;
            (* The table is a view of the arena's buffer, overwritten by the
               next query; the counters record is reused and reset.  Detach
               both so every element of the batch result stands on its own. *)
            completed :=
              {
                o with
                Registry.table = None;
                counters = Option.map Counters.copy o.Registry.counters;
              }
              :: !completed)
          problems
      with Blitzsplit.Interrupted -> ());
  List.rev !completed

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Blitzsplit = Blitz_core.Blitzsplit
module Pool = Blitz_parallel.Pool
module Obs = Blitz_obs.Obs
module Plan = Blitz_plan.Plan
module Plan_cache = Blitz_cache.Plan_cache
module Fingerprint = Blitz_cache.Fingerprint

let m_latency =
  Obs.Metrics.histogram ~help:"Engine.optimize wall-clock seconds per query"
    "blitz_engine_optimize_seconds"

let m_plan_cost =
  Obs.Metrics.histogram ~help:"Cost of the chosen plan under the session model"
    "blitz_engine_plan_cost"

let m_queries =
  Obs.Metrics.counter ~help:"Queries optimized through engine sessions"
    "blitz_engine_queries_total"

let g_arena_resident =
  Obs.Metrics.gauge ~help:"Resident DP-table bytes of the most recently used session arena"
    "blitz_arena_resident_bytes"

let g_arena_acquires =
  Obs.Metrics.gauge ~help:"Table acquisitions by the most recently used session arena"
    "blitz_arena_acquires"

let g_arena_grows =
  Obs.Metrics.gauge ~help:"Buffer growths (vs pooled reuses) of the most recently used arena"
    "blitz_arena_grows"

let m_cache_lookup =
  Obs.Metrics.histogram ~help:"Plan-cache fingerprint + lookup wall-clock seconds"
    "blitz_cache_lookup_seconds"

type t = {
  model : Cost_model.t;
  num_domains : int;
  seed : int;
  arena : Arena.t;
  cache : Plan_cache.t option;
  (* One fingerprint workspace per session: [optimize_many] batches
     canonicalize every query through it without allocating. *)
  scratch : Fingerprint.scratch;
  digest : int;  (* Fingerprint.model_digest of the session model *)
  mutable pool : Pool.t option;
  mutable closed : bool;
}

let create ?(model = Blitz_cost.Cost_model.kdnl) ?(num_domains = 1) ?(seed = 1) ?cache () =
  if num_domains < 1 || num_domains > 128 then
    invalid_arg (Printf.sprintf "Engine.create: num_domains %d outside [1, 128]" num_domains);
  {
    model;
    num_domains;
    seed;
    arena = Arena.create ();
    cache;
    scratch = Fingerprint.create_scratch ();
    digest = (match cache with Some _ -> Fingerprint.model_digest model | None -> 0);
    pool = None;
    closed = false;
  }

let model t = t.model
let num_domains t = t.num_domains
let arena t = t.arena
let cache t = t.cache

(* The pool is spawned on first use, not at [create]: single-domain
   sessions (and multi-domain sessions that only ever run table-free
   optimizers) never pay the Domain.spawn cost. *)
let pool t =
  if t.num_domains <= 1 then None
  else
    match t.pool with
    | Some _ as p -> p
    | None ->
      let p = Pool.create ~num_domains:t.num_domains in
      t.pool <- Some p;
      Some p

let close t =
  (match t.pool with Some p -> Pool.shutdown p | None -> ());
  t.pool <- None;
  Arena.clear t.arena;
  t.closed <- true

let with_session ?model ?num_domains ?seed ?cache f =
  let t = create ?model ?num_domains ?seed ?cache () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let ctx ?interrupt ?threshold ?growth ?max_passes ?counters ?multiway t =
  Registry.ctx ~arena:t.arena ?pool:(pool t) ~num_domains:t.num_domains ~seed:t.seed ?interrupt
    ?threshold ?growth ?max_passes ?counters ?multiway t.model

let counters t = Arena.counters t.arena

(* Post-query bookkeeping; [Metrics.enabled] gates the gauge reads so a
   disabled process pays one branch, not four [Arena] calls. *)
let record_outcome t (o : Registry.outcome) =
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_queries;
    if Float.is_finite o.Registry.cost then Obs.Metrics.observe m_plan_cost o.Registry.cost;
    Obs.Metrics.set g_arena_resident (float_of_int (Arena.resident_bytes t.arena));
    Obs.Metrics.set g_arena_acquires (float_of_int (Arena.acquires t.arena));
    Obs.Metrics.set g_arena_grows (float_of_int (Arena.grows t.arena))
  end

(* ---- plan-cache participation ----

   A session with a cache consults it for any optimizer whose registry
   entry promises exactness (a cached entry must mean the same thing no
   matter which query stored it), and only when the caller supplied no
   explicit threshold (an explicit threshold makes the outcome
   caller-dependent).  A hit skips the optimizer entirely; a miss for
   ["thresholded"] may still warm-start from the shape tier before
   running cold, and a completed cold optimum is stored. *)

let digest_for t m = if m == t.model then t.digest else Fingerprint.model_digest m

(* A tenant tag partitions the cache exactly the way "+mw" partitions
   the plan spaces: the tag is folded into the entry key, so two tenants
   sharing one cache (and one engine session pool) can never be served
   each other's plans.  "@" cannot appear in a registry name, so tagged
   and untagged keys cannot collide. *)
let tagged ?cache_tag optimizer =
  match cache_tag with None -> optimizer | Some tag -> optimizer ^ "@" ^ tag

let cache_find ?model ?cache_tag t ~optimizer (p : Registry.problem) =
  match t.cache with
  | None -> None
  | Some c ->
      let m = Option.value ~default:t.model model in
      Obs.Metrics.time m_cache_lookup (fun () ->
          Fingerprint.compute t.scratch ~model_digest:(digest_for t m) p.Registry.catalog
            p.Registry.graph;
          Plan_cache.find c t.scratch ~optimizer:(tagged ?cache_tag optimizer))

let cache_store ?model ?cache_tag t ~optimizer (p : Registry.problem) (o : Registry.outcome) =
  match (t.cache, o.Registry.plan) with
  | Some c, Some plan when Float.is_finite o.Registry.cost ->
      let m = Option.value ~default:t.model model in
      Fingerprint.compute t.scratch ~model_digest:(digest_for t m) p.Registry.catalog
        p.Registry.graph;
      Plan_cache.store c t.scratch ~optimizer:(tagged ?cache_tag optimizer) ~plan
        ~cost:o.Registry.cost ~passes:o.Registry.passes
        ~final_threshold:o.Registry.final_threshold
  | _ -> ()

let hit_outcome ctr (h : Plan_cache.hit) =
  {
    Registry.plan = Some h.Plan_cache.plan;
    cost = h.Plan_cache.cost;
    passes = h.Plan_cache.passes;
    final_threshold = h.Plan_cache.final_threshold;
    table = None;
    counters = Some ctr;  (* freshly reset: a hit runs zero splits *)
    note =
      Some (if h.Plan_cache.rebased then "plan cache: hit (rebased)" else "plan cache: hit");
  }

let append_note extra (o : Registry.outcome) =
  let note = match o.Registry.note with None -> extra | Some n -> n ^ "; " ^ extra in
  { o with Registry.note = Some note }

(* Run one problem through the entry, going through the cache when the
   session has one.  The scratch already holds this problem's canonical
   form on the miss path, so the store needs no recompute.  [cold_ctx],
   when given, is a prebuilt ctx to run cold (unthresholded) passes
   with, letting batches share one ctx across queries. *)
let run_entry t (entry : Registry.entry) ~optimizer ?interrupt ?threshold ?(multiway = false)
    ?cache_tag ?cold_ctx ~ctr problem =
  (* Multiway planning is real only for entries that advertise it; the
     flag reaches the cache key only then, so e.g. greedy lookups do not
     fragment across the two modes they cannot distinguish. *)
  let mw = multiway && entry.Registry.caps.Registry.multiway in
  let cold () =
    match cold_ctx with
    | Some c -> c
    | None -> ctx ?interrupt ?threshold ~multiway:mw ~counters:ctr t
  in
  let cacheable =
    t.cache <> None && entry.Registry.caps.Registry.cacheable && Option.is_none threshold
  in
  if not cacheable then entry.Registry.optimize (cold ()) problem
  else
    let c = Option.get t.cache in
    (* "+mw" keeps the two plan spaces apart in the cache: a multiway
       optimum must never be replayed to a caller that cannot execute
       n-ary joins, and a binary optimum stored by a multiway=false run
       is not the hybrid space's optimum. *)
    let cache_key =
      let base = tagged ?cache_tag optimizer in
      if mw then base ^ "+mw" else base
    in
    let hit =
      Obs.Metrics.time m_cache_lookup (fun () ->
          Fingerprint.compute t.scratch ~model_digest:t.digest problem.Registry.catalog
            problem.Registry.graph;
          Plan_cache.find c t.scratch ~optimizer:cache_key)
    in
    match hit with
    | Some h when mw || not (Plan.has_multiway h.Plan_cache.plan) -> hit_outcome ctr h
    | Some _ (* defense in depth: never serve an n-ary plan without mw *) | None ->
        (* Warm-start ladder for the thresholded driver.  Best seed: a
           banded-ensemble plan for this shape and selectivity regime,
           re-costed under the {e current} catalog — a genuine upper
           bound, so a first-pass threshold a whisker above it cannot
           fail for numeric reasons, and the rescue pass still
           guarantees the true optimum if the seed misleads.  Fallback:
           the shape tier's best-known-cost threshold.  Either way the
           cold result is what gets stored, so warmth never changes
           what the cache learns. *)
        let banded_bound () =
          match Plan_cache.shape_seed c t.scratch with
          | None -> None
          | Some (plan, _stored_cost) ->
              let n = Catalog.n problem.Registry.catalog in
              let structurally_ok =
                Plan.leaf_count plan = n
                && (match Plan.validate ~n plan with Ok () -> true | Error _ -> false)
              in
              if not structurally_ok then None
              else
                let g =
                  match problem.Registry.graph with
                  | Some g -> g
                  | None -> Join_graph.no_predicates ~n
                in
                let ub = Plan.cost t.model problem.Registry.catalog g plan in
                if Float.is_finite ub && ub > 0.0 then Some (ub *. (1.0 +. 1e-9)) else None
        in
        let warm =
          if String.equal optimizer "thresholded" then
            match banded_bound () with
            | Some w -> Some (w, "plan cache: banded warm-start")
            | None -> (
                match Plan_cache.shape_threshold c t.scratch with
                | Some w -> Some (w, "plan cache: warm-start")
                | None -> None)
          else None
        in
        let o =
          match warm with
          | None -> entry.Registry.optimize (cold ()) problem
          | Some (w, _) ->
              entry.Registry.optimize
                (ctx ?interrupt ~threshold:w ~multiway:mw ~counters:ctr t)
                problem
        in
        (match o.Registry.plan with
        | Some plan when Float.is_finite o.Registry.cost ->
            Plan_cache.store c t.scratch ~optimizer:cache_key ~plan ~cost:o.Registry.cost
              ~passes:o.Registry.passes ~final_threshold:o.Registry.final_threshold
        | _ -> ());
        (match warm with Some (_, note) -> append_note note o | None -> o)

let optimize ?(optimizer = "exact") ?interrupt ?threshold ?multiway ?cache_tag t problem =
  if t.closed then invalid_arg "Engine.optimize: session is closed";
  let entry = Registry.find_exn optimizer in
  let ctr = Arena.counters t.arena in
  Counters.reset ctr;
  let o =
    Obs.span "engine.optimize" ~attrs:[ ("optimizer", optimizer) ] (fun () ->
        Obs.Metrics.time m_latency (fun () ->
            run_entry t entry ~optimizer ?interrupt ?threshold ?multiway ?cache_tag ~ctr problem))
  in
  record_outcome t o;
  o

let optimize_many ?(optimizer = "exact") ?interrupt ?multiway ?cache_tag t problems =
  if t.closed then invalid_arg "Engine.optimize_many: session is closed";
  (* One registry lookup for the whole batch — per-query work is a
     counter reset, a fingerprint into the session scratch (cache
     sessions), and the optimizer itself. *)
  let entry = Registry.find_exn optimizer in
  let ctr = Arena.counters t.arena in
  let cold_ctx = ctx ?interrupt ?multiway ~counters:ctr t in
  let completed = ref [] in
  Obs.span "engine.optimize_many" ~attrs:[ ("optimizer", optimizer) ] (fun () ->
      try
        Seq.iter
          (fun p ->
            Counters.reset ctr;
            let o =
              Obs.Metrics.time m_latency (fun () ->
                  run_entry t entry ~optimizer ?interrupt ?multiway ?cache_tag ~cold_ctx ~ctr p)
            in
            record_outcome t o;
            (* The table is a view of the arena's buffer, overwritten by the
               next query; the counters record is reused and reset.  Detach
               both so every element of the batch result stands on its own. *)
            completed :=
              {
                o with
                Registry.table = None;
                counters = Option.map Counters.copy o.Registry.counters;
              }
              :: !completed)
          problems
      with Blitzsplit.Interrupted -> ());
  List.rev !completed

(** Wall-clock timing of optimizer runs.

    The paper times each configuration by repeating the optimization until
    at least a fixed amount of wall-clock time has elapsed and dividing
    (footnote 4: "an average over k executions ... where k is such that
    kt >= 30 seconds").  {!time_adaptive} reproduces that protocol with a
    configurable budget so that the full figure sweeps stay tractable. *)

val now : unit -> float
(** Process CPU seconds ([Sys.time]).  For a single-threaded, CPU-bound
    optimizer this matches the paper's lightly-loaded-machine wall-clock
    measurements while being immune to scheduler noise. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] once, returning its result and elapsed seconds. *)

val time_adaptive : ?min_total:float -> ?min_runs:int -> (unit -> unit) -> float
(** [time_adaptive ?min_total ?min_runs f] repeatedly runs [f] until at
    least [min_total] seconds (default [0.2]) and [min_runs] runs
    (default [3]) have accumulated, and returns the mean seconds per
    run.  The repetition count grows geometrically, as in the paper's
    measurement protocol. *)

(** Least-squares fitting of linear models.

    Section 4.3 of the paper fits the measured optimization times to the
    three-term model of Formula (3),

    {v time(n) = 3^n T_loop  +  (ln 2 / 2) n 2^n T_cond  +  2^n T_subset v}

    which is linear in the unknown constants [T_loop], [T_cond] and
    [T_subset].  This module solves such fits by normal equations with
    Gaussian elimination; it is small but general enough for any model
    that is a linear combination of known basis functions. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves the square linear system [a x = b] by Gaussian
    elimination with partial pivoting.  Raises [Failure] if the matrix is
    (numerically) singular.  [a] is not modified. *)

val fit :
  ?weights:float array -> basis:(float -> float) array -> xs:float array -> ys:float array -> unit -> float array
(** [fit ~basis ~xs ~ys ()] returns coefficients [c] minimizing
    [sum_i w_i (ys.(i) - sum_j c.(j) * basis.(j) xs.(i))^2] with unit
    weights by default.  Raises [Invalid_argument] when there are fewer
    points than basis functions or the weights length mismatches. *)

val fit_formula3 : ns:int array -> times:float array -> float * float * float
(** [fit_formula3 ~ns ~times] fits the paper's Formula (3) to measured
    optimization times (seconds) at relation counts [ns], returning
    [(t_loop, t_cond, t_subset)] in seconds.  The fit minimizes
    {e relative} residuals (weights [1/time^2]), matching the paper's
    log-scale plot where the fit "tracks closely" across five orders of
    magnitude.  Negative fitted constants are clamped to zero (they can
    arise when a term is statistically indistinguishable from noise on
    fast hosts). *)

val eval_formula3 : t_loop:float -> t_cond:float -> t_subset:float -> int -> float
(** Evaluate Formula (3) at a given [n]. *)

val r_squared : predicted:float array -> observed:float array -> float
(** Coefficient of determination of a fit. *)

let format ~scope fmt = Format.kasprintf (fun msg -> scope ^ ": " ^ msg) fmt

let get = function Ok v -> v | Error msg -> invalid_arg msg

let get_with ~to_message = function Ok v -> v | Error e -> invalid_arg (to_message e)

(** Summary statistics over float samples.

    The paper's benchmarking methodology (Section 6 and the appendix) is
    built around the {e geometric} mean of base-relation cardinalities and
    around repeated timing runs; this module supplies both kinds of
    aggregation. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on empty input. *)

val geometric_mean : float array -> float
(** Geometric mean of positive samples, computed in log space to avoid
    overflow.  Raises [Invalid_argument] on empty input or non-positive
    samples. *)

val variance : float array -> float
(** Population variance.  Raises [Invalid_argument] on empty input. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** Smallest and largest sample.  Raises [Invalid_argument] on empty
    input. *)

val median : float array -> float
(** Median (averaging the two central elements for even sizes); the input
    array is not modified. *)

val percentile : float array -> float -> float
(** [percentile samples p] for [p] in [\[0, 100\]], by linear
    interpolation between order statistics. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation of two paired samples (average ranks for
    ties).  Used by the cost-model-validation experiment to compare model
    estimates against measured operator work.  Raises [Invalid_argument]
    on length mismatch or fewer than two points. *)

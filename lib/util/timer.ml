let now () = Sys.time ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)

let time_adaptive ?(min_total = 0.2) ?(min_runs = 3) f =
  let total = ref 0.0 and runs = ref 0 and batch = ref 1 in
  while !total < min_total || !runs < min_runs do
    let start = now () in
    for _ = 1 to !batch do
      f ()
    done;
    total := !total +. (now () -. start);
    runs := !runs + !batch;
    batch := !batch * 2
  done;
  !total /. float_of_int !runs

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity literals; both serialize as null rather than
   producing output no parser accepts. *)
let float_repr x =
  if Float.is_nan x || not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c = Buffer.add_char buf c; if indent then Buffer.add_char buf '\n' in
  let sep_close c =
    if indent then (Buffer.add_char buf '\n'; pad level);
    Buffer.add_char buf c
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    sep_open '[';
    List.iteri
      (fun i item ->
        if i > 0 then (Buffer.add_char buf ','; if indent then Buffer.add_char buf '\n');
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    sep_close ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    sep_open '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then (Buffer.add_char buf ','; if indent then Buffer.add_char buf '\n');
        pad (level + 1);
        escape buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit buf ~indent ~level:(level + 1) item)
      fields;
    sep_close '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

(* ---- parsing ----

   A hand-rolled recursive-descent parser over the same RFC 8259 subset
   the serializer emits (the serve wire protocol is the consumer).
   Numbers with a '.', 'e' or 'E' become [Float]; plain integer tokens
   become [Int] when they fit in an OCaml int and [Float] otherwise.
   \uXXXX escapes are decoded to UTF-8, surrogate pairs included. *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st "expected %C, found %C" c c'
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let len = String.length word in
  if st.pos + len <= String.length st.src && String.sub st.src st.pos len = word then begin
    st.pos <- st.pos + len;
    value
  end
  else fail st "invalid literal"

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = st.src.[st.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "invalid hex digit %C in \\u escape" c
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let code = hex4 st in
          (* A high surrogate must pair with a following \uXXXX low
             surrogate; anything unpaired decodes as U+FFFD. *)
          if code >= 0xD800 && code <= 0xDBFF then begin
            if
              st.pos + 2 <= String.length st.src
              && st.src.[st.pos] = '\\'
              && st.src.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let low = hex4 st in
              if low >= 0xDC00 && low <= 0xDFFF then
                add_utf8 buf (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
              else add_utf8 buf 0xFFFD
            end
            else add_utf8 buf 0xFFFD
          end
          else if code >= 0xDC00 && code <= 0xDFFF then add_utf8 buf 0xFFFD
          else add_utf8 buf code
        | c -> fail st "invalid escape \\%C" c));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let seen = ref false in
    let rec go () =
      match peek st with
      | Some ('0' .. '9') ->
        seen := true;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if not !seen then fail st "malformed number"
  in
  digits ();
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    digits ()
  | _ -> ());
  let tok = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string tok)
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> Float (float_of_string tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | _ -> fail st "expected ',' or '}' in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | _ -> fail st "expected ',' or ']' in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %C" c

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "Json.of_string: trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error ("Json.of_string: " ^ msg)

(* ---- accessors (for protocol decoders) ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function Int i -> Some (float_of_int i) | Float x -> Some x | _ -> None

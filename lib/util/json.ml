type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/infinity literals; both serialize as null rather than
   producing output no parser accepts. *)
let float_repr x =
  if Float.is_nan x || not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c = Buffer.add_char buf c; if indent then Buffer.add_char buf '\n' in
  let sep_close c =
    if indent then (Buffer.add_char buf '\n'; pad level);
    Buffer.add_char buf c
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    sep_open '[';
    List.iteri
      (fun i item ->
        if i > 0 then (Buffer.add_char buf ','; if indent then Buffer.add_char buf '\n');
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    sep_close ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    sep_open '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then (Buffer.add_char buf ','; if indent then Buffer.add_char buf '\n');
        pad (level + 1);
        escape buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit buf ~indent ~level:(level + 1) item)
      fields;
    sep_close '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

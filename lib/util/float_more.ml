let is_finite x = Float.is_finite x

let approx_equal ?(rel = 1e-9) ?(abs = 1e-12) x y =
  if x = y then true (* covers equal infinities and exact matches *)
  else if Float.is_nan x || Float.is_nan y then false
  else
    let diff = Float.abs (x -. y) in
    diff <= abs || diff <= rel *. Float.max (Float.abs x) (Float.abs y)

(* Map a float to a point on the integer number line where consecutive
   representable floats are consecutive integers ("ordered" IEEE-754
   bits): negative floats have their payload bits flipped so the mapping
   is monotone across zero.  The distance between two mapped values is
   then the count of representable floats strictly between them plus
   one — the units-in-the-last-place separation. *)
let ordered_bits x =
  let bits = Int64.bits_of_float x in
  if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits

let ulps_apart x y =
  if Float.is_nan x || Float.is_nan y then None
  else
    let d = Int64.sub (ordered_bits x) (ordered_bits y) in
    let d = Int64.abs d in
    if Int64.compare d 0L < 0 then None (* Int64.abs min_int *)
    else Some d

let within_ulps ?(ulps = 8) x y =
  match ulps_apart x y with
  | None -> false
  | Some d -> Int64.compare d (Int64.of_int ulps) <= 0

let log2 x = log x /. log 2.0

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let pow_int x k =
  if k < 0 then invalid_arg "Float_more.pow_int: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else if k land 1 = 1 then go (acc *. base) (base *. base) (k lsr 1)
    else go acc (base *. base) (k lsr 1)
  in
  go 1.0 x k

let pp_engineering ppf x =
  if Float.is_nan x then Format.pp_print_string ppf "nan"
  else if x = Float.infinity then Format.pp_print_string ppf "inf"
  else if x = Float.neg_infinity then Format.pp_print_string ppf "-inf"
  else
    let ax = Float.abs x in
    if ax >= 1e7 || (ax > 0.0 && ax < 1e-4) then Format.fprintf ppf "%.4g" x
    else if Float.is_integer x then Format.fprintf ppf "%.0f" x
    else Format.fprintf ppf "%.4g" x

let to_compact_string x = Format.asprintf "%a" pp_engineering x

(** Plain-text table rendering for benchmark reports.

    The paper presents its evaluation as tables and surface plots; our
    benchmark harness prints the same grids as aligned ASCII tables, which
    is the faithful reproducible artifact (see DESIGN.md, substitutions). *)

type align = Left | Right

val render : ?aligns:align array -> header:string array -> string array array -> string
(** [render ?aligns ~header rows] lays the table out with column widths
    sized to content, a separator rule under the header, and two spaces
    between columns.  [aligns] defaults to left for the first column and
    right for the rest (the common numeric layout).  Raises
    [Invalid_argument] when a row's width differs from the header's. *)

val print : ?aligns:align array -> header:string array -> string array array -> unit
(** [print] renders to [stdout], followed by a newline. *)

type align = Left | Right

let default_aligns n = Array.init n (fun i -> if i = 0 then Left else Right)

let render ?aligns ~header rows =
  let cols = Array.length header in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then
        invalid_arg (Printf.sprintf "Ascii_table.render: row %d has %d cells, expected %d" i (Array.length row) cols))
    rows;
  let aligns = match aligns with Some a -> a | None -> default_aligns cols in
  if Array.length aligns <> cols then invalid_arg "Ascii_table.render: aligns length mismatch";
  let widths = Array.map String.length header in
  Array.iter
    (fun row -> Array.iteri (fun c cell -> widths.(c) <- max widths.(c) (String.length cell)) row)
    rows;
  let buf = Buffer.create 1024 in
  let pad c cell =
    let gap = widths.(c) - String.length cell in
    match aligns.(c) with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell
  in
  let emit_row row =
    Array.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad c cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iteri
    (fun c _ ->
      if c > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make widths.(c) '-'))
    header;
  Buffer.add_char buf '\n';
  Array.iter emit_row rows;
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)

(** Deterministic pseudo-random number generation.

    All stochastic components of this repository (data generation, randomized
    baseline optimizers, property tests that need auxiliary randomness) draw
    from this splittable SplitMix64 generator so that every experiment is
    reproducible from an explicit integer seed.  We deliberately avoid
    [Stdlib.Random] for experiment code: its global state makes runs
    order-dependent. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Useful for giving each parallel task its own stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val log_uniform : t -> lo:float -> hi:float -> float
(** [log_uniform t ~lo ~hi] samples log-uniformly from [\[lo, hi)];
    both bounds must be positive.  Used for cardinalities, which the paper
    varies on a logarithmic axis. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller).  Used by the robustness
    harness for log-normal cardinality noise. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty arrays. *)

(** Minimal JSON construction and serialization (no parsing, no deps).

    Enough for machine-readable benchmark output ([BENCH_*.json] files)
    without pulling a JSON dependency into the repository.  Strings are
    escaped per RFC 8259; non-finite floats serialize as [null] (JSON
    has no NaN/infinity); integral floats render with a trailing [.0]
    so readers keep the number a float. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [~indent:true] pretty-prints with two-space indentation
    (stable output, suitable for committed files and diffs). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (the serve wire protocol's decoder).  The whole
    input must be consumed — trailing non-whitespace is an error.
    Integer tokens become [Int] when they fit in an OCaml int ([Float]
    otherwise); tokens with a fraction or exponent become [Float];
    [\uXXXX] escapes decode to UTF-8 with surrogate pairs honored and
    unpaired surrogates replaced by U+FFFD.  Errors carry the byte
    offset of the defect. *)

val member : string -> t -> t option
(** [member key v] is the field named [key] when [v] is an [Obj] with
    one; [None] otherwise (including on non-objects). *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] and [Float] both read as float — JSON does
    not distinguish, so decoders should not either.  [None] for
    non-numbers. *)

(** Minimal JSON construction and serialization (no parsing, no deps).

    Enough for machine-readable benchmark output ([BENCH_*.json] files)
    without pulling a JSON dependency into the repository.  Strings are
    escaped per RFC 8259; non-finite floats serialize as [null] (JSON
    has no NaN/infinity); integral floats render with a trailing [.0]
    so readers keep the number a float. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize; [~indent:true] pretty-prints with two-space indentation
    (stable output, suitable for committed files and diffs). *)

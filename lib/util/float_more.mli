(** Small floating-point helpers shared across the repository. *)

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_equal ?rel ?abs x y] holds when [x] and [y] agree to within
    relative tolerance [rel] (default [1e-9]) or absolute tolerance [abs]
    (default [1e-12]).  Two infinities of the same sign compare equal. *)

val is_finite : float -> bool
(** True for ordinary floats; false for infinities and NaN. *)

val ulps_apart : float -> float -> int64 option
(** Distance between two floats in units in the last place: the number
    of representable doubles you must step through to get from one to
    the other (0 when bitwise equal; [+0.] and [-0.] are 1 apart).
    Monotone across zero and signs; [None] when either argument is NaN
    or the distance overflows.  Infinities are ordinary points on the
    scale, so [infinity] vs [max_float] is 1. *)

val within_ulps : ?ulps:int -> float -> float -> bool
(** [within_ulps ~ulps x y] (default 8): the separation test backing the
    dpccp-vs-blitzsplit bit-identity gate.  False when either is NaN. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] forces [x] into [\[lo, hi\]]. *)

val pow_int : float -> int -> float
(** [pow_int x k] is [x] raised to the non-negative integer power [k] by
    repeated squaring (exact for small integral inputs, unlike [( ** )]). *)

val pp_engineering : Format.formatter -> float -> unit
(** Prints a float compactly: integers without a fraction part, large or
    tiny magnitudes in scientific notation ([2.4e+07]), and everything
    else with up to four significant decimals.  Used by table dumps. *)

val to_compact_string : float -> string
(** [to_compact_string x] renders via {!pp_engineering}. *)

let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty input" name)

let mean a =
  check_nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let geometric_mean a =
  check_nonempty "geometric_mean" a;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
        acc +. log x)
      0.0 a
  in
  exp (sum_logs /. float_of_int (Array.length a))

let variance a =
  check_nonempty "variance" a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
  /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let min_max a =
  check_nonempty "min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0))
    a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  check_nonempty "percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then b.(lo)
  else
    let frac = rank -. float_of_int lo in
    (b.(lo) *. (1.0 -. frac)) +. (b.(hi) *. frac)

let median a = percentile a 50.0

let ranks a =
  let n = Array.length a in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(i) a.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    (* Average the ranks of a run of ties. *)
    let j = ref !i in
    while !j + 1 < n && a.(order.(!j + 1)) = a.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let pearson x y =
  let mx = mean x and my = mean y in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  Array.iteri
    (fun i xi ->
      let a = xi -. mx and b = y.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b))
    x;
  if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)

let spearman x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Stats.spearman: length mismatch";
  if n < 2 then invalid_arg "Stats.spearman: need at least two points";
  pearson (ranks x) (ranks y)

let solve a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Linfit.solve: dimension mismatch";
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then failwith "Linfit.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let t = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      for k = col to n - 1 do
        m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
      done;
      x.(row) <- x.(row) -. (factor *. x.(col))
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let fit ?weights ~basis ~xs ~ys () =
  let k = Array.length basis and n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Linfit.fit: xs/ys length mismatch";
  if n < k then invalid_arg "Linfit.fit: fewer points than basis functions";
  (match weights with
  | Some w when Array.length w <> n -> invalid_arg "Linfit.fit: weights length mismatch"
  | Some _ | None -> ());
  let weight i = match weights with Some w -> w.(i) | None -> 1.0 in
  (* Weighted normal equations: (B^T W B) c = B^T W y. *)
  let bt_b = Array.make_matrix k k 0.0 in
  let bt_y = Array.make k 0.0 in
  for i = 0 to n - 1 do
    let w = weight i in
    let row = Array.map (fun f -> f xs.(i)) basis in
    for p = 0 to k - 1 do
      bt_y.(p) <- bt_y.(p) +. (w *. row.(p) *. ys.(i));
      for q = 0 to k - 1 do
        bt_b.(p).(q) <- bt_b.(p).(q) +. (w *. row.(p) *. row.(q))
      done
    done
  done;
  solve bt_b bt_y

let half_ln2 = 0.5 *. log 2.0

let formula3_terms n =
  let nf = float_of_int n in
  let pow3 = Float_more.pow_int 3.0 n in
  let pow2 = Float_more.pow_int 2.0 n in
  (pow3, half_ln2 *. nf *. pow2, pow2)

let fit_formula3 ~ns ~times =
  let xs = Array.map float_of_int ns in
  let basis =
    [| (fun x -> let a, _, _ = formula3_terms (int_of_float x) in a);
       (fun x -> let _, b, _ = formula3_terms (int_of_float x) in b);
       (fun x -> let _, _, c = formula3_terms (int_of_float x) in c) |]
  in
  let weights =
    Array.map (fun t -> if t > 0.0 then 1.0 /. (t *. t) else 1.0) times
  in
  let c = fit ~weights ~basis ~xs ~ys:times () in
  let clamp v = if v < 0.0 then 0.0 else v in
  (clamp c.(0), clamp c.(1), clamp c.(2))

let eval_formula3 ~t_loop ~t_cond ~t_subset n =
  let a, b, c = formula3_terms n in
  (a *. t_loop) +. (b *. t_cond) +. (c *. t_subset)

let r_squared ~predicted ~observed =
  let n = Array.length observed in
  if Array.length predicted <> n || n = 0 then invalid_arg "Linfit.r_squared: bad input";
  let mean = Stats.mean observed in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    ss_tot := !ss_tot +. ((observed.(i) -. mean) ** 2.0);
    ss_res := !ss_res +. ((observed.(i) -. predicted.(i)) ** 2.0)
  done;
  if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot)

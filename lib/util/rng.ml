type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 *. bound (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let log_uniform t ~lo ~hi =
  if lo <= 0.0 || hi <= 0.0 then invalid_arg "Rng.log_uniform: bounds must be positive";
  if lo >= hi then invalid_arg "Rng.log_uniform: lo must be < hi";
  exp (log lo +. float t (log hi -. log lo))

let gaussian t =
  (* Box–Muller, discarding the second variate: one extra uniform per
     draw is cheaper than threading cached state through [copy]. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

(** Shared error formatting for typed construction errors.

    The input-facing modules (catalog, join graph, SQL front end, guard)
    all render errors as ["<scope>: <detail>"] so that a message carries
    its origin whether it travels as a typed [result] or is raised by a
    legacy [_exn]-style constructor.  Centralizing the convention keeps
    the two paths word-for-word identical, which the tests rely on. *)

val format : scope:string -> ('a, Format.formatter, unit, string) format4 -> 'a
(** [format ~scope fmt ...] renders ["<scope>: <formatted detail>"]. *)

val get : ('a, string) result -> 'a
(** [get r] unwraps [Ok], raising [Invalid_argument] with the carried
    message on [Error] — the bridge from the typed constructors to the
    historical raising entry points. *)

val get_with : to_message:('e -> string) -> ('a, 'e) result -> 'a
(** Like {!get} for structured error types: the error is rendered with
    [to_message] before raising. *)

module Obs = Blitz_obs.Obs

let m_probes =
  Obs.Metrics.counter ~help:"Deadline probes polled by optimizers under a budget"
    "blitz_budget_probes_total"

let m_expirations =
  Obs.Metrics.counter ~help:"Budget deadlines that expired (latched once per arming)"
    "blitz_budget_expirations_total"

type t = {
  deadline_ms : float option;
  max_table_bytes : int option;
  mutable armed_at : float;  (* Unix.gettimeofday at the last [start]. *)
  tripped : bool Atomic.t;
      (* Latched true the first time any probe observes the deadline
         passed.  Domain-safe: rank-parallel optimization polls the
         probe from every worker domain; once one domain trips the
         latch, every other domain sees [expired] without touching the
         (unsynchronized) [armed_at] field or the clock.  The flag is
         set exactly once per arming — [start] is the only reset. *)
}

let now_ms () = Unix.gettimeofday () *. 1000.0

let create ?deadline_ms ?max_table_bytes () =
  (match deadline_ms with
  | Some d when not (Float.is_finite d) || d <= 0.0 ->
    invalid_arg (Blitz_util.Err.format ~scope:"Budget.create" "deadline %g ms is not positive" d)
  | _ -> ());
  (match max_table_bytes with
  | Some b when b <= 0 ->
    invalid_arg (Blitz_util.Err.format ~scope:"Budget.create" "memory ceiling %d B is not positive" b)
  | _ -> ());
  { deadline_ms; max_table_bytes; armed_at = now_ms (); tripped = Atomic.make false }

let unlimited () = create ()

let start t =
  t.armed_at <- now_ms ();
  Atomic.set t.tripped false

let deadline_ms t = t.deadline_ms

let max_table_bytes t = t.max_table_bytes

let elapsed_ms t = now_ms () -. t.armed_at

let remaining_ms t =
  match t.deadline_ms with None -> Float.infinity | Some d -> d -. elapsed_ms t

let expired t =
  match t.deadline_ms with
  | None -> false
  | Some _ ->
    Atomic.get t.tripped
    ||
    if remaining_ms t <= 0.0 then begin
      (* CAS so the expiry is counted (and traced) exactly once per
         arming even when several worker domains observe it together. *)
      if Atomic.compare_and_set t.tripped false true then begin
        Obs.Metrics.incr m_expirations;
        Obs.instant "budget.expired"
      end;
      true
    end
    else false

let interrupt t () =
  Obs.Metrics.incr m_probes;
  expired t

(* The DP table is a struct of flat arrays of 2^n 8-byte slots — card,
   cost, best_lhs and aux always, plus pi_fan on the join path (the
   Cartesian-product optimizer leaves the fan column unallocated, see
   Dp_table.create) — the same shape as the paper's 16-byte rows,
   widened by the extra columns.  The estimate is computed BEFORE
   allocation so an oversized query is rejected instead of taking down
   the process. *)
let table_bytes ?with_pi_fan ~n () =
  if n < 1 then invalid_arg "Budget.table_bytes: n must be positive"
  else Blitz_core.Dp_table.estimate_bytes ?with_pi_fan ~n ()

let admits_bytes t bytes =
  match t.max_table_bytes with None -> true | Some limit -> bytes <= limit

let admits_table ?with_pi_fan t ~n = admits_bytes t (table_bytes ?with_pi_fan ~n ())

(** Resource budgets for one optimization: a wall-clock deadline and a
    memory ceiling on the [O(2^n)] DP table.

    The deadline is enforced through a cheap cancellation probe
    ({!interrupt}) that the core optimizers poll between subsets; the
    memory ceiling is enforced {e before} allocation by estimating the
    table footprint ({!table_bytes}), so an oversized query degrades to
    a table-free algorithm instead of exhausting the heap.  A budget is
    armed (its clock started) at {!create} and re-armed with {!start};
    the guard driver re-arms once on entry so every tier draws from the
    same allowance.

    Probes and expirations are published to [Blitz_obs.Metrics]
    ([blitz_budget_probes_total], [blitz_budget_expirations_total]);
    the expiry latch flips via one compare-and-set, so an expiration is
    counted exactly once per arming no matter how many domains race the
    deadline. *)

type t

val create : ?deadline_ms:float -> ?max_table_bytes:int -> unit -> t
(** Omitted components are unlimited.  Raises [Invalid_argument] on a
    non-positive deadline or ceiling. *)

val unlimited : unit -> t

val start : t -> unit
(** (Re-)arm the deadline clock at the current time and clear the
    expiry latch. *)

val deadline_ms : t -> float option
val max_table_bytes : t -> int option

val elapsed_ms : t -> float
(** Wall-clock milliseconds since the budget was last armed. *)

val remaining_ms : t -> float
(** [infinity] when no deadline was set. *)

val expired : t -> bool
(** Whether the deadline has passed.  Expiry latches through an
    [Atomic.t] flag set exactly once per arming: the first probe (from
    any domain) to observe the deadline passed trips it, and every
    later probe — on any domain — returns [true] from the flag alone.
    This makes the probe safe to poll concurrently from a rank-parallel
    optimization's worker domains, with one clock read per poll until
    the trip and none after. *)

val interrupt : t -> unit -> bool
(** [interrupt t] is the cancellation probe to hand to
    [Blitzsplit.optimize_join ~interrupt] and friends — including the
    rank-parallel [Parallel_blitzsplit], which polls it from every
    worker domain (see {!expired} for why that is safe): a closure
    returning [true] once the deadline has passed.  One
    [Unix.gettimeofday] call per poll; the optimizers already rate-limit
    polling (every 64 subsets), so no further caching is needed. *)

val table_bytes : ?with_pi_fan:bool -> n:int -> unit -> int
(** Estimated footprint of the blitzsplit DP table for [n] relations:
    [56 * 2^n] bytes (five 8-byte columns per subset — the paper's
    16-byte rows plus the fan and cost-model-memo columns — plus the
    16-byte interleaved [(cost, card)] pair column the split kernels
    read), or [48 * 2^n] with [~with_pi_fan:false] (the
    Cartesian-product path, whose table never allocates the fan
    column).  Saturates at [max_int] for [n >= 50]. *)

val admits_table : ?with_pi_fan:bool -> t -> n:int -> bool
(** Whether the table for [n] relations fits under the ceiling (always
    true when no ceiling was set). *)

val admits_bytes : t -> int -> bool
(** Whether a footprint of the given size fits under the ceiling.  For
    session (arena) use: charge [Arena.bytes_after] — the resident
    high-water mark the arena would hold after the query — rather than
    the per-call table size, so a session that already owns a large
    enough buffer is not double-charged for a small query, and a query
    that would grow the buffer is charged for the growth. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Engine = Blitz_engine.Engine

type outcome = {
  plan : Plan.t;
  cost : float;
  provenance : Degrade.provenance;
  repairs : Sanitize.issue list;
  catalog : Catalog.t;
  graph : Join_graph.t;
  from_cache : bool;
}

type error =
  | Invalid_input of Sanitize.issue list
  | No_tier_produced of Degrade.attempt list
  | Internal of string

let error_message = function
  | Invalid_input issues ->
    (* The issues carry their own "input:" scope. *)
    Blitz_util.Err.format ~scope:"Guard.optimize" "%s"
      (String.concat "; " (List.map Sanitize.issue_message issues))
  | No_tier_produced attempts ->
    Blitz_util.Err.format ~scope:"Guard.optimize" "no tier produced a plan (%s)"
      (String.concat "; "
         (List.map
            (fun (a : Degrade.attempt) -> Format.asprintf "%a" Degrade.pp_attempt a)
            attempts))
  | Internal msg -> Blitz_util.Err.format ~scope:"Guard.optimize" "internal failure: %s" msg

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

(* The guard participates in a session's plan cache only on the clean
   path: sanitize-repaired statistics (the chaos suite's territory) are
   a different query than the caller submitted, and a resilient driver
   does not let a corrupted input stream populate — or be answered from
   — the cache.  Hits and stores go per tier key ("exact" stays
   bit-compatible with "exact", "thresholded" with "thresholded"). *)
let cacheable_tiers = [ Degrade.Exact; Degrade.Thresholded ]

let cache_lookup ~session ~repairs ?cache_tag model catalog graph =
  match session with
  | Some s when repairs = [] && Engine.cache s <> None ->
    let problem = Blitz_engine.Registry.problem ~graph catalog in
    let rec try_tiers = function
      | [] -> None
      | tier :: rest -> (
        match
          Engine.cache_find ~model ?cache_tag s ~optimizer:(Degrade.tier_name tier) problem
        with
        | Some hit -> Some (tier, hit)
        | None -> try_tiers rest)
    in
    try_tiers cacheable_tiers
  | _ -> None

let cache_record ~session ~repairs ?cache_tag model catalog graph (plan : Plan.t)
    (provenance : Degrade.provenance) =
  match session with
  | Some s
    when repairs = []
         && List.exists (fun t -> t = provenance.Degrade.winner) cacheable_tiers ->
    let problem = Blitz_engine.Registry.problem ~graph catalog in
    let outcome =
      {
        Blitz_engine.Registry.plan = Some plan;
        cost = provenance.Degrade.winner_cost;
        passes = 1;
        final_threshold = infinity;
        table = None;
        counters = None;
        note = None;
      }
    in
    Engine.cache_store ~model ?cache_tag s
      ~optimizer:(Degrade.tier_name provenance.Degrade.winner) problem outcome
  | _ -> ()

(* All entry points funnel here.  The budget is (re-)armed exactly once,
   so every tier of the cascade draws down the same allowance; the
   catch-all converts any escaped exception — there should be none, but
   a resilient driver does not get to assume that — into a typed error
   rather than unwinding through the caller. *)
let drive ~budget ~cascade ~seed ~num_domains ~multiway ~session ?cache_tag model catalog graph
    repairs =
  Budget.start budget;
  (* Fabricated cardinalities (Sanitize defaulted them) mean every
     cost-based tier would optimize placeholder numbers; unless the
     caller pinned a cascade explicitly, go straight to the
     estimate-free tiers. *)
  let cascade =
    match cascade with
    | Some _ -> cascade
    | None when Sanitize.fabricated_stats repairs -> Some Degrade.fabricated_cascade
    | None -> None
  in
  match cache_lookup ~session ~repairs ?cache_tag model catalog graph with
  | Some (tier, hit) ->
    let cost = hit.Blitz_engine.Engine.Plan_cache.cost in
    let provenance =
      {
        Degrade.winner = tier;
        winner_cost = cost;
        attempts =
          [ { Degrade.tier; status = Degrade.Produced cost; elapsed_ms = Budget.elapsed_ms budget } ];
        total_ms = Budget.elapsed_ms budget;
      }
    in
    Ok
      {
        plan = hit.Blitz_engine.Engine.Plan_cache.plan;
        cost;
        provenance;
        repairs;
        catalog;
        graph;
        from_cache = true;
      }
  | None -> (
    (* A session plugs its pooled DP table and spawned domain pool into
       the cascade; its domain count is the default when the caller gave
       none.  Plans and costs are bit-identical with or without it. *)
    let arena = Option.map Engine.arena session in
    let pool = Option.bind session Engine.pool in
    let cache_bytes =
      match Option.bind session Engine.cache with
      | Some c -> Some (Blitz_engine.Engine.Plan_cache.resident_bytes c)
      | None -> None
    in
    let num_domains =
      match (num_domains, session) with
      | (Some _ as d), _ -> d
      | None, Some s -> Some (Engine.num_domains s)
      | None, None -> None
    in
    match
      Degrade.optimize ?cascade ?seed ?num_domains ?multiway ?arena ?pool ?cache_bytes ~budget
        model catalog graph
    with
    | Ok (plan, provenance) ->
      cache_record ~session ~repairs ?cache_tag model catalog graph plan provenance;
      Ok
        {
          plan;
          cost = provenance.Degrade.winner_cost;
          provenance;
          repairs;
          catalog;
          graph;
          from_cache = false;
        }
    | Error attempts -> Error (No_tier_produced attempts)
    | exception exn -> Error (Internal (Printexc.to_string exn)))

let optimize ?budget ?session ?cascade ?seed ?num_domains ?multiway ?cache_tag model catalog
    graph =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match Sanitize.check_pair catalog graph with
  | Error issues -> Error (Invalid_input issues)
  | Ok clean ->
    drive ~budget ~cascade ~seed ~num_domains ~multiway ~session ?cache_tag model
      clean.Sanitize.catalog clean.Sanitize.graph clean.Sanitize.repairs

let optimize_input ?budget ?session ?policy ?cascade ?seed ?num_domains ?multiway ?cache_tag
    model ~relations ~edges () =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match Sanitize.check ?policy ~relations ~edges () with
  | Error issues -> Error (Invalid_input issues)
  | exception exn -> Error (Internal (Printexc.to_string exn))
  | Ok clean ->
    drive ~budget ~cascade ~seed ~num_domains ~multiway ~session ?cache_tag model
      clean.Sanitize.catalog clean.Sanitize.graph clean.Sanitize.repairs

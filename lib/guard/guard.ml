module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Engine = Blitz_engine.Engine

type outcome = {
  plan : Plan.t;
  cost : float;
  provenance : Degrade.provenance;
  repairs : Sanitize.issue list;
  catalog : Catalog.t;
  graph : Join_graph.t;
}

type error =
  | Invalid_input of Sanitize.issue list
  | No_tier_produced of Degrade.attempt list
  | Internal of string

let error_message = function
  | Invalid_input issues ->
    (* The issues carry their own "input:" scope. *)
    Blitz_util.Err.format ~scope:"Guard.optimize" "%s"
      (String.concat "; " (List.map Sanitize.issue_message issues))
  | No_tier_produced attempts ->
    Blitz_util.Err.format ~scope:"Guard.optimize" "no tier produced a plan (%s)"
      (String.concat "; "
         (List.map
            (fun (a : Degrade.attempt) -> Format.asprintf "%a" Degrade.pp_attempt a)
            attempts))
  | Internal msg -> Blitz_util.Err.format ~scope:"Guard.optimize" "internal failure: %s" msg

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

(* All entry points funnel here.  The budget is (re-)armed exactly once,
   so every tier of the cascade draws down the same allowance; the
   catch-all converts any escaped exception — there should be none, but
   a resilient driver does not get to assume that — into a typed error
   rather than unwinding through the caller. *)
let drive ~budget ~cascade ~seed ~num_domains ~session model catalog graph repairs =
  Budget.start budget;
  (* A session plugs its pooled DP table and spawned domain pool into
     the cascade; its domain count is the default when the caller gave
     none.  Plans and costs are bit-identical with or without it. *)
  let arena = Option.map Engine.arena session in
  let pool = Option.bind session Engine.pool in
  let num_domains =
    match (num_domains, session) with
    | (Some _ as d), _ -> d
    | None, Some s -> Some (Engine.num_domains s)
    | None, None -> None
  in
  match Degrade.optimize ?cascade ?seed ?num_domains ?arena ?pool ~budget model catalog graph with
  | Ok (plan, provenance) ->
    Ok { plan; cost = provenance.Degrade.winner_cost; provenance; repairs; catalog; graph }
  | Error attempts -> Error (No_tier_produced attempts)
  | exception exn -> Error (Internal (Printexc.to_string exn))

let optimize ?budget ?session ?cascade ?seed ?num_domains model catalog graph =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match Sanitize.check_pair catalog graph with
  | Error issues -> Error (Invalid_input issues)
  | Ok clean ->
    drive ~budget ~cascade ~seed ~num_domains ~session model clean.Sanitize.catalog
      clean.Sanitize.graph clean.Sanitize.repairs

let optimize_input ?budget ?session ?policy ?cascade ?seed ?num_domains model ~relations ~edges
    () =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  match Sanitize.check ?policy ~relations ~edges () with
  | Error issues -> Error (Invalid_input issues)
  | exception exn -> Error (Internal (Printexc.to_string exn))
  | Ok clean ->
    drive ~budget ~cascade ~seed ~num_domains ~session model clean.Sanitize.catalog
      clean.Sanitize.graph clean.Sanitize.repairs

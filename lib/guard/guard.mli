(** The resilient optimizer front door.

    [Guard.optimize] composes the pieces of this library into one entry
    point with a hard contract: {e for any input and any budget it
    returns [Ok] with a valid plan or a typed [Error] — it never raises
    and never exceeds its budget by more than one probe interval.}

    The pipeline is: {!Sanitize} validates (and under a lenient policy
    repairs) the raw statistics; {!Budget} arms the wall-clock deadline
    and checks the DP-table memory ceiling before allocation; {!Degrade}
    walks the tier cascade — exact, thresholded, hybrid, IKKBZ, greedy,
    estimate-free — returning the first plan produced together with
    full provenance.  When the sanitizer had to {e fabricate}
    cardinalities ({!Sanitize.fabricated_stats}) and the caller pinned
    no cascade, the cost-based tiers are bypassed entirely in favour of
    {!Degrade.fabricated_cascade} — structure-only planning is the only
    honest option on made-up numbers.  {!Chaos} exists to attack this
    contract in tests. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type outcome = {
  plan : Plan.t;
  cost : float;  (** [provenance.winner_cost], under the session cost model. *)
  provenance : Degrade.provenance;
  repairs : Sanitize.issue list;
      (** Defects the sanitizer repaired (empty for already-valid input). *)
  catalog : Catalog.t;  (** The sanitized inputs the plan refers to — *)
  graph : Join_graph.t;  (** relevant when repairs dropped edges. *)
  from_cache : bool;
      (** The plan came from the session's plan cache (no tier ran).
          Possible only with a cache-carrying [session] and an input the
          sanitizer accepted verbatim; cache participation is bypassed
          whenever repairs were made, so the chaos/sanitize paths can
          neither populate the cache nor be answered from it. *)
}

type error =
  | Invalid_input of Sanitize.issue list  (** Every irreparable defect, not just the first. *)
  | No_tier_produced of Degrade.attempt list
      (** Possible only with a custom cascade omitting the
          deadline-exempt tiers (greedy, estimate-free). *)
  | Internal of string  (** An escaped exception, demoted to data. *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val optimize :
  ?budget:Budget.t ->
  ?session:Blitz_engine.Engine.t ->
  ?cascade:Degrade.tier list ->
  ?seed:int ->
  ?num_domains:int ->
  ?multiway:bool ->
  ?cache_tag:string ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  (outcome, error) result
(** Optimize already-constructed inputs under [budget] (default:
    unlimited).  The budget is re-armed on entry, so one [Budget.t] can
    be reused across calls.  With no deadline and default cascade the
    result matches [Blitzsplit.optimize_join] exactly — including with
    [num_domains > 1], which runs the DP tiers rank-parallel on that
    many domains with bit-identical results (see {!Degrade.run_tier}).
    [session] plugs a [Blitz_engine.Engine] session in: the DP tiers
    draw their table from its arena and its spawned pool, and its
    domain count is the default when [num_domains] is omitted — the
    way to run many guarded queries without per-query allocation.
    [multiway] asks capable tiers for n-ary AGM-costed plans (see
    {!Degrade.optimize}); incapable tiers ignore it, so the cascade
    stays valid end to end.  [cache_tag] partitions the session cache
    per caller (see [Blitz_engine.Engine.optimize]): the serving layer
    passes the tenant id, so a shared cache never replays one tenant's
    plan to another. *)

val optimize_input :
  ?budget:Budget.t ->
  ?session:Blitz_engine.Engine.t ->
  ?policy:Sanitize.policy ->
  ?cascade:Degrade.tier list ->
  ?seed:int ->
  ?num_domains:int ->
  ?multiway:bool ->
  ?cache_tag:string ->
  Cost_model.t ->
  relations:(string * float) list ->
  edges:(int * int * float) list ->
  unit ->
  (outcome, error) result
(** Optimize raw, untrusted statistics: sanitize under [policy]
    (default {!Sanitize.lenient}), then proceed as {!optimize}.  This is
    the entry point the chaos property suite drives. *)

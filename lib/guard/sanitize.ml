module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

type issue =
  | Empty_catalog
  | Too_many_relations of { count : int; limit : int }
  | Empty_relation_name of { index : int }
  | Duplicate_relation_name of { name : string }
  | Bad_cardinality of { name : string; card : float }
  | Cardinality_defaulted of { name : string; card : float; substitute : float }
  | Edge_endpoint_out_of_range of { i : int; j : int; n : int }
  | Self_edge of { i : int }
  | Duplicate_edge of { i : int; j : int }
  | Bad_selectivity of { i : int; j : int; sel : float }
  | Selectivity_above_one of { i : int; j : int; sel : float }
  | Size_mismatch of { catalog_n : int; graph_n : int }

let issue_message =
  let fmt x = Blitz_util.Err.format ~scope:"input" x in
  function
  | Empty_catalog -> fmt "no relations"
  | Too_many_relations { count; limit } -> fmt "%d relations exceed the %d-relation limit" count limit
  | Empty_relation_name { index } -> fmt "relation %d has an empty name" index
  | Duplicate_relation_name { name } -> fmt "duplicate relation name %S" name
  | Bad_cardinality { name; card } -> fmt "relation %S has invalid cardinality %g" name card
  | Cardinality_defaulted { name; card; substitute } ->
    fmt "relation %S: invalid cardinality %g defaulted to %g (fabricated)" name card substitute
  | Edge_endpoint_out_of_range { i; j; n } ->
    fmt "edge (%d, %d) has an endpoint outside [0, %d)" i j n
  | Self_edge { i } -> fmt "self-edge on relation %d" i
  | Duplicate_edge { i; j } -> fmt "duplicate edge (%d, %d)" i j
  | Bad_selectivity { i; j; sel } -> fmt "edge (%d, %d) has invalid selectivity %g" i j sel
  | Selectivity_above_one { i; j; sel } -> fmt "edge (%d, %d) has selectivity %g above 1" i j sel
  | Size_mismatch { catalog_n; graph_n } ->
    fmt "catalog has %d relations but the join graph covers %d" catalog_n graph_n

let pp_issue ppf i = Format.pp_print_string ppf (issue_message i)

type policy = {
  clamp_selectivities : bool;
  drop_bad_edges : bool;
  default_cardinalities : bool;
}

let strict =
  { clamp_selectivities = false; drop_bad_edges = false; default_cardinalities = false }

let lenient = { clamp_selectivities = true; drop_bad_edges = true; default_cardinalities = true }

type clean = { catalog : Catalog.t; graph : Join_graph.t; repairs : issue list }

let max_relations = 62 (* Relset.max_width *)

let check ?(policy = lenient) ~relations ~edges () =
  let errors = ref [] and repairs = ref [] in
  let error i = errors := i :: !errors in
  let repair i = repairs := i :: !repairs in
  (* Relations: names are irreparable, but an invalid cardinality (NaN,
     ±infinity, zero, negative) can be defaulted when the policy says
     so.  There is no honest substitute — we use the geometric mean of
     the valid cardinalities (1 when none exist), the least-surprising
     stand-in on the paper's logarithmic cardinality axis — so the
     substitution is recorded as a [Cardinality_defaulted] repair and
     downstream consumers (the Guard cascade) treat the resulting stats
     as fabricated. *)
  let n = List.length relations in
  if n = 0 then error Empty_catalog;
  if n > max_relations then error (Too_many_relations { count = n; limit = max_relations });
  let bad_card card = not (Float.is_finite card) || card <= 0.0 in
  let substitute =
    let log_sum = ref 0.0 and valid = ref 0 in
    List.iter
      (fun (_, card) ->
        if not (bad_card card) then begin
          log_sum := !log_sum +. log card;
          incr valid
        end)
      relations;
    if !valid = 0 then 1.0 else exp (!log_sum /. float_of_int !valid)
  in
  let seen = Hashtbl.create 16 in
  let relations =
    List.mapi
      (fun index (name, card) ->
        if name = "" then error (Empty_relation_name { index })
        else if Hashtbl.mem seen name then error (Duplicate_relation_name { name })
        else Hashtbl.add seen name ();
        if bad_card card then
          if policy.default_cardinalities then begin
            repair (Cardinality_defaulted { name; card; substitute });
            (name, substitute)
          end
          else begin
            error (Bad_cardinality { name; card });
            (name, card)
          end
        else (name, card))
      relations
  in
  (* Edges: a defective predicate can be dropped (losing only pruning
     information — an absent edge is selectivity 1, always sound) and an
     overshooting selectivity clamped, when the policy allows. *)
  let seen_edges = Hashtbl.create 16 in
  let kept = ref [] in
  let drop issue = if policy.drop_bad_edges then repair issue else error issue in
  List.iter
    (fun (i, j, sel) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        drop (Edge_endpoint_out_of_range { i; j; n })
      else if i = j then drop (Self_edge { i })
      else if Hashtbl.mem seen_edges (min i j, max i j) then drop (Duplicate_edge { i; j })
      else if not (Float.is_finite sel) || sel <= 0.0 then drop (Bad_selectivity { i; j; sel })
      else begin
        Hashtbl.add seen_edges (min i j, max i j) ();
        if sel > 1.0 then
          if policy.clamp_selectivities then begin
            repair (Selectivity_above_one { i; j; sel });
            kept := (i, j, 1.0) :: !kept
          end
          else error (Selectivity_above_one { i; j; sel })
        else kept := (i, j, sel) :: !kept
      end)
    edges;
  match List.rev !errors with
  | _ :: _ as errors -> Error errors
  | [] ->
    let catalog = Catalog.of_list relations in
    let graph = Join_graph.of_edges ~n (List.rev !kept) in
    Ok { catalog; graph; repairs = List.rev !repairs }

let fabricated_stats issues =
  List.exists (function Cardinality_defaulted _ -> true | _ -> false) issues

let check_pair catalog graph =
  let catalog_n = Catalog.n catalog and graph_n = Join_graph.n graph in
  if catalog_n <> graph_n then Error [ Size_mismatch { catalog_n; graph_n } ]
  else Ok { catalog; graph; repairs = [] }

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Rng = Blitz_util.Rng

type input = { relations : (string * float) list; edges : (int * int * float) list }

let input_of catalog graph =
  {
    relations =
      List.combine
        (Array.to_list (Catalog.names catalog))
        (Array.to_list (Catalog.cards catalog));
    edges = Join_graph.edges graph;
  }

type fault =
  | Card_nan of int
  | Card_infinite of int
  | Card_negative of int
  | Card_zero of int
  | Sel_nan of int * int
  | Sel_zero of int * int
  | Sel_above_one of int * int
  | Edge_dropped of int * int
  | Edge_duplicated of int * int
  | Edge_endpoint_wild of int * int
  | Name_cleared of int
  | Name_duplicated of int
  | Catalog_scrambled

let fault_message = function
  | Card_nan i -> Printf.sprintf "cardinality of relation %d set to NaN" i
  | Card_infinite i -> Printf.sprintf "cardinality of relation %d set to infinity" i
  | Card_negative i -> Printf.sprintf "cardinality of relation %d negated" i
  | Card_zero i -> Printf.sprintf "cardinality of relation %d zeroed" i
  | Sel_nan (i, j) -> Printf.sprintf "selectivity of edge (%d, %d) set to NaN" i j
  | Sel_zero (i, j) -> Printf.sprintf "selectivity of edge (%d, %d) zeroed" i j
  | Sel_above_one (i, j) -> Printf.sprintf "selectivity of edge (%d, %d) inflated above 1" i j
  | Edge_dropped (i, j) -> Printf.sprintf "edge (%d, %d) dropped" i j
  | Edge_duplicated (i, j) -> Printf.sprintf "edge (%d, %d) duplicated" i j
  | Edge_endpoint_wild (i, j) -> Printf.sprintf "edge (%d, %d) rewired out of range" i j
  | Name_cleared i -> Printf.sprintf "name of relation %d cleared" i
  | Name_duplicated i -> Printf.sprintf "name of relation %d duplicated from its neighbor" i
  | Catalog_scrambled -> "every cardinality in the catalog replaced with garbage"

let pp_fault ppf f = Format.pp_print_string ppf (fault_message f)

(* The whole-catalog fault: every cardinality becomes one of the four
   invalid shapes.  This is the corruption Sanitize cannot repair
   honestly — it can only fabricate — and hence the fault that
   exercises the degrade-to-estimate-free path. *)
let garbage_card rng =
  match Rng.int rng 4 with
  | 0 -> Float.nan
  | 1 -> Float.infinity
  | 2 -> Float.neg_infinity
  | _ -> -.(1.0 +. Rng.float rng 100.0)

let scramble_cards rng input =
  { input with relations = List.map (fun (nm, _) -> (nm, garbage_card rng)) input.relations }

let set_nth l n f = List.mapi (fun i x -> if i = n then f x else x) l

(* One corruption step.  Returns [None] when the drawn fault is not
   applicable (e.g. an edge fault on an edge-free input) so the driver
   can redraw — keeping the fault mix independent of input shape. *)
let inject rng input =
  let n_rel = List.length input.relations in
  let n_edge = List.length input.edges in
  let rel () = Rng.int rng n_rel in
  let edge () = Rng.int rng n_edge in
  match Rng.int rng 13 with
  | 0 ->
    let r = rel () in
    Some
      ({ input with relations = set_nth input.relations r (fun (nm, _) -> (nm, Float.nan)) },
       Card_nan r)
  | 1 ->
    let r = rel () in
    Some
      ( { input with relations = set_nth input.relations r (fun (nm, _) -> (nm, Float.infinity)) },
        Card_infinite r )
  | 2 ->
    let r = rel () in
    Some
      ( { input with relations = set_nth input.relations r (fun (nm, c) -> (nm, -.c)) },
        Card_negative r )
  | 3 ->
    let r = rel () in
    Some
      ({ input with relations = set_nth input.relations r (fun (nm, _) -> (nm, 0.0)) }, Card_zero r)
  | 4 when n_edge > 0 ->
    let e = edge () in
    let i, j, _ = List.nth input.edges e in
    Some
      ( { input with edges = set_nth input.edges e (fun (i, j, _) -> (i, j, Float.nan)) },
        Sel_nan (i, j) )
  | 5 when n_edge > 0 ->
    let e = edge () in
    let i, j, _ = List.nth input.edges e in
    Some
      ({ input with edges = set_nth input.edges e (fun (i, j, _) -> (i, j, 0.0)) }, Sel_zero (i, j))
  | 6 when n_edge > 0 ->
    let e = edge () in
    let i, j, _ = List.nth input.edges e in
    let factor = 1.0 +. Rng.float rng 9.0 in
    Some
      ( { input with edges = set_nth input.edges e (fun (i, j, s) -> (i, j, (s *. factor) +. 1.0)) },
        Sel_above_one (i, j) )
  | 7 when n_edge > 0 ->
    let e = edge () in
    let i, j, _ = List.nth input.edges e in
    Some
      ( { input with edges = List.filteri (fun k _ -> k <> e) input.edges },
        Edge_dropped (i, j) )
  | 8 when n_edge > 0 ->
    let e = edge () in
    let ((i, j, _) as dup) = List.nth input.edges e in
    Some ({ input with edges = dup :: input.edges }, Edge_duplicated (i, j))
  | 9 when n_edge > 0 ->
    let e = edge () in
    let i, j, _ = List.nth input.edges e in
    Some
      ( { input with edges = set_nth input.edges e (fun (i, _, s) -> (i, n_rel + Rng.int rng 3, s)) },
        Edge_endpoint_wild (i, j) )
  | 10 ->
    let r = rel () in
    Some
      ({ input with relations = set_nth input.relations r (fun (_, c) -> ("", c)) }, Name_cleared r)
  | 11 when n_rel > 1 ->
    let r = 1 + Rng.int rng (n_rel - 1) in
    let prev_name = fst (List.nth input.relations (r - 1)) in
    Some
      ( { input with relations = set_nth input.relations r (fun (_, c) -> (prev_name, c)) },
        Name_duplicated r )
  | 12 -> Some (scramble_cards rng input, Catalog_scrambled)
  | _ -> None

let corrupt ~seed ?faults input =
  if List.length input.relations = 0 then invalid_arg "Chaos.corrupt: empty input";
  let rng = Rng.create ~seed in
  let faults = match faults with Some f -> max 0 f | None -> 1 + Rng.int rng 3 in
  let rec go input applied remaining attempts =
    if remaining = 0 || attempts = 0 then (input, List.rev applied)
    else
      match inject rng input with
      | Some (input, fault) -> go input (fault :: applied) (remaining - 1) attempts
      | None -> go input applied remaining (attempts - 1)
  in
  go input [] faults (faults * 20)

let scramble_catalog ~seed input =
  if List.length input.relations = 0 then invalid_arg "Chaos.scramble_catalog: empty input";
  let rng = Rng.create ~seed in
  (scramble_cards rng input, [ Catalog_scrambled ])

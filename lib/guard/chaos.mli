(** Deterministic fault injection for robustness testing.

    Wraps raw optimizer statistics — the [(name, cardinality)] list and
    [(i, j, selectivity)] edge list a catalog/graph/statistics collector
    would deliver — and corrupts them with a SplitMix64-seeded stream of
    faults: NaN and negative cardinalities, selectivities above 1,
    dropped, duplicated and out-of-range edges, cleared and duplicated
    names.  Equal seeds produce equal corruptions, so a failing seed is
    a reproducible bug report.  The property suite drives
    [Guard.optimize_input] over corrupted inputs and asserts the driver
    never raises and never emits an invalid plan. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

type input = { relations : (string * float) list; edges : (int * int * float) list }
(** Raw statistics, before any validation. *)

val input_of : Catalog.t -> Join_graph.t -> input
(** Demote validated inputs back to raw form (the usual starting point
    for a chaos run). *)

type fault =
  | Card_nan of int
  | Card_infinite of int
  | Card_negative of int
  | Card_zero of int
  | Sel_nan of int * int
  | Sel_zero of int * int
  | Sel_above_one of int * int
  | Edge_dropped of int * int
  | Edge_duplicated of int * int
  | Edge_endpoint_wild of int * int
  | Name_cleared of int
  | Name_duplicated of int
  | Catalog_scrambled
      (** Every cardinality replaced with NaN/±infinity/negative garbage
          — the corruption {!Sanitize} can only paper over by
          fabricating substitutes, so it forces the Guard cascade onto
          the estimate-free tier. *)

val fault_message : fault -> string
val pp_fault : Format.formatter -> fault -> unit

val corrupt : seed:int -> ?faults:int -> input -> input * fault list
(** [corrupt ~seed input] applies a deterministic sequence of faults
    ([faults] defaults to 1-3, drawn from the seed) and reports what was
    done.  Faults compound: a later fault sees the earlier ones'
    output.  Raises [Invalid_argument] on an input with no relations
    (nothing to corrupt). *)

val scramble_catalog : seed:int -> input -> input * fault list
(** Apply exactly the {!constructor-Catalog_scrambled} fault: every
    cardinality becomes seeded garbage, names and edges untouched.  The
    deterministic way to demonstrate the degrade-to-estimate-free path
    (the CLI's [--scramble-catalog] uses it).  Raises
    [Invalid_argument] on an input with no relations. *)

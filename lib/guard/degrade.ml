module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Blitzsplit = Blitz_core.Blitzsplit
module Arena = Blitz_core.Arena
module Pool = Blitz_parallel.Pool
module Registry = Blitz_engine.Registry
module B = Blitz_baselines
module Obs = Blitz_obs.Obs

type tier = Exact | Thresholded | Dpccp | Hybrid_windows | Ikkbz | Greedy | Estimate_free

(* Tier names double as registry keys: the cascade no longer owns any
   algorithm invocation code, it sequences registry entries. *)
let tier_name = function
  | Exact -> "exact"
  | Thresholded -> "thresholded"
  | Dpccp -> "dpccp"
  | Hybrid_windows -> "hybrid"
  | Ikkbz -> "ikkbz"
  | Greedy -> "greedy"
  | Estimate_free -> "simpli-squared"

let tier_entry tier = Registry.find_exn (tier_name tier)

(* Dpccp slots between the thresholded driver and the hybrid: when the
   2^n table (or the deadline) rules the full-space DP out, the
   connectivity-pruned search still finds the product-free optimum at
   polynomial cost on sparse graphs — strictly stronger than dropping
   straight to randomized search.  Its eligibility check refuses
   disconnected graphs, where its plan space is empty. *)
let default_cascade =
  [ Exact; Thresholded; Dpccp; Hybrid_windows; Ikkbz; Greedy; Estimate_free ]

(* When Sanitize had to fabricate cardinalities the cost-based tiers
   would optimize placeholder numbers — garbage in, garbage out, at
   full exponential price.  Structure is all that genuinely survived
   the corruption, so the estimate-free tier leads; greedy remains as
   the (deadline-exempt) second opinion should the registry entry ever
   be displaced. *)
let fabricated_cascade = [ Estimate_free; Greedy ]

type skip_reason =
  | Too_large of { n : int; limit : int }
  | Memory of { needed_bytes : int; limit_bytes : int }
  | Deadline_expired
  | Not_applicable of string

let skip_message = function
  | Too_large { n; limit } -> Printf.sprintf "%d relations exceed the %d-relation DP table" n limit
  | Memory { needed_bytes; limit_bytes } ->
    Printf.sprintf "DP table needs %d B, ceiling is %d B" needed_bytes limit_bytes
  | Deadline_expired -> "deadline expired"
  | Not_applicable why -> Printf.sprintf "not applicable: %s" why

type failure = Deadline | No_finite_plan

let failure_message = function
  | Deadline -> "deadline"
  | No_finite_plan -> "no finite-cost plan"

type status = Produced of float | Aborted of failure | Skipped of skip_reason

type attempt = { tier : tier; status : status; elapsed_ms : float }

type provenance = {
  winner : tier;
  winner_cost : float;
  attempts : attempt list;  (** In cascade order, up to and including the winner. *)
  total_ms : float;
}

let pp_status ppf = function
  | Produced cost -> Format.fprintf ppf "produced plan (cost %g)" cost
  | Aborted f -> Format.fprintf ppf "aborted (%s)" (failure_message f)
  | Skipped r -> Format.fprintf ppf "skipped (%s)" (skip_message r)

let pp_attempt ppf a =
  match a.status with
  | Skipped _ -> Format.fprintf ppf "%s: %a" (tier_name a.tier) pp_status a.status
  | Produced _ -> Format.fprintf ppf "%s: %a in %.1fms" (tier_name a.tier) pp_status a.status a.elapsed_ms
  | Aborted _ -> Format.fprintf ppf "%s: %a after %.1fms" (tier_name a.tier) pp_status a.status a.elapsed_ms

let pp_provenance ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_attempt ppf a)
    p.attempts;
  Format.fprintf ppf "@]"

(* A tier is skipped — never attempted — when its registry metadata
   already rules it out: the [2^n] table cannot exist (size cap or
   memory ceiling), the algorithm does not apply (IKKBZ needs a tree
   query), or the deadline is already gone.  [Greedy] is the terminal
   guarantee: its entry is deadline-exempt — [O(n^3)], no table — so
   the cascade always ends with a plan.  With a session [arena] the
   memory check charges the arena's would-be resident high-water mark
   ([Arena.bytes_after]) instead of the per-call table size. *)
let eligibility ?arena ?(cache_bytes = 0) ~budget tier catalog graph =
  let n = Catalog.n catalog in
  let caps = (tier_entry tier).Registry.caps in
  if caps.Registry.deadline_exempt then None
  else if Budget.expired budget then Some Deadline_expired
  else
    match caps.Registry.max_n with
    | Some limit when n > limit -> Some (Too_large { n; limit })
    | Some _ | None -> (
      let memory_ok =
        match caps.Registry.table_bytes with
        | None -> None
        | Some bytes ->
          (* A resident plan cache shares the memory ceiling with the
             DP table: what the cache holds, the table cannot claim. *)
          let needed_bytes =
            cache_bytes
            + (match arena with
              (* Beyond the dense-table cap only the sparse/table-free
                 backends can run, and they draw nothing from the arena —
                 charge the entry's own estimate (also keeps
                 [Arena.bytes_after]'s argument in range). *)
              | Some a when n <= Blitz_core.Dp_table.max_relations ->
                Arena.bytes_after a ~n ()
              | Some _ | None -> bytes ~n)
          in
          if Budget.admits_bytes budget needed_bytes then None
          else
            Some
              (Memory
                 {
                   needed_bytes;
                   limit_bytes = Option.value ~default:max_int (Budget.max_table_bytes budget);
                 })
      in
      match memory_ok with
      | Some _ as skip -> skip
      | None ->
        if caps.Registry.tree_only && not (B.Ikkbz.is_tree graph) then
          Some (Not_applicable "join graph is not a tree")
        else if caps.Registry.connected_only && not (Join_graph.is_connected graph) then
          Some (Not_applicable "join graph is disconnected")
        else None)

let run_tier ?(num_domains = 1) ?arena ?pool ?multiway ~budget ~seed tier model catalog graph =
  let interrupt = Budget.interrupt budget in
  (* A plan with an overflowed (infinite) cost estimate is still a valid
     join order and better than nothing; only NaN — or no plan at all —
     counts as failure. *)
  let finish = function
    | Some plan, cost when not (Float.is_nan cost) -> Ok (plan, cost)
    | _ -> Error No_finite_plan
  in
  (* With several domains the DP tiers run rank-parallel; the result —
     cost and plan — is bit-identical to the sequential search, so the
     exact tier keeps its meaning (Budget.interrupt is domain-safe).
     The thresholded entry seeds its first pass from the greedy bound
     when the ctx carries no threshold — the cascade's policy. *)
  (* Tiers whose caps lack the multiway capability simply ignore the
     flag, so one ctx serves the whole cascade and it stays valid end to
     end: an n-ary-capable tier may emit [Plan.Multiway], every tier
     below it still produces plain binary plans. *)
  let ctx = Registry.ctx ?arena ?pool ~num_domains ~interrupt ~seed ?multiway model in
  match (tier_entry tier).Registry.optimize ctx (Registry.problem ~graph catalog) with
  | o -> finish (o.Registry.plan, o.Registry.cost)
  | exception Blitzsplit.Interrupted -> Error Deadline

(* Cascade decisions, labelled by tier and what happened — the
   provenance trail as time series.  Counter lookup per attempt (a
   registry mutex) is noise next to the optimization the attempt ran. *)
let attempt_counter tier status =
  Obs.Metrics.counter ~help:"Degradation-cascade steps by tier and outcome"
    ~labels:[ ("tier", tier_name tier); ("status", status) ]
    "blitz_degrade_attempts_total"

let record_attempt tier status detail =
  if Obs.enabled () then begin
    Obs.Metrics.incr (attempt_counter tier status);
    Obs.instant "degrade.attempt"
      ~attrs:[ ("tier", tier_name tier); ("status", status); ("detail", detail) ]
  end

let record_win tier =
  if Obs.enabled () then
    Obs.Metrics.incr
      (Obs.Metrics.counter ~help:"Queries whose winning plan came from this tier"
         ~labels:[ ("tier", tier_name tier) ]
         "blitz_degrade_wins_total")

let optimize ?(cascade = default_cascade) ?(seed = 1) ?num_domains ?arena ?pool ?cache_bytes
    ?multiway ~budget model catalog graph =
  let t_start = Budget.elapsed_ms budget in
  let rec go attempts = function
    | [] -> Error (List.rev attempts)
    | tier :: rest -> (
      match eligibility ?arena ?cache_bytes ~budget tier catalog graph with
      | Some reason ->
        record_attempt tier "skipped" (skip_message reason);
        go ({ tier; status = Skipped reason; elapsed_ms = 0.0 } :: attempts) rest
      | None -> (
        let t0 = Budget.elapsed_ms budget in
        match
          Obs.span ("degrade." ^ tier_name tier) (fun () ->
              run_tier ?num_domains ?arena ?pool ?multiway ~budget ~seed tier model catalog
                graph)
        with
        | Ok (plan, cost) ->
          record_attempt tier "produced" (Printf.sprintf "cost %g" cost);
          record_win tier;
          let elapsed_ms = Budget.elapsed_ms budget -. t0 in
          let attempts = List.rev ({ tier; status = Produced cost; elapsed_ms } :: attempts) in
          Ok
            ( plan,
              {
                winner = tier;
                winner_cost = cost;
                attempts;
                total_ms = Budget.elapsed_ms budget -. t_start;
              } )
        | Error failure ->
          record_attempt tier "aborted" (failure_message failure);
          let elapsed_ms = Budget.elapsed_ms budget -. t0 in
          go ({ tier; status = Aborted failure; elapsed_ms } :: attempts) rest))
  in
  go [] cascade

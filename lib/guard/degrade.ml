module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Blitzsplit = Blitz_core.Blitzsplit
module Threshold = Blitz_core.Threshold
module Dp_table = Blitz_core.Dp_table
module Hybrid = Blitz_hybrid.Hybrid
module Parallel_blitzsplit = Blitz_parallel.Parallel_blitzsplit
module B = Blitz_baselines
module Rng = Blitz_util.Rng

type tier = Exact | Thresholded | Hybrid_windows | Ikkbz | Greedy

let tier_name = function
  | Exact -> "exact"
  | Thresholded -> "thresholded"
  | Hybrid_windows -> "hybrid"
  | Ikkbz -> "ikkbz"
  | Greedy -> "greedy"

let default_cascade = [ Exact; Thresholded; Hybrid_windows; Ikkbz; Greedy ]

type skip_reason =
  | Too_large of { n : int; limit : int }
  | Memory of { needed_bytes : int; limit_bytes : int }
  | Deadline_expired
  | Not_applicable of string

let skip_message = function
  | Too_large { n; limit } -> Printf.sprintf "%d relations exceed the %d-relation DP table" n limit
  | Memory { needed_bytes; limit_bytes } ->
    Printf.sprintf "DP table needs %d B, ceiling is %d B" needed_bytes limit_bytes
  | Deadline_expired -> "deadline expired"
  | Not_applicable why -> Printf.sprintf "not applicable: %s" why

type failure = Deadline | No_finite_plan

let failure_message = function
  | Deadline -> "deadline"
  | No_finite_plan -> "no finite-cost plan"

type status = Produced of float | Aborted of failure | Skipped of skip_reason

type attempt = { tier : tier; status : status; elapsed_ms : float }

type provenance = {
  winner : tier;
  winner_cost : float;
  attempts : attempt list;  (** In cascade order, up to and including the winner. *)
  total_ms : float;
}

let pp_status ppf = function
  | Produced cost -> Format.fprintf ppf "produced plan (cost %g)" cost
  | Aborted f -> Format.fprintf ppf "aborted (%s)" (failure_message f)
  | Skipped r -> Format.fprintf ppf "skipped (%s)" (skip_message r)

let pp_attempt ppf a =
  match a.status with
  | Skipped _ -> Format.fprintf ppf "%s: %a" (tier_name a.tier) pp_status a.status
  | Produced _ -> Format.fprintf ppf "%s: %a in %.1fms" (tier_name a.tier) pp_status a.status a.elapsed_ms
  | Aborted _ -> Format.fprintf ppf "%s: %a after %.1fms" (tier_name a.tier) pp_status a.status a.elapsed_ms

let pp_provenance ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i a ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_attempt ppf a)
    p.attempts;
  Format.fprintf ppf "@]"

(* A tier is skipped — never attempted — when a precondition already
   rules it out: the [2^n] table cannot exist (size or memory ceiling),
   the algorithm does not apply (IKKBZ needs a tree query), or the
   deadline is already gone.  [Greedy] is the terminal guarantee: it is
   [O(n^3)] with no table and always runs, deadline or not, so the
   cascade always ends with a plan. *)
let eligibility ~budget tier catalog graph =
  let n = Catalog.n catalog in
  let table_ok () =
    if n > Dp_table.max_relations then
      Some (Too_large { n; limit = Dp_table.max_relations })
    else if not (Budget.admits_table budget ~n) then
      Some
        (Memory
           {
             needed_bytes = Budget.table_bytes ~n ();
             limit_bytes = Option.value ~default:max_int (Budget.max_table_bytes budget);
           })
    else None
  in
  match tier with
  | Greedy -> None
  | _ when Budget.expired budget -> Some Deadline_expired
  | Exact | Thresholded -> table_ok ()
  | Hybrid_windows -> None
  | Ikkbz -> if B.Ikkbz.is_tree graph then None else Some (Not_applicable "join graph is not a tree")

let run_tier ?(num_domains = 1) ~budget ~seed tier model catalog graph =
  let interrupt = Budget.interrupt budget in
  (* A plan with an overflowed (infinite) cost estimate is still a valid
     join order and better than nothing; only NaN — or no plan at all —
     counts as failure. *)
  let finish = function
    | Some plan, cost when not (Float.is_nan cost) -> Ok (plan, cost)
    | _ -> Error No_finite_plan
  in
  match tier with
  | Exact -> (
    (* With several domains the DP runs rank-parallel; the result — cost
       and plan — is bit-identical to the sequential search, so the tier
       keeps its "exact" meaning (Budget.interrupt is domain-safe). *)
    let optimize () =
      if num_domains > 1 then
        Parallel_blitzsplit.optimize_join ~num_domains ~interrupt model catalog graph
      else Blitzsplit.optimize_join ~interrupt model catalog graph
    in
    match optimize () with
    | result -> finish (Blitzsplit.best_plan result, Blitzsplit.best_cost result)
    | exception Blitzsplit.Interrupted -> Error Deadline)
  | Thresholded -> (
    (* Seed the threshold from the greedy bound: greedy's cost is an upper
       bound on the optimum, so the first pass prunes aggressively yet
       cannot fail for numeric reasons alone. *)
    let _, greedy_cost = B.Greedy.optimize model catalog graph in
    let threshold =
      if Float.is_finite greedy_cost && greedy_cost > 0.0 then greedy_cost *. (1.0 +. 1e-9)
      else 1e6
    in
    let optimize () =
      if num_domains > 1 then
        Parallel_blitzsplit.threshold_optimize_join ~num_domains ~interrupt ~threshold model
          catalog graph
      else Threshold.optimize_join ~interrupt ~threshold model catalog graph
    in
    match optimize () with
    | outcome ->
      finish
        ( Blitzsplit.best_plan outcome.Threshold.result,
          Blitzsplit.best_cost outcome.Threshold.result )
    | exception Blitzsplit.Interrupted -> Error Deadline)
  | Hybrid_windows ->
    (* Anytime: an interrupt returns the chain's best so far, which is at
       worst the greedy starting plan — so this tier aborts only when the
       numbers themselves are beyond repair. *)
    let rng = Rng.create ~seed in
    let (plan, cost), _stats = Hybrid.optimize ~rng ~interrupt model catalog graph in
    finish (Some plan, cost)
  | Ikkbz ->
    let r = B.Ikkbz.optimize catalog graph in
    (* IKKBZ optimizes C_out; report the plan's cost under the session
       model for an honest cross-tier comparison. *)
    finish (Some r.B.Ikkbz.plan, Plan.cost model catalog graph r.B.Ikkbz.plan)
  | Greedy ->
    let plan, cost = B.Greedy.optimize model catalog graph in
    finish (Some plan, cost)

let optimize ?(cascade = default_cascade) ?(seed = 1) ?num_domains ~budget model catalog graph =
  let t_start = Budget.elapsed_ms budget in
  let rec go attempts = function
    | [] -> Error (List.rev attempts)
    | tier :: rest -> (
      match eligibility ~budget tier catalog graph with
      | Some reason ->
        go ({ tier; status = Skipped reason; elapsed_ms = 0.0 } :: attempts) rest
      | None -> (
        let t0 = Budget.elapsed_ms budget in
        match run_tier ?num_domains ~budget ~seed tier model catalog graph with
        | Ok (plan, cost) ->
          let elapsed_ms = Budget.elapsed_ms budget -. t0 in
          let attempts = List.rev ({ tier; status = Produced cost; elapsed_ms } :: attempts) in
          Ok
            ( plan,
              {
                winner = tier;
                winner_cost = cost;
                attempts;
                total_ms = Budget.elapsed_ms budget -. t_start;
              } )
        | Error failure ->
          let elapsed_ms = Budget.elapsed_ms budget -. t0 in
          go ({ tier; status = Aborted failure; elapsed_ms } :: attempts) rest))
  in
  go [] cascade

(** The graceful-degradation cascade: exact search first, cheaper
    orderings when budgets bite.

    The paper's Section 6.4 already treats "no plan found" as a
    recoverable condition (a failed thresholded pass is retried); this
    module generalizes that stance to the whole optimizer portfolio.
    Tiers are tried in order — exact blitzsplit, the multi-pass
    threshold driver, the Section 7 hybrid (DP windows inside randomized
    search), IKKBZ for tree queries, the greedy heuristic, and finally
    the estimate-free Simpli-Squared structural order — and the first to
    produce a plan wins.  Every decision is recorded as
    {e provenance}: which tier produced the plan, why each earlier tier
    was skipped (table too large for the memory ceiling, algorithm not
    applicable, deadline already gone) or aborted (deadline fired
    mid-search), and how much wall clock each consumed.

    Greedy is [O(n^3)] with no [2^n] table and runs even with an
    expired deadline, so a sanitized input always yields a plan; the
    estimate-free tier below it reads no statistics at all, covering
    the one failure mode greedy shares with every cost-based method —
    a catalog whose numbers are fabricated. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Arena = Blitz_core.Arena
module Pool = Blitz_parallel.Pool

type tier =
  | Exact  (** Unthresholded blitzsplit: the [O(3^n)] optimum. *)
  | Thresholded
      (** Threshold multi-pass (Section 6.4), seeded from the greedy
          cost bound so the first pass prunes hard. *)
  | Dpccp
      (** Connectivity-pruned DP: the product-free optimum at csg-cmp
          cost.  Polynomial on sparse graphs and table-free beyond
          [n = 20], so it survives the size caps and memory ceilings
          that skip the full-space DP tiers; skipped on disconnected
          graphs (its plan space is empty there). *)
  | Hybrid_windows  (** Section 7 hybrid: anytime, any [n]. *)
  | Ikkbz  (** Tree queries only; re-costed under the session model. *)
  | Greedy  (** Terminal guarantee; always runs. *)
  | Estimate_free
      (** Simpli-Squared structural order: reads no statistics, so it
          works even when the catalog's numbers are fabricated.
          Deadline-exempt, like greedy. *)

val tier_name : tier -> string
(** Stable lowercase identifier ([{!Estimate_free} ↦ "simpli-squared"])
    — the name provenance rendering, serve responses and the CLI all
    print, and the registry dispatches on. *)

val default_cascade : tier list
(** [Exact; Thresholded; Dpccp; Hybrid_windows; Ikkbz; Greedy;
    Estimate_free]. *)

val fabricated_cascade : tier list
(** [Estimate_free; Greedy] — the cascade for catalogs whose
    cardinalities {!Sanitize} had to fabricate: cost-based tiers would
    optimize placeholder numbers at exponential price, so structure-only
    planning leads (see {!Sanitize.fabricated_stats}). *)

type skip_reason =
  | Too_large of { n : int; limit : int }  (** Beyond [Dp_table.max_relations]. *)
  | Memory of { needed_bytes : int; limit_bytes : int }
  | Deadline_expired
  | Not_applicable of string

val skip_message : skip_reason -> string
(** One-line human rendering of a {!skip_reason}, as it appears in a
    provenance trail (e.g. ["skipped (deadline expired)"] without the
    prefix — {!pp_attempt} adds the framing). *)

type failure =
  | Deadline  (** The cancellation probe fired mid-search. *)
  | No_finite_plan  (** The tier ran but produced no usable plan. *)

val failure_message : failure -> string
(** One-line human rendering of a {!failure}, same contract as
    {!skip_message}. *)

type status = Produced of float  (** Plan cost. *) | Aborted of failure | Skipped of skip_reason
(** What one tier did: produced a plan (with its cost), started but
    gave up, or was ruled out before running. *)

type attempt = { tier : tier; status : status; elapsed_ms : float }
(** One cascade step with the wall clock it consumed (0 for skips). *)

type provenance = {
  winner : tier;
  winner_cost : float;
  attempts : attempt list;  (** In cascade order, up to and including the winner. *)
  total_ms : float;
}

val pp_attempt : Format.formatter -> attempt -> unit
(** One line: tier name, outcome, elapsed milliseconds. *)

val pp_provenance : Format.formatter -> provenance -> unit
(** The full trail, one {!pp_attempt} line per attempt plus the winner
    and total time — what the CLI prints under [--degrade]. *)

val eligibility :
  ?arena:Arena.t ->
  ?cache_bytes:int ->
  budget:Budget.t ->
  tier ->
  Catalog.t ->
  Join_graph.t ->
  skip_reason option
(** [None] when the tier may be attempted under the budget's current
    state; otherwise why it must be skipped.  The checks are read off
    the tier's registry-entry capability metadata ([Blitz_engine]) —
    size cap, table footprint, tree-only, deadline exemption — not
    duplicated here.  {!Greedy} and {!Estimate_free} are always
    eligible (deadline-exempt).
    With [arena] the memory ceiling charges the session's would-be
    resident high-water mark ({!Arena.bytes_after}) rather than the
    per-call table size; [cache_bytes] (a resident plan-cache footprint,
    default 0) is added to the charge so cache memory counts under the
    same ceiling as the DP table. *)

val run_tier :
  ?num_domains:int ->
  ?arena:Arena.t ->
  ?pool:Pool.t ->
  ?multiway:bool ->
  budget:Budget.t ->
  seed:int ->
  tier ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  (Plan.t * float, failure) result
(** Run one tier in isolation (eligibility is the caller's business —
    see {!eligibility}).  [seed] feeds the hybrid tier's generator.
    With [num_domains > 1] (default 1) the {!Exact} and {!Thresholded}
    DP tiers run rank-parallel on that many domains — bit-identical
    results, so tier semantics are unchanged; the other tiers are
    table-free fallbacks and stay single-domain.  Exposed so tests can
    compare every tier's plan against the exact optimum.  Tiers are
    dispatched through the [Blitz_engine] registry; [arena]/[pool]
    plug a session's pooled DP table and spawned domain pool in
    (bit-identical results either way). *)

val optimize :
  ?cascade:tier list ->
  ?seed:int ->
  ?num_domains:int ->
  ?arena:Arena.t ->
  ?pool:Pool.t ->
  ?cache_bytes:int ->
  ?multiway:bool ->
  budget:Budget.t ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  (Plan.t * provenance, attempt list) result
(** Walk the cascade under the (already armed) budget.  [Error attempts]
    — possible only with a custom [cascade] that omits {!Greedy} — still
    reports why every tier declined.  [num_domains] is forwarded to the
    DP tiers (see {!run_tier}); [cache_bytes] to {!eligibility};
    [multiway] to every tier's ctx — capable tiers (exact, thresholded,
    dpccp) plan n-ary nodes, the rest ignore it, so the cascade stays
    valid top to bottom. *)

(** Input hardening for optimizer statistics.

    A production optimizer receives its catalog and join graph from the
    outside world — parsers, statistics collectors, remote metadata
    services — any of which can deliver NaN cardinalities, selectivities
    above 1, edges to relations that do not exist, or duplicates.  The
    raising constructors in {!Blitz_catalog.Catalog} and
    {!Blitz_graph.Join_graph} stop at the first defect with an untyped
    exception; this module instead scans the whole input, classifies
    every defect, repairs what can be repaired soundly (under an explicit
    policy), and returns either clean optimizer inputs plus the list of
    repairs performed, or the full list of irreparable issues. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

type issue =
  | Empty_catalog
  | Too_many_relations of { count : int; limit : int }
  | Empty_relation_name of { index : int }
  | Duplicate_relation_name of { name : string }
  | Bad_cardinality of { name : string; card : float }
      (** NaN, infinite, zero or negative, under a policy that does not
          default cardinalities. *)
  | Cardinality_defaulted of { name : string; card : float; substitute : float }
      (** The invalid [card] was replaced by [substitute] — the
          geometric mean of the valid cardinalities (1 when none
          exist).  A repair note, and a loud one: the substitute is
          {e fabricated}, so cost-based optimization over it is
          guesswork (see {!fabricated_stats}). *)
  | Edge_endpoint_out_of_range of { i : int; j : int; n : int }
  | Self_edge of { i : int }
  | Duplicate_edge of { i : int; j : int }
  | Bad_selectivity of { i : int; j : int; sel : float }  (** NaN, infinite, zero or negative. *)
  | Selectivity_above_one of { i : int; j : int; sel : float }
  | Size_mismatch of { catalog_n : int; graph_n : int }

val issue_message : issue -> string
val pp_issue : Format.formatter -> issue -> unit

type policy = {
  clamp_selectivities : bool;
      (** Pin selectivities above 1 to [1.0] (recorded as a repair)
          instead of rejecting the input. *)
  drop_bad_edges : bool;
      (** Drop unusable edges — bad endpoints, self-edges, duplicates,
          NaN/infinite/non-positive selectivities — instead of
          rejecting.  Sound: an absent edge behaves as selectivity 1, so
          dropping only loses pruning information, never validity. *)
  default_cardinalities : bool;
      (** Replace NaN/±infinity/zero/negative cardinalities with the
          geometric mean of the valid ones instead of rejecting,
          recording a {!constructor-Cardinality_defaulted} repair per
          substitution.  Unlike edge drops this is {e not} sound for
          cost-based optimization — it merely keeps the query plannable;
          callers should degrade to estimate-free planning when
          {!fabricated_stats} holds. *)
}

val strict : policy  (** Repair nothing; every defect is an error. *)

val lenient : policy  (** Repair everything repairable (the default). *)

type clean = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  repairs : issue list;  (** What {!lenient} mode fixed up, in input order. *)
}

val check :
  ?policy:policy ->
  relations:(string * float) list ->
  edges:(int * int * float) list ->
  unit ->
  (clean, issue list) result
(** Validate raw statistics.  [Error issues] lists {e all} irreparable
    defects (not just the first).  Name defects in [relations] are
    always irreparable; cardinality defects are repaired exactly when
    the policy's [default_cardinalities] holds. *)

val fabricated_stats : issue list -> bool
(** Whether the repair list contains a fabricated statistic
    ({!constructor-Cardinality_defaulted}) — i.e. the cleaned catalog's
    numbers are placeholders, not estimates, and cost-based tiers run
    on them produce arbitrary plans.  The Guard cascade switches to the
    estimate-free tier when this holds. *)

val check_pair : Catalog.t -> Join_graph.t -> (clean, issue list) result
(** Validate already-constructed inputs — only cross-input invariants
    (the size match) remain to check, since the constructors enforce the
    rest. *)

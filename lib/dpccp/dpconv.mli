(** DPconv: join ordering by subset-sum convolution under [C_max].

    The layered-convolution idea of Stoian & Kipf, "DPconv: Super-
    Polynomially Faster Join Ordering" (arXiv 2409.08013): for the
    bottleneck objective [C_max] — minimize the largest intermediate
    cardinality any join materializes — the DP over partitions collapses
    to feasibility questions "can the full set be assembled from pieces
    whose cardinality never exceeds tau?", each answerable for {e all}
    subsets at once by ranked subset convolution over the boolean
    achievability indicator in [O(n^2 2^n)], beating the [O(3^n)]
    partition enumeration super-polynomially.  A binary search over the
    [<= 2^n] distinct candidate cardinalities then pins the optimal tau
    with [O(n)] convolution rounds.

    Cartesian products are allowed (achievability does not consult the
    join graph's edges), so disconnected graphs are handled — the
    complement of {!Dpccp}'s restriction.  The bottleneck objective is
    exact for [C_max] only; the registry entry re-costs the returned
    plan under the session model for honest cross-method comparison,
    like the IKKBZ baseline. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan

type t = {
  plan : Plan.t;  (** A plan attaining the optimal bottleneck. *)
  bottleneck : float;
      (** The minimized maximum intermediate cardinality ([0] for a
          single relation: no joins, no intermediates). *)
  checks : int;  (** Feasibility checks (convolution rounds) run. *)
}

val max_relations : int
(** Hard cap on [n] (20): the ranked layers cost [(n+3) * 8 * 2^n]
    bytes. *)

val estimate_bytes : n:int -> int
(** Peak working-set estimate for capability metadata. *)

val optimize : ?interrupt:(unit -> bool) -> Catalog.t -> Join_graph.t -> t
(** Minimize the bottleneck intermediate cardinality.  [interrupt] is
    polled once per convolution layer and raises
    {!Blitz_core.Blitzsplit.Interrupted}.  Raises [Invalid_argument] on
    a catalog/graph size mismatch or [n > max_relations]. *)

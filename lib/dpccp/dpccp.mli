(** DPccp: connectivity-pruned exact bushy DP (no Cartesian products).

    The DP driver over {!Ccp_enum}'s csg-cmp pairs.  Where blitzsplit
    spends [O(3^n)] split-loop iterations regardless of the join graph,
    this driver does exactly one fold per csg-cmp pair — [(n^3 - n)/6]
    on chains, polynomial on every bounded-degree topology — at the
    price of excluding plans containing Cartesian products.  On sparse
    graphs that trades an exponent for (usually) nothing: the optimum
    rarely crosses an empty edge when predicates are selective.

    {b Two backends.}
    - {e Dense} ([n <= dense_limit]): the pooled blitzsplit
      {!Blitz_core.Dp_table} (arena-reusable), with cardinalities filled
      by the very same fan-recurrence sweep the exact optimizer runs, in
      the same order.  Consequence, checked by the test suite: whenever
      blitzsplit's optimal plan is product-free, the cost returned here
      is {e bitwise equal} to blitzsplit's; otherwise it is [>=].
    - {e Sparse} ([n > dense_limit], up to {!max_relations}): hash-indexed
      columns storing connected sets only, so memory follows the csg
      count (polynomial on sparse graphs) instead of [2^n] — this is
      what pushes chains past [n = 24] where the dense table tops out.
      Cardinalities are computed canonically per set (deterministic, but
      not bitwise-matched to the recurrence).

    On a disconnected join graph the product-free plan space contains no
    complete plan: the result carries [plan = None], [cost = infinity].
    The registry refuses dispatch upfront via the [connected_only]
    capability. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table

type backend = Dense | Sparse

type t = {
  plan : Plan.t option;  (** [None] iff the graph is disconnected. *)
  cost : float;  (** Cost of [plan]; [infinity] when [None]. *)
  table : Dp_table.t option;  (** The DP table (dense backend only). *)
  connected_sets : int;
      (** Connected sets materialized (singletons included) — the
          [O(2^n)]-vs-polynomial space story, equal to
          {!Ccp_enum.csg_count}. *)
  ccp_pairs : int;
      (** Csg-cmp pairs folded — the work metric to compare against
          blitzsplit's [3^n]-ish split-loop iterations. *)
  backend : backend;
}

val dense_limit : int
(** Largest [n] the [`Auto] backend serves from the dense table (20). *)

val max_relations : int
(** Hard cap on [n] for the sparse backend ({!Relset.max_width}). *)

val estimate_bytes : n:int -> int
(** Lower-bound memory estimate for capability metadata: the dense table
    up to {!dense_limit}; beyond it the sparse store's footprint follows
    the topology-dependent connected-set count, not [n] alone. *)

val optimize :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?interrupt:(unit -> bool) ->
  ?backend:[ `Auto | `Dense | `Sparse ] ->
  ?multiway:bool ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  t
(** Optimal product-free bushy plan.  [arena] pools the dense table
    exactly as for {!Blitz_core.Blitzsplit}; [counters] accumulates
    [ccp_pairs] (and improvement/kappa'' tallies) across calls;
    [interrupt] is polled every 1024 pairs and raises
    {!Blitz_core.Blitzsplit.Interrupted} — the degradation cascade
    catches it like any other exact-tier timeout.  [`Dense] forces the
    table backend (requires [n <= Dp_table.max_relations]); [`Sparse]
    forces the hash-store; [`Auto] (default) switches at
    {!dense_limit}.  [~multiway:true] additionally considers an n-ary
    AGM-costed candidate ({!Blitz_core.Multiway}) on each
    2-edge-connected set, lazily at the set's first use as a component
    (the enumeration-order invariant makes that the earliest point its
    binary cost is final); acyclic graphs are structurally unaffected.
    Raises [Invalid_argument] on a catalog/graph size mismatch or
    [n > max_relations]. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Arena = Blitz_core.Arena
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table
module Split_loop = Blitz_core.Split_loop
module Blitzsplit = Blitz_core.Blitzsplit
module Multiway = Blitz_core.Multiway
module Perf = Blitz_obs.Perf

type backend = Dense | Sparse

type t = {
  plan : Plan.t option;
  cost : float;
  table : Dp_table.t option;
  connected_sets : int;
  ccp_pairs : int;
  backend : backend;
}

let dense_limit = 20
let max_relations = Relset.max_width

let estimate_bytes ~n = Dp_table.estimate_bytes ~n:(min n dense_limit) ()

(* The pair enumeration is the expensive part here — the csg-cmp count on
   sparse graphs is polynomial, so a probe every 1024 pairs costs nothing
   while keeping cancellation latency comparable to blitzsplit's
   64-subset stride (whose per-subset split loops are far heavier). *)
let probe_mask = 1023

let invariant s1 s2 =
  failwith
    (Printf.sprintf
       "Dpccp: csg-cmp pair (%#x, %#x) emitted before a component was costed — \
        enumeration-order invariant violated"
       s1 s2)

(* Shared pair fold, parameterized over the cost/card/aux accessors of the
   two backends.  The candidate expression reproduces the split loop's
   float associativity exactly — [(cl +. cr) +. kappa''] then [+. kappa'] —
   so that on product-free optima the stored minima are bitwise equal to
   blitzsplit's (comparing after the [+. kp] shift preserves the minimum:
   [kp] is constant per subset and [+.] is monotone). *)

(* ---- dense backend: the pooled blitzsplit table ---- *)

let fold_dense tbl (model : Cost_model.t) (ctr : Counters.t) ~probe ~mw_check graph =
  let cost = tbl.Dp_table.cost
  and card = tbl.Dp_table.card
  and aux = tbl.Dp_table.aux
  and best_lhs = tbl.Dp_table.best_lhs
  and pair = tbl.Dp_table.pair in
  let k_prime = model.Cost_model.k_prime
  and k_dprime = model.Cost_model.k_dprime
  and dprime_is_zero = model.Cost_model.dprime_is_zero in
  let sets = ref 0 in
  Ccp_enum.iter_ccp graph (fun s1 s2 ->
      ctr.Counters.ccp_pairs <- ctr.Counters.ccp_pairs + 1;
      probe ctr.Counters.ccp_pairs;
      (* The enumeration-order invariant — every pair producing a set
         precedes any pair consuming it — makes "first consumed as a
         component" the earliest point a set's binary cost is final, so
         the lazy multiway check fires exactly there (and propagates its
         improvement into every plan built on top). *)
      mw_check s1;
      mw_check s2;
      let cl = Array.unsafe_get cost s1 and cr = Array.unsafe_get cost s2 in
      if not (cl < Float.infinity && cr < Float.infinity) then invariant s1 s2;
      let s = s1 lor s2 in
      let out = Array.unsafe_get card s in
      let kp = k_prime out in
      let oprnd = cl +. cr in
      let was = Array.unsafe_get cost s in
      let lcard = Array.unsafe_get card s1 and rcard = Array.unsafe_get card s2 in
      let laux = Array.unsafe_get aux s1 and raux = Array.unsafe_get aux s2 in
      let d1 =
        if dprime_is_zero then oprnd
        else begin
          ctr.Counters.dprime_evals <- ctr.Counters.dprime_evals + 1;
          oprnd +. k_dprime ~out ~lcard ~rcard ~laux ~raux
        end
      in
      let t1 = d1 +. kp in
      if t1 < Array.unsafe_get cost s then begin
        ctr.Counters.improvements <- ctr.Counters.improvements + 1;
        Array.unsafe_set cost s t1;
        Array.unsafe_set pair (2 * s) t1;
        Array.unsafe_set best_lhs s s1
      end;
      (* The enumeration emits unordered pairs; an asymmetric kappa''
         (e.g. under min-of combinations) needs the mirrored orientation
         costed too.  Symmetric models get it free via dprime_is_zero or
         produce the same value, in which case strict [<] keeps t1's. *)
      if not dprime_is_zero then begin
        ctr.Counters.dprime_evals <- ctr.Counters.dprime_evals + 1;
        let t2 =
          oprnd +. k_dprime ~out ~lcard:rcard ~rcard:lcard ~laux:raux ~raux:laux +. kp
        in
        if t2 < Array.unsafe_get cost s then begin
          ctr.Counters.improvements <- ctr.Counters.improvements + 1;
          Array.unsafe_set cost s t2;
          Array.unsafe_set pair (2 * s) t2;
          Array.unsafe_set best_lhs s s2
        end
      end;
      if was = Float.infinity && Array.unsafe_get cost s < Float.infinity then incr sets);
  !sets

let optimize_dense ?arena ~mw ~ctr ~probe model catalog graph =
  let n = Catalog.n catalog in
  let tbl =
    match arena with
    | Some a -> Arena.acquire a ~with_pi_fan:true n
    | None -> Dp_table.create ~with_pi_fan:true n
  in
  let mw_check =
    match mw with
    | None -> fun _ -> ()
    | Some m ->
      let seen = Hashtbl.create 256 in
      fun s ->
        if s land (s - 1) <> 0 && not (Hashtbl.mem seen s) then begin
          Hashtbl.add seen s ();
          Multiway.consider m tbl ctr ~threshold:Float.infinity s
        end
  in
  Split_loop.init_singletons tbl model catalog;
  (* Full-lattice cardinality sweep through the very same fan recurrence
     blitzsplit runs, in the same increasing-subset order: the recurrence
     for a connected set reads fans of subsets that need not be connected,
     and running it over the whole lattice is what makes every card (and
     aux memo) bitwise identical to the exact optimizer's. *)
  let last = (1 lsl n) - 1 in
  for s = 3 to last do
    if s land (s - 1) <> 0 then begin
      if s land 4095 = 0 then probe s;
      Split_loop.compute_properties_join tbl model graph s
    end
  done;
  let sets =
    Perf.timed_rate Perf.dpccp_ns_per_pair
      ~events:(fun () -> ctr.Counters.ccp_pairs)
      (fun () -> fold_dense tbl model ctr ~probe ~mw_check graph)
  in
  let full = last in
  (* The full set is never consumed as a component; give it its check. *)
  mw_check full;
  let cost = Dp_table.cost tbl full in
  let plan =
    if Float.is_finite cost then Multiway.extract_plan ?multiway:mw tbl full else None
  in
  {
    plan;
    cost;
    table = Some tbl;
    connected_sets = n + sets;
    ccp_pairs = ctr.Counters.ccp_pairs;
    backend = Dense;
  }

(* ---- sparse backend: hash-indexed columns over connected sets only ---- *)

module Store = struct
  type t = {
    idx : (int, int) Hashtbl.t;
    mutable card : float array;
    mutable cost : float array;
    mutable aux : float array;
    mutable lhs : int array;
    mutable len : int;
  }

  let create hint =
    let cap = max 16 hint in
    {
      idx = Hashtbl.create cap;
      card = Array.make cap 0.0;
      cost = Array.make cap 0.0;
      aux = Array.make cap 0.0;
      lhs = Array.make cap 0;
      len = 0;
    }

  let grow t =
    let extend mk a = Array.append a (mk (Array.length a)) in
    t.card <- extend (fun l -> Array.make l 0.0) t.card;
    t.cost <- extend (fun l -> Array.make l 0.0) t.cost;
    t.aux <- extend (fun l -> Array.make l 0.0) t.aux;
    t.lhs <- extend (fun l -> Array.make l 0) t.lhs

  let add t s ~card ~aux ~cost =
    if t.len = Array.length t.card then grow t;
    let i = t.len in
    t.len <- i + 1;
    t.card.(i) <- card;
    t.cost.(i) <- cost;
    t.aux.(i) <- aux;
    t.lhs.(i) <- 0;
    Hashtbl.add t.idx s i;
    i

  let find_opt t s = Hashtbl.find_opt t.idx s
end

(* Canonical deterministic cardinality: member cardinalities in ascending
   index order, then for each member the selectivities against every
   earlier member, also ascending.  O(|s|^2) float multiplies per stored
   set — irrelevant next to the enumeration, and independent of which ccp
   pair first produced the set. *)
let sparse_card catalog graph s =
  let c = ref 1.0 in
  let rest = ref s in
  while !rest <> 0 do
    let b = !rest land - !rest in
    let j = Relset.min_elt b in
    c := !c *. Catalog.card catalog j;
    let earlier = ref (s land (b - 1)) in
    while !earlier <> 0 do
      let eb = !earlier land - !earlier in
      let i = Relset.min_elt eb in
      if Join_graph.has_edge graph i j then c := !c *. Join_graph.selectivity graph i j;
      earlier := !earlier lxor eb
    done;
    rest := !rest lxor b
  done;
  !c

let rec sparse_extract ?multiway st s =
  if s land (s - 1) = 0 then Plan.Leaf (Relset.min_elt s)
  else
    match Store.find_opt st s with
    | None -> failwith "Dpccp: sparse extraction hit an unstored set"
    | Some i ->
      let l = st.Store.lhs.(i) in
      if l = s then
        (* Multiway sentinel (same convention as the dense table). *)
        match Option.bind multiway (fun m -> Multiway.plan_of m s) with
        | Some p -> p
        | None -> failwith "Dpccp: sparse extraction hit a multiway sentinel without a cover"
      else
        Plan.Join (sparse_extract ?multiway st l, sparse_extract ?multiway st (s lxor l))

let fold_sparse st (model : Cost_model.t) (ctr : Counters.t) ~probe ~mw_check catalog graph =
  let k_prime = model.Cost_model.k_prime
  and k_dprime = model.Cost_model.k_dprime
  and dprime_is_zero = model.Cost_model.dprime_is_zero in
  Ccp_enum.iter_ccp graph (fun s1 s2 ->
      ctr.Counters.ccp_pairs <- ctr.Counters.ccp_pairs + 1;
      probe ctr.Counters.ccp_pairs;
      mw_check s1;
      mw_check s2;
      let i1 = match Store.find_opt st s1 with Some i -> i | None -> invariant s1 s2
      and i2 = match Store.find_opt st s2 with Some i -> i | None -> invariant s1 s2 in
      let cl = st.Store.cost.(i1) and cr = st.Store.cost.(i2) in
      if not (cl < Float.infinity && cr < Float.infinity) then invariant s1 s2;
      let s = s1 lor s2 in
      let i =
        match Store.find_opt st s with
        | Some i -> i
        | None ->
          let card = sparse_card catalog graph s in
          Store.add st s ~card ~aux:(model.Cost_model.aux card) ~cost:Float.infinity
      in
      let out = st.Store.card.(i) in
      let kp = k_prime out in
      let oprnd = cl +. cr in
      let lcard = st.Store.card.(i1) and rcard = st.Store.card.(i2) in
      let laux = st.Store.aux.(i1) and raux = st.Store.aux.(i2) in
      let d1 =
        if dprime_is_zero then oprnd
        else begin
          ctr.Counters.dprime_evals <- ctr.Counters.dprime_evals + 1;
          oprnd +. k_dprime ~out ~lcard ~rcard ~laux ~raux
        end
      in
      let t1 = d1 +. kp in
      if t1 < st.Store.cost.(i) then begin
        ctr.Counters.improvements <- ctr.Counters.improvements + 1;
        st.Store.cost.(i) <- t1;
        st.Store.lhs.(i) <- s1
      end;
      if not dprime_is_zero then begin
        ctr.Counters.dprime_evals <- ctr.Counters.dprime_evals + 1;
        let t2 =
          oprnd +. k_dprime ~out ~lcard:rcard ~rcard:lcard ~laux:raux ~raux:laux +. kp
        in
        if t2 < st.Store.cost.(i) then begin
          ctr.Counters.improvements <- ctr.Counters.improvements + 1;
          st.Store.cost.(i) <- t2;
          st.Store.lhs.(i) <- s2
        end
      end)

let optimize_sparse ~mw ~ctr ~probe model catalog graph =
  let n = Catalog.n catalog in
  let st = Store.create (16 * n * n) in
  for i = 0 to n - 1 do
    let c = Catalog.card catalog i in
    ignore (Store.add st (1 lsl i) ~card:c ~aux:(model.Cost_model.aux c) ~cost:0.0)
  done;
  let mw_check =
    match mw with
    | None -> fun _ -> ()
    | Some m ->
      let seen = Hashtbl.create 256 in
      fun s ->
        if s land (s - 1) <> 0 && not (Hashtbl.mem seen s) then begin
          Hashtbl.add seen s ();
          match Store.find_opt st s with
          | None -> ()
          | Some i -> (
            match
              Multiway.try_candidate m ~out:st.Store.card.(i) ~current:st.Store.cost.(i)
                ~threshold:Float.infinity s
            with
            | Some c ->
              st.Store.cost.(i) <- c;
              st.Store.lhs.(i) <- s;
              ctr.Counters.multiway_wins <- ctr.Counters.multiway_wins + 1
            | None -> ())
        end
  in
  Perf.timed_rate Perf.dpccp_ns_per_pair
    ~events:(fun () -> ctr.Counters.ccp_pairs)
    (fun () -> fold_sparse st model ctr ~probe ~mw_check catalog graph);
  let full = (1 lsl n) - 1 in
  mw_check full;
  let cost, plan =
    match Store.find_opt st full with
    | Some i when Float.is_finite st.Store.cost.(i) ->
      (st.Store.cost.(i), Some (sparse_extract ?multiway:mw st full))
    | _ -> (Float.infinity, None)
  in
  {
    plan;
    cost;
    table = None;
    connected_sets = st.Store.len;
    ccp_pairs = ctr.Counters.ccp_pairs;
    backend = Sparse;
  }

(* ---- front door ---- *)

let optimize ?arena ?counters ?interrupt ?(backend = `Auto) ?(multiway = false) model catalog
    graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then
    invalid_arg
      (Printf.sprintf "Dpccp: graph over %d relations, catalog has %d" (Join_graph.n graph) n);
  if n > max_relations then
    invalid_arg (Printf.sprintf "Dpccp: %d relations exceed the %d-relation cap" n max_relations);
  let dense =
    match backend with
    | `Dense ->
      if n > Dp_table.max_relations then
        invalid_arg
          (Printf.sprintf "Dpccp: dense backend capped at %d relations" Dp_table.max_relations);
      true
    | `Sparse -> false
    | `Auto -> n <= dense_limit
  in
  let ctr = match counters with Some c -> c | None -> Counters.create () in
  ctr.Counters.passes <- ctr.Counters.passes + 1;
  let probe =
    match interrupt with
    | None -> fun _ -> ()
    | Some stop -> fun p -> if p land probe_mask = 0 && stop () then raise Blitzsplit.Interrupted
  in
  let mw = if multiway then Some (Multiway.create catalog graph) else None in
  if dense then optimize_dense ?arena ~mw ~ctr ~probe model catalog graph
  else optimize_sparse ~mw ~ctr ~probe model catalog graph

module Relset = Blitz_bitset.Relset
module Join_graph = Blitz_graph.Join_graph

(* The adjacency masks are copied out of the graph once per call so the
   recursion reads a flat int array with no bounds checks; everything
   below works on raw ints (subsets-as-integers, Section 4.1 of the
   paper) and allocates nothing in the enumeration itself. *)
let neighbor_masks graph =
  let n = Join_graph.n graph in
  Array.init n (fun i -> Join_graph.neighbors graph i)

let neighborhood_masks nb s x =
  let acc = ref 0 and rest = ref s in
  while !rest <> 0 do
    let b = !rest land - !rest in
    acc := !acc lor Array.unsafe_get nb (Relset.min_elt b);
    rest := !rest lxor b
  done;
  !acc land lnot (s lor x)

let neighborhood graph s x = neighborhood_masks (neighbor_masks graph) s x

(* EnumerateCsgRec (Moerkotte & Neumann 2006): grow the connected set
   [s] by every nonempty subset of its free neighborhood, emitting each
   enlargement, then recurse into each enlargement with the whole
   neighborhood forbidden so no connected set is produced twice.  The
   two passes — emit all level-k enlargements, then descend — are what
   guarantee that every connected set is emitted after all its
   same-minimum connected subsets, which in turn is what lets the DP
   driver process csg-cmp pairs the moment they appear (no collect +
   sort-by-size pass, the baseline enumerator's allocation hotspot). *)
let rec csg_rec nb emit s x =
  let nbh = neighborhood_masks nb s x in
  if nbh <> 0 then begin
    (* Nonempty subsets of [nbh] in dilated counting order, the
       successor trick of Section 4.2; the full neighborhood comes
       last, exactly as [Relset.iter_proper_subsets] + the set itself. *)
    let sub = ref (nbh land -nbh) in
    let go = ref true in
    while !go do
      emit (s lor !sub);
      if !sub = nbh then go := false else sub := nbh land (!sub - nbh)
    done;
    let x' = x lor nbh in
    let sub = ref (nbh land -nbh) in
    let go = ref true in
    while !go do
      csg_rec nb emit (s lor !sub) x';
      if !sub = nbh then go := false else sub := nbh land (!sub - nbh)
    done
  end

(* EnumerateCsg: start from each singleton {i}, i = n-1 downto 0, with
   all smaller indexes forbidden — the canonical "B_i" start sets. *)
let iter_csg_from nb i emit =
  let s = 1 lsl i in
  emit s;
  csg_rec nb emit s ((1 lsl (i + 1)) - 1)

let iter_csg graph emit =
  let nb = neighbor_masks graph in
  for i = Array.length nb - 1 downto 0 do
    iter_csg_from nb i emit
  done

(* EnumerateCmp: connected subgraphs of the complement adjacent to
   [s1], canonically those whose minimum element exceeds [min s1]. *)
let iter_cmp nb n emit s1 =
  let x = ((1 lsl (Relset.min_elt s1 + 1)) - 1) lor s1 in
  let nbh = neighborhood_masks nb s1 x in
  if nbh <> 0 then
    for i = n - 1 downto 0 do
      if nbh land (1 lsl i) <> 0 then begin
        let s = 1 lsl i in
        emit s;
        let bi = ((1 lsl (i + 1)) - 1) land nbh in
        csg_rec nb emit s (x lor bi)
      end
    done

let iter_ccp graph f =
  let nb = neighbor_masks graph in
  let n = Array.length nb in
  for i = n - 1 downto 0 do
    iter_csg_from nb i (fun s1 -> iter_cmp nb n (fun s2 -> f s1 s2) s1)
  done

let csg_count graph =
  let count = ref 0 in
  iter_csg graph (fun _ -> incr count);
  !count

let ccp_count graph =
  let count = ref 0 in
  iter_ccp graph (fun _ _ -> incr count);
  !count

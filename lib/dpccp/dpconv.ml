module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan
module Card_table = Blitz_core.Card_table
module Blitzsplit = Blitz_core.Blitzsplit

type t = { plan : Plan.t; bottleneck : float; checks : int }

(* Peak footprint is the (n+1) ranked zeta layers plus the convolution
   accumulator, all int arrays of 2^n slots — ~(n+3) * 8 * 2^n bytes,
   ~190 MB at the cap.  That, not time, is what pins max_relations. *)
let max_relations = 20

let estimate_bytes ~n =
  let words = (n + 3) * (1 lsl n) in
  if words >= max_int / 8 then max_int else (8 * words) + (1 lsl n)

(* In-place zeta / Möbius transforms over the subset lattice (Yates'
   per-dimension sweeps).  [mobius] is only ever applied to sums of
   pointwise products of zeta transforms, so all intermediates stay
   nonnegative; counts are bounded by n * 4^n < 2^62 at n = 20. *)
let zeta a n =
  let size = 1 lsl n in
  for i = 0 to n - 1 do
    let bit = 1 lsl i in
    for s = 0 to size - 1 do
      if s land bit <> 0 then
        Array.unsafe_set a s (Array.unsafe_get a s + Array.unsafe_get a (s lxor bit))
    done
  done

let mobius a n =
  let size = 1 lsl n in
  for i = 0 to n - 1 do
    let bit = 1 lsl i in
    for s = 0 to size - 1 do
      if s land bit <> 0 then
        Array.unsafe_set a s (Array.unsafe_get a s - Array.unsafe_get a (s lxor bit))
    done
  done

(* One feasibility check: is the full set achievable with every
   intermediate (non-singleton) cardinality <= tau?  Achievability is
   built rank by rank: a set S of size k is achievable iff
   card(S) <= tau and some disjoint achievable pair covers it, which the
   ranked subset convolution answers for all S of rank k at once —
   h_k = Möbius(sum_{i+j=k} zeta(f_i) * zeta(f_j)) read on the rank-k
   diagonal.  The Möbius inversion is load-bearing: the pre-inversion
   diagonal also counts overlapping pairs with |A| + |B| = |S| but
   A ∪ B ⊊ S, so testing it for positivity would over-accept. *)
let feasible ~n ~cards ~z ~h ~ach ~probe tau =
  let size = 1 lsl n in
  Bytes.fill ach 0 size '\000';
  for k = 1 to n do
    Array.fill z.(k) 0 size 0
  done;
  for i = 0 to n - 1 do
    let s = 1 lsl i in
    Bytes.unsafe_set ach s '\001';
    z.(1).(s) <- 1
  done;
  zeta z.(1) n;
  for k = 2 to n do
    probe ();
    Array.fill h 0 size 0;
    for i = 1 to k - 1 do
      let zi = z.(i) and zj = z.(k - i) in
      for s = 0 to size - 1 do
        Array.unsafe_set h s
          (Array.unsafe_get h s + (Array.unsafe_get zi s * Array.unsafe_get zj s))
      done
    done;
    mobius h n;
    let fk = z.(k) in
    for s = 0 to size - 1 do
      if
        Array.unsafe_get h s > 0
        && Relset.cardinal s = k
        && Array.unsafe_get cards s <= tau
      then begin
        Bytes.unsafe_set ach s '\001';
        Array.unsafe_set fk s 1
      end
    done;
    zeta fk n
  done;
  Bytes.get ach (size - 1) = '\001'

let achievable ach s = Bytes.get ach s = '\001'

(* Greedy top-down extraction over the achievability indicator: any
   split into two achievable halves works (achievability is closed under
   its own recursion), so take the first.  Subsets of [s \ lowest-bit]
   keep the lowest bit on the left — each unordered split tried once. *)
let rec extract ach s =
  if s land (s - 1) = 0 then Plan.Leaf (Relset.min_elt s)
  else begin
    let lo = s land -s in
    let rest = s lxor lo in
    let split = ref 0 in
    let t = ref 0 in
    (try
       while true do
         let a = lo lor !t in
         let b = s lxor a in
         if b <> 0 && achievable ach a && achievable ach b then begin
           split := a;
           raise Exit
         end;
         if !t = rest then raise Exit;
         t := (!t - rest) land rest
       done
     with Exit -> ());
    if !split = 0 then failwith "Dpconv: achievable set admits no achievable split";
    Plan.Join (extract ach !split, extract ach (s lxor !split))
  end

let optimize ?interrupt catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then
    invalid_arg
      (Printf.sprintf "Dpconv: graph over %d relations, catalog has %d" (Join_graph.n graph) n);
  if n > max_relations then
    invalid_arg (Printf.sprintf "Dpconv: %d relations exceed the %d-relation cap" n max_relations);
  if n = 1 then { plan = Plan.Leaf 0; bottleneck = 0.0; checks = 0 }
  else begin
    let probe =
      match interrupt with
      | None -> fun () -> ()
      | Some stop -> fun () -> if stop () then raise Blitzsplit.Interrupted
    in
    let cards = Card_table.compute catalog graph in
    let size = 1 lsl n in
    let full = size - 1 in
    (* Candidate bottlenecks: distinct non-singleton subset cardinalities
       at least card(full) — the final join always materializes the full
       result, so smaller taus are infeasible a priori. *)
    let floor = cards.(full) in
    let cand =
      let tbl = Hashtbl.create 1024 in
      for s = 3 to full do
        if s land (s - 1) <> 0 then begin
          let c = cards.(s) in
          if c >= floor then Hashtbl.replace tbl c ()
        end
      done;
      let a = Array.of_seq (Hashtbl.to_seq_keys tbl) in
      Array.sort compare a;
      a
    in
    let z = Array.init (n + 1) (fun _ -> Array.make size 0) in
    let h = Array.make size 0 in
    let ach = Bytes.create size in
    let checks = ref 0 in
    let check tau =
      incr checks;
      feasible ~n ~cards ~z ~h ~ach ~probe tau
    in
    (* Smallest feasible candidate by binary search; the largest (the
       global max card) always admits any plan, so the search cannot
       come up empty. *)
    let lo = ref 0 and hi = ref (Array.length cand - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if check cand.(mid) then hi := mid else lo := mid + 1
    done;
    let bottleneck = cand.(!lo) in
    (* Refill the indicator for the winning tau (the last probe may have
       been an infeasible mid). *)
    if not (check bottleneck) then
      failwith "Dpconv: binary-search invariant violated (winning tau infeasible)";
    { plan = extract ach full; bottleneck; checks = !checks }
  end

(** Connected-subgraph / complement-pair enumeration (DPccp).

    The EnumerateCsg / EnumerateCsgRec / EnumerateCmp procedures of
    Moerkotte & Neumann ("Analysis of Two Existing and One New Dynamic
    Programming Algorithm for the Generation of Optimal Bushy Join
    Trees without Cross Products", VLDB 2006), realized over the
    repository's subsets-as-integers bitsets with precomputed adjacency
    masks and the Section 4.2 successor trick for neighborhood-subset
    expansion.  The enumeration allocates nothing per emitted set or
    pair.

    {b Emission order.}  Pairs come out in the order the published
    algorithm produces them, which guarantees that when a csg-cmp pair
    [(S1, S2)] is emitted, every pair composing [S1] and every pair
    composing [S2] has been emitted before it.  {!Dpccp} relies on this
    to fold each pair into the DP table immediately — no collect +
    sort-by-size pass (the baseline [Blitz_baselines.Dpccp]'s
    allocation hotspot). *)

module Relset = Blitz_bitset.Relset
module Join_graph = Blitz_graph.Join_graph

val iter_csg : Join_graph.t -> (Relset.t -> unit) -> unit
(** Every connected subgraph of the join graph, each exactly once. *)

val iter_ccp : Join_graph.t -> (Relset.t -> Relset.t -> unit) -> unit
(** Every csg-cmp pair [(S1, S2)]: disjoint, individually connected,
    joined by at least one predicate, with [min S1 < min S2]; each
    unordered pair exactly once. *)

val csg_count : Join_graph.t -> int
(** [List.length] of {!iter_csg}'s emissions (e.g. [n(n+1)/2] on
    chains, [2^n - 1] on cliques). *)

val ccp_count : Join_graph.t -> int
(** Number of csg-cmp pairs: [(n^3 - n)/6] on chains,
    [(n-1) 2^(n-2)] on stars, [(3^n - 2^(n+1) + 1)/2] on cliques —
    the quantity to compare against blitzsplit's [3^n] split-loop
    iterations. *)

val neighborhood : Join_graph.t -> Relset.t -> Relset.t -> Relset.t
(** [neighborhood g s x]: all relations adjacent to some member of [s]
    that are in neither [s] nor the forbidden set [x].  Exposed for
    tests. *)

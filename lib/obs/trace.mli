(** Structured tracing: cheap spans into a fixed-size ring buffer, with
    a Chrome-trace ([chrome://tracing] / Perfetto JSON array) exporter.

    A span brackets one unit of optimizer work — an engine call, a
    threshold pass, a degradation tier, a pool job — and records its
    wall-clock extent plus string attributes.  Events land in a
    lock-free ring buffer (an [Atomic] write cursor; old events are
    overwritten once the buffer wraps), so tracing a long-running
    serving process is bounded-memory by construction.

    {2 Cost when disabled}

    Tracing defaults to off, and a disabled {!span} is one [Atomic.get]
    branch followed by a direct call of the traced function — no clock
    read, no allocation.  This is the "compiled to near-zero overhead"
    contract the instrumented hot seams rely on.

    {2 Concurrency}

    The cursor is claimed with [Atomic.fetch_and_add], so spans from
    worker domains interleave without locking.  Slot writes are not
    atomic with the claim; a reader that races a writer on a wrapped
    buffer can observe a slot mid-update.  {!events} is meant to be
    called after the traced work quiesces (end of query, end of run) —
    the CLI and tests do exactly that. *)

type event = {
  name : string;
  ts_us : float;  (** Start, microseconds since the Unix epoch (or the test clock). *)
  dur_us : float;
  tid : int;  (** The recording domain's id. *)
  attrs : (string * string) list;
}

(** {1 Switch and clock} *)

val enabled : unit -> bool
(** Whether spans are recorded (default: off). *)

val set_enabled : bool -> unit

val set_clock_for_testing : (unit -> float) option -> unit
(** Replace (or with [None] restore) the wall clock, which returns
    absolute seconds.  Golden tests inject a deterministic counter so
    exported traces are byte-stable. *)

(** {1 Recording} *)

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording one complete event covering its
    execution.  The event is recorded even when [f] raises (the
    exception propagates).  Nested spans appear nested in the Chrome
    timeline via their timestamps. *)

val instant : ?attrs:(string * string) list -> string -> unit
(** A zero-duration mark (budget expiry, cascade decision). *)

(** {1 The ring buffer} *)

val set_capacity : int -> unit
(** Resize the buffer (clearing it).  Default 4096 events.  Raises
    [Invalid_argument] on a non-positive capacity. *)

val capacity : unit -> int

val clear : unit -> unit
(** Drop buffered events and reset the {!dropped} count. *)

val events : unit -> event list
(** Retained events, oldest first.  At most {!capacity} events; once
    the buffer wraps, the oldest are gone (see {!dropped}). *)

val dropped : unit -> int
(** Events overwritten by wraparound since the last {!clear}. *)

(** {1 Export} *)

val to_chrome : unit -> Blitz_util.Json.t
(** The retained events as a Chrome-trace JSON array of complete
    (["ph": "X"]) events — load the file in [chrome://tracing] or
    [ui.perfetto.dev].  Timestamps are rebased to the earliest retained
    event so they survive the JSON printer's precision. *)

val write_chrome : string -> unit
(** {!to_chrome} pretty-printed to a file. *)

module Json = Blitz_util.Json

(* One process-wide switch: a disabled recording call is a single
   Atomic.get branch and nothing else. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

type meta = { name : string; help : string; labels : (string * string) list }

type counter = { c_meta : meta; c_cell : int Atomic.t }
type gauge = { g_meta : meta; g_cell : float Atomic.t }

type histogram = {
  h_meta : meta;
  bounds : float array;  (* strictly increasing upper bounds, +Inf excluded *)
  cells : int Atomic.t array;  (* length bounds + 1; last is the +Inf bucket *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

(* Log-spaced 1e-6 .. 1e9, one bound per half-decade: wide enough for
   latencies in seconds on the left and plan costs on the right. *)
let default_buckets = Array.init 31 (fun i -> 10.0 ** (-6.0 +. (0.5 *. float_of_int i)))

(* ---- the registry ----

   Creation is rare (module initialization) and mutex-protected; the
   table is only read under the same mutex (snapshot), so plain
   Hashtbl suffices.  Updates to already-created instruments never
   touch the table. *)

let mutex = Mutex.create ()
let table : (string, instrument) Hashtbl.t = Hashtbl.create 64

let key ~name ~labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let with_registry f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let find_or_create ~name ~labels make check =
  with_registry (fun () ->
      let k = key ~name ~labels in
      match Hashtbl.find_opt table k with
      | Some i -> check i
      | None ->
        let i = make () in
        Hashtbl.add table k i;
        i)

let kind_error ~name what =
  invalid_arg (Printf.sprintf "Metrics: %S is already registered as a %s" name what)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let counter ?(help = "") ?(labels = []) name =
  let i =
    find_or_create ~name ~labels
      (fun () -> C { c_meta = { name; help; labels }; c_cell = Atomic.make 0 })
      (function C _ as i -> i | i -> kind_error ~name (kind_name i))
  in
  match i with C c -> c | _ -> assert false

let gauge ?(help = "") ?(labels = []) name =
  let i =
    find_or_create ~name ~labels
      (fun () -> G { g_meta = { name; help; labels }; g_cell = Atomic.make 0.0 })
      (function G _ as i -> i | i -> kind_error ~name (kind_name i))
  in
  match i with G g -> g | _ -> assert false

let histogram ?(help = "") ?(buckets = default_buckets) ?(labels = []) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty bucket bounds";
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then invalid_arg "Metrics.histogram: non-finite bucket bound";
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing")
    buckets;
  let i =
    find_or_create ~name ~labels
      (fun () ->
        H
          {
            h_meta = { name; help; labels };
            bounds = Array.copy buckets;
            cells = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0;
            h_count = Atomic.make 0;
          })
      (function
        | H h as i ->
          if h.bounds <> buckets then
            invalid_arg
              (Printf.sprintf "Metrics: histogram %S re-registered with different buckets" name);
          i
        | i -> kind_error ~name (kind_name i))
  in
  match i with H h -> h | _ -> assert false

(* ---- recording ---- *)

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_cell 1)

let add c k =
  if k < 0 then invalid_arg "Metrics.add: counters are monotonic (negative delta)";
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_cell k)

let set g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v

(* First bound >= v, by binary search; the trailing cell is +Inf. *)
let bucket_index bounds v =
  let lo = ref 0 and hi = ref (Array.length bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let atomic_add_float cell x =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. x)) then go ()
  in
  go ()

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.cells.(bucket_index h.bounds v) 1);
    atomic_add_float h.h_sum v;
    ignore (Atomic.fetch_and_add h.h_count 1)
  end

let time h f =
  if Atomic.get enabled_flag then begin
    let t0 = Unix.gettimeofday () in
    let finally () = observe h (Unix.gettimeofday () -. t0) in
    Fun.protect ~finally f
  end
  else f ()

(* ---- reading ---- *)

let value c = Atomic.get c.c_cell
let gauge_value g = Atomic.get g.g_cell
let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum

let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile: q outside [0, 1]";
  let count = Atomic.get h.h_count in
  if count = 0 then Float.nan
  else begin
    let target = q *. float_of_int count in
    let rec go i cumulative =
      if i >= Array.length h.cells then h.bounds.(Array.length h.bounds - 1)
      else
        let in_bucket = Atomic.get h.cells.(i) in
        let cumulative' = cumulative + in_bucket in
        if float_of_int cumulative' >= target && in_bucket > 0 then
          if i >= Array.length h.bounds then
            (* +Inf bucket: no finite upper bound to interpolate toward. *)
            h.bounds.(Array.length h.bounds - 1)
          else begin
            let hi = h.bounds.(i) in
            let lo = if i = 0 then Float.min 0.0 hi else h.bounds.(i - 1) in
            let pos = (target -. float_of_int cumulative) /. float_of_int in_bucket in
            lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 pos))
          end
        else go (i + 1) cumulative'
    in
    go 0 0
  end

(* ---- exposition ---- *)

type snapshot =
  | Counter of { name : string; help : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; help : string; labels : (string * string) list; value : float }
  | Histogram of {
      name : string;
      help : string;
      labels : (string * string) list;
      buckets : (float * int) list;
      sum : float;
      count : int;
    }

let snapshot_of = function
  | C c ->
    Counter
      {
        name = c.c_meta.name;
        help = c.c_meta.help;
        labels = c.c_meta.labels;
        value = Atomic.get c.c_cell;
      }
  | G g ->
    Gauge
      {
        name = g.g_meta.name;
        help = g.g_meta.help;
        labels = g.g_meta.labels;
        value = Atomic.get g.g_cell;
      }
  | H h ->
    let cumulative = ref 0 in
    let finite =
      Array.to_list
        (Array.mapi
           (fun i bound ->
             cumulative := !cumulative + Atomic.get h.cells.(i);
             (bound, !cumulative))
           h.bounds)
    in
    let buckets = finite @ [ (Float.infinity, !cumulative + Atomic.get h.cells.(Array.length h.bounds)) ] in
    Histogram
      {
        name = h.h_meta.name;
        help = h.h_meta.help;
        labels = h.h_meta.labels;
        buckets;
        sum = Atomic.get h.h_sum;
        count = Atomic.get h.h_count;
      }

let snapshot_key = function
  | Counter { name; labels; _ } | Gauge { name; labels; _ } | Histogram { name; labels; _ } ->
    (name, labels)

let snapshot () =
  let items = with_registry (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) table []) in
  List.map snapshot_of items |> List.sort (fun a b -> compare (snapshot_key a) (snapshot_key b))

(* Prometheus text format 0.0.4. *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels))

let float_repr x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%g" x

let to_prometheus () =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  let header name kind help =
    if name <> !last_family then begin
      last_family := name;
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (function
      | Counter { name; help; labels; value } ->
        header name "counter" help;
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name (render_labels labels) value)
      | Gauge { name; help; labels; value } ->
        header name "gauge" help;
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (render_labels labels) (float_repr value))
      | Histogram { name; help; labels; buckets; sum; count } ->
        header name "histogram" help;
        List.iter
          (fun (le, cumulative) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (render_labels (labels @ [ ("le", float_repr le) ]))
                 cumulative))
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels) (float_repr sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) count))
    (snapshot ());
  Buffer.contents buf

let to_json () =
  let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels) in
  let metric = function
    | Counter { name; help; labels; value } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("type", Json.String "counter");
          ("help", Json.String help);
          ("labels", labels_json labels);
          ("value", Json.Int value);
        ]
    | Gauge { name; help; labels; value } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("type", Json.String "gauge");
          ("help", Json.String help);
          ("labels", labels_json labels);
          ("value", Json.Float value);
        ]
    | Histogram { name; help; labels; buckets; sum; count } ->
      Json.Obj
        [
          ("name", Json.String name);
          ("type", Json.String "histogram");
          ("help", Json.String help);
          ("labels", labels_json labels);
          ( "buckets",
            Json.List
              (List.map
                 (fun (le, cumulative) ->
                   Json.Obj [ ("le", Json.Float le); ("count", Json.Int cumulative) ])
                 buckets) );
          ("sum", Json.Float sum);
          ("count", Json.Int count);
        ]
  in
  Json.Obj [ ("metrics", Json.List (List.map metric (snapshot ()))) ]

(* ---- lifecycle ---- *)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Atomic.set c.c_cell 0
          | G g -> Atomic.set g.g_cell 0.0
          | H h ->
            Array.iter (fun cell -> Atomic.set cell 0) h.cells;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_count 0)
        table)

let clear () = with_registry (fun () -> Hashtbl.reset table)

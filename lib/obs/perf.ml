(* Shared microkernel-rate histograms.  They live here, not next to the
   kernels, so every optimizer that has a "per unit of enumeration"
   inner loop feeds the same named instruments and `blitz explain`
   (and the Prometheus exposition) can show ns/subset regressions
   forever, whichever driver ran. *)

(* Nanoseconds per inner-loop unit: sub-ns to 1 ms upper bounds.  The
   split loop sits around 1-10 ns/iteration on current hardware; the
   wide top end catches catastrophic regressions rather than losing
   them to the +Inf bucket. *)
let ns_buckets =
  [| 0.5; 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 1e3; 1e4; 1e5; 1e6 |]

let split_loop_ns_per_subset =
  Metrics.histogram ~buckets:ns_buckets
    ~help:"Wall-clock nanoseconds per subset processed by the blitzsplit DP loop"
    "blitz_split_loop_ns_per_subset"

let split_loop_ns_per_iter =
  Metrics.histogram ~buckets:ns_buckets
    ~help:"Wall-clock nanoseconds per split-loop iteration of the blitzsplit DP loop"
    "blitz_split_loop_ns_per_iter"

let dpccp_ns_per_pair =
  Metrics.histogram ~buckets:ns_buckets
    ~help:"Wall-clock nanoseconds per csg-cmp pair folded by the dpccp DP loop"
    "blitz_dpccp_ns_per_pair"

let now_s () = Unix.gettimeofday ()

let observe_rate hist ~elapsed_s ~events =
  if events > 0 && Metrics.enabled () then
    Metrics.observe hist (elapsed_s *. 1e9 /. float_of_int events)

let timed_rate hist ~events f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let e0 = events () in
    let t0 = now_s () in
    let r = f () in
    observe_rate hist ~elapsed_s:(now_s () -. t0) ~events:(events () - e0);
    r
  end

module Metrics = Metrics
module Trace = Trace

let span = Trace.span
let instant = Trace.instant
let enabled () = Metrics.enabled () || Trace.enabled ()

let enable_all () =
  Metrics.set_enabled true;
  Trace.set_enabled true

let disable_all () =
  Metrics.set_enabled false;
  Trace.set_enabled false

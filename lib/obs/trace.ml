module Json = Blitz_util.Json

type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  attrs : (string * string) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let test_clock : (unit -> float) option Atomic.t = Atomic.make None
let set_clock_for_testing c = Atomic.set test_clock c

let now_s () =
  match Atomic.get test_clock with Some c -> c () | None -> Unix.gettimeofday ()

(* The ring buffer.  The cursor counts every recorded event (never
   wraps); slot [cursor mod capacity] is overwritten.  [state] is
   swapped wholesale by [set_capacity]/[clear], so resizing under
   concurrent writers loses at most the in-flight events. *)

type ring = { slots : event option array; cursor : int Atomic.t }

let make_ring capacity = { slots = Array.make capacity None; cursor = Atomic.make 0 }
let ring = Atomic.make (make_ring 4096)

let set_capacity c =
  if c < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Atomic.set ring (make_ring c)

let capacity () = Array.length (Atomic.get ring).slots

let clear () = set_capacity (capacity ())

let record ev =
  let r = Atomic.get ring in
  let i = Atomic.fetch_and_add r.cursor 1 in
  r.slots.(i mod Array.length r.slots) <- Some ev

let tid () = (Domain.self () :> int)

let span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_s () in
    let finish () =
      let t1 = now_s () in
      record
        { name; ts_us = t0 *. 1e6; dur_us = (t1 -. t0) *. 1e6; tid = tid (); attrs }
    in
    Fun.protect ~finally:finish f
  end

let instant ?(attrs = []) name =
  if Atomic.get enabled_flag then
    record { name; ts_us = now_s () *. 1e6; dur_us = 0.0; tid = tid (); attrs }

let dropped () =
  let r = Atomic.get ring in
  max 0 (Atomic.get r.cursor - Array.length r.slots)

let events () =
  let r = Atomic.get ring in
  let total = Atomic.get r.cursor in
  let cap = Array.length r.slots in
  let first = max 0 (total - cap) in
  List.filter_map
    (fun seq -> r.slots.(seq mod cap))
    (List.init (total - first) (fun i -> first + i))

let to_chrome () =
  let events = events () in
  (* Timestamps are exported relative to the earliest retained event:
     absolute epoch-microseconds exceed the JSON printer's 12
     significant digits, and Chrome normalizes to the minimum anyway. *)
  let base = List.fold_left (fun acc e -> Float.min acc e.ts_us) Float.infinity events in
  let event_json e =
    Json.Obj
      [
        ("name", Json.String e.name);
        ("cat", Json.String "blitz");
        ("ph", Json.String "X");
        ("ts", Json.Float (e.ts_us -. base));
        ("dur", Json.Float e.dur_us);
        ("pid", Json.Int 1);
        ("tid", Json.Int e.tid);
        ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) e.attrs));
      ]
  in
  Json.List (List.map event_json events)

let write_chrome path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~indent:true (to_chrome ()));
      Out_channel.output_char oc '\n')

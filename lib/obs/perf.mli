(** Microkernel rate instruments: ns per inner-loop unit.

    One histogram per hot enumeration loop, named and allocated here so
    the sequential split loop, the rank-parallel driver and the dpccp
    pair loop all feed the same instruments — a regression in any
    driver's inner loop shows up in [blitz explain]'s metric deltas and
    in the Prometheus exposition under a stable name.

    All observation paths are gated on {!Metrics.enabled}: a disabled
    process pays one branch per optimizer call, no clock reads. *)

val ns_buckets : float array
(** Bucket bounds tuned for ns/iteration rates (0.5 ns – 1 ms). *)

val split_loop_ns_per_subset : Metrics.histogram
(** Wall-clock ns per subset processed by a blitzsplit DP pass
    ([blitz_split_loop_ns_per_subset]). *)

val split_loop_ns_per_iter : Metrics.histogram
(** Wall-clock ns per split-loop iteration (the [O(3^n)] unit; finer
    than per-subset) of a blitzsplit DP pass
    ([blitz_split_loop_ns_per_iter]).  The per-iteration rate is what
    `bench split` gates, so production runs and the benchmark read the
    same unit. *)

val dpccp_ns_per_pair : Metrics.histogram
(** Wall-clock ns per csg-cmp pair folded by the dpccp driver
    ([blitz_dpccp_ns_per_pair]). *)

val now_s : unit -> float
(** [Unix.gettimeofday] — the clock every rate observation uses.
    Exported so drivers that feed two instruments from one timed region
    (per-subset and per-iteration) read it once. *)

val observe_rate : Metrics.histogram -> elapsed_s:float -> events:int -> unit
(** Observe [elapsed_s / events] in nanoseconds; no-op when [events] is
    zero or metrics are disabled. *)

val timed_rate : Metrics.histogram -> events:(unit -> int) -> (unit -> 'a) -> 'a
(** [timed_rate hist ~events f] runs [f], then observes elapsed wall
    time divided by the growth of [events ()] across the call.  When
    metrics are disabled this is exactly [f ()] — no clock reads.  An
    exception escaping [f] skips the observation (a partial rate would
    be noise). *)

(** The observability front door: one import for instrumented modules.

    [Blitz_obs.Obs] re-exports {!Metrics} and {!Trace} and adds the
    few combinators the instrumented seams actually use, so a hot-path
    module writes [Obs.span "threshold.pass" ~attrs f] and
    [Obs.Metrics.incr c] without choosing between two modules.

    Everything here inherits the two modules' cost contract: with both
    switches off (the default) each call is a single [Atomic.get]
    branch. *)

module Metrics = Metrics
module Trace = Trace

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [Trace.span]. *)

val instant : ?attrs:(string * string) list -> string -> unit
(** [Trace.instant]. *)

val enabled : unit -> bool
(** True when metrics {e or} tracing is recording. *)

val enable_all : unit -> unit
(** Turn both metrics and tracing on. *)

val disable_all : unit -> unit
(** Turn both off (the startup state). *)

(** A process-wide metrics registry: named counters, gauges and
    histograms with Prometheus text exposition and a JSON dump.

    The paper is an instrumentation story — its tables and figures are
    counts of splits, κ″ evaluations and threshold rescues — and the
    optimizer computes all of those numbers today only to throw them
    away.  This registry is where the hot seams (engine sessions, the
    registry dispatch, the budget/degradation machinery, the domain
    pool, the threshold driver) publish what they did, so a serving
    process can answer "what is the optimizer doing?" without a
    debugger.

    {2 Concurrency}

    All instrument updates are domain-safe: counters use
    [Atomic.fetch_and_add], gauges [Atomic.set]/[Atomic.exchange], and
    histogram cells per-bucket atomics with a CAS loop for the running
    sum.  Concurrent increments from any number of domains sum exactly
    (tested property).  Instrument {e creation} takes a mutex, so
    create instruments once at module initialization, not per event.

    {2 Cost when disabled}

    Recording is gated on one process-wide [Atomic.t] flag, default
    off: a disabled [incr]/[observe]/[set] is a single [Atomic.get]
    branch, so instrumented hot paths stay at their uninstrumented
    speed (the bench gate in [bench/exp_obs.ml] enforces < 2% overhead
    even {e enabled}).  Instruments can be created while disabled. *)

type counter
type gauge
type histogram

(** {1 Global recording switch} *)

val enabled : unit -> bool
(** Whether recording is on (default: off). *)

val set_enabled : bool -> unit

(** {1 Instrument creation}

    Creation is idempotent: the same [(name, labels)] pair returns the
    same instrument, so independent modules may "create" a shared
    metric.  Re-using a [(name, labels)] pair with a different
    instrument kind, or different histogram buckets, raises
    [Invalid_argument].  Names should follow Prometheus conventions
    ([blitz_engine_optimize_seconds], counters suffixed [_total]). *)

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?help:string -> ?buckets:float array -> ?labels:(string * string) list -> string -> histogram
(** [buckets] are the upper bounds of the cumulative buckets (a
    [+Inf] bucket is always appended); they must be strictly
    increasing.  Default: {!default_buckets}. *)

val default_buckets : float array
(** Log-spaced from 1e-6 to 1e9 (five per decade would be excessive:
    one per half-decade, 31 bounds) — wide enough for both latencies in
    seconds and plan costs. *)

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c k] with negative [k] raises [Invalid_argument] (counters are
    monotonic). *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its wall-clock duration in
    seconds.  When recording is disabled the clock is never read. *)

(** {1 Reading} *)

val value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [\[0, 1\]]: the Prometheus-style estimate
    — find the cumulative bucket containing the [q]-th observation and
    interpolate linearly inside it.  [nan] on an empty histogram.
    Raises [Invalid_argument] outside [\[0, 1\]]. *)

(** {1 Exposition} *)

type snapshot =
  | Counter of { name : string; help : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; help : string; labels : (string * string) list; value : float }
  | Histogram of {
      name : string;
      help : string;
      labels : (string * string) list;
      buckets : (float * int) list;  (** (upper bound, cumulative count), ending at [+Inf]. *)
      sum : float;
      count : int;
    }

val snapshot : unit -> snapshot list
(** A consistent-enough point-in-time read of every instrument, sorted
    by [(name, labels)] so output diffs stably. *)

val to_prometheus : unit -> string
(** The Prometheus text exposition format, version 0.0.4: [# HELP] /
    [# TYPE] headers per family, [_bucket{le="..."}] / [_sum] /
    [_count] rows for histograms. *)

val to_json : unit -> Blitz_util.Json.t
(** The same snapshot as a JSON document (for [--metrics=FILE] dumps
    and the bench collector). *)

(** {1 Lifecycle} *)

val reset : unit -> unit
(** Zero every instrument (counts, sums, gauge values); registration
    survives.  For tests and for per-run deltas in the CLI. *)

val clear : unit -> unit
(** Drop every instrument registration entirely.  Tests only: modules
    cache instruments in closures, and a cached instrument is orphaned
    — no longer visible to {!snapshot} — after [clear]. *)

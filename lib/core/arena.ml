type t = {
  mutable table : Dp_table.t option;
  counters : Counters.t;
  mutable acquires : int;
  mutable grows : int;
}

let create () = { table = None; counters = Counters.create (); acquires = 0; grows = 0 }

let counters t = t.counters

let acquire t ?(with_pi_fan = true) n =
  t.acquires <- t.acquires + 1;
  let table =
    match t.table with
    | Some tbl when Dp_table.capacity tbl >= n ->
      let tbl = if with_pi_fan then Dp_table.add_pi_fan tbl else tbl in
      Dp_table.reset_in_place tbl ~n
    | prev ->
      (* Grow to the new high-water mark.  The fan column is sticky: once
         any query in the session needed it, keep it so a later join query
         never has to reallocate behind a product query's back. *)
      let keep_fan =
        with_pi_fan
        || (match prev with Some p -> Dp_table.has_pi_fan p | None -> false)
      in
      t.grows <- t.grows + 1;
      Dp_table.create ~with_pi_fan:keep_fan n
  in
  t.table <- Some table;
  table

let resident_bytes t =
  match t.table with
  | None -> 0
  | Some tbl ->
    Dp_table.estimate_bytes
      ~with_pi_fan:(Dp_table.has_pi_fan tbl)
      ~n:(Dp_table.capacity tbl) ()

let bytes_after t ?(with_pi_fan = true) ~n () =
  match t.table with
  | None -> Dp_table.estimate_bytes ~with_pi_fan ~n ()
  | Some tbl ->
    let fan = with_pi_fan || Dp_table.has_pi_fan tbl in
    let cap = max n (Dp_table.capacity tbl) in
    Dp_table.estimate_bytes ~with_pi_fan:fan ~n:cap ()

let clear t = t.table <- None

let acquires t = t.acquires
let grows t = t.grows

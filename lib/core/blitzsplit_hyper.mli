(** Blitzsplit over join hypergraphs.

    Completes Section 5's second deferred extension: predicates that need
    more than two relations before they can be evaluated.  The per-subset
    property is a bitmask of {e completed} hyperedges with the recurrence

    {v completed(S) = completed(U) | completed(V) | newly(U, V)
       span(U, V)  = prod of selectivities of newly(U, V) v}

    where [newly(U, V)] are the hyperedges contained in the union but in
    neither side — the predicates the join of [U] and [V] must apply
    (Section 5.1's no-more-no-fewer argument, verbatim, with "both
    endpoints" generalized to "all members").  As with the other
    variants, find_best_split is untouched. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Hypergraph = Blitz_graph.Hypergraph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

val max_hyperedges : int
(** 62 (one bitmask word). *)

type t = {
  table : Dp_table.t;
  counters : Counters.t;
  catalog : Catalog.t;
  hypergraph : Hypergraph.t;
  model : Cost_model.t;
  threshold : float;
}

val optimize :
  ?arena:Arena.t ->
  ?counters:Counters.t -> ?threshold:float -> Cost_model.t -> Catalog.t -> Hypergraph.t -> t
(** Raises [Invalid_argument] on size mismatch or more than
    {!max_hyperedges} hyperedges. *)

val feasible : t -> bool
val best_cost : t -> float
val best_plan : t -> Plan.t option
val best_plan_exn : t -> Plan.t
val subplan : t -> Relset.t -> Plan.t option

(** Stand-alone intermediate-result cardinality table.

    Computes, for every nonempty subset, the estimated join cardinality
    using the same fan recurrence as the optimizer (Section 5), without
    doing any plan search.  Baseline optimizers (left-deep DP, size-driven
    DP, greedy, stochastic search) share this so that cross-method cost
    comparisons rest on identical cardinality estimates, and so their
    timings reflect enumeration strategy rather than estimation strategy. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

val compute : Catalog.t -> Join_graph.t -> float array
(** [compute catalog graph] returns an array of size [2^n] with
    [a.(s)] the join cardinality of subset [s] ([a.(0)] is unused and
    holds 1).  Raises like {!Blitzsplit.optimize_join} on size
    mismatches. *)

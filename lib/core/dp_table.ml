module Relset = Blitz_bitset.Relset
module Plan = Blitz_plan.Plan

type t = {
  n : int;
  card : float array;
  cost : float array;
  best_lhs : int array;
  pi_fan : float array;
  aux : float array;
  pair : float array;
}

let max_relations = 24

(* The interleaved column starts every 16-byte row at (infinity, 0.0) —
   the same initial state the [cost] and [card] columns carry. *)
let reset_pair pair ~slots =
  Array.fill pair 0 (2 * slots) 0.0;
  let i = ref 0 in
  while !i < 2 * slots do
    Array.unsafe_set pair !i Float.infinity;
    i := !i + 2
  done

let create ?(with_pi_fan = true) n =
  if n < 1 || n > max_relations then
    invalid_arg (Printf.sprintf "Dp_table.create: n = %d outside [1, %d]" n max_relations);
  let slots = 1 lsl n in
  let pair = Array.make (2 * slots) 0.0 in
  reset_pair pair ~slots;
  {
    n;
    card = Array.make slots 0.0;
    cost = Array.make slots Float.infinity;
    best_lhs = Array.make slots 0;
    (* The fan column is read only on the join path; the Cartesian-product
       optimizer leaves it out entirely, saving 8 * 2^n bytes. *)
    pi_fan = (if with_pi_fan then Array.make slots 1.0 else [||]);
    aux = Array.make slots 0.0;
    pair;
  }

let has_pi_fan t = Array.length t.pi_fan > 0

let capacity t =
  (* Slot arrays are always 2^cap long; recover cap rather than widening
     the (publicly pattern-matched) record with another field. *)
  let len = Array.length t.card in
  let rec log2 k acc = if k <= 1 then acc else log2 (k lsr 1) (acc + 1) in
  log2 len 0

let estimate_bytes ?(with_pi_fan = true) ~n () =
  (* 4 (or 5, with the fan column) unboxed 8-byte columns of 2^n slots,
     plus the interleaved 16-byte (cost, card) pair column the split
     kernels read.  Saturate instead of overflowing for absurd n. *)
  let per_slot = if with_pi_fan then 56 else 48 in
  if n >= 50 then max_int else per_slot * (1 lsl n)

let reset_in_place t ~n =
  if n < 1 || n > capacity t then
    invalid_arg
      (Printf.sprintf "Dp_table.reset_in_place: n = %d outside [1, %d]" n (capacity t));
  let slots = 1 lsl n in
  Array.fill t.card 0 slots 0.0;
  Array.fill t.cost 0 slots Float.infinity;
  Array.fill t.best_lhs 0 slots 0;
  if has_pi_fan t then Array.fill t.pi_fan 0 slots 1.0;
  Array.fill t.aux 0 slots 0.0;
  reset_pair t.pair ~slots;
  { t with n }

let add_pi_fan t =
  if has_pi_fan t then t
  else { t with pi_fan = Array.make (Array.length t.card) 1.0 }

let size t = 1 lsl t.n

let full_set t = Relset.full t.n

let check_set t s =
  if s <= 0 || s >= size t then
    invalid_arg (Printf.sprintf "Dp_table: set %d outside table of %d relations" s t.n)

let card t s = check_set t s; t.card.(s)
let cost t s = check_set t s; t.cost.(s)
let best_lhs t s = check_set t s; t.best_lhs.(s)
let pi_fan t s = check_set t s; if has_pi_fan t then t.pi_fan.(s) else 1.0

let is_feasible t s = Float.is_finite (cost t s)

let extract_plan t s =
  check_set t s;
  let rec go s =
    if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
    else begin
      let lhs = t.best_lhs.(s) in
      (* lhs = s is the multiway sentinel: the best plan for s lives in a
         Multiway side table this walker knows nothing about. *)
      if lhs = 0 || lhs = s then raise Exit;
      Plan.Join (go lhs, go (s lxor lhs))
    end
  in
  match go s with plan -> Some plan | exception Exit -> None

let dump ?names t =
  let module F = Blitz_util.Float_more in
  let set_name s = Relset.to_string ?names s in
  let subsets = ref [] in
  for s = size t - 1 downto 1 do
    subsets := s :: !subsets
  done;
  let by_table_order a b =
    let ca = Relset.cardinal a and cb = Relset.cardinal b in
    if ca <> cb then compare ca cb else compare (Relset.to_list a) (Relset.to_list b)
  in
  let ordered = List.sort by_table_order !subsets in
  let rows =
    List.map
      (fun s ->
        let best = if t.best_lhs.(s) = 0 then "none" else set_name t.best_lhs.(s) in
        [| set_name s; F.to_compact_string t.card.(s); best; F.to_compact_string t.cost.(s) |])
      ordered
  in
  Blitz_util.Ascii_table.render
    ~header:[| "Relation Set"; "Cardinality"; "Best LHS"; "Cost" |]
    (Array.of_list rows)

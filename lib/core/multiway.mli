(** Multiway-candidate side table for the DP optimizers.

    The blitzsplit/dpccp table names each subset's best plan with one
    integer ([best_lhs]); an n-ary node does not fit.  Multiway winners
    therefore store the sentinel [best_lhs.(s) = s] — impossible for a
    real split — and park their fractional edge cover here, keyed by
    subset.  A candidate is tried only on 2-edge-connected induced
    subgraphs (a cyclic core), so acyclic queries do zero extra
    floating-point work and their tables stay bit-identical to the
    seed optimizer's. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Agm = Blitz_cost.Agm
module Plan = Blitz_plan.Plan

type t

val create : Catalog.t -> Join_graph.t -> t
(** Packs the graph's hypergraph once; reuse across the whole pass. *)

val candidate : t -> Relset.t -> bool
(** Whether the subset induces a 2-edge-connected subgraph (the
    structural gate; false for every subset of an acyclic graph). *)

val try_candidate :
  t -> out:float -> current:float -> threshold:float -> Relset.t -> float option
(** Core of {!consider} for table layouts other than {!Dp_table} (the
    dpccp sparse store): if the subset is a candidate and the n-ary cost
    — from estimated output [out] — strictly beats both [current] and
    [threshold], record the cover and return the cost; the caller
    installs the sentinel in its own table. *)

val consider : t -> Dp_table.t -> Counters.t -> threshold:float -> Relset.t -> unit
(** Run after [find_best_split] on the subset: if it is a candidate,
    solve the AGM cover, cost the n-ary join of the subset's relations
    ([kappa_multiway]) and, when that strictly beats both the recorded
    best split and the threshold, overwrite the table entry with the
    sentinel and record the cover (bumping [multiway_wins]). *)

val find : t -> Relset.t -> Agm.cover option
(** The recorded cover for a subset the sentinel points at, if any. *)

val wins : t -> int
(** Number of subsets whose best plan is multiway. *)

val plan_of : t -> Relset.t -> Plan.t option
(** The [Plan.Multiway] node (over the subset's leaves, with cover
    weights and AGM bound) for a recorded winner. *)

val extract_plan : ?multiway:t -> Dp_table.t -> Relset.t -> Plan.t option
(** Sentinel-aware {!Dp_table.extract_plan}: walks [best_lhs] links,
    emitting the recorded [Plan.Multiway] node wherever the walk hits
    the sentinel.  Without [~multiway] it is exactly
    [Dp_table.extract_plan] (which treats a sentinel as infeasible). *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type phys =
  | Scan of int
  | Sort of phys * int
  | Nested_loop of phys * phys
  | Merge_join of phys * phys * int

let rec logical = function
  | Scan r -> Plan.Leaf r
  | Sort (p, _) -> logical p
  | Nested_loop (l, r) -> Plan.Join (logical l, logical r)
  | Merge_join (l, r, _) -> Plan.Join (logical l, logical r)

let rec order_of = function
  | Scan _ -> None
  | Sort (_, e) -> Some e
  | Nested_loop (l, _) -> order_of l
  | Merge_join (_, _, e) -> Some e

let sort_cost c = if c <= 1.0 then 0.0 else c *. log c

let phys_cost ?(blocking_factor = 10.0) ?(memory_blocks = 100.0) catalog graph plan =
  let dnl = Cost_model.disk_nested_loops ~blocking_factor ~memory_blocks () in
  (* Returns (cost, set, cardinality, delivered order). *)
  let rec go = function
    | Scan r -> (0.0, Relset.singleton r, Catalog.card catalog r, None)
    | Sort (p, e) ->
      let c, set, card, _ = go p in
      let ei, ej, _ =
        match List.nth_opt (Join_graph.edges graph) e with
        | Some edge -> edge
        | None -> invalid_arg "phys_cost: edge id out of range"
      in
      if not (Relset.mem set ei || Relset.mem set ej) then
        invalid_arg "phys_cost: sort attribute absent from the input";
      (c +. sort_cost card, set, card, Some e)
    | Nested_loop (l, r) ->
      let cl, sl, kl, ol = go l in
      let cr, sr, kr, _ = go r in
      if not (Relset.disjoint sl sr) then invalid_arg "phys_cost: operands share a relation";
      let set = Relset.union sl sr in
      let out = kl *. kr *. Join_graph.pi_span graph sl sr in
      (cl +. cr +. Cost_model.kappa dnl ~out ~lcard:kl ~rcard:kr, set, out, ol)
    | Merge_join (l, r, e) ->
      let cl, sl, kl, ol = go l in
      let cr, sr, kr, orr = go r in
      if ol <> Some e || orr <> Some e then
        invalid_arg "phys_cost: merge-join inputs must deliver the join order";
      if not (Relset.disjoint sl sr) then invalid_arg "phys_cost: operands share a relation";
      let ei, ej, _ =
        match List.nth_opt (Join_graph.edges graph) e with
        | Some edge -> edge
        | None -> invalid_arg "phys_cost: edge id out of range"
      in
      (* The merged edge must actually span the operands. *)
      let spans =
        (Relset.mem sl ei && Relset.mem sr ej) || (Relset.mem sl ej && Relset.mem sr ei)
      in
      if not spans then invalid_arg "phys_cost: merge edge does not span the operands";
      let set = Relset.union sl sr in
      let out = kl *. kr *. Join_graph.pi_span graph sl sr in
      (cl +. cr +. kl +. kr, set, out, Some e)
  in
  let cost, _, _, _ = go plan in
  cost

type result = { plan : phys; cost : float; states : int }

(* Back-pointer encodings for the (subset, order) table. *)
let alg_none = -1 (* singleton scan *)
let alg_sort = -2 (* order enforcer over (s, from_order) *)
let alg_nl = -3 (* nested loop; lhs order = from_order, rhs slot 0 *)
(* alg >= 0: merge join on that edge id; inputs at slots e+1. *)

let optimize ?(blocking_factor = 10.0) ?(memory_blocks = 100.0) ?required_order catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Blitzsplit_orders: graph/catalog size mismatch";
  if n > Dp_table.max_relations then invalid_arg "Blitzsplit_orders: too many relations";
  let edges = Array.of_list (Join_graph.edges graph) in
  let n_edges = Array.length edges in
  (match required_order with
  | Some e when e < 0 || e >= n_edges -> invalid_arg "Blitzsplit_orders: required_order out of range"
  | Some _ | None -> ());
  let stride = n_edges + 1 in
  let slots = 1 lsl n in
  if stride * slots > 1 lsl 27 then
    invalid_arg "Blitzsplit_orders: (edges+1) * 2^n state table exceeds the memory cap";
  let dnl = Cost_model.disk_nested_loops ~blocking_factor ~memory_blocks () in
  let card = Card_table.compute catalog graph in
  let cost = Array.make (stride * slots) Float.infinity in
  let from_lhs = Array.make (stride * slots) 0 in
  let alg = Array.make (stride * slots) alg_none in
  let from_order = Array.make (stride * slots) 0 in
  let full = slots - 1 in
  (* Is order (edge id) interesting for subset s?  Its edge must cross
     the subset's boundary — or be the required final order, which stays
     interesting at every subset that can realize it (sorting early and
     threading the order up may beat sorting the final result). *)
  let interesting e s =
    let i, j, _ = edges.(e) in
    let mi = Relset.mem s i and mj = Relset.mem s j in
    (mi <> mj) || (required_order = Some e && (mi || mj))
  in
  let update slot c lhs a o =
    if c < cost.(slot) then begin
      cost.(slot) <- c;
      from_lhs.(slot) <- lhs;
      alg.(slot) <- a;
      from_order.(slot) <- o
    end
  in
  (* Singletons: scan at slot 0; enforcers fill interesting orders. *)
  for r = 0 to n - 1 do
    let s = 1 lsl r in
    cost.((s * stride) + 0) <- 0.0;
    alg.((s * stride) + 0) <- alg_none;
    for e = 0 to n_edges - 1 do
      if interesting e s then
        update ((s * stride) + e + 1) (sort_cost card.(s)) s alg_sort 0
    done
  done;
  let states = ref (n * stride) in
  for s = 3 to full do
    if s land (s - 1) <> 0 then begin
      states := !states + stride;
      let base = s * stride in
      let out = card.(s) in
      let lhs = ref (s land (-s)) in
      while !lhs <> s do
        let l = !lhs in
        let r = s lxor l in
        let lbase = l * stride and rbase = r * stride in
        let lcard = card.(l) and rcard = card.(r) in
        (* Nested loops: any delivered order of the outer survives. *)
        let nl_kappa = Cost_model.kappa dnl ~out ~lcard ~rcard in
        let rbest = cost.(rbase) in
        if Float.is_finite rbest then begin
          for o = 0 to n_edges do
            let cl = cost.(lbase + o) in
            if Float.is_finite cl then begin
              let target = if o > 0 && interesting (o - 1) s then o else 0 in
              update (base + target) (cl +. rbest +. nl_kappa) l alg_nl o
            end
          done
        end;
        (* Merge join on each edge spanning the split: both inputs at
           the sorted slot (enforcers already folded in), plus one scan
           of each input. *)
        for e = 0 to n_edges - 1 do
          let i, j, _ = edges.(e) in
          let spans =
            (Relset.mem l i && Relset.mem r j) || (Relset.mem l j && Relset.mem r i)
          in
          if spans then begin
            let cl = cost.(lbase + e + 1) and cr = cost.(rbase + e + 1) in
            if Float.is_finite cl && Float.is_finite cr then begin
              let target = if interesting e s then e + 1 else 0 in
              update (base + target) (cl +. cr +. lcard +. rcard) l e e
            end
          end
        done;
        lhs := s land (l - s)
      done;
      (* Slot 0 holds the overall best (an ordered result satisfies "no
         guarantee"): fold ordered slots in first, so the enforcers below
         start from the true minimum. *)
      for e = 0 to n_edges - 1 do
        let c = cost.(base + e + 1) in
        if c < cost.(base) then begin
          cost.(base) <- c;
          from_lhs.(base) <- from_lhs.(base + e + 1);
          alg.(base) <- alg.(base + e + 1);
          from_order.(base) <- from_order.(base + e + 1)
        end
      done;
      (* Enforcers: any interesting order is reachable from the best
         plan overall by an explicit sort. *)
      let best_any = cost.(base) in
      if Float.is_finite best_any then
        for e = 0 to n_edges - 1 do
          if interesting e s then
            update (base + e + 1) (best_any +. sort_cost out) s alg_sort 0
        done
    end
  done;
  let rec extract s slot =
    let idx = (s * stride) + slot in
    match alg.(idx) with
    | a when a = alg_none -> Scan (Relset.min_elt s)
    | a when a = alg_sort ->
      (* from_order names the source slot (always 0 here). *)
      Sort (extract s from_order.(idx), slot - 1)
    | a when a = alg_nl ->
      let l = from_lhs.(idx) in
      Nested_loop (extract l from_order.(idx), extract (s lxor l) 0)
    | e ->
      let l = from_lhs.(idx) in
      Merge_join (extract l (e + 1), extract (s lxor l) (e + 1), e)
  in
  let final_slot = match required_order with Some e -> e + 1 | None -> 0 in
  let idx = (full * stride) + final_slot in
  if not (Float.is_finite cost.(idx)) then
    failwith "Blitzsplit_orders.optimize: no plan (unreachable for finite inputs)";
  { plan = extract full final_slot; cost = cost.(idx); states = !states }

(* The Section 6.5 multiple-algorithms baseline, made physical: each
   join costs min(kappa_dnl, kappa_sm), except that sort-merge is only
   available when some predicate spans the operands (one cannot
   merge-join on a nonexistent attribute).  A plain subset DP — no order
   reuse. *)
let sm_dnl_reference_cost catalog graph =
  let n = Catalog.n catalog in
  let dnl = Cost_model.kdnl and sm = Cost_model.sort_merge in
  let card = Card_table.compute catalog graph in
  let slots = 1 lsl n in
  let cost = Array.make slots Float.infinity in
  for i = 0 to n - 1 do
    cost.(1 lsl i) <- 0.0
  done;
  for s = 3 to slots - 1 do
    if s land (s - 1) <> 0 then begin
      let out = card.(s) in
      let lhs = ref (s land (-s)) in
      while !lhs <> s do
        let l = !lhs in
        let r = s lxor l in
        let lcard = card.(l) and rcard = card.(r) in
        let kappa_nl = Cost_model.kappa dnl ~out ~lcard ~rcard in
        let kappa =
          if Join_graph.crosses graph l r then
            Float.min kappa_nl (Cost_model.kappa sm ~out ~lcard ~rcard)
          else kappa_nl
        in
        let c = cost.(l) +. cost.(r) +. kappa in
        if c < cost.(s) then cost.(s) <- c;
        lhs := s land (l - s)
      done
    end
  done;
  cost.(slots - 1)

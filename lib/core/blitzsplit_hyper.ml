module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Hypergraph = Blitz_graph.Hypergraph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

let max_hyperedges = 62

type t = {
  table : Dp_table.t;
  counters : Counters.t;
  catalog : Catalog.t;
  hypergraph : Hypergraph.t;
  model : Cost_model.t;
  threshold : float;
}

let optimize ?arena ?counters ?(threshold = Float.infinity) model catalog hypergraph =
  if threshold <= 0.0 then invalid_arg "Blitzsplit_hyper: threshold must be positive";
  let n = Catalog.n catalog in
  if Hypergraph.n hypergraph <> n then
    invalid_arg
      (Printf.sprintf "Blitzsplit_hyper: hypergraph over %d relations, catalog has %d"
         (Hypergraph.n hypergraph) n);
  let packed = Hypergraph.pack hypergraph in
  let edge_count = Hypergraph.packed_edge_count packed in
  if edge_count > max_hyperedges then
    invalid_arg
      (Printf.sprintf "Blitzsplit_hyper: %d hyperedges exceed the %d-bit mask" edge_count
         max_hyperedges);
  let member_mask = packed.Hypergraph.members in
  let sel = packed.Hypergraph.sel in
  let ctr = match counters with Some c -> c | None -> Counters.create () in
  ctr.Counters.passes <- ctr.Counters.passes + 1;
  let tbl =
    match arena with Some a -> Arena.acquire a n | None -> Dp_table.create n
  in
  Split_loop.init_singletons tbl model catalog;
  let slots = 1 lsl n in
  (* Bitmask of completed hyperedges per subset.  Singletons cannot
     complete any (hyperedges have >= 2 members). *)
  let completed = Array.make slots 0 in
  let card = tbl.Dp_table.card and aux = tbl.Dp_table.aux in
  for s = 3 to slots - 1 do
    if s land (s - 1) <> 0 then begin
      let u = s land (-s) in
      let v = s lxor u in
      let have = completed.(u) lor completed.(v) in
      (* Hyperedges completed exactly at this union. *)
      let span = ref 1.0 and now = ref have in
      for e = 0 to edge_count - 1 do
        if !now land (1 lsl e) = 0 && Relset.subset member_mask.(e) s then begin
          now := !now lor (1 lsl e);
          span := !span *. sel.(e)
        end
      done;
      completed.(s) <- !now;
      let c = card.(u) *. card.(v) *. !span in
      card.(s) <- c;
      tbl.Dp_table.pair.((2 * s) + 1) <- c;
      aux.(s) <- model.Cost_model.aux c;
      Split_loop.find_best_split tbl model ctr ~threshold s
    end
  done;
  { table = tbl; counters = ctr; catalog; hypergraph; model; threshold }

let full_set t = Dp_table.full_set t.table
let best_cost t = Dp_table.cost t.table (full_set t)
let feasible t = Float.is_finite (best_cost t)
let best_plan t = Dp_table.extract_plan t.table (full_set t)

let best_plan_exn t =
  match best_plan t with
  | Some plan -> plan
  | None -> failwith "Blitzsplit_hyper.best_plan_exn: no plan under the given threshold"

let subplan t s = Dp_table.extract_plan t.table s

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Obs = Blitz_obs.Obs

type outcome = { result : Blitzsplit.t; passes : int; final_threshold : float }

let m_passes =
  Obs.Metrics.counter ~help:"Thresholded optimization passes run (Section 6.4)"
    "blitz_threshold_passes_total"

let m_rescues =
  Obs.Metrics.counter ~help:"Forced unthresholded rescue passes after every attempt failed"
    "blitz_threshold_rescue_passes_total"

let m_skips =
  Obs.Metrics.counter ~help:"Subsets skipped by the plan-cost threshold filter"
    "blitz_threshold_skipped_subsets_total"

(* One driver serves every optimizer variant; only the feasibility probe
   differs.  [passes] counts optimization passes actually run — each
   thresholded attempt plus, when all attempts fail (or the growing
   threshold overflows to infinity), the forced unthresholded rescue
   pass, which always concludes the sequence with an answer. *)
let drive_generic ?(growth = 1e4) ?(max_passes = 16) ~threshold ~feasible run =
  if threshold <= 0.0 || not (Float.is_finite threshold) then
    invalid_arg "Threshold: initial threshold must be positive and finite";
  if growth <= 1.0 then invalid_arg "Threshold: growth must exceed 1";
  if max_passes < 1 then invalid_arg "Threshold: max_passes must be positive";
  let rec go passes_run threshold =
    if passes_run >= max_passes || not (Float.is_finite threshold) then begin
      (* Rescue pass: unthresholded, cannot fail. *)
      Obs.Metrics.incr m_passes;
      Obs.Metrics.incr m_rescues;
      let result = Obs.span "threshold.rescue" (fun () -> run ~threshold:Float.infinity) in
      (result, passes_run + 1, Float.infinity)
    end
    else begin
      Obs.Metrics.incr m_passes;
      let result =
        Obs.span "threshold.pass"
          ~attrs:
            [
              ("pass", string_of_int (passes_run + 1));
              ("threshold", Printf.sprintf "%g" threshold);
            ]
          (fun () -> run ~threshold)
      in
      if feasible result then (result, passes_run + 1, threshold)
      else go (passes_run + 1) (threshold *. growth)
    end
  in
  go 0 threshold

let drive ?counters ?growth ?max_passes ~threshold run =
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let skips_before = counters.Counters.threshold_skips in
  let result, passes, final_threshold =
    drive_generic ?growth ?max_passes ~threshold ~feasible:Blitzsplit.feasible
      (fun ~threshold -> run ~counters ~threshold)
  in
  (* The paper's own §6.4 statistic: how many subsets the threshold
     filter let the driver skip, summed over every pass of this call. *)
  Obs.Metrics.add m_skips (max 0 (counters.Counters.threshold_skips - skips_before));
  { result; passes; final_threshold }

(* Re-optimization passes reuse one table through an arena: without one a
   failed pass would throw away (and a retry reallocate) 7*8*2^n bytes.
   Callers that hold a session arena pass it in; otherwise the driver
   makes a private one so the multi-pass sequence still shares a table. *)
let private_arena = function Some a -> a | None -> Arena.create ()

let optimize_join ?arena ?counters ?growth ?max_passes ?interrupt ?multiway ~threshold model
    catalog graph =
  let arena = private_arena arena in
  drive ?counters ?growth ?max_passes ~threshold (fun ~counters ~threshold ->
      Blitzsplit.optimize_join ~arena ~counters ~threshold ?interrupt ?multiway model catalog
        graph)

let optimize_product ?arena ?counters ?growth ?max_passes ?interrupt ~threshold model catalog =
  let arena = private_arena arena in
  drive ?counters ?growth ?max_passes ~threshold (fun ~counters ~threshold ->
      Blitzsplit.optimize_product ~arena ~counters ~threshold ?interrupt model catalog)

type eq_outcome = { eq_result : Blitzsplit_eq.t; eq_passes : int; eq_final_threshold : float }

let optimize_eq ?arena ?counters ?growth ?max_passes ~threshold model catalog equivalence =
  let arena = private_arena arena in
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let eq_result, eq_passes, eq_final_threshold =
    drive_generic ?growth ?max_passes ~threshold ~feasible:Blitzsplit_eq.feasible
      (fun ~threshold ->
        Blitzsplit_eq.optimize ~arena ~counters ~threshold model catalog equivalence)
  in
  { eq_result; eq_passes; eq_final_threshold }

type hyper_outcome = {
  hyper_result : Blitzsplit_hyper.t;
  hyper_passes : int;
  hyper_final_threshold : float;
}

let optimize_hyper ?arena ?counters ?growth ?max_passes ~threshold model catalog hypergraph =
  let arena = private_arena arena in
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let hyper_result, hyper_passes, hyper_final_threshold =
    drive_generic ?growth ?max_passes ~threshold ~feasible:Blitzsplit_hyper.feasible
      (fun ~threshold ->
        Blitzsplit_hyper.optimize ~arena ~counters ~threshold model catalog hypergraph)
  in
  { hyper_result; hyper_passes; hyper_final_threshold }

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model

type outcome = { result : Blitzsplit.t; passes : int; final_threshold : float }

let drive ?counters ?(growth = 1e4) ?(max_passes = 16) ~threshold run =
  if threshold <= 0.0 || not (Float.is_finite threshold) then
    invalid_arg "Threshold: initial threshold must be positive and finite";
  if growth <= 1.0 then invalid_arg "Threshold: growth must exceed 1";
  if max_passes < 1 then invalid_arg "Threshold: max_passes must be positive";
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let rec go pass threshold =
    if pass > max_passes || not (Float.is_finite threshold) then begin
      let result = run ~counters ~threshold:Float.infinity in
      { result; passes = pass; final_threshold = Float.infinity }
    end
    else begin
      let result = run ~counters ~threshold in
      if Blitzsplit.feasible result then { result; passes = pass; final_threshold = threshold }
      else go (pass + 1) (threshold *. growth)
    end
  in
  go 1 threshold

let optimize_join ?counters ?growth ?max_passes ~threshold model catalog graph =
  drive ?counters ?growth ?max_passes ~threshold (fun ~counters ~threshold ->
      Blitzsplit.optimize_join ~counters ~threshold model catalog graph)

let optimize_product ?counters ?growth ?max_passes ~threshold model catalog =
  drive ?counters ?growth ?max_passes ~threshold (fun ~counters ~threshold ->
      Blitzsplit.optimize_product ~counters ~threshold model catalog)

(* The variant optimizers share the split loop, so the same generic
   driver applies; only the feasibility probe differs. *)
let drive_generic ?counters ?(growth = 1e4) ?(max_passes = 16) ~threshold ~feasible run =
  if threshold <= 0.0 || not (Float.is_finite threshold) then
    invalid_arg "Threshold: initial threshold must be positive and finite";
  if growth <= 1.0 then invalid_arg "Threshold: growth must exceed 1";
  if max_passes < 1 then invalid_arg "Threshold: max_passes must be positive";
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let rec go pass threshold =
    if pass > max_passes || not (Float.is_finite threshold) then
      (run ~counters ~threshold:Float.infinity, pass, Float.infinity)
    else begin
      let result = run ~counters ~threshold in
      if feasible result then (result, pass, threshold) else go (pass + 1) (threshold *. growth)
    end
  in
  go 1 threshold

type eq_outcome = { eq_result : Blitzsplit_eq.t; eq_passes : int; eq_final_threshold : float }

let optimize_eq ?counters ?growth ?max_passes ~threshold model catalog equivalence =
  let eq_result, eq_passes, eq_final_threshold =
    drive_generic ?counters ?growth ?max_passes ~threshold ~feasible:Blitzsplit_eq.feasible
      (fun ~counters ~threshold -> Blitzsplit_eq.optimize ~counters ~threshold model catalog equivalence)
  in
  { eq_result; eq_passes; eq_final_threshold }

type hyper_outcome = {
  hyper_result : Blitzsplit_hyper.t;
  hyper_passes : int;
  hyper_final_threshold : float;
}

let optimize_hyper ?counters ?growth ?max_passes ~threshold model catalog hypergraph =
  let hyper_result, hyper_passes, hyper_final_threshold =
    drive_generic ?counters ?growth ?max_passes ~threshold ~feasible:Blitzsplit_hyper.feasible
      (fun ~counters ~threshold ->
        Blitzsplit_hyper.optimize ~counters ~threshold model catalog hypergraph)
  in
  { hyper_result; hyper_passes; hyper_final_threshold }

(** Algorithm blitzsplit: exhaustive bushy join-order optimization with
    Cartesian products (Vance & Maier, SIGMOD 1996, Sections 3-5).

    Dynamic programming over every nonempty subset of the relation set,
    visiting subsets in increasing bitset-integer order (which guarantees
    all proper subsets of a set precede it, Section 4.2).  For each subset
    the best 2-way split is found by stepping through all nonempty proper
    subsets with the constant-time successor [succ(l) = s land (l - s)].

    Join predicates enter only through the cardinality computation: the
    fan recurrence of Section 5.3 folds every predicate selectivity into
    [card] with three floating multiplications per subset, so the split
    loop — the [O(3^n)] heart — is byte-for-byte the same for Cartesian
    products and for joins.  Plans containing Cartesian products are
    found exactly when they are optimal.

    Time [O(3^n)]; space [O(2^n)] (the table).  An optional plan-cost
    threshold (Section 6.4) prunes: any subset whose best plan would cost
    at least the threshold is marked infeasible, which can make the whole
    optimization fail — see {!Threshold} for the multi-pass driver. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type t = {
  table : Dp_table.t;
  counters : Counters.t;
  catalog : Catalog.t;
  graph : Join_graph.t;  (** Predicate-free for product optimization. *)
  model : Cost_model.t;
  threshold : float;  (** [infinity] when no threshold was applied. *)
  multiway : Multiway.t option;
      (** The n-ary side table when multiway planning was on ([None]
          otherwise); plan extraction consults it for sentinel entries. *)
}
(** The outcome of one optimization pass. *)

exception Interrupted
(** Raised out of an optimization when the [interrupt] probe fires.  The
    partially filled table is discarded; catch this to fall back to a
    cheaper algorithm (see the [blitz_guard] degradation cascade). *)

val optimize_join :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?threshold:float ->
  ?interrupt:(unit -> bool) ->
  ?multiway:bool ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  t
(** Optimize the join of all catalog relations under the graph's
    predicates.  [arena] makes the DP table come out of a session
    workspace instead of a fresh allocation (bit-identical results —
    see {!Arena}); the returned [table] is a view of the arena's buffer,
    valid until the arena's next acquire.  [counters] accumulates across
    calls when supplied (fresh otherwise); [threshold] defaults to
    [infinity].  [interrupt] makes the [O(3^n)] DP cancellable: it is
    polled every 64 processed subsets (cheap — [2^n / 64] calls against
    [3^n] loop work) and a [true] return raises {!Interrupted}.
    [~multiway:true] additionally tries an n-ary AGM-costed candidate on
    every 2-edge-connected subset (see {!Multiway}); acyclic queries are
    structurally unaffected and their tables stay bit-identical.  Raises
    [Invalid_argument] when the graph's size differs from the catalog's,
    or when the catalog exceeds {!Dp_table.max_relations} relations. *)

val optimize_product :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?threshold:float ->
  ?interrupt:(unit -> bool) ->
  Cost_model.t ->
  Catalog.t ->
  t
(** Section 3: pure Cartesian-product optimization — the specialized
    variant without the fan computation. *)

(** {1 Inspecting results} *)

val feasible : t -> bool
(** False only when a finite threshold pruned away every complete plan. *)

val best_cost : t -> float
(** Cost of the optimal plan, or [infinity] when infeasible. *)

val best_plan : t -> Plan.t option
(** The optimal plan, extracted from the table. *)

val best_plan_exn : t -> Plan.t
(** Like {!best_plan}; raises [Failure] when infeasible. *)

val subplan : t -> Relset.t -> Plan.t option
(** Optimal plan for any subset of the relations (the table holds them
    all). *)

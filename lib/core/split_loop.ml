module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model

(* Hot-path array accesses use [unsafe_get]/[unsafe_set]: every index is
   a nonempty subset of the n relations, i.e. an integer in [1, 2^n), and
   the arrays have exactly 2^n slots — [lhs] and its complement are
   nonempty proper subsets of [s], and [s] itself is below [2^n] by
   construction of the enumeration loops.  The checked variants cost ~15%
   of the split loop on this kernel (two bounds tests per iteration). *)

(* The split loop of find_best_split (Figure 1, realized per Section 4.2).
   [lhs] walks all nonempty proper subsets of [s] via the successor trick;
   nested ifs defer the kappa'' evaluation until both operand costs and
   their sum beat the best split so far (Section 6.2). *)
let find_best_split (tbl : Dp_table.t) (model : Cost_model.t) (ctr : Counters.t) ~threshold s =
  let cost = tbl.cost and card = tbl.card and aux = tbl.aux in
  ctr.subsets <- ctr.subsets + 1;
  let out = Array.unsafe_get card s in
  let kp = model.k_prime out in
  if kp >= threshold then begin
    (* kappa' alone already "overflows": skip the loop entirely. *)
    ctr.threshold_skips <- ctr.threshold_skips + 1;
    ctr.infeasible <- ctr.infeasible + 1;
    Array.unsafe_set cost s Float.infinity;
    Array.unsafe_set tbl.best_lhs s 0
  end
  else begin
    let k_dprime = model.k_dprime in
    let dprime_is_zero = model.dprime_is_zero in
    (* Splits must come in under [threshold - kappa'] for the total plan
       cost to stay below the threshold. *)
    let best_cost_so_far = ref (threshold -. kp) in
    let best_lhs = ref 0 in
    let lhs = ref (s land (-s)) in
    let iters = ref 0 in
    while !lhs <> s do
      incr iters;
      let l = !lhs in
      let cl = Array.unsafe_get cost l in
      if cl < !best_cost_so_far then begin
        let r = s lxor l in
        let cr = Array.unsafe_get cost r in
        if cr < !best_cost_so_far then begin
          ctr.operand_sums <- ctr.operand_sums + 1;
          let oprnd_cost = cl +. cr in
          if oprnd_cost < !best_cost_so_far then begin
            let dpnd_cost =
              if dprime_is_zero then oprnd_cost
              else begin
                ctr.dprime_evals <- ctr.dprime_evals + 1;
                oprnd_cost
                +. k_dprime ~out ~lcard:(Array.unsafe_get card l)
                     ~rcard:(Array.unsafe_get card r) ~laux:(Array.unsafe_get aux l)
                     ~raux:(Array.unsafe_get aux r)
              end
            in
            if dpnd_cost < !best_cost_so_far then begin
              ctr.improvements <- ctr.improvements + 1;
              best_cost_so_far := dpnd_cost;
              best_lhs := l
            end
          end
        end
      end;
      lhs := s land (l - s)
    done;
    ctr.loop_iters <- ctr.loop_iters + !iters;
    if !best_lhs = 0 then begin
      ctr.infeasible <- ctr.infeasible + 1;
      Array.unsafe_set cost s Float.infinity;
      Array.unsafe_set tbl.best_lhs s 0
    end
    else begin
      Array.unsafe_set cost s (!best_cost_so_far +. kp);
      Array.unsafe_set tbl.best_lhs s !best_lhs
    end
  end

(* compute_properties for join optimization (Section 5.4): the fan
   recurrence Pi_fan(S) = Pi_fan(U+W) * Pi_fan(U+Z), seeded with raw
   predicate selectivities on doubletons, then
   card(S) = card(U) * card(V) * Pi_fan(S)  (Equation 11). *)
let compute_properties_join (tbl : Dp_table.t) (model : Cost_model.t) graph s =
  let pi_fan = tbl.pi_fan and card = tbl.card in
  let u = s land (-s) in
  let v = s lxor u in
  let fan =
    if v land (v - 1) = 0 then Join_graph.selectivity graph (Relset.min_elt u) (Relset.min_elt v)
    else begin
      let w = v land (-v) in
      let z = v lxor w in
      Array.unsafe_get pi_fan (u lor w) *. Array.unsafe_get pi_fan (u lor z)
    end
  in
  Array.unsafe_set pi_fan s fan;
  let c = Array.unsafe_get card u *. Array.unsafe_get card v *. fan in
  Array.unsafe_set card s c;
  Array.unsafe_set tbl.aux s (model.aux c)

(* compute_properties for Cartesian products (Figure 1): just the
   cardinality product.  Never touches [pi_fan] (which the product path
   leaves unallocated). *)
let compute_properties_product (tbl : Dp_table.t) (model : Cost_model.t) s =
  let card = tbl.card in
  let u = s land (-s) in
  let v = s lxor u in
  let c = Array.unsafe_get card u *. Array.unsafe_get card v in
  Array.unsafe_set card s c;
  Array.unsafe_set tbl.aux s (model.aux c)

let init_singletons (tbl : Dp_table.t) (model : Cost_model.t) catalog =
  let n = Catalog.n catalog in
  let fan = Dp_table.has_pi_fan tbl in
  for i = 0 to n - 1 do
    let s = 1 lsl i in
    let c = Catalog.card catalog i in
    tbl.card.(s) <- c;
    tbl.cost.(s) <- 0.0;
    tbl.best_lhs.(s) <- 0;
    if fan then tbl.pi_fan.(s) <- 1.0;
    tbl.aux.(s) <- model.aux c
  done

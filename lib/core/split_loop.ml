module Catalog = Blitz_catalog.Catalog
module Cost_model = Blitz_cost.Cost_model

(* The split loop of find_best_split (Figure 1, realized per Section 4.2).
   [lhs] walks all nonempty proper subsets of [s] via the successor trick;
   nested ifs defer the kappa'' evaluation until both operand costs and
   their sum beat the best split so far (Section 6.2). *)
let find_best_split (tbl : Dp_table.t) (model : Cost_model.t) (ctr : Counters.t) ~threshold s =
  let cost = tbl.cost and card = tbl.card and aux = tbl.aux in
  ctr.subsets <- ctr.subsets + 1;
  let out = card.(s) in
  let kp = model.k_prime out in
  if kp >= threshold then begin
    (* kappa' alone already "overflows": skip the loop entirely. *)
    ctr.threshold_skips <- ctr.threshold_skips + 1;
    ctr.infeasible <- ctr.infeasible + 1;
    tbl.cost.(s) <- Float.infinity;
    tbl.best_lhs.(s) <- 0
  end
  else begin
    let k_dprime = model.k_dprime in
    let dprime_is_zero = model.dprime_is_zero in
    (* Splits must come in under [threshold - kappa'] for the total plan
       cost to stay below the threshold. *)
    let best_cost_so_far = ref (threshold -. kp) in
    let best_lhs = ref 0 in
    let lhs = ref (s land (-s)) in
    let iters = ref 0 in
    while !lhs <> s do
      incr iters;
      let l = !lhs in
      let cl = cost.(l) in
      if cl < !best_cost_so_far then begin
        let r = s lxor l in
        let cr = cost.(r) in
        if cr < !best_cost_so_far then begin
          ctr.operand_sums <- ctr.operand_sums + 1;
          let oprnd_cost = cl +. cr in
          if oprnd_cost < !best_cost_so_far then begin
            let dpnd_cost =
              if dprime_is_zero then oprnd_cost
              else begin
                ctr.dprime_evals <- ctr.dprime_evals + 1;
                oprnd_cost
                +. k_dprime ~out ~lcard:card.(l) ~rcard:card.(r) ~laux:aux.(l) ~raux:aux.(r)
              end
            in
            if dpnd_cost < !best_cost_so_far then begin
              ctr.improvements <- ctr.improvements + 1;
              best_cost_so_far := dpnd_cost;
              best_lhs := l
            end
          end
        end
      end;
      lhs := s land (l - s)
    done;
    ctr.loop_iters <- ctr.loop_iters + !iters;
    if !best_lhs = 0 then begin
      ctr.infeasible <- ctr.infeasible + 1;
      tbl.cost.(s) <- Float.infinity;
      tbl.best_lhs.(s) <- 0
    end
    else begin
      tbl.cost.(s) <- !best_cost_so_far +. kp;
      tbl.best_lhs.(s) <- !best_lhs
    end
  end

let init_singletons (tbl : Dp_table.t) (model : Cost_model.t) catalog =
  let n = Catalog.n catalog in
  for i = 0 to n - 1 do
    let s = 1 lsl i in
    let c = Catalog.card catalog i in
    tbl.card.(s) <- c;
    tbl.cost.(s) <- 0.0;
    tbl.best_lhs.(s) <- 0;
    tbl.pi_fan.(s) <- 1.0;
    tbl.aux.(s) <- model.aux c
  done


module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model

(* Hot-path array accesses use [unsafe_get]/[unsafe_set]: every index is
   a nonempty subset of the n relations, i.e. an integer in [1, 2^n), and
   the arrays have exactly 2^n slots (the pair column 2 * 2^n) — [lhs]
   and its complement are nonempty proper subsets of [s], and [s] itself
   is below [2^n] by construction of the enumeration loops.  The checked
   variants cost ~15% of the split loop on this kernel (two bounds tests
   per iteration). *)


(* The split loop of find_best_split (Figure 1, realized per Section 4.2)
   as four monomorphized loop bodies in one function, dispatched once per
   subset on [Cost_model.kind]:

   - "zero"       kappa'' = 0 (naive, and any Opaque model that declares
                  [dprime_is_zero]): no kappa'' tier at all; reads only
                  the dense [cost] column (eight subset costs per 64-byte
                  line — denser than the interleaved pair rows, and card
                  is never needed);
   - "sum-aux"    sort-merge: kappa'' = laux + raux inlined, read from
                  the [cost] and [aux] columns;
   - "dnl-paired" disk nested loops: kappa'' inlined from the model's
                  captured constants, operand (cost, card) read from the
                  interleaved 16-byte [pair] rows — one cache line per
                  operand instead of two distant ones;
   - "general"    anything [Opaque] with a real kappa'': the closure is
                  called per evaluation (boxing its float arguments —
                  the only body that allocates).

   The bodies are spelled out inline rather than shared through helper
   functions because no float may cross a function boundary: without
   flambda, ocamlopt boxes every float argument at a call, so a
   tail-recursive kernel or a float-taking epilogue would allocate on
   each improvement.  Inside one function, local float refs compile to
   unboxed mutable variables (reference elimination), so the paper-model
   bodies are allocation-free — `bench split` gates Gc.minor_words
   delta = 0 across a warm sweep.  [lhs] walks all nonempty proper
   subsets of [s] via the successor trick; nested ifs defer the kappa''
   evaluation until both operand costs and their sum beat the best split
   so far (Section 6.2).  All bodies reproduce the reference kernel's
   float expressions and counter updates exactly, so costs, [best_lhs]
   links and counters are bit-identical to {!Reference}
   (QCheck-enforced). *)

(* kappa' alone already "overflows" the threshold: skip the split loop
   entirely.  Shared across bodies — only word-sized arguments, so the
   call cannot box. *)
let skip_subset (tbl : Dp_table.t) (ctr : Counters.t) s =
  ctr.threshold_skips <- ctr.threshold_skips + 1;
  ctr.infeasible <- ctr.infeasible + 1;
  Array.unsafe_set tbl.cost s Float.infinity;
  Array.unsafe_set tbl.pair (2 * s) Float.infinity;
  Array.unsafe_set tbl.best_lhs s 0

let find_best_split (tbl : Dp_table.t) (model : Cost_model.t) (ctr : Counters.t) ~threshold s =
  ctr.subsets <- ctr.subsets + 1;
  let out = Array.unsafe_get tbl.card s in
  match model.kind with
  | Cost_model.Paper_naive ->
    (* kappa' = out, kappa'' = 0 — no closure even once per subset. *)
    let kp = out in
    if kp >= threshold then skip_subset tbl ctr s
    else begin
      let cost = tbl.cost in
      let best_cost = ref (threshold -. kp) in
      let best_lhs = ref 0 in
      let lhs = ref (s land (-s)) in
      let iters = ref 0 in
      while !lhs <> s do
        incr iters;
        let l = !lhs in
        let cl = Array.unsafe_get cost l in
        if cl < !best_cost then begin
          let cr = Array.unsafe_get cost (s lxor l) in
          if cr < !best_cost then begin
            ctr.operand_sums <- ctr.operand_sums + 1;
            let oprnd = cl +. cr in
            if oprnd < !best_cost then begin
              ctr.improvements <- ctr.improvements + 1;
              best_cost := oprnd;
              best_lhs := l
            end
          end
        end;
        lhs := s land (l - s)
      done;
      ctr.loop_iters <- ctr.loop_iters + !iters;
      if !best_lhs = 0 then begin
        ctr.infeasible <- ctr.infeasible + 1;
        Array.unsafe_set cost s Float.infinity;
        Array.unsafe_set tbl.pair (2 * s) Float.infinity;
        Array.unsafe_set tbl.best_lhs s 0
      end
      else begin
        let c = !best_cost +. kp in
        Array.unsafe_set cost s c;
        Array.unsafe_set tbl.pair (2 * s) c;
        Array.unsafe_set tbl.best_lhs s !best_lhs
      end
    end
  | Cost_model.Paper_sort_merge ->
    (* kappa' = 0, kappa'' = laux + raux from the memo column. *)
    if 0.0 >= threshold then skip_subset tbl ctr s
    else begin
      let cost = tbl.cost and aux = tbl.aux in
      let best_cost = ref threshold in
      let best_lhs = ref 0 in
      let lhs = ref (s land (-s)) in
      let iters = ref 0 in
      while !lhs <> s do
        incr iters;
        let l = !lhs in
        let cl = Array.unsafe_get cost l in
        if cl < !best_cost then begin
          let r = s lxor l in
          let cr = Array.unsafe_get cost r in
          if cr < !best_cost then begin
            ctr.operand_sums <- ctr.operand_sums + 1;
            let oprnd = cl +. cr in
            if oprnd < !best_cost then begin
              ctr.dprime_evals <- ctr.dprime_evals + 1;
              let dpnd = oprnd +. (Array.unsafe_get aux l +. Array.unsafe_get aux r) in
              if dpnd < !best_cost then begin
                ctr.improvements <- ctr.improvements + 1;
                best_cost := dpnd;
                best_lhs := l
              end
            end
          end
        end;
        lhs := s land (l - s)
      done;
      ctr.loop_iters <- ctr.loop_iters + !iters;
      if !best_lhs = 0 then begin
        ctr.infeasible <- ctr.infeasible + 1;
        Array.unsafe_set cost s Float.infinity;
        Array.unsafe_set tbl.pair (2 * s) Float.infinity;
        Array.unsafe_set tbl.best_lhs s 0
      end
      else begin
        (* kappa' = 0: the best split cost IS the subset cost ([+. 0.]
           preserved for bit-identity with Reference's [+. kp]). *)
        let c = !best_cost +. 0.0 in
        Array.unsafe_set cost s c;
        Array.unsafe_set tbl.pair (2 * s) c;
        Array.unsafe_set tbl.best_lhs s !best_lhs
      end
    end
  | Cost_model.Paper_dnl { k; inner_coeff } ->
    (* kappa' = 2 out / k; kappa'' inlined from the captured constants.
       Operand (cost, card) come from the interleaved pair rows: the
       evaluation tier reads the card 8 bytes after the cost it just
       compared, on the same cache line. *)
    let kp = 2.0 *. out /. k in
    if kp >= threshold then skip_subset tbl ctr s
    else begin
      let pair = tbl.pair in
      let best_cost = ref (threshold -. kp) in
      let best_lhs = ref 0 in
      let lhs = ref (s land (-s)) in
      let iters = ref 0 in
      while !lhs <> s do
        incr iters;
        let l = !lhs in
        let cl = Array.unsafe_get pair (2 * l) in
        if cl < !best_cost then begin
          let r = s lxor l in
          let cr = Array.unsafe_get pair (2 * r) in
          if cr < !best_cost then begin
            ctr.operand_sums <- ctr.operand_sums + 1;
            let oprnd = cl +. cr in
            if oprnd < !best_cost then begin
              ctr.dprime_evals <- ctr.dprime_evals + 1;
              let lcard = Array.unsafe_get pair ((2 * l) + 1) in
              let rcard = Array.unsafe_get pair ((2 * r) + 1) in
              let dpnd =
                oprnd +. ((lcard *. rcard *. inner_coeff) +. (Float.min lcard rcard /. k))
              in
              if dpnd < !best_cost then begin
                ctr.improvements <- ctr.improvements + 1;
                best_cost := dpnd;
                best_lhs := l
              end
            end
          end
        end;
        lhs := s land (l - s)
      done;
      ctr.loop_iters <- ctr.loop_iters + !iters;
      if !best_lhs = 0 then begin
        ctr.infeasible <- ctr.infeasible + 1;
        Array.unsafe_set tbl.cost s Float.infinity;
        Array.unsafe_set pair (2 * s) Float.infinity;
        Array.unsafe_set tbl.best_lhs s 0
      end
      else begin
        let c = !best_cost +. kp in
        Array.unsafe_set tbl.cost s c;
        Array.unsafe_set pair (2 * s) c;
        Array.unsafe_set tbl.best_lhs s !best_lhs
      end
    end
  | Cost_model.Opaque ->
    let kp = model.k_prime out in
    if kp >= threshold then skip_subset tbl ctr s
    else if model.dprime_is_zero then begin
      (* Same body as Paper_naive, under the model's own kappa'. *)
      let cost = tbl.cost in
      let best_cost = ref (threshold -. kp) in
      let best_lhs = ref 0 in
      let lhs = ref (s land (-s)) in
      let iters = ref 0 in
      while !lhs <> s do
        incr iters;
        let l = !lhs in
        let cl = Array.unsafe_get cost l in
        if cl < !best_cost then begin
          let cr = Array.unsafe_get cost (s lxor l) in
          if cr < !best_cost then begin
            ctr.operand_sums <- ctr.operand_sums + 1;
            let oprnd = cl +. cr in
            if oprnd < !best_cost then begin
              ctr.improvements <- ctr.improvements + 1;
              best_cost := oprnd;
              best_lhs := l
            end
          end
        end;
        lhs := s land (l - s)
      done;
      ctr.loop_iters <- ctr.loop_iters + !iters;
      if !best_lhs = 0 then begin
        ctr.infeasible <- ctr.infeasible + 1;
        Array.unsafe_set cost s Float.infinity;
        Array.unsafe_set tbl.pair (2 * s) Float.infinity;
        Array.unsafe_set tbl.best_lhs s 0
      end
      else begin
        let c = !best_cost +. kp in
        Array.unsafe_set cost s c;
        Array.unsafe_set tbl.pair (2 * s) c;
        Array.unsafe_set tbl.best_lhs s !best_lhs
      end
    end
    else begin
      (* General body: kappa'' through the closure (boxes its float
         arguments — unavoidable without specialization).  Operand rows
         still come interleaved from [pair]. *)
      let pair = tbl.pair and aux = tbl.aux in
      let k_dprime = model.k_dprime in
      let best_cost = ref (threshold -. kp) in
      let best_lhs = ref 0 in
      let lhs = ref (s land (-s)) in
      let iters = ref 0 in
      while !lhs <> s do
        incr iters;
        let l = !lhs in
        let cl = Array.unsafe_get pair (2 * l) in
        if cl < !best_cost then begin
          let r = s lxor l in
          let cr = Array.unsafe_get pair (2 * r) in
          if cr < !best_cost then begin
            ctr.operand_sums <- ctr.operand_sums + 1;
            let oprnd = cl +. cr in
            if oprnd < !best_cost then begin
              ctr.dprime_evals <- ctr.dprime_evals + 1;
              let dpnd =
                oprnd
                +. k_dprime ~out
                     ~lcard:(Array.unsafe_get pair ((2 * l) + 1))
                     ~rcard:(Array.unsafe_get pair ((2 * r) + 1))
                     ~laux:(Array.unsafe_get aux l) ~raux:(Array.unsafe_get aux r)
              in
              if dpnd < !best_cost then begin
                ctr.improvements <- ctr.improvements + 1;
                best_cost := dpnd;
                best_lhs := l
              end
            end
          end
        end;
        lhs := s land (l - s)
      done;
      ctr.loop_iters <- ctr.loop_iters + !iters;
      if !best_lhs = 0 then begin
        ctr.infeasible <- ctr.infeasible + 1;
        Array.unsafe_set tbl.cost s Float.infinity;
        Array.unsafe_set pair (2 * s) Float.infinity;
        Array.unsafe_set tbl.best_lhs s 0
      end
      else begin
        let c = !best_cost +. kp in
        Array.unsafe_set tbl.cost s c;
        Array.unsafe_set pair (2 * s) c;
        Array.unsafe_set tbl.best_lhs s !best_lhs
      end
    end

let variant (model : Cost_model.t) =
  match model.kind with
  | Cost_model.Paper_naive -> "zero"
  | Cost_model.Paper_sort_merge -> "sum-aux"
  | Cost_model.Paper_dnl _ -> "dnl-paired"
  | Cost_model.Opaque -> if model.dprime_is_zero then "zero" else "general"

(* The pre-refactor kernel, kept verbatim for differential testing and
   as the baseline the `bench split` speedup gate measures against.  Its
   only change is mirroring the final cost write into the interleaved
   pair row, so tables stay coherent when reference and specialized
   sweeps interleave on the same buffers (the mirror is outside the
   timed loop: one store per subset). *)
module Reference = struct
  let find_best_split (tbl : Dp_table.t) (model : Cost_model.t) (ctr : Counters.t) ~threshold s
      =
    let cost = tbl.cost and card = tbl.card and aux = tbl.aux in
    ctr.subsets <- ctr.subsets + 1;
    let out = Array.unsafe_get card s in
    let kp = model.k_prime out in
    if kp >= threshold then begin
      ctr.threshold_skips <- ctr.threshold_skips + 1;
      ctr.infeasible <- ctr.infeasible + 1;
      Array.unsafe_set cost s Float.infinity;
      Array.unsafe_set tbl.pair (2 * s) Float.infinity;
      Array.unsafe_set tbl.best_lhs s 0
    end
    else begin
      let k_dprime = model.k_dprime in
      let dprime_is_zero = model.dprime_is_zero in
      (* Splits must come in under [threshold - kappa'] for the total
         plan cost to stay below the threshold. *)
      let best_cost_so_far = ref (threshold -. kp) in
      let best_lhs = ref 0 in
      let lhs = ref (s land (-s)) in
      let iters = ref 0 in
      while !lhs <> s do
        incr iters;
        let l = !lhs in
        let cl = Array.unsafe_get cost l in
        if cl < !best_cost_so_far then begin
          let r = s lxor l in
          let cr = Array.unsafe_get cost r in
          if cr < !best_cost_so_far then begin
            ctr.operand_sums <- ctr.operand_sums + 1;
            let oprnd_cost = cl +. cr in
            if oprnd_cost < !best_cost_so_far then begin
              let dpnd_cost =
                if dprime_is_zero then oprnd_cost
                else begin
                  ctr.dprime_evals <- ctr.dprime_evals + 1;
                  oprnd_cost
                  +. k_dprime ~out ~lcard:(Array.unsafe_get card l)
                       ~rcard:(Array.unsafe_get card r) ~laux:(Array.unsafe_get aux l)
                       ~raux:(Array.unsafe_get aux r)
                end
              in
              if dpnd_cost < !best_cost_so_far then begin
                ctr.improvements <- ctr.improvements + 1;
                best_cost_so_far := dpnd_cost;
                best_lhs := l
              end
            end
          end
        end;
        lhs := s land (l - s)
      done;
      ctr.loop_iters <- ctr.loop_iters + !iters;
      if !best_lhs = 0 then begin
        ctr.infeasible <- ctr.infeasible + 1;
        Array.unsafe_set cost s Float.infinity;
        Array.unsafe_set tbl.pair (2 * s) Float.infinity;
        Array.unsafe_set tbl.best_lhs s 0
      end
      else begin
        let c = !best_cost_so_far +. kp in
        Array.unsafe_set cost s c;
        Array.unsafe_set tbl.pair (2 * s) c;
        Array.unsafe_set tbl.best_lhs s !best_lhs
      end
    end
end

(* compute_properties for join optimization (Section 5.4): the fan
   recurrence Pi_fan(S) = Pi_fan(U+W) * Pi_fan(U+Z), seeded with raw
   predicate selectivities on doubletons, then
   card(S) = card(U) * card(V) * Pi_fan(S)  (Equation 11).  Cardinality
   writes are mirrored into the interleaved pair row. *)
let compute_properties_join (tbl : Dp_table.t) (model : Cost_model.t) graph s =
  let pi_fan = tbl.pi_fan and card = tbl.card in
  let u = s land (-s) in
  let v = s lxor u in
  let fan =
    if v land (v - 1) = 0 then Join_graph.selectivity graph (Relset.min_elt u) (Relset.min_elt v)
    else begin
      let w = v land (-v) in
      let z = v lxor w in
      Array.unsafe_get pi_fan (u lor w) *. Array.unsafe_get pi_fan (u lor z)
    end
  in
  Array.unsafe_set pi_fan s fan;
  let c = Array.unsafe_get card u *. Array.unsafe_get card v *. fan in
  Array.unsafe_set card s c;
  Array.unsafe_set tbl.pair ((2 * s) + 1) c;
  Array.unsafe_set tbl.aux s (model.aux c)

(* compute_properties for Cartesian products (Figure 1): just the
   cardinality product.  Never touches [pi_fan] (which the product path
   leaves unallocated). *)
let compute_properties_product (tbl : Dp_table.t) (model : Cost_model.t) s =
  let card = tbl.card in
  let u = s land (-s) in
  let v = s lxor u in
  let c = Array.unsafe_get card u *. Array.unsafe_get card v in
  Array.unsafe_set card s c;
  Array.unsafe_set tbl.pair ((2 * s) + 1) c;
  Array.unsafe_set tbl.aux s (model.aux c)

let init_singletons (tbl : Dp_table.t) (model : Cost_model.t) catalog =
  let n = Catalog.n catalog in
  let fan = Dp_table.has_pi_fan tbl in
  for i = 0 to n - 1 do
    let s = 1 lsl i in
    let c = Catalog.card catalog i in
    tbl.card.(s) <- c;
    tbl.cost.(s) <- 0.0;
    tbl.best_lhs.(s) <- 0;
    tbl.pair.(2 * s) <- 0.0;
    tbl.pair.((2 * s) + 1) <- c;
    if fan then tbl.pi_fan.(s) <- 1.0;
    tbl.aux.(s) <- model.aux c
  done

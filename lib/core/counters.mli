(** Execution-count instrumentation for the blitzsplit inner loop.

    Section 3.3 derives the expected counts that dominate running time —
    [3^n] split-loop iterations, between [(ln 2 / 2) n 2^n] and [3^n]
    evaluations of [kappa''] depending on cost spacing (Section 6.2), and
    [2^n] per-subset straight-line executions.  These counters let the
    benchmarks verify those predictions empirically (experiment
    "counts"). *)

type t = {
  mutable subsets : int;
      (** Calls to find_best_split: non-singleton subsets processed. *)
  mutable loop_iters : int;
      (** Split-loop iterations in aggregate (the [3^n] term). *)
  mutable operand_sums : int;
      (** Iterations passing the nested-[if] operand-cost checks (both
          operand costs below best-so-far). *)
  mutable dprime_evals : int;
      (** Evaluations of [kappa''] (always 0 for the naive model, whose
          [kappa''] is identically zero). *)
  mutable improvements : int;
      (** Times a split improved on the best so far (the harmonic-series
          [(ln 2 / 2) n 2^n] term). *)
  mutable threshold_skips : int;
      (** Subsets whose split loop was skipped because [kappa'] already
          met the plan-cost threshold (Section 6.4). *)
  mutable infeasible : int;
      (** Subsets for which no split beat the threshold. *)
  mutable passes : int;
      (** Optimization passes (> 1 only under threshold re-optimization). *)
  mutable ccp_pairs : int;
      (** Csg-cmp pairs folded by the dpccp driver (0 for blitzsplit,
          whose split loop is counted in [loop_iters]).  The headline
          comparison is [ccp_pairs] vs {!exact_loop_iters}: what
          connectivity pruning saves on sparse graphs. *)
  mutable multiway_wins : int;
      (** Subsets whose best plan is an n-ary [Multiway] node: the AGM
          bound over a cyclic core beat every binary split (0 whenever
          multiway planning is off, and structurally 0 on acyclic
          topologies).  Like [ccp_pairs], printed only when nonzero. *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val merge_into : from:t -> into:t -> unit
(** Add every field of [from] into [into].  All fields are plain sums of
    per-subset events, so merging per-domain counters at a barrier gives
    exactly the sequential counts regardless of how subsets were
    scheduled (the rank-parallel driver relies on this). *)

(** {1 Analytic predictions (Section 3.3)} *)

val exact_loop_iters : int -> int
(** Exact aggregate split-loop count without thresholds:
    [3^n - 2^(n+1) + 1]. *)

val predicted_dprime_lower : int -> float
(** [(ln 2 / 2) n 2^n], the expected count when cost spacing lets the
    nested-[if]s reject most splits early. *)

val predicted_dprime_upper : int -> float
(** [3^n], the worst case when all splits cost alike. *)

val pp : Format.formatter -> t -> unit

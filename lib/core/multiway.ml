module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Hypergraph = Blitz_graph.Hypergraph
module Agm = Blitz_cost.Agm
module Plan = Blitz_plan.Plan

(* The Dp_table has one integer per subset to name the best plan's shape
   (best_lhs), which cannot describe an n-ary node.  Rather than widen
   the hot table by another column that is zero for every acyclic query,
   multiway winners use the sentinel [best_lhs.(s) = s] (impossible for
   a real split, whose lhs is a proper subset) and park their cover in
   this side table, keyed by the subset.  Everything stays O(1) per
   winning subset, and the table layout — and therefore the split loop's
   cache behavior — is untouched. *)

type t = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  packed : Hypergraph.packed;  (* packed once per query, not per subset *)
  entries : (int, Agm.cover) Hashtbl.t;
}

let create catalog graph =
  {
    catalog;
    graph;
    packed = Hypergraph.pack (Hypergraph.of_join_graph graph);
    entries = Hashtbl.create 64;
  }

(* Structural gate: only 2-edge-connected induced subgraphs (a cyclic
   core) get an n-ary candidate.  On acyclic topologies this is false
   for every subset, so multiway planning does zero floating-point work
   there — the basis of the bit-identity-to-seed guarantee. *)
let candidate t s = Join_graph.two_edge_connected_subset t.graph s

let try_candidate t ~out ~current ~threshold s =
  if not (candidate t s) then None
  else begin
    let cover = Agm.fractional_edge_cover t.catalog t.packed s in
    let inputs = List.map (Catalog.card t.catalog) (Relset.to_list s) in
    let cost = Agm.kappa_multiway ~inputs ~out ~agm:cover.Agm.bound in
    if cost < threshold && cost < current then begin
      Hashtbl.replace t.entries s cover;
      Some cost
    end
    else None
  end

let consider t (tbl : Dp_table.t) (ctr : Counters.t) ~threshold s =
  match
    try_candidate t ~out:tbl.Dp_table.card.(s) ~current:tbl.Dp_table.cost.(s) ~threshold s
  with
  | Some cost ->
    tbl.Dp_table.cost.(s) <- cost;
    tbl.Dp_table.pair.(2 * s) <- cost;
    tbl.Dp_table.best_lhs.(s) <- s;
    ctr.Counters.multiway_wins <- ctr.Counters.multiway_wins + 1
  | None -> ()

let find t s = Hashtbl.find_opt t.entries s

let wins t = Hashtbl.length t.entries

let plan_of t s =
  match Hashtbl.find_opt t.entries s with
  | None -> None
  | Some (c : Agm.cover) ->
    let leaves = List.map (fun i -> Plan.Leaf i) (Relset.to_list s) in
    Some (Plan.multiway ~cover:c.Agm.weights ~agm:c.Agm.bound leaves)

let extract_plan ?multiway (tbl : Dp_table.t) s =
  match multiway with
  | None -> Dp_table.extract_plan tbl s
  | Some t ->
    if s <= 0 || s >= Dp_table.size tbl then
      invalid_arg
        (Printf.sprintf "Multiway.extract_plan: set %d outside table of %d relations" s
           tbl.Dp_table.n);
    let rec go s =
      if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
      else begin
        let lhs = tbl.Dp_table.best_lhs.(s) in
        if lhs = 0 then raise Exit
        else if lhs = s then
          match plan_of t s with Some p -> p | None -> raise Exit
        else Plan.Join (go lhs, go (s lxor lhs))
      end
    in
    (match go s with plan -> Some plan | exception Exit -> None)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

let compute catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then
    invalid_arg
      (Printf.sprintf "Card_table.compute: graph over %d relations, catalog has %d"
         (Join_graph.n graph) n);
  if n > Dp_table.max_relations then
    invalid_arg (Printf.sprintf "Card_table.compute: %d relations exceed the table cap" n);
  let slots = 1 lsl n in
  let card = Array.make slots 1.0 and fan = Array.make slots 1.0 in
  for i = 0 to n - 1 do
    card.(1 lsl i) <- Catalog.card catalog i
  done;
  for s = 3 to slots - 1 do
    if s land (s - 1) <> 0 then begin
      let u = s land (-s) in
      let v = s lxor u in
      let f =
        if v land (v - 1) = 0 then
          Join_graph.selectivity graph (Relset.min_elt u) (Relset.min_elt v)
        else begin
          let w = v land (-v) in
          let z = v lxor w in
          fan.(u lor w) *. fan.(u lor z)
        end
      in
      fan.(s) <- f;
      card.(s) <- card.(u) *. card.(v) *. f
    end
  done;
  card

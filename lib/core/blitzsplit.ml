module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type t = {
  table : Dp_table.t;
  counters : Counters.t;
  catalog : Catalog.t;
  graph : Join_graph.t;
  model : Cost_model.t;
  threshold : float;
  multiway : Multiway.t option;
}

exception Interrupted

(* How often the cancellation probe fires: every [probe_mask + 1] subsets.
   Subsets near the top of the lattice carry split loops of up to [2^(n-1)]
   iterations each, so a 64-subset stride keeps the worst-case overshoot
   past a deadline small while the probe itself ([2^n / 64] clock reads)
   stays invisible next to the [O(3^n)] loop. *)
let probe_mask = 63

let run ~graph_opt ?arena ?counters ?(threshold = Float.infinity) ?interrupt
    ?(multiway = false) model catalog =
  if threshold <= 0.0 then invalid_arg "Blitzsplit: threshold must be positive";
  let n = Catalog.n catalog in
  let graph =
    match graph_opt with
    | Some g ->
      if Join_graph.n g <> n then
        invalid_arg
          (Printf.sprintf "Blitzsplit: graph over %d relations, catalog has %d" (Join_graph.n g) n);
      g
    | None -> Join_graph.no_predicates ~n
  in
  let ctr = match counters with Some c -> c | None -> Counters.create () in
  ctr.passes <- ctr.passes + 1;
  let with_pi_fan = Option.is_some graph_opt in
  let tbl =
    match arena with
    | Some a -> Arena.acquire a ~with_pi_fan n
    | None -> Dp_table.create ~with_pi_fan n
  in
  let mw =
    match graph_opt with
    | Some g when multiway -> Some (Multiway.create catalog g)
    | Some _ | None -> None
  in
  Split_loop.init_singletons tbl model catalog;
  let last = (1 lsl n) - 1 in
  let probe =
    match interrupt with
    | None -> fun _ -> ()
    | Some stop -> fun s -> if s land probe_mask = 0 && stop () then raise Interrupted
  in
  let dp_pass () =
    match graph_opt with
    | Some _ ->
      for s = 3 to last do
        if s land (s - 1) <> 0 then begin
          probe s;
          Split_loop.compute_properties_join tbl model graph s;
          Split_loop.find_best_split tbl model ctr ~threshold s;
          match mw with
          | Some m -> Multiway.consider m tbl ctr ~threshold s
          | None -> ()
        end
      done
    | None ->
      for s = 3 to last do
        if s land (s - 1) <> 0 then begin
          probe s;
          Split_loop.compute_properties_product tbl model s;
          Split_loop.find_best_split tbl model ctr ~threshold s
        end
      done
  in
  (* One timed region feeds both rate instruments: ns per subset (the
     historical unit) and ns per split iteration (the O(3^n) unit that
     `bench split` gates). *)
  if not (Blitz_obs.Metrics.enabled ()) then dp_pass ()
  else begin
    let subs0 = ctr.Counters.subsets and iters0 = ctr.Counters.loop_iters in
    let t0 = Blitz_obs.Perf.now_s () in
    dp_pass ();
    let elapsed_s = Blitz_obs.Perf.now_s () -. t0 in
    Blitz_obs.Perf.observe_rate Blitz_obs.Perf.split_loop_ns_per_subset ~elapsed_s
      ~events:(ctr.Counters.subsets - subs0);
    Blitz_obs.Perf.observe_rate Blitz_obs.Perf.split_loop_ns_per_iter ~elapsed_s
      ~events:(ctr.Counters.loop_iters - iters0)
  end;
  { table = tbl; counters = ctr; catalog; graph; model; threshold; multiway = mw }

let optimize_join ?arena ?counters ?threshold ?interrupt ?multiway model catalog graph =
  run ~graph_opt:(Some graph) ?arena ?counters ?threshold ?interrupt ?multiway model catalog

let optimize_product ?arena ?counters ?threshold ?interrupt model catalog =
  run ~graph_opt:None ?arena ?counters ?threshold ?interrupt model catalog

let full_set t = Dp_table.full_set t.table

let best_cost t = Dp_table.cost t.table (full_set t)

let feasible t = Float.is_finite (best_cost t)

let best_plan t = Multiway.extract_plan ?multiway:t.multiway t.table (full_set t)

let best_plan_exn t =
  match best_plan t with
  | Some plan -> plan
  | None -> failwith "Blitzsplit.best_plan_exn: no plan under the given threshold"

let subplan t s = Multiway.extract_plan ?multiway:t.multiway t.table s

(** The dynamic-programming table of Algorithm blitzsplit.

    One entry per nonempty subset of the relation set, indexed directly by
    the subset's bitset integer (Section 4.1).  Stored as a struct of
    arrays rather than an array of records so that each column is a flat,
    unboxed float (or int) array — the moral equivalent of the paper's
    16-bytes-per-row layout.

    Columns (Sections 3.2 and 5.4):
    - [card]: (estimated) cardinality of the join over the subset;
    - [cost]: cost of the best plan found for the subset
      ([infinity] when no plan beat the threshold);
    - [best_lhs]: left operand set of the best split ([0] for singletons
      and infeasible entries);
    - [pi_fan]: the fan selectivity product of Section 5.3 (join
      optimization only; the Cartesian-product path never reads it, so
      the column can be left unallocated — see {!create});
    - [aux]: per-subset memo for the cost model (e.g. [c(1+log c)] for
      sort-merge, as the appendix suggests);
    - [pair]: the interleaved hot copy of [(cost, card)] —
      [pair.(2 s) = cost.(s)] and [pair.(2 s + 1) = card.(s)], one
      16-byte row per subset exactly as the paper lays the table out.
      The split kernels that need both fields read this column so each
      loop iteration touches one cache line per operand instead of two
      distant ones; every writer of [cost]/[card] mirrors into it.
      External readers should keep using the struct-of-arrays views. *)

module Relset = Blitz_bitset.Relset
module Plan = Blitz_plan.Plan

type t = private {
  n : int;
  card : float array;
  cost : float array;
  best_lhs : int array;
  pi_fan : float array;
  aux : float array;
  pair : float array;  (** Length [2 * 2^n]: interleaved [(cost, card)]. *)
}
(** Exposed read-only; the arrays themselves are mutated only by the
    optimizer in this library.  Code that does write [cost] or [card]
    directly (the dpccp dense fold) must mirror the write into [pair]
    to keep the interleaved copy coherent for later kernel calls. *)

val max_relations : int
(** Hard cap on [n] (24): the table takes [7 * 8 * 2^n] bytes. *)

val create : ?with_pi_fan:bool -> int -> t
(** [create n] allocates the table for [n] relations.  With
    [~with_pi_fan:false] the fan column stays unallocated ([[||]]) —
    correct for Cartesian-product optimization, which never reads it,
    and 8 * 2^n bytes lighter.  Raises [Invalid_argument] when [n] is
    outside [\[1, max_relations\]]. *)

val has_pi_fan : t -> bool
(** Whether the fan column was allocated. *)

val capacity : t -> int
(** The n the backing buffers were allocated for.  [capacity t >= t.n];
    they differ when the table came out of an {!Arena} sized by a larger
    earlier query. *)

val estimate_bytes : ?with_pi_fan:bool -> n:int -> unit -> int
(** Bytes a table for [n] relations occupies: [56 * 2^n] (or [48 * 2^n]
    without the fan column — see {!create}): the four (five with the
    fan) 8-byte struct-of-arrays columns plus the 16-byte-per-subset
    interleaved [pair] column.  Saturates at [max_int]. *)

val reset_in_place : t -> n:int -> t
(** [reset_in_place t ~n] re-initializes slots [0, 2^n) of [t]'s backing
    buffers to the same state [create] produces (cost [infinity], lhs 0,
    card 0, fan 1) and returns a view of the buffers sized for [n]
    relations — no allocation beyond the small record.  Requires
    [1 <= n <= capacity t].  The basis of {!Arena} reuse: a blitzsplit
    pass writes every slot before reading it, so the reset only matters
    for what external readers of the table may observe. *)

val add_pi_fan : t -> t
(** Return a view of [t] with the fan column allocated (capacity-sized,
    all 1.0), allocating it lazily if the table was created without one.
    The identity when the column is already present. *)

val size : t -> int
(** Number of slots, [2^n]. *)

val full_set : t -> Relset.t

(** {1 Reading entries} *)

val card : t -> Relset.t -> float
val cost : t -> Relset.t -> float
val best_lhs : t -> Relset.t -> Relset.t
val pi_fan : t -> Relset.t -> float

val is_feasible : t -> Relset.t -> bool
(** Whether a plan was recorded for the subset (its cost is finite). *)

val extract_plan : t -> Relset.t -> Plan.t option
(** Walk [best_lhs] links recursively (the table-consultation procedure
    of Section 3.1), producing the optimal plan for the given subset;
    [None] when the subset is infeasible under the threshold used, or
    when the walk reaches a multiway sentinel ([best_lhs = s]) — those
    entries belong to a {!Multiway.table} and must be extracted through
    {!Multiway.extract_plan}. *)

val dump : ?names:string array -> t -> string
(** Render in the format of the paper's Table 1: one row per nonempty
    subset, ordered by subset size then lexicographically by members,
    with columns Relation Set / Cardinality / Best LHS / Cost.  Intended
    for small [n]. *)

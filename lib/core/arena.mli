(** Session workspace: pooled DP-table buffers and counters.

    The blitzsplit table costs [O(2^n)] to allocate and initialize, which
    is the whole optimization for small queries — the paper's point is
    that the constants are tiny.  An arena owns one table buffer sized to
    the session's high-water-mark [n] and hands out reset views of it
    ({!Dp_table.reset_in_place}) instead of reallocating per query (and,
    for [Threshold]'s driver, per pass).  Correctness does not depend on
    the reset: every DP pass writes each slot before reading it.  The
    reset keeps what external table readers observe identical to a fresh
    allocation, which the test suite checks bit-for-bit.

    An arena is single-threaded state: one optimizer call may use it at a
    time (the rank-parallel optimizer coordinates its domains itself; the
    coordinator still acquires from the arena sequentially). *)

type t

val create : unit -> t
(** A fresh arena holding no buffers.  The first {!acquire} allocates. *)

val acquire : t -> ?with_pi_fan:bool -> int -> Dp_table.t
(** [acquire t n] returns a table for [n] relations backed by the arena's
    pooled buffers: reset in place when the capacity suffices, freshly
    allocated (growing the high-water mark) otherwise.  The fan column is
    sticky — once a join query needs it the buffer keeps it; a reused
    table may therefore report [has_pi_fan] even for [~with_pi_fan:false]
    callers, which never read it.  Raises [Invalid_argument] when [n]
    is outside [\[1, Dp_table.max_relations\]]. *)

val counters : t -> Counters.t
(** The arena's reusable counter block.  Callers that want per-query
    counts reset it between queries ([Engine.optimize] does). *)

val resident_bytes : t -> int
(** Bytes currently held by the pooled table buffer (0 before the first
    acquire).  This is the high-water footprint a memory ceiling should
    charge for, not the per-call size. *)

val bytes_after : t -> ?with_pi_fan:bool -> n:int -> unit -> int
(** Resident footprint the arena would have after serving a query of [n]
    relations: the current buffer if it already suffices, the grown one
    otherwise.  What [Budget] checks against its ceiling when a session
    is in play. *)

val clear : t -> unit
(** Drop the pooled buffer (the next acquire reallocates). *)

val acquires : t -> int
(** Total {!acquire} calls served (diagnostic). *)

val grows : t -> int
(** How many of those had to allocate (diagnostic; 1 for a steady-state
    session). *)

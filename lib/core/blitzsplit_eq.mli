(** Blitzsplit with equivalence-class cardinalities (implied and
    redundant predicates).

    Section 5 closes with: "Similar techniques can accommodate implied or
    redundant predicates ... but we shall not discuss those topics here."
    This variant supplies that accommodation: predicates are grouped into
    column-equivalence classes ({!Blitz_graph.Equivalence}), and the
    cardinality of a subset charges each class [1/D] per relation beyond
    the first — transitively implied predicates are counted exactly once,
    where the plain pairwise graph would double-count them.

    The fan recurrence does not survive this change (a class can span
    both halves of a split several times), so the per-subset property is
    a class {e presence bitmask} with the recurrence

    {v mask(S) = mask(U) | mask(V)
       span(U, V) = prod over classes in mask(U) & mask(V) of 1/D v}

    — one machine word per entry and a short loop over present classes,
    preserving the paper's structural promise that property computation
    stays out of the split loop ("under no circumstances should changes
    in find_best_split be necessary", Section 5.4): the split loop is
    byte-for-byte the one {!Blitzsplit} uses. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Equivalence = Blitz_graph.Equivalence
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

val max_classes : int
(** Classes are tracked in one bitmask word: at most 62. *)

type t = {
  table : Dp_table.t;
  counters : Counters.t;
  catalog : Catalog.t;
  equivalence : Equivalence.t;
  model : Cost_model.t;
  threshold : float;
}

val optimize :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  Equivalence.t ->
  t
(** Like {!Blitzsplit.optimize_join}, with class-aware cardinalities.
    Raises [Invalid_argument] on size mismatches or more than
    {!max_classes} classes. *)

val feasible : t -> bool
val best_cost : t -> float
val best_plan : t -> Plan.t option
val best_plan_exn : t -> Plan.t
val subplan : t -> Relset.t -> Plan.t option

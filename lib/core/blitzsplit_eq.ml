module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Equivalence = Blitz_graph.Equivalence
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

let max_classes = 62

type t = {
  table : Dp_table.t;
  counters : Counters.t;
  catalog : Catalog.t;
  equivalence : Equivalence.t;
  model : Cost_model.t;
  threshold : float;
}

let optimize ?arena ?counters ?(threshold = Float.infinity) model catalog equivalence =
  if threshold <= 0.0 then invalid_arg "Blitzsplit_eq: threshold must be positive";
  let n = Catalog.n catalog in
  if Equivalence.n equivalence <> n then
    invalid_arg
      (Printf.sprintf "Blitzsplit_eq: classes over %d relations, catalog has %d"
         (Equivalence.n equivalence) n);
  let classes = Array.of_list (Equivalence.classes equivalence) in
  let class_count = Array.length classes in
  if class_count > max_classes then
    invalid_arg (Printf.sprintf "Blitzsplit_eq: %d classes exceed the %d-bit mask" class_count max_classes);
  let inv_domain = Array.map (fun c -> 1.0 /. c.Equivalence.domain) classes in
  (* Per-relation class-presence mask. *)
  let rel_mask = Array.make n 0 in
  Array.iteri
    (fun ci c ->
      Relset.iter (fun r -> rel_mask.(r) <- rel_mask.(r) lor (1 lsl ci)) c.Equivalence.relations)
    classes;
  let ctr = match counters with Some c -> c | None -> Counters.create () in
  ctr.Counters.passes <- ctr.Counters.passes + 1;
  let tbl =
    match arena with Some a -> Arena.acquire a n | None -> Dp_table.create n
  in
  Split_loop.init_singletons tbl model catalog;
  let slots = 1 lsl n in
  (* Class-presence mask per subset; singletons from rel_mask. *)
  let mask = Array.make slots 0 in
  for i = 0 to n - 1 do
    mask.(1 lsl i) <- rel_mask.(i)
  done;
  let card = tbl.Dp_table.card and aux = tbl.Dp_table.aux in
  for s = 3 to slots - 1 do
    if s land (s - 1) <> 0 then begin
      (* compute_properties: presence-mask recurrence. *)
      let u = s land (-s) in
      let v = s lxor u in
      let mu = mask.(u) in
      let both = mu land mask.(v) in
      (* span(U, V): one 1/D factor per class present on both sides. *)
      let span = ref 1.0 in
      let m = ref both in
      while !m <> 0 do
        let bit = !m land (- !m) in
        span := !span *. inv_domain.(Relset.min_elt bit);
        m := !m lxor bit
      done;
      mask.(s) <- mu lor mask.(v);
      let c = card.(u) *. card.(v) *. !span in
      card.(s) <- c;
      tbl.Dp_table.pair.((2 * s) + 1) <- c;
      aux.(s) <- model.Cost_model.aux c;
      Split_loop.find_best_split tbl model ctr ~threshold s
    end
  done;
  { table = tbl; counters = ctr; catalog; equivalence; model; threshold }

let full_set t = Dp_table.full_set t.table
let best_cost t = Dp_table.cost t.table (full_set t)
let feasible t = Float.is_finite (best_cost t)
let best_plan t = Dp_table.extract_plan t.table (full_set t)

let best_plan_exn t =
  match best_plan t with
  | Some plan -> plan
  | None -> failwith "Blitzsplit_eq.best_plan_exn: no plan under the given threshold"

let subplan t s = Dp_table.extract_plan t.table s

(** The per-subset kernels of Algorithm blitzsplit, shared by the
    optimizer variants and by the rank-parallel driver.

    {!Blitzsplit} (plain join graphs), {!Blitzsplit_eq}
    (equivalence-class cardinalities) and [Parallel_blitzsplit] (the
    rank-parallel decomposition in [blitz_parallel]) differ only in how
    subsets are enumerated and in how [compute_properties] fills the
    cardinality column; the split loop — the [O(3^n)] part realized with
    the successor trick and nested-[if] pruning (Sections 4.2, 6.2) —
    is identical and lives here.

    {!find_best_split} dispatches once per subset on
    {!Blitz_cost.Cost_model.kind} to a monomorphized loop body: the
    three paper models run with their [kappa''] arithmetic inlined (no
    closure call, no float boxing — the loop allocates nothing), and the
    kernels that need operand cardinalities read the interleaved
    [(cost, card)] pair column of {!Dp_table} so each iteration touches
    one cache line per operand.  [Opaque] models fall back to a
    closure-calling body.  All kernels produce bit-identical costs,
    [best_lhs] links and counters to the pre-refactor {!Reference}
    kernel, which is kept for differential tests and benchmarks.

    All kernels use unchecked array accesses internally: callers must
    pass subset indices in [(0, 2^n)] against a table created for [n]
    relations (the enumeration loops guarantee this by construction). *)

val find_best_split :
  Dp_table.t -> Blitz_cost.Cost_model.t -> Counters.t -> threshold:float -> int -> unit
(** Fill [cost] and [best_lhs] for the (non-singleton) subset, reading
    the already-computed [card], [cost] and [aux] columns of its proper
    subsets.  With a finite [threshold], marks the entry infeasible
    (cost [infinity], best_lhs 0) when no split stays below it.  Writes
    only to this subset's own slots, so concurrent calls on distinct
    subsets of the same rank are race-free (all reads hit lower ranks). *)

val variant : Blitz_cost.Cost_model.t -> string
(** Which monomorphized loop body {!find_best_split} runs for the model:
    ["zero"], ["sum-aux"], ["dnl-paired"] or ["general"].  Diagnostic
    (e.g. the [blitz explain] kernel summary line). *)

(** The pre-refactor split kernel, retained verbatim (modulo mirroring
    its cost store into the pair column) as the baseline for
    differential tests and for the [bench split] speedup gate.  Same
    contract as the top-level {!find_best_split}. *)
module Reference : sig
  val find_best_split :
    Dp_table.t -> Blitz_cost.Cost_model.t -> Counters.t -> threshold:float -> int -> unit
end

val compute_properties_join :
  Dp_table.t -> Blitz_cost.Cost_model.t -> Blitz_graph.Join_graph.t -> int -> unit
(** Fill [pi_fan], [card] and [aux] for a non-singleton subset via the
    fan recurrence of Section 5.4 (Equation 11).  Requires a table with
    the fan column allocated.  Reads only strictly smaller subsets. *)

val compute_properties_product : Dp_table.t -> Blitz_cost.Cost_model.t -> int -> unit
(** Fill [card] and [aux] for a non-singleton subset as a plain
    cardinality product (Figure 1); [pi_fan] is never touched and may be
    unallocated. *)

val init_singletons : Dp_table.t -> Blitz_cost.Cost_model.t -> Blitz_catalog.Catalog.t -> unit
(** Fill the singleton rows: cardinality from the catalog, cost 0, aux
    memo from the model. *)

(** The find_best_split kernel, shared by the optimizer variants.

    Internal to [blitz_core]: {!Blitzsplit} (plain join graphs) and
    {!Blitzsplit_eq} (equivalence-class cardinalities) differ only in how
    [compute_properties] fills the cardinality column; the split loop —
    the [O(3^n)] part realized with the successor trick and nested-[if]
    pruning (Sections 4.2, 6.2) — is identical and lives here. *)

val find_best_split :
  Dp_table.t -> Blitz_cost.Cost_model.t -> Counters.t -> threshold:float -> int -> unit
(** Fill [cost] and [best_lhs] for the (non-singleton) subset, reading
    the already-computed [card], [cost] and [aux] columns of its proper
    subsets.  With a finite [threshold], marks the entry infeasible
    (cost [infinity], best_lhs 0) when no split stays below it. *)

val init_singletons : Dp_table.t -> Blitz_cost.Cost_model.t -> Blitz_catalog.Catalog.t -> unit
(** Fill the singleton rows: cardinality from the catalog, cost 0, aux
    memo from the model. *)

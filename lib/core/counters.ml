type t = {
  mutable subsets : int;
  mutable loop_iters : int;
  mutable operand_sums : int;
  mutable dprime_evals : int;
  mutable improvements : int;
  mutable threshold_skips : int;
  mutable infeasible : int;
  mutable passes : int;
  mutable ccp_pairs : int;
  mutable multiway_wins : int;
}

let create () =
  {
    subsets = 0;
    loop_iters = 0;
    operand_sums = 0;
    dprime_evals = 0;
    improvements = 0;
    threshold_skips = 0;
    infeasible = 0;
    passes = 0;
    ccp_pairs = 0;
    multiway_wins = 0;
  }

let reset t =
  t.subsets <- 0;
  t.loop_iters <- 0;
  t.operand_sums <- 0;
  t.dprime_evals <- 0;
  t.improvements <- 0;
  t.threshold_skips <- 0;
  t.infeasible <- 0;
  t.passes <- 0;
  t.ccp_pairs <- 0;
  t.multiway_wins <- 0

let copy t = { t with subsets = t.subsets }

let merge_into ~from ~into =
  into.subsets <- into.subsets + from.subsets;
  into.loop_iters <- into.loop_iters + from.loop_iters;
  into.operand_sums <- into.operand_sums + from.operand_sums;
  into.dprime_evals <- into.dprime_evals + from.dprime_evals;
  into.improvements <- into.improvements + from.improvements;
  into.threshold_skips <- into.threshold_skips + from.threshold_skips;
  into.infeasible <- into.infeasible + from.infeasible;
  into.passes <- into.passes + from.passes;
  into.ccp_pairs <- into.ccp_pairs + from.ccp_pairs;
  into.multiway_wins <- into.multiway_wins + from.multiway_wins

let exact_loop_iters n =
  if n < 1 then invalid_arg "Counters.exact_loop_iters: n must be positive";
  let rec pow base k acc = if k = 0 then acc else pow base (k - 1) (acc * base) in
  pow 3 n 1 - (2 * pow 2 n 1) + 1

let predicted_dprime_lower n =
  0.5 *. log 2.0 *. float_of_int n *. Blitz_util.Float_more.pow_int 2.0 n

let predicted_dprime_upper n = Blitz_util.Float_more.pow_int 3.0 n

(* [ccp pairs] prints only when nonzero: the field is fed exclusively by
   the dpccp driver, and the blitzsplit-family counter dumps (including
   the cram-tested CLI output) should not grow a permanently-zero row. *)
let pp ppf t =
  Format.fprintf ppf
    "@[<v>subsets processed:   %d@,split-loop iters:    %d@,operand sums:        %d@,\
     kappa'' evaluations: %d@,improvements:        %d@,threshold skips:     %d@,\
     infeasible subsets:  %d@,passes:              %d"
    t.subsets t.loop_iters t.operand_sums t.dprime_evals t.improvements t.threshold_skips
    t.infeasible t.passes;
  if t.ccp_pairs > 0 then Format.fprintf ppf "@,ccp pairs:           %d" t.ccp_pairs;
  if t.multiway_wins > 0 then Format.fprintf ppf "@,multiway wins:       %d" t.multiway_wins;
  Format.fprintf ppf "@]"

(** Plan-cost-threshold optimization with re-optimization passes
    (Section 6.4).

    A threshold simulates floating-point overflow far below actual
    overflow: best-split searches are skipped for every subset whose
    [kappa'] alone reaches the threshold, and splits are accepted only
    below it.  Queries whose optimal plan is cheap get optimized faster;
    queries whose best plan costs more than the threshold fail the pass
    and are retried with a raised threshold.

    Correctness: plan cost is a sum of non-negative join costs, so every
    subplan of a plan costing under the threshold itself costs under the
    threshold — a pass that succeeds therefore returns the true optimum
    whenever the optimum is below its threshold. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model

type outcome = {
  result : Blitzsplit.t;  (** The final (successful) pass. *)
  passes : int;
      (** Optimization passes actually run, each counted exactly once:
          every thresholded attempt plus the forced unthresholded rescue
          pass when all attempts failed (so with [max_passes = m] the
          worst case is [m + 1], and [passes] always equals the number of
          times the underlying optimizer executed — the same count the
          shared {!Counters.t} accumulates in its [passes] field). *)
  final_threshold : float;
      (** Threshold of the successful pass ([infinity] when the fallback
          unthresholded rescue pass was needed). *)
}

val optimize_join :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  ?interrupt:(unit -> bool) ->
  ?multiway:bool ->
  threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  outcome
(** [optimize_join ~threshold model catalog graph] runs blitzsplit with
    the given initial plan-cost threshold; on failure the threshold is
    multiplied by [growth] (default [1e4]) and the optimization rerun, up
    to [max_passes] (default 16) thresholded passes, after which a final
    unthresholded rescue pass guarantees an answer.  [counters]
    accumulates over all passes.  [interrupt] is forwarded to every
    underlying pass; when it fires, {!Blitzsplit.Interrupted} propagates
    out of the driver.  [multiway] is likewise forwarded to every pass
    (threshold semantics are unchanged: the n-ary candidate is accepted
    only strictly below the pass threshold, so a successful pass is still
    optimal for its search space).  Raises [Invalid_argument] for
    non-positive thresholds or [growth <= 1]. *)

val optimize_product :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  ?interrupt:(unit -> bool) ->
  threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  outcome

val drive :
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  threshold:float ->
  (counters:Counters.t -> threshold:float -> Blitzsplit.t) ->
  outcome
(** The raw multi-pass driver behind {!optimize_join}/{!optimize_product},
    exposed so alternative pass implementations — notably the
    rank-parallel [Parallel_blitzsplit] in [blitz_parallel] — reuse the
    exact threshold-escalation and rescue-pass policy.  The callback runs
    one optimization pass at the given threshold, accumulating into the
    supplied counters. *)

(** {1 Variant optimizers}

    The same multi-pass driver over the equivalence-class and hypergraph
    variants; the correctness argument is identical since both share the
    split loop and its threshold semantics. *)

type eq_outcome = { eq_result : Blitzsplit_eq.t; eq_passes : int; eq_final_threshold : float }

val optimize_eq :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  Blitz_graph.Equivalence.t ->
  eq_outcome

type hyper_outcome = {
  hyper_result : Blitzsplit_hyper.t;
  hyper_passes : int;
  hyper_final_threshold : float;
}

val optimize_hyper :
  ?arena:Arena.t ->
  ?counters:Counters.t ->
  ?growth:float ->
  ?max_passes:int ->
  threshold:float ->
  Cost_model.t ->
  Catalog.t ->
  Blitz_graph.Hypergraph.t ->
  hyper_outcome

(** Blitzsplit with interesting sort orders (physical properties).

    Section 6.5 of the paper: "The issue of physical properties (e.g.,
    'interesting' sort orders) is trickier.  Although we have a plausible
    strategy for accommodating physical properties in special cases, we
    have yet to develop a strategy for the general case."  This module
    develops the classic strategy (Selinger et al.'s interesting orders,
    transplanted onto the bitset DP): the table keys become
    {e (subset, order)} pairs, where an order is "sorted on the join
    attribute of edge e" and only {e interesting} orders — those whose
    edge crosses the subset's boundary and can therefore still be
    exploited — get their own slots.

    Physical algebra:
    - [Scan r]: a base relation, no order guarantee;
    - [Sort (p, e)]: explicit enforcer, cost [c log c] on [c] rows;
    - [Nested_loop (l, r)]: costed with the paper's [kappa_dnl];
      {e preserves the outer (left) input's order};
    - [Merge_join (l, r, e)]: requires both inputs sorted on [e]'s
      attribute, costs one scan of each input ([|L| + |R|]).

    With no order reuse, [Sort + Merge_join] adds up to exactly the
    paper's [kappa_sm = |L|(1 + log |L|) + |R|(1 + log |R|)], so this
    optimizer generalizes the [min(kappa_sm, kappa_dnl)]
    multiple-algorithms model of Section 6.5 — and can beat it, by
    sorting a small intermediate result once and reusing the order, or by
    threading an order through nested-loop joins.

    Space is [O((E+1) 2^n)] where [E] is the number of predicate edges;
    intended for the sparse graphs where orders matter (chains, stars,
    cycles). *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan

type phys =
  | Scan of int  (** Base relation index. *)
  | Sort of phys * int  (** Enforce the order of edge [e] (by edge id). *)
  | Nested_loop of phys * phys
  | Merge_join of phys * phys * int  (** Merge on edge [e]; inputs must deliver that order. *)

val logical : phys -> Plan.t
(** Strip physical operators down to the join tree. *)

val order_of : phys -> int option
(** The order (edge id) the physical plan delivers, per the algebra
    above; [None] when unordered. *)

val phys_cost :
  ?blocking_factor:float -> ?memory_blocks:float -> Catalog.t -> Join_graph.t -> phys -> float
(** Independent bottom-up costing of a physical plan (used by tests as
    the oracle's cost function).  Raises [Invalid_argument] if a
    merge-join input does not deliver the required order, or if the
    plan's relation sets are malformed. *)

type result = {
  plan : phys;
  cost : float;
  states : int;  (** (subset, order) states materialized. *)
}

val optimize :
  ?blocking_factor:float ->
  ?memory_blocks:float ->
  ?required_order:int ->
  Catalog.t ->
  Join_graph.t ->
  result
(** Optimal bushy physical plan, Cartesian products included (they cost
    as nested loops).  [required_order] (an edge id) additionally demands
    the final result sorted on that edge's attribute.  Raises
    [Invalid_argument] on size mismatch, an out-of-range
    [required_order], or a state table beyond the memory cap. *)

val sm_dnl_reference_cost : Catalog.t -> Join_graph.t -> float
(** The Section 6.5 baseline this module generalizes: a plain subset DP
    where each join costs [min(kappa_sm, kappa_dnl)] — with sort-merge
    available only when a predicate spans the operands (one cannot
    merge-join on a nonexistent attribute) — and no order reuse.  The
    optimum of {!optimize} never exceeds it (tested). *)

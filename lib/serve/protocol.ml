module Json = Blitz_util.Json
module Err = Blitz_util.Err
module Topology = Blitz_graph.Topology

let version = 1
let max_line_bytes = 1024 * 1024

type query =
  | Inline of { relations : (string * float) list; edges : (int * int * float) list }
  | Generated of { n : int; topology : string; mean_card : float; variability : float }

type call = Optimize | Explain

type request =
  | Run of { call : call; query : query; multiway : bool }
  | Stats
  | Health

type envelope = { id : Json.t; tenant : string option; request : request }

type decode_error =
  | Parse of string
  | Version of int option
  | Missing of string
  | Wrong_type of { field : string; expected : string }
  | Bad_value of { field : string; detail : string }
  | Unknown_method of string

type rejected = { rid : Json.t; error : decode_error }

let error_code = function
  | Parse _ -> "parse_error"
  | Version _ -> "unsupported_version"
  | Missing _ | Wrong_type _ | Bad_value _ -> "invalid_request"
  | Unknown_method _ -> "unknown_method"

let error_message = function
  | Parse msg ->
    (* [Json.of_string] already prefixed its own scope; keep one scope. *)
    Err.format ~scope:"serve" "%s" msg
  | Version None ->
    Err.format ~scope:"serve" "missing protocol version (send \"blitz\": %d)" version
  | Version (Some v) ->
    Err.format ~scope:"serve" "unsupported protocol version %d (this server speaks %d)" v version
  | Missing field -> Err.format ~scope:"serve" "missing required field %S" field
  | Wrong_type { field; expected } -> Err.format ~scope:"serve" "field %S must be %s" field expected
  | Bad_value { field; detail } -> Err.format ~scope:"serve" "bad value for %S: %s" field detail

  | Unknown_method m ->
    Err.format ~scope:"serve" "unknown method %S (expected optimize, explain, stats or health)" m

(* Decoding is structured as a tiny exception-driven validator: each
   helper raises [Reject] with the typed error, and [decode] is the one
   catch site.  The exception never escapes this module. *)
exception Reject of decode_error

let reject e = raise (Reject e)

let obj_member key json = Json.member key json

let get_string field = function
  | Json.String s -> s
  | _ -> reject (Wrong_type { field; expected = "a string" })

let get_bool field = function
  | Json.Bool b -> b
  | _ -> reject (Wrong_type { field; expected = "a boolean" })

let get_int field = function
  | Json.Int i -> i
  | _ -> reject (Wrong_type { field; expected = "an integer" })

let get_number field v =
  match Json.to_float_opt v with
  | Some x -> x
  | None -> reject (Wrong_type { field; expected = "a number" })

let get_list field = function
  | Json.List l -> l
  | _ -> reject (Wrong_type { field; expected = "an array" })

let parse_relations field v =
  get_list field v
  |> List.mapi (fun i item ->
         let where = Printf.sprintf "%s[%d]" field i in
         match item with
         | Json.List [ Json.String name; card ] -> (name, get_number where card)
         | _ -> reject (Bad_value { field = where; detail = "expected a [name, cardinality] pair" }))

let parse_edges field v =
  get_list field v
  |> List.mapi (fun i item ->
         let where = Printf.sprintf "%s[%d]" field i in
         match item with
         | Json.List [ Json.Int a; Json.Int b; sel ] -> (a, b, get_number where sel)
         | _ ->
           reject (Bad_value { field = where; detail = "expected an [a, b, selectivity] triple" }))

(* The generated-workload cap: beyond this the DP tiers are skipped by
   eligibility anyway and the catalog/graph build cost starts to matter
   on the event path.  Inline queries carry their own statistics and are
   bounded by the sanitizer instead. *)
let max_generated_n = 30

let parse_generated params n_field =
  let n = get_int "params.n" n_field in
  if n < 2 || n > max_generated_n then
    reject
      (Bad_value
         { field = "params.n"; detail = Printf.sprintf "must be in [2, %d]" max_generated_n });
  let topology =
    match obj_member "topology" params with
    | None -> "chain"
    | Some v -> (
      let s = get_string "params.topology" v in
      match Topology.of_string s with
      | Ok _ -> s
      | Error msg -> reject (Bad_value { field = "params.topology"; detail = msg }))
  in
  let mean_card =
    match obj_member "mean_card" params with
    | None -> 100.
    | Some v ->
      let x = get_number "params.mean_card" v in
      if x <= 0. || not (Float.is_finite x) then
        reject (Bad_value { field = "params.mean_card"; detail = "must be positive and finite" });
      x
  in
  let variability =
    match obj_member "variability" params with
    | None -> 0.
    | Some v ->
      let x = get_number "params.variability" v in
      if x < 0. || x > 1. then
        reject (Bad_value { field = "params.variability"; detail = "must be in [0, 1]" });
      x
  in
  Generated { n; topology; mean_card; variability }

let parse_params json =
  let params =
    match obj_member "params" json with
    | None -> reject (Missing "params")
    | Some (Json.Obj _ as p) -> p
    | Some _ -> reject (Wrong_type { field = "params"; expected = "an object" })
  in
  let query =
    match (obj_member "relations" params, obj_member "n" params) with
    | Some rels, _ ->
      let relations = parse_relations "params.relations" rels in
      let edges =
        match obj_member "edges" params with
        | None -> []
        | Some e -> parse_edges "params.edges" e
      in
      Inline { relations; edges }
    | None, Some n -> parse_generated params n
    | None, None -> reject (Missing "params.relations (inline) or params.n (generated)")
  in
  let multiway =
    match obj_member "multiway" params with
    | None -> false
    | Some v -> get_bool "params.multiway" v
  in
  (query, multiway)

let decode_envelope json rid =
  (match json with
  | Json.Obj _ -> ()
  | _ -> reject (Wrong_type { field = "request"; expected = "a JSON object" }));
  (match obj_member "blitz" json with
  | None -> reject (Version None)
  | Some (Json.Int v) when v = version -> ()
  | Some (Json.Int v) -> reject (Version (Some v))
  | Some _ -> reject (Wrong_type { field = "blitz"; expected = "an integer" }));
  let tenant = Option.map (get_string "tenant") (obj_member "tenant" json) in
  let meth =
    match obj_member "method" json with
    | None -> reject (Missing "method")
    | Some v -> get_string "method" v
  in
  let request =
    match meth with
    | "optimize" | "explain" ->
      let call = if meth = "explain" then Explain else Optimize in
      let query, multiway = parse_params json in
      Run { call; query; multiway }
    | "stats" -> Stats
    | "health" -> Health
    | m -> reject (Unknown_method m)
  in
  { id = rid; tenant; request }

let decode line =
  if String.length line > max_line_bytes then
    Error
      {
        rid = Json.Null;
        error =
          Parse
            (Printf.sprintf "request line exceeds %d bytes (%d)" max_line_bytes
               (String.length line));
      }
  else
    match Json.of_string line with
    | Error msg -> Error { rid = Json.Null; error = Parse msg }
    | Ok json -> (
      let rid = Option.value (obj_member "id" json) ~default:Json.Null in
      match decode_envelope json rid with
      | env -> Ok env
      | exception Reject error -> Error { rid; error })

let ok_response ~id result =
  Json.to_string
    (Json.Obj [ ("blitz", Json.Int version); ("id", id); ("ok", Json.Bool true); ("result", result) ])

let error_response ~id ~code ~message =
  Json.to_string
    (Json.Obj
       [
         ("blitz", Json.Int version);
         ("id", id);
         ("ok", Json.Bool false);
         ("error", Json.Obj [ ("code", Json.String code); ("message", Json.String message) ]);
       ])

let rejected_response { rid; error } =
  error_response ~id:rid ~code:(error_code error) ~message:(error_message error)

(** The serve wire protocol: versioned newline-delimited JSON.

    One request per line, one response per line, correlated by the
    client-chosen [id] (any JSON value, echoed verbatim).  Every request
    carries ["blitz": 1] — the protocol version — and a ["method"]; the
    [optimize]/[explain] methods add a ["params"] object describing the
    query either {e inline} (explicit relation cardinalities and join
    edges, the {!Blitz_guard.Guard.optimize_input} shape) or
    {e generated} (a deterministic {!Blitz_workload.Workload} spec).
    See DESIGN.md §5i for the full schemas and examples.

    Decoding is total: every malformed line maps to a typed
    {!decode_error} (never an exception), rendered through the shared
    [Blitz_util.Err] formatter under the ["serve"] scope and paired
    with a stable machine-readable {!error_code} string.  Responses are
    encoded here too, so the server and the test suite agree on the
    bytes. *)

module Json = Blitz_util.Json

val version : int
(** The protocol version this codec speaks: [1]. *)

val max_line_bytes : int
(** Longest request line the server accepts (1 MiB).  Longer lines are
    rejected with a [parse_error] before JSON decoding. *)

(** {1 Requests} *)

type query =
  | Inline of { relations : (string * float) list; edges : (int * int * float) list }
      (** Explicit statistics: [params.relations] is a list of
          [[name, cardinality]] pairs, [params.edges] a list of
          [[a, b, selectivity]] triples over relation indexes.  Values
          are passed to the sanitizer untouched — defective statistics
          are its department, not the codec's. *)
  | Generated of { n : int; topology : string; mean_card : float; variability : float }
      (** A deterministic paper-grid workload: [params.n] plus optional
          [topology] (default ["chain"]), [mean_card] (default [100]),
          [variability] (default [0]). *)

type call = Optimize | Explain

type request =
  | Run of { call : call; query : query; multiway : bool }
  | Stats
  | Health

type envelope = {
  id : Json.t;  (** Echoed verbatim in the response; [Null] when absent. *)
  tenant : string option;  (** [None] means the ["default"] tenant. *)
  request : request;
}

(** {1 Decode errors} *)

type decode_error =
  | Parse of string  (** Not JSON (message carries the byte offset). *)
  | Version of int option  (** Missing or unsupported ["blitz"] field. *)
  | Missing of string  (** A required field is absent. *)
  | Wrong_type of { field : string; expected : string }
  | Bad_value of { field : string; detail : string }
  | Unknown_method of string

type rejected = {
  rid : Json.t;
      (** Best-effort request id recovered from the defective line, so
          even an error response correlates when possible. *)
  error : decode_error;
}

val decode : string -> (envelope, rejected) result
(** Decode one request line.  Total: never raises. *)

val error_code : decode_error -> string
(** Stable wire code: [parse_error], [unsupported_version],
    [invalid_request], or [unknown_method]. *)

val error_message : decode_error -> string
(** Human-readable rendering via [Err.format ~scope:"serve"]. *)

(** {1 Response encoding} *)

val ok_response : id:Json.t -> Json.t -> string
(** [{"blitz":1,"id":id,"ok":true,"result":...}] — one line, no
    trailing newline. *)

val error_response : id:Json.t -> code:string -> message:string -> string
(** [{"blitz":1,"id":id,"ok":false,"error":{"code":...,"message":...}}].
    Server-side codes beyond {!error_code}: [unknown_tenant],
    [quota_exhausted], [invalid_input], [overloaded], [internal]. *)

val rejected_response : rejected -> string
(** The error response for a line {!decode} rejected. *)

(** The concurrent optimizer server: OCaml 5 domains around a small
    [Unix.select] event loop, stdlib only.

    One domain owns the event loop — accepting connections, framing
    newline-delimited requests, decoding them ({!Protocol}), admitting
    them through the tenant's {!Quota} bucket, and writing responses.
    [workers] further domains each own one {!Blitz_engine.Engine}
    session (all sharing the server's plan cache) and drain a bounded
    work queue, running every query through {!Blitz_guard.Guard} under
    a per-request [Budget] built from the tenant's limits, with the
    tenant name as [cache_tag] so the shared cache stays partitioned
    per tenant.

    {b Overload sheds through the cascade, not the floor.}  When a
    worker dequeues a job and finds [shed_queue] or more requests still
    waiting behind it, the request's deadline is clamped to
    [shed_deadline_ms]: the Degrade cascade then lands on its cheap
    deadline-exempt tiers (greedy, estimate-free) in microseconds, the
    queue drains, and {e every} response still carries a plan plus full
    provenance — [shed: true] and the winning tier — rather than an
    error or a dropped connection.  Only the hard [max_queue] bound
    (memory protection, default 4096) answers [overloaded] without
    optimizing.

    The same listening socket answers Prometheus scrapes: a connection
    whose first bytes are [GET ] is treated as HTTP/1.0, and
    [GET /metrics] returns [Blitz_obs.Metrics.to_prometheus] —
    request counters, latency histograms, queue depth, shed and quota
    counters — then closes.

    Responses to loop-answered requests (health, stats, quota and
    decode errors) can overtake in-flight optimize responses on the
    same connection; the [id] field is the correlator.  A single-worker
    server answers optimize requests in arrival order. *)

module Cost_model = Blitz_cost.Cost_model
module Plan_cache = Blitz_cache.Plan_cache

type config = {
  host : string;  (** Bind address, default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port (see {!port}). *)
  workers : int;  (** Optimizer domains, default 1. *)
  tenants : Tenant.t list;
      (** The default tenant is appended when no entry names it. *)
  model : Cost_model.t;
  cache : Plan_cache.t option;  (** Shared across all worker sessions. *)
  default_table_bytes : int;
      (** DP-table ceiling for tenants without [table-mb]
          (default 256 MiB) — an unbounded server is one [n = 40]
          request away from the OOM killer. *)
  max_queue : int;  (** Hard bound on queued work, default 4096. *)
  shed_queue : int;
      (** Queue depth at which shedding starts, default 16. *)
  shed_deadline_ms : float;
      (** Deadline clamp while shedding, default 5 ms. *)
  max_requests : int option;
      (** Exit after this many optimize/explain responses (including
          quota and input errors) — deterministic teardown for tests
          and benchmarks. *)
  seed : int;  (** Forwarded to every Guard call (hybrid tier RNG). *)
}

val config :
  ?host:string ->
  ?port:int ->
  ?workers:int ->
  ?tenants:Tenant.t list ->
  ?model:Cost_model.t ->
  ?cache:Plan_cache.t ->
  ?default_table_bytes:int ->
  ?max_queue:int ->
  ?shed_queue:int ->
  ?shed_deadline_ms:float ->
  ?max_requests:int ->
  ?seed:int ->
  unit ->
  config
(** Defaults as documented on {!config}; [model] defaults to the
    engine default (kdnl), [cache] to a fresh 4 MiB
    {!Plan_cache.create}.  Raises [Invalid_argument] on non-positive
    [workers], [shed_queue], [shed_deadline_ms], or [max_queue]. *)

type t

val start : config -> t
(** Bind, listen, spawn the loop and worker domains, return.  The
    socket is accepting when this returns — {!port} is ready to hand to
    a client.  Enables [Blitz_obs.Metrics] and ignores [SIGPIPE]. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port] was 0). *)

val wait : t -> unit
(** Block until the server exits on its own ([max_requests] reached).
    Joins every domain; idempotent. *)

val stop : t -> unit
(** Ask the loop to exit, then {!wait}.  Queued work is finished and
    flushed first. *)

val run : config -> unit
(** [start] then [wait] — the CLI entry point. *)

module Json = Blitz_util.Json
module Err = Blitz_util.Err

type t = {
  name : string;
  deadline_ms : float option;
  max_table_bytes : int option;
  rps : float option;
  burst : int option;
}

let default_name = "default"

let valid_name name =
  String.length name > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       name

let make ?deadline_ms ?max_table_bytes ?rps ?burst name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Tenant.make: invalid name %S (want [A-Za-z0-9_.-]+)" name);
  let positive what = function
    | Some x when x <= 0. -> invalid_arg (Printf.sprintf "Tenant.make: %s must be positive" what)
    | v -> v
  in
  let deadline_ms = positive "deadline-ms" deadline_ms in
  (match max_table_bytes with
  | Some b when b <= 0 -> invalid_arg "Tenant.make: table-mb must be positive"
  | _ -> ());
  (match rps with
  | Some r when r < 0. || not (Float.is_finite r) ->
    invalid_arg "Tenant.make: rps must be finite and non-negative"
  | _ -> ());
  (match burst with
  | Some b when b < 1 -> invalid_arg "Tenant.make: burst must be at least 1"
  | _ -> ());
  { name; deadline_ms; max_table_bytes; rps; burst }

let default = { name = default_name; deadline_ms = None; max_table_bytes = None; rps = None; burst = None }

let quota t =
  match (t.rps, t.burst) with
  | None, None -> Quota.unlimited ()
  | rps, burst -> Quota.create ?burst ?rps ()

(* Spec grammar: tenants split on ';', each "name" or "name:k=v,k=v".
   Keys: deadline-ms, table-mb, rps, burst. *)
let parse_one chunk =
  let name, settings =
    match String.index_opt chunk ':' with
    | None -> (chunk, "")
    | Some i -> (String.sub chunk 0 i, String.sub chunk (i + 1) (String.length chunk - i - 1))
  in
  let name = String.trim name in
  let deadline_ms = ref None
  and table_mb = ref None
  and rps = ref None
  and burst = ref None in
  let parse_setting s =
    let s = String.trim s in
    if s = "" then Ok ()
    else
      match String.index_opt s '=' with
      | None -> Error (Err.format ~scope:"serve" "tenant %S: setting %S is not key=value" name s)
      | Some i -> (
        let key = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
        let num () =
          match float_of_string_opt v with
          | Some x when Float.is_finite x -> Ok x
          | _ -> Error (Err.format ~scope:"serve" "tenant %S: %s=%S is not a number" name key v)
        in
        match key with
        | "deadline-ms" -> Result.map (fun x -> deadline_ms := Some x) (num ())
        | "table-mb" -> Result.map (fun x -> table_mb := Some x) (num ())
        | "rps" -> Result.map (fun x -> rps := Some x) (num ())
        | "burst" -> (
          match int_of_string_opt v with
          | Some b -> Ok (burst := Some b)
          | None -> Error (Err.format ~scope:"serve" "tenant %S: burst=%S is not an integer" name v))
        | _ -> Error (Err.format ~scope:"serve" "tenant %S: unknown setting %S" name key))
  in
  let rec settings_loop = function
    | [] -> Ok ()
    | s :: rest -> ( match parse_setting s with Ok () -> settings_loop rest | Error _ as e -> e)
  in
  match settings_loop (String.split_on_char ',' settings) with
  | Error _ as e -> e
  | Ok () -> (
    let max_table_bytes =
      Option.map (fun mb -> int_of_float (mb *. 1024. *. 1024.)) !table_mb
    in
    match make ?deadline_ms:!deadline_ms ?max_table_bytes ?rps:!rps ?burst:!burst name with
    | t -> Ok t
    | exception Invalid_argument msg -> Error (Err.format ~scope:"serve" "%s" msg))

let parse_spec spec =
  let chunks = String.split_on_char ';' spec |> List.map String.trim |> List.filter (( <> ) "") in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | chunk :: rest -> (
      match parse_one chunk with
      | Error _ as e -> e
      | Ok t ->
        if List.exists (fun u -> u.name = t.name) acc then
          Error (Err.format ~scope:"serve" "duplicate tenant %S" t.name)
        else go (t :: acc) rest)
  in
  go [] chunks

let to_json t =
  let opt f = function None -> Json.Null | Some v -> f v in
  Json.Obj
    [
      ("name", Json.String t.name);
      ("deadline_ms", opt (fun x -> Json.Float x) t.deadline_ms);
      ("max_table_bytes", opt (fun b -> Json.Int b) t.max_table_bytes);
      ("rps", opt (fun x -> Json.Float x) t.rps);
      ("burst", opt (fun b -> Json.Int b) t.burst);
    ]

module Json = Blitz_util.Json
module Err = Blitz_util.Err
module Metrics = Blitz_obs.Metrics
module Engine = Blitz_engine.Engine
module Guard = Blitz_guard.Guard
module Degrade = Blitz_guard.Degrade
module Budget = Blitz_guard.Budget
module Catalog = Blitz_catalog.Catalog
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Plan_cache = Blitz_cache.Plan_cache
module Workload = Blitz_workload.Workload
module Topology = Blitz_graph.Topology

type config = {
  host : string;
  port : int;
  workers : int;
  tenants : Tenant.t list;
  model : Cost_model.t;
  cache : Plan_cache.t option;
  default_table_bytes : int;
  max_queue : int;
  shed_queue : int;
  shed_deadline_ms : float;
  max_requests : int option;
  seed : int;
}

let default_model () = Err.get (Cost_model.of_string "kdnl")

let config ?(host = "127.0.0.1") ?(port = 0) ?(workers = 1) ?(tenants = []) ?model ?cache
    ?(default_table_bytes = 256 * 1024 * 1024) ?(max_queue = 4096) ?(shed_queue = 16)
    ?(shed_deadline_ms = 5.) ?max_requests ?(seed = 1) () =
  if workers < 1 then invalid_arg "Server.config: workers must be at least 1";
  if shed_queue < 1 then invalid_arg "Server.config: shed_queue must be at least 1";
  if shed_deadline_ms <= 0. then invalid_arg "Server.config: shed_deadline_ms must be positive";
  if max_queue < 1 then invalid_arg "Server.config: max_queue must be at least 1";
  if default_table_bytes < 1 then invalid_arg "Server.config: default_table_bytes must be positive";
  let model = match model with Some m -> m | None -> default_model () in
  let cache =
    match cache with
    | Some c -> Some c
    | None -> Some (Plan_cache.create ~max_bytes:(4 * 1024 * 1024) ())
  in
  {
    host;
    port;
    workers;
    tenants;
    model;
    cache;
    default_table_bytes;
    max_queue;
    shed_queue;
    shed_deadline_ms;
    max_requests;
    seed;
  }

type job = {
  conn_id : int;
  rid : Json.t;
  tenant : Tenant.t;
  call : Protocol.call;
  query : Protocol.query;
  multiway : bool;
  enqueued_at : float;
}

type tenant_stat = { mutable served : int; mutable shed : int; mutable quota_rejected : int }

type tenant_metrics = {
  m_optimize : Metrics.counter;
  m_explain : Metrics.counter;
  m_quota : Metrics.counter;
  m_shed : Metrics.counter;
}

type t = {
  cfg : config;
  tenants : (string, Tenant.t) Hashtbl.t;  (* read-only after [start] *)
  quotas : (string, Quota.t) Hashtbl.t;  (* event-loop domain only *)
  tmetrics : (string, tenant_metrics) Hashtbl.t;  (* read-only after [start] *)
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t;
  work_cond : Condition.t;
  work : job Queue.t;
  out : (int * string) Queue.t;  (* conn_id, response line *)
  mutable busy : int;  (* workers mid-job *)
  mutable served : int;  (* optimize/explain responses generated *)
  mutable drain : bool;  (* stop reading; exit once flushed *)
  mutable poison : bool;  (* workers exit once the queue is empty *)
  tstats : (string, tenant_stat) Hashtbl.t;
  h_latency : Metrics.histogram;
  g_queue : Metrics.gauge;
  c_conns : Metrics.counter;
  c_decode_errors : Metrics.counter;
  c_health : Metrics.counter;
  c_stats : Metrics.counter;
  c_sheds : Metrics.counter;
  c_overload : Metrics.counter;
  mutable loop_d : unit Domain.t option;
  mutable worker_ds : unit Domain.t list;
}

let port t = t.bound_port

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

(* Call with [t.lock] held. *)
let stat_for t name =
  match Hashtbl.find_opt t.tstats name with
  | Some s -> s
  | None ->
    let s = { served = 0; shed = 0; quota_rejected = 0 } in
    Hashtbl.replace t.tstats name s;
    s

(* ------------------------------------------------------------------ *)
(* Worker side: run one job through the Guard under the tenant budget. *)

let status_string = function
  | Degrade.Produced _ -> "produced"
  | Degrade.Aborted f -> "aborted (" ^ Degrade.failure_message f ^ ")"
  | Degrade.Skipped r -> "skipped (" ^ Degrade.skip_message r ^ ")"

let attempts_json (p : Degrade.provenance) =
  Json.List
    (List.map
       (fun (a : Degrade.attempt) ->
         Json.Obj
           [
             ("tier", Json.String (Degrade.tier_name a.Degrade.tier));
             ("status", Json.String (status_string a.Degrade.status));
           ])
       p.Degrade.attempts)

let rec tree_json model catalog graph names (p : Plan.t) =
  let card = Plan.cardinality catalog graph p in
  match p with
  | Plan.Leaf i ->
    Json.Obj
      [ ("op", Json.String "scan"); ("relation", Json.String names.(i)); ("card", Json.Float card) ]
  | Plan.Join (l, r) ->
    Json.Obj
      [
        ("op", Json.String "join");
        ("card", Json.Float card);
        ("cost", Json.Float (Plan.cost model catalog graph p));
        ("children", Json.List [ tree_json model catalog graph names l; tree_json model catalog graph names r ]);
      ]
  | Plan.Multiway { inputs; _ } ->
    Json.Obj
      [
        ("op", Json.String "multiway");
        ("card", Json.Float card);
        ("cost", Json.Float (Plan.cost model catalog graph p));
        ("children", Json.List (List.map (tree_json model catalog graph names) inputs));
      ]

let run_job t session (job : job) ~shed =
  let tenant = job.tenant in
  let deadline_ms = if shed then Some t.cfg.shed_deadline_ms else tenant.Tenant.deadline_ms in
  let max_table_bytes =
    Some (Option.value tenant.Tenant.max_table_bytes ~default:t.cfg.default_table_bytes)
  in
  let budget = Budget.create ?deadline_ms ?max_table_bytes () in
  let cache_tag = tenant.Tenant.name in
  let result =
    match job.query with
    | Protocol.Inline { relations; edges } ->
      `Guard
        (Guard.optimize_input ~budget ~session ~seed:t.cfg.seed ~multiway:job.multiway ~cache_tag
           t.cfg.model ~relations ~edges ())
    | Protocol.Generated { n; topology; mean_card; variability } -> (
      match Topology.of_string topology with
      | Error msg -> `Bad msg
      | Ok topo -> (
        match Workload.spec ~n ~topology:topo ~model:t.cfg.model ~mean_card ~variability with
        | exception Invalid_argument msg -> `Bad msg
        | spec ->
          let catalog, graph = Workload.problem spec in
          `Guard
            (Guard.optimize ~budget ~session ~seed:t.cfg.seed ~multiway:job.multiway ~cache_tag
               t.cfg.model catalog graph)))
  in
  let elapsed_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1000. in
  match result with
  | `Bad msg ->
    Protocol.error_response ~id:job.rid ~code:"invalid_request"
      ~message:(Err.format ~scope:"serve" "%s" msg)
  | `Guard (Error (Guard.Invalid_input _ as e)) ->
    Protocol.error_response ~id:job.rid ~code:"invalid_input" ~message:(Guard.error_message e)
  | `Guard (Error e) ->
    Protocol.error_response ~id:job.rid ~code:"internal" ~message:(Guard.error_message e)
  | `Guard (Ok o) ->
    let names = Catalog.names o.Guard.catalog in
    let p = o.Guard.provenance in
    let base =
      [
        ("plan", Json.String (Plan.to_compact_string ~names o.Guard.plan));
        ("cost", Json.Float o.Guard.cost);
        ("tier", Json.String (Degrade.tier_name p.Degrade.winner));
        ("from_cache", Json.Bool o.Guard.from_cache);
        ("shed", Json.Bool shed);
        ("repairs", Json.Int (List.length o.Guard.repairs));
        ("attempts", attempts_json p);
        ("elapsed_ms", Json.Float elapsed_ms);
      ]
    in
    let fields =
      match job.call with
      | Protocol.Optimize -> base
      | Protocol.Explain ->
        base
        @ [
            ("multiway_nodes", Json.Int (Plan.multiway_count o.Guard.plan));
            ("tree", tree_json t.cfg.model o.Guard.catalog o.Guard.graph names o.Guard.plan);
          ]
    in
    Protocol.ok_response ~id:job.rid (Json.Obj fields)

let run_job_safe t session job ~shed =
  try run_job t session job ~shed
  with exn ->
    Protocol.error_response ~id:job.rid ~code:"internal"
      ~message:(Err.format ~scope:"serve" "unexpected failure: %s" (Printexc.to_string exn))

let worker t () =
  let session =
    Engine.create ~model:t.cfg.model ~num_domains:1 ~seed:t.cfg.seed ?cache:t.cfg.cache ()
  in
  Fun.protect
    ~finally:(fun () -> Engine.close session)
    (fun () ->
      let rec go () =
        Mutex.lock t.lock;
        while Queue.is_empty t.work && not t.poison do
          Condition.wait t.work_cond t.lock
        done;
        if Queue.is_empty t.work then Mutex.unlock t.lock
        else begin
          let job = Queue.pop t.work in
          let depth = Queue.length t.work in
          t.busy <- t.busy + 1;
          Mutex.unlock t.lock;
          Metrics.set t.g_queue (float_of_int depth);
          (* Shed when the queue behind this job is already deep: clamp
             the deadline so the cascade lands on its deadline-exempt
             tiers and the backlog drains instead of compounding. *)
          let shed = depth >= t.cfg.shed_queue in
          let line = run_job_safe t session job ~shed in
          (match Hashtbl.find_opt t.tmetrics job.tenant.Tenant.name with
          | Some tm ->
            Metrics.incr
              (match job.call with
              | Protocol.Optimize -> tm.m_optimize
              | Protocol.Explain -> tm.m_explain);
            if shed then Metrics.incr tm.m_shed
          | None -> ());
          if shed then Metrics.incr t.c_sheds;
          Metrics.observe t.h_latency (Unix.gettimeofday () -. job.enqueued_at);
          Mutex.lock t.lock;
          t.busy <- t.busy - 1;
          t.served <- t.served + 1;
          let st = stat_for t job.tenant.Tenant.name in
          st.served <- st.served + 1;
          if shed then st.shed <- st.shed + 1;
          Queue.push (job.conn_id, line) t.out;
          Mutex.unlock t.lock;
          wake t;
          go ()
        end
      in
      go ())

(* ------------------------------------------------------------------ *)
(* Event-loop side. *)

type mode = Sniff | Ndjson | Http

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  outq : string Queue.t;
  mutable pending : string;
  mutable poff : int;
  mutable mode : mode;
  mutable inflight : int;  (* jobs queued/running for this connection *)
  mutable eof : bool;
  mutable closing : bool;  (* close once output is flushed *)
  mutable broken : bool;  (* close now, drop output *)
}

let has_output c = c.pending <> "" || not (Queue.is_empty c.outq)

let rec try_flush c =
  if c.broken then ()
  else if c.pending = "" then (
    match Queue.take_opt c.outq with
    | Some s ->
      c.pending <- s;
      c.poff <- 0;
      try_flush c
    | None -> ())
  else
    let len = String.length c.pending - c.poff in
    match Unix.write_substring c.fd c.pending c.poff len with
    | n ->
      c.poff <- c.poff + n;
      if c.poff >= String.length c.pending then begin
        c.pending <- "";
        c.poff <- 0;
        try_flush c
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> c.broken <- true

let send_line t c ~counts line =
  if counts then begin
    Mutex.lock t.lock;
    t.served <- t.served + 1;
    Mutex.unlock t.lock
  end;
  Queue.push (line ^ "\n") c.outq;
  try_flush c

let health_json t =
  Mutex.lock t.lock;
  let depth = Queue.length t.work in
  Mutex.unlock t.lock;
  let tenants =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.tenants [] |> List.sort compare
  in
  Json.Obj
    [
      ("status", Json.String "ok");
      ("protocol", Json.Int Protocol.version);
      ("workers", Json.Int t.cfg.workers);
      ("queue_depth", Json.Int depth);
      ("tenants", Json.List (List.map (fun n -> Json.String n) tenants));
    ]

let stats_json t =
  Mutex.lock t.lock;
  let served = t.served in
  let depth = Queue.length t.work in
  let per =
    Hashtbl.fold
      (fun name (st : tenant_stat) acc ->
        ( name,
          Json.Obj
            [
              ("served", Json.Int st.served);
              ("shed", Json.Int st.shed);
              ("quota_rejected", Json.Int st.quota_rejected);
            ] )
        :: acc)
      t.tstats []
  in
  Mutex.unlock t.lock;
  let per = List.sort (fun (a, _) (b, _) -> compare a b) per in
  let cache =
    match t.cfg.cache with
    | None -> Json.Null
    | Some c ->
      let s = Plan_cache.stats c in
      Json.Obj
        [
          ("hits", Json.Int s.Plan_cache.hits);
          ("misses", Json.Int s.Plan_cache.misses);
          ("insertions", Json.Int s.Plan_cache.insertions);
          ("entries", Json.Int s.Plan_cache.entries);
          ("bytes", Json.Int s.Plan_cache.bytes);
        ]
  in
  Json.Obj
    [
      ("served", Json.Int served);
      ("queue_depth", Json.Int depth);
      ("workers", Json.Int t.cfg.workers);
      ("tenants", Json.Obj per);
      ("cache", cache);
    ]

let handle_line t c line =
  match Protocol.decode line with
  | Error rej ->
    Metrics.incr t.c_decode_errors;
    send_line t c ~counts:false (Protocol.rejected_response rej)
  | Ok env -> (
    match env.Protocol.request with
    | Protocol.Health ->
      Metrics.incr t.c_health;
      send_line t c ~counts:false (Protocol.ok_response ~id:env.Protocol.id (health_json t))
    | Protocol.Stats ->
      Metrics.incr t.c_stats;
      send_line t c ~counts:false (Protocol.ok_response ~id:env.Protocol.id (stats_json t))
    | Protocol.Run { call; query; multiway } -> (
      let tname = Option.value env.Protocol.tenant ~default:Tenant.default_name in
      match Hashtbl.find_opt t.tenants tname with
      | None ->
        send_line t c ~counts:true
          (Protocol.error_response ~id:env.Protocol.id ~code:"unknown_tenant"
             ~message:(Err.format ~scope:"serve" "unknown tenant %S" tname))
      | Some tenant ->
        let quota = Hashtbl.find t.quotas tname in
        if not (Quota.try_acquire quota) then begin
          (match Hashtbl.find_opt t.tmetrics tname with
          | Some tm -> Metrics.incr tm.m_quota
          | None -> ());
          Mutex.lock t.lock;
          let st = stat_for t tname in
          st.quota_rejected <- st.quota_rejected + 1;
          Mutex.unlock t.lock;
          send_line t c ~counts:true
            (Protocol.error_response ~id:env.Protocol.id ~code:"quota_exhausted"
               ~message:(Err.format ~scope:"serve" "tenant %S is over its request quota" tname))
        end
        else begin
          Mutex.lock t.lock;
          let depth = Queue.length t.work in
          if depth >= t.cfg.max_queue then begin
            Mutex.unlock t.lock;
            Metrics.incr t.c_overload;
            send_line t c ~counts:true
              (Protocol.error_response ~id:env.Protocol.id ~code:"overloaded"
                 ~message:
                   (Err.format ~scope:"serve" "work queue is full (%d requests)" t.cfg.max_queue))
          end
          else begin
            Queue.push
              {
                conn_id = c.cid;
                rid = env.Protocol.id;
                tenant;
                call;
                query;
                multiway;
                enqueued_at = Unix.gettimeofday ();
              }
              t.work;
            c.inflight <- c.inflight + 1;
            Condition.signal t.work_cond;
            Mutex.unlock t.lock;
            Metrics.set t.g_queue (float_of_int (depth + 1))
          end
        end))

let find_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = if i + nl > hl then None else if String.sub haystack i nl = needle then Some i else go (i + 1) in
  go 0

let handle_http c =
  let data = Buffer.contents c.inbuf in
  match find_substring data "\r\n\r\n" with
  | None -> if String.length data > 8192 then c.broken <- true
  | Some _ ->
    let first_line =
      match find_substring data "\r\n" with Some i -> String.sub data 0 i | None -> data
    in
    let path =
      match String.split_on_char ' ' first_line with _ :: p :: _ -> p | _ -> "/"
    in
    let code, reason, body =
      if path = "/metrics" then (200, "OK", Metrics.to_prometheus ())
      else (404, "Not Found", "not found\n")
    in
    let resp =
      Printf.sprintf
        "HTTP/1.0 %d %s\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: \
         %d\r\nConnection: close\r\n\r\n%s"
        code reason (String.length body) body
    in
    Buffer.clear c.inbuf;
    Queue.push resp c.outq;
    c.closing <- true;
    try_flush c

let process_lines t c =
  let data = Buffer.contents c.inbuf in
  if String.contains data '\n' then begin
    let parts = String.split_on_char '\n' data in
    let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> "" in
    Buffer.clear c.inbuf;
    Buffer.add_string c.inbuf (last parts);
    let rec go = function
      | [] | [ _ ] -> ()
      | line :: rest ->
        let line =
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        if String.trim line <> "" then handle_line t c line;
        go rest
    in
    go parts
  end;
  if Buffer.length c.inbuf > Protocol.max_line_bytes then begin
    send_line t c ~counts:false
      (Protocol.error_response ~id:Json.Null ~code:"parse_error"
         ~message:
           (Err.format ~scope:"serve" "request line exceeds %d bytes" Protocol.max_line_bytes));
    Buffer.clear c.inbuf;
    c.closing <- true
  end

let process_input t c =
  (match c.mode with
  | Sniff ->
    let data = Buffer.contents c.inbuf in
    let prefix = "GET " in
    if String.length data >= String.length prefix then
      c.mode <- (if String.sub data 0 (String.length prefix) = prefix then Http else Ndjson)
    else if not (String.starts_with ~prefix:data prefix) then c.mode <- Ndjson
  | Ndjson | Http -> ());
  match c.mode with Http -> handle_http c | Ndjson -> process_lines t c | Sniff -> ()

let on_readable t c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | 0 -> c.eof <- true
  | n ->
    Buffer.add_subbytes c.inbuf buf 0 n;
    process_input t c
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> c.broken <- true

let loop t () =
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 32 in
  let by_fd : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 32 in
  let next_cid = ref 0 in
  let drain_wake () =
    let b = Bytes.create 64 in
    let rec go () = if Unix.read t.wake_r b 0 64 > 0 then go () in
    try go () with Unix.Unix_error _ -> ()
  in
  let close_conn c =
    Hashtbl.remove conns c.cid;
    Hashtbl.remove by_fd c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let accept_new () =
    let rec go () =
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        incr next_cid;
        let c =
          {
            fd;
            cid = !next_cid;
            inbuf = Buffer.create 256;
            outq = Queue.create ();
            pending = "";
            poff = 0;
            mode = Sniff;
            inflight = 0;
            eof = false;
            closing = false;
            broken = false;
          }
        in
        Hashtbl.replace conns c.cid c;
        Hashtbl.replace by_fd fd c;
        Metrics.incr t.c_conns;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let transfer_out () =
    Mutex.lock t.lock;
    let items = Queue.fold (fun acc x -> x :: acc) [] t.out in
    Queue.clear t.out;
    Mutex.unlock t.lock;
    List.rev items
    |> List.iter (fun (cid, line) ->
           match Hashtbl.find_opt conns cid with
           | Some c ->
             c.inflight <- c.inflight - 1;
             Queue.push (line ^ "\n") c.outq;
             try_flush c
           | None -> ())
  in
  let finished () =
    Mutex.lock t.lock;
    let f = Queue.is_empty t.work && t.busy = 0 && Queue.is_empty t.out in
    Mutex.unlock t.lock;
    f && Hashtbl.fold (fun _ c acc -> acc && not (has_output c)) conns true
  in
  let rec run () =
    let to_close =
      Hashtbl.fold
        (fun _ c acc ->
          if c.broken then c :: acc
          else if (c.closing || c.eof) && (not (has_output c)) && c.inflight = 0 then c :: acc
          else acc)
        conns []
    in
    List.iter close_conn to_close;
    Mutex.lock t.lock;
    (match t.cfg.max_requests with
    | Some m when t.served >= m -> t.drain <- true
    | _ -> ());
    let draining = t.drain in
    Mutex.unlock t.lock;
    if draining && finished () then ()
    else begin
      let rds =
        t.wake_r
        ::
        (if draining then []
         else
           t.listen_fd
           :: Hashtbl.fold (fun _ c acc -> if c.eof || c.broken then acc else c.fd :: acc) conns [])
      in
      let wrs = Hashtbl.fold (fun _ c acc -> if has_output c then c.fd :: acc else acc) conns [] in
      let rs, ws, _ =
        try Unix.select rds wrs [] 0.2 with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.wake_r rs then drain_wake ();
      transfer_out ();
      if (not draining) && List.mem t.listen_fd rs then accept_new ();
      List.iter
        (fun fd ->
          if fd <> t.wake_r && fd <> t.listen_fd then
            match Hashtbl.find_opt by_fd fd with Some c -> on_readable t c | None -> ())
        rs;
      List.iter
        (fun fd -> match Hashtbl.find_opt by_fd fd with Some c -> try_flush c | None -> ())
        ws;
      transfer_out ();
      run ()
    end
  in
  run ();
  Mutex.lock t.lock;
  t.poison <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let start (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Metrics.set_enabled true;
  let tenant_list =
    if List.exists (fun tn -> tn.Tenant.name = Tenant.default_name) cfg.tenants then cfg.tenants
    else cfg.tenants @ [ Tenant.default ]
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
      Unix.listen listen_fd 128;
      Unix.set_nonblock listen_fd;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      let wake_r, wake_w = Unix.pipe () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      {
        cfg;
        tenants = Hashtbl.create 8;
        quotas = Hashtbl.create 8;
        tmetrics = Hashtbl.create 8;
        listen_fd;
        bound_port;
        wake_r;
        wake_w;
        lock = Mutex.create ();
        work_cond = Condition.create ();
        work = Queue.create ();
        out = Queue.create ();
        busy = 0;
        served = 0;
        drain = false;
        poison = false;
        tstats = Hashtbl.create 8;
        h_latency =
          Metrics.histogram ~help:"Request latency, enqueue to response" "blitz_serve_request_seconds";
        g_queue = Metrics.gauge ~help:"Jobs waiting for a worker" "blitz_serve_queue_depth";
        c_conns = Metrics.counter ~help:"Accepted connections" "blitz_serve_connections_total";
        c_decode_errors =
          Metrics.counter ~help:"Lines rejected by the protocol codec"
            "blitz_serve_decode_errors_total";
        c_health =
          Metrics.counter ~help:"Requests served" ~labels:[ ("method", "health"); ("tenant", "-") ]
            "blitz_serve_requests_total";
        c_stats =
          Metrics.counter ~help:"Requests served" ~labels:[ ("method", "stats"); ("tenant", "-") ]
            "blitz_serve_requests_total";
        c_sheds =
          Metrics.counter ~help:"Requests run under the shed deadline" "blitz_serve_sheds_total";
        c_overload =
          Metrics.counter ~help:"Requests refused on a full work queue"
            "blitz_serve_overload_total";
        loop_d = None;
        worker_ds = [];
      }
    with exn ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise exn
  in
  List.iter
    (fun tn ->
      let name = tn.Tenant.name in
      Hashtbl.replace t.tenants name tn;
      Hashtbl.replace t.quotas name (Tenant.quota tn);
      Hashtbl.replace t.tmetrics name
        {
          m_optimize =
            Metrics.counter ~help:"Requests served"
              ~labels:[ ("method", "optimize"); ("tenant", name) ]
              "blitz_serve_requests_total";
          m_explain =
            Metrics.counter ~help:"Requests served"
              ~labels:[ ("method", "explain"); ("tenant", name) ]
              "blitz_serve_requests_total";
          m_quota =
            Metrics.counter ~help:"Requests rejected by the tenant quota"
              ~labels:[ ("tenant", name) ] "blitz_serve_quota_rejections_total";
          m_shed =
            Metrics.counter ~help:"Requests run under the shed deadline"
              ~labels:[ ("tenant", name) ] "blitz_serve_tenant_sheds_total";
        })
    tenant_list;
  t.worker_ds <- List.init cfg.workers (fun _ -> Domain.spawn (worker t));
  t.loop_d <- Some (Domain.spawn (loop t));
  t

let wait t =
  Mutex.lock t.lock;
  let d = t.loop_d in
  t.loop_d <- None;
  Mutex.unlock t.lock;
  (match d with Some d -> Domain.join d | None -> ());
  Mutex.lock t.lock;
  let ws = t.worker_ds in
  t.worker_ds <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join ws

let stop t =
  Mutex.lock t.lock;
  t.drain <- true;
  Mutex.unlock t.lock;
  wake t;
  wait t

let run cfg = wait (start cfg)

(** Per-tenant request quotas: a token bucket.

    A bucket holds up to [burst] tokens and refills at [rps] tokens per
    second; each admitted request spends one.  [rps = 0] means no
    refill — the bucket is a hard budget of [burst] requests, which is
    what the deterministic tests use.  The clock is injectable
    ([?now]), so refill behavior is testable without sleeping; the
    server passes wall-clock time.

    Buckets are {e not} thread-safe: the server touches each tenant's
    bucket from the event-loop domain only, before work is handed to a
    worker.  Quota is admission control; the per-request resource
    budget (deadline, table bytes) is [Blitz_guard.Budget]'s job and is
    armed after admission. *)

type t

val unlimited : unit -> t
(** Every acquire succeeds. *)

val create : ?burst:int -> ?rps:float -> unit -> t
(** Both omitted: {!unlimited}.  [burst] defaults to [max 1 (ceil rps)];
    the bucket starts full.  Raises [Invalid_argument] on [burst < 1]
    or negative/non-finite [rps]. *)

val is_limited : t -> bool

val try_acquire : ?now:float -> t -> bool
(** Spend one token if available.  [now] is seconds (any monotone
    origin — only differences matter); defaults to
    [Unix.gettimeofday ()].  Time moving backwards refills nothing. *)

val remaining : ?now:float -> t -> float
(** Tokens available after refill at [now]; [infinity] when
    unlimited. *)

(** Tenant configuration: who may ask for how much.

    A tenant maps onto the two resource mechanisms the stack already
    has: its [deadline_ms]/[max_table_bytes] become the per-request
    [Blitz_guard.Budget], and its [rps]/[burst] become a {!Quota}
    bucket.  The tenant {e name} additionally becomes the
    [Engine]/[Guard] [cache_tag], partitioning the shared plan cache so
    one tenant's plans are never replayed to another.

    The CLI accepts a compact spec string:
    ["acme:deadline-ms=50,table-mb=8,rps=100,burst=20;beta:rps=5"] —
    tenants separated by [;], settings by [,], every setting optional.
    A tenant named [default] overrides the built-in unlimited default;
    otherwise the default tenant is appended so unauthenticated
    requests still resolve. *)

type t = {
  name : string;
  deadline_ms : float option;  (** Per-request optimizer deadline. *)
  max_table_bytes : int option;
      (** DP-table memory ceiling; [None] falls back to the server's
          default ceiling. *)
  rps : float option;  (** Quota refill rate; [None] = unlimited. *)
  burst : int option;  (** Quota bucket size. *)
}

val default_name : string
(** ["default"] — the tenant used when a request names none. *)

val default : t
(** Unlimited tenant under {!default_name}. *)

val make :
  ?deadline_ms:float -> ?max_table_bytes:int -> ?rps:float -> ?burst:int -> string -> t
(** Validating constructor.  Raises [Invalid_argument] on an invalid
    name (must match [[A-Za-z0-9_.-]+]) or non-positive limits. *)

val quota : t -> Quota.t
(** A fresh bucket for this tenant's [rps]/[burst] (unlimited when both
    are [None]). *)

val parse_spec : string -> (t list, string) result
(** Parse the CLI spec string.  Duplicate tenant names, unknown
    settings, and malformed numbers are errors (rendered via
    [Err.format ~scope:"serve"]). *)

val to_json : t -> Blitz_util.Json.t

type t = {
  capacity : float;  (* [infinity] = unlimited *)
  rate : float;  (* tokens per second; 0 = no refill *)
  mutable tokens : float;
  mutable last : float;  (* [nan] until the first acquire sets the clock origin *)
}

let unlimited () = { capacity = infinity; rate = 0.; tokens = infinity; last = nan }

let create ?burst ?rps () =
  match (burst, rps) with
  | None, None -> unlimited ()
  | _ ->
    let rate = Option.value rps ~default:0. in
    if rate < 0. || not (Float.is_finite rate) then
      invalid_arg "Quota.create: rps must be finite and non-negative";
    let capacity =
      match burst with
      | Some b ->
        if b < 1 then invalid_arg "Quota.create: burst must be at least 1";
        float_of_int b
      | None -> Float.max 1. (Float.round (ceil rate))
    in
    { capacity; rate; tokens = capacity; last = nan }

let is_limited t = t.capacity < infinity

let refill t ~now =
  if Float.is_nan t.last then t.last <- now
  else begin
    let dt = Float.max 0. (now -. t.last) in
    t.last <- now;
    t.tokens <- Float.min t.capacity (t.tokens +. (dt *. t.rate))
  end

let clock = function Some now -> now | None -> Unix.gettimeofday ()

let try_acquire ?now t =
  if not (is_limited t) then true
  else begin
    refill t ~now:(clock now);
    if t.tokens >= 1. then begin
      t.tokens <- t.tokens -. 1.;
      true
    end
    else false
  end

let remaining ?now t =
  if not (is_limited t) then infinity
  else begin
    refill t ~now:(clock now);
    t.tokens
  end

(** TPC-H-shaped optimization problems.

    The paper evaluates on synthetic grids; downstream users ask "what
    does it do on my schema?".  This module provides the classic TPC-H
    schema (8 tables, foreign-key joins) at a configurable scale factor
    and the join skeletons of seven representative TPC-H queries, as
    ready-made [Catalog.t * Join_graph.t] problems.

    Semantics and scope:
    - base-table cardinalities follow the TPC-H specification as a
      function of the scale factor;
    - each foreign-key equi-join gets selectivity [1 / |referenced
      table|] (key-uniqueness), independent of filters;
    - with [~filtered:true] (default), per-table factors approximating
      each query's WHERE-clause selectivities shrink the inputs — these
      are documented rough figures that shape the optimization problem
      realistically; this is not a TPC-H benchmark implementation.

    Star/snowflake shapes with tiny dimensions (region: 5 rows, nation:
    25) are exactly the territory where the paper's thesis bites:
    optimal plans routinely cross small dimensions. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

val schema : scale_factor:float -> (string * float) list
(** The eight base tables with their cardinalities at the given scale
    factor.  Raises [Invalid_argument] on non-positive factors. *)

type query = Q2 | Q3 | Q5 | Q7 | Q8 | Q9 | Q10

val all : query list
val name : query -> string
(** e.g. ["Q5"]. *)

val description : query -> string
(** One-line summary of the query's join shape. *)

val relations : query -> string list
(** FROM-clause binding names, e.g. Q7 joins the nation table twice as
    ["n1"] / ["n2"]. *)

val problem : ?scale_factor:float -> ?filtered:bool -> query -> Catalog.t * Join_graph.t
(** The query's optimization problem ([scale_factor] defaults to 1.0,
    [filtered] to true). *)

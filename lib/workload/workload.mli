(** Deterministic benchmark-workload generation (Section 6.1 + appendix).

    The paper argues against random test mixes and instead samples a
    4-dimensional grid deterministically:

    - {b cost model}: naive, sort-merge, disk nested loops;
    - {b join-graph topology}: chain, cycle+3, star, clique;
    - {b mean cardinality}: the geometric mean [mu] of the base-relation
      cardinalities, sampled logarithmically at [10^(2k/3)]
      (1, 4.64, 21.5, 100, 464, ...);
    - {b variability} in [\[0, 1\]]: [|R_0| = mu^(1 - v)] with constant
      ratio [|R_i| / |R_{i-1}|] (so [|R_{n-1}| = mu^(1 + v)]), 0 meaning
      all cardinalities equal.

    Selectivities follow the appendix formula and make every query's
    result cardinality equal [mu]. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model

type spec = {
  n : int;
  topology : Topology.t;
  model : Cost_model.t;
  mean_card : float;  (** Geometric mean [mu] of base-relation cardinalities. *)
  variability : float;  (** In [\[0, 1\]]. *)
}

val spec :
  n:int -> topology:Topology.t -> model:Cost_model.t -> mean_card:float -> variability:float -> spec
(** Validating constructor.  Raises [Invalid_argument] on [n < 2],
    non-positive [mean_card], or [variability] outside [\[0, 1\]]. *)

val catalog : spec -> Catalog.t
(** The appendix cardinality ladder: [|R_i| = mu^(1 - v + 2vi/(n-1))],
    whose geometric mean is exactly [mu]. *)

val graph : spec -> Join_graph.t
(** Topology wiring with appendix selectivities targeting result
    cardinality [mu]. *)

val problem : spec -> Catalog.t * Join_graph.t

val describe : spec -> string
(** e.g. ["n=15 chain ksm mu=100 v=0.33"]. *)

(** {1 Grid axes} *)

val mean_card_axis : ?count:int -> unit -> float array
(** [10^(2k/3)] for [k = 0 .. count-1]; default [count = 10] reaches
    [10^6]. *)

val variability_axis : ?count:int -> unit -> float array
(** Evenly spaced values from 0 to 1 inclusive; default [count = 4]
    gives 0, 1/3, 2/3, 1. *)

val grid :
  n:int ->
  models:Cost_model.t list ->
  topologies:Topology.t list ->
  mean_cards:float array ->
  variabilities:float array ->
  spec list
(** Cartesian product of the axes, in row-major order (model outermost,
    variability innermost) — the sampling order of Figure 4. *)

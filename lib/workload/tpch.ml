module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

let schema ~scale_factor =
  if (not (Float.is_finite scale_factor)) || scale_factor <= 0.0 then
    invalid_arg "Tpch.schema: scale factor must be positive";
  let sf = scale_factor in
  [
    ("region", 5.0);
    ("nation", 25.0);
    ("supplier", 10_000.0 *. sf);
    ("customer", 150_000.0 *. sf);
    ("part", 200_000.0 *. sf);
    ("partsupp", 800_000.0 *. sf);
    ("orders", 1_500_000.0 *. sf);
    ("lineitem", 6_000_000.0 *. sf);
  ]

type query = Q2 | Q3 | Q5 | Q7 | Q8 | Q9 | Q10

let all = [ Q2; Q3; Q5; Q7; Q8; Q9; Q10 ]

let name = function
  | Q2 -> "Q2"
  | Q3 -> "Q3"
  | Q5 -> "Q5"
  | Q7 -> "Q7"
  | Q8 -> "Q8"
  | Q9 -> "Q9"
  | Q10 -> "Q10"

let description = function
  | Q2 -> "minimum-cost supplier: part/partsupp/supplier snowflaked to region"
  | Q3 -> "shipping priority: customer/orders/lineitem chain"
  | Q5 -> "local supplier volume: 6-way snowflake through nation and region"
  | Q7 -> "volume shipping: nation self-join via supplier and customer"
  | Q8 -> "national market share: 8-way snowflake, two nation roles"
  | Q9 -> "product type profit: part/partsupp/lineitem with orders and nation"
  | Q10 -> "returned items: customer/orders/lineitem with customer's nation"

(* Per query: (binding name, base table, filter factor) and FK edges as
   (child binding, parent binding).  Filter factors roughly follow the
   TPC-H predicate selectivities (documented approximations). *)
let spec = function
  | Q2 ->
    ( [
        ("part", "part", 0.004) (* p_size = k and p_type like '%X' *);
        ("supplier", "supplier", 1.0);
        ("partsupp", "partsupp", 1.0);
        ("nation", "nation", 1.0);
        ("region", "region", 0.2);
      ],
      [
        ("partsupp", "part");
        ("partsupp", "supplier");
        ("supplier", "nation");
        ("nation", "region");
      ] )
  | Q3 ->
    ( [
        ("customer", "customer", 0.2) (* one market segment *);
        ("orders", "orders", 0.48) (* o_orderdate < date *);
        ("lineitem", "lineitem", 0.54) (* l_shipdate > date *);
      ],
      [ ("orders", "customer"); ("lineitem", "orders") ] )
  | Q5 ->
    ( [
        ("customer", "customer", 1.0);
        ("orders", "orders", 0.152) (* one year *);
        ("lineitem", "lineitem", 1.0);
        ("supplier", "supplier", 1.0);
        ("nation", "nation", 1.0);
        ("region", "region", 0.2);
      ],
      [
        ("orders", "customer");
        ("lineitem", "orders");
        ("lineitem", "supplier");
        ("supplier", "nation");
        ("customer", "nation");
        ("nation", "region");
      ] )
  | Q7 ->
    ( [
        ("supplier", "supplier", 1.0);
        ("lineitem", "lineitem", 0.305) (* two shipping years *);
        ("orders", "orders", 1.0);
        ("customer", "customer", 1.0);
        ("n1", "nation", 0.04) (* one named nation *);
        ("n2", "nation", 0.04);
      ],
      [
        ("lineitem", "supplier");
        ("lineitem", "orders");
        ("orders", "customer");
        ("supplier", "n1");
        ("customer", "n2");
      ] )
  | Q8 ->
    ( [
        ("part", "part", 0.00667) (* one p_type *);
        ("supplier", "supplier", 1.0);
        ("lineitem", "lineitem", 1.0);
        ("orders", "orders", 0.305) (* two order years *);
        ("customer", "customer", 1.0);
        ("n1", "nation", 1.0);
        ("n2", "nation", 1.0);
        ("region", "region", 0.2);
      ],
      [
        ("lineitem", "part");
        ("lineitem", "supplier");
        ("lineitem", "orders");
        ("orders", "customer");
        ("customer", "n1");
        ("n1", "region");
        ("supplier", "n2");
      ] )
  | Q9 ->
    ( [
        ("part", "part", 0.055) (* p_name like '%green%' *);
        ("supplier", "supplier", 1.0);
        ("lineitem", "lineitem", 1.0);
        ("partsupp", "partsupp", 1.0);
        ("orders", "orders", 1.0);
        ("nation", "nation", 1.0);
      ],
      [
        ("lineitem", "part");
        ("lineitem", "supplier");
        ("lineitem", "partsupp");
        ("partsupp", "part");
        ("partsupp", "supplier");
        ("lineitem", "orders");
        ("supplier", "nation");
      ] )
  | Q10 ->
    ( [
        ("customer", "customer", 1.0);
        ("orders", "orders", 0.038) (* one quarter *);
        ("lineitem", "lineitem", 0.247) (* returned flag *);
        ("nation", "nation", 1.0);
      ],
      [ ("orders", "customer"); ("lineitem", "orders"); ("customer", "nation") ] )

let relations q = List.map (fun (binding, _, _) -> binding) (fst (spec q))

let problem ?(scale_factor = 1.0) ?(filtered = true) q =
  let base = schema ~scale_factor in
  let base_card table =
    match List.assoc_opt table base with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Tpch.problem: unknown base table %s" table)
  in
  let bindings, fks = spec q in
  let catalog =
    Catalog.of_list
      (List.map
         (fun (binding, table, factor) ->
           let filter = if filtered then factor else 1.0 in
           (binding, Float.max 1.0 (base_card table *. filter)))
         bindings)
  in
  let index binding =
    match Catalog.index_of_name catalog binding with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Tpch.problem: unknown binding %s" binding)
  in
  (* Foreign-key joins: selectivity 1 / |referenced base table| —
     key-domain size, independent of filters. *)
  let parent_base binding =
    let _, table, _ = List.find (fun (b, _, _) -> b = binding) bindings in
    base_card table
  in
  let edges =
    List.map (fun (child, parent) -> (index child, index parent, 1.0 /. parent_base parent)) fks
  in
  (catalog, Join_graph.of_edges ~n:(Catalog.n catalog) edges)

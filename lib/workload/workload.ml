module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model

type spec = {
  n : int;
  topology : Topology.t;
  model : Cost_model.t;
  mean_card : float;
  variability : float;
}

let spec ~n ~topology ~model ~mean_card ~variability =
  if n < 2 then invalid_arg "Workload.spec: need at least two relations";
  if (not (Float.is_finite mean_card)) || mean_card <= 0.0 then
    invalid_arg "Workload.spec: mean_card must be positive";
  if variability < 0.0 || variability > 1.0 then
    invalid_arg "Workload.spec: variability must lie in [0, 1]";
  { n; topology; model; mean_card; variability }

let catalog t =
  let mu = t.mean_card and v = t.variability in
  (* log-linear ladder centered (in log space) on mu:
     exponent(i) = 1 - v + 2vi/(n-1). *)
  let exponent i = 1.0 -. v +. (2.0 *. v *. float_of_int i /. float_of_int (t.n - 1)) in
  Catalog.of_cards (Array.init t.n (fun i -> mu ** exponent i))

let graph t =
  let cat = catalog t in
  Topology.assign_selectivities cat
    (Topology.edge_list t.topology ~n:t.n)
    ~result_card:t.mean_card

let problem t = (catalog t, graph t)

let describe t =
  Printf.sprintf "n=%d %s %s mu=%g v=%.2f" t.n (Topology.name t.topology)
    t.model.Cost_model.name t.mean_card t.variability

let mean_card_axis ?(count = 10) () =
  if count < 1 then invalid_arg "Workload.mean_card_axis: count must be positive";
  Array.init count (fun k -> 10.0 ** (2.0 *. float_of_int k /. 3.0))

let variability_axis ?(count = 4) () =
  if count < 2 then invalid_arg "Workload.variability_axis: count must be at least 2";
  Array.init count (fun k -> float_of_int k /. float_of_int (count - 1))

let grid ~n ~models ~topologies ~mean_cards ~variabilities =
  List.concat_map
    (fun model ->
      List.concat_map
        (fun topology ->
          Array.to_list mean_cards
          |> List.concat_map (fun mean_card ->
                 Array.to_list variabilities
                 |> List.map (fun variability ->
                        spec ~n ~topology ~model ~mean_card ~variability)))
        topologies)
    models

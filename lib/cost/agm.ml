module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Hypergraph = Blitz_graph.Hypergraph

type cover = {
  weights : (int list * float) list;
  log_bound : float;
  bound : float;
  exact : bool;
}

let exact_edge_cap = 6

(* The bound being minimized.  Every predicate (hyper)edge [e] with
   members [M_e] and selectivity [sel_e] is viewed as a materialized
   relationship relation of size [prod_{i in M_e} N_i * sel_e]; a
   choice of edge weights [x_e >= 0] with implicit vertex self-covers
   [w_i = max(0, 1 - cov_i)] (where [cov_i = sum_{e ni i} x_e]) is a
   fractional edge cover of the subset, so

     |Q_S|  <=  prod_i N_i^{w_i} * prod_e (prod_{i in M_e} N_i * sel_e)^{x_e}

   holds for EVERY [x >= 0] (AGM / fractional-cover argument), which in
   log space collapses to

     G(x) = sum_i L_i * max(1, cov_i) + sum_e x_e * ln sel_e .

   Any evaluation point is a valid bound; the solvers below only differ
   in how close to the minimum they land.  For ordinary (binary-edge)
   graphs the LP optimum is half-integral, so exhaustive enumeration
   over {0, 1/2, 1}^m is exact up to [exact_edge_cap] edges; beyond it
   a deterministic coordinate descent from the all-1/2 start converges
   to a (valid, usually optimal) point. *)

type problem = {
  k : int;  (* relations in the subset *)
  rels : int array;  (* position -> relation index *)
  logs : float array;  (* position -> ln N_i *)
  m : int;  (* induced edges *)
  edge_members : int array array;  (* edge -> member positions *)
  edge_rels : int list array;  (* edge -> member relation indexes *)
  lsel : float array;  (* edge -> ln sel_e *)
  sel : float array;  (* edge -> sel_e *)
  cov : float array;  (* scratch, length k *)
}

let build catalog packed s =
  let rels = Array.of_list (Relset.to_list s) in
  let k = Array.length rels in
  let pos_of = Hashtbl.create (2 * k) in
  Array.iteri (fun p i -> Hashtbl.replace pos_of i p) rels;
  let idxs = Array.of_list (Hypergraph.induced packed s) in
  let m = Array.length idxs in
  {
    k;
    rels;
    logs = Array.map (fun i -> Float.log (Catalog.card catalog i)) rels;
    m;
    edge_members =
      Array.map
        (fun e ->
          Array.of_list
            (List.map (fun i -> Hashtbl.find pos_of i) (Relset.to_list packed.Hypergraph.members.(e))))
        idxs;
    edge_rels = Array.map (fun e -> Relset.to_list packed.Hypergraph.members.(e)) idxs;
    lsel = Array.map (fun e -> Float.log packed.Hypergraph.sel.(e)) idxs;
    sel = Array.map (fun e -> packed.Hypergraph.sel.(e)) idxs;
    cov = Array.make k 0.0;
  }

let objective p x =
  Array.fill p.cov 0 p.k 0.0;
  let acc = ref 0.0 in
  for e = 0 to p.m - 1 do
    let xe = x.(e) in
    if xe > 0.0 then begin
      acc := !acc +. (xe *. p.lsel.(e));
      Array.iter (fun pos -> p.cov.(pos) <- p.cov.(pos) +. xe) p.edge_members.(e)
    end
  done;
  for pos = 0 to p.k - 1 do
    acc := !acc +. (p.logs.(pos) *. Float.max 1.0 p.cov.(pos))
  done;
  !acc

let degenerate p =
  Array.exists (fun l -> not (Float.is_finite l)) p.logs
  || Array.exists (fun l -> not (Float.is_finite l)) p.lsel

(* Exhaustive half-integral search: x in {0, 1/2, 1}^m by a base-3
   counter (edge 0 least significant), keeping the first strictly
   smaller objective — deterministic tie-break toward the earliest
   counter value. *)
let solve_exact p =
  let x = Array.make p.m 0.0 in
  let best = Array.make p.m 0.0 in
  let best_g = ref (objective p x) in
  let total = ref 1 in
  for _ = 1 to p.m do
    total := !total * 3
  done;
  for c = 1 to !total - 1 do
    let v = ref c in
    for e = 0 to p.m - 1 do
      x.(e) <- float_of_int (!v mod 3) /. 2.0;
      v := !v / 3
    done;
    let g = objective p x in
    if g < !best_g then begin
      best_g := g;
      Array.blit x 0 best 0 p.m
    end
  done;
  (best, !best_g)

(* Deterministic coordinate descent: all-1/2 start, ascending-index
   sweeps trying {0, 1/2, 1} per edge (first strictly smaller wins),
   until a fixpoint or the sweep cap. *)
let solve_descent p =
  let x = Array.make p.m 0.5 in
  let g = ref (objective p x) in
  let sweeps = ref 0 in
  let changed = ref true in
  while !changed && !sweeps < 32 do
    changed := false;
    incr sweeps;
    for e = 0 to p.m - 1 do
      let current = x.(e) in
      List.iter
        (fun d ->
          if d <> x.(e) then begin
            let saved = x.(e) in
            x.(e) <- d;
            let g' = objective p x in
            if g' < !g then begin
              g := g';
              changed := true
            end
            else x.(e) <- saved
          end)
        (List.filter (fun d -> d <> current) [ 0.0; 0.5; 1.0 ])
    done
  done;
  (x, !g)

(* Integral greedy cover for degenerate statistics (non-finite or
   non-positive logs, e.g. sanitizer-fabricated cards): pick whole
   edges by descending fresh coverage (lowest index on ties), self-
   cover the rest, and multiply the bound out directly — no logs. *)
let solve_degenerate p =
  let x = Array.make p.m 0.0 in
  let covered = Array.make p.k false in
  let remaining = ref p.k in
  let continue_ = ref true in
  while !remaining > 0 && !continue_ do
    let best_e = ref (-1) in
    let best_fresh = ref 0 in
    for e = p.m - 1 downto 0 do
      if x.(e) = 0.0 then begin
        let fresh =
          Array.fold_left (fun acc pos -> if covered.(pos) then acc else acc + 1) 0 p.edge_members.(e)
        in
        if fresh >= !best_fresh && fresh > 0 then begin
          best_fresh := fresh;
          best_e := e
        end
      end
    done;
    if !best_e < 0 then continue_ := false
    else begin
      x.(!best_e) <- 1.0;
      Array.iter
        (fun pos ->
          if not covered.(pos) then begin
            covered.(pos) <- true;
            decr remaining
          end)
        p.edge_members.(!best_e)
    end
  done;
  let bound = ref 1.0 in
  for pos = 0 to p.k - 1 do
    if not covered.(pos) then bound := !bound *. Float.exp p.logs.(pos)
  done;
  for e = 0 to p.m - 1 do
    if x.(e) = 1.0 then begin
      Array.iter (fun pos -> bound := !bound *. Float.exp p.logs.(pos)) p.edge_members.(e);
      bound := !bound *. p.sel.(e)
    end
  done;
  (x, !bound)

let cover_of_weights p x ~log_bound ~bound ~exact =
  let weights = ref [] in
  for e = p.m - 1 downto 0 do
    if x.(e) > 0.0 then weights := (p.edge_rels.(e), x.(e)) :: !weights
  done;
  { weights = !weights; log_bound; bound; exact }

let fractional_edge_cover catalog packed s =
  if Relset.is_empty s then invalid_arg "Agm.fractional_edge_cover: empty set";
  let p = build catalog packed s in
  if degenerate p then begin
    let x, bound = solve_degenerate p in
    cover_of_weights p x ~log_bound:(Float.log bound) ~bound ~exact:false
  end
  else begin
    let x, g = if p.m <= exact_edge_cap then solve_exact p else solve_descent p in
    cover_of_weights p x ~log_bound:g ~bound:(Float.exp g) ~exact:(p.m <= exact_edge_cap)
  end

let of_join_graph catalog graph s =
  fractional_edge_cover catalog (Hypergraph.pack (Hypergraph.of_join_graph graph)) s

(* Multiway-join operator cost: build a hash index per input (linear
   scans), then enumerate results.  The enumeration term is the AGM
   bound capped by the estimated output and the largest input — the
   bound is worst-case while the binary costs it competes against are
   independence estimates, so the honest comparison caps enumeration
   work at what the estimates themselves claim flows out. *)
let kappa_multiway ~inputs ~out ~agm =
  let build = List.fold_left ( +. ) 0.0 inputs in
  let max_in = List.fold_left Float.max 0.0 inputs in
  build +. Float.min agm (Float.max out max_in)

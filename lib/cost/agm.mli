(** AGM bound / fractional edge cover for multiway-join costing.

    The worst-case-optimal-join literature (Atserias–Grohe–Marx;
    Leapfrog Triejoin, arXiv 1210.0481; Capelli et al., arXiv
    2409.14094) bounds a join's output by the {e AGM bound}: minimize
    [prod_e |R_e|^{x_e}] over fractional edge covers [x] of the query's
    hypergraph.  Here the covering "relations" are the predicate
    (hyper)edges, each viewed as a relationship table of size
    [prod_{i in e} N_i * sel_e], together with implicit per-relation
    self-covers; in log space the objective collapses to

    {v G(x) = sum_i ln(N_i) * max(1, cov_i) + sum_e x_e * ln(sel_e) v}

    with [cov_i] the total edge weight incident on relation [i].
    {e Every} [x >= 0] yields a valid upper bound, so the solvers can
    be approximate without risking soundness:

    - up to {!exact_edge_cap} induced edges, exhaustive half-integral
      enumeration over [{0, 1/2, 1}^m] (exact for binary-edge graphs,
      whose cover LP has half-integral optima), deterministic
      first-strictly-less tie-break;
    - beyond it, deterministic coordinate descent from the all-[1/2]
      start to a fixpoint;
    - when any log is non-finite (degenerate or fabricated statistics),
      an integral greedy cover evaluated without logarithms. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Hypergraph = Blitz_graph.Hypergraph

type cover = {
  weights : (int list * float) list;
      (** Edges with positive weight: member relation indexes
          (ascending) paired with [x_e], in induced-edge order.
          Vertex self-covers are implicit ([max(0, 1 - cov_i)]). *)
  log_bound : float;  (** The minimized [G]. *)
  bound : float;  (** [exp log_bound] — the cardinality bound. *)
  exact : bool;
      (** Whether the exhaustive half-integral search ran (false for
          coordinate descent and the degenerate fallback). *)
}

val exact_edge_cap : int
(** Largest induced-edge count solved by exhaustive enumeration (6 —
    [3^6] objective evaluations; a 4-clique still lands here). *)

val fractional_edge_cover : Catalog.t -> Hypergraph.packed -> Relset.t -> cover
(** Cover of the sub-hypergraph induced by the set (edges wholly
    contained in it).  Raises [Invalid_argument] on the empty set.
    With no induced edges the bound degenerates to the product of
    member cardinalities (all self-covers). *)

val of_join_graph : Catalog.t -> Join_graph.t -> Relset.t -> cover
(** Convenience: pack the binary join graph as a hypergraph and solve.
    Used by reference re-costing (plan cost under true statistics);
    the optimizer packs once per query instead. *)

val kappa_multiway : inputs:float list -> out:float -> agm:float -> float
(** Cost of one n-ary hash-based multiway join: the sum of input
    cardinalities (hash-index builds) plus the enumeration work
    [min(agm, max(out, max_input))].  The cap keeps the worst-case
    bound comparable with the independence-estimate binary costs it
    competes against: enumeration is never charged more than the
    estimates claim can flow out of the node. *)

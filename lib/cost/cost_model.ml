type kind =
  | Paper_naive
  | Paper_sort_merge
  | Paper_dnl of { k : float; inner_coeff : float }
  | Opaque

type t = {
  name : string;
  aux : float -> float;
  k_prime : float -> float;
  k_dprime : out:float -> lcard:float -> rcard:float -> laux:float -> raux:float -> float;
  dprime_is_zero : bool;
  kind : kind;
}

let identity_aux (c : float) = c

let naive =
  {
    name = "k0";
    aux = identity_aux;
    k_prime = (fun out -> out);
    k_dprime = (fun ~out:_ ~lcard:_ ~rcard:_ ~laux:_ ~raux:_ -> 0.0);
    dprime_is_zero = true;
    kind = Paper_naive;
  }

(* c * (1 + log c), guarded so tiny fractional intermediate cardinalities
   (possible under strong selectivities) never yield a negative cost. *)
let sm_term c = if c <= 1.0 then c else c *. (1.0 +. log c)

let sort_merge =
  {
    name = "ksm";
    aux = sm_term;
    k_prime = (fun _out -> 0.0);
    k_dprime = (fun ~out:_ ~lcard:_ ~rcard:_ ~laux ~raux -> laux +. raux);
    dprime_is_zero = false;
    kind = Paper_sort_merge;
  }

let disk_nested_loops ?(blocking_factor = 10.0) ?(memory_blocks = 100.0) () =
  if blocking_factor <= 0.0 then invalid_arg "Cost_model.disk_nested_loops: K must be positive";
  if memory_blocks <= 1.0 then invalid_arg "Cost_model.disk_nested_loops: M must exceed 1";
  let k = blocking_factor and m = memory_blocks in
  let inner_coeff = 1.0 /. (k *. k *. (m -. 1.0)) in
  {
    name = "kdnl";
    aux = identity_aux;
    k_prime = (fun out -> 2.0 *. out /. k);
    k_dprime =
      (fun ~out:_ ~lcard ~rcard ~laux:_ ~raux:_ ->
        (lcard *. rcard *. inner_coeff) +. (Float.min lcard rcard /. k));
    dprime_is_zero = false;
    (* The payload repeats the closure's captures so the specialized
       split kernel computes bit-identical terms (same [inner_coeff]
       float, same division by [k]). *)
    kind = Paper_dnl { k; inner_coeff };
  }

let kdnl = disk_nested_loops ()

let kappa t ~out ~lcard ~rcard =
  t.k_prime out
  +. t.k_dprime ~out ~lcard ~rcard ~laux:(t.aux lcard) ~raux:(t.aux rcard)

let min_of a b =
  {
    name = Printf.sprintf "min:%s,%s" a.name b.name;
    aux = identity_aux;
    k_prime = (fun _out -> 0.0);
    k_dprime =
      (fun ~out ~lcard ~rcard ~laux:_ ~raux:_ ->
        Float.min (kappa a ~out ~lcard ~rcard) (kappa b ~out ~lcard ~rcard));
    dprime_is_zero = false;
    kind = Opaque;
  }

let all_paper = [ naive; sort_merge; kdnl ]

let rec of_string s =
  match s with
  | "k0" | "naive" -> Ok naive
  | "ksm" | "sort-merge" -> Ok sort_merge
  | "kdnl" | "disk-nested-loops" -> Ok kdnl
  | _ ->
    if String.length s > 4 && String.sub s 0 4 = "min:" then
      match String.split_on_char ',' (String.sub s 4 (String.length s - 4)) with
      | [ a; b ] -> (
        match (of_string a, of_string b) with
        | Ok a, Ok b -> Ok (min_of a b)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      | _ -> Error (Printf.sprintf "min model needs exactly two components: %S" s)
    else Error (Printf.sprintf "unknown cost model %S (expected k0|ksm|kdnl|min:A,B)" s)

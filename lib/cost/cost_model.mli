(** Join cost models, decomposed for the blitzsplit inner loop.

    Section 3.2 of the paper: the per-join cost function is split as

    {v kappa(out, lhs, rhs) = kappa'(out) + kappa''(out, lhs, rhs) v}

    where [kappa'] depends only on the join {e output} and is evaluated
    once per subset (outside the split loop, [2^n] times total), while
    [kappa''] depends on the split and is evaluated lazily inside the loop
    behind nested [if]s.  Performance is best when [kappa''] is cheap and
    small; correctness requires it to be non-negative.

    The three concrete models come from the appendix (after Steinbrunn,
    Moerkotte & Kemper):

    - naive [kappa_0]: cost of a join = output cardinality
      ([kappa' = |out|], [kappa'' = 0]);
    - sort-merge [kappa_sm]: [|L|(1 + log |L|) + |R|(1 + log |R|)]
      ([kappa' = 0]); the [c(1 + log c)] term depends only on the operand
      subset, so it is memoized in the DP table via {!field-aux};
    - disk nested loops [kappa_dnl]:
      [2|out|/K + |L||R| / (K^2 (M-1)) + min(|L|, |R|)/K] with blocking
      factor [K] and memory budget [M] in blocks (paper: K = 10, M = 100).

    A fourth combinator, {!min_of}, models the availability of multiple
    join algorithms (Section 6.5): [kappa = min(kappa_a, kappa_b)]. *)

type kind =
  | Paper_naive  (** [kappa' = out], [kappa'' = 0]. *)
  | Paper_sort_merge  (** [kappa' = 0], [kappa'' = laux + raux]. *)
  | Paper_dnl of { k : float; inner_coeff : float }
      (** [kappa' = 2 out / k],
          [kappa'' = lcard * rcard * inner_coeff + min(lcard, rcard) / k],
          with [inner_coeff = 1 / (k^2 (m - 1))] precomputed — the exact
          floats the record's closures capture, so a kernel inlining
          these expressions is bit-identical to calling the closures. *)
  | Opaque
      (** Anything else ({!min_of}, user models): kernels must go through
          the [k_prime]/[k_dprime] closures. *)
(** Which known shape the model's [kappa'] and [kappa''] have.  The split
    loop dispatches on this once per subset to run a monomorphized loop
    body with the arithmetic inlined (no closure call, no per-iteration
    float boxing); [Opaque] falls back to the closure-calling loop. *)

type t = {
  name : string;  (** e.g. ["k0"], ["ksm"], ["kdnl"]. *)
  aux : float -> float;
      (** [aux card] is a per-subset quantity memoized in the DP table and
          fed back to [kappa''] for both operands; models that need no
          memo use the identity. *)
  k_prime : float -> float;
      (** [k_prime out_card]: the split-independent component. *)
  k_dprime : out:float -> lcard:float -> rcard:float -> laux:float -> raux:float -> float;
      (** The split-dependent component; receives the output cardinality,
          both operand cardinalities, and both memoized aux values. *)
  dprime_is_zero : bool;
      (** True when [kappa''] is identically zero (the naive model): the
          optimizer may then skip its evaluation tier entirely. *)
  kind : kind;
      (** The specialization tag; must agree with the closures (the
          kernels trust it for bit-identical monomorphized arithmetic). *)
}

val naive : t
(** [kappa_0]: cost = output cardinality (Section 3.1). *)

val sort_merge : t
(** [kappa_sm] (appendix).  Operand cardinalities below 1 (possible for
    intermediate results under strong selectivities) contribute linearly,
    avoiding negative logarithms. *)

val disk_nested_loops : ?blocking_factor:float -> ?memory_blocks:float -> unit -> t
(** [kappa_dnl] with the given [K] (default 10) and [M] (default 100).
    Raises [Invalid_argument] if [K <= 0] or [M <= 1]. *)

val kdnl : t
(** {!disk_nested_loops} at the paper's parameters. *)

val min_of : t -> t -> t
(** [min_of a b] costs each join at [min(kappa_a, kappa_b)] — the
    multiple-join-algorithms model of Section 6.5.  The combination is not
    separable, so its [k_prime] is 0, everything moves into [kappa''],
    and each component is recomputed from the operand cardinalities (its
    [aux] is the identity, forgoing the memo). *)

val kappa : t -> out:float -> lcard:float -> rcard:float -> float
(** Total cost of one join under the model: [kappa' + kappa''], computing
    aux values directly (no memo).  This is the reference used by plan
    re-costing and the brute-force baseline. *)

val all_paper : t list
(** The three models of the evaluation: naive, sort-merge, disk nested
    loops. *)

val of_string : string -> (t, string) result
(** Parses ["k0"], ["ksm"], ["kdnl"], ["min:ksm,kdnl"] etc. *)

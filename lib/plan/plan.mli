(** Join plans: binary expression trees over base relations.

    The optimizer's output.  A plan is {e bushy} in general — both
    operands of a join may themselves be joins; the {e left-deep} plans
    many optimizers restrict themselves to (and which we implement as a
    baseline) are the special case where every right operand is a leaf.

    Costing here is the {e reference} implementation: it recomputes
    intermediate cardinalities from the join graph's induced subgraphs
    (Section 5.1) rather than through the optimizer's recurrences, so it
    doubles as an independent check of the DP table. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model

type t = Leaf of int | Join of t * t

(** {1 Structure} *)

val relations : t -> Relset.t
(** Set of base relations referenced.  Raises [Invalid_argument] if a
    relation occurs twice (such a tree is not a join plan). *)

val leaf_count : t -> int
val join_count : t -> int
val depth : t -> int
(** Leaves have depth 0. *)

val is_left_deep : t -> bool
(** True when every [Join]'s right operand is a [Leaf] (a "left-deep
    vine").  A single [Leaf] is trivially left-deep. *)

val validate : n:int -> t -> (unit, string) result
(** Checks that every leaf index is within [\[0, n)] and no relation is
    referenced twice.  (Plans over a strict subset of the catalog are
    permitted: subplans are plans.) *)

val equal : t -> t -> bool

val map_leaves : (int -> int) -> t -> t
(** Re-index every leaf; used to lift plans over an induced subproblem
    back to parent-catalog indexes. *)

val normalize : t -> t
(** Canonical form under join commutativity: within every join, the
    operand containing the smallest relation index goes left.  Two plans
    are commutatively equivalent iff their normalizations are [equal]. *)

val enumerate : Relset.t -> t list
(** All bushy plans over exactly the given relation set (both operand
    orders counted once: plans are produced in {!normalize}d form).
    Exponential; intended for oracle tests at small sizes. *)

val count_plans : int -> float
(** Number of distinct unordered bushy plans over [n] relations:
    [n! * Catalan(n-1) / 2^(n-1)] — the value {!enumerate} produces. *)

(** {1 Semantics} *)

val cardinality : Catalog.t -> Join_graph.t -> t -> float
(** Estimated output cardinality of the plan's result: product of member
    cardinalities and of the selectivities of all predicates wholly
    contained in the plan's relation set. *)

val cost : Cost_model.t -> Catalog.t -> Join_graph.t -> t -> float
(** Recursive cost per Equations (1)-(2): leaves are free; each join adds
    [kappa(out, lhs, rhs)]. *)

val cartesian_join_count : Join_graph.t -> t -> int
(** Number of joins in the plan whose operands are connected by no
    predicate — the plan's Cartesian products. *)

(** {1 Join-algorithm annotation (Section 6.5)} *)

type annotated =
  | Ann_leaf of { rel : int; card : float }
  | Ann_join of {
      lhs : annotated;
      rhs : annotated;
      card : float;  (** Output cardinality of this join. *)
      algorithm : string;  (** Name of the winning cost model. *)
      join_cost : float;  (** Cost of this join alone. *)
      subtree_cost : float;  (** Cumulative cost of the subtree. *)
      cartesian : bool;  (** No predicate spans the operands. *)
    }

val annotate :
  algorithms:(string * Cost_model.t) list -> Catalog.t -> Join_graph.t -> t -> annotated
(** Single post-optimization traversal attaching to each join the
    algorithm whose model costs it least ("there is no need to keep track
    of which algorithm yields the minimum" during search).  Raises
    [Invalid_argument] on an empty algorithm list. *)

val annotated_cost : annotated -> float
(** Root subtree cost ([0] for a bare leaf). *)

(** {1 Printing and parsing} *)

val to_compact_string : ?names:string array -> t -> string
(** One-line form, e.g. [((A x D) x (B x C))]. *)

val of_compact_string : names:string array -> string -> (t, string) result
(** Parses the {!to_compact_string} form (round-trip). *)

val pp : ?names:string array -> unit -> Format.formatter -> t -> unit
val pp_annotated : ?names:string array -> unit -> Format.formatter -> annotated -> unit
(** Multi-line operator-tree rendering with cardinalities and costs. *)

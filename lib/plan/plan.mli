(** Join plans: binary expression trees over base relations.

    The optimizer's output.  A plan is {e bushy} in general — both
    operands of a join may themselves be joins; the {e left-deep} plans
    many optimizers restrict themselves to (and which we implement as a
    baseline) are the special case where every right operand is a leaf.

    Costing here is the {e reference} implementation: it recomputes
    intermediate cardinalities from the join graph's induced subgraphs
    (Section 5.1) rather than through the optimizer's recurrences, so it
    doubles as an independent check of the DP table. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Agm = Blitz_cost.Agm

type t =
  | Leaf of int
  | Join of t * t
  | Multiway of {
      inputs : t list;  (** At least two; the n-ary operands. *)
      cover : (int list * float) list;
          (** Fractional-edge-cover weights from the optimizer's solve:
              predicate-edge member relations (ascending) paired with
              [x_e].  Costing {e provenance}, not structure — see
              {!equal} — and re-derived by re-costing paths. *)
      agm : float;  (** The optimizer-side AGM bound for the node. *)
    }
      (** One n-ary worst-case-optimal join over a cyclic core.  The
          hybrid DP emits it only for subsets whose induced join graph
          is 2-edge-connected (see
          {!Join_graph.two_edge_connected_subset}), so plans over
          acyclic graphs never contain it. *)

val multiway : ?cover:(int list * float) list -> ?agm:float -> t list -> t
(** Smart constructor; raises [Invalid_argument] on fewer than two
    inputs.  [cover] defaults to empty, [agm] to [infinity] (meaning
    "not solved" — re-costing recomputes it anyway). *)

(** {1 Structure} *)

val relations : t -> Relset.t
(** Set of base relations referenced.  Raises [Invalid_argument] if a
    relation occurs twice (such a tree is not a join plan). *)

val leaf_count : t -> int
val join_count : t -> int
val depth : t -> int
(** Leaves have depth 0. *)

val is_left_deep : t -> bool
(** True when every [Join]'s right operand is a [Leaf] (a "left-deep
    vine").  A single [Leaf] is trivially left-deep; any [Multiway]
    node makes the plan non-left-deep. *)

val has_multiway : t -> bool
(** Whether any [Multiway] node occurs — the cache uses this to keep
    n-ary plans away from binary-only callers. *)

val multiway_count : t -> int
(** Number of [Multiway] nodes (the DP's provenance counter checks
    this stays zero on acyclic graphs). *)

val validate : n:int -> t -> (unit, string) result
(** Checks that every leaf index is within [\[0, n)] and no relation is
    referenced twice.  (Plans over a strict subset of the catalog are
    permitted: subplans are plans.) *)

val equal : t -> t -> bool
(** Structural equality.  For [Multiway] nodes only the input list is
    compared: [cover]/[agm] are costing provenance recomputable from
    statistics, and float payloads would make the cache's structural
    hit-verification fragile. *)

val map_leaves : (int -> int) -> t -> t
(** Re-index every leaf; used to lift plans over an induced subproblem
    back to parent-catalog indexes, and by fingerprint canonization /
    rebase.  Multiway cover weights follow: each edge's member list is
    mapped and re-sorted, so rename-invariance extends to n-ary
    nodes. *)

val normalize : t -> t
(** Canonical form under join commutativity: within every join, the
    operand containing the smallest relation index goes left.  Two plans
    are commutatively equivalent iff their normalizations are [equal]. *)

val enumerate : Relset.t -> t list
(** All bushy plans over exactly the given relation set (both operand
    orders counted once: plans are produced in {!normalize}d form).
    Exponential; intended for oracle tests at small sizes. *)

val count_plans : int -> float
(** Number of distinct unordered bushy plans over [n] relations:
    [n! * Catalan(n-1) / 2^(n-1)] — the value {!enumerate} produces. *)

(** {1 Semantics} *)

val cardinality : Catalog.t -> Join_graph.t -> t -> float
(** Estimated output cardinality of the plan's result: product of member
    cardinalities and of the selectivities of all predicates wholly
    contained in the plan's relation set. *)

val cost : Cost_model.t -> Catalog.t -> Join_graph.t -> t -> float
(** Recursive cost per Equations (1)-(2): leaves are free; each join adds
    [kappa(out, lhs, rhs)].  A [Multiway] node adds
    {!Agm.kappa_multiway} with the AGM bound {e re-solved} against the
    supplied catalog and graph (not the stored [agm]) — so re-costing a
    plan under true statistics, as the regret harness does, charges the
    node its true bound. *)

val cartesian_join_count : Join_graph.t -> t -> int
(** Number of joins in the plan whose operands are connected by no
    predicate — the plan's Cartesian products. *)

(** {1 Join-algorithm annotation (Section 6.5)} *)

type annotated =
  | Ann_leaf of { rel : int; card : float }
  | Ann_join of {
      lhs : annotated;
      rhs : annotated;
      card : float;  (** Output cardinality of this join. *)
      algorithm : string;  (** Name of the winning cost model. *)
      join_cost : float;  (** Cost of this join alone. *)
      subtree_cost : float;  (** Cumulative cost of the subtree. *)
      cartesian : bool;  (** No predicate spans the operands. *)
    }
  | Ann_multiway of {
      inputs : annotated list;
      card : float;
      cover : (int list * float) list;  (** Rendered cover weights. *)
      agm : float;  (** AGM bound under the annotated statistics. *)
      join_cost : float;
      subtree_cost : float;
    }

val annotate :
  algorithms:(string * Cost_model.t) list -> Catalog.t -> Join_graph.t -> t -> annotated
(** Single post-optimization traversal attaching to each join the
    algorithm whose model costs it least ("there is no need to keep track
    of which algorithm yields the minimum" during search).  Raises
    [Invalid_argument] on an empty algorithm list. *)

val annotated_cost : annotated -> float
(** Root subtree cost ([0] for a bare leaf). *)

(** {1 Printing and parsing} *)

val to_compact_string : ?names:string array -> t -> string
(** One-line form, e.g. [((A x D) x (B x C))]; multiway nodes render
    in brackets, [[A x B x C]]. *)

val of_compact_string : names:string array -> string -> (t, string) result
(** Parses the {!to_compact_string} form (structural round-trip; a
    parsed multiway node carries an empty cover and [agm = infinity],
    which {!equal} ignores). *)

val pp : ?names:string array -> unit -> Format.formatter -> t -> unit
val pp_annotated : ?names:string array -> unit -> Format.formatter -> annotated -> unit
(** Multi-line operator-tree rendering with cardinalities and costs. *)

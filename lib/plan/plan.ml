module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Agm = Blitz_cost.Agm

type t =
  | Leaf of int
  | Join of t * t
  | Multiway of { inputs : t list; cover : (int list * float) list; agm : float }

let multiway ?(cover = []) ?(agm = Float.infinity) inputs =
  if List.length inputs < 2 then invalid_arg "Plan.multiway: need at least two inputs";
  Multiway { inputs; cover; agm }

let relations plan =
  let rec go acc = function
    | Leaf i ->
      let s = Relset.singleton i in
      if not (Relset.disjoint acc s) then
        invalid_arg (Printf.sprintf "Plan.relations: relation %d appears twice" i);
      Relset.union acc s
    | Join (l, r) -> go (go acc l) r
    | Multiway { inputs; _ } -> List.fold_left go acc inputs
  in
  go Relset.empty plan

let rec leaf_count = function
  | Leaf _ -> 1
  | Join (l, r) -> leaf_count l + leaf_count r
  | Multiway { inputs; _ } -> List.fold_left (fun acc p -> acc + leaf_count p) 0 inputs

let rec join_count = function
  | Leaf _ -> 0
  | Join (l, r) -> 1 + join_count l + join_count r
  | Multiway { inputs; _ } -> List.fold_left (fun acc p -> acc + join_count p) 1 inputs

let rec depth = function
  | Leaf _ -> 0
  | Join (l, r) -> 1 + max (depth l) (depth r)
  | Multiway { inputs; _ } -> 1 + List.fold_left (fun acc p -> max acc (depth p)) 0 inputs

let rec is_left_deep = function
  | Leaf _ -> true
  | Join (l, Leaf _) -> is_left_deep l
  | Join (_, (Join _ | Multiway _)) -> false
  | Multiway _ -> false

let rec has_multiway = function
  | Leaf _ -> false
  | Join (l, r) -> has_multiway l || has_multiway r
  | Multiway _ -> true

let rec multiway_count = function
  | Leaf _ -> 0
  | Join (l, r) -> multiway_count l + multiway_count r
  | Multiway { inputs; _ } -> List.fold_left (fun acc p -> acc + multiway_count p) 1 inputs

let validate ~n plan =
  let seen = ref Relset.empty in
  let rec go = function
    | Leaf i ->
      if i < 0 || i >= n then Error (Printf.sprintf "leaf index %d outside [0, %d)" i n)
      else if Relset.mem !seen i then Error (Printf.sprintf "relation %d appears twice" i)
      else begin
        seen := Relset.add !seen i;
        Ok ()
      end
    | Join (l, r) -> ( match go l with Ok () -> go r | Error _ as e -> e)
    | Multiway { inputs; _ } ->
      if List.length inputs < 2 then Error "multiway node with fewer than two inputs"
      else
        List.fold_left
          (fun acc input -> match acc with Ok () -> go input | Error _ as e -> e)
          (Ok ()) inputs
  in
  go plan

(* Structural equality: the multiway [cover]/[agm] payload is costing
   provenance (recomputable from any catalog + graph), not plan
   structure, so it does not participate — float payloads in the
   cache's structural verification would make hits fragile for no
   semantic gain. *)
let rec equal a b =
  match (a, b) with
  | Leaf i, Leaf j -> i = j
  | Join (al, ar), Join (bl, br) -> equal al bl && equal ar br
  | Multiway { inputs = ia; _ }, Multiway { inputs = ib; _ } ->
    List.length ia = List.length ib && List.for_all2 equal ia ib
  | (Leaf _ | Join _ | Multiway _), _ -> false

let rec map_leaves f = function
  | Leaf i -> Leaf (f i)
  | Join (l, r) -> Join (map_leaves f l, map_leaves f r)
  | Multiway { inputs; cover; agm } ->
    Multiway
      {
        inputs = List.map (map_leaves f) inputs;
        cover = List.map (fun (members, w) -> (List.sort compare (List.map f members), w)) cover;
        agm;
      }

let rec normalize = function
  | Leaf _ as p -> p
  | Join (l, r) ->
    let l = normalize l and r = normalize r in
    if Relset.min_elt (relations l) <= Relset.min_elt (relations r) then Join (l, r)
    else Join (r, l)
  | Multiway { inputs; cover; agm } ->
    let inputs =
      List.map normalize inputs
      |> List.sort (fun a b -> compare (Relset.min_elt (relations a)) (Relset.min_elt (relations b)))
    in
    Multiway { inputs; cover = List.sort compare cover; agm }

let enumerate s =
  let rec go s =
    if Relset.is_empty s then invalid_arg "Plan.enumerate: empty set"
    else if Relset.is_singleton s then [ Leaf (Relset.min_elt s) ]
    else begin
      (* Pin the minimum relation to the left operand so that each
         unordered split is produced exactly once, already normalized. *)
      let low = Relset.lowest_bit s in
      let rest = Relset.diff s low in
      let acc = ref [] in
      let split extra_lhs =
        let lhs = Relset.union low extra_lhs in
        let rhs = Relset.diff s lhs in
        if not (Relset.is_empty rhs) then
          List.iter
            (fun pl -> List.iter (fun pr -> acc := Join (pl, pr) :: !acc) (go rhs))
            (go lhs)
      in
      split Relset.empty;
      Relset.iter_proper_subsets split rest;
      !acc
    end
  in
  go s

let count_plans n =
  if n < 1 then invalid_arg "Plan.count_plans: n must be positive";
  (* (2n-3)!! unordered binary trees with n labeled leaves. *)
  let acc = ref 1.0 in
  let odd = ref 3 in
  for _ = 3 to n do
    acc := !acc *. float_of_int !odd;
    odd := !odd + 2
  done;
  !acc

let cardinality catalog graph plan = Join_graph.join_cardinality catalog graph (relations plan)

let cost model catalog graph plan =
  let rec go = function
    | Leaf i -> (0.0, Catalog.card catalog i, Relset.singleton i)
    | Join (l, r) ->
      let lcost, lcard, lset = go l in
      let rcost, rcard, rset = go r in
      let set = Relset.union lset rset in
      let out = lcard *. rcard *. Join_graph.pi_span graph lset rset in
      (lcost +. rcost +. Cost_model.kappa model ~out ~lcard ~rcard, out, set)
    | Multiway { inputs; _ } ->
      let in_cost, cards, out, set =
        List.fold_left
          (fun (c, cards, card, set) input ->
            let ci, cardi, seti = go input in
            (c +. ci, cardi :: cards, card *. cardi *. Join_graph.pi_span graph set seti,
             Relset.union set seti))
          (0.0, [], 1.0, Relset.empty) inputs
      in
      (* Re-costing always re-solves the cover against the statistics it
         was handed — the stored [agm] reflects the optimizer's view, and
         regret analysis must charge the node its true AGM bound. *)
      let agm = (Agm.of_join_graph catalog graph set).Agm.bound in
      (in_cost +. Agm.kappa_multiway ~inputs:cards ~out ~agm, out, set)
  in
  let total, _, _ = go plan in
  total

let cartesian_join_count graph plan =
  let rec go = function
    | Leaf i -> (0, Relset.singleton i)
    | Join (l, r) ->
      let ln, lset = go l in
      let rn, rset = go r in
      let here = if Join_graph.crosses graph lset rset then 0 else 1 in
      (ln + rn + here, Relset.union lset rset)
    | Multiway { inputs; _ } ->
      let count, set =
        List.fold_left
          (fun (acc, set) input ->
            let ni, seti = go input in
            (acc + ni, Relset.union set seti))
          (0, Relset.empty) inputs
      in
      (* A multiway node is one n-ary join; it is Cartesian only when
         its whole relation set fails to induce a connected subgraph. *)
      ((if Join_graph.is_connected_subset graph set then count else count + 1), set)
  in
  fst (go plan)

type annotated =
  | Ann_leaf of { rel : int; card : float }
  | Ann_join of {
      lhs : annotated;
      rhs : annotated;
      card : float;
      algorithm : string;
      join_cost : float;
      subtree_cost : float;
      cartesian : bool;
    }
  | Ann_multiway of {
      inputs : annotated list;
      card : float;
      cover : (int list * float) list;
      agm : float;
      join_cost : float;
      subtree_cost : float;
    }

let annotate ~algorithms catalog graph plan =
  if algorithms = [] then invalid_arg "Plan.annotate: empty algorithm list";
  let rec go = function
    | Leaf i ->
      let card = Catalog.card catalog i in
      (Ann_leaf { rel = i; card }, card, Relset.singleton i, 0.0)
    | Join (l, r) ->
      let la, lcard, lset, lcost = go l in
      let ra, rcard, rset, rcost = go r in
      let out = lcard *. rcard *. Join_graph.pi_span graph lset rset in
      let best_name, best_cost =
        List.fold_left
          (fun (bn, bc) (name, model) ->
            let c = Cost_model.kappa model ~out ~lcard ~rcard in
            if c < bc then (name, c) else (bn, bc))
          ("", Float.infinity) algorithms
      in
      let subtree_cost = lcost +. rcost +. best_cost in
      let node =
        Ann_join
          {
            lhs = la;
            rhs = ra;
            card = out;
            algorithm = best_name;
            join_cost = best_cost;
            subtree_cost;
            cartesian = not (Join_graph.crosses graph lset rset);
          }
      in
      (node, out, Relset.union lset rset, subtree_cost)
    | Multiway { inputs; cover = stored_cover; _ } ->
      let anns, cards, in_cost, out, set =
        List.fold_left
          (fun (anns, cards, c, card, set) input ->
            let a, cardi, seti, ci = go input in
            (a :: anns, cardi :: cards, c +. ci,
             card *. cardi *. Join_graph.pi_span graph set seti, Relset.union set seti))
          ([], [], 0.0, 1.0, Relset.empty) inputs
      in
      (* The rendered cover is re-solved against the statistics being
         annotated (same rule as {!cost}); the stored one is kept only
         as a fallback for degenerate solves. *)
      let solved = Agm.of_join_graph catalog graph set in
      let cover = if solved.Agm.weights = [] then stored_cover else solved.Agm.weights in
      let agm = solved.Agm.bound in
      let join_cost = Agm.kappa_multiway ~inputs:cards ~out ~agm in
      let subtree_cost = in_cost +. join_cost in
      let node =
        Ann_multiway
          { inputs = List.rev anns; card = out; cover; agm; join_cost; subtree_cost }
      in
      (node, out, set, subtree_cost)
  in
  let node, _, _, _ = go plan in
  node

let annotated_cost = function
  | Ann_leaf _ -> 0.0
  | Ann_join j -> j.subtree_cost
  | Ann_multiway m -> m.subtree_cost

let leaf_name names i =
  if i < Array.length names then names.(i) else string_of_int i

let to_compact_string ?names plan =
  let buf = Buffer.create 64 in
  let name i = match names with Some a -> leaf_name a i | None -> Printf.sprintf "R%d" i in
  let rec go = function
    | Leaf i -> Buffer.add_string buf (name i)
    | Join (l, r) ->
      Buffer.add_char buf '(';
      go l;
      Buffer.add_string buf " x ";
      go r;
      Buffer.add_char buf ')'
    | Multiway { inputs; _ } ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i input ->
          if i > 0 then Buffer.add_string buf " x ";
          go input)
        inputs;
      Buffer.add_char buf ']'
  in
  go plan;
  Buffer.contents buf

let of_compact_string ~names text =
  let index_of nm =
    let found = ref None in
    Array.iteri (fun i candidate -> if candidate = nm && !found = None then found := Some i) names;
    !found
  in
  let len = String.length text in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "%s at offset %d in %S" msg !pos text) in
  let skip_spaces () =
    while !pos < len && text.[!pos] = ' ' do
      incr pos
    done
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let rec parse_expr () =
    skip_spaces ();
    if !pos >= len then error "unexpected end of input"
    else if text.[!pos] = '[' then begin
      (* Multiway: [A x B x C].  The textual form carries structure
         only; cover weights and the AGM bound are costing provenance,
         re-derivable from any catalog + graph. *)
      incr pos;
      let rec parse_inputs acc =
        match parse_expr () with
        | Error _ as e -> e
        | Ok input -> (
          skip_spaces ();
          if !pos < len && text.[!pos] = 'x' then begin
            incr pos;
            parse_inputs (input :: acc)
          end
          else if !pos < len && text.[!pos] = ']' then begin
            incr pos;
            let inputs = List.rev (input :: acc) in
            if List.length inputs < 2 then error "multiway node needs at least two inputs"
            else Ok (Multiway { inputs; cover = []; agm = Float.infinity })
          end
          else error "expected 'x' or ']'")
      in
      parse_inputs []
    end
    else if text.[!pos] = '(' then begin
      incr pos;
      match parse_expr () with
      | Error _ as e -> e
      | Ok lhs -> (
        skip_spaces ();
        if !pos >= len || text.[!pos] <> 'x' then error "expected 'x'"
        else begin
          incr pos;
          match parse_expr () with
          | Error _ as e -> e
          | Ok rhs ->
            skip_spaces ();
            if !pos >= len || text.[!pos] <> ')' then error "expected ')'"
            else begin
              incr pos;
              Ok (Join (lhs, rhs))
            end
        end)
    end
    else begin
      let start = !pos in
      while !pos < len && is_name_char text.[!pos] do
        incr pos
      done;
      if !pos = start then error "expected a relation name"
      else
        let nm = String.sub text start (!pos - start) in
        match index_of nm with
        | Some i -> Ok (Leaf i)
        | None -> error (Printf.sprintf "unknown relation %S" nm)
    end
  in
  match parse_expr () with
  | Error _ as e -> e
  | Ok plan ->
    skip_spaces ();
    if !pos <> len then error "trailing input" else Ok plan

let pp ?names () ppf plan =
  Format.pp_print_string ppf (to_compact_string ?names plan)

let pp_annotated ?names () ppf annotated =
  let name i = match names with Some a -> leaf_name a i | None -> Printf.sprintf "R%d" i in
  let pe = Blitz_util.Float_more.pp_engineering in
  let rec go indent node =
    Format.pp_print_string ppf indent;
    match node with
    | Ann_leaf { rel; card } -> Format.fprintf ppf "scan %s  card=%a@," (name rel) pe card
    | Ann_join { lhs; rhs; card; algorithm; join_cost; subtree_cost; cartesian } ->
      Format.fprintf ppf "join[%s]%s  card=%a  join_cost=%a  subtree_cost=%a@," algorithm
        (if cartesian then " (cartesian)" else "")
        pe card pe join_cost pe subtree_cost;
      go (indent ^ "  ") lhs;
      go (indent ^ "  ") rhs
    | Ann_multiway { inputs; card; cover; agm; join_cost; subtree_cost } ->
      Format.fprintf ppf "multiway[hash]  card=%a  agm=%a  join_cost=%a  subtree_cost=%a@," pe
        card pe agm pe join_cost pe subtree_cost;
      if cover <> [] then begin
        Format.fprintf ppf "%s  cover:" indent;
        List.iter
          (fun (members, w) ->
            Format.fprintf ppf " {%s}=%g"
              (String.concat "," (List.map name members))
              w)
          cover;
        Format.fprintf ppf "@,"
      end;
      List.iter (go (indent ^ "  ")) inputs
  in
  Format.fprintf ppf "@[<v>";
  go "" annotated;
  Format.fprintf ppf "@]"

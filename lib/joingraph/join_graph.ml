module Relset = Blitz_bitset.Relset

type t = {
  n : int;
  sel : float array; (* n*n, symmetric; 1.0 where no edge *)
  edge : bool array; (* n*n, symmetric *)
  neighbors : int array; (* per-relation adjacency bitmask *)
}

let n t = t.n

let check_pair t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg (Printf.sprintf "Join_graph: relation index out of range (%d, %d)" i j);
  if i = j then invalid_arg "Join_graph: self-edge query"

let idx t i j = (i * t.n) + j

type error =
  | Too_few_relations of int
  | Too_many_relations of int
  | Endpoint_out_of_range of { i : int; j : int; n : int }
  | Self_edge of int
  | Duplicate_edge of int * int
  | Invalid_selectivity of { i : int; j : int; sel : float }
  | Selectivity_above_one of { i : int; j : int; sel : float }

let error_message =
  let fmt x = Blitz_util.Err.format ~scope:"Join_graph.of_edges" x in
  function
  | Too_few_relations _ -> "Join_graph: need at least one relation"
  | Too_many_relations _ -> "Join_graph: too many relations for the bitset width"
  | Endpoint_out_of_range { i; j; _ } ->
    Printf.sprintf "Join_graph: relation index out of range (%d, %d)" i j
  | Self_edge _ -> "Join_graph: self-edge query"
  | Duplicate_edge (i, j) -> fmt "duplicate edge (%d, %d)" i j
  | Invalid_selectivity { i; j; sel } -> fmt "invalid selectivity %g on (%d, %d)" sel i j
  | Selectivity_above_one { i; j; sel } -> fmt "selectivity %g outside (0, 1] on (%d, %d)" sel i j

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

let no_predicates_result ~n =
  if n < 1 then Error (Too_few_relations n)
  else if n > Relset.max_width then Error (Too_many_relations n)
  else
    Ok
      {
        n;
        sel = Array.make (n * n) 1.0;
        edge = Array.make (n * n) false;
        neighbors = Array.make n 0;
      }

let no_predicates ~n =
  Blitz_util.Err.get_with ~to_message:error_message (no_predicates_result ~n)

(* Selectivities above 1 are physically meaningless (a predicate cannot
   enlarge a join's result) and, silently propagated, poison the fan
   recurrence.  The caller must pick a policy: [`Reject] (the default)
   reports them, [`Clamp] pins them to 1.0 — appropriate for estimated
   statistics whose formulas can overshoot. *)
let of_edges_result ?(above_one = `Reject) ~n edges =
  match no_predicates_result ~n with
  | Error _ as e -> e
  | Ok t ->
    let rec add = function
      | [] -> Ok t
      | (i, j, s) :: rest ->
        if i < 0 || i >= n || j < 0 || j >= n then Error (Endpoint_out_of_range { i; j; n })
        else if i = j then Error (Self_edge i)
        else if t.edge.(idx t i j) then Error (Duplicate_edge (i, j))
        else if not (Float.is_finite s) || s <= 0.0 then
          Error (Invalid_selectivity { i; j; sel = s })
        else if s > 1.0 && above_one = `Reject then
          Error (Selectivity_above_one { i; j; sel = s })
        else begin
          let s = Float.min s 1.0 in
          t.sel.(idx t i j) <- s;
          t.sel.(idx t j i) <- s;
          t.edge.(idx t i j) <- true;
          t.edge.(idx t j i) <- true;
          t.neighbors.(i) <- Relset.add t.neighbors.(i) j;
          t.neighbors.(j) <- Relset.add t.neighbors.(j) i;
          add rest
        end
    in
    add edges

let of_edges ?above_one ~n edges =
  Blitz_util.Err.get_with ~to_message:error_message (of_edges_result ?above_one ~n edges)

let selectivity t i j =
  check_pair t i j;
  t.sel.(idx t i j)

let has_edge t i j =
  check_pair t i j;
  t.edge.(idx t i j)

let neighbors t i =
  if i < 0 || i >= t.n then invalid_arg "Join_graph.neighbors: index out of range";
  t.neighbors.(i)

let degree t i = Relset.cardinal (neighbors t i)

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    for j = t.n - 1 downto i + 1 do
      if t.edge.(idx t i j) then acc := (i, j, t.sel.(idx t i j)) :: !acc
    done
  done;
  !acc

let edge_count t = List.length (edges t)

let is_connected_subset t s =
  if Relset.is_empty s || Relset.is_singleton s then true
  else begin
    (* BFS over the induced subgraph using adjacency bitmasks. *)
    let seed = Relset.lowest_bit s in
    let reached = ref seed and frontier = ref seed in
    while not (Relset.is_empty !frontier) do
      let next = ref Relset.empty in
      Relset.iter
        (fun i -> next := Relset.union !next (Relset.inter t.neighbors.(i) s))
        !frontier;
      frontier := Relset.diff !next !reached;
      reached := Relset.union !reached !frontier
    done;
    Relset.equal !reached s
  end

let is_connected t = is_connected_subset t (Relset.full t.n)

(* A subset is a cyclic core candidate when its induced subgraph is
   2-edge-connected: at least three relations, every member with at
   least two induced neighbors, connected, and bridgeless (DFS
   low-link).  Acyclic graphs — chains, stars, trees — have no such
   subset, so a multiway alternative gated on this predicate can never
   fire on them. *)
let two_edge_connected_subset t s =
  Relset.cardinal s >= 3
  && Relset.for_all (fun i -> Relset.cardinal (Relset.inter t.neighbors.(i) s) >= 2) s
  && is_connected_subset t s
  &&
  let disc = Array.make t.n (-1) in
  let low = Array.make t.n 0 in
  let timer = ref 0 in
  let bridge = ref false in
  (* The graph is simple (duplicate edges rejected at construction), so
     skipping the single DFS parent is sound. *)
  let rec dfs u parent =
    disc.(u) <- !timer;
    low.(u) <- !timer;
    incr timer;
    Relset.iter
      (fun v ->
        if v <> parent then
          if disc.(v) < 0 then begin
            dfs v u;
            if low.(v) < low.(u) then low.(u) <- low.(v);
            if low.(v) > disc.(u) then bridge := true
          end
          else if disc.(v) < low.(u) then low.(u) <- disc.(v))
      (Relset.inter t.neighbors.(u) s)
  in
  dfs (Relset.min_elt s) (-1);
  not !bridge

let crosses t u v =
  Relset.exists (fun i -> not (Relset.disjoint t.neighbors.(i) v)) u

let pi_span t u v =
  if not (Relset.disjoint u v) then invalid_arg "Join_graph.pi_span: sets intersect";
  Relset.fold
    (fun acc i ->
      Relset.fold (fun acc j -> if t.edge.(idx t i j) then acc *. t.sel.(idx t i j) else acc) acc v)
    1.0 u

let pi_fan t s =
  if Relset.is_empty s then invalid_arg "Join_graph.pi_fan: empty set";
  let u = Relset.lowest_bit s in
  pi_span t u (Relset.diff s u)

let pi_induced t s =
  Relset.fold
    (fun acc i ->
      Relset.fold
        (fun acc j -> if j > i && t.edge.(idx t i j) then acc *. t.sel.(idx t i j) else acc)
        acc s)
    1.0 s

let join_cardinality catalog t s =
  let cards = Relset.fold (fun acc i -> acc *. Blitz_catalog.Catalog.card catalog i) 1.0 s in
  cards *. pi_induced t s

let pp ppf t =
  Format.fprintf ppf "@[<v>join graph on %d relations:" t.n;
  List.iter
    (fun (i, j, s) -> Format.fprintf ppf "@,  R%d -- R%d  (selectivity %.6g)" i j s)
    (edges t);
  Format.fprintf ppf "@]"

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog

type hyperedge = { members : Relset.t; selectivity : float }

type t = { n : int; edges : hyperedge list }

let n t = t.n
let edges t = t.edges

let of_edges ~n edges =
  if n < 1 then invalid_arg "Hypergraph.of_edges: need at least one relation";
  if n > Relset.max_width then invalid_arg "Hypergraph.of_edges: too many relations";
  let seen = Hashtbl.create 16 in
  let validated =
    List.map
      (fun (members, selectivity) ->
        if Relset.cardinal members < 2 then
          invalid_arg "Hypergraph.of_edges: a hyperedge needs at least two relations";
        if not (Relset.subset members (Relset.full n)) then
          invalid_arg "Hypergraph.of_edges: hyperedge member out of range";
        if (not (Float.is_finite selectivity)) || selectivity <= 0.0 || selectivity > 1.0 then
          invalid_arg
            (Printf.sprintf "Hypergraph.of_edges: selectivity %g outside (0, 1]" selectivity);
        if Hashtbl.mem seen members then
          invalid_arg "Hypergraph.of_edges: duplicate hyperedge member set";
        Hashtbl.add seen members ();
        { members; selectivity })
      edges
  in
  { n; edges = validated }

let of_join_graph graph =
  of_edges ~n:(Join_graph.n graph)
    (List.map
       (fun (i, j, sel) -> (Relset.of_list [ i; j ], sel))
       (Join_graph.edges graph))

let join_cardinality catalog t s =
  if Catalog.n catalog <> t.n then invalid_arg "Hypergraph.join_cardinality: size mismatch";
  let cards = Relset.fold (fun acc i -> acc *. Catalog.card catalog i) 1.0 s in
  List.fold_left
    (fun acc e -> if Relset.subset e.members s then acc *. e.selectivity else acc)
    cards t.edges

let pi_span t u v =
  if not (Relset.disjoint u v) then invalid_arg "Hypergraph.pi_span: sets intersect";
  let union = Relset.union u v in
  List.fold_left
    (fun acc e ->
      if
        Relset.subset e.members union
        && (not (Relset.subset e.members u))
        && not (Relset.subset e.members v)
      then acc *. e.selectivity
      else acc)
    1.0 t.edges

let crosses t u v =
  let union = Relset.union u v in
  List.exists
    (fun e ->
      Relset.subset e.members union
      && (not (Relset.subset e.members u))
      && not (Relset.subset e.members v))
    t.edges

(* Flat arrays for the inner loops that index hyperedges by small
   integer position: the optimizer kernels (blitzsplit_hyper's
   completed-edge bitmask, the AGM fractional-cover solver) both need
   exactly [members]/[sel] as parallel arrays, so the packing lives
   here instead of being re-derived privately at each call site.
   Defined last so its [members] field does not shadow
   [hyperedge.members] above. *)
type packed = { members : Relset.t array; sel : float array }

let pack t =
  let edges = Array.of_list t.edges in
  {
    members = Array.map (fun (e : hyperedge) -> e.members) edges;
    sel = Array.map (fun (e : hyperedge) -> e.selectivity) edges;
  }

let packed_edge_count p = Array.length p.members

let induced p s =
  let acc = ref [] in
  for e = Array.length p.members - 1 downto 0 do
    if Relset.subset p.members.(e) s then acc := e :: !acc
  done;
  !acc

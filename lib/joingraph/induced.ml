module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog

type t = { catalog : Catalog.t; graph : Join_graph.t; to_parent : int array }

let project catalog graph s =
  if Relset.is_empty s then invalid_arg "Induced.project: empty relation set";
  let n_parent = Catalog.n catalog in
  if Relset.max_elt s >= n_parent then invalid_arg "Induced.project: set exceeds catalog";
  if Join_graph.n graph <> n_parent then invalid_arg "Induced.project: graph/catalog size mismatch";
  let to_parent = Array.of_list (Relset.to_list s) in
  let k = Array.length to_parent in
  let dense_of = Hashtbl.create (2 * k) in
  Array.iteri (fun dense parent -> Hashtbl.add dense_of parent dense) to_parent;
  let sub_catalog =
    Catalog.of_list
      (Array.to_list
         (Array.map (fun parent -> (Catalog.name catalog parent, Catalog.card catalog parent)) to_parent))
  in
  let sub_edges =
    List.filter_map
      (fun (i, j, sel) ->
        match (Hashtbl.find_opt dense_of i, Hashtbl.find_opt dense_of j) with
        | Some di, Some dj -> Some (di, dj, sel)
        | _, None | None, _ -> None)
      (Join_graph.edges graph)
  in
  { catalog = sub_catalog; graph = Join_graph.of_edges ~n:k sub_edges; to_parent }

let lift_set t s = Relset.fold (fun acc i -> Relset.add acc t.to_parent.(i)) Relset.empty s

type t = Chain | Cycle_plus of int | Star | Clique | Grid of int * int

let name = function
  | Chain -> "chain"
  | Cycle_plus k -> Printf.sprintf "cycle+%d" k
  | Star -> "star"
  | Clique -> "clique"
  | Grid (r, c) -> Printf.sprintf "grid:%dx%d" r c

let of_string s =
  let fail () = Error (Printf.sprintf "unknown topology %S (expected chain|cycle+K|star|clique|grid:RxC)" s) in
  match s with
  | "chain" -> Ok Chain
  | "star" -> Ok Star
  | "clique" -> Ok Clique
  | _ ->
    if String.length s > 6 && String.sub s 0 6 = "cycle+" then
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some k when k >= 0 -> Ok (Cycle_plus k)
      | Some _ | None -> fail ()
    else if String.length s > 5 && String.sub s 0 5 = "grid:" then
      match String.split_on_char 'x' (String.sub s 5 (String.length s - 5)) with
      | [ r; c ] -> (
        match (int_of_string_opt r, int_of_string_opt c) with
        | Some r, Some c when r > 0 && c > 0 -> Ok (Grid (r, c))
        | _ -> fail ())
      | _ -> fail ()
    else fail ()

let all_paper = [ Chain; Cycle_plus 3; Star; Clique ]

let chain_order n =
  if n < 1 then invalid_arg "Topology.chain_order: n must be positive";
  let half = (n + 1) / 2 in
  Array.init n (fun pos -> if pos land 1 = 0 then pos / 2 else half + (pos / 2))

let chain_edges n =
  let order = chain_order n in
  List.init (n - 1) (fun pos -> (order.(pos), order.(pos + 1)))

let edge_list topo ~n =
  if n < 2 then invalid_arg "Topology.edge_list: need at least two relations";
  match topo with
  | Chain -> chain_edges n
  | Cycle_plus k ->
    if k < 0 then invalid_arg "Topology.edge_list: negative cross-edge count";
    (* The closing edge joins the chain's two endpoints; cross-edge i
       joins chain positions i and n-1-i.  Requiring n >= 2k+3 keeps the
       cross-edges distinct from each other and from the cycle. *)
    if n < (2 * k) + 3 then
      invalid_arg
        (Printf.sprintf "Topology.edge_list: cycle+%d needs at least %d relations" k ((2 * k) + 3));
    let order = chain_order n in
    let cross = List.init k (fun i -> (order.(i + 1), order.(n - 2 - i))) in
    ((order.(0), order.(n - 1)) :: cross) @ chain_edges n
  | Star -> List.init (n - 1) (fun i -> (i, n - 1))
  | Clique ->
    List.concat (List.init n (fun i -> List.init (n - 1 - i) (fun d -> (i, i + 1 + d))))
  | Grid (r, c) ->
    if r * c <> n then
      invalid_arg (Printf.sprintf "Topology.edge_list: grid %dx%d does not cover %d relations" r c n);
    let at row col = (row * c) + col in
    let horiz =
      List.concat (List.init r (fun row -> List.init (c - 1) (fun col -> (at row col, at row (col + 1)))))
    in
    let vert =
      List.concat (List.init (r - 1) (fun row -> List.init c (fun col -> (at row col, at (row + 1) col))))
    in
    horiz @ vert

let grid ~n =
  if n < 1 then invalid_arg "Topology.grid: n must be positive";
  (* Most-square factorization: the largest divisor at most sqrt n
     becomes the row count.  Deterministic; primes degenerate to 1xn
     (a chain), which the caller can detect via the constructor. *)
  let r = ref 1 in
  let d = ref 1 in
  while !d * !d <= n do
    if n mod !d = 0 then r := !d;
    incr d
  done;
  Grid (!r, n / !r)

let cycle_plus_chords ~n ~k ~seed =
  if n < 3 then invalid_arg "Topology.cycle_plus_chords: need at least three relations";
  if k < 0 then invalid_arg "Topology.cycle_plus_chords: negative chord count";
  let max_chords = (n * (n - 1) / 2) - n in
  if k > max_chords then
    invalid_arg
      (Printf.sprintf "Topology.cycle_plus_chords: %d chords exceed the %d available at n=%d" k
         max_chords n);
  let order = chain_order n in
  let cycle = (order.(0), order.(n - 1)) :: chain_edges n in
  let norm (i, j) = if i < j then (i, j) else (j, i) in
  let seen = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace seen (norm e) ()) cycle;
  let rng = Random.State.make [| seed; n; k |] in
  let chords = ref [] in
  let added = ref 0 in
  while !added < k do
    let i = Random.State.int rng n in
    let j = Random.State.int rng n in
    if i <> j && not (Hashtbl.mem seen (norm (i, j))) then begin
      Hashtbl.replace seen (norm (i, j)) ();
      chords := norm (i, j) :: !chords;
      incr added
    end
  done;
  cycle @ List.rev !chords

let assign_selectivities catalog unweighted ~result_card =
  let module C = Blitz_catalog.Catalog in
  let n = C.n catalog in
  let k = List.length unweighted in
  if k = 0 then Join_graph.no_predicates ~n
  else begin
    if result_card <= 0.0 then invalid_arg "Topology.assign_selectivities: result_card must be positive";
    let deg = Array.make n 0 in
    List.iter
      (fun (i, j) ->
        deg.(i) <- deg.(i) + 1;
        deg.(j) <- deg.(j) + 1)
      unweighted;
    let endpoint_factor i = C.card catalog i ** (-1.0 /. float_of_int deg.(i)) in
    let mu_factor = result_card ** (1.0 /. float_of_int k) in
    let weighted =
      List.map (fun (i, j) -> (i, j, mu_factor *. endpoint_factor i *. endpoint_factor j)) unweighted
    in
    (* The appendix formula can overshoot 1 for small cardinalities with a
       large target result; clamp rather than reject — the workload stays
       usable and a selectivity of 1 just means "no predicate effect". *)
    Join_graph.of_edges ~above_one:`Clamp ~n weighted
  end

let make topo catalog =
  let module C = Blitz_catalog.Catalog in
  let n = C.n catalog in
  assign_selectivities catalog (edge_list topo ~n) ~result_card:(C.geometric_mean_card catalog)

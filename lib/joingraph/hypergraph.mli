(** Join hypergraphs: predicates spanning more than two relations.

    The second extension Section 5 sketches and defers ("Similar
    techniques can accommodate implied or redundant predicates and join
    hypergraphs").  A {e hyperedge} is a predicate that can only be
    evaluated once {e all} of a set of relations are present — e.g.
    [R.a + S.b = T.c] touches three relations.  Its selectivity applies
    exactly once, at the join where its last member relation arrives.

    Cardinality semantics: for a subset [S], the join cardinality is the
    product of member cardinalities times the selectivity of every
    hyperedge {e fully contained} in [S] (Section 5.1's argument — a
    predicate participates as soon as, and only when, its referent
    relations are all available).  For two-relation hyperedges this
    degenerates to the ordinary join graph. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog

type hyperedge = {
  members : Relset.t;  (** At least two relations. *)
  selectivity : float;  (** In (0, 1]. *)
}

type t

val n : t -> int
val edges : t -> hyperedge list

val of_edges : n:int -> (Relset.t * float) list -> t
(** Raises [Invalid_argument] on out-of-range members, hyperedges with
    fewer than two relations, duplicate member sets (conjoin the
    selectivities instead), or selectivities outside (0, 1]. *)

val of_join_graph : Join_graph.t -> t
(** Embed an ordinary join graph (every edge becomes a binary
    hyperedge). *)

val join_cardinality : Catalog.t -> t -> Relset.t -> float
(** Reference semantics: member cardinalities times the selectivities of
    fully-contained hyperedges. *)

(** {1 Packed form and induced sub-hypergraphs}

    Inner loops that index hyperedges by integer position — the
    completed-edge bitmask of [Blitzsplit_hyper], the AGM
    fractional-cover solver — consume the packed parallel-array form
    instead of re-deriving it privately. *)

type packed = {
  members : Relset.t array;  (** Member set of edge [e]. *)
  sel : float array;  (** Selectivity of edge [e], same indexing. *)
}

val pack : t -> packed
(** Edges in construction order; [pack] is the canonical conversion, so
    two callers packing the same hypergraph agree on edge indexes. *)

val packed_edge_count : packed -> int

val induced : packed -> Relset.t -> int list
(** Indexes (ascending) of the edges wholly contained in the given set —
    the induced sub-hypergraph on which a per-subset fractional edge
    cover is solved. *)

val pi_span : t -> Relset.t -> Relset.t -> float
(** Product of selectivities of hyperedges contained in the union of the
    two (disjoint) sets but in neither alone — the factor a join of the
    two applies. *)

val crosses : t -> Relset.t -> Relset.t -> bool
(** Whether joining the two sets completes at least one hyperedge. *)

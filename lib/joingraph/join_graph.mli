(** Join graphs: relations as nodes, join predicates as weighted edges.

    Section 5.1 of the paper: a query's join graph is [(R, P)] where the
    edge between relations [i] and [j] carries the selectivity of the
    (conjunction of) predicate(s) relating them.  Absent edges behave as
    selectivity [1] — "from our algorithm's point of view, all join
    graphs are actually cliques, and are distinguished only by the
    selectivities" (Section 6.3).

    The module also provides the reference (non-recurrent) computations of
    [Pi_span], [Pi_fan] and intermediate-result cardinalities used to
    validate the optimizer's O(1)-per-subset recurrences. *)

module Relset = Blitz_bitset.Relset

type t
(** Immutable join graph over relations [0 .. n-1]. *)

(** {1 Construction}

    The [_result] constructors are the non-raising front door for
    externally supplied statistics; the raising forms remain for
    internal callers and raise [Invalid_argument] with exactly
    {!error_message}. *)

type error =
  | Too_few_relations of int  (** [n < 1]. *)
  | Too_many_relations of int  (** Beyond the bitset width. *)
  | Endpoint_out_of_range of { i : int; j : int; n : int }
  | Self_edge of int
  | Duplicate_edge of int * int
  | Invalid_selectivity of { i : int; j : int; sel : float }
      (** NaN, infinite, zero or negative. *)
  | Selectivity_above_one of { i : int; j : int; sel : float }
      (** Outside [(0, 1]] under the [`Reject] policy. *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val of_edges_result :
  ?above_one:[ `Reject | `Clamp ] -> n:int -> (int * int * float) list -> (t, error) result
(** [of_edges_result ~n edges] builds a graph; each [(i, j, sel)] adds an
    undirected predicate edge.  Selectivities above 1 are physically
    meaningless — a predicate cannot enlarge a result — and would
    silently corrupt the fan recurrence, so the policy is explicit:
    [`Reject] (default) reports them as errors, [`Clamp] pins them to
    [1.0] (appropriate for estimated statistics whose formulas can
    overshoot, e.g. the appendix workload formula or histogram
    estimates). *)

val of_edges : ?above_one:[ `Reject | `Clamp ] -> n:int -> (int * int * float) list -> t
(** Raising form of {!of_edges_result}: [Invalid_argument] on
    out-of-range endpoints, self-edges, duplicate edges, non-finite,
    non-positive or (under [`Reject]) above-one selectivities, or
    [n < 1]. *)

val no_predicates_result : n:int -> (t, error) result

val no_predicates : n:int -> t
(** The empty graph: pure Cartesian-product optimization. *)

val n : t -> int

val selectivity : t -> int -> int -> float
(** [selectivity t i j] is the predicate selectivity between [i] and
    [j], or [1.0] when no predicate connects them.  Symmetric.  Raises
    [Invalid_argument] on out-of-range or equal indexes. *)

val has_edge : t -> int -> int -> bool
val degree : t -> int -> int
val neighbors : t -> int -> Relset.t
(** Set of relations sharing a predicate with [i]. *)

val edges : t -> (int * int * float) list
(** All edges with [i < j], lexicographic order. *)

val edge_count : t -> int

(** {1 Connectivity} *)

val is_connected_subset : t -> Relset.t -> bool
(** Whether the subgraph induced by the given set is connected (empty and
    singleton sets count as connected).  Used by baselines that exclude
    Cartesian products. *)

val is_connected : t -> bool

val two_edge_connected_subset : t -> Relset.t -> bool
(** Whether the subgraph induced by the set is 2-edge-connected: at
    least three relations, minimum induced degree 2, connected, and
    free of bridges (checked by DFS low-link).  This is the structural
    gate for multiway-join candidates — it holds for cliques, cycles
    and grid faces, and for {e no} subset of an acyclic (chain, star,
    tree) graph, which is what keeps the hybrid DP bit-identical to
    pure binary optimization on acyclic workloads. *)

val crosses : t -> Relset.t -> Relset.t -> bool
(** [crosses t u v] holds when at least one predicate spans [u] and
    [v] — i.e. joining them is {e not} a Cartesian product. *)

(** {1 Reference selectivity aggregates (Section 5)} *)

val pi_span : t -> Relset.t -> Relset.t -> float
(** Product of the selectivities of all predicates with one endpoint in
    each argument set (Equation 8).  Raises [Invalid_argument] when the
    sets intersect. *)

val pi_fan : t -> Relset.t -> float
(** The fan of [s]: [pi_span {min s} (s - {min s})] (Equation 9).
    Raises [Invalid_argument] on the empty set. *)

val pi_induced : t -> Relset.t -> float
(** Product of the selectivities of all predicates wholly contained in
    [s] — the predicates applied by any complete join over [s]
    (Section 5.1). *)

val join_cardinality : Blitz_catalog.Catalog.t -> t -> Relset.t -> float
(** Reference intermediate-result cardinality: product of member
    cardinalities times {!pi_induced}.  The optimizer computes the same
    quantity through the fan recurrence; tests check they agree. *)

val pp : Format.formatter -> t -> unit

(** The paper's benchmark join-graph topologies (Section 6.1, appendix).

    Four shapes drive the evaluation: {e chain}, {e cycle+3} (a cycle with
    three extra cross-edges), {e star}, and {e clique}.  The appendix
    prescribes both the exact wiring (for n = 15) and a selectivity
    assignment that makes every query produce a result of cardinality
    [mu], the geometric-mean base-relation cardinality:

    {v sel(i, j) = mu^(1/k) * |R_i|^(-1/k_i) * |R_j|^(-1/k_j) v}

    where [k] is the number of predicates and [k_i] the number incident
    on relation [i].  This module generalizes the wiring to any [n]
    (reducing to the paper's exact edge lists at n = 15) and implements
    the selectivity formula. *)

type t =
  | Chain  (** Path through all relations in the paper's interleaved order. *)
  | Cycle_plus of int
      (** Cycle (chain plus closing edge) augmented with the given number
          of cross-edges; [Cycle_plus 3] is the paper's "cycle+3". *)
  | Star  (** Hub [R_{n-1}] connected to every other relation. *)
  | Clique  (** A predicate between every pair. *)
  | Grid of int * int
      (** [Grid (r, c)] with [r*c = n]: 4-neighbor mesh.  Not in the
          paper; included as an additional topology for the sensitivity
          study. *)

val name : t -> string
(** Short identifier, e.g. ["cycle+3"]. *)

val of_string : string -> (t, string) result
(** Parses ["chain"], ["cycle+K"], ["star"], ["clique"], ["grid:RxC"]. *)

val all_paper : t list
(** The four topologies used in Figures 4-6: chain, cycle+3, star,
    clique. *)

val chain_order : int -> int array
(** The appendix's interleaved chain ordering.  For n = 15 this is
    exactly [R0-R8-R1-R9-...-R14-R7]; in general relations
    [0..ceil(n/2)-1] alternate with [ceil(n/2)..n-1]. *)

val edge_list : t -> n:int -> (int * int) list
(** Unweighted edges of the topology at size [n], endpoints with
    [i <> j], no duplicates.  Raises [Invalid_argument] when the topology
    is infeasible at that size (e.g. [Cycle_plus k] needs
    [n >= 2k + 3]; [Grid (r, c)] needs [r*c = n]). *)

val grid : n:int -> t
(** [grid ~n] is [Grid (r, c)] with [r * c = n] and [r] the largest
    divisor of [n] at most [sqrt n] — the most-square mesh covering
    exactly [n] relations, deterministically.  Primes degenerate to
    [Grid (1, n)] (a chain). *)

val cycle_plus_chords : n:int -> k:int -> seed:int -> (int * int) list
(** A seeded cyclic wiring: the [n]-cycle (in the appendix chain order,
    closed) plus [k] distinct random chords drawn from a PRNG seeded
    with [(seed, n, k)] — deterministic for a given triple.  Feed the
    result to {!assign_selectivities}.  Raises [Invalid_argument] when
    [n < 3], [k < 0], or [k] exceeds the number of non-cycle pairs. *)

val assign_selectivities :
  Blitz_catalog.Catalog.t -> (int * int) list -> result_card:float -> Join_graph.t
(** Weight an edge list with the appendix formula, targeting the given
    final result cardinality (the paper uses [result_card = mu]).  With an
    empty edge list, returns the predicate-free graph. *)

val make : t -> Blitz_catalog.Catalog.t -> Join_graph.t
(** [make topo catalog] wires the topology over the catalog's relations
    and assigns appendix selectivities with
    [result_card = geometric_mean_card catalog]. *)

(** Column-equivalence classes: implied and redundant predicates.

    Section 5 of the paper notes that techniques similar to the fan
    recurrence "can accommodate implied or redundant predicates", without
    spelling them out.  This module supplies the standard treatment.

    The problem: with transitive equalities [a.x = b.y], [b.y = c.z] (and
    possibly the implied/redundant [a.x = c.z] written explicitly), the
    plain join graph multiplies one selectivity per {e edge} inside a
    subset, double-counting — joining all three relations applies two
    independent constraints, not three.

    The model: an {e equivalence class} is a set of columns forced equal,
    characterized by the set of relations it touches and a {e domain
    size} [D].  Joining [k >= 1] relations of one class multiplies the
    Cartesian cardinality by [D^-(k-1)]: the first relation is free and
    each further one must agree on the class value.  Pairwise this
    reduces to the familiar [sel = 1/D]; transitively it counts each
    constraint exactly once.

    Cardinality estimation with classes no longer factors through the
    one-float fan recurrence (a class may span both halves of a split
    several times), so {!Blitz_core.Blitzsplit_eq} carries a per-subset
    class {e presence mask} instead — still O(1) words per table entry. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog

type column = int * string
(** A column as (relation index, column name). *)

type cls = {
  members : column list;  (** The equivalent columns (at least two). *)
  relations : Relset.t;  (** Relations touched (one bit per member relation). *)
  domain : float;  (** Domain size [D >= 1]. *)
}

type t
(** A set of equivalence classes over [n] relations. *)

val n : t -> int
val classes : t -> cls list
(** In construction order; each class touches at least two relations. *)

val of_classes : n:int -> cls list -> t
(** Direct construction.  Raises [Invalid_argument] on empty class
    member lists, out-of-range relations, domains below 1, or a class
    touching fewer than two relations. *)

val of_predicates : n:int -> (column * column * float) list -> t
(** Build classes from binary equi-predicates by union-find on columns.
    Each predicate [(c1, c2, sel)] asserts [c1 = c2] with selectivity
    [sel]; the class's domain is the largest implied domain
    [max over merged predicates of 1/sel] (the most selective consistent
    interpretation would instead take the max domain; we follow the
    textbook max-domain rule, i.e. smallest selectivity wins).  Raises
    [Invalid_argument] on selectivities outside (0, 1] or a predicate
    relating a relation to itself. *)

val selectivity_exponent : t -> Relset.t -> int array
(** [selectivity_exponent t s] gives, per class (in {!classes} order),
    [max 0 (k - 1)] where [k] is the number of [s]'s relations the class
    touches — the exponent of [1/D] this class contributes to the join
    cardinality of [s]. *)

val join_cardinality : Catalog.t -> t -> Relset.t -> float
(** Reference class-aware cardinality: product of member cardinalities
    times [prod_c D_c^-(k_c - 1)]. *)

val as_pairwise_graph : t -> Join_graph.t
(** The {e naive} pairwise projection: an edge of selectivity [1/D]
    between every pair of relations sharing a class.  Feeding this to
    the plain optimizer over-counts on classes spanning 3+ relations —
    exposed so benchmarks can quantify the estimation error the
    class-aware optimizer fixes. *)

val spanning_graph : t -> Join_graph.t
(** A non-redundant pairwise projection: each class contributes a chain
    of [k - 1] edges (selectivity [1/D]) through its relations in index
    order.  Correct for {e complete} joins of all class relations but
    still inexact for subsets that skip an intermediate chain member;
    the class-aware optimizer is exact for every subset. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog

type column = int * string

type cls = { members : column list; relations : Relset.t; domain : float }

type t = { n : int; classes : cls list }

let n t = t.n
let classes t = t.classes

let validate_class ~n c =
  if c.members = [] then invalid_arg "Equivalence: class with no members";
  if c.domain < 1.0 || not (Float.is_finite c.domain) then
    invalid_arg (Printf.sprintf "Equivalence: invalid domain %g" c.domain);
  if Relset.cardinal c.relations < 2 then
    invalid_arg "Equivalence: a class must touch at least two relations";
  List.iter
    (fun (rel, col) ->
      if rel < 0 || rel >= n then
        invalid_arg (Printf.sprintf "Equivalence: relation %d out of range" rel);
      if col = "" then invalid_arg "Equivalence: empty column name";
      if not (Relset.mem c.relations rel) then
        invalid_arg "Equivalence: member outside the class relation set")
    c.members

let of_classes ~n classes =
  if n < 1 then invalid_arg "Equivalence.of_classes: n must be positive";
  List.iter (validate_class ~n) classes;
  { n; classes }

(* Union-find over columns, keyed by (relation, column). *)
let of_predicates ~n predicates =
  if n < 1 then invalid_arg "Equivalence.of_predicates: n must be positive";
  let parent : (column, column) Hashtbl.t = Hashtbl.create 32 in
  let rec find c =
    match Hashtbl.find_opt parent c with
    | None ->
      Hashtbl.add parent c c;
      c
    | Some p -> if p = c then c else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  (* Domain per root: the max of 1/sel over merged predicates. *)
  let domains : (column, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (((r1, _) as c1), ((r2, _) as c2), sel) ->
      if sel <= 0.0 || sel > 1.0 then
        invalid_arg (Printf.sprintf "Equivalence.of_predicates: selectivity %g outside (0, 1]" sel);
      if r1 = r2 then invalid_arg "Equivalence.of_predicates: predicate relates a relation to itself";
      if r1 < 0 || r1 >= n || r2 < 0 || r2 >= n then
        invalid_arg "Equivalence.of_predicates: relation index out of range";
      let d_before c = Option.value ~default:1.0 (Hashtbl.find_opt domains (find c)) in
      let d = Float.max (1.0 /. sel) (Float.max (d_before c1) (d_before c2)) in
      union c1 c2;
      Hashtbl.replace domains (find c1) d)
    predicates;
  (* Group columns by root. *)
  let groups : (column, column list) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun c _ ->
      let root = find c in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (c :: existing))
    parent;
  let classes =
    Hashtbl.fold
      (fun root members acc ->
        let members = List.sort_uniq compare members in
        let relations = List.fold_left (fun s (rel, _) -> Relset.add s rel) Relset.empty members in
        if Relset.cardinal relations < 2 then acc
        else begin
          let domain = Option.value ~default:1.0 (Hashtbl.find_opt domains root) in
          { members; relations; domain } :: acc
        end)
      groups []
  in
  (* Deterministic order: by smallest member. *)
  let classes = List.sort (fun a b -> compare a.members b.members) classes in
  { n; classes }

let selectivity_exponent t s =
  Array.of_list
    (List.map
       (fun c ->
         let k = Relset.cardinal (Relset.inter c.relations s) in
         max 0 (k - 1))
       t.classes)

let join_cardinality catalog t s =
  if Catalog.n catalog <> t.n then
    invalid_arg "Equivalence.join_cardinality: catalog size mismatch";
  let cards = Relset.fold (fun acc i -> acc *. Catalog.card catalog i) 1.0 s in
  List.fold_left
    (fun acc c ->
      let k = Relset.cardinal (Relset.inter c.relations s) in
      if k <= 1 then acc else acc /. Blitz_util.Float_more.pow_int c.domain (k - 1))
    cards t.classes

let as_pairwise_graph t =
  let sel : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let rels = Relset.to_list c.relations in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if j > i then begin
                let key = (a, b) in
                let existing = Option.value ~default:1.0 (Hashtbl.find_opt sel key) in
                Hashtbl.replace sel key (existing /. c.domain)
              end)
            rels)
        rels)
    t.classes;
  Join_graph.of_edges ~n:t.n (Hashtbl.fold (fun (a, b) s acc -> (a, b, s) :: acc) sel [])

let spanning_graph t =
  let sel : (int * int, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let rels = Relset.to_list c.relations in
      let rec chain = function
        | a :: (b :: _ as rest) ->
          let key = (a, b) in
          let existing = Option.value ~default:1.0 (Hashtbl.find_opt sel key) in
          Hashtbl.replace sel key (existing /. c.domain);
          chain rest
        | [ _ ] | [] -> ()
      in
      chain rels)
    t.classes;
  Join_graph.of_edges ~n:t.n (Hashtbl.fold (fun (a, b) s acc -> (a, b, s) :: acc) sel [])

(** Projection of an optimization problem onto a subset of its relations.

    Several components — the hybrid optimizer re-optimizing plan windows,
    baselines working on sub-queries, tests on induced subgraphs — need
    the catalog and join graph restricted to a relation subset, with
    indexes re-densified to [0 .. |S|-1].  Section 5.1's induced-subgraph
    semantics guarantee the projection preserves join cardinalities and
    hence plan costs for plans over the subset. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog

type t = {
  catalog : Catalog.t;  (** Restricted catalog, dense indexes. *)
  graph : Join_graph.t;  (** Induced subgraph, dense indexes. *)
  to_parent : int array;  (** [to_parent.(i)] is the original index of dense index [i]. *)
}

val project : Catalog.t -> Join_graph.t -> Relset.t -> t
(** Raises [Invalid_argument] on the empty set or indexes outside the
    catalog. *)

val lift_set : t -> Relset.t -> Relset.t
(** Map a dense-index set back to original indexes.  (Plans are lifted
    with [Plan.map_leaves] over [to_parent].) *)

type position = { line : int; column : int }

type column_ref = { table : string; column : string; ref_pos : position }

type predicate = {
  lhs : column_ref;
  rhs : column_ref;
  selectivity : float option;
  pred_pos : position;
}

type from_item = { table_name : string; alias : string option; from_pos : position }

type select = {
  from : from_item list;
  where : predicate list;
  order_by : column_ref option;
  select_pos : position;
}

type statement =
  | Create_table of { name : string; cardinality : float; create_pos : position }
  | Select of select

let binding_name item = match item.alias with Some a -> a | None -> item.table_name

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.column

let pp_column_ref ppf r = Format.fprintf ppf "%s.%s" r.table r.column

let pp_statement ppf = function
  | Create_table { name; cardinality; _ } ->
    Format.fprintf ppf "CREATE TABLE %s (CARDINALITY %g);" name cardinality
  | Select { from; where; order_by; _ } ->
    Format.fprintf ppf "SELECT * FROM %s"
      (String.concat ", "
         (List.map
            (fun item ->
              match item.alias with
              | Some a -> item.table_name ^ " " ^ a
              | None -> item.table_name)
            from));
    (match where with
    | [] -> ()
    | first :: rest ->
      let pp_pred ppf p =
        Format.fprintf ppf "%a = %a" pp_column_ref p.lhs pp_column_ref p.rhs;
        match p.selectivity with
        | Some s -> Format.fprintf ppf " {%g}" s
        | None -> ()
      in
      Format.fprintf ppf " WHERE %a" pp_pred first;
      List.iter (fun p -> Format.fprintf ppf " AND %a" pp_pred p) rest);
    (match order_by with
    | Some c -> Format.fprintf ppf " ORDER BY %a" pp_column_ref c
    | None -> ());
    Format.fprintf ppf ";"

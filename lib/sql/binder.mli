(** Semantic analysis: SQL AST to optimizer inputs.

    Resolves FROM items against the CREATE TABLE definitions, assigns
    dense relation indexes in FROM order, and folds the WHERE
    conjunction into a join graph:

    - a predicate without a selectivity annotation defaults to
      [1 / max(|L|, |R|)] — the textbook uniform-domain estimate for an
      equi-join on a key of the larger side;
    - multiple predicates between the same pair of relations multiply
      (the uncorrelated-predicates assumption the paper states up
      front). *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

type bound_query = {
  catalog : Catalog.t;  (** One relation per FROM item, named by its binding name. *)
  graph : Join_graph.t;
  predicates : ((int * string) * (int * string) * float) list;
      (** Resolved column equalities: ((rel, col), (rel, col), selectivity). *)
  required_order : int option;
      (** ORDER BY resolved to an edge id (index into [Join_graph.edges
          graph]) suitable for [Blitzsplit_orders.optimize
          ~required_order].  Binding fails if the column is not a join
          attribute of some predicate. *)
}

type error = { message : string; error_pos : Ast.position }

val pp_error : Format.formatter -> error -> unit

val bind_select : tables:(string * float) list -> Ast.select -> (bound_query, error) result
(** [tables] maps table names to cardinalities.  Self-joins are
    supported through aliases; binding names must be unique. *)

val bind_script : Ast.statement list -> (bound_query list, error) result
(** Processes statements in order: CREATE TABLE populates the schema
    (redefinition is an error), each SELECT binds against the schema so
    far.  Returns the bound queries in order. *)

val parse_and_bind : string -> (bound_query list, string) result
(** Convenience: lex + parse + bind, rendering any error to a string. *)

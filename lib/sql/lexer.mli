(** Hand-written lexer for the SQL subset.

    Keywords are case-insensitive; identifiers keep their case.  [--]
    starts a comment running to end of line.  Every token carries its
    source position for error reporting. *)

type token =
  | Ident of string
  | Number of float
  | Kw_create
  | Kw_table
  | Kw_cardinality
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_as
  | Kw_order
  | Kw_by
  | Star
  | Dot
  | Comma
  | Semicolon
  | Equal
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace

type spanned = { token : token; pos : Ast.position }

type error = { message : string; error_pos : Ast.position }

val token_name : token -> string
(** Human-readable token description for error messages. *)

val tokenize : string -> (spanned list, error) result

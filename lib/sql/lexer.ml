type token =
  | Ident of string
  | Number of float
  | Kw_create
  | Kw_table
  | Kw_cardinality
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_as
  | Kw_order
  | Kw_by
  | Star
  | Dot
  | Comma
  | Semicolon
  | Equal
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace

type spanned = { token : token; pos : Ast.position }

type error = { message : string; error_pos : Ast.position }

let token_name = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number x -> Printf.sprintf "number %g" x
  | Kw_create -> "CREATE"
  | Kw_table -> "TABLE"
  | Kw_cardinality -> "CARDINALITY"
  | Kw_select -> "SELECT"
  | Kw_from -> "FROM"
  | Kw_where -> "WHERE"
  | Kw_and -> "AND"
  | Kw_as -> "AS"
  | Kw_order -> "ORDER"
  | Kw_by -> "BY"
  | Star -> "'*'"
  | Dot -> "'.'"
  | Comma -> "','"
  | Semicolon -> "';'"
  | Equal -> "'='"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "create" -> Some Kw_create
  | "table" -> Some Kw_table
  | "cardinality" -> Some Kw_cardinality
  | "select" -> Some Kw_select
  | "from" -> Some Kw_from
  | "where" -> Some Kw_where
  | "and" -> Some Kw_and
  | "as" -> Some Kw_as
  | "order" -> Some Kw_order
  | "by" -> Some Kw_by
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize text =
  let len = String.length text in
  let line = ref 1 and col = ref 1 and i = ref 0 in
  let acc = ref [] in
  let err = ref None in
  let position () = { Ast.line = !line; column = !col } in
  let advance () =
    if !i < len && text.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let emit token pos = acc := { token; pos } :: !acc in
  while !err = None && !i < len do
    let c = text.[!i] in
    let pos = position () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '-' && !i + 1 < len && text.[!i + 1] = '-' then begin
      while !i < len && text.[!i] <> '\n' do
        advance ()
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < len && is_ident_char text.[!i] do
        advance ()
      done;
      let word = String.sub text start (!i - start) in
      match keyword_of_string word with
      | Some kw -> emit kw pos
      | None -> emit (Ident word) pos
    end
    else if is_digit c then begin
      let start = !i in
      while
        !i < len
        && (is_digit text.[!i]
           || text.[!i] = '.'
           || text.[!i] = 'e'
           || text.[!i] = 'E'
           || ((text.[!i] = '+' || text.[!i] = '-')
              && !i > start
              && (text.[!i - 1] = 'e' || text.[!i - 1] = 'E')))
      do
        advance ()
      done;
      let word = String.sub text start (!i - start) in
      match float_of_string_opt word with
      | Some x -> emit (Number x) pos
      | None -> err := Some { message = Printf.sprintf "malformed number %S" word; error_pos = pos }
    end
    else begin
      let simple token =
        advance ();
        emit token pos
      in
      match c with
      | '*' -> simple Star
      | '.' -> simple Dot
      | ',' -> simple Comma
      | ';' -> simple Semicolon
      | '=' -> simple Equal
      | '(' -> simple Lparen
      | ')' -> simple Rparen
      | '{' -> simple Lbrace
      | '}' -> simple Rbrace
      | _ ->
        err := Some { message = Printf.sprintf "unexpected character %C" c; error_pos = pos }
    end
  done;
  match !err with Some e -> Error e | None -> Ok (List.rev !acc)

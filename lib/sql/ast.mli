(** Abstract syntax for the SQL subset understood by the front end.

    The optimizer needs exactly what Section 3.1 lists — relation
    cardinalities and predicate selectivities — so the dialect is a thin
    skin over that:

    {v
    CREATE TABLE orders (CARDINALITY 150000);
    SELECT * FROM orders o, lineitem l, customer c
    WHERE o.okey = l.okey {0.0000066}
      AND o.ckey = c.ckey
    ORDER BY o.okey;
    v}

    The braces annotate a predicate's selectivity; without one the binder
    falls back to the uniform-domain default [1 / max(|L|, |R|)]. *)

type position = { line : int; column : int }
(** 1-based source coordinates. *)

type column_ref = { table : string; column : string; ref_pos : position }
(** [table] is the FROM-clause alias (or table name when unaliased). *)

type predicate = {
  lhs : column_ref;
  rhs : column_ref;
  selectivity : float option;  (** The brace annotation, when present. *)
  pred_pos : position;
}

type from_item = { table_name : string; alias : string option; from_pos : position }

type select = {
  from : from_item list;
  where : predicate list;
  order_by : column_ref option;  (** [ORDER BY t.col], at most one column. *)
  select_pos : position;
}

type statement =
  | Create_table of { name : string; cardinality : float; create_pos : position }
  | Select of select

val binding_name : from_item -> string
(** The name a FROM item is referred to by: its alias if given, else the
    table name. *)

val pp_position : Format.formatter -> position -> unit
val pp_statement : Format.formatter -> statement -> unit

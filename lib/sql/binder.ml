module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

type bound_query = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  predicates : ((int * string) * (int * string) * float) list;
  required_order : int option;
}

type error = { message : string; error_pos : Ast.position }

let pp_error ppf e = Format.fprintf ppf "%s (%a)" e.message Ast.pp_position e.error_pos

exception Bind_error of error

let fail pos fmt = Format.kasprintf (fun message -> raise (Bind_error { message; error_pos = pos })) fmt

let bind_select_exn ~tables (select : Ast.select) =
  if select.Ast.from = [] then fail select.Ast.select_pos "FROM clause is empty";
  (* Resolve FROM items to (binding name, cardinality), dense indexes. *)
  let by_binding = Hashtbl.create 16 in
  let entries =
    List.mapi
      (fun idx (item : Ast.from_item) ->
        let binding = Ast.binding_name item in
        (match List.assoc_opt item.Ast.table_name tables with
        | None -> fail item.Ast.from_pos "unknown table %S" item.Ast.table_name
        | Some _ -> ());
        if Hashtbl.mem by_binding binding then
          fail item.Ast.from_pos
            "duplicate relation name %S in FROM (use an alias for self-joins)" binding;
        Hashtbl.add by_binding binding idx;
        (binding, List.assoc item.Ast.table_name tables))
      select.Ast.from
  in
  let catalog =
    match Catalog.of_list_result entries with
    | Ok c -> c
    | Error e -> fail select.Ast.select_pos "%s" (Catalog.error_message e)
  in
  let resolve (r : Ast.column_ref) =
    match Hashtbl.find_opt by_binding r.Ast.table with
    | Some idx -> idx
    | None -> fail r.Ast.ref_pos "relation %S is not in the FROM clause" r.Ast.table
  in
  let predicates =
    List.map
      (fun (p : Ast.predicate) ->
        let li = resolve p.Ast.lhs and ri = resolve p.Ast.rhs in
        if li = ri then
          fail p.Ast.pred_pos "predicate relates %S to itself; only join predicates are supported"
            p.Ast.lhs.Ast.table;
        let sel =
          match p.Ast.selectivity with
          | Some s ->
            if s > 1.0 then fail p.Ast.pred_pos "selectivity %g exceeds 1" s;
            if Float.is_nan s || s <= 0.0 then
              fail p.Ast.pred_pos "selectivity %g is not in (0, 1]" s;
            s
          | None -> 1.0 /. Float.max (Catalog.card catalog li) (Catalog.card catalog ri)
        in
        ((li, p.Ast.lhs.Ast.column), (ri, p.Ast.rhs.Ast.column), sel))
      select.Ast.where
  in
  (* Conjoin multiple predicates between the same pair. *)
  let pair_sel = Hashtbl.create 16 in
  List.iter
    (fun ((li, _), (ri, _), sel) ->
      let key = (min li ri, max li ri) in
      let existing = Option.value ~default:1.0 (Hashtbl.find_opt pair_sel key) in
      Hashtbl.replace pair_sel key (existing *. sel))
    predicates;
  let edges = Hashtbl.fold (fun (i, j) sel acc -> (i, j, sel) :: acc) pair_sel [] in
  let graph =
    match Join_graph.of_edges_result ~n:(Catalog.n catalog) edges with
    | Ok g -> g
    | Error e -> fail select.Ast.select_pos "%s" (Join_graph.error_message e)
  in
  let required_order =
    match select.Ast.order_by with
    | None -> None
    | Some col ->
      let rel = resolve col in
      let matches ((li, lc), (ri, rc), _) =
        (li = rel && lc = col.Ast.column) || (ri = rel && rc = col.Ast.column)
      in
      (match List.find_opt matches predicates with
      | None ->
        fail col.Ast.ref_pos
          "ORDER BY %s.%s: only join attributes (columns used in WHERE) can be ordered by"
          col.Ast.table col.Ast.column
      | Some ((li, _), (ri, _), _) ->
        let key = (min li ri, max li ri) in
        let sorted_edges = Join_graph.edges graph in
        let rec index i = function
          | [] -> fail col.Ast.ref_pos "internal: ORDER BY edge not found in the join graph"
          | (a, b, _) :: rest -> if (a, b) = key then Some i else index (i + 1) rest
        in
        index 0 sorted_edges)
  in
  { catalog; graph; predicates; required_order }

let bind_select ~tables select =
  match bind_select_exn ~tables select with
  | q -> Ok q
  | exception Bind_error e -> Error e

let bind_script statements =
  let schema = Hashtbl.create 16 in
  let bind_all () =
    List.filter_map
      (fun stmt ->
        match stmt with
        | Ast.Create_table { name; cardinality; create_pos } ->
          if Hashtbl.mem schema name then fail create_pos "table %S is already defined" name;
          (* Reject bad statistics where the position is known, not when
             a later SELECT's catalog construction trips over them. *)
          if not (Float.is_finite cardinality) || cardinality <= 0.0 then
            fail create_pos "table %S has invalid cardinality %g" name cardinality;
          Hashtbl.add schema name cardinality;
          None
        | Ast.Select select ->
          let tables = Hashtbl.fold (fun k v acc -> (k, v) :: acc) schema [] in
          Some (bind_select_exn ~tables select))
      statements
  in
  match bind_all () with qs -> Ok qs | exception Bind_error e -> Error e

let parse_and_bind text =
  match Parser.parse_script text with
  | Error e -> Error (Format.asprintf "parse error: %a" Parser.pp_error e)
  | Ok statements -> (
    match bind_script statements with
    | Error e -> Error (Format.asprintf "binding error: %a" pp_error e)
    | Ok qs -> Ok qs)

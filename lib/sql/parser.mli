(** Recursive-descent parser for the SQL subset.

    Grammar (terminals in caps; [{...}] is the selectivity annotation):

    {v
    script     := statement* EOF
    statement  := create | select
    create     := CREATE TABLE ident '(' CARDINALITY number ')' ';'
    select     := SELECT '*' FROM from_item (',' from_item)*
                  [ WHERE predicate (AND predicate)* ]
                  [ ORDER BY colref ] ';'
    from_item  := ident [ [AS] ident ]
    predicate  := colref '=' colref [ '{' number '}' ]
    colref     := ident '.' ident
    v} *)

type error = { message : string; error_pos : Ast.position }

val pp_error : Format.formatter -> error -> unit

val parse_script : string -> (Ast.statement list, error) result
(** Lex and parse a whole script.  Lexer errors are reported through the
    same [error] type. *)

val parse_select : string -> (Ast.select, error) result
(** Parse a single SELECT statement (trailing semicolon optional). *)

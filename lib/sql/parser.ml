type error = { message : string; error_pos : Ast.position }

let pp_error ppf e = Format.fprintf ppf "%s (%a)" e.message Ast.pp_position e.error_pos

exception Parse_error of error

let fail pos fmt = Format.kasprintf (fun message -> raise (Parse_error { message; error_pos = pos })) fmt

type state = { mutable tokens : Lexer.spanned list; mutable last_pos : Ast.position }

let peek st = match st.tokens with [] -> None | spanned :: _ -> Some spanned

let next st =
  match st.tokens with
  | [] -> fail st.last_pos "unexpected end of input"
  | spanned :: rest ->
    st.tokens <- rest;
    st.last_pos <- spanned.Lexer.pos;
    spanned

let expect st token =
  let spanned = next st in
  if spanned.Lexer.token <> token then
    fail spanned.Lexer.pos "expected %s but found %s" (Lexer.token_name token)
      (Lexer.token_name spanned.Lexer.token)

let expect_ident st =
  let spanned = next st in
  match spanned.Lexer.token with
  | Lexer.Ident name -> (name, spanned.Lexer.pos)
  | other -> fail spanned.Lexer.pos "expected an identifier but found %s" (Lexer.token_name other)

let expect_number st =
  let spanned = next st in
  match spanned.Lexer.token with
  | Lexer.Number x -> (x, spanned.Lexer.pos)
  | other -> fail spanned.Lexer.pos "expected a number but found %s" (Lexer.token_name other)

let parse_column_ref st =
  let table, ref_pos = expect_ident st in
  expect st Lexer.Dot;
  let column, _ = expect_ident st in
  { Ast.table; column; ref_pos }

let parse_predicate st =
  let lhs = parse_column_ref st in
  expect st Lexer.Equal;
  let rhs = parse_column_ref st in
  let selectivity =
    match peek st with
    | Some { Lexer.token = Lexer.Lbrace; _ } ->
      ignore (next st);
      let s, spos = expect_number st in
      if s <= 0.0 then fail spos "selectivity must be positive, got %g" s;
      expect st Lexer.Rbrace;
      Some s
    | Some _ | None -> None
  in
  { Ast.lhs; rhs; selectivity; pred_pos = lhs.Ast.ref_pos }

let parse_from_item st =
  let table_name, from_pos = expect_ident st in
  let alias =
    match peek st with
    | Some { Lexer.token = Lexer.Kw_as; _ } ->
      ignore (next st);
      Some (fst (expect_ident st))
    | Some { Lexer.token = Lexer.Ident _; _ } -> Some (fst (expect_ident st))
    | Some _ | None -> None
  in
  { Ast.table_name; alias; from_pos }

let rec parse_separated st parse_one sep =
  let first = parse_one st in
  match peek st with
  | Some { Lexer.token; _ } when token = sep ->
    ignore (next st);
    first :: parse_separated st parse_one sep
  | Some _ | None -> [ first ]

let parse_select_body st select_pos =
  expect st Lexer.Star;
  expect st Lexer.Kw_from;
  let from = parse_separated st parse_from_item Lexer.Comma in
  let where =
    match peek st with
    | Some { Lexer.token = Lexer.Kw_where; _ } ->
      ignore (next st);
      parse_separated st parse_predicate Lexer.Kw_and
    | Some _ | None -> []
  in
  let order_by =
    match peek st with
    | Some { Lexer.token = Lexer.Kw_order; _ } ->
      ignore (next st);
      expect st Lexer.Kw_by;
      Some (parse_column_ref st)
    | Some _ | None -> None
  in
  { Ast.from; where; order_by; select_pos }

let parse_statement st =
  let spanned = next st in
  match spanned.Lexer.token with
  | Lexer.Kw_create ->
    expect st Lexer.Kw_table;
    let name, _ = expect_ident st in
    expect st Lexer.Lparen;
    expect st Lexer.Kw_cardinality;
    let cardinality, cpos = expect_number st in
    if cardinality <= 0.0 then fail cpos "cardinality must be positive, got %g" cardinality;
    expect st Lexer.Rparen;
    expect st Lexer.Semicolon;
    Ast.Create_table { name; cardinality; create_pos = spanned.Lexer.pos }
  | Lexer.Kw_select ->
    let select = parse_select_body st spanned.Lexer.pos in
    expect st Lexer.Semicolon;
    Ast.Select select
  | other ->
    fail spanned.Lexer.pos "expected CREATE or SELECT but found %s" (Lexer.token_name other)

let with_tokens text k =
  match Lexer.tokenize text with
  | Error { Lexer.message; error_pos } -> Error { message; error_pos }
  | Ok tokens -> (
    let st = { tokens; last_pos = { Ast.line = 1; column = 1 } } in
    match k st with v -> Ok v | exception Parse_error e -> Error e)

let parse_script text =
  with_tokens text (fun st ->
      let rec go acc =
        match peek st with None -> List.rev acc | Some _ -> go (parse_statement st :: acc)
      in
      go [])

let parse_select text =
  with_tokens text (fun st ->
      let spanned = next st in
      (match spanned.Lexer.token with
      | Lexer.Kw_select -> ()
      | other -> fail spanned.Lexer.pos "expected SELECT but found %s" (Lexer.token_name other));
      let select = parse_select_body st spanned.Lexer.pos in
      (match peek st with
      | Some { Lexer.token = Lexer.Semicolon; _ } -> ignore (next st)
      | Some _ | None -> ());
      (match peek st with
      | Some extra ->
        fail extra.Lexer.pos "trailing input after SELECT: %s" (Lexer.token_name extra.Lexer.token)
      | None -> ());
      select)

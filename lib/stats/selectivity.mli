(** Equi-join selectivity estimation from histograms.

    Two estimators, both standard:

    - {!from_distinct}: the System-R containment rule
      [sel = 1 / max(ndv_L, ndv_R)] — exact for uniform columns with
      containment of value sets;
    - {!from_histograms}: bucket-by-bucket —
      [sel = sum_b f_L(b) f_R(b) / max(d_L(b), d_R(b)) / (|L| |R|)]
      over the overlap of the two histograms' ranges, assuming uniform
      spread within buckets.  Reduces toward {!from_distinct} on uniform
      data but adapts to skew and disjoint ranges. *)

val from_distinct : Histogram.t -> Histogram.t -> float
(** Containment-rule estimate.  Always in (0, 1]. *)

val from_histograms : Histogram.t -> Histogram.t -> float
(** Bucket-overlap estimate.  Returns 0 when the ranges are disjoint;
    otherwise positive and at most 1. *)

(** Equi-width histograms over integer columns.

    The paper assumes cardinalities and selectivities are {e given}
    ("no sensible model will require complete knowledge of the relations
    under consideration", Section 3.1) — a real system derives them from
    data.  This module is that derivation substrate: per-column
    histograms with exact per-bucket frequencies and distinct counts,
    from which {!Selectivity} estimates equi-join selectivities. *)

type t

type bucket = {
  lo : int;  (** Inclusive lower bound. *)
  hi : int;  (** Inclusive upper bound. *)
  count : int;  (** Values falling in the bucket. *)
  distinct : int;  (** Distinct values in the bucket (exact). *)
}

val build : ?buckets:int -> int array -> t
(** [build ?buckets data] (default 16 buckets) over the data's min..max
    range.  Raises [Invalid_argument] on empty data or [buckets < 1].
    Single-valued data collapses to one bucket. *)

val total_count : t -> int
val distinct_count : t -> int
(** Exact number of distinct values overall. *)

val buckets : t -> bucket list
(** Non-empty representation: buckets cover min..max contiguously. *)

val min_value : t -> int
val max_value : t -> int

val pp : Format.formatter -> t -> unit

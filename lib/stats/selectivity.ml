let from_distinct a b =
  1.0 /. float_of_int (max (Histogram.distinct_count a) (Histogram.distinct_count b))

(* Portion of bucket [b] overlapping the integer range [lo, hi],
   assuming uniform spread within the bucket. *)
let overlap_fraction (b : Histogram.bucket) ~lo ~hi =
  let o_lo = max b.Histogram.lo lo and o_hi = min b.Histogram.hi hi in
  if o_lo > o_hi then 0.0
  else
    float_of_int (o_hi - o_lo + 1) /. float_of_int (b.Histogram.hi - b.Histogram.lo + 1)

let from_histograms a b =
  let na = float_of_int (Histogram.total_count a) in
  let nb = float_of_int (Histogram.total_count b) in
  (* Match every pair of overlapping buckets; within the overlap, the
     per-value frequency is count * fraction / distinct-in-overlap. *)
  let matches = ref 0.0 in
  List.iter
    (fun (ba : Histogram.bucket) ->
      List.iter
        (fun (bb : Histogram.bucket) ->
          let lo = max ba.Histogram.lo bb.Histogram.lo in
          let hi = min ba.Histogram.hi bb.Histogram.hi in
          if lo <= hi then begin
            let fa = overlap_fraction ba ~lo ~hi and fb = overlap_fraction bb ~lo ~hi in
            let ca = float_of_int ba.Histogram.count *. fa in
            let cb = float_of_int bb.Histogram.count *. fb in
            let da = Float.max 1.0 (float_of_int ba.Histogram.distinct *. fa) in
            let db = Float.max 1.0 (float_of_int bb.Histogram.distinct *. fb) in
            matches := !matches +. (ca *. cb /. Float.max da db)
          end)
        (Histogram.buckets b))
    (Histogram.buckets a);
  Blitz_util.Float_more.clamp ~lo:0.0 ~hi:1.0 (!matches /. (na *. nb))

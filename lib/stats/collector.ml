module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Datagen = Blitz_exec.Datagen
module Table = Blitz_exec.Table

type method_ = Distinct_count | Histogram_overlap

type t = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  column_histograms : (int * string, Histogram.t) Hashtbl.t;
}

let column_values table col =
  Array.init (Table.n_rows table) (fun r -> Table.get table ~row:r ~col)

let collect ?buckets ?(method_ = Histogram_overlap) (dataset : Datagen.t) =
  let n = Catalog.n dataset.Datagen.catalog in
  let catalog = Datagen.realized_catalog dataset in
  let column_histograms = Hashtbl.create 32 in
  let histogram rel col_name =
    let key = (rel, col_name) in
    match Hashtbl.find_opt column_histograms key with
    | Some h -> h
    | None ->
      let table = dataset.Datagen.tables.(rel) in
      let col =
        match Table.column_index table col_name with
        | Some c -> c
        | None -> invalid_arg (Printf.sprintf "Collector: missing column %s" col_name)
      in
      let h = Histogram.build ?buckets (column_values table col) in
      Hashtbl.add column_histograms key h;
      h
  in
  let estimate = match method_ with
    | Distinct_count -> Selectivity.from_distinct
    | Histogram_overlap -> Selectivity.from_histograms
  in
  let edges =
    List.map
      (fun (i, j, _declared) ->
        let attr = Datagen.edge_attribute i j in
        let sel = estimate (histogram i attr) (histogram j attr) in
        (* A zero estimate (disjoint ranges) still needs a positive edge;
           floor at one match in the cross product. *)
        let floor_sel = 1.0 /. (Catalog.card catalog i *. Catalog.card catalog j) in
        (i, j, Float.max sel floor_sel))
      (Join_graph.edges dataset.Datagen.graph)
  in
  (* Histogram estimates are approximate and may exceed 1; clamp. *)
  { catalog; graph = Join_graph.of_edges ~above_one:`Clamp ~n edges; column_histograms }

let max_relative_selectivity_error t (dataset : Datagen.t) =
  List.fold_left
    (fun acc (i, j, estimated) ->
      let truth = Datagen.realized_selectivity dataset.Datagen.graph i j in
      Float.max acc (Float.abs (estimated -. truth) /. truth))
    0.0
    (Join_graph.edges t.graph)

(** Statistics collection: derive optimizer inputs from stored data.

    Scans a generated dataset and rebuilds the catalog (true row counts)
    and the join graph (selectivities estimated from per-column
    histograms) — the path a production optimizer takes, where the paper
    simply assumes the numbers are available.  Comparing plans produced
    from collected statistics against plans from the true statistics
    quantifies the estimation loop's fidelity. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Datagen = Blitz_exec.Datagen

type method_ = Distinct_count | Histogram_overlap

type t = {
  catalog : Catalog.t;  (** True row counts (counting is exact). *)
  graph : Join_graph.t;  (** Estimated selectivities. *)
  column_histograms : (int * string, Histogram.t) Hashtbl.t;
      (** Per (relation, column) histogram for all join columns. *)
}

val collect : ?buckets:int -> ?method_:method_ -> Datagen.t -> t
(** [collect dataset] scans every table once ([method_] defaults to
    {!Histogram_overlap}). *)

val max_relative_selectivity_error : t -> Datagen.t -> float
(** Largest relative error of an estimated edge selectivity against the
    dataset's realized selectivity ([0] when the graph has no edges). *)

type bucket = { lo : int; hi : int; count : int; distinct : int }

type t = {
  total : int;
  distinct_total : int;
  lo : int;
  hi : int;
  cells : bucket array;
}

let build ?(buckets = 16) data =
  if Array.length data = 0 then invalid_arg "Histogram.build: empty data";
  if buckets < 1 then invalid_arg "Histogram.build: need at least one bucket";
  let lo = Array.fold_left min data.(0) data in
  let hi = Array.fold_left max data.(0) data in
  let span = hi - lo + 1 in
  let cells_n = min buckets span in
  let width = (span + cells_n - 1) / cells_n in
  let counts = Array.make cells_n 0 in
  let distincts = Array.make cells_n 0 in
  let seen = Hashtbl.create (2 * Array.length data) in
  Array.iter
    (fun v ->
      let b = min (cells_n - 1) ((v - lo) / width) in
      counts.(b) <- counts.(b) + 1;
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        distincts.(b) <- distincts.(b) + 1
      end)
    data;
  let cells =
    Array.init cells_n (fun b ->
        {
          lo = lo + (b * width);
          hi = min hi (lo + ((b + 1) * width) - 1);
          count = counts.(b);
          distinct = distincts.(b);
        })
  in
  { total = Array.length data; distinct_total = Hashtbl.length seen; lo; hi; cells }

let total_count t = t.total
let distinct_count t = t.distinct_total
let buckets t = Array.to_list t.cells
let min_value t = t.lo
let max_value t = t.hi

let pp ppf t =
  Format.fprintf ppf "@[<v>histogram: %d values, %d distinct, range [%d, %d]" t.total
    t.distinct_total t.lo t.hi;
  Array.iter
    (fun (b : bucket) ->
      Format.fprintf ppf "@,  [%d, %d]: count %d, distinct %d" b.lo b.hi b.count b.distinct)
    t.cells;
  Format.fprintf ppf "@]"

type t = {
  names : string array;
  cards : float array;
  by_name : (string, int) Hashtbl.t;
}

let max_relations = 62 (* Relset.max_width; kept literal to avoid a dependency cycle *)

type error =
  | Empty_catalog
  | Too_many_relations of int
  | Empty_relation_name of int
  | Duplicate_relation_name of string
  | Bad_cardinality of { name : string; card : float }

let error_message =
  let fmt x = Blitz_util.Err.format ~scope:"Catalog.of_list" x in
  function
  | Empty_catalog -> fmt "empty catalog"
  | Too_many_relations len -> fmt "%d relations exceed the %d-bit set width" len max_relations
  | Empty_relation_name _ -> fmt "empty relation name"
  | Duplicate_relation_name nm -> fmt "duplicate relation name %S" nm
  | Bad_cardinality { name; card } -> fmt "relation %S has invalid cardinality %g" name card

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

let of_list_result entries =
  let len = List.length entries in
  if len = 0 then Error Empty_catalog
  else if len > max_relations then Error (Too_many_relations len)
  else begin
    let names = Array.make len "" and cards = Array.make len 0.0 in
    let by_name = Hashtbl.create (2 * len) in
    let rec fill i = function
      | [] -> Ok { names; cards; by_name }
      | (nm, cd) :: rest ->
        if nm = "" then Error (Empty_relation_name i)
        else if Hashtbl.mem by_name nm then Error (Duplicate_relation_name nm)
        else if not (Float.is_finite cd) || cd <= 0.0 then
          Error (Bad_cardinality { name = nm; card = cd })
        else begin
          names.(i) <- nm;
          cards.(i) <- cd;
          Hashtbl.add by_name nm i;
          fill (i + 1) rest
        end
    in
    fill 0 entries
  end

let of_list entries = Blitz_util.Err.get_with ~to_message:error_message (of_list_result entries)

let of_cards_result cards =
  of_list_result (Array.to_list (Array.mapi (fun i c -> (Printf.sprintf "R%d" i, c)) cards))

let of_cards cards = Blitz_util.Err.get_with ~to_message:error_message (of_cards_result cards)

let uniform ~n ~card = of_cards (Array.make n card)

let n t = Array.length t.cards

let check_index t i =
  if i < 0 || i >= n t then
    invalid_arg (Printf.sprintf "Catalog: relation index %d outside [0, %d)" i (n t))

let card t i =
  check_index t i;
  t.cards.(i)

let cards t = Array.copy t.cards

let name t i =
  check_index t i;
  t.names.(i)

let names t = Array.copy t.names

let index_of_name t nm = Hashtbl.find_opt t.by_name nm

let geometric_mean_card t = Blitz_util.Stats.geometric_mean t.cards

let variability t =
  let mu = geometric_mean_card t in
  if mu <= 1.0 then 0.0
  else
    let smallest = fst (Blitz_util.Stats.min_max t.cards) in
    1.0 -. (log smallest /. log mu)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i nm ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s: |%s| = %a" nm nm Blitz_util.Float_more.pp_engineering t.cards.(i))
    t.names;
  Format.fprintf ppf "@]"

let equal a b = a.names = b.names && a.cards = b.cards

type t = {
  names : string array;
  cards : float array;
  by_name : (string, int) Hashtbl.t;
}

let max_relations = 62 (* Relset.max_width; kept literal to avoid a dependency cycle *)

let of_list entries =
  let len = List.length entries in
  if len = 0 then invalid_arg "Catalog.of_list: empty catalog";
  if len > max_relations then
    invalid_arg
      (Printf.sprintf "Catalog.of_list: %d relations exceed the %d-bit set width" len
         max_relations);
  let names = Array.make len "" and cards = Array.make len 0.0 in
  let by_name = Hashtbl.create (2 * len) in
  List.iteri
    (fun i (nm, cd) ->
      if nm = "" then invalid_arg "Catalog.of_list: empty relation name";
      if Hashtbl.mem by_name nm then
        invalid_arg (Printf.sprintf "Catalog.of_list: duplicate relation name %S" nm);
      if not (Float.is_finite cd) || cd <= 0.0 then
        invalid_arg
          (Printf.sprintf "Catalog.of_list: relation %S has invalid cardinality %g" nm cd);
      names.(i) <- nm;
      cards.(i) <- cd;
      Hashtbl.add by_name nm i)
    entries;
  { names; cards; by_name }

let of_cards cards =
  of_list (Array.to_list (Array.mapi (fun i c -> (Printf.sprintf "R%d" i, c)) cards))

let uniform ~n ~card = of_cards (Array.make n card)

let n t = Array.length t.cards

let check_index t i =
  if i < 0 || i >= n t then
    invalid_arg (Printf.sprintf "Catalog: relation index %d outside [0, %d)" i (n t))

let card t i =
  check_index t i;
  t.cards.(i)

let cards t = Array.copy t.cards

let name t i =
  check_index t i;
  t.names.(i)

let names t = Array.copy t.names

let index_of_name t nm = Hashtbl.find_opt t.by_name nm

let geometric_mean_card t = Blitz_util.Stats.geometric_mean t.cards

let variability t =
  let mu = geometric_mean_card t in
  if mu <= 1.0 then 0.0
  else
    let smallest = fst (Blitz_util.Stats.min_max t.cards) in
    1.0 -. (log smallest /. log mu)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i nm ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s: |%s| = %a" nm nm Blitz_util.Float_more.pp_engineering t.cards.(i))
    t.names;
  Format.fprintf ppf "@]"

let equal a b = a.names = b.names && a.cards = b.cards

(** Base-relation statistics: the optimizer's input.

    Section 3.1 of the paper: to optimize we need "a cost model and some
    information about A, B, C, and D (e.g., their cardinalities)".  With
    the paper's cost models that information is exactly the cardinality of
    each base relation, held here alongside stable names.

    Relations are identified by dense integer indexes [0 .. n-1]; the
    index is the bit position used by {!Blitz_bitset.Relset}. *)

type t
(** Immutable catalog of [n] relations. *)

(** {1 Construction}

    The [_result] constructors are the primary, non-raising entry
    points: malformed statistics (the kind a production system receives
    from the outside world) come back as a typed {!error}.  The raising
    forms remain for internal callers whose inputs are invariants, and
    raise [Invalid_argument] with exactly {!error_message}. *)

type error =
  | Empty_catalog
  | Too_many_relations of int  (** More relations than the bitset width allows. *)
  | Empty_relation_name of int  (** Index of the offending entry. *)
  | Duplicate_relation_name of string
  | Bad_cardinality of { name : string; card : float }
      (** NaN, infinite, zero or negative cardinality. *)

val error_message : error -> string
(** Human-readable rendering, ["Catalog.of_list: <detail>"]. *)

val pp_error : Format.formatter -> error -> unit

val of_list_result : (string * float) list -> (t, error) result
(** [of_list_result [(name, card); ...]] builds a catalog; indexes follow
    list order.  Reports the first problem found as a typed error. *)

val of_cards_result : float array -> (t, error) result
(** Like {!of_list_result}, naming relations ["R0"], ["R1"], ... like
    the paper's appendix. *)

val of_list : (string * float) list -> t
(** [of_list [(name, card); ...]] builds a catalog; indexes follow list
    order.  Raises [Invalid_argument] on duplicate names, empty input,
    non-finite or non-positive cardinalities, or more relations than the
    bitset width allows. *)

val of_cards : float array -> t
(** [of_cards cards] names relations ["R0"], ["R1"], ... like the
    paper's appendix. *)

val uniform : n:int -> card:float -> t
(** [uniform ~n ~card] is [n] relations of equal cardinality — the
    zero-variability point of the paper's benchmark axis. *)

val n : t -> int
(** Number of relations. *)

val card : t -> int -> float
(** [card t i] is the cardinality of relation [i].  Raises
    [Invalid_argument] on out-of-range indexes. *)

val cards : t -> float array
(** Fresh copy of all cardinalities, index order. *)

val name : t -> int -> string
val names : t -> string array
(** Fresh copy of all names, index order. *)

val index_of_name : t -> string -> int option
(** Reverse lookup. *)

val geometric_mean_card : t -> float
(** The paper's "mean cardinality" axis (appendix): the geometric mean
    [(prod |R_i|)^(1/n)]. *)

val variability : t -> float
(** Recovers the appendix's variability parameter from the data:
    [1 - log |R_0'| / log mu] where [R_0'] is the smallest relation and
    [mu] the geometric mean; [0] when all cardinalities are equal, and by
    convention [0] when [mu <= 1]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

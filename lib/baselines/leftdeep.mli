(** System-R-style dynamic programming over left-deep plans.

    Selinger et al. (1979) restricted the search to left-deep vines —
    every join's right operand is a base relation — and excluded or
    deferred Cartesian products.  The DP state is a relation subset; each
    subset is extended by one relation at a time, for [O(n 2^n)] joins
    enumerated (the count the paper quotes for left-deep search with
    products, Section 2).

    Three product policies capture the design space:
    - {!Allowed}: any extension, products included — the left-deep
      analogue of blitzsplit;
    - {!Deferred}: an extension producing a Cartesian product is
      considered for a subset only when that subset has {e no} connected
      extension — the classic System R heuristic;
    - {!Forbidden}: product extensions are never considered; optimization
      fails on disconnected join graphs. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type product_policy = Allowed | Deferred | Forbidden

type result = {
  plan : Plan.t option;  (** [None] only under {!Forbidden} with a graph
                             whose connected plans cannot cover all
                             relations. *)
  cost : float;  (** [infinity] when [plan] is [None]. *)
  joins_enumerated : int;  (** Extensions considered, [<= n 2^(n-1)]. *)
}

val optimize :
  ?policy:product_policy ->
  ?counters:Blitz_core.Counters.t ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  result
(** [optimize model catalog graph] with [policy] defaulting to
    {!Allowed}.  [counters] records the same nested-[if] tier counts as
    the bushy optimizer, enabling the Section 6.2 comparison: left-deep
    [kappa''] counts fall between [(ln n) 2^n] and [(n/2) 2^n], versus
    the bushy [(ln 2 / 2) n 2^n] to [3^n]. *)

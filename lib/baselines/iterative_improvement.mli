(** Iterative improvement: randomized local descent with restarts.

    The stochastic baseline Steinbrunn's survey (and the paper's
    Section 2) discusses: from a random start plan, sample random
    transformation moves, accept strict improvements, and declare a local
    minimum after a run of consecutive failures; restart from a fresh
    random plan and keep the best local minimum found.  Deterministic
    given the RNG seed. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Rng = Blitz_util.Rng

type stats = {
  plans_evaluated : int;
  restarts_done : int;
  best_found_at_eval : int;  (** Evaluation index at which the returned plan was first reached. *)
}

val optimize :
  rng:Rng.t ->
  ?restarts:int ->
  ?max_consecutive_failures:int ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  (Plan.t * float) * stats
(** [optimize ~rng model catalog graph] with [restarts] random starting
    plans (default 10) and local minima declared after
    [max_consecutive_failures] rejected moves (default [16 * n]). *)

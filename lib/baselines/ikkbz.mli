(** IKKBZ: polynomial-time optimal left-deep ordering for tree queries
    (Ibaraki & Kameda 1984; Krishnamurthy, Boral & Zaniolo 1986).

    The paper's Section 2 discusses [IK84] at length: for {e acyclic}
    join graphs and cost functions with the adjacent-sequence-interchange
    (ASI) property, the optimal left-deep, Cartesian-product-free join
    order is computable in polynomial time — and Cluet & Moerkotte showed
    the problem turns NP-complete again once products are allowed.  This
    module implements the classic algorithm for the canonical ASI cost
    function [C_out] (cost of a join = its output cardinality — the
    paper's naive model [kappa_0]):

    - root the precedence tree at each relation in turn;
    - bottom-up, turn every subtree into a {e rank-sorted chain}: child
      chains merge by ascending rank [(T - 1) / C], and a parent whose
      rank exceeds its first successor's is glued into a compound
      segment (the "contradictory sequence" normalization), since
      precedence forbids reordering them;
    - the best root's chain, expanded, is the optimal ordering.

    Each root costs [O(n log n)] merge work; all roots together
    [O(n^2 log n)] — polynomial, against the exponential DPs.  The
    result is provably optimal among product-free left-deep plans under
    [C_out]; the repository's left-deep DP ({!Leftdeep} with
    [~policy:Forbidden] and the naive model) recomputes the same optimum
    in [O(n 2^n)], which the tests exploit as an oracle. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan

type result = {
  plan : Plan.t;  (** Left-deep, Cartesian-product-free. *)
  order : int list;  (** The join order (first relation outermost). *)
  cost : float;  (** Total [C_out]: sum of all intermediate result sizes. *)
}

val is_tree : Join_graph.t -> bool
(** Connected with exactly [n - 1] edges. *)

val optimize : Catalog.t -> Join_graph.t -> result
(** Raises [Invalid_argument] unless the join graph is a tree (for
    general acyclic = forest inputs, connect components first or fall
    back to the DPs; cyclic graphs are outside IKKBZ's scope). *)

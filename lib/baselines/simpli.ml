module Relset = Blitz_bitset.Relset
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan

(* Structure-only join ordering (Simpli-Squared, arXiv 2111.00163): no
   cardinality or selectivity is ever read, so the output depends only
   on the join graph's shape.  The heuristic builds a left-deep vine:

     1. start from a maximum-degree vertex (hubs first — in a star this
        picks the fact table, the choice that makes every subsequent
        join a predicate join);
     2. repeatedly append the remaining relation with the most edges
        into the current prefix (most-connected-next keeps intermediate
        results predicate-constrained);
     3. when no remaining relation connects to the prefix (disconnected
        join graph), fall back to the highest-degree remaining vertex —
        Cartesian products are taken as late as possible and only when
        forced.

   All ties break toward the lower relation index, so the plan is a
   deterministic function of the graph alone. *)

let order graph =
  let n = Join_graph.n graph in
  if n = 0 then invalid_arg "Simpli.order: empty graph";
  let chosen = Array.make n false in
  let edges_into_prefix = Array.make n 0 in
  let better i j =
    (* Is [i] a strictly better next pick than the incumbent [j]? *)
    let ci = edges_into_prefix.(i) and cj = edges_into_prefix.(j) in
    if ci <> cj then ci > cj
    else
      let di = Join_graph.degree graph i and dj = Join_graph.degree graph j in
      if di <> dj then di > dj else i < j
  in
  let pick () =
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if (not chosen.(i)) && (!best < 0 || better i !best) then best := i
    done;
    !best
  in
  let order = Array.make n 0 in
  for step = 0 to n - 1 do
    let v = pick () in
    order.(step) <- v;
    chosen.(v) <- true;
    Relset.iter
      (fun u -> if not chosen.(u) then edges_into_prefix.(u) <- edges_into_prefix.(u) + 1)
      (Join_graph.neighbors graph v)
  done;
  order

let optimize graph =
  let order = order graph in
  Array.fold_left
    (fun acc v -> match acc with None -> Some (Plan.Leaf v) | Some p -> Some (Plan.Join (p, Plan.Leaf v)))
    None order
  |> Option.get

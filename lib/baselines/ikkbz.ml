module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type result = { plan : Plan.t; order : int list; cost : float }

let is_tree graph =
  let n = Join_graph.n graph in
  Join_graph.edge_count graph = n - 1 && Join_graph.is_connected graph

(* A segment: one or more relations glued into a fixed subsequence, with
   the ASI bookkeeping C (cost) and T (size factor):
     C(s1 s2) = C(s1) + T(s1) C(s2),   T(s1 s2) = T(s1) T(s2). *)
type seg = { rels : int list; c : float; t : float }

let combine a b = { rels = a.rels @ b.rels; c = a.c +. (a.t *. b.c); t = a.t *. b.t }

(* rank(s) = (T(s) - 1) / C(s); segments with C = 0 only arise for the
   root, which never participates in rank comparisons. *)
let rank s = (s.t -. 1.0) /. s.c

(* Merge chains already sorted by ascending rank (precedence within each
   chain is preserved because merging is stable per input). *)
let rec merge_chains a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys ->
    if rank x <= rank y then x :: merge_chains xs (y :: ys) else y :: merge_chains (x :: xs) ys

(* Normalization: the parent segment must precede the chain, so while
   its rank exceeds the first chain element's, glue them ("contradictory
   sequences", IK84). *)
let rec absorb head = function
  | [] -> [ head ]
  | s :: rest -> if rank head > rank s then absorb (combine head s) rest else head :: s :: rest

let optimize catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Ikkbz.optimize: graph/catalog size mismatch";
  if not (is_tree graph) then
    invalid_arg "Ikkbz.optimize: IKKBZ requires a tree join graph (acyclic and connected)";
  if n = 1 then { plan = Plan.Leaf 0; order = [ 0 ]; cost = 0.0 }
  else begin
    (* Solve for one root; returns (order, C_out). *)
    let solve root =
      (* Bottom-up over the precedence tree: chain of the subtree at v,
         v's own segment at the head. *)
      let rec chain_of v parent =
        let children =
          Relset.fold
            (fun acc u -> if u = parent then acc else chain_of u v :: acc)
            []
            (Join_graph.neighbors graph v)
        in
        let merged = List.fold_left merge_chains [] children in
        let t = Join_graph.selectivity graph v parent *. Catalog.card catalog v in
        let self = { rels = [ v ]; c = t; t } in
        absorb self merged
      in
      let children =
        Relset.fold (fun acc u -> chain_of u root :: acc) [] (Join_graph.neighbors graph root)
      in
      let merged = List.fold_left merge_chains [] children in
      let root_seg = { rels = [ root ]; c = 0.0; t = Catalog.card catalog root } in
      (* The root precedes everything by construction; no rank check. *)
      let whole = List.fold_left combine root_seg merged in
      (whole.rels, whole.c)
    in
    let best = ref None in
    for root = 0 to n - 1 do
      let order, cost = solve root in
      match !best with
      | Some (_, best_cost) when best_cost <= cost -> ()
      | Some _ | None -> best := Some (order, cost)
    done;
    match !best with
    | None -> assert false
    | Some (order, cost) ->
      let plan =
        match order with
        | [] -> assert false
        | first :: rest ->
          List.fold_left (fun acc r -> Plan.Join (acc, Plan.Leaf r)) (Plan.Leaf first) rest
      in
      { plan; order; cost }
  end

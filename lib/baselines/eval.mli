(** Fast repeated plan costing against a precomputed cardinality table.

    Stochastic optimizers evaluate thousands of plans over one fixed
    query; recomputing induced-subgraph selectivity products per plan
    would drown the search in estimation cost.  This evaluator pays the
    [O(2^n)] fan-recurrence table once and then costs any plan in
    [O(n)] — using exactly the cardinality estimates the DP optimizers
    use, so cross-method plan-cost comparisons are apples to apples. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type t

val make : Blitz_cost.Cost_model.t -> Catalog.t -> Join_graph.t -> t

val of_cardinality : Cost_model.t -> n:int -> (Relset.t -> float) -> t
(** Evaluator over an arbitrary cardinality function (tabulated over all
    [2^n] subsets up front) — lets the brute-force oracle cost plans
    under non-graph estimators such as equivalence classes.  Raises
    [Invalid_argument] when [n] exceeds the DP-table cap. *)

val n : t -> int
val model : t -> Cost_model.t

val cardinality : t -> Relset.t -> float
(** Estimated join cardinality of a relation subset. *)

val cost : t -> Plan.t -> float
(** Cost of the plan under the evaluator's model (Equations (1)-(2)). *)

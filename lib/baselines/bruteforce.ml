module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

let max_relations = 10

let optimize_subset eval s =
  let plans = Plan.enumerate s in
  match plans with
  | [] -> invalid_arg "Bruteforce.optimize_subset: empty set"
  | first :: rest ->
    List.fold_left
      (fun (bp, bc) p ->
        let c = Eval.cost eval p in
        if c < bc then (p, c) else (bp, bc))
      (first, Eval.cost eval first)
      rest

let check_size catalog =
  let n = Catalog.n catalog in
  if n > max_relations then
    invalid_arg (Printf.sprintf "Bruteforce: %d relations exceed the cap of %d" n max_relations)

let optimize model catalog graph =
  check_size catalog;
  let eval = Eval.make model catalog graph in
  optimize_subset eval (Relset.full (Catalog.n catalog))

let optimize_leftdeep model catalog graph =
  check_size catalog;
  let n = Catalog.n catalog in
  let eval = Eval.make model catalog graph in
  (* Enumerate leaf orders; build the corresponding left-deep vine. *)
  let best_plan = ref None and best_cost = ref Float.infinity in
  let order = Array.init n (fun i -> i) in
  let vine () =
    Array.fold_left
      (fun acc i -> match acc with None -> Some (Plan.Leaf i) | Some p -> Some (Plan.Join (p, Plan.Leaf i)))
      None order
  in
  let consider () =
    match vine () with
    | None -> ()
    | Some p ->
      let c = Eval.cost eval p in
      if c < !best_cost then begin
        best_cost := c;
        best_plan := Some p
      end
  in
  (* Heap's algorithm for permutations. *)
  let rec permute k =
    if k = 1 then consider ()
    else
      for i = 0 to k - 1 do
        permute (k - 1);
        let j = if k land 1 = 0 then i else 0 in
        if i < k - 1 then begin
          let tmp = order.(j) in
          order.(j) <- order.(k - 1);
          order.(k - 1) <- tmp
        end
      done
  in
  permute n;
  match !best_plan with
  | Some p -> (p, !best_cost)
  | None -> invalid_arg "Bruteforce.optimize_leftdeep: empty catalog"

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type stats = {
  groups : int;
  expressions : int;
  rule_applications : int;
  duplicates_suppressed : int;
}

(* A logical expression in group [s] is identified by its left child
   group; the right child is [s lxor lhs]. *)
type memo = {
  exprs : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* group -> set of lhs *)
  listeners : (int, (int * int) list ref) Hashtbl.t;
      (* group -> expressions (s, lhs) whose lhs is this group and which
         must re-fire associativity when the group grows *)
  worklist : (int * int) Queue.t;
  mutable expressions : int;
  mutable rule_applications : int;
  mutable duplicates : int;
}

let group_exprs memo s =
  match Hashtbl.find_opt memo.exprs s with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add memo.exprs s tbl;
    tbl

let listeners_of memo g =
  match Hashtbl.find_opt memo.listeners g with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add memo.listeners g l;
    l

let rec add_expr memo s lhs =
  let tbl = group_exprs memo s in
  if Hashtbl.mem tbl lhs then memo.duplicates <- memo.duplicates + 1
  else begin
    Hashtbl.add tbl lhs ();
    memo.expressions <- memo.expressions + 1;
    Queue.add (s, lhs) memo.worklist;
    (* Late associativity: parents already listening on this group can
       now rotate through the new expression. *)
    List.iter
      (fun (parent_s, parent_lhs) -> fire_assoc memo parent_s parent_lhs lhs)
      !(listeners_of memo s)
  end

(* ((a, b), r) -> (a, (b, r)) where the parent expression is
   (parent_lhs, r) in group parent_s and (a, b) an expression of
   parent_lhs (given by its own lhs = a). *)
and fire_assoc memo parent_s parent_lhs a =
  memo.rule_applications <- memo.rule_applications + 1;
  let b = parent_lhs lxor a in
  let r = parent_s lxor parent_lhs in
  let br = b lor r in
  add_expr memo br b;
  add_expr memo parent_s a

let explore n initial_plan =
  let memo =
    {
      exprs = Hashtbl.create (1 lsl n);
      listeners = Hashtbl.create (1 lsl n);
      worklist = Queue.create ();
      expressions = 0;
      rule_applications = 0;
      duplicates = 0;
    }
  in
  (* Seed with the initial plan's joins. *)
  let rec seed = function
    | Plan.Leaf i -> Relset.singleton i
    | Plan.Join (l, r) ->
      let ls = seed l and rs = seed r in
      add_expr memo (Relset.union ls rs) ls;
      Relset.union ls rs
    | Plan.Multiway { inputs; _ } -> (
      (* The memo is binary: seed an n-ary node as its left-deep
         binarization — the closure rules regenerate the rest. *)
      match inputs with
      | [] -> invalid_arg "Volcano: empty multiway node"
      | first :: rest ->
        List.fold_left
          (fun acc input ->
            let is = seed input in
            let u = Relset.union acc is in
            add_expr memo u acc;
            u)
          (seed first) rest)
  in
  ignore (seed initial_plan);
  (* Closure. *)
  while not (Queue.is_empty memo.worklist) do
    let s, lhs = Queue.pop memo.worklist in
    (* Commutativity. *)
    memo.rule_applications <- memo.rule_applications + 1;
    add_expr memo s (s lxor lhs);
    (* Associativity through every current expression of the left child,
       and subscribe for future ones. *)
    if not (Relset.is_singleton lhs) then begin
      let subscribers = listeners_of memo lhs in
      subscribers := (s, lhs) :: !subscribers;
      Hashtbl.iter (fun a () -> fire_assoc memo s lhs a) (group_exprs memo lhs)
    end
  done;
  memo

let optimize model catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Volcano.optimize: graph/catalog size mismatch";
  let full = Relset.full n in
  if n = 1 then ((Plan.Leaf 0, 0.0), { groups = 1; expressions = 0; rule_applications = 0; duplicates_suppressed = 0 })
  else begin
    let initial =
      List.fold_left
        (fun acc i -> Plan.Join (acc, Plan.Leaf i))
        (Plan.Leaf 0)
        (List.init (n - 1) (fun i -> i + 1))
    in
    let memo = explore n initial in
    (* Bottom-up costing over the memo (groups keyed by subset; all
       proper subsets of a group are smaller integers). *)
    let card = Blitz_core.Card_table.compute catalog graph in
    let slots = 1 lsl n in
    let cost = Array.make slots Float.infinity in
    let best_lhs = Array.make slots 0 in
    for i = 0 to n - 1 do
      cost.(1 lsl i) <- 0.0
    done;
    for s = 3 to slots - 1 do
      if s land (s - 1) <> 0 then begin
        match Hashtbl.find_opt memo.exprs s with
        | None -> ()
        | Some tbl ->
          Hashtbl.iter
            (fun lhs () ->
              let rhs = s lxor lhs in
              if Float.is_finite cost.(lhs) && Float.is_finite cost.(rhs) then begin
                let c =
                  cost.(lhs) +. cost.(rhs)
                  +. Cost_model.kappa model ~out:card.(s) ~lcard:card.(lhs) ~rcard:card.(rhs)
                in
                if c < cost.(s) then begin
                  cost.(s) <- c;
                  best_lhs.(s) <- lhs
                end
              end)
            tbl
      end
    done;
    let rec extract s =
      if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
      else begin
        let l = best_lhs.(s) in
        assert (l <> 0);
        Plan.Join (extract l, extract (s lxor l))
      end
    in
    let groups =
      n + Hashtbl.fold (fun _ tbl acc -> if Hashtbl.length tbl > 0 then acc + 1 else acc) memo.exprs 0
    in
    ( (extract full, cost.(full)),
      {
        groups;
        expressions = memo.expressions;
        rule_applications = memo.rule_applications;
        duplicates_suppressed = memo.duplicates;
      } )
  end

(** Size-driven bushy dynamic programming (Ono & Lohman's Starburst
    enumerator).

    Builds plans for subsets of size [m] by pairing stored subsets of
    sizes [k] and [m - k] and testing disjointness — the enumeration
    strategy whose worst-case complexity is [O(4^n)] even though only
    [O(3^n)] of the considered pairs are actually disjoint (Section 2 of
    the paper).  Included as the baseline enumerator that blitzsplit's
    integer-order subset walk improves upon: both find identical optima
    when products are allowed, but this one inspects many useless pairs.

    With [cartesian = false], pairs spanned by no predicate are skipped
    (joins only), reproducing Starburst's default; disconnected queries
    then have no plan. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type result = {
  plan : Plan.t option;
  cost : float;
  pairs_considered : int;  (** All (size-k, size-(m-k)) pairs inspected — the [O(4^n)] figure. *)
  joins_built : int;  (** Pairs that were disjoint (and connected, if required) and got costed. *)
}

val optimize : ?cartesian:bool -> Cost_model.t -> Catalog.t -> Join_graph.t -> result
(** [cartesian] defaults to [true]. *)

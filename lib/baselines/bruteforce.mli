(** Exhaustive plan enumeration: the correctness oracle.

    Enumerates every unordered bushy plan over the relation set — all
    [(2n-3)!!] of them — and costs each with the shared evaluator.  Used
    by the property tests to certify that blitzsplit (and the baselines
    claiming optimality) return true optima.  Guarded to small [n]: at
    [n = 10] there are already 34,459,425 plans. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

val max_relations : int
(** 10. *)

val optimize : Cost_model.t -> Catalog.t -> Join_graph.t -> Plan.t * float
(** Optimal plan and cost over all catalog relations.  Raises
    [Invalid_argument] beyond {!max_relations}. *)

val optimize_subset : Eval.t -> Relset.t -> Plan.t * float
(** Optimum over a subset, reusing an evaluator. *)

val optimize_leftdeep : Cost_model.t -> Catalog.t -> Join_graph.t -> Plan.t * float
(** Optimum restricted to left-deep plans (all [n!/2] leaf orders) —
    oracle for the left-deep DP baseline. *)

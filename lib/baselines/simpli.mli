(** Estimate-free join ordering (Simpli-Squared).

    Simpli-Squared (arXiv 2111.00163) demonstrates that join orders
    chosen {e without any cardinality estimates} — from the join graph's
    structure alone — are surprisingly competitive.  This module is that
    idea as a baseline: a left-deep vine built hub-first
    (maximum-degree start, then most-edges-into-prefix next, Cartesian
    products only when the graph forces them), with all ties broken
    toward the lower relation index.

    Because it never reads the catalog, its output is immune to
    cardinality-estimate error — the Guard cascade uses it as the
    estimate-free bottom tier that survives catalog corruption
    {!Blitz_guard.Sanitize} can only paper over. *)

module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan

val order : Join_graph.t -> int array
(** The structural join order: a permutation of [0 .. n-1].  Raises
    [Invalid_argument] on an empty graph. *)

val optimize : Join_graph.t -> Plan.t
(** Left-deep plan over {!order}.  Deterministic in the graph's shape;
    cost it under whatever catalog the caller trusts (e.g.
    {!Plan.cost}). *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

type stats = { plans_evaluated : int; uphill_accepted : int; temperature_stages : int }

let optimize ~rng ?initial_temperature ?(cooling = 0.9) ?moves_per_stage
    ?(min_temperature_ratio = 1e-4) model catalog graph =
  if cooling <= 0.0 || cooling >= 1.0 then
    invalid_arg "Simulated_annealing: cooling must lie in (0, 1)";
  let n = Catalog.n catalog in
  let moves_per_stage =
    match moves_per_stage with
    | Some m -> if m < 1 then invalid_arg "Simulated_annealing: moves_per_stage" else m
    | None -> 8 * n * n
  in
  let eval = Eval.make model catalog graph in
  if n = 1 then
    ((Plan.Leaf 0, 0.0), { plans_evaluated = 0; uphill_accepted = 0; temperature_stages = 0 })
  else begin
    let evaluations = ref 0 and uphill = ref 0 and stages = ref 0 in
    let measure plan =
      incr evaluations;
      Eval.cost eval plan
    in
    let current = ref (Transform.random_bushy rng (Relset.full n)) in
    let current_cost = ref (measure !current) in
    let best = ref !current and best_cost = ref !current_cost in
    let temperature =
      ref
        (match initial_temperature with
        | Some t -> if t <= 0.0 then invalid_arg "Simulated_annealing: initial_temperature" else t
        | None -> Float.max 1.0 !current_cost)
    in
    let frozen = ref false in
    while (not !frozen) && !temperature > min_temperature_ratio *. Float.max 1.0 !best_cost do
      incr stages;
      let accepted_this_stage = ref 0 in
      for _ = 1 to moves_per_stage do
        let candidate = Transform.random_neighbor rng !current in
        let cost = measure candidate in
        let delta = cost -. !current_cost in
        let accept =
          if delta <= 0.0 then true
          else begin
            let p = exp (-.delta /. !temperature) in
            let take = Rng.float rng 1.0 < p in
            if take then incr uphill;
            take
          end
        in
        if accept then begin
          incr accepted_this_stage;
          current := candidate;
          current_cost := cost;
          if cost < !best_cost then begin
            best := candidate;
            best_cost := cost
          end
        end
      done;
      if !accepted_this_stage = 0 then frozen := true;
      temperature := !temperature *. cooling
    done;
    ( (!best, !best_cost),
      { plans_evaluated = !evaluations; uphill_accepted = !uphill; temperature_stages = !stages } )
  end

(** Plan-tree transformation moves for stochastic search.

    The classic rule set used by join-order simulated annealing and
    iterative improvement (Ioannidis & Kang 1991; Steinbrunn 1996):
    commutativity, both directions of associativity, and the two join
    exchanges.  Each move rewrites one internal node and preserves the
    leaf set, so every neighbor of a valid plan is a valid plan.  The
    moves generate the whole bushy plan space from any starting plan. *)

module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

type rule =
  | Commute  (** [A x B -> B x A]; always applicable at a join. *)
  | Assoc_left  (** [(A x B) x C -> A x (B x C)]. *)
  | Assoc_right  (** [A x (B x C) -> (A x B) x C]. *)
  | Exchange_left  (** [(A x B) x C -> (A x C) x B]. *)
  | Exchange_right  (** [A x (B x C) -> B x (A x C)]. *)

val all_rules : rule list
val rule_name : rule -> string

val apply_root : rule -> Plan.t -> Plan.t option
(** Apply a rule at the root; [None] when the shape does not match. *)

val apply_at : Plan.t -> path:int list -> rule -> Plan.t option
(** Apply at the node reached by the path (0 = left child, 1 = right);
    [None] when the path or shape does not match. *)

val internal_paths : Plan.t -> int list list
(** Paths to every [Join] node (root first). *)

val neighbors : Plan.t -> Plan.t list
(** All plans one rule application away (may contain duplicates up to
    [Plan.equal]). *)

val random_neighbor : Rng.t -> Plan.t -> Plan.t
(** Uniformly random internal node, uniformly random applicable rule.
    Raises [Invalid_argument] on a bare leaf. *)

(** {1 Random plan generation} *)

val random_bushy : Rng.t -> Relset.t -> Plan.t
(** Random bushy plan: each internal split assigns members to sides by
    fair coin flips (conditioned on both sides being nonempty).  Raises
    [Invalid_argument] on the empty set. *)

val random_leftdeep : Rng.t -> Relset.t -> Plan.t
(** Left-deep vine over a uniformly random leaf order. *)

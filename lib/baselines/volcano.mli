(** Volcano-style transformation-based exhaustive optimization
    (Graefe & McKenna 1993).

    The rule-based comparator of the paper's Section 2: instead of
    enumerating splits directly, Volcano explores an equivalence-class
    {e memo}.  Each group is a relation subset; each logical expression
    is a binary join of two child groups; and the transformation rules

    - commutativity  [(l, r) -> (r, l)]
    - associativity  [((a, b), r) -> (a, (b, r))]

    are applied to closure, materializing every reachable expression
    exactly once (duplicates are detected in the memo).  Both rules
    together generate the complete bushy space from any initial plan, so
    the memo ends up holding, for every subset, every ordered split —
    the same [O(3^n)] expressions blitzsplit iterates, but discovered by
    rule firing with hashing instead of integer counting, and stored
    ([O(3^n)] space, the figure the paper quotes for Volcano, vs.
    blitzsplit's [O(2^n)] table).

    Implementation notes: closure is event-driven (an expression
    re-fires associativity when its left child group later gains new
    expressions), and costing is a bottom-up pass over the finished
    memo. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type stats = {
  groups : int;  (** Equivalence classes materialized (subsets reached). *)
  expressions : int;  (** Distinct logical expressions in the memo. *)
  rule_applications : int;  (** Rule firings attempted. *)
  duplicates_suppressed : int;  (** Firings whose result was already memoized. *)
}

val optimize : Cost_model.t -> Catalog.t -> Join_graph.t -> (Plan.t * float) * stats
(** Explore to closure from an initial left-deep plan, then cost the
    memo.  The optimum always equals blitzsplit's (tested); the [stats]
    show the price of discovering the space by transformation. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type t = { n : int; model : Cost_model.t; card : float array }

let make model catalog graph =
  { n = Catalog.n catalog; model; card = Blitz_core.Card_table.compute catalog graph }

let of_cardinality model ~n cardinality =
  if n < 1 || n > Blitz_core.Dp_table.max_relations then
    invalid_arg "Eval.of_cardinality: n outside the DP-table range";
  let card = Array.make (1 lsl n) 1.0 in
  for s = 1 to (1 lsl n) - 1 do
    card.(s) <- cardinality s
  done;
  { n; model; card }

let n t = t.n
let model t = t.model

let cardinality t s =
  if s <= 0 || s >= Array.length t.card then invalid_arg "Eval.cardinality: set out of range";
  t.card.(s)

let cost t plan =
  let card = t.card and model = t.model in
  let rec go = function
    | Plan.Leaf i ->
      if i < 0 || i >= t.n then invalid_arg "Eval.cost: leaf outside catalog";
      (0.0, 1 lsl i)
    | Plan.Join (l, r) ->
      let lcost, ls = go l in
      let rcost, rs = go r in
      if ls land rs <> 0 then invalid_arg "Eval.cost: operands share a relation";
      let s = ls lor rs in
      ( lcost +. rcost
        +. Cost_model.kappa model ~out:card.(s) ~lcard:card.(ls) ~rcard:card.(rs),
        s )
    | Plan.Multiway { inputs; _ } ->
      (* The cardinality-table view has no join graph to re-solve an AGM
         bound from; cost the node with an unbounded AGM, i.e. build
         plus max(out, largest input) — the estimate-side cap alone. *)
      let in_cost, cards, s =
        List.fold_left
          (fun (c, cards, acc) input ->
            let ci, si = go input in
            if acc land si <> 0 then invalid_arg "Eval.cost: operands share a relation";
            (c +. ci, card.(si) :: cards, acc lor si))
          (0.0, [], 0) inputs
      in
      ( in_cost
        +. Blitz_cost.Agm.kappa_multiway ~inputs:cards ~out:card.(s) ~agm:Float.infinity,
        s )
  in
  fst (go plan)

(** DPccp: dynamic programming over connected-subgraph /
    connected-complement pairs (Moerkotte & Neumann, VLDB 2006).

    The modern descendant of the enumeration problem this paper opened:
    where blitzsplit iterates [3^n] splits regardless of the join graph
    and lets cost pruning discover the topology ("in a sense it
    'discovers' the join-graph topology", Section 7), DPccp generates
    {e exactly} the connected pairs — [(n^3 - n)/6] for chains,
    [(n-1) 2^(n-2)] for stars, [(3^n - 2^(n+1) + 1)/2] for cliques —
    with no wasted iterations, at the price of excluding Cartesian
    products and of a much more intricate enumerator.

    Included as a baseline so the repository can quantify that trade-off
    (experiment "compare"): per-pair overhead and product-exclusion
    plan-quality risk versus blitzsplit's raw split loop. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

val iter_ccp : Join_graph.t -> (Relset.t -> Relset.t -> unit) -> unit
(** Drive the raw enumerator: the callback sees every unordered csg-cmp
    pair exactly once (disjoint, individually connected, and joined by
    at least one predicate).  Exposed for validation and for building
    other enumeration-based optimizers on top. *)

val csg_count : Join_graph.t -> int
(** Number of connected subgraphs (for enumerator validation). *)

val ccp_count : Join_graph.t -> int
(** Number of csg-cmp pairs, counted unordered. *)

type result = {
  plan : Plan.t option;  (** [None] when the join graph is disconnected. *)
  cost : float;
  ccp_pairs : int;  (** Unordered connected pairs enumerated — every one
                        produces a costed join; there is no rejection. *)
}

val optimize : Cost_model.t -> Catalog.t -> Join_graph.t -> result
(** Optimal bushy plan without Cartesian products.  Matches
    [Dpsize.optimize ~cartesian:false] on every input (tested), while
    enumerating only valid pairs. *)

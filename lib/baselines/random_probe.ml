module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

let optimize ~rng ~samples model catalog graph =
  if samples < 1 then invalid_arg "Random_probe.optimize: samples must be positive";
  let n = Catalog.n catalog in
  let eval = Eval.make model catalog graph in
  if n = 1 then (Plan.Leaf 0, 0.0)
  else begin
    let full = Relset.full n in
    let best = ref (Transform.random_bushy rng full) in
    let best_cost = ref (Eval.cost eval !best) in
    for _ = 2 to samples do
      let candidate = Transform.random_bushy rng full in
      let cost = Eval.cost eval candidate in
      if cost < !best_cost then begin
        best := candidate;
        best_cost := cost
      end
    done;
    (!best, !best_cost)
  end

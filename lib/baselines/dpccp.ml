module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

(* Neighborhood of a set, excluding the set itself and the forbidden
   set x. *)
let neighborhood graph s x =
  let nb = Relset.fold (fun acc i -> Relset.union acc (Join_graph.neighbors graph i)) Relset.empty s in
  Relset.diff nb (Relset.union s x)

let iter_nonempty_subsets f s =
  Relset.iter_proper_subsets f s;
  if not (Relset.is_empty s) then f s

(* EnumerateCsgRec: grow the connected set [s] by nonempty subsets of
   its free neighborhood, emitting each enlargement, then recurse with
   the whole neighborhood forbidden (so each connected set is produced
   exactly once). *)
let rec enumerate_csg_rec graph emit s x =
  let n = neighborhood graph s x in
  if not (Relset.is_empty n) then begin
    iter_nonempty_subsets (fun s' -> emit (Relset.union s s')) n;
    let x' = Relset.union x n in
    iter_nonempty_subsets (fun s' -> enumerate_csg_rec graph emit (Relset.union s s') x') n
  end

(* EnumerateCsg: every connected subgraph, each exactly once.  B_i is
   the prefix {0..i}; starting from the largest index with smaller
   indexes forbidden canonicalizes the enumeration. *)
let enumerate_csg graph emit =
  let n = Join_graph.n graph in
  for i = n - 1 downto 0 do
    let s = Relset.singleton i in
    emit s;
    enumerate_csg_rec graph emit s (Relset.full (i + 1))
  done

(* EnumerateCmp: connected subgraphs of the complement that are
   adjacent to s1 and canonically ordered (min element above min s1). *)
let enumerate_cmp graph emit s1 =
  let x = Relset.union (Relset.full (Relset.min_elt s1 + 1)) s1 in
  let nb = neighborhood graph s1 x in
  let members = List.rev (Relset.to_list nb) in
  List.iter
    (fun i ->
      let s = Relset.singleton i in
      emit s;
      let bi = Relset.inter (Relset.full (i + 1)) nb in
      enumerate_csg_rec graph emit s (Relset.union x bi))
    members

let iter_ccp graph f =
  enumerate_csg graph (fun s1 -> enumerate_cmp graph (fun s2 -> f s1 s2) s1)

let csg_count graph =
  let count = ref 0 in
  enumerate_csg graph (fun _ -> incr count);
  !count

let ccp_count graph =
  let count = ref 0 in
  iter_ccp graph (fun _ _ -> incr count);
  !count

type result = { plan : Plan.t option; cost : float; ccp_pairs : int }

let optimize model catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Dpccp.optimize: graph/catalog size mismatch";
  let card = Blitz_core.Card_table.compute catalog graph in
  let slots = 1 lsl n in
  let cost = Array.make slots Float.infinity in
  let best_lhs = Array.make slots 0 in
  for i = 0 to n - 1 do
    cost.(1 lsl i) <- 0.0
  done;
  (* Collect pairs, then process smallest-combined-size first so both
     components' optima exist when a pair is costed. *)
  let pairs = ref [] and count = ref 0 in
  iter_ccp graph (fun s1 s2 ->
      incr count;
      pairs := (Relset.cardinal s1 + Relset.cardinal s2, s1, s2) :: !pairs);
  let ordered = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !pairs in
  List.iter
    (fun (_, s1, s2) ->
      let s = Relset.union s1 s2 in
      let c =
        cost.(s1) +. cost.(s2)
        +. Cost_model.kappa model ~out:card.(s) ~lcard:card.(s1) ~rcard:card.(s2)
      in
      if c < cost.(s) then begin
        cost.(s) <- c;
        best_lhs.(s) <- s1
      end)
    ordered;
  let full = slots - 1 in
  let rec extract s =
    if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
    else begin
      let l = best_lhs.(s) in
      assert (l <> 0);
      Plan.Join (extract l, extract (s lxor l))
    end
  in
  if n = 1 then { plan = Some (Plan.Leaf 0); cost = 0.0; ccp_pairs = 0 }
  else if Float.is_finite cost.(full) then
    { plan = Some (extract full); cost = cost.(full); ccp_pairs = !count }
  else { plan = None; cost = Float.infinity; ccp_pairs = !count }

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type strategy = Min_result_card | Min_cost_increase

type component = { plan : Plan.t; set : int; card : float }

(* Cardinalities are maintained incrementally via Equation (7):
   card(a ∪ b) = card(a) * card(b) * pi_span(a, b) — no 2^n table, so
   greedy scales to any number of relations. *)
let optimize ?(strategy = Min_result_card) model catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Greedy.optimize: graph/catalog size mismatch";
  let components =
    ref
      (List.init n (fun i ->
           { plan = Plan.Leaf i; set = 1 lsl i; card = Catalog.card catalog i }))
  in
  let total_cost = ref 0.0 in
  let merge_score a b =
    let out = a.card *. b.card *. Join_graph.pi_span graph a.set b.set in
    let join_cost = Cost_model.kappa model ~out ~lcard:a.card ~rcard:b.card in
    let score = match strategy with Min_result_card -> out | Min_cost_increase -> join_cost in
    (score, out, join_cost)
  in
  while List.length !components > 1 do
    let best = ref None in
    let rec scan = function
      | [] | [ _ ] -> ()
      | a :: rest ->
        List.iter
          (fun b ->
            let score, out, join_cost = merge_score a b in
            match !best with
            | Some (s, _, _, _, _) when s <= score -> ()
            | Some _ | None -> best := Some (score, a, b, out, join_cost))
          rest;
        scan rest
    in
    scan !components;
    match !best with
    | None -> assert false
    | Some (_, a, b, out, join_cost) ->
      total_cost := !total_cost +. join_cost;
      let merged = { plan = Plan.Join (a.plan, b.plan); set = a.set lor b.set; card = out } in
      components := merged :: List.filter (fun c -> c.set <> a.set && c.set <> b.set) !components
  done;
  match !components with
  | [ c ] -> (c.plan, !total_cost)
  | [] | _ :: _ -> assert false

(** Simulated annealing over bushy join plans.

    The second classic stochastic baseline (Section 2 / Steinbrunn):
    random moves are always accepted when they improve the plan and with
    probability [exp(-delta / temperature)] otherwise; the temperature
    follows a geometric cooling schedule.  Deterministic given the RNG
    seed. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Rng = Blitz_util.Rng

type stats = { plans_evaluated : int; uphill_accepted : int; temperature_stages : int }

val optimize :
  rng:Rng.t ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?moves_per_stage:int ->
  ?min_temperature_ratio:float ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  (Plan.t * float) * stats
(** [optimize ~rng model catalog graph]: starts from a random bushy plan;
    [initial_temperature] defaults to the starting plan's cost (so early
    uphill moves are likely); each stage performs [moves_per_stage]
    (default [8 * n^2]) proposals before multiplying the temperature by
    [cooling] (default 0.9); annealing stops once the temperature falls
    below [min_temperature_ratio] (default 1e-4) times the best cost
    seen, or the system freezes.  Returns the best plan encountered. *)

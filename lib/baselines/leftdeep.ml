module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Counters = Blitz_core.Counters

type product_policy = Allowed | Deferred | Forbidden

type result = { plan : Plan.t option; cost : float; joins_enumerated : int }

let optimize ?(policy = Allowed) ?counters model catalog graph =
  let n = Catalog.n catalog in
  let card = Blitz_core.Card_table.compute catalog graph in
  let slots = 1 lsl n in
  let cost = Array.make slots Float.infinity in
  let last = Array.make slots (-1) in
  (* Adjacency masks for connectivity-of-extension checks. *)
  let nbr = Array.init n (fun i -> Join_graph.neighbors graph i) in
  for i = 0 to n - 1 do
    cost.(1 lsl i) <- 0.0
  done;
  let ctr = match counters with Some c -> c | None -> Counters.create () in
  ctr.Counters.passes <- ctr.Counters.passes + 1;
  let joins = ref 0 in
  let k_prime = model.Cost_model.k_prime
  and k_dprime = model.Cost_model.k_dprime
  and dprime_is_zero = model.Cost_model.dprime_is_zero
  and aux = model.Cost_model.aux in
  for s = 3 to slots - 1 do
    if s land (s - 1) <> 0 then begin
      ctr.Counters.subsets <- ctr.Counters.subsets + 1;
      let out = card.(s) in
      (* kappa' is split-independent: hoisted out of the extension loop,
         exactly as in the bushy optimizer (Section 3.2). *)
      let kp = k_prime out in
      let best_cost_so_far = ref Float.infinity in
      let best_r = ref (-1) in
      let consider allow_product =
        Relset.iter
          (fun r ->
            ctr.Counters.loop_iters <- ctr.Counters.loop_iters + 1;
            let prev = s lxor (1 lsl r) in
            let cl = cost.(prev) in
            (* Nested-if tiers mirroring find_best_split: operand cost
               first, kappa'' only when still competitive. *)
            if cl < !best_cost_so_far then begin
              let connected = not (Relset.disjoint nbr.(r) prev) in
              if connected || allow_product then begin
                incr joins;
                ctr.Counters.operand_sums <- ctr.Counters.operand_sums + 1;
                let dpnd =
                  if dprime_is_zero then cl
                  else begin
                    ctr.Counters.dprime_evals <- ctr.Counters.dprime_evals + 1;
                    let rcard = card.(1 lsl r) in
                    cl
                    +. k_dprime ~out ~lcard:card.(prev) ~rcard ~laux:(aux card.(prev))
                         ~raux:(aux rcard)
                  end
                in
                if dpnd < !best_cost_so_far then begin
                  ctr.Counters.improvements <- ctr.Counters.improvements + 1;
                  best_cost_so_far := dpnd;
                  best_r := r
                end
              end
            end)
          s
      in
      (match policy with
      | Allowed -> consider true
      | Forbidden -> consider false
      | Deferred ->
        consider false;
        (* Only when no connected extension produced a plan do we fall
           back to Cartesian-product extensions for this subset. *)
        if !best_r < 0 then consider true);
      if !best_r >= 0 then begin
        cost.(s) <- !best_cost_so_far +. kp;
        last.(s) <- !best_r
      end
      else ctr.Counters.infeasible <- ctr.Counters.infeasible + 1
    end
  done;
  let full = slots - 1 in
  let rec extract s =
    if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
    else begin
      let r = last.(s) in
      assert (r >= 0);
      Plan.Join (extract (s lxor (1 lsl r)), Plan.Leaf r)
    end
  in
  if n = 1 then { plan = Some (Plan.Leaf 0); cost = 0.0; joins_enumerated = 0 }
  else if Float.is_finite cost.(full) then
    { plan = Some (extract full); cost = cost.(full); joins_enumerated = !joins }
  else { plan = None; cost = Float.infinity; joins_enumerated = !joins }

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

type stats = { plans_evaluated : int; restarts_done : int; best_found_at_eval : int }

let optimize ~rng ?(restarts = 10) ?max_consecutive_failures model catalog graph =
  let n = Catalog.n catalog in
  if restarts < 1 then invalid_arg "Iterative_improvement: restarts must be positive";
  let patience = match max_consecutive_failures with Some p -> p | None -> 16 * n in
  let eval = Eval.make model catalog graph in
  let full = Relset.full n in
  let evaluations = ref 0 in
  let measure plan =
    incr evaluations;
    Eval.cost eval plan
  in
  let best_plan = ref (Plan.Leaf 0) and best_cost = ref Float.infinity and best_at = ref 0 in
  let remember plan cost =
    if cost < !best_cost then begin
      best_plan := plan;
      best_cost := cost;
      best_at := !evaluations
    end
  in
  if n = 1 then ((Plan.Leaf 0, 0.0), { plans_evaluated = 0; restarts_done = 0; best_found_at_eval = 0 })
  else begin
    for _restart = 1 to restarts do
      let current = ref (Transform.random_bushy rng full) in
      let current_cost = ref (measure !current) in
      remember !current !current_cost;
      let failures = ref 0 in
      while !failures < patience do
        let candidate = Transform.random_neighbor rng !current in
        let cost = measure candidate in
        if cost < !current_cost then begin
          current := candidate;
          current_cost := cost;
          failures := 0;
          remember candidate cost
        end
        else incr failures
      done
    done;
    ( (!best_plan, !best_cost),
      { plans_evaluated = !evaluations; restarts_done = restarts; best_found_at_eval = !best_at } )
  end

module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

type rule = Commute | Assoc_left | Assoc_right | Exchange_left | Exchange_right

let all_rules = [ Commute; Assoc_left; Assoc_right; Exchange_left; Exchange_right ]

let rule_name = function
  | Commute -> "commute"
  | Assoc_left -> "assoc-left"
  | Assoc_right -> "assoc-right"
  | Exchange_left -> "exchange-left"
  | Exchange_right -> "exchange-right"

let apply_root rule plan =
  match (rule, plan) with
  | Commute, Plan.Join (a, b) -> Some (Plan.Join (b, a))
  | Assoc_left, Plan.Join (Plan.Join (a, b), c) -> Some (Plan.Join (a, Plan.Join (b, c)))
  | Assoc_right, Plan.Join (a, Plan.Join (b, c)) -> Some (Plan.Join (Plan.Join (a, b), c))
  | Exchange_left, Plan.Join (Plan.Join (a, b), c) -> Some (Plan.Join (Plan.Join (a, c), b))
  | Exchange_right, Plan.Join (a, Plan.Join (b, c)) -> Some (Plan.Join (b, Plan.Join (a, c)))
  | (Commute | Assoc_left | Assoc_right | Exchange_left | Exchange_right), _ -> None

let rec apply_at plan ~path rule =
  match path with
  | [] -> apply_root rule plan
  | dir :: rest -> (
    match plan with
    (* Multiway nodes are opaque to the binary rewrite rules. *)
    | Plan.Leaf _ | Plan.Multiway _ -> None
    | Plan.Join (l, r) ->
      if dir = 0 then
        match apply_at l ~path:rest rule with
        | Some l' -> Some (Plan.Join (l', r))
        | None -> None
      else
        match apply_at r ~path:rest rule with
        | Some r' -> Some (Plan.Join (l, r'))
        | None -> None)

let internal_paths plan =
  let acc = ref [] in
  let rec go rev_path = function
    | Plan.Leaf _ | Plan.Multiway _ -> ()
    | Plan.Join (l, r) ->
      acc := List.rev rev_path :: !acc;
      go (0 :: rev_path) l;
      go (1 :: rev_path) r
  in
  go [] plan;
  List.rev !acc

let neighbors plan =
  List.concat_map
    (fun path -> List.filter_map (fun rule -> apply_at plan ~path rule) all_rules)
    (internal_paths plan)

let random_neighbor rng plan =
  let paths = Array.of_list (internal_paths plan) in
  if Array.length paths = 0 then invalid_arg "Transform.random_neighbor: plan has no joins";
  let path = Rng.pick rng paths in
  let applicable =
    Array.of_list (List.filter_map (fun rule -> apply_at plan ~path rule) all_rules)
  in
  (* Commute always applies, so the list is never empty. *)
  Rng.pick rng applicable

let random_bushy rng s =
  if Relset.is_empty s then invalid_arg "Transform.random_bushy: empty set";
  let rec go s =
    if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
    else begin
      let rec split () =
        let lhs = Relset.fold (fun acc i -> if Rng.bool rng then Relset.add acc i else acc) Relset.empty s in
        if Relset.is_empty lhs || Relset.equal lhs s then split () else lhs
      in
      let lhs = split () in
      Plan.Join (go lhs, go (Relset.diff s lhs))
    end
  in
  go s

let random_leftdeep rng s =
  if Relset.is_empty s then invalid_arg "Transform.random_leftdeep: empty set";
  let order = Array.of_list (Relset.to_list s) in
  Rng.shuffle rng order;
  let acc = ref (Plan.Leaf order.(0)) in
  for i = 1 to Array.length order - 1 do
    acc := Plan.Join (!acc, Plan.Leaf order.(i))
  done;
  !acc

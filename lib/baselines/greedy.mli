(** Greedy bottom-up join-order heuristic (GOO-style).

    Maintains a forest that starts as [n] single-relation components and
    repeatedly merges the pair optimizing a local criterion until one tree
    remains: [O(n^3)] work, no optimality guarantee.  Serves as the cheap
    heuristic endpoint of the method-comparison experiment and as the
    starting point for the stochastic searches. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan

type strategy =
  | Min_result_card  (** Merge the pair with the smallest output cardinality. *)
  | Min_cost_increase  (** Merge the pair whose join adds the least model cost. *)

val optimize : ?strategy:strategy -> Cost_model.t -> Catalog.t -> Join_graph.t -> Plan.t * float
(** Returns the greedy plan and its cost under the model
    ([strategy] defaults to {!Min_result_card}).  Cardinalities are
    maintained incrementally through the span recurrence (Equation 7),
    so this works for any [n] — no [2^n] table. *)

(** Transformation-free random probing of the plan space.

    Galindo-Legaria, Pellenkoft & Kersten (1994) argued for sampling plan
    points directly instead of walking between neighbors (Section 2 of
    the paper).  This baseline draws independent random bushy plans,
    costs each, and keeps the best — the simplest possible probe-style
    optimizer, useful as a floor for the stochastic comparison. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Rng = Blitz_util.Rng

val optimize :
  rng:Rng.t -> samples:int -> Cost_model.t -> Catalog.t -> Join_graph.t -> Plan.t * float
(** Best of [samples] independent random bushy plans.  Raises
    [Invalid_argument] when [samples < 1]. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type result = { plan : Plan.t option; cost : float; pairs_considered : int; joins_built : int }

let optimize ?(cartesian = true) model catalog graph =
  let n = Catalog.n catalog in
  let card = Blitz_core.Card_table.compute catalog graph in
  let slots = 1 lsl n in
  let cost = Array.make slots Float.infinity in
  let best_lhs = Array.make slots 0 in
  for i = 0 to n - 1 do
    cost.(1 lsl i) <- 0.0
  done;
  (* Bucket the subsets by size once. *)
  let by_size = Array.make (n + 1) [] in
  for size = 1 to n do
    let bucket = ref [] in
    Relset.iter_subsets_of_size ~n ~k:size (fun s -> bucket := s :: !bucket);
    by_size.(size) <- List.rev !bucket
  done;
  let pairs = ref 0 and joins = ref 0 in
  for m = 2 to n do
    for k = 1 to m / 2 do
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              (* When k = m - k the same unordered pair shows up twice
                 (once per orientation); keep s1 < s2 to halve it, as a
                 real implementation would. *)
              if k < m - k || s1 < s2 then begin
                incr pairs;
                if
                  s1 land s2 = 0
                  && Float.is_finite cost.(s1)
                  && Float.is_finite cost.(s2)
                  && (cartesian || Join_graph.crosses graph s1 s2)
                then begin
                  incr joins;
                  let s = s1 lor s2 in
                  let c =
                    cost.(s1) +. cost.(s2)
                    +. Cost_model.kappa model ~out:card.(s) ~lcard:card.(s1) ~rcard:card.(s2)
                  in
                  if c < cost.(s) then begin
                    cost.(s) <- c;
                    best_lhs.(s) <- s1
                  end
                end
              end)
            by_size.(m - k))
        by_size.(k)
    done
  done;
  let full = slots - 1 in
  let rec extract s =
    if Relset.is_singleton s then Plan.Leaf (Relset.min_elt s)
    else begin
      let l = best_lhs.(s) in
      assert (l <> 0);
      Plan.Join (extract l, extract (s lxor l))
    end
  in
  if n = 1 then { plan = Some (Plan.Leaf 0); cost = 0.0; pairs_considered = 0; joins_built = 0 }
  else if Float.is_finite cost.(full) then
    { plan = Some (extract full); cost = cost.(full); pairs_considered = !pairs; joins_built = !joins }
  else { plan = None; cost = Float.infinity; pairs_considered = !pairs; joins_built = !joins }

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Rng = Blitz_util.Rng

type mode = Lognormal | Adversarial

let mode_name = function Lognormal -> "lognormal" | Adversarial -> "adversarial"

let mode_of_string = function
  | "lognormal" -> Ok Lognormal
  | "adversarial" -> Ok Adversarial
  | s -> Error (Printf.sprintf "unknown noise mode %S (expected lognormal or adversarial)" s)

(* Both the catalog and the join-graph constructors demand positive
   finite numbers; the clamps keep any level's output constructible
   without ever firing at the levels the harness sweeps (a few decades
   around real statistics). *)
let clamp_card c = Float.max 1e-6 (Float.min 1e30 c)
let clamp_sel s = Float.max 1e-30 s (* above-one handled by `Clamp *)

(* One multiplicative error draw.  Lognormal: 10^(level * N(0,1)), the
   standard model for cardinality-estimate error measured in orders of
   magnitude (level = the standard deviation in decades).  Adversarial:
   the band edge 10^(+-level), each direction a fair coin — the worst
   case a bounded estimator can be wrong by. *)
let factor mode level rng =
  match mode with
  | Lognormal -> Float.pow 10.0 (level *. Rng.gaussian rng)
  | Adversarial -> Float.pow 10.0 (if Rng.bool rng then level else -.level)

let perturb ~mode ~level ~seed catalog graph =
  if not (Float.is_finite level) || level < 0.0 then
    invalid_arg "Noise.perturb: level must be finite and >= 0";
  let rng = Rng.create ~seed in
  let names = Catalog.names catalog in
  let cards = Catalog.cards catalog in
  (* Draw order is fixed — cards by index, then edges in the graph's
     canonical (i < j) lexicographic order — so equal seeds perturb
     equal inputs identically, element for element. *)
  let relations =
    Array.to_list
      (Array.mapi (fun i name -> (name, clamp_card (cards.(i) *. factor mode level rng))) names)
  in
  let edges =
    List.map
      (fun (i, j, sel) -> (i, j, clamp_sel (sel *. factor mode level rng)))
      (Join_graph.edges graph)
  in
  (Catalog.of_list relations, Join_graph.of_edges ~above_one:`Clamp ~n:(Array.length names) edges)

(** The cardinality-error regret harness.

    How much does a wrong catalog cost?  For each registry optimizer,
    topology and error level, the harness runs the optimizer on a
    {!Noise}-perturbed catalog, then re-costs the plan it chose under
    the {e true} statistics; regret is that true cost over the true
    optimal cost (= 1 for a perfectly robust choice).  Exact methods
    have regret exactly 1 at level 0 and degrade as error grows; the
    estimate-free [simpli-squared] tier is noise-invariant by
    construction — its regret is a flat line, the price it pays for
    reading nothing.

    Every optimizer at a given (topology, level, seed) point sees the
    {e same} perturbed catalog, so comparisons are paired; the whole
    sweep is deterministic in its seed list and independent of domain
    count (the harness runs sequentially, and the DP tiers are
    bit-identical rank-parallel anyway).  Each sample is also observed
    into the [blitz_regret_ratio] histogram, labelled per optimizer. *)

module Cost_model = Blitz_cost.Cost_model
module Topology = Blitz_graph.Topology
module Json = Blitz_util.Json

type summary = {
  samples : int;
  min : float;
  mean : float;
  p50 : float;  (** Nearest-rank quantiles over the seed samples. *)
  p90 : float;
  max : float;
}

type cell = {
  optimizer : string;
  topology : string;
  level : float;
  regrets : float array;  (** Ascending; one sample per seed. *)
  summary : summary;
}

type report = {
  n : int;
  model_name : string;
  mode : Noise.mode;
  mean_card : float;
  variability : float;
  levels : float list;
  seeds : int list;
  optimizers : string list;
  topologies : string list;
  optima : (string * float) list;  (** Per topology: the true optimal cost. *)
  cells : cell list;  (** Topology-major, then level, then optimizer. *)
}

val default_optimizers : unit -> string list
(** Every registry optimizer except the [bruteforce] oracle. *)

val run :
  ?mode:Noise.mode ->
  ?optimizers:string list ->
  ?topologies:Topology.t list ->
  ?levels:float list ->
  ?seeds:int list ->
  ?mean_card:float ->
  ?variability:float ->
  ?multiway:bool ->
  n:int ->
  Cost_model.t ->
  report
(** Sweep the grid.  Defaults: lognormal noise, all registry
    optimizers but [bruteforce], the paper's four topologies, levels
    [0, 0.5, 1, 2] (decades of error), seeds 1-5, [mean_card] 1000,
    [variability] 1/3.  Optimizers whose caps rule the problem out
    ([max_n], [tree_only]) are skipped, not failed.  [multiway] lets
    capable optimizers plan n-ary nodes against the perturbed numbers;
    regret is still judged by re-costing under the true catalog, where
    [Plan.cost] re-solves each multiway node's AGM bound from the true
    statistics.  Deterministic: equal arguments produce equal reports.
    Raises [Invalid_argument] on empty [levels]/[seeds]/[topologies] or
    a [Workload.spec] rejection. *)

val report_to_json : report -> Json.t
val pp : Format.formatter -> report -> unit
(** Mean-regret table per topology (optimizer rows, level columns). *)

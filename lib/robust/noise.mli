(** Seeded multiplicative error models for optimizer statistics.

    The paper's Section 6 methodology hands the optimizer {e true}
    cardinalities and selectivities; production optimizers live on
    estimates that are wrong by orders of magnitude.  This module
    manufactures that condition deterministically: every cardinality
    and selectivity is multiplied by an error factor drawn from a
    SplitMix64-seeded stream, so a regret measurement is reproducible
    from [(mode, level, seed)] alone. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph

type mode =
  | Lognormal
      (** Factor [10^(level * g)], [g ~ N(0,1)]: estimate error
          measured in decades, the standard model.  [level] is the
          standard deviation in orders of magnitude. *)
  | Adversarial
      (** Factor [10^(+-level)], direction by fair coin: the edge of
          the error band a bounded estimator can reach. *)

val mode_name : mode -> string
val mode_of_string : string -> (mode, string) result

val perturb :
  mode:mode -> level:float -> seed:int -> Catalog.t -> Join_graph.t -> Catalog.t * Join_graph.t
(** Perturb every cardinality and selectivity.  Deterministic: equal
    [(mode, level, seed)] on equal inputs yield byte-identical outputs
    (draws run cards-by-index then edges in the graph's canonical
    order).  [level = 0] is the identity (factor exactly 1).  Outputs
    are clamped into constructible ranges (positive finite cards,
    selectivities clamped above 1 to 1 by the graph's [`Clamp]
    policy).  Raises [Invalid_argument] on a negative or non-finite
    [level]. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Topology = Blitz_graph.Topology
module Workload = Blitz_workload.Workload
module Registry = Blitz_engine.Registry
module B = Blitz_baselines
module Obs = Blitz_obs.Obs
module Json = Blitz_util.Json

type summary = { samples : int; min : float; mean : float; p50 : float; p90 : float; max : float }

type cell = {
  optimizer : string;
  topology : string;
  level : float;
  regrets : float array;  (* ascending *)
  summary : summary;
}

type report = {
  n : int;
  model_name : string;
  mode : Noise.mode;
  mean_card : float;
  variability : float;
  levels : float list;
  seeds : int list;
  optimizers : string list;
  topologies : string list;
  optima : (string * float) list;  (* topology -> true optimal cost *)
  cells : cell list;
}

(* Nearest-rank on a sorted sample; exact quantile machinery would be
   false precision at a handful of seeds per cell. *)
let quantile sorted q =
  let m = Array.length sorted in
  if m = 0 then Float.nan
  else sorted.(min (m - 1) (int_of_float ((float_of_int (m - 1) *. q) +. 0.5)))

let summarize regrets =
  let m = Array.length regrets in
  if m = 0 then { samples = 0; min = nan; mean = nan; p50 = nan; p90 = nan; max = nan }
  else
    {
      samples = m;
      min = regrets.(0);
      mean = Array.fold_left ( +. ) 0.0 regrets /. float_of_int m;
      p50 = quantile regrets 0.5;
      p90 = quantile regrets 0.9;
      max = regrets.(m - 1);
    }

(* The regret distribution as a process metric, labelled per optimizer:
   a serving stack alerting on estimate-error damage watches this. *)
let m_regret name =
  Obs.Metrics.histogram ~help:"Plan-cost regret (chosen/optimal) under perturbed statistics"
    ~labels:[ ("optimizer", name) ]
    "blitz_regret_ratio"

(* A stable arithmetic mix so every (topology, level, base-seed) point
   draws an independent — and reproducible — noise stream.  Every
   optimizer at the point sees the *same* perturbed catalog: regret
   comparisons are paired. *)
let derive_seed ~seed ~topology_index ~level_index =
  (seed * 1000003) + (topology_index * 8191) + (level_index * 127) + 1

(* Excluding only the correctness oracle: [bruteforce] enumerates every
   bushy plan and exists for tiny-n tests, not for sweeps. *)
let default_optimizers () = List.filter (fun n -> n <> "bruteforce") (Registry.names ())

let run ?(mode = Noise.Lognormal) ?optimizers ?(topologies = Topology.all_paper)
    ?(levels = [ 0.0; 0.5; 1.0; 2.0 ]) ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(mean_card = 1000.0)
    ?(variability = 1.0 /. 3.0) ?multiway ~n model =
  if levels = [] || seeds = [] || topologies = [] then
    invalid_arg "Regret.run: levels, seeds and topologies must be non-empty";
  let optimizers = match optimizers with Some o -> o | None -> default_optimizers () in
  let entries = List.map (fun name -> (name, Registry.find_exn name)) optimizers in
  (* One sequential ctx for the whole sweep: the harness's results must
     not depend on domain count, and the exact DP is bit-identical
     sequential vs rank-parallel anyway.  With [multiway] the capable
     optimizers plan n-ary nodes against the perturbed statistics and
     are then judged by [Plan.cost] under the true ones — which
     re-solves the AGM bound from the true catalog, never trusting the
     stored one. *)
  let ctx = Registry.ctx ?multiway model in
  let optima = ref [] in
  let cells = ref [] in
  List.iteri
    (fun topology_index topology ->
      let spec = Workload.spec ~n ~topology ~model ~mean_card ~variability in
      let catalog, graph = Workload.problem spec in
      let is_tree = B.Ikkbz.is_tree graph in
      let opt = (Registry.find_exn "exact").Registry.optimize ctx (Registry.problem ~graph catalog) in
      let opt_cost = opt.Registry.cost in
      let tname = Topology.name topology in
      optima := (tname, opt_cost) :: !optima;
      let eligible =
        List.filter
          (fun (_, e) -> Result.is_ok (Registry.eligible e ~n ~is_tree))
          entries
      in
      List.iteri
        (fun level_index level ->
          let acc = List.map (fun (name, _) -> (name, ref [])) eligible in
          List.iter
            (fun seed ->
              let noise_seed = derive_seed ~seed ~topology_index ~level_index in
              let pcat, pgraph = Noise.perturb ~mode ~level ~seed:noise_seed catalog graph in
              let problem = Registry.problem ~graph:pgraph pcat in
              List.iter
                (fun (name, entry) ->
                  match (entry.Registry.optimize ctx problem).Registry.plan with
                  | None -> ()
                  | Some plan ->
                      (* The optimizer believed the perturbed numbers;
                         judge its choice under the true ones. *)
                      let true_cost = Plan.cost model catalog graph plan in
                      let regret = true_cost /. opt_cost in
                      if Obs.Metrics.enabled () then Obs.Metrics.observe (m_regret name) regret;
                      let r = List.assoc name acc in
                      r := regret :: !r)
                eligible)
            seeds;
          List.iter
            (fun (name, r) ->
              let regrets = Array.of_list !r in
              Array.sort Float.compare regrets;
              cells :=
                { optimizer = name; topology = tname; level; regrets; summary = summarize regrets }
                :: !cells)
            acc)
        levels)
    topologies;
  {
    n;
    model_name = model.Cost_model.name;
    mode;
    mean_card;
    variability;
    levels;
    seeds;
    optimizers;
    topologies = List.map Topology.name topologies;
    optima = List.rev !optima;
    cells = List.rev !cells;
  }

let cell_to_json c =
  Json.Obj
    [
      ("optimizer", Json.String c.optimizer);
      ("topology", Json.String c.topology);
      ("level", Json.Float c.level);
      ("samples", Json.Int c.summary.samples);
      ("min", Json.Float c.summary.min);
      ("mean", Json.Float c.summary.mean);
      ("p50", Json.Float c.summary.p50);
      ("p90", Json.Float c.summary.p90);
      ("max", Json.Float c.summary.max);
      ("regrets", Json.List (Array.to_list (Array.map (fun r -> Json.Float r) c.regrets)));
    ]

let report_to_json r =
  Json.Obj
    [
      ("n", Json.Int r.n);
      ("model", Json.String r.model_name);
      ("mode", Json.String (Noise.mode_name r.mode));
      ("mean_card", Json.Float r.mean_card);
      ("variability", Json.Float r.variability);
      ("levels", Json.List (List.map (fun l -> Json.Float l) r.levels));
      ("seeds", Json.List (List.map (fun s -> Json.Int s) r.seeds));
      ("optimizers", Json.List (List.map (fun o -> Json.String o) r.optimizers));
      ("topologies", Json.List (List.map (fun t -> Json.String t) r.topologies));
      ( "optima",
        Json.Obj (List.map (fun (t, c) -> (t, Json.Float c)) r.optima) );
      ("cells", Json.List (List.map cell_to_json r.cells));
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>regret vs true optimum (n=%d, %s, %s noise; %d seeds/cell)@,@," r.n
    r.model_name (Noise.mode_name r.mode) (List.length r.seeds);
  List.iter
    (fun tname ->
      Format.fprintf ppf "%s:@," tname;
      Format.fprintf ppf "  %-22s" "optimizer";
      List.iter (fun l -> Format.fprintf ppf "  level %-6.2g" l) r.levels;
      Format.fprintf ppf "@,";
      List.iter
        (fun oname ->
          let row =
            List.filter (fun c -> c.topology = tname && c.optimizer = oname) r.cells
          in
          if row <> [] then begin
            Format.fprintf ppf "  %-22s" oname;
            List.iter
              (fun l ->
                match List.find_opt (fun c -> c.level = l) row with
                | Some c when c.summary.samples > 0 ->
                    Format.fprintf ppf "  %-12.4g" c.summary.mean
                | Some _ | None -> Format.fprintf ppf "  %-12s" "-")
              r.levels;
            Format.fprintf ppf "@,"
          end)
        r.optimizers;
      Format.fprintf ppf "@,")
    r.topologies;
  Format.fprintf ppf "@]"

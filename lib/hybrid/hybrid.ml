module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng
module Transform = Blitz_baselines.Transform
module Eval = Blitz_baselines.Eval
module Greedy = Blitz_baselines.Greedy
module Blitzsplit = Blitz_core.Blitzsplit
module Dp_table = Blitz_core.Dp_table

type stats = {
  windows_reoptimized : int;
  windows_improved : int;
  kicks : int;
  plans_evaluated : int;
}

let replace_at plan path subtree =
  let rec go plan path =
    match (path, plan) with
    | [], _ -> subtree
    | 0 :: rest, Plan.Join (l, r) -> Plan.Join (go l rest, r)
    | 1 :: rest, Plan.Join (l, r) -> Plan.Join (l, go r rest)
    | _ :: _, (Plan.Leaf _ | Plan.Join _ | Plan.Multiway _) ->
      invalid_arg "Hybrid.replace_at: bad path"
  in
  go plan path

(* Break a subtree into at most [window] units by repeatedly splitting
   the unit with the most leaves.  Units are whole subtrees; when the
   subtree has <= window leaves every unit is a single relation. *)
let decompose ~window subtree =
  let module H = struct
    type unit_tree = { tree : Plan.t; leaves : int }
  end in
  let open H in
  let wrap tree = { tree; leaves = Plan.leaf_count tree } in
  let rec go units count =
    if count >= window then units
    else begin
      (* Split the largest splittable unit. *)
      let largest =
        List.fold_left
          (fun acc u ->
            match (u.tree, acc) with
            (* Multiway nodes are kept whole: the window re-optimizer
               re-arranges units binarily and must not lose them. *)
            | (Plan.Leaf _ | Plan.Multiway _), _ -> acc
            | Plan.Join _, Some best when best.leaves >= u.leaves -> acc
            | Plan.Join _, (Some _ | None) -> Some u)
          None units
      in
      match largest with
      | None -> units
      | Some u -> (
        match u.tree with
        | Plan.Leaf _ | Plan.Multiway _ -> units
        | Plan.Join (l, r) ->
          let rest = List.filter (fun v -> v != u) units in
          go (wrap l :: wrap r :: rest) (count + 1))
    end
  in
  List.map (fun u -> u.tree) (go [ wrap subtree ] 1)

(* Exactly re-arrange the units of a subtree with blitzsplit over a
   composite problem: each unit becomes a pseudo-relation whose
   cardinality is the unit's estimated output cardinality, and the
   selectivity between two units is the span product of the real
   predicates between their leaf sets.  By Equations (7)/(8) the
   composite estimates agree with the leaf-level ones on every union of
   units, so the arrangement found is optimal among all arrangements of
   these units.  Unit-internal structure (and cost) is untouched. *)
let reoptimize_units ?arena model catalog graph units =
  let k = List.length units in
  if k < 2 || k > Dp_table.max_relations then None
  else begin
    let unit_arr = Array.of_list units in
    let sets = Array.map Plan.relations unit_arr in
    let cards = Array.map (fun s -> Join_graph.join_cardinality catalog graph s) sets in
    if not (Array.for_all (fun c -> Float.is_finite c && c > 0.0) cards) then None
    else begin
      let composite_catalog =
        Catalog.of_list (Array.to_list (Array.mapi (fun i c -> (Printf.sprintf "U%d" i, c)) cards))
      in
      let edges = ref [] in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let sel = Join_graph.pi_span graph sets.(i) sets.(j) in
          if sel <> 1.0 then edges := (i, j, sel) :: !edges
        done
      done;
      let composite_graph = Join_graph.of_edges ~n:k !edges in
      let result = Blitzsplit.optimize_join ?arena model composite_catalog composite_graph in
      match Blitzsplit.best_plan result with
      | None -> None
      | Some arrangement ->
        (* Substitute each pseudo-relation by its unit subtree. *)
        let rec subst = function
          | Plan.Leaf i -> unit_arr.(i)
          | Plan.Join (l, r) -> Plan.Join (subst l, subst r)
          | Plan.Multiway { inputs; _ } ->
            (* Cover weights name pseudo-relations here; drop them and
               keep the structure (re-costing re-solves covers). *)
            Plan.multiway (List.map subst inputs)
        in
        Some (subst arrangement)
    end
  end

let internal_paths plan =
  let acc = ref [] in
  let rec go rev_path = function
    | Plan.Leaf _ | Plan.Multiway _ -> ()
    | Plan.Join (l, r) ->
      acc := List.rev rev_path :: !acc;
      go (0 :: rev_path) l;
      go (1 :: rev_path) r
  in
  go [] plan;
  List.rev !acc

let subtree_at plan path =
  let rec go plan = function
    | [] -> plan
    | dir :: rest -> (
      match plan with
      | Plan.Leaf _ | Plan.Multiway _ -> invalid_arg "Hybrid.subtree_at: bad path"
      | Plan.Join (l, r) -> go (if dir = 0 then l else r) rest)
  in
  go plan path

let optimize ~rng ?arena ?window ?kicks ?(kick_strength = 3) ?start
    ?(interrupt = fun () -> false) model catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Hybrid.optimize: graph/catalog size mismatch";
  if kick_strength < 1 then invalid_arg "Hybrid.optimize: kick_strength must be positive";
  let window =
    match window with
    | Some w -> if w < 2 then invalid_arg "Hybrid.optimize: window must be at least 2" else min w n
    | None -> min 10 n
  in
  let kick_budget = match kicks with Some k -> max 0 k | None -> 4 * n in
  let evaluations = ref 0 and reopts = ref 0 and improved = ref 0 and kicks_done = ref 0 in
  let measure =
    if n <= Dp_table.max_relations then begin
      let eval = Eval.make model catalog graph in
      fun plan ->
        incr evaluations;
        Eval.cost eval plan
    end
    else fun plan ->
      incr evaluations;
      Plan.cost model catalog graph plan
  in
  let start_plan =
    match start with
    | Some p ->
      if not (Relset.equal (Plan.relations p) (Relset.full n)) then
        invalid_arg "Hybrid.optimize: start plan must cover all catalog relations";
      p
    | None -> if n = 1 then Plan.Leaf 0 else fst (Greedy.optimize model catalog graph)
  in
  if n <= 2 then begin
    let cost = measure start_plan in
    ( (start_plan, cost),
      { windows_reoptimized = 0; windows_improved = 0; kicks = 0; plans_evaluated = !evaluations } )
  end
  else begin
    let reoptimize_window plan path =
      incr reopts;
      let subtree = subtree_at plan path in
      match reoptimize_units ?arena model catalog graph (decompose ~window subtree) with
      | None -> None
      | Some subtree' -> Some (replace_at plan path subtree')
    in
    (* Sweep every internal node (root included) until no composite
       re-arrangement improves the plan.  The interrupt probe is polled
       between window re-optimizations — the unit of work here, each at
       most [O(3^window)] — and the search stops gracefully at the
       current best rather than discarding it. *)
    let rec descend plan cost =
      let rec try_windows = function
        | [] -> (plan, cost)
        | _ :: _ when interrupt () -> (plan, cost)
        | path :: rest -> (
          match reoptimize_window plan path with
          | None -> try_windows rest
          | Some candidate ->
            let candidate_cost = measure candidate in
            if candidate_cost < cost *. (1.0 -. 1e-12) then begin
              incr improved;
              descend candidate candidate_cost
            end
            else try_windows rest)
      in
      try_windows (internal_paths plan)
    in
    let kick plan =
      let p = ref plan in
      for _ = 1 to kick_strength do
        p := Transform.random_neighbor rng !p
      done;
      !p
    in
    let chain_plan = ref start_plan and chain_cost = ref (measure start_plan) in
    let plan, cost = descend !chain_plan !chain_cost in
    chain_plan := plan;
    chain_cost := cost;
    let remaining_kicks = ref kick_budget in
    while !remaining_kicks > 0 && not (interrupt ()) do
      decr remaining_kicks;
      incr kicks_done;
      let perturbed = kick !chain_plan in
      let plan, cost = descend perturbed (measure perturbed) in
      (* Chained-local-optimization acceptance: keep the chain's best. *)
      if cost < !chain_cost then begin
        chain_plan := plan;
        chain_cost := cost
      end
    done;
    ( (!chain_plan, !chain_cost),
      {
        windows_reoptimized = !reopts;
        windows_improved = !improved;
        kicks = !kicks_done;
        plans_evaluated = !evaluations;
      } )
  end

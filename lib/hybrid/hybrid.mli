(** Hybrid optimization: dynamic programming inside randomized search.

    Section 7 of the paper announces (as future work, inspired by Martin
    & Otto's Chained Local Optimization) "a hybrid [that] combines dynamic
    programming with randomized search" to get past the exponential wall
    of exhaustive search.  This module implements that idea:

    - the current plan is improved by repeatedly choosing a {e window}:
      a subtree is decomposed into at most [window] {e units} (whole
      sub-subtrees; single relations when the subtree is small), each
      unit becomes a pseudo-relation whose cardinality and pairwise
      selectivities follow from Equations (7)/(8), and blitzsplit
      re-arranges the units {e exactly}.  Unit-internal structure is
      untouched, so splicing the optimal arrangement back in can only
      lower total cost — even near the root of a large plan;
    - when no window re-arrangement improves the plan, it is {e kicked}
      — several random transformation moves — and the descent repeats,
      keeping the chain's best plan (the CLO acceptance rule).

    Because each window costs at most [O(3^window)], total work is
    polynomial in [n] for fixed [window], letting the hybrid scale far
    beyond [Dp_table.max_relations] relations. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Rng = Blitz_util.Rng

type stats = {
  windows_reoptimized : int;  (** Exact DP re-optimizations performed. *)
  windows_improved : int;  (** Of those, how many lowered the cost. *)
  kicks : int;  (** Perturbation phases. *)
  plans_evaluated : int;
}

val optimize :
  rng:Rng.t ->
  ?arena:Blitz_core.Arena.t ->
  ?window:int ->
  ?kicks:int ->
  ?kick_strength:int ->
  ?start:Plan.t ->
  ?interrupt:(unit -> bool) ->
  Cost_model.t ->
  Catalog.t ->
  Join_graph.t ->
  (Plan.t * float) * stats
(** [optimize ~rng model catalog graph] runs chained descent.  [arena]
    pools the DP tables of the window re-optimizations (one small table
    per window size instead of a fresh allocation per window — the inner
    blitzsplit runs thousands of times on big plans); results are
    bit-identical either way.  [window]
    (default [min 10 n]) bounds exact-reoptimization size;
    [kicks] (default [4 * n]) bounds perturbation phases;
    [kick_strength] (default 3) is the number of random moves per kick;
    [start] defaults to the greedy plan.  [interrupt] is polled between
    window re-optimizations and between kicks; when it returns [true]
    the search stops gracefully and the chain's best plan so far is
    returned (never an exception — an anytime algorithm has a valid
    answer from the first measurement on).  Unlike blitzsplit itself,
    this works for arbitrarily many relations; cost is evaluated with
    the full reference costing (no [2^n] table) when [n] exceeds the
    DP-table cap. *)

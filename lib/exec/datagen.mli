(** Synthetic data realizing a catalog + join graph.

    For each relation the generator materializes [round |R_i|] rows; for
    each predicate edge [(i, j)] with selectivity [s] it gives both
    relations a shared join column whose values are uniform over a domain
    of size [max 1 (round (1/s))] — two independent uniform draws over a
    domain of size [d] match with probability [1/d], so the equi-join on
    that column has expected selectivity close to [s] (exactly [1/d]).
    Selectivities above 1 (possible under the appendix formula at extreme
    parameters) clamp to domain 1.

    This is the substitution for the paper's (implicit) host DBMS data:
    it exercises the estimate-vs-actual code path the authors relied on
    their system for.  Deterministic from the RNG seed. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Rng = Blitz_util.Rng

type t = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  tables : Table.t array;  (** Indexed like the catalog. *)
}

val edge_attribute : int -> int -> string
(** Name of the shared join column for edge [(i, j)] (order
    insensitive): ["j<min>_<max>"]. *)

val realized_selectivity : Join_graph.t -> int -> int -> float
(** The selectivity the generated data actually implements for an edge:
    [1 / domain], i.e. [1 / max 1 (round (1/s))].  Differs slightly from
    the requested [s] because domains are integral. *)

val realized_graph : t -> Join_graph.t
(** The join graph with every edge's selectivity replaced by its
    realized value — what the optimizer should be fed for
    estimate-vs-actual comparisons to be meaningful. *)

val realized_catalog : t -> Catalog.t
(** Catalog with cardinalities equal to the actual (integral) row
    counts. *)

val generate : rng:Rng.t -> ?max_rows:int -> Catalog.t -> Join_graph.t -> t
(** Materialize tables.  Raises [Invalid_argument] if some relation's
    rounded cardinality exceeds [max_rows] (default 500_000). *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Relset = Blitz_bitset.Relset
module Rng = Blitz_util.Rng

type t = { catalog : Catalog.t; graph : Join_graph.t; tables : Table.t array }

let edge_attribute i j = Printf.sprintf "j%d_%d" (min i j) (max i j)

let domain_of_selectivity s =
  if s >= 1.0 then 1 else max 1 (int_of_float (Float.round (1.0 /. s)))

let realized_selectivity graph i j =
  1.0 /. float_of_int (domain_of_selectivity (Join_graph.selectivity graph i j))

let generate ~rng ?(max_rows = 500_000) catalog graph =
  let n = Catalog.n catalog in
  if Join_graph.n graph <> n then invalid_arg "Datagen.generate: graph/catalog size mismatch";
  let tables =
    Array.init n (fun i ->
        let requested = Catalog.card catalog i in
        let rows_count = max 1 (int_of_float (Float.round requested)) in
        if rows_count > max_rows then
          invalid_arg
            (Printf.sprintf "Datagen.generate: relation %s needs %d rows (max_rows = %d)"
               (Catalog.name catalog i) rows_count max_rows);
        (* One id column plus one join column per incident predicate. *)
        let incident = Relset.to_list (Join_graph.neighbors graph i) in
        let columns = Array.of_list ("id" :: List.map (fun j -> edge_attribute i j) incident) in
        let domains =
          Array.of_list
            (0
            :: List.map
                 (fun j -> domain_of_selectivity (Join_graph.selectivity graph i j))
                 incident)
        in
        let rows =
          Array.init rows_count (fun r ->
              Array.init (Array.length columns) (fun c ->
                  if c = 0 then r else Rng.int rng domains.(c)))
        in
        Table.create ~name:(Catalog.name catalog i) ~columns ~rows)
  in
  { catalog; graph; tables }

let realized_graph t =
  let edges =
    List.map
      (fun (i, j, _) -> (i, j, realized_selectivity t.graph i j))
      (Join_graph.edges t.graph)
  in
  Join_graph.of_edges ~n:(Join_graph.n t.graph) edges

let realized_catalog t =
  Catalog.of_list
    (Array.to_list
       (Array.map (fun tbl -> (Table.name tbl, float_of_int (Table.n_rows tbl))) t.tables))

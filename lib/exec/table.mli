(** In-memory relations for the mini execution engine.

    The paper's optimizer lives inside a DBMS it never shows; this
    substrate provides just enough of one to {e run} the plans the
    optimizer emits — so the cardinality estimates driving the DP can be
    validated against actual intermediate result sizes.  Relations are
    row-major arrays of machine integers with named columns. *)

type t = private { name : string; columns : string array; rows : int array array }

val create : name:string -> columns:string array -> rows:int array array -> t
(** Raises [Invalid_argument] on duplicate/empty column names or rows of
    the wrong width. *)

val name : t -> string
val n_rows : t -> int
val n_columns : t -> int
val columns : t -> string array
val column_index : t -> string -> int option
val row : t -> int -> int array
(** A copy of the given row.  Raises [Invalid_argument] out of range. *)

val get : t -> row:int -> col:int -> int

val pp : Format.formatter -> t -> unit
(** Header plus up to 10 rows. *)

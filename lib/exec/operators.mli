(** Physical join operators.

    Three classic dyadic equi-join implementations over row-major integer
    arrays.  All produce the same multiset of output rows (each output
    row is the left row with the right row appended); only their order —
    and their cost, which is what the paper's [kappa_sm] and [kappa_dnl]
    model — differs.  An empty key list makes every operator compute the
    Cartesian product. *)

type key = { left_col : int; right_col : int }
(** One equality condition between a left and a right column. *)

type work = {
  mutable tuple_visits : int;
      (** Tuples touched: inner-loop probes for nested loops, build+probe
          rows for hash, sorted-scan steps for sort-merge. *)
  mutable comparisons : int;
      (** Key comparisons (including those inside sorts, counted via the
          comparator). *)
  mutable output_rows : int;
}
(** Per-operator work accounting — the measured quantities the paper's
    cost models ([kappa_sm], [kappa_dnl]) abstract.  The
    model-validation experiment correlates these against the model
    estimates. *)

val fresh_work : unit -> work

val set_work_sink : work option -> unit
(** Route subsequent operator executions' accounting into the given
    record ([None] disables, the default).  Not reentrant. *)

val nested_loop_join : left:int array array -> right:int array array -> keys:key list -> int array array

val hash_join : left:int array array -> right:int array array -> keys:key list -> int array array
(** Builds on the left input, probes with the right. *)

val sort_merge_join : left:int array array -> right:int array array -> keys:key list -> int array array
(** Sorts both inputs on the key columns and merges duplicate groups. *)

val multiway_hash_join :
  ?guard:(left:int -> right:int -> keyed:bool -> unit) ->
  ?on_step:(int -> unit) ->
  first:int array array ->
  (int array array * key list) list ->
  int array array
(** The n-ary hash join behind [Plan.Multiway] execution: an
    accumulated batch (seeded with [first]) is hash-probed against each
    successive [(rows, keys)] step, where each step's keys relate the
    accumulated columns (left) to that input (right).  The caller fixes
    input order and key columns; [guard] fires before each step with
    both operand sizes and whether the step is keyed, [on_step] after
    with the intermediate size — the executor's row-count guards hang
    there.  With a single step this is exactly {!hash_join}. *)

val same_multiset : int array array -> int array array -> bool
(** Order-insensitive row-multiset equality — the operators'
    cross-checking predicate used by the tests. *)

type t = { name : string; columns : string array; rows : int array array }

let create ~name ~columns ~rows =
  if name = "" then invalid_arg "Table.create: empty table name";
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if c = "" then invalid_arg "Table.create: empty column name";
      if Hashtbl.mem seen c then invalid_arg (Printf.sprintf "Table.create: duplicate column %S" c);
      Hashtbl.add seen c ())
    columns;
  let width = Array.length columns in
  Array.iteri
    (fun i r ->
      if Array.length r <> width then
        invalid_arg (Printf.sprintf "Table.create: row %d has width %d, expected %d" i (Array.length r) width))
    rows;
  { name; columns; rows }

let name t = t.name
let n_rows t = Array.length t.rows
let n_columns t = Array.length t.columns
let columns t = Array.copy t.columns

let column_index t c =
  let found = ref None in
  Array.iteri (fun i col -> if col = c && !found = None then found := Some i) t.columns;
  !found

let row t i =
  if i < 0 || i >= n_rows t then invalid_arg "Table.row: index out of range";
  Array.copy t.rows.(i)

let get t ~row ~col =
  if row < 0 || row >= n_rows t || col < 0 || col >= n_columns t then
    invalid_arg "Table.get: out of range";
  t.rows.(row).(col)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (%d rows):@," t.name (n_rows t);
  Format.fprintf ppf "  %s@," (String.concat " | " (Array.to_list t.columns));
  let limit = min 10 (n_rows t) in
  for i = 0 to limit - 1 do
    Format.fprintf ppf "  %s@,"
      (String.concat " | " (Array.to_list (Array.map string_of_int t.rows.(i))))
  done;
  if n_rows t > limit then Format.fprintf ppf "  ... (%d more)@," (n_rows t - limit);
  Format.fprintf ppf "@]"

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type algorithm = Nested_loop | Hash | Sort_merge

let algorithm_name = function
  | Nested_loop -> "nested-loop"
  | Hash -> "hash"
  | Sort_merge -> "sort-merge"

let algorithm_of_name = function
  | "nested-loop" | "kdnl" -> Some Nested_loop
  | "hash" -> Some Hash
  | "sort-merge" | "ksm" -> Some Sort_merge
  | _ -> None

type trace_entry = { set : Relset.t; actual_rows : int; cartesian : bool }
type result = { rows : int; trace : trace_entry list }

(* An intermediate result: rows plus the provenance of each column. *)
type batch = { cols : (int * string) array; rows : int array array; set : Relset.t }

let leaf_batch (dataset : Datagen.t) i =
  if i < 0 || i >= Array.length dataset.Datagen.tables then
    invalid_arg (Printf.sprintf "Executor: plan references relation %d outside the dataset" i);
  let table = dataset.Datagen.tables.(i) in
  {
    cols = Array.map (fun c -> (i, c)) (Table.columns table);
    rows = Array.init (Table.n_rows table) (fun r -> Table.row table r);
    set = Relset.singleton i;
  }

let find_col batch rel attr =
  let found = ref None in
  Array.iteri
    (fun idx (r, a) -> if r = rel && a = attr && !found = None then found := Some idx)
    batch.cols;
  match !found with
  | Some idx -> idx
  | None ->
    invalid_arg (Printf.sprintf "Executor: column %s of relation %d not found" attr rel)

(* The predicates spanning the two operands (Section 5.1: all of them,
   and only them). *)
let spanning_keys graph lbatch rbatch =
  List.filter_map
    (fun (i, j, _sel) ->
      let attr = Datagen.edge_attribute i j in
      if Relset.mem lbatch.set i && Relset.mem rbatch.set j then
        Some { Operators.left_col = find_col lbatch i attr; right_col = find_col rbatch j attr }
      else if Relset.mem lbatch.set j && Relset.mem rbatch.set i then
        Some { Operators.left_col = find_col lbatch j attr; right_col = find_col rbatch i attr }
      else None)
    (Join_graph.edges graph)

let run ?(algorithm = Hash) ?(max_intermediate_rows = 2_000_000) (dataset : Datagen.t) plan =
  let join_fn =
    match algorithm with
    | Nested_loop -> Operators.nested_loop_join
    | Hash -> Operators.hash_join
    | Sort_merge -> Operators.sort_merge_join
  in
  let trace = ref [] in
  let rec go = function
    | Plan.Leaf i -> leaf_batch dataset i
    | Plan.Join (l, r) ->
      let lb = go l and rb = go r in
      if not (Relset.disjoint lb.set rb.set) then
        invalid_arg "Executor: operands share a relation";
      let keys = spanning_keys dataset.Datagen.graph lb rb in
      if
        keys = []
        && Array.length lb.rows * Array.length rb.rows > max_intermediate_rows
      then
        failwith
          (Printf.sprintf "Executor: Cartesian product of %d x %d rows exceeds the %d-row guard"
             (Array.length lb.rows) (Array.length rb.rows) max_intermediate_rows);
      (* Keyed nested loops probe |L| x |R| tuples regardless of output
         size; bound the probe count so a pathological plan fails fast
         instead of running for hours. *)
      if
        algorithm = Nested_loop
        && keys <> []
        && Array.length lb.rows * Array.length rb.rows > 100 * max_intermediate_rows
      then
        failwith
          (Printf.sprintf
             "Executor: nested-loop probe count %d x %d exceeds the %d-probe guard"
             (Array.length lb.rows) (Array.length rb.rows)
             (100 * max_intermediate_rows));
      let rows = join_fn ~left:lb.rows ~right:rb.rows ~keys in
      if Array.length rows > max_intermediate_rows then
        failwith
          (Printf.sprintf "Executor: intermediate result of %d rows exceeds the %d-row guard"
             (Array.length rows) max_intermediate_rows);
      let set = Relset.union lb.set rb.set in
      trace := { set; actual_rows = Array.length rows; cartesian = keys = [] } :: !trace;
      { cols = Array.append lb.cols rb.cols; rows; set }
    | Plan.Multiway { inputs; _ } -> (
      match List.map go inputs with
      | [] | [ _ ] -> invalid_arg "Executor: multiway node needs at least two inputs"
      | seed :: others ->
        (* Probe order is an execution detail: greedily append the first
           pending input the accumulated set crosses, so a connected core
           never takes a Cartesian intermediate step regardless of how
           the plan ordered its inputs. *)
        let rec pick acc_set = function
          | [] -> None
          | b :: tl when Join_graph.crosses dataset.Datagen.graph acc_set b.set -> Some (b, tl)
          | b :: tl -> (
            match pick acc_set tl with
            | Some (x, rest) -> Some (x, b :: rest)
            | None -> None)
        in
        let rec order acc_set pending ordered =
          match pending with
          | [] -> List.rev ordered
          | _ -> (
            match pick acc_set pending with
            | Some (b, rest) -> order (Relset.union acc_set b.set) rest (b :: ordered)
            | None -> (
              match pending with
              | b :: rest -> order (Relset.union acc_set b.set) rest (b :: ordered)
              | [] -> assert false))
        in
        let ordered = order seed.set others [] in
        let cartesian = ref false in
        (* One pass over column/set metadata builds the per-step keys
           before any rows move. *)
        let steps_rev, shape =
          List.fold_left
            (fun (steps, accb) b ->
              if not (Relset.disjoint accb.set b.set) then
                invalid_arg "Executor: operands share a relation";
              let keys = spanning_keys dataset.Datagen.graph accb b in
              if keys = [] then cartesian := true;
              ( (b.rows, keys) :: steps,
                {
                  cols = Array.append accb.cols b.cols;
                  rows = [||];
                  set = Relset.union accb.set b.set;
                } ))
            ([], seed) ordered
        in
        let guard ~left ~right ~keyed =
          if (not keyed) && left * right > max_intermediate_rows then
            failwith
              (Printf.sprintf
                 "Executor: Cartesian product of %d x %d rows exceeds the %d-row guard" left
                 right max_intermediate_rows)
        in
        let on_step n =
          if n > max_intermediate_rows then
            failwith
              (Printf.sprintf "Executor: intermediate result of %d rows exceeds the %d-row guard"
                 n max_intermediate_rows)
        in
        let rows =
          Operators.multiway_hash_join ~guard ~on_step ~first:seed.rows (List.rev steps_rev)
        in
        trace :=
          { set = shape.set; actual_rows = Array.length rows; cartesian = !cartesian } :: !trace;
        { cols = shape.cols; rows; set = shape.set })
  in
  let final = go plan in
  { rows = Array.length final.rows; trace = List.rev !trace }

let run_with_work ?algorithm ?max_intermediate_rows dataset plan =
  let work = Operators.fresh_work () in
  Operators.set_work_sink (Some work);
  let finish () = Operators.set_work_sink None in
  match run ?algorithm ?max_intermediate_rows dataset plan with
  | result ->
    finish ();
    (result, work)
  | exception e ->
    finish ();
    raise e

type comparison = { at : Relset.t; estimated : float; actual : float }

let estimate_vs_actual ?algorithm ?max_intermediate_rows dataset plan =
  let { trace; _ } = run ?algorithm ?max_intermediate_rows dataset plan in
  let catalog = Datagen.realized_catalog dataset in
  let graph = Datagen.realized_graph dataset in
  List.map
    (fun { set; actual_rows; _ } ->
      {
        at = set;
        estimated = Join_graph.join_cardinality catalog graph set;
        actual = float_of_int actual_rows;
      })
    trace

type key = { left_col : int; right_col : int }

type work = {
  mutable tuple_visits : int;
  mutable comparisons : int;
  mutable output_rows : int;
}

let fresh_work () = { tuple_visits = 0; comparisons = 0; output_rows = 0 }

let sink : work option ref = ref None

let set_work_sink w = sink := w

let visit n = match !sink with Some w -> w.tuple_visits <- w.tuple_visits + n | None -> ()
let compared n = match !sink with Some w -> w.comparisons <- w.comparisons + n | None -> ()
let emitted n = match !sink with Some w -> w.output_rows <- w.output_rows + n | None -> ()

let matches lrow rrow keys =
  compared (List.length keys);
  List.for_all (fun { left_col; right_col } -> lrow.(left_col) = rrow.(right_col)) keys

let output lrow rrow = Array.append lrow rrow

let nested_loop_join ~left ~right ~keys =
  let acc = ref [] in
  Array.iter
    (fun lrow ->
      visit (Array.length right);
      Array.iter (fun rrow -> if matches lrow rrow keys then acc := output lrow rrow :: !acc) right)
    left;
  let rows = Array.of_list (List.rev !acc) in
  emitted (Array.length rows);
  rows

let key_of_row row cols = List.map (fun c -> row.(c)) cols

let hash_join ~left ~right ~keys =
  let lcols = List.map (fun k -> k.left_col) keys in
  let rcols = List.map (fun k -> k.right_col) keys in
  let index = Hashtbl.create (max 16 (Array.length left)) in
  visit (Array.length left + Array.length right);
  Array.iter (fun lrow -> Hashtbl.add index (key_of_row lrow lcols) lrow) left;
  let acc = ref [] in
  Array.iter
    (fun rrow ->
      (* Hashtbl.find_all returns most-recent first; order is irrelevant
         to the multiset semantics checked by the tests. *)
      List.iter (fun lrow -> acc := output lrow rrow :: !acc) (Hashtbl.find_all index (key_of_row rrow rcols)))
    right;
  let rows = Array.of_list (List.rev !acc) in
  emitted (Array.length rows);
  rows

(* N-ary hash join: one accumulated batch hash-probed against each
   successive input.  [rest] carries, per input, its rows and the keys
   relating the accumulated columns (left) to it (right) — the caller
   fixes the input order and the per-step key columns.  [guard] runs
   before each step with both operand sizes and whether the step is
   keyed; [on_step] runs after with the intermediate size — the
   executor hangs its row-count guards there. *)
let multiway_hash_join ?(guard = fun ~left:_ ~right:_ ~keyed:_ -> ())
    ?(on_step = fun _ -> ()) ~first rest =
  List.fold_left
    (fun acc (rows, keys) ->
      guard ~left:(Array.length acc) ~right:(Array.length rows) ~keyed:(keys <> []);
      let out = hash_join ~left:acc ~right:rows ~keys in
      on_step (Array.length out);
      out)
    first rest

let sort_merge_join ~left ~right ~keys =
  let lcols = List.map (fun k -> k.left_col) keys in
  let rcols = List.map (fun k -> k.right_col) keys in
  let lsorted = Array.copy left and rsorted = Array.copy right in
  let by cols a b =
    compared 1;
    compare (key_of_row a cols) (key_of_row b cols)
  in
  Array.sort (by lcols) lsorted;
  Array.sort (by rcols) rsorted;
  visit (Array.length lsorted + Array.length rsorted);
  let nl = Array.length lsorted and nr = Array.length rsorted in
  let acc = ref [] in
  let li = ref 0 and ri = ref 0 in
  while !li < nl && !ri < nr do
    let lkey = key_of_row lsorted.(!li) lcols and rkey = key_of_row rsorted.(!ri) rcols in
    let c = compare lkey rkey in
    if c < 0 then incr li
    else if c > 0 then incr ri
    else begin
      (* Find the extent of the equal-key group on both sides. *)
      let lend = ref !li in
      while !lend < nl && key_of_row lsorted.(!lend) lcols = lkey do
        incr lend
      done;
      let rend = ref !ri in
      while !rend < nr && key_of_row rsorted.(!rend) rcols = rkey do
        incr rend
      done;
      for i = !li to !lend - 1 do
        for j = !ri to !rend - 1 do
          acc := output lsorted.(i) rsorted.(j) :: !acc
        done
      done;
      li := !lend;
      ri := !rend
    end
  done;
  let rows = Array.of_list (List.rev !acc) in
  emitted (Array.length rows);
  rows

let same_multiset a b =
  if Array.length a <> Array.length b then false
  else begin
    let sa = Array.copy a and sb = Array.copy b in
    Array.sort compare sa;
    Array.sort compare sb;
    sa = sb
  end

(** Plan execution over generated data.

    Runs a join plan bottom-up against a {!Datagen.t} dataset, applying
    at each join exactly the predicates that span its operands — the
    semantics Section 5.1 derives ("no more ... and no fewer") — and
    recording every intermediate result's actual cardinality.  Joins
    spanned by no predicate execute as Cartesian products.

    This closes the loop the paper leaves to its host system: with
    {!estimate_vs_actual} one can check that the optimizer's fan-recurrence
    estimates track what actually comes out of the operators. *)

module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Plan = Blitz_plan.Plan
module Relset = Blitz_bitset.Relset

type algorithm = Nested_loop | Hash | Sort_merge

val algorithm_name : algorithm -> string
val algorithm_of_name : string -> algorithm option
(** Recognizes the {!algorithm_name} strings and the cost-model names
    ["kdnl"] / ["ksm"] (Section 6.5's model-to-operator mapping). *)

type trace_entry = {
  set : Relset.t;  (** Relations joined so far at this node. *)
  actual_rows : int;  (** Cardinality the operator actually produced. *)
  cartesian : bool;
}

type result = {
  rows : int;  (** Final result cardinality. *)
  trace : trace_entry list;  (** One entry per join, bottom-up order. *)
}

val run : ?algorithm:algorithm -> ?max_intermediate_rows:int -> Datagen.t -> Plan.t -> result
(** Execute the plan ([algorithm] defaults to {!Hash}).  Raises
    [Invalid_argument] if the plan references relations outside the
    dataset, and [Failure] if an intermediate result would exceed
    [max_intermediate_rows] (default 2_000_000) — a guard against
    accidentally materializing a huge Cartesian product.  Keyed
    nested-loop joins additionally fail when their probe count
    [|L| * |R|] would exceed 100x that bound (the output may be small
    but the work is not). *)

val run_with_work :
  ?algorithm:algorithm -> ?max_intermediate_rows:int -> Datagen.t -> Plan.t -> result * Operators.work
(** Like {!run}, additionally accounting the operators' measured work
    (tuple visits, comparisons, output rows) across the whole plan —
    the observable the paper's cost models estimate. *)

type comparison = {
  at : Relset.t;
  estimated : float;  (** Fan-recurrence estimate on the {e realized} statistics. *)
  actual : float;
}

val estimate_vs_actual :
  ?algorithm:algorithm -> ?max_intermediate_rows:int -> Datagen.t -> Plan.t -> comparison list
(** Per intermediate result: the optimizer's estimate (computed from
    {!Datagen.realized_catalog} / {!Datagen.realized_graph}) against the
    executed cardinality. *)

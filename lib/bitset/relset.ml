type t = int

let max_width = 62

let empty = 0

let check_index i =
  if i < 0 || i >= max_width then
    invalid_arg (Printf.sprintf "Relset: relation index %d outside [0, %d)" i max_width)

let singleton i =
  check_index i;
  1 lsl i

let full n =
  if n < 0 || n > max_width then
    invalid_arg (Printf.sprintf "Relset.full: width %d outside [0, %d]" n max_width);
  if n = 0 then 0 else (1 lsl n) - 1

let add s i = s lor singleton i
let remove s i = s land lnot (singleton i)
let of_list l = List.fold_left add empty l

let is_empty s = s = 0
let mem s i = i >= 0 && i < max_width && s land (1 lsl i) <> 0
let equal (a : t) (b : t) = a = b
let subset a b = a land lnot b = 0
let proper_subset a b = subset a b && a <> b
let disjoint a b = a land b = 0

(* Kernighan's bit-clearing loop; set cardinalities here are small
   (<= max_width) and this is never in the optimizer's inner loop. *)
let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + 1) (s land (s - 1)) in
  go 0 s

let is_singleton s = s <> 0 && s land (s - 1) = 0

let lowest_bit s = s land -s

let min_elt s =
  if s = 0 then invalid_arg "Relset.min_elt: empty set";
  (* Count trailing zeros of the isolated lowest bit by binary chunks. *)
  let x = ref (lowest_bit s) and i = ref 0 in
  if !x land 0xFFFFFFFF = 0 then begin i := !i + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin i := !i + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin i := !i + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin i := !i + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin i := !i + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then i := !i + 1;
  !i

let max_elt s =
  if s = 0 then invalid_arg "Relset.max_elt: empty set";
  let x = ref s and i = ref 0 in
  if !x lsr 32 <> 0 then begin i := !i + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin i := !i + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin i := !i + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin i := !i + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin i := !i + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then i := !i + 1;
  !i

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let iter f s =
  let rest = ref s in
  while !rest <> 0 do
    f (min_elt !rest);
    rest := !rest land (!rest - 1)
  done

let fold f init s =
  let acc = ref init and rest = ref s in
  while !rest <> 0 do
    acc := f !acc (min_elt !rest);
    rest := !rest land (!rest - 1)
  done;
  !acc

let to_list s = List.rev (fold (fun acc i -> i :: acc) [] s)

let for_all p s = fold (fun acc i -> acc && p i) true s
let exists p s = fold (fun acc i -> acc || p i) false s

let dilate ~mask i =
  (* Spread the low bits of [i] into the positions of [mask], low to
     high: bit j of [i] lands on the j-th lowest set bit of [mask]. *)
  let rec go acc i mask =
    if mask = 0 then acc
    else
      let bit = lowest_bit mask in
      let acc = if i land 1 <> 0 then acc lor bit else acc in
      go acc (i lsr 1) (mask lxor bit)
  in
  go 0 i mask

let contract ~mask w =
  let rec go acc j mask =
    if mask = 0 then acc
    else
      let bit = lowest_bit mask in
      let acc = if w land bit <> 0 then acc lor (1 lsl j) else acc in
      go acc (j + 1) (mask lxor bit)
  in
  go 0 0 mask

let succ_subset ~within l = within land (l - within)

let succ_subset_stride ~within ~stride l =
  if stride land 1 = 0 then invalid_arg "Relset.succ_subset_stride: stride must be odd";
  (* delta(i + k) = within land (delta i - delta (-k)), and
     delta (-k) = within land (- delta k)  (Section 4.2, footnote 3). *)
  let delta_minus_k = within land (-(dilate ~mask:within stride)) in
  within land (l - delta_minus_k)

let iter_proper_subsets f s =
  let l = ref (lowest_bit s) in
  while !l <> s do
    f !l;
    l := succ_subset ~within:s !l
  done

let fold_proper_subsets f init s =
  let acc = ref init and l = ref (lowest_bit s) in
  while !l <> s do
    acc := f !acc !l;
    l := succ_subset ~within:s !l
  done;
  !acc

let iter_subset_pairs f s = iter_proper_subsets (fun l -> f l (s lxor l)) s

let next_same_cardinality v =
  if v = 0 then invalid_arg "Relset.next_same_cardinality: zero has no successor";
  let c = v land -v in
  let r = v + c in
  r lor (((v lxor r) / c) lsr 2)

let iter_subsets_of_size ~n ~k f =
  if k < 0 || n < 0 || n > max_width then invalid_arg "Relset.iter_subsets_of_size";
  if k = 0 then f empty
  else if k <= n then begin
    let stop = 1 lsl n in
    let s = ref (full k) in
    while !s < stop do
      f !s;
      s := next_same_cardinality !s
    done
  end

let pp ?names () ppf s =
  let name i =
    match names with
    | Some a when i < Array.length a -> a.(i)
    | Some _ | None -> string_of_int i
  in
  Format.pp_print_char ppf '{';
  let first = ref true in
  iter
    (fun i ->
      if not !first then Format.pp_print_string ppf ", ";
      first := false;
      Format.pp_print_string ppf (name i))
    s;
  Format.pp_print_char ppf '}'

let to_string ?names s = Format.asprintf "%a" (pp ?names ()) s

(** Sets of relation names as machine-word bitsets.

    Section 4.1 of Vance & Maier: relation names are identified with small
    integer indexes, and a {e set} of relation names is the integer whose
    1-bits are the members' indexes.  All set primitives are then one or
    two machine instructions, and the set doubles as the index into the
    dynamic-programming table.

    This module also implements the paper's split-enumeration machinery
    (Section 4.2): the dilation operator [delta], its left-inverse
    contraction [gamma], and the successor trick

    {v succ(l) = s land (l - s) v}

    which steps through all nonempty proper subsets of [s] in constant time
    per step without ever evaluating [delta].

    A value of type {!t} is an ordinary OCaml [int]; on 64-bit hosts up to
    {!max_width} relations are supported (the dynamic-programming table
    caps practical sizes far earlier). *)

type t = int
(** A set of relation indexes; bit [i] set means relation [i] is a
    member.  Exposed as [int] deliberately: the DP table is indexed by
    this integer, exactly as in the paper. *)

val max_width : int
(** Largest representable relation index plus one (62 on 64-bit hosts). *)

(** {1 Construction} *)

val empty : t
val singleton : int -> t
(** Raises [Invalid_argument] if the index is outside [\[0, max_width)]. *)

val full : int -> t
(** [full n] is [{0, ..., n-1}].  Raises [Invalid_argument] if [n] is
    outside [\[0, max_width\]]. *)

val of_list : int list -> t
val add : t -> int -> t
val remove : t -> int -> t

(** {1 Queries} *)

val is_empty : t -> bool
val mem : t -> int -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] holds when every member of [a] is in [b]. *)

val proper_subset : t -> t -> bool
val disjoint : t -> t -> bool
val cardinal : t -> int
(** Population count, by the classic parallel bit-summing network. *)

val is_singleton : t -> bool

val min_elt : t -> int
(** Index of the lowest set bit.  Raises [Invalid_argument] on [empty].
    This is the [min S] of the paper's fan definition (Section 5.3). *)

val max_elt : t -> int
(** Index of the highest set bit.  Raises [Invalid_argument] on [empty]. *)

val lowest_bit : t -> t
(** [lowest_bit s] is [s land (-s)]: the singleton containing [min_elt s],
    or [empty] when [s] is empty.  The paper computes [{min S}] this way
    as [delta_S 1] (Section 5.4). *)

(** {1 Boolean algebra} *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** {1 Member iteration} *)

val iter : (int -> unit) -> t -> unit
(** Members in increasing index order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

(** {1 Dilation and contraction (Section 4.2)} *)

val dilate : mask:t -> int -> t
(** [dilate ~mask i] is the paper's [delta_mask i]: spreads the low
    [cardinal mask] bits of [i] into the bit positions of [mask].  E.g.
    [dilate ~mask:0b11001 0b101 = 0b10001]. *)

val contract : mask:t -> t -> int
(** [contract ~mask w] is the paper's [gamma_mask w], the left inverse of
    dilation: gathers the bits of [w] at the positions of [mask] into a
    dense integer.  [contract ~mask (dilate ~mask i) = i] for [i] in
    range. *)

val succ_subset : within:t -> t -> t
(** [succ_subset ~within l] is the next subset of [within] after [l] in
    dilated counting order: [within land (l - within)].  Starting from
    [lowest_bit within] and stopping upon reaching [within] enumerates
    every nonempty proper subset exactly once. *)

val succ_subset_stride : within:t -> stride:int -> t -> t
(** Footnote 3 of the paper: stepping by an arbitrary odd [stride]
    instead of 1 visits the same subsets in a different order (useful to
    approximate the random-order assumption of the complexity analysis).
    [succ_subset_stride ~within ~stride l = within land (l - delta within stride)]
    up to wraparound; the cycle covers all [2^|within|] patterns, so callers
    must skip [empty] and [within] themselves.  Raises [Invalid_argument]
    on even strides. *)

(** {1 Subset enumeration} *)

val iter_proper_subsets : (t -> unit) -> t -> unit
(** [iter_proper_subsets f s] applies [f] to each nonempty proper subset
    of [s], in dilated counting order — [2^(cardinal s) - 2] calls.
    This is the split loop of [find_best_split]. *)

val fold_proper_subsets : ('a -> t -> 'a) -> 'a -> t -> 'a

val iter_subset_pairs : (t -> t -> unit) -> t -> unit
(** [iter_subset_pairs f s] applies [f lhs rhs] for every split of [s]
    into nonempty [lhs], [rhs] with [lhs union rhs = s]; each unordered
    pair is seen twice (once per orientation), as in the paper's loop. *)

val next_same_cardinality : t -> t
(** Gosper's hack: the next larger integer with the same population
    count.  Used by the size-driven baseline enumerator.  Returns a value
    that may exceed any enclosing universe; callers bound-check. *)

val iter_subsets_of_size : n:int -> k:int -> (t -> unit) -> unit
(** [iter_subsets_of_size ~n ~k f] applies [f] to all [k]-element subsets
    of [full n] in increasing integer order. *)

(** {1 Printing} *)

val pp : ?names:string array -> unit -> Format.formatter -> t -> unit
(** [pp ?names ()] prints as [{A, C}] using [names], or [{0, 2}]
    without. *)

val to_string : ?names:string array -> t -> string

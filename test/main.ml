let () =
  Alcotest.run "blitz"
    [
      ("util", Test_util.suite);
      ("relset", Test_relset.suite);
      ("catalog", Test_catalog.suite);
      ("graph", Test_graph.suite);
      ("cost", Test_cost.suite);
      ("plan", Test_plan.suite);
      ("blitzsplit", Test_blitzsplit.suite);
      ("equivalence", Test_equivalence.suite);
      ("orders", Test_orders.suite);
      ("hypergraph", Test_hypergraph.suite);
      ("multiway", Test_multiway.suite);
      ("differential", Test_differential.suite);
      ("split-kernel", Test_split_kernel.suite);
      ("core-misc", Test_core_misc.suite);
      ("threshold", Test_threshold.suite);
      ("parallel", Test_parallel.suite);
      ("baselines", Test_baselines.suite);
      ("dpccp", Test_dpccp.suite);
      ("ikkbz", Test_ikkbz.suite);
      ("volcano", Test_volcano.suite);
      ("hybrid", Test_hybrid.suite);
      ("engine", Test_engine.suite);
      ("guard", Test_guard.suite);
      ("cache", Test_cache.suite);
      ("workload", Test_workload.suite);
      ("tpch", Test_tpch.suite);
      ("exec", Test_exec.suite);
      ("stats", Test_stats.suite);
      ("sql", Test_sql.suite);
      ("obs", Test_obs.suite);
      ("robust", Test_robust.suite);
      ("serve", Test_serve.suite);
    ]

(* Equivalence classes (implied/redundant predicates) and the
   class-aware optimizer variant. *)

open Test_helpers
module Equivalence = Blitz_graph.Equivalence
module Blitzsplit = Blitz_core.Blitzsplit
module Blitzsplit_eq = Blitz_core.Blitzsplit_eq
module Dp_table = Blitz_core.Dp_table
module B = Blitz_baselines

let check_float = Test_helpers.check_float

(* Three relations equated transitively on one key: a.x = b.y = c.z,
   domain 100. *)
let triangle_class =
  Equivalence.of_predicates ~n:3
    [ ((0, "x"), (1, "y"), 0.01); ((1, "y"), (2, "z"), 0.01) ]

let test_union_find_merging () =
  let classes = Equivalence.classes triangle_class in
  Alcotest.(check int) "one class" 1 (List.length classes);
  let c = List.hd classes in
  Alcotest.(check int) "touches all three relations" 0b111 c.Equivalence.relations;
  check_float "domain 100" 100.0 c.Equivalence.domain;
  Alcotest.(check int) "three columns" 3 (List.length c.Equivalence.members)

let test_separate_classes_stay_separate () =
  let e =
    Equivalence.of_predicates ~n:4
      [ ((0, "x"), (1, "y"), 0.1); ((2, "u"), (3, "v"), 0.01) ]
  in
  Alcotest.(check int) "two classes" 2 (List.length (Equivalence.classes e))

let test_redundant_predicate_absorbed () =
  (* Adding the implied a.x = c.z explicitly must not change the class
     structure or the cardinality model. *)
  let with_redundant =
    Equivalence.of_predicates ~n:3
      [ ((0, "x"), (1, "y"), 0.01); ((1, "y"), (2, "z"), 0.01); ((0, "x"), (2, "z"), 0.01) ]
  in
  let catalog = Catalog.of_cards [| 1000.0; 1000.0; 1000.0 |] in
  let full = Relset.full 3 in
  check_float "same cardinality"
    (Equivalence.join_cardinality catalog triangle_class full)
    (Equivalence.join_cardinality catalog with_redundant full)

let test_cardinality_counts_constraints_once () =
  let catalog = Catalog.of_cards [| 1000.0; 1000.0; 1000.0 |] in
  (* 1000^3 / 100^2: two constraints, not three. *)
  check_float "k-1 exponent" 1e5
    (Equivalence.join_cardinality catalog triangle_class (Relset.full 3));
  (* Subsets: {a,b} -> 1000^2/100. *)
  check_float "pair" 1e4
    (Equivalence.join_cardinality catalog triangle_class (Relset.of_list [ 0; 1 ]));
  (* {a,c}: both carry the class, one constraint applies (a.x = c.z is
     implied). *)
  check_float "implied pair" 1e4
    (Equivalence.join_cardinality catalog triangle_class (Relset.of_list [ 0; 2 ]))

let test_pairwise_graph_overcounts () =
  let catalog = Catalog.of_cards [| 1000.0; 1000.0; 1000.0 |] in
  let g = Equivalence.as_pairwise_graph triangle_class in
  Alcotest.(check int) "clique of 3 edges" 3 (Join_graph.edge_count g);
  (* The naive pairwise graph claims 1000^3/100^3 = 1000: one 1/100 too
     many. *)
  check_float "overcounted" 1e3 (Join_graph.join_cardinality catalog g (Relset.full 3));
  let spanning = Equivalence.spanning_graph triangle_class in
  Alcotest.(check int) "spanning chain has 2 edges" 2 (Join_graph.edge_count spanning);
  check_float "spanning correct on the full set" 1e5
    (Join_graph.join_cardinality catalog spanning (Relset.full 3));
  (* ...but the spanning chain is wrong on the subset {a, c} (it skips
     the chain's middle), while the class model is right. *)
  check_float "spanning misses implied pair" 1e6
    (Join_graph.join_cardinality catalog spanning (Relset.of_list [ 0; 2 ]))

let test_validation () =
  Alcotest.check_raises "self predicate"
    (Invalid_argument "Equivalence.of_predicates: predicate relates a relation to itself")
    (fun () -> ignore (Equivalence.of_predicates ~n:2 [ ((0, "x"), (0, "y"), 0.5) ]));
  Alcotest.check_raises "bad selectivity"
    (Invalid_argument "Equivalence.of_predicates: selectivity 2 outside (0, 1]") (fun () ->
      ignore (Equivalence.of_predicates ~n:2 [ ((0, "x"), (1, "y"), 2.0) ]))

(* ---- the class-aware optimizer ---- *)

let test_eq_optimizer_table_cardinalities () =
  let catalog = Catalog.of_cards [| 1000.0; 1000.0; 1000.0 |] in
  let r = Blitzsplit_eq.optimize Cost_model.naive catalog triangle_class in
  for s = 1 to 7 do
    check_float
      (Printf.sprintf "card of subset %d" s)
      (Equivalence.join_cardinality catalog triangle_class s)
      (Dp_table.card r.Blitzsplit_eq.table s)
  done

let test_eq_vs_pairwise_plan_quality () =
  (* A query where over-counting misleads the plain optimizer: a large
     three-way equivalence class (its pairwise projection undercounts the
     three-way result by 1/D) plus an unrelated cheap edge.  Both
     optimizers produce valid plans, but cost them differently; the
     class-aware estimate is the truth. *)
  let catalog = Catalog.of_cards [| 1000.0; 1000.0; 1000.0; 10.0 |] in
  let e =
    Equivalence.of_predicates ~n:4
      [ ((0, "x"), (1, "y"), 0.01); ((1, "y"), (2, "z"), 0.01); ((2, "w"), (3, "v"), 0.1) ]
  in
  let r_eq = Blitzsplit_eq.optimize Cost_model.naive catalog e in
  let pairwise = Equivalence.as_pairwise_graph e in
  let r_plain = Blitzsplit.optimize_join Cost_model.naive catalog pairwise in
  (* The plain optimizer believes the full join is 10x smaller than the
     class model's truth. *)
  let eval =
    B.Eval.of_cardinality Cost_model.naive ~n:4 (Equivalence.join_cardinality catalog e)
  in
  let true_cost plan = B.Eval.cost eval plan in
  let eq_plan = Blitzsplit_eq.best_plan_exn r_eq in
  let plain_plan = Blitzsplit.best_plan_exn r_plain in
  Alcotest.(check bool) "class-aware plan is optimal under the true model" true
    (true_cost eq_plan <= true_cost plain_plan +. 1e-9)

(* Oracle: the class-aware optimizer equals brute force under the
   class-aware cardinality model. *)
let eq_problem_gen =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Rng.create ~seed in
        let n = 3 + Rng.int rng 4 in
        let catalog = random_catalog rng ~n ~lo:2.0 ~hi:1e4 in
        (* Random predicates; union-find merges them into classes. *)
        let preds = ref [] in
        let count = 1 + Rng.int rng (2 * n) in
        for _ = 1 to count do
          let a = Rng.int rng n in
          let b = (a + 1 + Rng.int rng (n - 1)) mod n in
          let col _ = Printf.sprintf "c%d" (Rng.int rng 3) in
          let sel = Rng.log_uniform rng ~lo:1e-4 ~hi:1.0 in
          preds := ((a, col a), (b, col b), Float.min sel 1.0) :: !preds
        done;
        let model =
          match Rng.int rng 3 with
          | 0 -> Cost_model.naive
          | 1 -> Cost_model.sort_merge
          | _ -> Cost_model.kdnl
        in
        (seed, n, catalog, Equivalence.of_predicates ~n !preds, model))
      (int_bound 1_000_000))

let eq_problem_print (seed, n, _, e, (model : Cost_model.t)) =
  Printf.sprintf "seed=%d n=%d classes=%d model=%s" seed n
    (List.length (Equivalence.classes e))
    model.Cost_model.name

let prop_eq_matches_bruteforce =
  QCheck2.Test.make ~count:120 ~name:"class-aware optimizer finds the brute-force optimum"
    ~print:eq_problem_print eq_problem_gen
    (fun (_, n, catalog, e, model) ->
      let r = Blitzsplit_eq.optimize model catalog e in
      let eval = B.Eval.of_cardinality model ~n (Equivalence.join_cardinality catalog e) in
      let _, oracle = B.Bruteforce.optimize_subset eval (Relset.full n) in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 oracle (Blitzsplit_eq.best_cost r))

let prop_eq_agrees_with_plain_on_tree_classes =
  (* When every class touches exactly two relations, classes and the
     pairwise graph coincide — the two optimizers must agree exactly. *)
  QCheck2.Test.make ~count:100 ~name:"two-relation classes reduce to the plain optimizer"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let n = Catalog.n p.catalog in
      let preds =
        List.map
          (fun (i, j, sel) ->
            ((i, Printf.sprintf "c%d_%d" i j), (j, Printf.sprintf "c%d_%d" i j), Float.min sel 1.0))
          (Join_graph.edges p.graph)
      in
      let e = Equivalence.of_predicates ~n preds in
      let clamped_edges =
        List.map (fun (i, j, sel) -> (i, j, Float.min sel 1.0)) (Join_graph.edges p.graph)
      in
      let graph = Join_graph.of_edges ~n clamped_edges in
      let r_eq = Blitzsplit_eq.optimize p.model p.catalog e in
      let r_plain = Blitzsplit.optimize_join p.model p.catalog graph in
      Blitz_util.Float_more.approx_equal ~rel:1e-9 (Blitzsplit.best_cost r_plain)
        (Blitzsplit_eq.best_cost r_eq))

let suite =
  [
    Alcotest.test_case "union-find merges transitively" `Quick test_union_find_merging;
    Alcotest.test_case "separate classes stay separate" `Quick test_separate_classes_stay_separate;
    Alcotest.test_case "redundant predicates absorbed" `Quick test_redundant_predicate_absorbed;
    Alcotest.test_case "constraints counted once (k-1 rule)" `Quick
      test_cardinality_counts_constraints_once;
    Alcotest.test_case "pairwise projection over-counts" `Quick test_pairwise_graph_overcounts;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "eq optimizer table cardinalities" `Quick
      test_eq_optimizer_table_cardinalities;
    Alcotest.test_case "class-aware beats pairwise under the true model" `Quick
      test_eq_vs_pairwise_plan_quality;
    QCheck_alcotest.to_alcotest prop_eq_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_eq_agrees_with_plain_on_tree_classes;
  ]

(* Edge cases for the core bookkeeping modules: Dp_table bounds,
   Counters analytics, Card_table. *)

open Test_helpers
module Dp_table = Blitz_core.Dp_table
module Counters = Blitz_core.Counters
module Card_table = Blitz_core.Card_table
module Blitzsplit = Blitz_core.Blitzsplit

let check_float = Test_helpers.check_float

let test_dp_table_bounds () =
  Alcotest.check_raises "n too small" (Invalid_argument "Dp_table.create: n = 0 outside [1, 24]")
    (fun () -> ignore (Dp_table.create 0));
  Alcotest.check_raises "n too large" (Invalid_argument "Dp_table.create: n = 25 outside [1, 24]")
    (fun () -> ignore (Dp_table.create 25));
  let t = Dp_table.create 3 in
  Alcotest.(check int) "size" 8 (Dp_table.size t);
  Alcotest.(check int) "full set" 0b111 (Dp_table.full_set t);
  Alcotest.check_raises "empty set rejected"
    (Invalid_argument "Dp_table: set 0 outside table of 3 relations") (fun () ->
      ignore (Dp_table.cost t 0));
  Alcotest.check_raises "set beyond table"
    (Invalid_argument "Dp_table: set 8 outside table of 3 relations") (fun () ->
      ignore (Dp_table.cost t 8));
  (* A freshly created table is entirely infeasible. *)
  Alcotest.(check bool) "fresh tables are infeasible" false (Dp_table.is_feasible t 0b11);
  Alcotest.(check bool) "fresh extraction fails" true (Dp_table.extract_plan t 0b11 = None)

let test_counters_analytics () =
  (* 3^n - 2^(n+1) + 1 for small n, by hand. *)
  Alcotest.(check int) "n=2" 2 (Counters.exact_loop_iters 2);
  Alcotest.(check int) "n=3" 12 (Counters.exact_loop_iters 3);
  Alcotest.(check int) "n=4" 50 (Counters.exact_loop_iters 4);
  check_float ~rel:1e-12 "lower bound n=4" (0.5 *. log 2.0 *. 4.0 *. 16.0)
    (Counters.predicted_dprime_lower 4);
  check_float "upper bound n=4" 81.0 (Counters.predicted_dprime_upper 4);
  (* copy is independent. *)
  let a = Counters.create () in
  a.Counters.subsets <- 5;
  let b = Counters.copy a in
  a.Counters.subsets <- 9;
  Alcotest.(check int) "copy unaffected" 5 b.Counters.subsets;
  Counters.reset a;
  Alcotest.(check int) "reset" 0 a.Counters.subsets;
  (* pp renders every field. *)
  let rendered = Format.asprintf "%a" Counters.pp b in
  Alcotest.(check bool) "pp mentions subsets" true
    (String.length rendered > 50 && String.contains rendered '5')

let test_card_table_against_reference () =
  let rng = Rng.create ~seed:12 in
  let catalog = random_catalog rng ~n:8 ~lo:1.0 ~hi:1e4 in
  let graph = random_graph rng ~n:8 ~edge_prob:0.4 ~sel_lo:1e-3 ~sel_hi:1.0 in
  let table = Card_table.compute catalog graph in
  for s = 1 to 255 do
    check_float ~rel:1e-9
      (Printf.sprintf "subset %d" s)
      (Join_graph.join_cardinality catalog graph s)
      table.(s)
  done;
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Card_table.compute: graph over 8 relations, catalog has 4") (fun () ->
      ignore (Card_table.compute abcd_catalog graph))

let test_subplan_extraction_optimal_substructure () =
  (* Every subset's extracted subplan re-costs to that subset's table
     cost — the DP's optimal-substructure invariant, checked directly. *)
  let rng = Rng.create ~seed:4 in
  let catalog = random_catalog rng ~n:7 ~lo:1.0 ~hi:1e4 in
  let graph = random_graph rng ~n:7 ~edge_prob:0.5 ~sel_lo:1e-3 ~sel_hi:1.0 in
  let r = Blitzsplit.optimize_join Cost_model.kdnl catalog graph in
  for s = 1 to 127 do
    match Blitzsplit.subplan r s with
    | None -> Alcotest.failf "subset %d infeasible without threshold" s
    | Some plan ->
      Alcotest.(check bool) "covers the subset" true (Relset.equal (Plan.relations plan) s);
      let sub = Blitz_graph.Induced.project catalog graph s in
      let dense = Plan.map_leaves
        (fun parent ->
          let rec find i = if sub.Blitz_graph.Induced.to_parent.(i) = parent then i else find (i + 1) in
          find 0)
        plan
      in
      check_float ~rel:1e-6
        (Printf.sprintf "subplan cost for %d" s)
        (Dp_table.cost r.Blitzsplit.table s)
        (Plan.cost Cost_model.kdnl sub.Blitz_graph.Induced.catalog sub.Blitz_graph.Induced.graph
           dense)
  done

let suite =
  [
    Alcotest.test_case "dp table bounds" `Quick test_dp_table_bounds;
    Alcotest.test_case "counters analytics and lifecycle" `Quick test_counters_analytics;
    Alcotest.test_case "card table = reference" `Quick test_card_table_against_reference;
    Alcotest.test_case "optimal substructure of subplans" `Quick
      test_subplan_extraction_optimal_substructure;
  ]

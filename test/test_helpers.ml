(* Shared generators and checkers for the optimizer test suites. *)

module Relset = Blitz_bitset.Relset
module Catalog = Blitz_catalog.Catalog
module Join_graph = Blitz_graph.Join_graph
module Topology = Blitz_graph.Topology
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Rng = Blitz_util.Rng

let float_approx ?(rel = 1e-9) () =
  Alcotest.testable
    (fun ppf x -> Format.fprintf ppf "%.12g" x)
    (fun a b -> Blitz_util.Float_more.approx_equal ~rel a b)

let check_float ?rel msg expected actual =
  Alcotest.check (float_approx ?rel ()) msg expected actual

(* The paper's running example: A, B, C, D with cardinalities 10, 20,
   30, 40 (Table 1) and the join graph of Figure 3 with edges AB, AC,
   BC, AD. *)
let abcd_catalog = Catalog.of_list [ ("A", 10.0); ("B", 20.0); ("C", 30.0); ("D", 40.0) ]

let figure3_graph ~sab ~sac ~sbc ~sad =
  Join_graph.of_edges ~n:4 [ (0, 1, sab); (0, 2, sac); (1, 2, sbc); (0, 3, sad) ]

(* Random problem generation for oracle comparisons. *)

let random_catalog rng ~n ~lo ~hi =
  Catalog.of_cards (Array.init n (fun _ -> Rng.log_uniform rng ~lo ~hi))

let random_graph rng ~n ~edge_prob ~sel_lo ~sel_hi =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1.0 < edge_prob then
        edges := (i, j, Rng.log_uniform rng ~lo:sel_lo ~hi:sel_hi) :: !edges
    done
  done;
  Join_graph.of_edges ~n !edges

type problem = {
  catalog : Catalog.t;
  graph : Join_graph.t;
  model : Cost_model.t;
  seed : int;
}

let pp_problem ppf p =
  Format.fprintf ppf "seed=%d n=%d model=%s edges=%d" p.seed (Catalog.n p.catalog)
    p.model.Cost_model.name
    (Join_graph.edge_count p.graph)

(* A generator of complete random optimization problems with n in
   [2, max_n], random cardinalities, random topology density and any of
   the three paper cost models. *)
let problem_gen ~max_n =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Rng.create ~seed in
        let n = 2 + Rng.int rng (max_n - 1) in
        let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
        let edge_prob = Rng.float rng 1.0 in
        let graph = random_graph rng ~n ~edge_prob ~sel_lo:1e-4 ~sel_hi:1.0 in
        let model =
          match Rng.int rng 3 with
          | 0 -> Cost_model.naive
          | 1 -> Cost_model.sort_merge
          | _ -> Cost_model.kdnl
        in
        { catalog; graph; model; seed })
      (int_bound 1_000_000))

let problem_print p = Format.asprintf "%a" pp_problem p

(* Tests for the utility substrate: rng, stats, linear fitting, tables. *)

module Rng = Blitz_util.Rng
module Stats = Blitz_util.Stats
module Linfit = Blitz_util.Linfit
module Float_more = Blitz_util.Float_more
module Ascii_table = Blitz_util.Ascii_table

let check_float = Test_helpers.check_float

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed, different stream" true (Rng.int64 a <> Rng.int64 c)

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 7);
    let f = Rng.float rng 3.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 3.5);
    let lu = Rng.log_uniform rng ~lo:2.0 ~hi:1000.0 in
    Alcotest.(check bool) "log_uniform in range" true (lu >= 2.0 && lu < 1000.0)
  done;
  Alcotest.check_raises "int bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independence () =
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  Alcotest.(check bool) "split streams differ" true (Rng.int64 parent <> Rng.int64 child)

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 10k draws, each bucket within
     3 sigma of 1000. *)
  let rng = Rng.create ~seed:123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i count ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i count)
        true
        (abs (count - 1000) < 120))
    buckets

let test_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_stats () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "geomean" 10.0 (Stats.geometric_mean [| 1.0; 10.0; 100.0 |]);
  check_float "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "stddev" (sqrt 1.25) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |]);
  let lo, hi = Stats.min_max [| 3.0; 1.0; 2.0 |] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi;
  check_float "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p0" 1.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check_float "p100" 3.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input") (fun () ->
      ignore (Stats.mean [||]));
  Alcotest.check_raises "non-positive geomean"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_float_more () =
  Alcotest.(check bool) "approx equal" true (Float_more.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "approx unequal" false (Float_more.approx_equal 1.0 1.1);
  Alcotest.(check bool) "inf equal" true (Float_more.approx_equal Float.infinity Float.infinity);
  Alcotest.(check bool) "nan unequal" false (Float_more.approx_equal Float.nan Float.nan);
  check_float "pow_int" 1024.0 (Float_more.pow_int 2.0 10);
  check_float "pow_int zero" 1.0 (Float_more.pow_int 5.0 0);
  check_float "log2" 10.0 (Float_more.log2 1024.0);
  check_float "clamp low" 1.0 (Float_more.clamp ~lo:1.0 ~hi:2.0 0.5);
  check_float "clamp high" 2.0 (Float_more.clamp ~lo:1.0 ~hi:2.0 3.0);
  Alcotest.(check string) "compact int" "240000" (Float_more.to_compact_string 240000.0);
  Alcotest.(check string) "compact inf" "inf" (Float_more.to_compact_string Float.infinity)

let test_linfit_exact () =
  (* y = 3x + 5 recovered exactly from 4 points. *)
  let basis = [| (fun x -> x); (fun _ -> 1.0) |] in
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) +. 5.0) xs in
  let c = Linfit.fit ~basis ~xs ~ys () in
  check_float ~rel:1e-9 "slope" 3.0 c.(0);
  check_float ~rel:1e-9 "intercept" 5.0 c.(1)

let test_linfit_formula3_roundtrip () =
  (* Synthesize timings from known constants; the fit must recover them. *)
  let t_loop = 5e-9 and t_cond = 2e-8 and t_subset = 4e-8 in
  let ns = Array.init 10 (fun i -> i + 4) in
  let times = Array.map (fun n -> Linfit.eval_formula3 ~t_loop ~t_cond ~t_subset n) ns in
  let fl, fc, fs = Linfit.fit_formula3 ~ns ~times in
  check_float ~rel:1e-6 "t_loop" t_loop fl;
  check_float ~rel:1e-6 "t_cond" t_cond fc;
  check_float ~rel:1e-6 "t_subset" t_subset fs;
  let predicted = Array.map (fun n -> Linfit.eval_formula3 ~t_loop:fl ~t_cond:fc ~t_subset:fs n) ns in
  check_float ~rel:1e-9 "r^2" 1.0 (Linfit.r_squared ~predicted ~observed:times)

let test_linfit_singular () =
  Alcotest.check_raises "singular" (Failure "Linfit.solve: singular matrix") (fun () ->
      ignore (Linfit.solve [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] [| 1.0; 2.0 |]))

let test_ascii_table () =
  let rendered =
    Ascii_table.render ~header:[| "name"; "value" |] [| [| "a"; "1" |]; [| "bbb"; "22" |] |]
  in
  Alcotest.(check bool) "has separator" true (String.length rendered > 0);
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* all non-empty lines equal width *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths;
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Ascii_table.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Ascii_table.render ~header:[| "a"; "b" |] [| [| "x" |] |]))

let test_spearman () =
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "perfect agreement" 1.0 (Stats.spearman x [| 10.0; 20.0; 30.0; 40.0; 50.0 |]);
  check_float "perfect reversal" (-1.0) (Stats.spearman x [| 5.0; 4.0; 3.0; 2.0; 1.0 |]);
  (* Monotone but non-linear still ranks perfectly. *)
  check_float "monotone nonlinear" 1.0 (Stats.spearman x (Array.map (fun v -> exp v) x));
  (* Ties get average ranks; a constant column correlates at 0. *)
  check_float "constant column" 0.0 (Stats.spearman x [| 7.0; 7.0; 7.0; 7.0; 7.0 |]);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stats.spearman: length mismatch")
    (fun () -> ignore (Stats.spearman x [| 1.0 |]))

let prop_spearman_bounded =
  QCheck2.Test.make ~count:300 ~name:"spearman stays in [-1, 1]"
    QCheck2.Gen.(
      pair (array_size (int_range 2 20) (float_range (-100.0) 100.0))
        (array_size (int_range 2 20) (float_range (-100.0) 100.0)))
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      let r = Stats.spearman x y in
      r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let prop_log_uniform_in_range =
  QCheck2.Test.make ~count:300 ~name:"log_uniform stays in range"
    QCheck2.Gen.(pair (int_bound 10000) (pair (float_range 0.001 10.0) (float_range 11.0 1e6)))
    (fun (seed, (lo, hi)) ->
      let rng = Rng.create ~seed in
      let v = Rng.log_uniform rng ~lo ~hi in
      v >= lo && v < hi)

let prop_geomean_between_min_max =
  QCheck2.Test.make ~count:300 ~name:"geometric mean lies between min and max"
    QCheck2.Gen.(array_size (int_range 1 20) (float_range 0.1 1e6))
    (fun a ->
      let g = Stats.geometric_mean a in
      let lo, hi = Stats.min_max a in
      g >= lo *. (1.0 -. 1e-9) && g <= hi *. (1.0 +. 1e-9))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independence;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "float helpers" `Quick test_float_more;
    Alcotest.test_case "linfit recovers a line" `Quick test_linfit_exact;
    Alcotest.test_case "Formula (3) fit round-trips" `Quick test_linfit_formula3_roundtrip;
    Alcotest.test_case "linfit rejects singular systems" `Quick test_linfit_singular;
    Alcotest.test_case "ascii table" `Quick test_ascii_table;
    Alcotest.test_case "spearman rank correlation" `Quick test_spearman;
    QCheck_alcotest.to_alcotest prop_spearman_bounded;
    QCheck_alcotest.to_alcotest prop_log_uniform_in_range;
    QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
  ]

(* Blitz_robust: the noise model and the regret harness.

   The load-bearing properties are determinism — the same (mode, level,
   seed) must perturb a catalog byte-identically, and the same harness
   arguments must produce the identical regret report, run to run and
   regardless of domain count — and the two gates the bench experiment
   enforces: exact methods have regret exactly 1 at error level 0, and
   the estimate-free simpli-squared tier is noise-invariant because it
   never reads the numbers being perturbed. *)

open Test_helpers
module Noise = Blitz_robust.Noise
module Regret = Blitz_robust.Regret
module Registry = Blitz_engine.Registry
module Engine = Blitz_engine.Engine
module Workload = Blitz_workload.Workload
module B = Blitz_baselines

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let same_catalog a b =
  let ca = Catalog.cards a and cb = Catalog.cards b in
  Array.length ca = Array.length cb && Array.for_all2 same_float ca cb

let same_graph a b =
  List.equal
    (fun (i1, j1, s1) (i2, j2, s2) -> i1 = i2 && j1 = j2 && same_float s1 s2)
    (Join_graph.edges a) (Join_graph.edges b)

let sample_problem ~n topology =
  let spec =
    Workload.spec ~n ~topology ~model:Cost_model.kdnl ~mean_card:1000.0 ~variability:0.33
  in
  Workload.problem spec

(* ---- the noise model ---- *)

let test_level_zero_is_identity () =
  let catalog, graph = sample_problem ~n:7 Topology.Chain in
  List.iter
    (fun mode ->
      let pcat, pgraph = Noise.perturb ~mode ~level:0.0 ~seed:5 catalog graph in
      Alcotest.(check bool) "cards unchanged" true (same_catalog catalog pcat);
      Alcotest.(check bool) "selectivities unchanged" true (same_graph graph pgraph))
    [ Noise.Lognormal; Noise.Adversarial ]

let test_noise_rejects_bad_levels () =
  let catalog, graph = sample_problem ~n:4 Topology.Star in
  List.iter
    (fun level ->
      Alcotest.check_raises
        (Printf.sprintf "level %g rejected" level)
        (Invalid_argument "Noise.perturb: level must be finite and >= 0")
        (fun () -> ignore (Noise.perturb ~mode:Noise.Lognormal ~level ~seed:1 catalog graph)))
    [ -1.0; Float.nan; Float.infinity ]

let test_noise_outputs_constructible () =
  (* Even at absurd error levels every output cardinality is positive
     and finite and every selectivity is in (0, 1]: the clamps hold. *)
  let catalog, graph = sample_problem ~n:8 Topology.Clique in
  List.iter
    (fun (mode, level) ->
      let pcat, pgraph = Noise.perturb ~mode ~level ~seed:3 catalog graph in
      Array.iter
        (fun c ->
          Alcotest.(check bool) "card positive finite" true (Float.is_finite c && c > 0.0))
        (Catalog.cards pcat);
      List.iter
        (fun (_, _, s) ->
          Alcotest.(check bool) "sel in (0, 1]" true (s > 0.0 && s <= 1.0))
        (Join_graph.edges pgraph))
    [ (Noise.Lognormal, 6.0); (Noise.Adversarial, 40.0) ]

let prop_noise_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"same seed perturbs the catalog byte-identically"
       QCheck2.Gen.(int_bound 1_000_000)
       (fun seed ->
         let rng = Rng.create ~seed in
         let n = 3 + Rng.int rng 7 in
         let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e5 in
         let graph = random_graph rng ~n ~edge_prob:0.6 ~sel_lo:1e-4 ~sel_hi:1.0 in
         let mode = if Rng.int rng 2 = 0 then Noise.Lognormal else Noise.Adversarial in
         let level = Rng.float rng 3.0 in
         let c1, g1 = Noise.perturb ~mode ~level ~seed catalog graph in
         let c2, g2 = Noise.perturb ~mode ~level ~seed catalog graph in
         let c3, g3 = Noise.perturb ~mode ~level ~seed:(seed + 1) catalog graph in
         same_catalog c1 c2 && same_graph g1 g2
         (* ...and the stream actually depends on the seed.  Only the
            continuous lognormal draw makes a cross-seed collision
            impossible; adversarial factors are coin flips, which a
            small problem CAN repeat under another seed. *)
         && ((not (mode = Noise.Lognormal && level > 0.01))
             || not (same_catalog c1 c3 && same_graph g1 g3))))

(* ---- the estimate-free baseline ---- *)

(* simpli-squared reads only the join-graph structure: any perturbation
   of cardinalities and selectivities (structure preserved) leaves its
   plan unchanged. *)
let test_simpli_noise_invariant () =
  List.iter
    (fun topology ->
      let catalog, graph = sample_problem ~n:9 topology in
      let base = B.Simpli.optimize graph in
      List.iter
        (fun seed ->
          let _, pgraph = Noise.perturb ~mode:Noise.Lognormal ~level:3.0 ~seed catalog graph in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: same plan" (Topology.name topology) seed)
            true
            (Plan.equal base (B.Simpli.optimize pgraph)))
        [ 1; 2; 3 ])
    [ Topology.Chain; Topology.Star; Topology.Clique ]

(* ---- the regret harness ---- *)

let small_run () =
  Regret.run ~mode:Noise.Lognormal
    ~topologies:[ Topology.Chain; Topology.Star ]
    ~levels:[ 0.0; 1.0 ] ~seeds:[ 1; 2 ] ~n:6 Cost_model.kdnl

let test_regret_report_deterministic () =
  (* Two sweeps with equal arguments are structurally identical — same
     cells, same per-seed samples, bit for bit. *)
  let a = small_run () in
  let b = small_run () in
  Alcotest.(check bool) "reports identical" true (a = b)

let test_regret_domain_independent () =
  (* The report's DP samples do not depend on domain count: the exact
     tier is bit-identical rank-parallel, so re-running a perturbed
     problem on several domains reproduces the sequential cost the
     harness recorded. *)
  let catalog, graph = sample_problem ~n:7 Topology.Chain in
  let pcat, pgraph = Noise.perturb ~mode:Noise.Lognormal ~level:1.0 ~seed:11 catalog graph in
  let prob = Registry.problem ~graph:pgraph pcat in
  let costs =
    List.map
      (fun num_domains ->
        Engine.with_session ~model:Cost_model.kdnl ~num_domains (fun s ->
            (Engine.optimize ~optimizer:"exact" s prob).Registry.cost))
      [ 1; 2; 4 ]
  in
  match costs with
  | c1 :: rest ->
    List.iter
      (fun c -> Alcotest.(check bool) "bit-identical across domains" true (same_float c1 c))
      rest
  | [] -> assert false

let test_regret_gates () =
  let r = small_run () in
  (* Regret is never meaningfully below 1: the optimum is a true lower
     bound, so a chosen plan can only tie it (within re-costing
     round-off). *)
  List.iter
    (fun (c : Regret.cell) ->
      Array.iter
        (fun regret ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s regret %g >= 1" c.Regret.optimizer c.Regret.topology regret)
            true
            (regret >= 1.0 -. 1e-9))
        c.Regret.regrets)
    r.Regret.cells;
  (* Exact methods at level 0 have regret exactly 1... *)
  List.iter
    (fun (c : Regret.cell) ->
      if c.Regret.optimizer = "exact" && c.Regret.level = 0.0 then
        Array.iter
          (fun regret -> check_float ~rel:1e-12 "exact regret 1 at level 0" 1.0 regret)
          c.Regret.regrets)
    r.Regret.cells;
  (* ...and the estimate-free tier's samples are identical at every
     level of a topology. *)
  List.iter
    (fun topology ->
      let rows =
        List.filter
          (fun (c : Regret.cell) ->
            c.Regret.optimizer = "simpli-squared" && c.Regret.topology = topology)
          r.Regret.cells
      in
      match rows with
      | first :: rest ->
        List.iter
          (fun (c : Regret.cell) ->
            Alcotest.(check bool) "noise-invariant" true (c.Regret.regrets = first.Regret.regrets))
          rest
      | [] -> Alcotest.fail "no simpli-squared cells")
    r.Regret.topologies;
  (* Structure of the sweep: bruteforce excluded, both topologies
     swept, sample counts match the seed list. *)
  Alcotest.(check bool) "bruteforce excluded" true
    (not (List.mem "bruteforce" r.Regret.optimizers));
  List.iter
    (fun (c : Regret.cell) ->
      Alcotest.(check int) "one sample per seed" 2 c.Regret.summary.Regret.samples)
    r.Regret.cells

let test_regret_rejects_empty_axes () =
  Alcotest.check_raises "empty levels"
    (Invalid_argument "Regret.run: levels, seeds and topologies must be non-empty") (fun () ->
      ignore (Regret.run ~levels:[] ~n:5 Cost_model.kdnl))

let suite =
  [
    Alcotest.test_case "level 0 is the identity" `Quick test_level_zero_is_identity;
    Alcotest.test_case "bad levels rejected" `Quick test_noise_rejects_bad_levels;
    Alcotest.test_case "outputs stay constructible" `Quick test_noise_outputs_constructible;
    prop_noise_deterministic;
    Alcotest.test_case "simpli-squared is noise-invariant" `Quick test_simpli_noise_invariant;
    Alcotest.test_case "regret report deterministic" `Quick test_regret_report_deterministic;
    Alcotest.test_case "regret samples domain-independent" `Quick test_regret_domain_independent;
    Alcotest.test_case "regret gates: optimum bound, exact at 1, simpli flat" `Quick
      test_regret_gates;
    Alcotest.test_case "empty axes rejected" `Quick test_regret_rejects_empty_axes;
  ]

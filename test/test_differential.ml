(* Differential testing: every exhaustive strategy in the repository
   must find the same optimum on the same problem — a single property
   cross-checking five independently implemented searches (and, on their
   applicable subdomains, the restricted ones' containment ordering). *)

open Test_helpers
module Blitzsplit = Blitz_core.Blitzsplit
module Blitzsplit_eq = Blitz_core.Blitzsplit_eq
module Blitzsplit_hyper = Blitz_core.Blitzsplit_hyper
module Threshold = Blitz_core.Threshold
module Equivalence = Blitz_graph.Equivalence
module Hypergraph = Blitz_graph.Hypergraph
module B = Blitz_baselines

let agree a b = Blitz_util.Float_more.approx_equal ~rel:1e-6 a b

let prop_exhaustive_strategies_agree =
  QCheck2.Test.make ~count:80
    ~name:"blitzsplit = dpsize = volcano = threshold search = brute force" ~print:problem_print
    (problem_gen ~max_n:7)
    (fun p ->
      let reference = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog p.graph) in
      let checks =
        [
          ("dpsize", (B.Dpsize.optimize p.model p.catalog p.graph).B.Dpsize.cost);
          ("volcano", snd (fst (B.Volcano.optimize p.model p.catalog p.graph)));
          ( "threshold",
            Blitzsplit.best_cost
              (Threshold.optimize_join ~threshold:1.0 ~growth:100.0 p.model p.catalog p.graph)
                .Threshold.result );
          ("bruteforce", snd (B.Bruteforce.optimize p.model p.catalog p.graph));
          ( "hyper embedding",
            Blitzsplit_hyper.best_cost
              (Blitzsplit_hyper.optimize p.model p.catalog (Hypergraph.of_join_graph p.graph)) );
        ]
      in
      List.iter
        (fun (name, cost) ->
          if not (agree reference cost) then
            QCheck2.Test.fail_reportf "%s: %.9g vs blitzsplit %.9g" name cost reference)
        checks;
      true)

let prop_restriction_ordering =
  (* Cost never improves as the search space shrinks:
     bushy+products <= bushy-no-products (dpsize = DPccp)
                    <= left-deep-no-products,
     and bushy+products <= left-deep+products <= left-deep-deferred. *)
  QCheck2.Test.make ~count:80 ~name:"search-space restrictions form a cost lattice"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let slack = 1.0 +. 1e-9 in
      let bushy = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog p.graph) in
      let np = (B.Dpsize.optimize ~cartesian:false p.model p.catalog p.graph).B.Dpsize.cost in
      let ccp = (B.Dpccp.optimize p.model p.catalog p.graph).B.Dpccp.cost in
      let ld = (B.Leftdeep.optimize ~policy:B.Leftdeep.Allowed p.model p.catalog p.graph).B.Leftdeep.cost in
      let ld_def =
        (B.Leftdeep.optimize ~policy:B.Leftdeep.Deferred p.model p.catalog p.graph).B.Leftdeep.cost
      in
      let ld_np =
        (B.Leftdeep.optimize ~policy:B.Leftdeep.Forbidden p.model p.catalog p.graph).B.Leftdeep.cost
      in
      agree np ccp
      && np >= bushy /. slack
      && ld >= bushy /. slack
      && ld_def >= ld /. slack
      && ld_np >= np /. slack
      && ld_np >= ld_def /. slack)

let prop_eq_and_plain_consistency =
  (* Feeding the eq optimizer the exact pairwise classes of a graph whose
     edges all touch two relations must agree with the plain optimizer
     (already tested); additionally, the hypergraph embedding of the
     pairwise projection of ANY class structure agrees with the class
     optimizer whenever no class spans 3+ relations. *)
  QCheck2.Test.make ~count:60 ~name:"eq/hyper/plain consistency on binary structures"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let n = Catalog.n p.catalog in
      let clamped =
        List.map (fun (i, j, s) -> (i, j, Float.min 1.0 s)) (Join_graph.edges p.graph)
      in
      let graph = Join_graph.of_edges ~n clamped in
      let preds =
        List.map
          (fun (i, j, s) -> ((i, Printf.sprintf "c%d_%d" i j), (j, Printf.sprintf "c%d_%d" i j), s))
          clamped
      in
      let eq = Equivalence.of_predicates ~n preds in
      let a = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog graph) in
      let b = Blitzsplit_eq.best_cost (Blitzsplit_eq.optimize p.model p.catalog eq) in
      let c =
        Blitzsplit_hyper.best_cost
          (Blitzsplit_hyper.optimize p.model p.catalog (Hypergraph.of_join_graph graph))
      in
      agree a b && agree a c)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_exhaustive_strategies_agree;
    QCheck_alcotest.to_alcotest prop_restriction_ordering;
    QCheck_alcotest.to_alcotest prop_eq_and_plain_consistency;
  ]

(* The resilient driver: budgets, sanitization, the degradation cascade
   and the chaos contract — for any corrupted input, [Guard.optimize]
   returns a valid plan or a typed error, never an exception. *)

open Test_helpers
module Blitzsplit = Blitz_core.Blitzsplit
module Budget = Blitz_guard.Budget
module Sanitize = Blitz_guard.Sanitize
module Chaos = Blitz_guard.Chaos
module Degrade = Blitz_guard.Degrade
module Guard = Blitz_guard.Guard

let check_float = Test_helpers.check_float

let validate_against catalog plan =
  match Plan.validate ~n:(Catalog.n catalog) plan with
  | Ok () -> true
  | Error _ -> false

(* Appendix-style problems at a chosen size and shape. *)
let topology_problem ~n shape =
  let catalog = Catalog.of_cards (Array.init n (fun i -> 100.0 +. (37.0 *. float_of_int i))) in
  (catalog, Topology.make shape catalog)

(* ---- budgets ---- *)

let test_budget_basics () =
  Alcotest.check_raises "non-positive deadline"
    (Invalid_argument "Budget.create: deadline -1 ms is not positive") (fun () ->
      ignore (Budget.create ~deadline_ms:(-1.0) ()));
  Alcotest.check_raises "non-positive ceiling"
    (Invalid_argument "Budget.create: memory ceiling 0 B is not positive") (fun () ->
      ignore (Budget.create ~max_table_bytes:0 ()));
  Alcotest.(check int) "table footprint n=10" (56 * 1024) (Budget.table_bytes ~n:10 ());
  Alcotest.(check int) "footprint saturates" max_int (Budget.table_bytes ~n:60 ());
  let b = Budget.create ~max_table_bytes:(56 * 1024) () in
  Alcotest.(check bool) "n=10 fits exactly" true (Budget.admits_table b ~n:10);
  Alcotest.(check bool) "n=11 does not" false (Budget.admits_table b ~n:11);
  let u = Budget.unlimited () in
  Alcotest.(check bool) "unlimited never expires" false (Budget.expired u);
  Alcotest.(check bool) "unlimited admits anything" true (Budget.admits_table u ~n:24);
  check_float "unlimited remaining" Float.infinity (Budget.remaining_ms u)

(* ---- sanitization ---- *)

let raw_relations = [ ("a", 10.0); ("b", 20.0); ("c", 30.0) ]

let test_sanitize_lenient_repairs () =
  (* One clampable selectivity, one duplicate edge, one wild endpoint:
     all repairable; the clean graph keeps only the sound edges. *)
  let edges = [ (0, 1, 1.5); (0, 1, 1.5); (1, 7, 0.5); (1, 2, 0.25) ] in
  match Sanitize.check ~relations:raw_relations ~edges () with
  | Error issues ->
    Alcotest.failf "expected repairs, got errors: %s"
      (String.concat "; " (List.map Sanitize.issue_message issues))
  | Ok clean ->
    Alcotest.(check int) "three repairs" 3 (List.length clean.Sanitize.repairs);
    Alcotest.(check int) "two edges survive" 2 (Join_graph.edge_count clean.Sanitize.graph);
    check_float "selectivity clamped to 1" 1.0 (Join_graph.selectivity clean.Sanitize.graph 0 1);
    check_float "good edge untouched" 0.25 (Join_graph.selectivity clean.Sanitize.graph 1 2)

let test_sanitize_strict_rejects () =
  let edges = [ (0, 1, 1.5); (1, 2, 0.25) ] in
  match Sanitize.check ~policy:Sanitize.strict ~relations:raw_relations ~edges () with
  | Ok _ -> Alcotest.fail "strict policy must reject a selectivity above 1"
  | Error [ Sanitize.Selectivity_above_one { i = 0; j = 1; sel } ] ->
    check_float "offending selectivity" 1.5 sel
  | Error issues ->
    Alcotest.failf "unexpected issues: %s"
      (String.concat "; " (List.map Sanitize.issue_message issues))

let test_sanitize_collects_all_errors () =
  (* Under the strict policy every relation defect is an error, and ALL
     of them are reported — not just the first. *)
  let relations = [ ("a", Float.nan); ("", 20.0); ("c", -3.0) ] in
  match Sanitize.check ~policy:Sanitize.strict ~relations ~edges:[] () with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error issues -> Alcotest.(check int) "all three defects reported" 3 (List.length issues)

let test_sanitize_defaults_cardinalities () =
  (* Lenient mode keeps a corrupted catalog plannable: invalid
     cardinalities become the geometric mean of the valid ones, each
     substitution recorded as a fabricated-statistics repair.  Name
     defects stay irreparable under any policy. *)
  let relations = [ ("a", Float.nan); ("b", 20.0); ("c", -3.0); ("d", 5.0) ] in
  (match Sanitize.check ~relations ~edges:[ (0, 1, 0.5) ] () with
  | Error issues ->
    Alcotest.failf "expected repairs, got errors: %s"
      (String.concat "; " (List.map Sanitize.issue_message issues))
  | Ok clean ->
    let defaulted =
      List.filter_map
        (function Sanitize.Cardinality_defaulted { name; substitute; _ } -> Some (name, substitute) | _ -> None)
        clean.Sanitize.repairs
    in
    Alcotest.(check (list (pair string (float 1e-9))))
      "both bad cards defaulted to the geometric mean of the valid ones"
      [ ("a", 10.0); ("c", 10.0) ]
      defaulted;
    check_float "substitute installed in the catalog" 10.0 (Catalog.card clean.Sanitize.catalog 0);
    check_float "valid card untouched" 20.0 (Catalog.card clean.Sanitize.catalog 1);
    Alcotest.(check bool) "repairs are fabricated stats" true
      (Sanitize.fabricated_stats clean.Sanitize.repairs));
  (* With no valid cardinality at all, the substitute falls back to 1. *)
  (match Sanitize.check ~relations:[ ("a", Float.infinity); ("b", 0.0) ] ~edges:[] () with
  | Error _ -> Alcotest.fail "all-invalid catalog must still be repairable"
  | Ok clean ->
    check_float "fallback substitute is 1" 1.0 (Catalog.card clean.Sanitize.catalog 0));
  (* Edge repairs alone are honest — not fabricated statistics. *)
  Alcotest.(check bool) "clamp is not fabricated" false
    (Sanitize.fabricated_stats [ Sanitize.Selectivity_above_one { i = 0; j = 1; sel = 1.5 } ])

(* ---- the degradation cascade ---- *)

(* The headline acceptance scenario: an 18-relation clique under a 1 ms
   deadline.  Exact search is interrupted mid-table; the remaining
   budgeted tiers are skipped; greedy (the terminal, deadline-exempt
   tier) supplies a valid plan, and the provenance names the aborted
   tier. *)
let test_deadline_degrades_to_greedy () =
  let catalog, graph = topology_problem ~n:18 Topology.Clique in
  let budget = Budget.create ~deadline_ms:1.0 () in
  match Guard.optimize ~budget Cost_model.kdnl catalog graph with
  | Error e -> Alcotest.failf "guard failed: %s" (Guard.error_message e)
  | Ok o ->
    Alcotest.(check bool) "plan is valid" true (validate_against catalog o.Guard.plan);
    Alcotest.(check string) "greedy wins" "greedy"
      (Degrade.tier_name o.Guard.provenance.Degrade.winner);
    let exact_attempt =
      List.find (fun a -> a.Degrade.tier = Degrade.Exact) o.Guard.provenance.Degrade.attempts
    in
    (match exact_attempt.Degrade.status with
    | Degrade.Aborted Degrade.Deadline -> ()
    | _ -> Alcotest.fail "provenance must record the exact tier aborting on the deadline");
    check_float ~rel:1e-9 "outcome cost is the plan's cost" o.Guard.cost
      (Plan.cost Cost_model.kdnl catalog graph o.Guard.plan)

let test_memory_cap_skips_to_hybrid () =
  let catalog, graph = topology_problem ~n:12 Topology.Chain in
  (* Ceiling below the 40 * 2^12 B table: both DP tiers must skip
     BEFORE allocating, with the footprint in the provenance. *)
  let budget = Budget.create ~max_table_bytes:(Budget.table_bytes ~n:12 () - 1) () in
  match Guard.optimize ~budget Cost_model.kdnl catalog graph with
  | Error e -> Alcotest.failf "guard failed: %s" (Guard.error_message e)
  | Ok o ->
    Alcotest.(check string) "hybrid wins" "hybrid"
      (Degrade.tier_name o.Guard.provenance.Degrade.winner);
    List.iter
      (fun a ->
        match (a.Degrade.tier, a.Degrade.status) with
        | (Degrade.Exact | Degrade.Thresholded), Degrade.Skipped (Degrade.Memory { needed_bytes; _ })
          ->
          Alcotest.(check int) "needed bytes recorded" (Budget.table_bytes ~n:12 ()) needed_bytes
        | (Degrade.Exact | Degrade.Thresholded), _ -> Alcotest.fail "DP tier was not memory-skipped"
        | _ -> ())
      o.Guard.provenance.Degrade.attempts;
    Alcotest.(check bool) "plan is valid" true (validate_against catalog o.Guard.plan)

let test_unbudgeted_matches_exact () =
  (* With no budget the guard is exactly blitzsplit, asserted across
     random problems at several sizes. *)
  for seed = 1 to 12 do
    let rng = Rng.create ~seed in
    let n = 2 + Rng.int rng 9 in
    let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
    let graph = random_graph rng ~n ~edge_prob:0.5 ~sel_lo:1e-4 ~sel_hi:1.0 in
    let exact = Blitzsplit.best_cost (Blitzsplit.optimize_join Cost_model.kdnl catalog graph) in
    match Guard.optimize Cost_model.kdnl catalog graph with
    | Error e -> Alcotest.failf "seed %d: guard failed: %s" seed (Guard.error_message e)
    | Ok o ->
      Alcotest.(check string) "exact tier wins" "exact"
        (Degrade.tier_name o.Guard.provenance.Degrade.winner);
      check_float ~rel:1e-9 "same cost as blitzsplit" exact o.Guard.cost
  done

let test_every_tier_valid_and_bounded () =
  (* Chain topology so IKKBZ applies: every tier, run in isolation, must
     produce a valid plan whose cost is consistent with Plan.cost and no
     better than the exact optimum. *)
  let catalog, graph = topology_problem ~n:7 Topology.Chain in
  let model = Cost_model.kdnl in
  let optimum = Blitzsplit.best_cost (Blitzsplit.optimize_join model catalog graph) in
  let budget = Budget.unlimited () in
  List.iter
    (fun tier ->
      match Degrade.run_tier ~budget ~seed:1 tier model catalog graph with
      | Error f ->
        Alcotest.failf "tier %s failed: %s" (Degrade.tier_name tier) (Degrade.failure_message f)
      | Ok (plan, cost) ->
        let name = Degrade.tier_name tier in
        Alcotest.(check bool) (name ^ " plan valid") true (validate_against catalog plan);
        check_float ~rel:1e-9 (name ^ " cost consistent") (Plan.cost model catalog graph plan) cost;
        Alcotest.(check bool)
          (Printf.sprintf "%s cost %g >= optimum %g" name cost optimum)
          true
          (cost >= optimum *. (1.0 -. 1e-9)))
    Degrade.default_cascade

let test_cascade_without_terminal_tier () =
  (* A custom cascade with no greedy terminal can fail; the failure still
     carries the full attempt log. *)
  let catalog, graph = topology_problem ~n:12 Topology.Chain in
  let budget = Budget.create ~max_table_bytes:1 () in
  match Guard.optimize ~budget ~cascade:[ Degrade.Exact; Degrade.Thresholded ] Cost_model.kdnl
          catalog graph
  with
  | Ok _ -> Alcotest.fail "expected failure: both tiers are memory-skipped"
  | Error (Guard.No_tier_produced attempts) ->
    Alcotest.(check int) "both attempts logged" 2 (List.length attempts)
  | Error e -> Alcotest.failf "unexpected error: %s" (Guard.error_message e)

(* ---- chaos ---- *)

let base_input ~n =
  let catalog = Catalog.of_cards (Array.init n (fun i -> 50.0 +. (31.0 *. float_of_int i))) in
  let graph = Topology.make Topology.Chain catalog in
  Chaos.input_of catalog graph

(* Structural [=] on corrupted inputs is wrong once a fault injects NaN
   (NaN <> NaN); compare through a NaN-tolerant float equality. *)
let float_eq a b = (Float.is_nan a && Float.is_nan b) || a = b

let input_eq (a : Chaos.input) (b : Chaos.input) =
  List.equal (fun (n1, c1) (n2, c2) -> String.equal n1 n2 && float_eq c1 c2) a.Chaos.relations
    b.Chaos.relations
  && List.equal
       (fun (i1, j1, s1) (i2, j2, s2) -> i1 = i2 && j1 = j2 && float_eq s1 s2)
       a.Chaos.edges b.Chaos.edges

let test_chaos_deterministic () =
  let input = base_input ~n:8 in
  let a, faults_a = Chaos.corrupt ~seed:42 input in
  let b, faults_b = Chaos.corrupt ~seed:42 input in
  Alcotest.(check bool) "same corruption" true (input_eq a b && faults_a = faults_b);
  Alcotest.(check bool) "at least one fault" true (List.length faults_a >= 1);
  let distinct =
    List.exists
      (fun seed -> not (input_eq (fst (Chaos.corrupt ~seed input)) a))
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Alcotest.(check bool) "seeds explore different corruptions" true distinct

let test_scrambled_catalog_degrades_to_estimate_free () =
  (* The corruption Sanitize cannot honestly repair: every cardinality
     is garbage, so the substitutes are fabricated and the guard must
     bypass the cost-based tiers for the estimate-free one.  The plan is
     still valid, and its provenance says where it came from. *)
  let catalog, graph = topology_problem ~n:8 Topology.Chain in
  let input = Chaos.input_of catalog graph in
  let corrupted, faults = Chaos.scramble_catalog ~seed:7 input in
  Alcotest.(check bool) "scramble reports its fault" true (faults = [ Chaos.Catalog_scrambled ]);
  List.iter
    (fun (_, card) ->
      Alcotest.(check bool) "every cardinality is garbage" true
        (Float.is_nan card || not (Float.is_finite card) || card <= 0.0))
    corrupted.Chaos.relations;
  match
    Guard.optimize_input Cost_model.kdnl ~relations:corrupted.Chaos.relations
      ~edges:corrupted.Chaos.edges ()
  with
  | Error e -> Alcotest.failf "guard failed on scrambled catalog: %s" (Guard.error_message e)
  | Ok o ->
    Alcotest.(check string) "estimate-free tier wins" "simpli-squared"
      (Degrade.tier_name o.Guard.provenance.Degrade.winner);
    Alcotest.(check bool) "repairs are fabricated stats" true
      (Sanitize.fabricated_stats o.Guard.repairs);
    Alcotest.(check int) "one repair per relation" 8 (List.length o.Guard.repairs);
    Alcotest.(check bool) "plan is valid" true (validate_against o.Guard.catalog o.Guard.plan);
    (* No cost-based tier may appear in the attempt log: fabricated
       numbers make their costs meaningless. *)
    List.iter
      (fun a ->
        match a.Degrade.tier with
        | Degrade.Estimate_free | Degrade.Greedy -> ()
        | t -> Alcotest.failf "cost-based tier %s ran on fabricated stats" (Degrade.tier_name t))
      o.Guard.provenance.Degrade.attempts

(* The chaos contract, over 150 seeds: corrupt a problem, hand the raw
   statistics to the guard, and require either [Ok] with a plan that
   validates against the SANITIZED inputs at the advertised cost, or a
   typed error — never an exception. *)
let prop_chaos_never_breaks_guard =
  QCheck2.Test.make ~count:150 ~name:"guard survives chaos-corrupted inputs"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 7 in
      let input = base_input ~n in
      let corrupted, _faults = Chaos.corrupt ~seed ~faults:(1 + Rng.int rng 3) input in
      match
        Guard.optimize_input Cost_model.kdnl ~relations:corrupted.Chaos.relations
          ~edges:corrupted.Chaos.edges ()
      with
      | Error _ -> true
      | Ok o ->
        validate_against o.Guard.catalog o.Guard.plan
        && Blitz_util.Float_more.approx_equal ~rel:1e-6 o.Guard.cost
             (Plan.cost Cost_model.kdnl o.Guard.catalog o.Guard.graph o.Guard.plan)
      | exception e ->
        QCheck2.Test.fail_reportf "guard raised %s on seed %d" (Printexc.to_string e) seed)

let suite =
  [
    Alcotest.test_case "budget basics" `Quick test_budget_basics;
    Alcotest.test_case "lenient sanitization repairs" `Quick test_sanitize_lenient_repairs;
    Alcotest.test_case "strict sanitization rejects" `Quick test_sanitize_strict_rejects;
    Alcotest.test_case "all input defects reported" `Quick test_sanitize_collects_all_errors;
    Alcotest.test_case "lenient defaulting fabricates cardinalities" `Quick
      test_sanitize_defaults_cardinalities;
    Alcotest.test_case "deadline degrades to greedy with provenance" `Quick
      test_deadline_degrades_to_greedy;
    Alcotest.test_case "memory ceiling skips DP tiers" `Quick test_memory_cap_skips_to_hybrid;
    Alcotest.test_case "no budget: identical to blitzsplit" `Quick test_unbudgeted_matches_exact;
    Alcotest.test_case "every tier valid and bounded by the optimum" `Quick
      test_every_tier_valid_and_bounded;
    Alcotest.test_case "cascade without terminal tier fails loudly" `Quick
      test_cascade_without_terminal_tier;
    Alcotest.test_case "chaos is deterministic per seed" `Quick test_chaos_deterministic;
    Alcotest.test_case "scrambled catalog degrades to the estimate-free tier" `Quick
      test_scrambled_catalog_degrades_to_estimate_free;
    QCheck_alcotest.to_alcotest prop_chaos_never_breaks_guard;
  ]

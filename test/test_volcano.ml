(* Volcano-style rule-based optimizer: completeness of the rule set and
   agreement with blitzsplit. *)

open Test_helpers
module Volcano = Blitz_baselines.Volcano
module Blitzsplit = Blitz_core.Blitzsplit
module Counters = Blitz_core.Counters

let test_rule_closure_is_complete () =
  (* After closure the memo must contain every ordered split of every
     subset: exactly the 3^n - 2^(n+1) + 1 pairs blitzsplit iterates. *)
  List.iter
    (fun n ->
      let catalog = Catalog.uniform ~n ~card:100.0 in
      let graph = Join_graph.no_predicates ~n in
      let (_, _), stats = Volcano.optimize Cost_model.naive catalog graph in
      Alcotest.(check int)
        (Printf.sprintf "expressions at n=%d" n)
        (Counters.exact_loop_iters n)
        stats.Volcano.expressions;
      Alcotest.(check int)
        (Printf.sprintf "groups at n=%d" n)
        ((1 lsl n) - 1)
        stats.Volcano.groups)
    [ 2; 3; 4; 6; 8 ]

let test_stats_sanity () =
  let catalog = Catalog.uniform ~n:5 ~card:10.0 in
  let graph = Join_graph.no_predicates ~n:5 in
  let (_, _), stats = Volcano.optimize Cost_model.naive catalog graph in
  Alcotest.(check bool) "duplicates were suppressed" true (stats.Volcano.duplicates_suppressed > 0);
  Alcotest.(check bool) "rule applications cover discovery" true
    (stats.Volcano.rule_applications >= stats.Volcano.expressions)

let test_table1_example () =
  let r, _ = Volcano.optimize Cost_model.naive abcd_catalog (Join_graph.no_predicates ~n:4) in
  Test_helpers.check_float "Table 1 optimum" 241000.0 (snd r);
  Alcotest.(check bool) "same plan as the paper (normalized)" true
    (Plan.equal
       (Plan.normalize (fst r))
       Plan.(Join (Join (Leaf 0, Leaf 3), Join (Leaf 1, Leaf 2))))

let prop_matches_blitzsplit =
  QCheck2.Test.make ~count:120 ~name:"Volcano memo optimum = blitzsplit optimum"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let (plan, cost), _ = Volcano.optimize p.model p.catalog p.graph in
      let bs = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog p.graph) in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 cost bs
      && Relset.equal (Plan.relations plan) (Relset.full (Catalog.n p.catalog))
      && Blitz_util.Float_more.approx_equal ~rel:1e-6
           (Plan.cost p.model p.catalog p.graph plan)
           cost)

let prop_discovery_overhead =
  (* The memo reaches the same expressions blitzsplit iterates, but rule
     firing plus duplicate suppression costs strictly more operations
     than the expressions discovered — the constant-factor point of
     Section 4. *)
  QCheck2.Test.make ~count:50 ~name:"rule discovery does more work than integer enumeration"
    QCheck2.Gen.(int_range 3 9)
    (fun n ->
      let catalog = Catalog.uniform ~n ~card:50.0 in
      let graph = Join_graph.no_predicates ~n in
      let (_, _), stats = Volcano.optimize Cost_model.naive catalog graph in
      stats.Volcano.rule_applications + stats.Volcano.duplicates_suppressed
      > Counters.exact_loop_iters n)

let suite =
  [
    Alcotest.test_case "rule closure is complete" `Quick test_rule_closure_is_complete;
    Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
    Alcotest.test_case "Table 1 example" `Quick test_table1_example;
    QCheck_alcotest.to_alcotest prop_matches_blitzsplit;
    QCheck_alcotest.to_alcotest prop_discovery_overhead;
  ]

(* Catalog construction, lookup and statistics. *)

module Catalog = Blitz_catalog.Catalog

let check_float = Test_helpers.check_float

let test_of_list () =
  let c = Catalog.of_list [ ("A", 10.0); ("B", 20.0) ] in
  Alcotest.(check int) "n" 2 (Catalog.n c);
  check_float "card A" 10.0 (Catalog.card c 0);
  check_float "card B" 20.0 (Catalog.card c 1);
  Alcotest.(check string) "name" "B" (Catalog.name c 1);
  Alcotest.(check (option int)) "index_of_name hit" (Some 1) (Catalog.index_of_name c "B");
  Alcotest.(check (option int)) "index_of_name miss" None (Catalog.index_of_name c "Z");
  Alcotest.(check (array string)) "names" [| "A"; "B" |] (Catalog.names c);
  Alcotest.(check (array (float 1e-9))) "cards" [| 10.0; 20.0 |] (Catalog.cards c)

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Catalog.of_list: empty catalog") (fun () ->
      ignore (Catalog.of_list []));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Catalog.of_list: duplicate relation name \"A\"") (fun () ->
      ignore (Catalog.of_list [ ("A", 1.0); ("A", 2.0) ]));
  Alcotest.check_raises "non-positive card"
    (Invalid_argument "Catalog.of_list: relation \"A\" has invalid cardinality 0") (fun () ->
      ignore (Catalog.of_list [ ("A", 0.0) ]));
  Alcotest.check_raises "nan card"
    (Invalid_argument "Catalog.of_list: relation \"A\" has invalid cardinality nan") (fun () ->
      ignore (Catalog.of_list [ ("A", Float.nan) ]));
  Alcotest.check_raises "index range" (Invalid_argument "Catalog: relation index 5 outside [0, 2)")
    (fun () -> ignore (Catalog.card (Catalog.of_list [ ("A", 1.0); ("B", 1.0) ]) 5))

let test_of_cards_naming () =
  let c = Catalog.of_cards [| 5.0; 6.0; 7.0 |] in
  Alcotest.(check (array string)) "R-names" [| "R0"; "R1"; "R2" |] (Catalog.names c)

let test_uniform_and_stats () =
  let c = Catalog.uniform ~n:5 ~card:100.0 in
  check_float "geomean uniform" 100.0 (Catalog.geometric_mean_card c);
  check_float "variability uniform" 0.0 (Catalog.variability c);
  let skewed = Catalog.of_cards [| 10.0; 1000.0 |] in
  check_float "geomean skewed" 100.0 (Catalog.geometric_mean_card skewed);
  (* |R_0| = mu^(1-v): 10 = 100^(1-v) => v = 0.5. *)
  check_float "variability skewed" 0.5 (Catalog.variability skewed)

let prop_geomean_invariant_under_order =
  QCheck2.Test.make ~count:200 ~name:"geometric mean is order-insensitive"
    QCheck2.Gen.(array_size (int_range 1 10) (float_range 1.0 1e5))
    (fun cards ->
      let c1 = Catalog.of_cards cards in
      let rev = Array.of_list (List.rev (Array.to_list cards)) in
      let c2 = Catalog.of_cards rev in
      Blitz_util.Float_more.approx_equal ~rel:1e-9 (Catalog.geometric_mean_card c1)
        (Catalog.geometric_mean_card c2))

let suite =
  [
    Alcotest.test_case "of_list and lookups" `Quick test_of_list;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "of_cards naming" `Quick test_of_cards_naming;
    Alcotest.test_case "uniform and statistics" `Quick test_uniform_and_stats;
    QCheck_alcotest.to_alcotest prop_geomean_invariant_under_order;
  ]

(* Blitz_obs: the metrics registry, the trace ring, and the invariant
   that makes both safe to leave wired into the optimizer's hot seams —
   observability must never change what the optimizer computes.

   Ordering note: the exposition goldens call [Metrics.clear], which
   orphans instruments cached by instrumented modules (they keep
   working, they just stop appearing in snapshots).  That is fine here
   — this suite runs last and nothing below reads those instruments —
   but it is why these are goldens over a freshly cleared registry
   rather than over the process-wide one.

   BLITZ_TEST_DOMAINS=N adds N to the domain axis, as in
   test_engine.ml. *)

open Test_helpers
module Metrics = Blitz_obs.Metrics
module Trace = Blitz_obs.Trace
module Obs = Blitz_obs.Obs
module Json = Blitz_util.Json
module Cost_model = Blitz_cost.Cost_model
module Plan = Blitz_plan.Plan
module Counters = Blitz_core.Counters
module Registry = Blitz_engine.Registry

let with_obs_off f =
  (* Every test leaves the process as it found it: switches off, real
     clock, default ring. *)
  Fun.protect
    ~finally:(fun () ->
      Obs.disable_all ();
      Trace.set_clock_for_testing None;
      Trace.set_capacity 4096)
    f

(* {1 Metrics: switches, registration, exactness} *)

let test_disabled_is_inert () =
  with_obs_off (fun () ->
      Metrics.set_enabled false;
      let c = Metrics.counter "obs_test_inert_total" in
      let g = Metrics.gauge "obs_test_inert_level" in
      let h = Metrics.histogram "obs_test_inert_seconds" in
      Metrics.incr c;
      Metrics.add c 41;
      Metrics.set g 3.0;
      Metrics.observe h 0.5;
      Alcotest.(check int) "disabled incr/add ignored" 0 (Metrics.value c);
      Alcotest.(check (float 0.0)) "disabled set ignored" 0.0 (Metrics.gauge_value g);
      Alcotest.(check int) "disabled observe ignored" 0 (Metrics.histogram_count h);
      Alcotest.(check int) "time runs f without observing" 7 (Metrics.time h (fun () -> 7));
      Alcotest.(check int) "still no observation" 0 (Metrics.histogram_count h);
      (* Monotonicity is an API contract, not a recording effect: it
         must hold even while disabled. *)
      Alcotest.check_raises "negative add raises even when disabled"
        (Invalid_argument "Metrics.add: counters are monotonic (negative delta)") (fun () ->
          Metrics.add c (-1));
      Metrics.set_enabled true;
      Metrics.incr c;
      Metrics.add c 41;
      Metrics.set g 3.0;
      Metrics.observe h 0.5;
      Alcotest.(check int) "enabled counter records" 42 (Metrics.value c);
      Alcotest.(check (float 0.0)) "enabled gauge records" 3.0 (Metrics.gauge_value g);
      Alcotest.(check int) "enabled histogram records" 1 (Metrics.histogram_count h))

let test_registration () =
  with_obs_off (fun () ->
      Metrics.set_enabled true;
      let a = Metrics.counter ~labels:[ ("kind", "x") ] "obs_test_reg_total" in
      let b = Metrics.counter ~labels:[ ("kind", "x") ] "obs_test_reg_total" in
      let other = Metrics.counter ~labels:[ ("kind", "y") ] "obs_test_reg_total" in
      Metrics.incr a;
      Alcotest.(check int) "same (name, labels) is the same instrument" 1 (Metrics.value b);
      Alcotest.(check int) "different labels are a different instrument" 0 (Metrics.value other);
      Alcotest.check_raises "kind mismatch rejected"
        (Invalid_argument "Metrics: \"obs_test_reg_total\" is already registered as a counter")
        (fun () -> ignore (Metrics.gauge ~labels:[ ("kind", "x") ] "obs_test_reg_total"));
      let _ = Metrics.histogram ~buckets:[| 0.1; 1.0 |] "obs_test_reg_seconds" in
      Alcotest.check_raises "rebucketing rejected"
        (Invalid_argument
           "Metrics: histogram \"obs_test_reg_seconds\" re-registered with different buckets")
        (fun () -> ignore (Metrics.histogram ~buckets:[| 0.2; 1.0 |] "obs_test_reg_seconds"));
      Alcotest.check_raises "non-increasing bounds rejected"
        (Invalid_argument "Metrics.histogram: bucket bounds must be strictly increasing")
        (fun () -> ignore (Metrics.histogram ~buckets:[| 1.0; 1.0 |] "obs_test_reg_bad")))

let test_concurrent_increments_exact () =
  (* The domain-safety claim held to numbers: hammer one counter and
     one histogram from several domains at once; every update must
     land.  A plain [int ref] loses updates at these rates. *)
  with_obs_off (fun () ->
      Metrics.set_enabled true;
      let c = Metrics.counter "obs_test_concurrent_total" in
      let h = Metrics.histogram ~buckets:[| 0.5; 1.5 |] "obs_test_concurrent_obs" in
      let per_domain = 50_000 and num_domains = 2 in
      let work () =
        for i = 1 to per_domain do
          Metrics.incr c;
          Metrics.add c 2;
          Metrics.observe h (if i mod 2 = 0 then 0.25 else 1.0)
        done
      in
      let domains = List.init num_domains (fun _ -> Domain.spawn work) in
      List.iter Domain.join domains;
      Alcotest.(check int) "every increment landed" (3 * per_domain * num_domains) (Metrics.value c);
      Alcotest.(check int) "every observation landed" (per_domain * num_domains)
        (Metrics.histogram_count h);
      Alcotest.(check (float 1e-6)) "sum exact (representable summands)"
        (float_of_int (per_domain * num_domains) *. 0.625)
        (Metrics.histogram_sum h))

let test_quantile () =
  with_obs_off (fun () ->
      Metrics.set_enabled true;
      let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 3.0; 4.0 |] "obs_test_quantile" in
      Alcotest.(check bool) "empty histogram has no quantile" true
        (Float.is_nan (Metrics.quantile h 0.5));
      List.iter (Metrics.observe h) [ 0.5; 1.5; 2.5; 3.5 ];
      Alcotest.(check (float 1e-9)) "median interpolates to bucket edge" 2.0
        (Metrics.quantile h 0.5);
      Alcotest.(check (float 1e-9)) "q=0.25" 1.0 (Metrics.quantile h 0.25);
      Alcotest.(check (float 1e-9)) "q=1" 4.0 (Metrics.quantile h 1.0);
      Alcotest.(check (float 1e-9)) "q=0" 0.0 (Metrics.quantile h 0.0);
      Metrics.observe h 100.0;
      Alcotest.(check (float 1e-9)) "+Inf bucket clamps to the top finite bound" 4.0
        (Metrics.quantile h 1.0);
      Alcotest.check_raises "q outside [0, 1]"
        (Invalid_argument "Metrics.quantile: q outside [0, 1]") (fun () ->
          ignore (Metrics.quantile h 1.5)))

(* {1 Tracing: spans, the ring, wraparound} *)

(* A deterministic clock ticking whole seconds: 1.0, 2.0, 3.0, ...
   Whole seconds stay exact through the seconds -> microseconds
   conversion, so golden comparisons are exact equality. *)
let install_ticking_clock () =
  let t = ref 0.0 in
  Trace.set_clock_for_testing
    (Some
       (fun () ->
         t := !t +. 1.0;
         !t))

let test_span_nesting () =
  with_obs_off (fun () ->
      install_ticking_clock ();
      Trace.set_capacity 16;
      Trace.set_enabled true;
      let result = Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> 42)) in
      Alcotest.(check int) "span returns f's value" 42 result;
      (match Trace.events () with
      | [ inner; outer ] ->
        Alcotest.(check string) "inner completes first" "inner" inner.Trace.name;
        Alcotest.(check string) "outer completes last" "outer" outer.Trace.name;
        Alcotest.(check (float 0.0)) "inner ts" 2e6 inner.Trace.ts_us;
        Alcotest.(check (float 0.0)) "inner dur" 1e6 inner.Trace.dur_us;
        Alcotest.(check (float 0.0)) "outer ts" 1e6 outer.Trace.ts_us;
        Alcotest.(check (float 0.0)) "outer dur (brackets inner)" 3e6 outer.Trace.dur_us;
        Alcotest.(check bool) "nesting: outer contains inner" true
          (outer.Trace.ts_us <= inner.Trace.ts_us
          && inner.Trace.ts_us +. inner.Trace.dur_us <= outer.Trace.ts_us +. outer.Trace.dur_us)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
      (* A span is recorded even when the traced function raises. *)
      (try Obs.span "raises" (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "raising span still recorded" 3 (List.length (Trace.events ()));
      (* Disabled spans record nothing and never read the clock. *)
      Trace.set_enabled false;
      ignore (Obs.span "ghost" (fun () -> ()));
      Obs.instant "ghost-mark";
      Alcotest.(check int) "disabled span not recorded" 3 (List.length (Trace.events ())))

let test_ring_wraparound () =
  with_obs_off (fun () ->
      install_ticking_clock ();
      Trace.set_capacity 3;
      Trace.set_enabled true;
      Alcotest.(check int) "capacity took" 3 (Trace.capacity ());
      List.iter (fun i -> Obs.instant (Printf.sprintf "e%d" i)) [ 1; 2; 3; 4; 5 ];
      Alcotest.(check (list string)) "ring keeps the newest, oldest first" [ "e3"; "e4"; "e5" ]
        (List.map (fun e -> e.Trace.name) (Trace.events ()));
      Alcotest.(check int) "overwritten events counted" 2 (Trace.dropped ());
      Trace.clear ();
      Alcotest.(check int) "clear empties the ring" 0 (List.length (Trace.events ()));
      Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped ());
      Alcotest.check_raises "non-positive capacity rejected"
        (Invalid_argument "Trace.set_capacity: capacity must be positive") (fun () ->
          Trace.set_capacity 0))

(* {1 Exposition goldens} *)

let test_prometheus_golden () =
  with_obs_off (fun () ->
      Metrics.clear ();
      Metrics.set_enabled true;
      let ca = Metrics.counter ~help:"Things done" ~labels:[ ("kind", "a") ] "test_things_total" in
      let cb = Metrics.counter ~help:"Things done" ~labels:[ ("kind", "b") ] "test_things_total" in
      let g = Metrics.gauge ~help:"Level" "test_level" in
      let h = Metrics.histogram ~help:"Lat" ~buckets:[| 0.1; 1.0 |] "test_lat_seconds" in
      Metrics.add ca 3;
      Metrics.incr cb;
      Metrics.set g 2.5;
      List.iter (Metrics.observe h) [ 0.05; 0.5; 5.0 ];
      let expected =
        String.concat "\n"
          [
            "# HELP test_lat_seconds Lat";
            "# TYPE test_lat_seconds histogram";
            "test_lat_seconds_bucket{le=\"0.1\"} 1";
            "test_lat_seconds_bucket{le=\"1\"} 2";
            "test_lat_seconds_bucket{le=\"+Inf\"} 3";
            "test_lat_seconds_sum 5.55";
            "test_lat_seconds_count 3";
            "# HELP test_level Level";
            "# TYPE test_level gauge";
            "test_level 2.5";
            "# HELP test_things_total Things done";
            "# TYPE test_things_total counter";
            "test_things_total{kind=\"a\"} 3";
            "test_things_total{kind=\"b\"} 1";
            "";
          ]
      in
      Alcotest.(check string) "prometheus text exposition" expected (Metrics.to_prometheus ());
      (* [reset] zeroes values but keeps registrations visible. *)
      Metrics.reset ();
      Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value ca);
      Alcotest.(check bool) "reset keeps the family exposed" true
        (List.length (Metrics.snapshot ()) = 4);
      Metrics.clear ();
      Alcotest.(check int) "clear drops registrations" 0 (List.length (Metrics.snapshot ())))

let test_chrome_golden () =
  with_obs_off (fun () ->
      install_ticking_clock ();
      Trace.set_capacity 8;
      Trace.set_enabled true;
      ignore (Obs.span ~attrs:[ ("k", "3") ] "rank" (fun () -> Obs.instant "mark"));
      let expected =
        (* Clock ticks: rank t0 = 1s, mark = 2s, rank t1 = 3s; export
           rebases onto the earliest event (the rank span's start). *)
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "mark");
                ("cat", Json.String "blitz");
                ("ph", Json.String "X");
                ("ts", Json.Float 1e6);
                ("dur", Json.Float 0.0);
                ("pid", Json.Int 1);
                ("tid", Json.Int 0);
                ("args", Json.Obj []);
              ];
            Json.Obj
              [
                ("name", Json.String "rank");
                ("cat", Json.String "blitz");
                ("ph", Json.String "X");
                ("ts", Json.Float 0.0);
                ("dur", Json.Float 2e6);
                ("pid", Json.Int 1);
                ("tid", Json.Int 0);
                ("args", Json.Obj [ ("k", Json.String "3") ]);
              ];
          ]
      in
      Alcotest.(check bool) "chrome trace document" true (Trace.to_chrome () = expected);
      let path = Filename.temp_file "blitz_obs" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.write_chrome path;
          let contents = In_channel.with_open_text path In_channel.input_all in
          Alcotest.(check string) "written file is the pretty-printed document"
            (Json.to_string ~indent:true expected ^ "\n")
            contents))

(* {1 The invariant: observability never changes the answer} *)

let env_domains =
  match Sys.getenv_opt "BLITZ_TEST_DOMAINS" with
  | None -> []
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 && d <= 128 -> [ d ]
    | _ -> failwith (Printf.sprintf "BLITZ_TEST_DOMAINS=%S is not a domain count in [1, 128]" s))

let domain_axis = List.sort_uniq compare ([ 1; 2; 4 ] @ env_domains)

let counters_equal a b =
  a.Counters.subsets = b.Counters.subsets
  && a.Counters.loop_iters = b.Counters.loop_iters
  && a.Counters.operand_sums = b.Counters.operand_sums
  && a.Counters.dprime_evals = b.Counters.dprime_evals
  && a.Counters.improvements = b.Counters.improvements
  && a.Counters.threshold_skips = b.Counters.threshold_skips
  && a.Counters.infeasible = b.Counters.infeasible
  && a.Counters.passes = b.Counters.passes

let outcome_equal (a : Registry.outcome) (b : Registry.outcome) =
  compare a.Registry.cost b.Registry.cost = 0
  && (match (a.Registry.plan, b.Registry.plan) with
     | Some p, Some q -> Plan.equal p q
     | None, None -> true
     | _ -> false)
  && a.Registry.passes = b.Registry.passes
  && compare a.Registry.final_threshold b.Registry.final_threshold = 0
  && Option.equal counters_equal a.Registry.counters b.Registry.counters

let problem_of_seed seed =
  let rng = Blitz_util.Rng.create ~seed in
  let n = 2 + Blitz_util.Rng.int rng 5 in
  let catalog = random_catalog rng ~n ~lo:1.0 ~hi:1e4 in
  if seed mod 3 = 2 then Registry.problem catalog
  else
    let graph =
      random_graph rng ~n ~edge_prob:(Blitz_util.Rng.float rng 1.0) ~sel_lo:1e-4 ~sel_hi:1.0
    in
    Registry.problem ~graph catalog

let run_with ~obs ~optimizer ~num_domains model p =
  if obs then Obs.enable_all () else Obs.disable_all ();
  Fun.protect
    ~finally:(fun () -> Obs.disable_all ())
    (fun () ->
      let o =
        Registry.optimize ~optimizer
          (Registry.ctx ~num_domains ~counters:(Counters.create ()) model)
          p
      in
      { o with Registry.table = None })

let test_obs_bit_identical =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:12
       ~name:"plans, costs and counters identical with observability on vs off"
       (QCheck2.Gen.int_bound 1_000_000) (fun seed ->
         with_obs_off (fun () ->
             Trace.set_capacity 256;
             let p = problem_of_seed seed in
             let model = Cost_model.kdnl in
             List.for_all
               (fun num_domains ->
                 List.for_all
                   (fun optimizer ->
                     let off = run_with ~obs:false ~optimizer ~num_domains model p in
                     let on = run_with ~obs:true ~optimizer ~num_domains model p in
                     outcome_equal off on)
                   [ "exact"; "thresholded"; "hybrid"; "greedy" ])
               domain_axis)))

let suite =
  [
    Alcotest.test_case "disabled recording is inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "registration: idempotent, kind- and bucket-checked" `Quick
      test_registration;
    Alcotest.test_case "concurrent increments sum exactly" `Quick
      test_concurrent_increments_exact;
    Alcotest.test_case "histogram quantiles" `Quick test_quantile;
    Alcotest.test_case "span nesting and raise-safety" `Quick test_span_nesting;
    Alcotest.test_case "ring wraparound and clear" `Quick test_ring_wraparound;
    Alcotest.test_case "prometheus exposition golden" `Quick test_prometheus_golden;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    test_obs_bit_identical;
  ]

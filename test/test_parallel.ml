(* Rank-parallel blitzsplit: the parallel optimizer must be
   bit-identical to the sequential one (cost, plan, counters), the
   domain pool must balance/propagate/survive, and a deadline probe must
   abort a parallel run within one chunk of expiring.

   BLITZ_TEST_DOMAINS=N adds N to every domain-count axis, so CI can run
   the whole file at a controlled width on multi-core hosts. *)

open Test_helpers
module Blitzsplit = Blitz_core.Blitzsplit
module Threshold = Blitz_core.Threshold
module Counters = Blitz_core.Counters
module Dp_table = Blitz_core.Dp_table
module Parallel = Blitz_parallel.Parallel_blitzsplit
module Pool = Blitz_parallel.Pool
module Budget = Blitz_guard.Budget

let check_float = Test_helpers.check_float

let env_domains =
  match Sys.getenv_opt "BLITZ_TEST_DOMAINS" with
  | None -> []
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 && d <= 128 -> [ d ]
    | _ -> failwith (Printf.sprintf "BLITZ_TEST_DOMAINS=%S is not a domain count in [1, 128]" s))

let domain_axis = List.sort_uniq compare ([ 1; 2; 4 ] @ env_domains)

(* {1 Combinatorial helpers} *)

let test_gosper_next () =
  (* Gosper's hack enumerates same-popcount integers in increasing
     order; collecting from the smallest rank-2 subset of 5 bits must
     yield exactly the C(5,2) = 10 subsets, sorted. *)
  let expected =
    List.filter (fun s -> Blitz_bitset.Relset.cardinal s = 2) (List.init 32 Fun.id)
  in
  let rec collect s acc =
    if s >= 32 then List.rev acc else collect (Parallel.gosper_next s) (s :: acc)
  in
  Alcotest.(check (list int)) "all 2-subsets of 5 in order" expected (collect 0b11 [])

let test_binomial_table () =
  let binom = Parallel.binomial_table 10 in
  Alcotest.(check int) "C(10,3)" 120 binom.(10).(3);
  Alcotest.(check int) "C(10,0)" 1 binom.(10).(0);
  Alcotest.(check int) "C(10,10)" 1 binom.(10).(10);
  Alcotest.(check int) "C(7,2)" 21 binom.(7).(2)

let test_unrank_matches_gosper () =
  (* unrank_subset m must be the m-th element of the Gosper sequence:
     that equivalence is what lets chunks start mid-rank without
     enumerating their predecessors. *)
  let n = 10 in
  let binom = Parallel.binomial_table n in
  List.iter
    (fun k ->
      let count = binom.(n).(k) in
      let s = ref ((1 lsl k) - 1) in
      for m = 0 to count - 1 do
        Alcotest.(check int)
          (Printf.sprintf "unrank k=%d m=%d" k m)
          !s
          (Parallel.unrank_subset binom ~k m);
        if m < count - 1 then s := Parallel.gosper_next !s
      done)
    [ 1; 3; 7; n ]

(* {1 Pool} *)

let test_pool_runs_every_chunk_once () =
  List.iter
    (fun num_domains ->
      Pool.with_pool ~num_domains (fun pool ->
          Alcotest.(check int) "num_domains" num_domains (Pool.num_domains pool);
          (* Two consecutive jobs on one pool: reuse must work, and each
             chunk must be executed exactly once (per-worker tallies
             summed at the barrier). *)
          List.iter
            (fun chunks ->
              let hits = Array.make chunks 0 in
              let claimed = Array.make num_domains 0 in
              Pool.run pool ~chunks (fun ~worker c ->
                  hits.(c) <- hits.(c) + 1;
                  claimed.(worker) <- claimed.(worker) + 1);
              Array.iteri
                (fun c h -> Alcotest.(check int) (Printf.sprintf "chunk %d once" c) 1 h)
                hits;
              Alcotest.(check int)
                "claims sum to chunk count" chunks
                (Array.fold_left ( + ) 0 claimed))
            [ 37; 1; 0 ]))
    domain_axis

exception Boom

let test_pool_propagates_exception_and_survives () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      Alcotest.check_raises "job exception re-raised" Boom (fun () ->
          Pool.run pool ~chunks:16 (fun ~worker:_ c -> if c = 5 then raise Boom));
      (* The pool must be quiescent and reusable after a poisoned job. *)
      let total = Atomic.make 0 in
      Pool.run pool ~chunks:16 (fun ~worker:_ c -> ignore (Atomic.fetch_and_add total c));
      Alcotest.(check int) "reusable after exception" 120 (Atomic.get total))

(* {1 Parallel = sequential, bit for bit} *)

let check_identical ~msg seq par =
  Alcotest.(check bool)
    (msg ^ ": identical cost") true
    (compare (Blitzsplit.best_cost seq) (Blitzsplit.best_cost par) = 0);
  Alcotest.(check bool)
    (msg ^ ": identical plan") true
    (Plan.equal (Blitzsplit.best_plan_exn seq) (Blitzsplit.best_plan_exn par))

let prop_parallel_matches_sequential =
  QCheck2.Test.make ~count:60
    ~name:"parallel = sequential: cost, plan and counters (n <= 12)"
    ~print:problem_print (problem_gen ~max_n:12)
    (fun { catalog; graph; model; _ } ->
      let seq_ctr = Counters.create () in
      let seq = Blitzsplit.optimize_join ~counters:seq_ctr model catalog graph in
      List.iter
        (fun d ->
          let par_ctr = Counters.create () in
          let par =
            Parallel.optimize_join ~num_domains:d ~min_parallel_n:2 ~counters:par_ctr model
              catalog graph
          in
          let msg what = Printf.sprintf "domains=%d %s" d what in
          if compare (Blitzsplit.best_cost seq) (Blitzsplit.best_cost par) <> 0 then
            QCheck2.Test.fail_reportf "%s: cost %.17g vs sequential %.17g" (msg "cost")
              (Blitzsplit.best_cost par) (Blitzsplit.best_cost seq);
          if not (Plan.equal (Blitzsplit.best_plan_exn seq) (Blitzsplit.best_plan_exn par))
          then QCheck2.Test.fail_reportf "%s differs" (msg "plan");
          (* Counters are sums of per-subset events, so the merged
             per-domain totals must equal the sequential counts exactly
             (passes counts the optimization pass in both). *)
          List.iter
            (fun (name, f) ->
              if f par_ctr <> f seq_ctr then
                QCheck2.Test.fail_reportf "%s: %d vs sequential %d" (msg name) (f par_ctr)
                  (f seq_ctr))
            [
              ("subsets", fun (c : Counters.t) -> c.Counters.subsets);
              ("loop_iters", fun c -> c.Counters.loop_iters);
              ("improvements", fun c -> c.Counters.improvements);
              ("passes", fun c -> c.Counters.passes);
            ])
        domain_axis;
      true)

let test_parallel_product_identical () =
  let catalog = random_catalog (Rng.create ~seed:7) ~n:11 ~lo:1.0 ~hi:1e4 in
  let seq = Blitzsplit.optimize_product Cost_model.naive catalog in
  List.iter
    (fun d ->
      let par =
        Parallel.optimize_product ~num_domains:d ~min_parallel_n:2 Cost_model.naive catalog
      in
      check_identical ~msg:(Printf.sprintf "product domains=%d" d) seq par;
      Alcotest.(check bool)
        "product table has no fan column" false
        (Dp_table.has_pi_fan par.Blitzsplit.table))
    domain_axis

let test_parallel_product_equals_empty_graph_join () =
  let catalog = random_catalog (Rng.create ~seed:11) ~n:9 ~lo:1.0 ~hi:1e3 in
  let product =
    Parallel.optimize_product ~num_domains:2 ~min_parallel_n:2 Cost_model.naive catalog
  in
  let join =
    Parallel.optimize_join ~num_domains:2 ~min_parallel_n:2 Cost_model.naive catalog
      (Join_graph.of_edges ~n:9 [])
  in
  check_identical ~msg:"product vs empty-graph join" product join

let test_parallel_threshold_multipass () =
  (* The parallel threshold driver reuses one pool across passes and
     must reproduce the sequential multi-pass outcome exactly
     (Table 1's optimum 241000, reached on the same pass). *)
  let seq =
    Threshold.optimize_product ~growth:10.0 ~threshold:100.0 Cost_model.naive abcd_catalog
  in
  List.iter
    (fun d ->
      let par =
        Parallel.threshold_optimize_product ~num_domains:d ~min_parallel_n:2 ~growth:10.0
          ~threshold:100.0
          Cost_model.naive abcd_catalog
      in
      Alcotest.(check int) "same pass count" seq.Threshold.passes par.Threshold.passes;
      check_float "same final threshold" seq.Threshold.final_threshold
        par.Threshold.final_threshold;
      check_identical
        ~msg:(Printf.sprintf "threshold domains=%d" d)
        seq.Threshold.result par.Threshold.result)
    domain_axis

(* {1 Deadline: domain-safe latch and one-chunk abort} *)

let test_budget_latch_is_sticky_until_rearmed () =
  let budget = Budget.create ~deadline_ms:0.01 () in
  let deadline = Unix.gettimeofday () +. 0.01 in
  while Unix.gettimeofday () < deadline do () done;
  Alcotest.(check bool) "expired trips the latch" true (Budget.expired budget);
  Alcotest.(check bool) "stays tripped" true (Budget.expired budget);
  Alcotest.(check bool) "probe closure agrees" true (Budget.interrupt budget ());
  Budget.start budget;
  Alcotest.(check bool) "start clears the latch" false (Budget.expired budget)

let test_parallel_deadline_aborts_within_one_chunk () =
  (* An already-expired budget must stop a parallel optimization at the
     first probe: every domain polls each 64 subsets and the coordinator
     polls at each rank barrier, so for n = 13 (8178 non-singleton
     subsets) only a handful of subsets may be processed before
     Interrupted surfaces. *)
  let catalog = random_catalog (Rng.create ~seed:3) ~n:13 ~lo:1.0 ~hi:1e4 in
  let budget = Budget.create ~deadline_ms:0.01 () in
  let deadline = Unix.gettimeofday () +. 0.01 in
  while Unix.gettimeofday () < deadline do () done;
  Alcotest.(check bool) "budget already expired" true (Budget.expired budget);
  List.iter
    (fun d ->
      let ctr = Counters.create () in
      Alcotest.check_raises
        (Printf.sprintf "domains=%d raises Interrupted" d)
        Blitzsplit.Interrupted
        (fun () ->
          ignore
            (Parallel.optimize_product ~num_domains:d ~min_parallel_n:2 ~counters:ctr
               ~interrupt:(Budget.interrupt budget) Cost_model.naive catalog));
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d stopped within one chunk (%d subsets)" d
           ctr.Counters.subsets)
        true (ctr.Counters.subsets < 1000))
    domain_axis

(* {1 Lazy fan column} *)

let test_table_bytes_reflects_fan_column () =
  Alcotest.(check int) "56 bytes/slot with fan" (56 * 1024) (Budget.table_bytes ~n:10 ());
  Alcotest.(check int)
    "48 bytes/slot without fan" (48 * 1024)
    (Budget.table_bytes ~with_pi_fan:false ~n:10 ());
  let t = Dp_table.create ~with_pi_fan:false 4 in
  Alcotest.(check bool) "fanless table" false (Dp_table.has_pi_fan t);
  check_float "fanless pi_fan reads as 1.0" 1.0 (Dp_table.pi_fan t 0b0101);
  Alcotest.(check bool) "default table has fan" true
    (Dp_table.has_pi_fan (Dp_table.create 4))

let suite =
  [
    Alcotest.test_case "gosper_next enumerates ranks in order" `Quick test_gosper_next;
    Alcotest.test_case "binomial table" `Quick test_binomial_table;
    Alcotest.test_case "unrank_subset matches gosper order" `Quick test_unrank_matches_gosper;
    Alcotest.test_case "pool runs every chunk exactly once" `Quick test_pool_runs_every_chunk_once;
    Alcotest.test_case "pool propagates exceptions and survives" `Quick
      test_pool_propagates_exception_and_survives;
    QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
    Alcotest.test_case "parallel product identical, fanless table" `Quick
      test_parallel_product_identical;
    Alcotest.test_case "parallel product = empty-graph join" `Quick
      test_parallel_product_equals_empty_graph_join;
    Alcotest.test_case "parallel threshold multi-pass identical" `Quick
      test_parallel_threshold_multipass;
    Alcotest.test_case "budget latch sticky until rearmed" `Quick
      test_budget_latch_is_sticky_until_rearmed;
    Alcotest.test_case "deadline aborts parallel run within one chunk" `Quick
      test_parallel_deadline_aborts_within_one_chunk;
    Alcotest.test_case "table_bytes reflects lazy fan column" `Quick
      test_table_bytes_reflects_fan_column;
  ]

(* DPccp: enumerator counts against the closed-form formulas and the
   optimizer against the size-driven no-products baseline; then the
   production [blitz_dpccp] library against the baseline, against
   blitzsplit (bit-identity where the spaces agree), across its two
   backends, and the DPconv bottleneck driver against a brute-force
   oracle over every bushy plan. *)

open Test_helpers
module Dpccp = Blitz_baselines.Dpccp
module Dpsize = Blitz_baselines.Dpsize
module Topology = Blitz_graph.Topology
module Ccp_enum = Blitz_dpccp.Ccp_enum
module Dpccp2 = Blitz_dpccp.Dpccp
module Dpconv = Blitz_dpccp.Dpconv
module Blitzsplit = Blitz_core.Blitzsplit
module Float_more = Blitz_util.Float_more

let graph_of topo n =
  let catalog = Catalog.uniform ~n ~card:100.0 in
  Topology.make topo catalog

(* Closed forms (Moerkotte & Neumann 2006, Table 1). *)
let chain_ccp n = ((n * n * n) - n) / 6
let star_ccp n = (n - 1) * (1 lsl (n - 2))
let clique_ccp n = (Blitz_core.Counters.exact_loop_iters n + 0) / 2

let test_csg_counts () =
  (* Chains: n(n+1)/2 connected subgraphs; cliques: 2^n - 1;
     stars: n + (2^(n-1) - 1) (hub subsets plus singletons). *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "chain csg n=%d" n)
        (n * (n + 1) / 2)
        (Dpccp.csg_count (graph_of Topology.Chain n));
      Alcotest.(check int)
        (Printf.sprintf "clique csg n=%d" n)
        ((1 lsl n) - 1)
        (Dpccp.csg_count (graph_of Topology.Clique n)))
    [ 2; 3; 5; 8; 10 ]

let test_ccp_counts_closed_forms () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "chain ccp n=%d" n)
        (chain_ccp n)
        (Dpccp.ccp_count (graph_of Topology.Chain n));
      Alcotest.(check int)
        (Printf.sprintf "star ccp n=%d" n)
        (star_ccp n)
        (Dpccp.ccp_count (graph_of Topology.Star n));
      Alcotest.(check int)
        (Printf.sprintf "clique ccp n=%d" n)
        (clique_ccp n)
        (Dpccp.ccp_count (graph_of Topology.Clique n)))
    [ 2; 3; 5; 8; 10 ]

let test_disconnected_graph () =
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.1) ] in
  let r = Dpccp.optimize Cost_model.naive catalog graph in
  Alcotest.(check bool) "no plan" true (r.Dpccp.plan = None)

let test_small_chain_plan () =
  let catalog = Catalog.of_cards [| 100.0; 10.0; 100.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.01); (1, 2, 0.01) ] in
  let r = Dpccp.optimize Cost_model.naive catalog graph in
  match r.Dpccp.plan with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
    Alcotest.(check int) "no cartesian joins" 0 (Plan.cartesian_join_count graph plan);
    Test_helpers.check_float "cost equals reference" r.Dpccp.cost
      (Plan.cost Cost_model.naive catalog graph plan)

let prop_matches_dpsize_no_products =
  QCheck2.Test.make ~count:120 ~name:"DPccp optimum = size-driven DP without products"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      let a = Dpccp.optimize p.model p.catalog p.graph in
      let b = Dpsize.optimize ~cartesian:false p.model p.catalog p.graph in
      (match (a.Dpccp.plan, b.Dpsize.plan) with
      | None, None -> true
      | Some _, Some _ -> Blitz_util.Float_more.approx_equal ~rel:1e-6 a.Dpccp.cost b.Dpsize.cost
      | Some _, None | None, Some _ -> false))

let prop_every_pair_connected =
  QCheck2.Test.make ~count:100
    ~name:"every enumerated pair is disjoint, connected, adjacent, and unique"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let ok = ref true in
      let seen = Hashtbl.create 256 in
      Dpccp.iter_ccp p.graph (fun s1 s2 ->
          if not (Relset.disjoint s1 s2) then ok := false;
          if not (Join_graph.is_connected_subset p.graph s1) then ok := false;
          if not (Join_graph.is_connected_subset p.graph s2) then ok := false;
          if not (Join_graph.crosses p.graph s1 s2) then ok := false;
          let key = (min s1 s2, max s1 s2) in
          if Hashtbl.mem seen key then ok := false;
          Hashtbl.add seen key ());
      (* Completeness: every unordered split of every connected subset
         into two connected, adjacent halves appears.  dpsize's
         joins_built counts exactly those splits. *)
      let b = Dpsize.optimize ~cartesian:false p.model p.catalog p.graph in
      !ok && Hashtbl.length seen = b.Dpsize.joins_built)

(* ---- the production blitz_dpccp library ---- *)

let test_enum_matches_baseline () =
  (* The zero-allocation enumerator and the baseline agree on both
     counts for every paper topology, including cycles. *)
  List.iter
    (fun topo ->
      List.iter
        (fun n ->
          let g = graph_of topo n in
          let name = Topology.name topo in
          Alcotest.(check int)
            (Printf.sprintf "%s csg n=%d" name n)
            (Dpccp.csg_count g) (Ccp_enum.csg_count g);
          Alcotest.(check int)
            (Printf.sprintf "%s ccp n=%d" name n)
            (Dpccp.ccp_count g) (Ccp_enum.ccp_count g))
        [ 3; 5; 8; 10 ])
    [ Topology.Chain; Topology.Cycle_plus 0; Topology.Star; Topology.Clique ]

let test_enum_closed_forms () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "chain ccp n=%d" n)
        (chain_ccp n)
        (Ccp_enum.ccp_count (graph_of Topology.Chain n));
      Alcotest.(check int)
        (Printf.sprintf "star ccp n=%d" n)
        (star_ccp n)
        (Ccp_enum.ccp_count (graph_of Topology.Star n));
      Alcotest.(check int)
        (Printf.sprintf "clique ccp n=%d" n)
        (clique_ccp n)
        (Ccp_enum.ccp_count (graph_of Topology.Clique n)))
    [ 2; 3; 5; 8; 10 ]

(* An index-ordered path 0-1-2-3-4 (Topology.Chain wires the paper's
   interleaved order, which would obscure these adjacency checks). *)
let path n =
  Join_graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1, 0.1)))

let test_neighborhood () =
  let g = path 5 in
  let set l = List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 l in
  Alcotest.(check int) "chain nbh of {2}" (set [ 1; 3 ]) (Ccp_enum.neighborhood g (set [ 2 ]) 0);
  Alcotest.(check int) "chain nbh minus forbidden" (set [ 3 ])
    (Ccp_enum.neighborhood g (set [ 2 ]) (set [ 1 ]));
  Alcotest.(check int) "chain nbh of {1,2,3}" (set [ 0; 4 ])
    (Ccp_enum.neighborhood g (set [ 1; 2; 3 ]) 0);
  let star = Join_graph.of_edges ~n:5 (List.init 4 (fun i -> (0, i + 1, 0.1))) in
  Alcotest.(check int) "star nbh of hub" (set [ 1; 2; 3; 4 ])
    (Ccp_enum.neighborhood star (set [ 0 ]) 0)

(* Satellite coverage: the Join_graph connectivity helpers the
   enumerator and the registry eligibility check lean on. *)
let test_connectivity_helpers () =
  let chain = path 5 in
  Alcotest.(check bool) "chain connected" true (Join_graph.is_connected chain);
  Alcotest.(check bool) "chain {0,2} not connected" false
    (Join_graph.is_connected_subset chain 0b101);
  Alcotest.(check bool) "chain {0,1,2} connected" true
    (Join_graph.is_connected_subset chain 0b111);
  Alcotest.(check bool) "singleton connected" true (Join_graph.is_connected_subset chain 0b100);
  Alcotest.(check bool) "empty connected" true (Join_graph.is_connected_subset chain 0);
  let split = Join_graph.of_edges ~n:4 [ (0, 1, 0.1); (2, 3, 0.1) ] in
  Alcotest.(check bool) "two components not connected" false (Join_graph.is_connected split);
  Alcotest.(check bool) "component connected" true (Join_graph.is_connected_subset split 0b0011);
  Alcotest.(check bool) "crosses within component" true (Join_graph.crosses split 0b0001 0b0010);
  Alcotest.(check bool) "no cross between components" false
    (Join_graph.crosses split 0b0011 0b1100);
  let single = Join_graph.of_edges ~n:1 [] in
  Alcotest.(check bool) "single relation connected" true (Join_graph.is_connected single)

let prop_new_matches_baseline =
  QCheck2.Test.make ~count:120 ~name:"blitz_dpccp optimum = baseline DPccp"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      let a = Dpccp2.optimize p.model p.catalog p.graph in
      let b = Dpccp.optimize p.model p.catalog p.graph in
      match (a.Dpccp2.plan, b.Dpccp.plan) with
      | None, None -> a.Dpccp2.cost = Float.infinity
      | Some pl, Some _ ->
        Float_more.approx_equal ~rel:1e-6 a.Dpccp2.cost b.Dpccp.cost
        && Plan.cartesian_join_count p.graph pl = 0
        && Float_more.approx_equal ~rel:1e-9 a.Dpccp2.cost
             (Plan.cost p.model p.catalog p.graph pl)
      | Some _, None | None, Some _ -> false)

let prop_bit_identity_vs_blitzsplit =
  (* The headline gate: on the dense backend, whenever blitzsplit's
     optimum is product-free the dpccp cost must agree to <= 8 ulps
     (the backends share Split_loop's fan recurrence, so in practice
     bitwise); when the optimum needs a Cartesian product, excluding
     products can only cost more. *)
  QCheck2.Test.make ~count:150 ~name:"dpccp vs blitzsplit: <= 8 ulps or dominated"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      if not (Join_graph.is_connected p.graph) then true
      else begin
        let b = Blitzsplit.optimize_join p.model p.catalog p.graph in
        let blitz_cost = Blitzsplit.best_cost b in
        let blitz_plan = Blitzsplit.best_plan_exn b in
        let a = Dpccp2.optimize ~backend:`Dense p.model p.catalog p.graph in
        if Plan.cartesian_join_count p.graph blitz_plan = 0 then
          Float_more.within_ulps ~ulps:8 a.Dpccp2.cost blitz_cost
        else a.Dpccp2.cost >= blitz_cost *. (1.0 -. 1e-12)
      end)

let prop_sparse_matches_dense =
  QCheck2.Test.make ~count:120 ~name:"dpccp sparse backend = dense backend"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      let d = Dpccp2.optimize ~backend:`Dense p.model p.catalog p.graph in
      let s = Dpccp2.optimize ~backend:`Sparse p.model p.catalog p.graph in
      d.Dpccp2.connected_sets = s.Dpccp2.connected_sets
      && d.Dpccp2.ccp_pairs = s.Dpccp2.ccp_pairs
      &&
      match (d.Dpccp2.plan, s.Dpccp2.plan) with
      | None, None -> true
      | Some _, Some sp ->
        Float_more.approx_equal ~rel:1e-6 d.Dpccp2.cost s.Dpccp2.cost
        && (match Plan.validate ~n:(Catalog.n p.catalog) sp with Ok () -> true | Error _ -> false)
        && Plan.leaf_count sp = Catalog.n p.catalog
      | Some _, None | None, Some _ -> false)

let test_dpccp_counts_and_table () =
  (* connected_sets/ccp_pairs surface exactly the enumerator's counts;
     the dense backend exposes its DP table, the sparse one does not. *)
  let g = graph_of Topology.Chain 8 in
  let catalog = Catalog.uniform ~n:8 ~card:100.0 in
  let d = Dpccp2.optimize ~backend:`Dense Cost_model.naive catalog g in
  Alcotest.(check int) "connected sets" (Ccp_enum.csg_count g) d.Dpccp2.connected_sets;
  Alcotest.(check int) "ccp pairs" (Ccp_enum.ccp_count g) d.Dpccp2.ccp_pairs;
  Alcotest.(check bool) "dense table exposed" true (d.Dpccp2.table <> None);
  Alcotest.(check bool) "dense backend reported" true (d.Dpccp2.backend = Dpccp2.Dense);
  let s = Dpccp2.optimize ~backend:`Sparse Cost_model.naive catalog g in
  Alcotest.(check bool) "sparse has no table" true (s.Dpccp2.table = None)

(* ---- DPconv ---- *)

let rec plan_bottleneck catalog graph = function
  | Plan.Leaf _ -> 0.0
  | Plan.Join (l, r) as p ->
    Float.max
      (Plan.cardinality catalog graph p)
      (Float.max (plan_bottleneck catalog graph l) (plan_bottleneck catalog graph r))
  | Plan.Multiway { inputs; _ } as p ->
    List.fold_left
      (fun acc input -> Float.max acc (plan_bottleneck catalog graph input))
      (Plan.cardinality catalog graph p)
      inputs

let prop_dpconv_bottleneck_optimal =
  (* Oracle: minimize the largest intermediate over EVERY bushy plan
     (products included — dpconv's space).  The convolution driver must
     match, and its own plan must attain the reported bottleneck. *)
  QCheck2.Test.make ~count:80 ~name:"dpconv bottleneck = brute-force minimum"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let n = Catalog.n p.catalog in
      let full = (1 lsl n) - 1 in
      let oracle =
        List.fold_left
          (fun acc pl -> Float.min acc (plan_bottleneck p.catalog p.graph pl))
          Float.infinity (Plan.enumerate full)
      in
      let r = Dpconv.optimize p.catalog p.graph in
      Float_more.approx_equal ~rel:1e-9 r.Dpconv.bottleneck oracle
      && Float_more.approx_equal ~rel:1e-9
           (plan_bottleneck p.catalog p.graph r.Dpconv.plan)
           r.Dpconv.bottleneck
      && Plan.leaf_count r.Dpconv.plan = n
      && match Plan.validate ~n r.Dpconv.plan with Ok () -> true | Error _ -> false)

let test_dpconv_disconnected () =
  (* Cartesian products are in dpconv's space: a graph dpccp refuses
     still gets a plan, and the bottleneck is the full cross product. *)
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.1) ] in
  let r = Dpconv.optimize catalog graph in
  Alcotest.(check int) "all leaves" 3 (Plan.leaf_count r.Dpconv.plan);
  check_float "bottleneck is final result card" (10.0 *. 20.0 *. 30.0 *. 0.1)
    r.Dpconv.bottleneck

let suite =
  [
    Alcotest.test_case "connected-subgraph counts" `Quick test_csg_counts;
    Alcotest.test_case "ccp counts match closed forms" `Quick test_ccp_counts_closed_forms;
    Alcotest.test_case "disconnected graphs have no plan" `Quick test_disconnected_graph;
    Alcotest.test_case "small chain plan" `Quick test_small_chain_plan;
    QCheck_alcotest.to_alcotest prop_matches_dpsize_no_products;
    QCheck_alcotest.to_alcotest prop_every_pair_connected;
    Alcotest.test_case "enumerator matches baseline counts" `Quick test_enum_matches_baseline;
    Alcotest.test_case "enumerator closed forms" `Quick test_enum_closed_forms;
    Alcotest.test_case "neighborhood helper" `Quick test_neighborhood;
    Alcotest.test_case "join-graph connectivity helpers" `Quick test_connectivity_helpers;
    Alcotest.test_case "result counts and table exposure" `Quick test_dpccp_counts_and_table;
    Alcotest.test_case "dpconv handles disconnected graphs" `Quick test_dpconv_disconnected;
    QCheck_alcotest.to_alcotest prop_new_matches_baseline;
    QCheck_alcotest.to_alcotest prop_bit_identity_vs_blitzsplit;
    QCheck_alcotest.to_alcotest prop_sparse_matches_dense;
    QCheck_alcotest.to_alcotest prop_dpconv_bottleneck_optimal;
  ]

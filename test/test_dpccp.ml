(* DPccp: enumerator counts against the closed-form formulas and the
   optimizer against the size-driven no-products baseline. *)

open Test_helpers
module Dpccp = Blitz_baselines.Dpccp
module Dpsize = Blitz_baselines.Dpsize
module Topology = Blitz_graph.Topology

let graph_of topo n =
  let catalog = Catalog.uniform ~n ~card:100.0 in
  Topology.make topo catalog

(* Closed forms (Moerkotte & Neumann 2006, Table 1). *)
let chain_ccp n = ((n * n * n) - n) / 6
let star_ccp n = (n - 1) * (1 lsl (n - 2))
let clique_ccp n = (Blitz_core.Counters.exact_loop_iters n + 0) / 2

let test_csg_counts () =
  (* Chains: n(n+1)/2 connected subgraphs; cliques: 2^n - 1;
     stars: n + (2^(n-1) - 1) (hub subsets plus singletons). *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "chain csg n=%d" n)
        (n * (n + 1) / 2)
        (Dpccp.csg_count (graph_of Topology.Chain n));
      Alcotest.(check int)
        (Printf.sprintf "clique csg n=%d" n)
        ((1 lsl n) - 1)
        (Dpccp.csg_count (graph_of Topology.Clique n)))
    [ 2; 3; 5; 8; 10 ]

let test_ccp_counts_closed_forms () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "chain ccp n=%d" n)
        (chain_ccp n)
        (Dpccp.ccp_count (graph_of Topology.Chain n));
      Alcotest.(check int)
        (Printf.sprintf "star ccp n=%d" n)
        (star_ccp n)
        (Dpccp.ccp_count (graph_of Topology.Star n));
      Alcotest.(check int)
        (Printf.sprintf "clique ccp n=%d" n)
        (clique_ccp n)
        (Dpccp.ccp_count (graph_of Topology.Clique n)))
    [ 2; 3; 5; 8; 10 ]

let test_disconnected_graph () =
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.1) ] in
  let r = Dpccp.optimize Cost_model.naive catalog graph in
  Alcotest.(check bool) "no plan" true (r.Dpccp.plan = None)

let test_small_chain_plan () =
  let catalog = Catalog.of_cards [| 100.0; 10.0; 100.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.01); (1, 2, 0.01) ] in
  let r = Dpccp.optimize Cost_model.naive catalog graph in
  match r.Dpccp.plan with
  | None -> Alcotest.fail "expected a plan"
  | Some plan ->
    Alcotest.(check int) "no cartesian joins" 0 (Plan.cartesian_join_count graph plan);
    Test_helpers.check_float "cost equals reference" r.Dpccp.cost
      (Plan.cost Cost_model.naive catalog graph plan)

let prop_matches_dpsize_no_products =
  QCheck2.Test.make ~count:120 ~name:"DPccp optimum = size-driven DP without products"
    ~print:problem_print (problem_gen ~max_n:9)
    (fun p ->
      let a = Dpccp.optimize p.model p.catalog p.graph in
      let b = Dpsize.optimize ~cartesian:false p.model p.catalog p.graph in
      (match (a.Dpccp.plan, b.Dpsize.plan) with
      | None, None -> true
      | Some _, Some _ -> Blitz_util.Float_more.approx_equal ~rel:1e-6 a.Dpccp.cost b.Dpsize.cost
      | Some _, None | None, Some _ -> false))

let prop_every_pair_connected =
  QCheck2.Test.make ~count:100
    ~name:"every enumerated pair is disjoint, connected, adjacent, and unique"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let ok = ref true in
      let seen = Hashtbl.create 256 in
      Dpccp.iter_ccp p.graph (fun s1 s2 ->
          if not (Relset.disjoint s1 s2) then ok := false;
          if not (Join_graph.is_connected_subset p.graph s1) then ok := false;
          if not (Join_graph.is_connected_subset p.graph s2) then ok := false;
          if not (Join_graph.crosses p.graph s1 s2) then ok := false;
          let key = (min s1 s2, max s1 s2) in
          if Hashtbl.mem seen key then ok := false;
          Hashtbl.add seen key ());
      (* Completeness: every unordered split of every connected subset
         into two connected, adjacent halves appears.  dpsize's
         joins_built counts exactly those splits. *)
      let b = Dpsize.optimize ~cartesian:false p.model p.catalog p.graph in
      !ok && Hashtbl.length seen = b.Dpsize.joins_built)

let suite =
  [
    Alcotest.test_case "connected-subgraph counts" `Quick test_csg_counts;
    Alcotest.test_case "ccp counts match closed forms" `Quick test_ccp_counts_closed_forms;
    Alcotest.test_case "disconnected graphs have no plan" `Quick test_disconnected_graph;
    Alcotest.test_case "small chain plan" `Quick test_small_chain_plan;
    QCheck_alcotest.to_alcotest prop_matches_dpsize_no_products;
    QCheck_alcotest.to_alcotest prop_every_pair_connected;
  ]

(* Baseline optimizers: each is validated against its own oracle, and the
   paper's qualitative claims (search-space containment) are checked. *)

open Test_helpers
module B = Blitz_baselines
module Blitzsplit = Blitz_core.Blitzsplit

let fig3 = figure3_graph ~sab:0.1 ~sac:0.2 ~sbc:0.3 ~sad:0.4
let check_float = Test_helpers.check_float

(* ---- Eval ---- *)

let test_eval_matches_reference_costing () =
  let eval = B.Eval.make Cost_model.kdnl abcd_catalog fig3 in
  let plan = Plan.(Join (Join (Leaf 0, Leaf 3), Join (Leaf 1, Leaf 2))) in
  check_float ~rel:1e-9 "eval = Plan.cost"
    (Plan.cost Cost_model.kdnl abcd_catalog fig3 plan)
    (B.Eval.cost eval plan);
  Alcotest.check_raises "shared relation rejected"
    (Invalid_argument "Eval.cost: operands share a relation") (fun () ->
      ignore (B.Eval.cost eval Plan.(Join (Leaf 0, Join (Leaf 0, Leaf 1)))))

(* ---- Left-deep DP ---- *)

let test_leftdeep_vs_permutation_oracle () =
  let r = B.Leftdeep.optimize Cost_model.kdnl abcd_catalog fig3 in
  let _, oracle = B.Bruteforce.optimize_leftdeep Cost_model.kdnl abcd_catalog fig3 in
  check_float ~rel:1e-9 "left-deep DP = permutation oracle" oracle r.B.Leftdeep.cost;
  match r.B.Leftdeep.plan with
  | None -> Alcotest.fail "no plan"
  | Some p -> Alcotest.(check bool) "plan is left-deep" true (Plan.is_left_deep p)

let test_leftdeep_policies () =
  (* Disconnected graph: {A-B} and {C-D} components. *)
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0; 40.0 |] in
  let graph = Join_graph.of_edges ~n:4 [ (0, 1, 0.1); (2, 3, 0.2) ] in
  let allowed = B.Leftdeep.optimize ~policy:B.Leftdeep.Allowed Cost_model.naive catalog graph in
  let deferred = B.Leftdeep.optimize ~policy:B.Leftdeep.Deferred Cost_model.naive catalog graph in
  let forbidden = B.Leftdeep.optimize ~policy:B.Leftdeep.Forbidden Cost_model.naive catalog graph in
  Alcotest.(check bool) "allowed feasible" true (allowed.B.Leftdeep.plan <> None);
  Alcotest.(check bool) "deferred feasible" true (deferred.B.Leftdeep.plan <> None);
  Alcotest.(check bool) "forbidden infeasible on disconnected graph" true
    (forbidden.B.Leftdeep.plan = None);
  Alcotest.(check bool) "allowed <= deferred" true
    (allowed.B.Leftdeep.cost <= deferred.B.Leftdeep.cost +. 1e-9);
  (* A connected graph: all three agree with each other only when products
     never help; at minimum Forbidden must be feasible. *)
  let connected = B.Leftdeep.optimize ~policy:B.Leftdeep.Forbidden Cost_model.naive catalog fig3 in
  Alcotest.(check bool) "forbidden feasible on connected graph" true
    (connected.B.Leftdeep.plan <> None)

(* ---- DPsize ---- *)

let test_dpsize_matches_blitzsplit () =
  let r = B.Dpsize.optimize Cost_model.kdnl abcd_catalog fig3 in
  let bs = Blitzsplit.optimize_join Cost_model.kdnl abcd_catalog fig3 in
  check_float ~rel:1e-9 "same optimum" (Blitzsplit.best_cost bs) r.B.Dpsize.cost

let test_dpsize_no_products_on_disconnected_graph () =
  let catalog = Catalog.of_cards [| 10.0; 20.0; 30.0 |] in
  let graph = Join_graph.of_edges ~n:3 [ (0, 1, 0.1) ] in
  let r = B.Dpsize.optimize ~cartesian:false Cost_model.naive catalog graph in
  Alcotest.(check bool) "infeasible" true (r.B.Dpsize.plan = None);
  let with_products = B.Dpsize.optimize ~cartesian:true Cost_model.naive catalog graph in
  Alcotest.(check bool) "feasible with products" true (with_products.B.Dpsize.plan <> None)

let test_dpsize_enumerator_overhead () =
  (* Section 2: the size-driven enumerator considers far more pairs than
     it builds joins — the O(4^n)-vs-O(3^n) gap. *)
  let n = 10 in
  let catalog = Catalog.uniform ~n ~card:100.0 in
  let graph = Join_graph.no_predicates ~n in
  let r = B.Dpsize.optimize Cost_model.naive catalog graph in
  Alcotest.(check bool) "pairs considered > joins built" true
    (r.B.Dpsize.pairs_considered > r.B.Dpsize.joins_built);
  (* joins_built counts each unordered split once: (3^n - 2^(n+1) + 1) / 2. *)
  Alcotest.(check int) "joins built = unordered splits"
    ((Blitz_core.Counters.exact_loop_iters n) / 2)
    r.B.Dpsize.joins_built

(* ---- Greedy ---- *)

let test_greedy_validity () =
  List.iter
    (fun strategy ->
      let plan, cost = B.Greedy.optimize ~strategy Cost_model.kdnl abcd_catalog fig3 in
      Alcotest.(check bool) "valid" true (Result.is_ok (Plan.validate ~n:4 plan));
      Alcotest.(check int) "covers all" 0b1111 (Plan.relations plan);
      check_float ~rel:1e-9 "reported cost is the plan's cost"
        (Plan.cost Cost_model.kdnl abcd_catalog fig3 plan)
        cost)
    [ B.Greedy.Min_result_card; B.Greedy.Min_cost_increase ]

(* ---- Transformations ---- *)

let test_transform_rules () =
  let p = Plan.(Join (Join (Leaf 0, Leaf 1), Leaf 2)) in
  let show q = Plan.to_compact_string q in
  let apply rule = Option.map show (B.Transform.apply_root rule p) in
  Alcotest.(check (option string)) "commute" (Some "(R2 x (R0 x R1))") (apply B.Transform.Commute);
  Alcotest.(check (option string)) "assoc-left" (Some "(R0 x (R1 x R2))")
    (apply B.Transform.Assoc_left);
  Alcotest.(check (option string)) "exchange-left" (Some "((R0 x R2) x R1)")
    (apply B.Transform.Exchange_left);
  Alcotest.(check (option string)) "assoc-right inapplicable" None (apply B.Transform.Assoc_right);
  Alcotest.(check (option string)) "exchange-right inapplicable" None
    (apply B.Transform.Exchange_right);
  (* apply_at into the left child *)
  let deep = Plan.(Join (Join (Leaf 0, Leaf 1), Leaf 2)) in
  match B.Transform.apply_at deep ~path:[ 0 ] B.Transform.Commute with
  | Some q -> Alcotest.(check string) "nested commute" "((R1 x R0) x R2)" (show q)
  | None -> Alcotest.fail "expected applicability"

let test_internal_paths_and_neighbors () =
  let p = Plan.(Join (Join (Leaf 0, Leaf 1), Join (Leaf 2, Leaf 3))) in
  Alcotest.(check int) "3 internal nodes" 3 (List.length (B.Transform.internal_paths p));
  let neighbors = B.Transform.neighbors p in
  Alcotest.(check bool) "has neighbors" true (List.length neighbors > 5);
  List.iter
    (fun q ->
      Alcotest.(check bool) "neighbor valid" true (Result.is_ok (Plan.validate ~n:4 q));
      Alcotest.(check int) "neighbor covers all" 0b1111 (Plan.relations q))
    neighbors

let prop_random_neighbor_preserves_leaves =
  QCheck2.Test.make ~count:300 ~name:"random transformation moves preserve the leaf set"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 3 + Rng.int rng 8 in
      let full = Relset.full n in
      let plan = ref (B.Transform.random_bushy rng full) in
      let ok = ref true in
      for _ = 1 to 30 do
        plan := B.Transform.random_neighbor rng !plan;
        if not (Relset.equal (Plan.relations !plan) full) then ok := false
      done;
      !ok)

let prop_moves_can_reach_all_shapes =
  (* With enough random moves from a vine, bushy shapes appear: the rule
     set is not trapped in left-deep space. *)
  QCheck2.Test.make ~count:50 ~name:"transformation moves escape left-deep space"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let full = Relset.full 6 in
      let plan = ref (B.Transform.random_leftdeep rng full) in
      let saw_bushy = ref false in
      for _ = 1 to 200 do
        plan := B.Transform.random_neighbor rng !plan;
        if not (Plan.is_left_deep !plan) then saw_bushy := true
      done;
      !saw_bushy)

(* ---- Stochastic optimizers ---- *)

let prop_stochastic_sound_and_bounded =
  QCheck2.Test.make ~count:40 ~name:"II / SA / probe return valid plans no better than optimal"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let optimum = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog p.graph) in
      let n = Catalog.n p.catalog in
      let full = Relset.full n in
      let check_result name (plan, cost) =
        if not (Relset.equal (Plan.relations plan) full) then
          QCheck2.Test.fail_reportf "%s: plan does not cover all relations" name;
        if cost < optimum *. (1.0 -. 1e-6) then
          QCheck2.Test.fail_reportf "%s: cost %.9g beats optimum %.9g" name cost optimum;
        let reference = Plan.cost p.model p.catalog p.graph plan in
        if not (Blitz_util.Float_more.approx_equal ~rel:1e-6 reference cost) then
          QCheck2.Test.fail_reportf "%s: reported %.9g but plan costs %.9g" name cost reference
      in
      let rng = Rng.create ~seed:(p.seed + 7) in
      let ii, _ = B.Iterative_improvement.optimize ~rng ~restarts:3 p.model p.catalog p.graph in
      check_result "II" ii;
      let sa, _ = B.Simulated_annealing.optimize ~rng p.model p.catalog p.graph in
      check_result "SA" sa;
      check_result "probe" (B.Random_probe.optimize ~rng ~samples:50 p.model p.catalog p.graph);
      check_result "greedy" (B.Greedy.optimize p.model p.catalog p.graph);
      true)

let test_stochastic_determinism () =
  let run seed =
    let rng = Rng.create ~seed in
    let (p, c), _ = B.Iterative_improvement.optimize ~rng ~restarts:4 Cost_model.kdnl abcd_catalog fig3 in
    (Plan.to_compact_string p, c)
  in
  Alcotest.(check bool) "same seed, same result" true (run 5 = run 5)

(* Containment: left-deep optimum >= bushy optimum; connected-only
   optimum >= unrestricted optimum (the paper's search-space argument). *)
let prop_search_space_containment =
  QCheck2.Test.make ~count:80 ~name:"restricted search spaces never beat the full space"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let bushy = Blitzsplit.best_cost (Blitzsplit.optimize_join p.model p.catalog p.graph) in
      let ld = (B.Leftdeep.optimize p.model p.catalog p.graph).B.Leftdeep.cost in
      let nocross = (B.Dpsize.optimize ~cartesian:false p.model p.catalog p.graph).B.Dpsize.cost in
      let slack = 1.0 +. 1e-9 in
      ld >= bushy /. slack && nocross >= bushy /. slack)

let suite =
  [
    Alcotest.test_case "eval matches reference costing" `Quick test_eval_matches_reference_costing;
    Alcotest.test_case "left-deep DP vs permutation oracle" `Quick
      test_leftdeep_vs_permutation_oracle;
    Alcotest.test_case "left-deep product policies" `Quick test_leftdeep_policies;
    Alcotest.test_case "dpsize = blitzsplit optimum" `Quick test_dpsize_matches_blitzsplit;
    Alcotest.test_case "dpsize without products" `Quick test_dpsize_no_products_on_disconnected_graph;
    Alcotest.test_case "dpsize enumerator overhead (Section 2)" `Quick
      test_dpsize_enumerator_overhead;
    Alcotest.test_case "greedy validity" `Quick test_greedy_validity;
    Alcotest.test_case "transformation rules" `Quick test_transform_rules;
    Alcotest.test_case "paths and neighbors" `Quick test_internal_paths_and_neighbors;
    Alcotest.test_case "stochastic determinism" `Quick test_stochastic_determinism;
    QCheck_alcotest.to_alcotest prop_random_neighbor_preserves_leaves;
    QCheck_alcotest.to_alcotest prop_moves_can_reach_all_shapes;
    QCheck_alcotest.to_alcotest prop_stochastic_sound_and_bounded;
    QCheck_alcotest.to_alcotest prop_search_space_containment;
  ]

(* Blitz_serve: the wire codec, quota buckets, tenant parsing, and the
   live server.

   The codec tests pin the typed decode errors (a malformed line must
   map to a machine-readable code, never an exception — QCheck feeds
   the decoder garbage to prove totality).  The live-server tests drive
   a real socket through the full stack: quota exhaustion answers with
   a typed error instead of hanging, one tenant's cached plan is never
   served to another, and a pipelined overload burst sheds through the
   Degrade cascade — every response still carries a plan and a valid
   provenance tier.

   Sockets use a receive timeout, so a server bug fails the assertion
   rather than hanging the suite. *)

module Json = Blitz_util.Json
module Protocol = Blitz_serve.Protocol
module Quota = Blitz_serve.Quota
module Tenant = Blitz_serve.Tenant
module Server = Blitz_serve.Server
module Engine = Blitz_engine.Engine
module Registry = Blitz_engine.Registry
module Plan_cache = Blitz_cache.Plan_cache
module Degrade = Blitz_guard.Degrade

(* ---- codec ---- *)

let decode_ok line =
  match Protocol.decode line with
  | Ok env -> env
  | Error rej -> Alcotest.failf "decode rejected %s: %s" line (Protocol.error_message rej.Protocol.error)

let decode_err line =
  match Protocol.decode line with
  | Ok _ -> Alcotest.failf "decode accepted %s" line
  | Error rej -> rej

let test_decode_optimize () =
  let env =
    decode_ok
      {|{"blitz":1,"id":7,"method":"optimize","tenant":"acme","params":{"relations":[["a",100],["b",10.5]],"edges":[[0,1,0.1]],"multiway":true}}|}
  in
  Alcotest.(check bool) "id echoed" true (env.Protocol.id = Json.Int 7);
  Alcotest.(check (option string)) "tenant" (Some "acme") env.Protocol.tenant;
  match env.Protocol.request with
  | Protocol.Run { call = Protocol.Optimize; query = Protocol.Inline { relations; edges }; multiway }
    ->
    Alcotest.(check bool) "multiway" true multiway;
    Alcotest.(check int) "relations" 2 (List.length relations);
    Alcotest.(check bool) "cards" true (relations = [ ("a", 100.); ("b", 10.5) ]);
    Alcotest.(check bool) "edges" true (edges = [ (0, 1, 0.1) ])
  | _ -> Alcotest.fail "wrong request shape"

let test_decode_generated () =
  let env =
    decode_ok {|{"blitz":1,"method":"explain","params":{"n":8,"topology":"star","mean_card":50}}|}
  in
  Alcotest.(check bool) "id defaults to null" true (env.Protocol.id = Json.Null);
  match env.Protocol.request with
  | Protocol.Run { call = Protocol.Explain; query = Protocol.Generated g; multiway = false } ->
    Alcotest.(check int) "n" 8 g.n;
    Alcotest.(check string) "topology" "star" g.topology;
    Alcotest.(check (float 0.)) "mean_card" 50. g.mean_card;
    Alcotest.(check (float 0.)) "variability" 0. g.variability
  | _ -> Alcotest.fail "wrong request shape"

let check_code line expected =
  let rej = decode_err line in
  Alcotest.(check string)
    (Printf.sprintf "code for %s" line)
    expected
    (Protocol.error_code rej.Protocol.error)

let test_decode_errors () =
  check_code "not json" "parse_error";
  check_code "[1,2,3]" "invalid_request";
  check_code {|{"id":1,"method":"optimize"}|} "unsupported_version";
  check_code {|{"blitz":2,"method":"optimize"}|} "unsupported_version";
  check_code {|{"blitz":1,"method":"destroy"}|} "unknown_method";
  check_code {|{"blitz":1,"method":"optimize"}|} "invalid_request";
  check_code {|{"blitz":1,"method":"optimize","params":{"n":1}}|} "invalid_request";
  check_code {|{"blitz":1,"method":"optimize","params":{"n":6,"topology":"moebius"}}|}
    "invalid_request";
  check_code {|{"blitz":1,"method":"optimize","params":{"relations":[["a"]]}}|} "invalid_request";
  check_code {|{"blitz":1,"method":"optimize","tenant":7,"params":{"n":4}}|} "invalid_request";
  (* The id survives into the rejection when the line parses as JSON. *)
  let rej = decode_err {|{"blitz":9,"id":"q-1","method":"stats"}|} in
  Alcotest.(check bool) "id recovered" true (rej.Protocol.rid = Json.String "q-1")

let test_response_encoding () =
  Alcotest.(check string) "ok shape"
    {|{"blitz":1,"id":3,"ok":true,"result":{"x":1}}|}
    (Protocol.ok_response ~id:(Json.Int 3) (Json.Obj [ ("x", Json.Int 1) ]));
  let err = Protocol.error_response ~id:Json.Null ~code:"quota_exhausted" ~message:"m" in
  match Json.of_string err with
  | Error e -> Alcotest.fail e
  | Ok v ->
    Alcotest.(check bool) "ok:false" true (Json.member "ok" v = Some (Json.Bool false));
    let code = Option.bind (Json.member "error" v) (Json.member "code") in
    Alcotest.(check bool) "code" true (code = Some (Json.String "quota_exhausted"))

(* Totality: whatever bytes arrive, decode returns a typed result and
   the rejection renders as valid JSON. *)
let test_decode_total_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"decode is total on arbitrary bytes"
       QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (0 -- 200))
       (fun s ->
         match Protocol.decode s with
         | Ok _ -> true
         | Error rej -> (
           ignore (Protocol.error_message rej.Protocol.error);
           match Json.of_string (Protocol.rejected_response rej) with
           | Ok _ -> true
           | Error _ -> false)))

(* Mutate a valid request at one random byte: still total, and never a
   crash deeper in the stack. *)
let test_decode_mutation_qcheck =
  let base =
    {|{"blitz":1,"id":1,"method":"optimize","params":{"relations":[["a",100],["b",10]],"edges":[[0,1,0.1]]}}|}
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"decode is total under single-byte mutation"
       QCheck2.Gen.(pair (0 -- (String.length base - 1)) (char_range '\000' '\255'))
       (fun (i, c) ->
         let b = Bytes.of_string base in
         Bytes.set b i c;
         match Protocol.decode (Bytes.to_string b) with
         | Ok _ -> true
         | Error rej -> Result.is_ok (Json.of_string (Protocol.rejected_response rej))))

(* ---- quota ---- *)

let test_quota_bucket () =
  let q = Quota.create ~burst:2 ~rps:1. () in
  Alcotest.(check bool) "limited" true (Quota.is_limited q);
  Alcotest.(check bool) "1st" true (Quota.try_acquire ~now:0. q);
  Alcotest.(check bool) "2nd" true (Quota.try_acquire ~now:0. q);
  Alcotest.(check bool) "3rd exhausted" false (Quota.try_acquire ~now:0. q);
  Alcotest.(check bool) "refilled after 1s" true (Quota.try_acquire ~now:1. q);
  Alcotest.(check bool) "but only one token" false (Quota.try_acquire ~now:1. q);
  (* Refill clamps at burst. *)
  Alcotest.(check (float 1e-9)) "clamped" 2. (Quota.remaining ~now:100. q);
  (* Time moving backwards refills nothing. *)
  let q2 = Quota.create ~burst:1 ~rps:1000. () in
  Alcotest.(check bool) "spend" true (Quota.try_acquire ~now:50. q2);
  Alcotest.(check bool) "backwards" false (Quota.try_acquire ~now:0. q2)

let test_quota_zero_rps () =
  let q = Quota.create ~burst:1 () in
  Alcotest.(check bool) "burst spent" true (Quota.try_acquire ~now:0. q);
  Alcotest.(check bool) "never refills" false (Quota.try_acquire ~now:1e9 q);
  let u = Quota.unlimited () in
  Alcotest.(check bool) "unlimited" true (Quota.try_acquire u);
  Alcotest.(check (float 0.)) "unlimited remaining" infinity (Quota.remaining u)

let test_tenant_spec () =
  (match Tenant.parse_spec "acme:deadline-ms=50,table-mb=8,rps=100,burst=20;beta:rps=5" with
  | Error e -> Alcotest.fail e
  | Ok [ a; b ] ->
    Alcotest.(check string) "name" "acme" a.Tenant.name;
    Alcotest.(check bool) "deadline" true (a.Tenant.deadline_ms = Some 50.);
    Alcotest.(check bool) "table" true (a.Tenant.max_table_bytes = Some (8 * 1024 * 1024));
    Alcotest.(check bool) "rps" true (a.Tenant.rps = Some 100.);
    Alcotest.(check bool) "burst" true (a.Tenant.burst = Some 20);
    Alcotest.(check string) "second" "beta" b.Tenant.name;
    Alcotest.(check bool) "beta deadline" true (b.Tenant.deadline_ms = None)
  | Ok l -> Alcotest.failf "expected 2 tenants, got %d" (List.length l));
  let bad s = match Tenant.parse_spec s with Ok _ -> Alcotest.failf "accepted %s" s | Error _ -> () in
  bad "acme:rps=fast";
  bad "acme:deadline-ms=-1";
  bad "acme:frobs=1";
  bad "a b:rps=1";
  bad "acme;acme"

(* ---- engine-level cache partitioning (the seam the server rides) ---- *)

let test_cache_tag_partitions () =
  let cache = Plan_cache.create () in
  Engine.with_session ~cache (fun s ->
      let problem =
        Registry.problem
          ~graph:(Blitz_graph.Join_graph.of_edges ~n:3 [ (0, 1, 0.1); (1, 2, 0.01) ])
          (Blitz_catalog.Catalog.of_list [ ("a", 100.); ("b", 10.); ("c", 50.) ])
      in
      let _ = Engine.optimize ~cache_tag:"acme" s problem in
      Alcotest.(check bool) "tagged hit" true
        (Engine.cache_find ~cache_tag:"acme" s ~optimizer:"exact" problem <> None);
      Alcotest.(check bool) "other tenant misses" true
        (Engine.cache_find ~cache_tag:"beta" s ~optimizer:"exact" problem = None);
      Alcotest.(check bool) "untagged misses" true
        (Engine.cache_find s ~optimizer:"exact" problem = None))

(* ---- live server ---- *)

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f (Server.port t))

let connect port =
  let ic, oc = Unix.open_connection (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) in
  (* A stuck server should fail the test, not hang the suite. *)
  Unix.setsockopt_float (Unix.descr_of_in_channel ic) Unix.SO_RCVTIMEO 60.;
  (ic, oc)

let close_client (ic, oc) =
  (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  close_in_noerr ic

let rpc (ic, oc) line =
  output_string oc (line ^ "\n");
  flush oc;
  match input_line ic with
  | line -> Blitz_util.Err.get (Json.of_string line)
  | exception End_of_file -> Alcotest.fail "server closed the connection early"

let get_field path v =
  let rec go v = function
    | [] -> Some v
    | k :: rest -> ( match Json.member k v with Some v -> go v rest | None -> None)
  in
  go v path

let expect_bool msg path v expected =
  match get_field path v with
  | Some (Json.Bool b) -> Alcotest.(check bool) msg expected b
  | other -> Alcotest.failf "%s: field %s is %s" msg (String.concat "." path)
               (match other with Some j -> Json.to_string j | None -> "missing")

let expect_string path v =
  match get_field path v with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "field %s missing or not a string" (String.concat "." path)

let inline_query ~id ~tenant =
  Printf.sprintf
    {|{"blitz":1,"id":%d,"method":"optimize","tenant":"%s","params":{"relations":[["a",100],["b",10],["c",50],["d",25]],"edges":[[0,1,0.1],[1,2,0.01],[2,3,0.5]]}}|}
    id tenant

let test_quota_exhaustion_typed () =
  let tenants = Blitz_util.Err.get (Tenant.parse_spec "acme:burst=1") in
  with_server (Server.config ~port:0 ~tenants ()) (fun port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) (fun () ->
          let r1 = rpc c (inline_query ~id:1 ~tenant:"acme") in
          expect_bool "first request served" [ "ok" ] r1 true;
          let r2 = rpc c (inline_query ~id:2 ~tenant:"acme") in
          expect_bool "second request rejected" [ "ok" ] r2 false;
          Alcotest.(check string) "typed code" "quota_exhausted"
            (expect_string [ "error"; "code" ] r2);
          (* The default tenant's quota is untouched. *)
          let r3 = rpc c (inline_query ~id:3 ~tenant:"default") in
          expect_bool "other tenant unaffected" [ "ok" ] r3 true))

let test_tenant_cache_isolation () =
  let tenants = Blitz_util.Err.get (Tenant.parse_spec "acme;beta") in
  with_server (Server.config ~port:0 ~tenants ()) (fun port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) (fun () ->
          let r1 = rpc c (inline_query ~id:1 ~tenant:"acme") in
          expect_bool "cold" [ "result"; "from_cache" ] r1 false;
          let r2 = rpc c (inline_query ~id:2 ~tenant:"acme") in
          expect_bool "same tenant warm" [ "result"; "from_cache" ] r2 true;
          (* The very same query from another tenant must re-optimize:
             the shared cache is partitioned by the tenant tag. *)
          let r3 = rpc c (inline_query ~id:3 ~tenant:"beta") in
          expect_bool "other tenant cold" [ "result"; "from_cache" ] r3 false;
          Alcotest.(check string) "same plan, own entry"
            (expect_string [ "result"; "plan" ] r1)
            (expect_string [ "result"; "plan" ] r3)))

let valid_tiers =
  [ "exact"; "thresholded"; "dpccp"; "hybrid"; "ikkbz"; "greedy"; "simpli-squared" ]

let test_overload_sheds_with_provenance () =
  (* One worker, shedding from depth 1: a pipelined burst must drain
     through the cascade — every response ok, every tier valid, no
     request dropped or hung. *)
  let burst = 8 in
  with_server (Server.config ~port:0 ~workers:1 ~shed_queue:1 ~shed_deadline_ms:2. ()) (fun port ->
      let ((ic, oc) as c) = connect port in
      Fun.protect ~finally:(fun () -> close_client c) (fun () ->
          for i = 1 to burst do
            output_string oc
              (Printf.sprintf
                 {|{"blitz":1,"id":%d,"method":"optimize","params":{"n":11,"topology":"clique"}}|}
                 i);
            output_string oc "\n"
          done;
          flush oc;
          let sheds = ref 0 in
          for i = 1 to burst do
            match input_line ic with
            | exception End_of_file -> Alcotest.failf "response %d never arrived" i
            | line ->
              let v = Blitz_util.Err.get (Json.of_string line) in
              expect_bool (Printf.sprintf "response %d ok" i) [ "ok" ] v true;
              let tier = expect_string [ "result"; "tier" ] v in
              Alcotest.(check bool)
                (Printf.sprintf "response %d tier %s valid" i tier)
                true (List.mem tier valid_tiers);
              (match get_field [ "result"; "shed" ] v with
              | Some (Json.Bool true) -> incr sheds
              | _ -> ())
          done;
          Alcotest.(check bool)
            (Printf.sprintf "burst shed through the cascade (%d/%d)" !sheds burst)
            true (!sheds >= 1)))

let test_malformed_line_keeps_connection () =
  with_server (Server.config ~port:0 ()) (fun port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) (fun () ->
          let r1 = rpc c "this is not json" in
          expect_bool "rejected" [ "ok" ] r1 false;
          Alcotest.(check string) "parse_error" "parse_error" (expect_string [ "error"; "code" ] r1);
          (* The framing resynchronizes on the newline: the connection
             still serves well-formed requests. *)
          let r2 = rpc c {|{"blitz":1,"id":2,"method":"health"}|} in
          expect_bool "healthy afterwards" [ "ok" ] r2 true;
          Alcotest.(check string) "status ok" "ok" (expect_string [ "result"; "status" ] r2)))

let suite =
  [
    Alcotest.test_case "decode: optimize with inline stats" `Quick test_decode_optimize;
    Alcotest.test_case "decode: generated workload defaults" `Quick test_decode_generated;
    Alcotest.test_case "decode: typed errors and codes" `Quick test_decode_errors;
    Alcotest.test_case "encode: response shapes" `Quick test_response_encoding;
    test_decode_total_qcheck;
    test_decode_mutation_qcheck;
    Alcotest.test_case "quota: token bucket refill" `Quick test_quota_bucket;
    Alcotest.test_case "quota: zero rps never refills" `Quick test_quota_zero_rps;
    Alcotest.test_case "tenant: spec parsing" `Quick test_tenant_spec;
    Alcotest.test_case "cache: tenant tag partitions entries" `Quick test_cache_tag_partitions;
    Alcotest.test_case "server: quota exhaustion is a typed error" `Quick
      test_quota_exhaustion_typed;
    Alcotest.test_case "server: tenant cache isolation" `Quick test_tenant_cache_isolation;
    Alcotest.test_case "server: overload sheds with provenance" `Quick
      test_overload_sheds_with_provenance;
    Alcotest.test_case "server: malformed line keeps the connection" `Quick
      test_malformed_line_keeps_connection;
  ]

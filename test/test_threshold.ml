(* Plan-cost threshold pruning and multi-pass re-optimization (Section 6.4). *)

open Test_helpers
module Blitzsplit = Blitz_core.Blitzsplit
module Threshold = Blitz_core.Threshold
module Counters = Blitz_core.Counters

let check_float = Test_helpers.check_float

let test_threshold_above_optimum_is_exact () =
  (* Table 1's optimum is 241000; any threshold above that must return
     the identical plan in a single pass. *)
  let unconstrained = Blitzsplit.optimize_product Cost_model.naive abcd_catalog in
  let outcome =
    Threshold.optimize_product ~threshold:300000.0 Cost_model.naive abcd_catalog
  in
  Alcotest.(check int) "single pass" 1 outcome.Threshold.passes;
  check_float "same cost" (Blitzsplit.best_cost unconstrained)
    (Blitzsplit.best_cost outcome.Threshold.result);
  Alcotest.(check bool) "same plan" true
    (Plan.equal
       (Blitzsplit.best_plan_exn unconstrained)
       (Blitzsplit.best_plan_exn outcome.Threshold.result))

let test_threshold_below_optimum_fails_single_pass () =
  let r = Blitzsplit.optimize_product ~threshold:1000.0 Cost_model.naive abcd_catalog in
  Alcotest.(check bool) "infeasible" false (Blitzsplit.feasible r);
  Alcotest.(check bool) "no plan" true (Blitzsplit.best_plan r = None);
  Alcotest.check_raises "best_plan_exn raises"
    (Failure "Blitzsplit.best_plan_exn: no plan under the given threshold") (fun () ->
      ignore (Blitzsplit.best_plan_exn r))

let test_multipass_recovers_optimum () =
  (* Start far below 241000; growth 10 forces several passes. *)
  let outcome =
    Threshold.optimize_product ~growth:10.0 ~threshold:100.0 Cost_model.naive abcd_catalog
  in
  Alcotest.(check bool) "multiple passes" true (outcome.Threshold.passes > 1);
  check_float "optimum recovered" 241000.0 (Blitzsplit.best_cost outcome.Threshold.result);
  (* 100 * 10^k must first exceed 241000 at k=4 -> 5 passes. *)
  Alcotest.(check int) "pass count" 5 outcome.Threshold.passes;
  check_float "final threshold" 1e6 outcome.Threshold.final_threshold

let test_rescue_pass_accounting () =
  (* With max_passes = 1 and a hopeless threshold, the single thresholded
     pass fails and the driver runs the forced unthresholded rescue pass.
     [passes] must count BOTH (thresholded + rescue = 2) and agree with
     the per-pass instrumentation; the rescue pass reports threshold
     infinity and still recovers the exact optimum. *)
  let counters = Counters.create () in
  let outcome =
    Threshold.optimize_product ~counters ~max_passes:1 ~threshold:1.0 Cost_model.naive abcd_catalog
  in
  Alcotest.(check int) "thresholded pass + rescue pass" 2 outcome.Threshold.passes;
  Alcotest.(check int) "counters agree" 2 counters.Counters.passes;
  check_float "rescue is unthresholded" Float.infinity outcome.Threshold.final_threshold;
  check_float "optimum recovered" 241000.0 (Blitzsplit.best_cost outcome.Threshold.result)

let test_threshold_skips_counted () =
  let counters = Counters.create () in
  let _ =
    Blitzsplit.optimize_product ~counters ~threshold:1000.0 Cost_model.naive abcd_catalog
  in
  Alcotest.(check bool) "skips recorded" true (counters.Counters.threshold_skips > 0);
  Alcotest.(check bool) "infeasible recorded" true (counters.Counters.infeasible > 0)

let test_threshold_reduces_work () =
  (* With kappa_0 and a threshold, subsets whose output cardinality
     reaches the threshold never run their split loop: fewer loop
     iterations than the analytic unconstrained count. *)
  let n = 10 in
  let catalog = Catalog.uniform ~n ~card:1000.0 in
  let counters = Counters.create () in
  let _ = Blitzsplit.optimize_product ~counters ~threshold:1e12 Cost_model.naive catalog in
  Alcotest.(check bool) "fewer iterations" true
    (counters.Counters.loop_iters < Counters.exact_loop_iters n)

let test_invalid_arguments () =
  Alcotest.check_raises "bad threshold" (Invalid_argument "Blitzsplit: threshold must be positive")
    (fun () ->
      ignore (Blitzsplit.optimize_product ~threshold:0.0 Cost_model.naive abcd_catalog));
  Alcotest.check_raises "bad growth" (Invalid_argument "Threshold: growth must exceed 1")
    (fun () ->
      ignore (Threshold.optimize_product ~growth:1.0 ~threshold:10.0 Cost_model.naive abcd_catalog));
  Alcotest.check_raises "infinite initial"
    (Invalid_argument "Threshold: initial threshold must be positive and finite") (fun () ->
      ignore
        (Threshold.optimize_product ~threshold:Float.infinity Cost_model.naive abcd_catalog))

(* Correctness of threshold search in general: for any problem and any
   starting threshold, the multi-pass driver returns the unconstrained
   optimum (Section 6.4's subplan argument, verified empirically). *)
let prop_multipass_equals_unconstrained =
  QCheck2.Test.make ~count:120 ~name:"multi-pass threshold search returns the true optimum"
    ~print:problem_print (problem_gen ~max_n:8)
    (fun p ->
      let unconstrained = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let rng = Rng.create ~seed:(p.seed + 99) in
      let threshold = Rng.log_uniform rng ~lo:1e-2 ~hi:1e8 in
      let outcome = Threshold.optimize_join ~threshold p.model p.catalog p.graph in
      Blitz_util.Float_more.approx_equal ~rel:1e-6
        (Blitzsplit.best_cost unconstrained)
        (Blitzsplit.best_cost outcome.Threshold.result))

(* Monotonicity: a feasible single pass at threshold T stays feasible
   and optimal at any T' > T. *)
let prop_threshold_monotone =
  QCheck2.Test.make ~count:100 ~name:"raising a feasible threshold never changes the result"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let unconstrained = Blitzsplit.optimize_join p.model p.catalog p.graph in
      let opt = Blitzsplit.best_cost unconstrained in
      let t1 = opt *. 1.5 +. 1.0 in
      let t2 = opt *. 100.0 +. 1.0 in
      let r1 = Blitzsplit.optimize_join ~threshold:t1 p.model p.catalog p.graph in
      let r2 = Blitzsplit.optimize_join ~threshold:t2 p.model p.catalog p.graph in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 (Blitzsplit.best_cost r1) opt
      && Blitz_util.Float_more.approx_equal ~rel:1e-6 (Blitzsplit.best_cost r2) opt)

let prop_variant_threshold_drivers_exact =
  QCheck2.Test.make ~count:50
    ~name:"threshold drivers for the eq and hyper variants return the unconstrained optimum"
    ~print:problem_print (problem_gen ~max_n:7)
    (fun p ->
      let module Eq = Blitz_core.Blitzsplit_eq in
      let module Hy = Blitz_core.Blitzsplit_hyper in
      let module Equivalence = Blitz_graph.Equivalence in
      let module Hypergraph = Blitz_graph.Hypergraph in
      let n = Catalog.n p.catalog in
      let clamped =
        List.map (fun (i, j, s) -> (i, j, Float.min 1.0 s)) (Join_graph.edges p.graph)
      in
      let graph = Join_graph.of_edges ~n clamped in
      let eq =
        Equivalence.of_predicates ~n
          (List.map
             (fun (i, j, s) ->
               ((i, Printf.sprintf "c%d_%d" i j), (j, Printf.sprintf "c%d_%d" i j), s))
             clamped)
      in
      let hyper = Hypergraph.of_join_graph graph in
      let eq_plain = Eq.best_cost (Eq.optimize p.model p.catalog eq) in
      let eq_thresh =
        Threshold.optimize_eq ~threshold:1.0 ~growth:1000.0 p.model p.catalog eq
      in
      let hy_plain = Hy.best_cost (Hy.optimize p.model p.catalog hyper) in
      let hy_thresh =
        Threshold.optimize_hyper ~threshold:1.0 ~growth:1000.0 p.model p.catalog hyper
      in
      Blitz_util.Float_more.approx_equal ~rel:1e-6 eq_plain
        (Eq.best_cost eq_thresh.Threshold.eq_result)
      && Blitz_util.Float_more.approx_equal ~rel:1e-6 hy_plain
           (Hy.best_cost hy_thresh.Threshold.hyper_result))

let suite =
  [
    Alcotest.test_case "threshold above optimum: exact, one pass" `Quick
      test_threshold_above_optimum_is_exact;
    Alcotest.test_case "threshold below optimum: infeasible" `Quick
      test_threshold_below_optimum_fails_single_pass;
    Alcotest.test_case "multi-pass recovers the optimum" `Quick test_multipass_recovers_optimum;
    Alcotest.test_case "rescue pass is counted consistently" `Quick test_rescue_pass_accounting;
    Alcotest.test_case "skip counters" `Quick test_threshold_skips_counted;
    Alcotest.test_case "thresholds reduce split-loop work" `Quick test_threshold_reduces_work;
    Alcotest.test_case "argument validation" `Quick test_invalid_arguments;
    QCheck_alcotest.to_alcotest prop_multipass_equals_unconstrained;
    QCheck_alcotest.to_alcotest prop_threshold_monotone;
    QCheck_alcotest.to_alcotest prop_variant_threshold_drivers_exact;
  ]
